#!/usr/bin/env sh
# Formatting check stub — wired as a non-blocking CI step.
#
# When clang-format is available, dry-runs it over the tree and reports
# files that would change; exits 0 either way until a .clang-format policy
# is adopted (at that point, drop the trailing `|| true` to make it gate).
set -u
cd "$(dirname "$0")/.."

if ! command -v clang-format >/dev/null 2>&1; then
  echo "check_format: clang-format not installed — skipping"
  exit 0
fi

find src tests bench examples -name '*.cpp' -o -name '*.hpp' | \
  xargs clang-format --dry-run 2>&1 | head -100 || true

echo "check_format: advisory only (non-blocking)"
exit 0
