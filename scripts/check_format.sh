#!/usr/bin/env sh
# clang-format check over the first-party tree (src/ bench/ tests/
# examples/), driven by the repo-root .clang-format policy.
#
# Exits non-zero when any file would be reformatted, listing the offenders.
# CI runs this as a blocking step (the tree is clean; drift fails the
# build).  Run locally with FIX=1 to reformat in place:
#   FIX=1 ./scripts/check_format.sh
set -u
cd "$(dirname "$0")/.."

if ! command -v clang-format >/dev/null 2>&1; then
  echo "check_format: clang-format not installed — skipping"
  exit 0
fi

echo "check_format: using $(clang-format --version)"

files=$(find src bench tests examples \( -name '*.cpp' -o -name '*.hpp' \) | sort)

if [ "${FIX:-0}" = "1" ]; then
  # shellcheck disable=SC2086
  clang-format -i $files
  echo "check_format: reformatted in place"
  exit 0
fi

status=0
for file in $files; do
  if ! clang-format --dry-run --Werror "$file" >/dev/null 2>&1; then
    echo "needs formatting: $file"
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "check_format: all files clean"
else
  echo "check_format: run 'FIX=1 ./scripts/check_format.sh' to reformat"
fi
exit "$status"
