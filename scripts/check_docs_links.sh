#!/usr/bin/env sh
# Docs link checker: every relative markdown link in the first-party docs
# must resolve to an existing file, so the handbook can never point at
# renamed or deleted paths.  External (http/https/mailto) links and pure
# anchors are skipped — CI must not depend on network reachability.
#
# Checked: all tracked *.md at the repo root, under docs/, and the per-dir
# READMEs in src/.  Exits non-zero listing every broken link.
set -u
cd "$(dirname "$0")/.."

status=0
files=$(find . -maxdepth 1 -name '*.md' ; find docs src -name '*.md' 2>/dev/null)

for file in $files; do
  dir=$(dirname "$file")
  # Markdown inline links: capture the (...) target of [text](target).
  links=$(grep -o '](\([^)]*\))' "$file" | sed 's/^](//; s/)$//')
  for link in $links; do
    case "$link" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    target="${link%%#*}"              # strip in-page anchors
    [ -z "$target" ] && continue
    if [ ! -e "$dir/$target" ]; then
      echo "broken link in $file: $link"
      status=1
    fi
  done
done

if [ "$status" -eq 0 ]; then
  echo "check_docs_links: all relative links resolve"
else
  echo "check_docs_links: fix the links above"
fi
exit "$status"
