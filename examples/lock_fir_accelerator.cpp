// Scenario: an IP vendor locks a 32-tap FIR accelerator before handing the
// RTL to an untrusted integrator.  The example compares all locking
// algorithms on the same budget, verifies functional preservation, and
// reports the ODT balance the attacker would observe.
//
// Usage: lock_fir_accelerator [--taps=N] [--budget=0.75] [--seed=N]
#include <iostream>

#include "core/algorithms.hpp"
#include "designs/dsp.hpp"
#include "rtl/stats.hpp"
#include "sim/harness.hpp"
#include "support/cli.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace rtlock;
  try {
    const support::CliArgs args(argc, argv, {"taps", "budget", "seed"});
    const int taps = static_cast<int>(args.getInt("taps", 32));
    const double budgetFraction = args.getDouble("budget", 0.75);
    const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 1));

    const rtl::Module original = designs::makeFir(taps);
    {
      rtl::Module probe = original.clone();
      lock::LockEngine probeEngine{probe, lock::PairTable::fixed()};
      std::cout << "FIR accelerator: " << taps << " taps, "
                << probeEngine.initialLockableOps() << " lockable operations\n"
                << "initial imbalance |ODT|: +/-=" << std::abs(probeEngine.odtValue(rtl::OpKind::Add))
                << " */÷=" << std::abs(probeEngine.odtValue(rtl::OpKind::Mul)) << "\n\n";
    }

    support::Table table{{"algorithm", "key bits", "ops added", "M^g_sec", "M^r_sec",
                          "functional (correct key)", "corrupts (flipped key)"}};

    for (const auto algorithm :
         {lock::Algorithm::AssureSerial, lock::Algorithm::AssureRandom, lock::Algorithm::Hra,
          lock::Algorithm::Greedy, lock::Algorithm::Era}) {
      rtl::Module locked = original.clone();
      support::Rng rng{seed};
      lock::LockEngine engine{locked, lock::PairTable::fixed()};
      const int opsBefore = engine.initialLockableOps();
      const int budget = std::max(1, static_cast<int>(budgetFraction * opsBefore));
      const auto report = lock::lockWithAlgorithm(engine, algorithm, budget, rng);

      sim::BitVector key{locked.keyWidth()};
      sim::BitVector flipped{locked.keyWidth()};
      for (const auto& record : engine.records()) {
        key.setBit(record.keyIndex, record.keyValue);
        flipped.setBit(record.keyIndex, !record.keyValue);
      }
      sim::EquivalenceOptions options;
      options.vectors = 8;
      options.cyclesPerVector = taps + 8;
      support::Rng simRng{seed + 10};
      const bool functional =
          sim::functionallyEquivalent(original, locked, key, options, simRng);
      support::Rng simRng2{seed + 20};
      const bool corrupts =
          !sim::functionallyEquivalent(original, locked, flipped, options, simRng2);

      table.addRow({std::string{lock::algorithmName(algorithm)},
                    std::to_string(report.bitsUsed),
                    std::to_string(engine.totalLockableOps() - opsBefore),
                    support::formatDouble(report.finalGlobalMetric, 1),
                    support::formatDouble(report.finalRestrictedMetric, 1),
                    functional ? "yes" : "NO", corrupts ? "yes" : "NO"});
    }
    table.renderText(std::cout);
    std::cout << "\nNote: ERA exceeds the budget when balancing demands it (security > cost);\n"
                 "ASSURE/HRA stay within budget but leave residual imbalance for ML to mine.\n";
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
}
