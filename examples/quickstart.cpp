// Quickstart: lock a small Verilog design with ERA and verify it.
//
//   1. parse Verilog text into the RTL IR;
//   2. lock operations with the Exact ML-Resilient Algorithm (ERA);
//   3. print the security metrics and the locked Verilog;
//   4. simulate: correct key == original behaviour, wrong key != original.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "core/algorithms.hpp"
#include "sim/harness.hpp"
#include "verilog/parser.hpp"
#include "verilog/writer.hpp"

int main() {
  using namespace rtlock;

  // A toy arithmetic datapath — note the 3:1 imbalance of '+' vs '-'.
  constexpr const char* kSource = R"(
module toy (a, b, y);
  input [7:0] a;
  input [7:0] b;
  output [7:0] y;
  wire [7:0] s0;
  wire [7:0] s1;
  wire [7:0] s2;
  assign s0 = a + b;
  assign s1 = s0 + 8'h11;
  assign s2 = s1 - a;
  assign y = s2 + b;
endmodule
)";

  rtl::Module original = verilog::parseModule(kSource);
  rtl::Module locked = original.clone();

  support::Rng rng{2022};
  lock::LockEngine engine{locked, lock::PairTable::fixed()};
  std::cout << "operations before locking: " << engine.initialLockableOps()
            << "  (ODT[+] = " << engine.odtValue(rtl::OpKind::Add) << ")\n";

  const lock::AlgorithmReport report =
      lock::eraLock(engine, /*keyBudget=*/engine.initialLockableOps(), rng);
  std::cout << "ERA locked " << report.bitsUsed << " key bits"
            << "  M^g_sec = " << report.finalGlobalMetric
            << "  M^r_sec = " << report.finalRestrictedMetric << "\n\n";

  std::cout << verilog::writeModule(locked) << '\n';

  // Assemble the correct key from the lock records.
  sim::BitVector key{locked.keyWidth()};
  for (const auto& record : engine.records()) key.setBit(record.keyIndex, record.keyValue);

  support::Rng simRng{7};
  std::cout << "correct key preserves function: "
            << (sim::functionallyEquivalent(original, locked, key, {}, simRng) ? "yes" : "NO")
            << '\n';

  sim::BitVector wrong = key;
  wrong.setBit(0, !wrong.bit(0));
  support::Rng simRng2{8};
  std::cout << "wrong key corrupts function:    "
            << (sim::functionallyEquivalent(original, locked, wrong, {}, simRng2) ? "NO"
                                                                                  : "yes")
            << '\n';
  return 0;
}
