// Command-line locking tool: read a Verilog file, lock it, emit the locked
// Verilog and the key.  This mirrors how the original ASSURE flow is used —
// as a file-to-file RTL transformation.
//
// Usage: verilog_flow [input.v] [--algorithm=era|hra|greedy|serial|random]
//                     [--budget=0.75] [--seed=N] [--out=locked.v]
// Without an input file a built-in demo design is processed.
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/algorithms.hpp"
#include "support/cli.hpp"
#include "support/strings.hpp"
#include "verilog/parser.hpp"
#include "verilog/writer.hpp"

namespace {

constexpr const char* kDemoSource = R"(
// Built-in demo: a small mixed-operator datapath.
module demo_dp (clk, a, b, sel, y);
  input clk;
  input [15:0] a;
  input [15:0] b;
  input sel;
  output [15:0] y;
  reg [15:0] acc;
  wire [15:0] prod;
  wire [15:0] sum;
  wire [15:0] mix;

  assign prod = a * b;
  assign sum = acc + prod;
  assign mix = sel ? sum : (a ^ b);

  always @(posedge clk) begin
    acc <= mix;
  end

  assign y = acc >> 1;
endmodule
)";

rtlock::lock::Algorithm algorithmFromName(const std::string& name) {
  using rtlock::lock::Algorithm;
  if (name == "era") return Algorithm::Era;
  if (name == "hra") return Algorithm::Hra;
  if (name == "greedy") return Algorithm::Greedy;
  if (name == "serial") return Algorithm::AssureSerial;
  if (name == "random") return Algorithm::AssureRandom;
  throw rtlock::support::Error{"unknown algorithm '" + name +
                               "' (era|hra|greedy|serial|random)"};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rtlock;
  try {
    const support::CliArgs args(argc, argv, {"algorithm", "budget", "seed", "out"});
    const auto algorithm = algorithmFromName(args.get("algorithm", "era"));
    const double budgetFraction = args.getDouble("budget", 0.75);
    const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 1));

    std::string source;
    if (args.positional().empty()) {
      source = kDemoSource;
      std::cerr << "no input file given — using the built-in demo design\n";
    } else {
      std::ifstream in{args.positional().front()};
      if (!in) throw support::Error{"cannot open " + args.positional().front()};
      std::ostringstream buffer;
      buffer << in.rdbuf();
      source = buffer.str();
    }

    rtl::Design design = verilog::parseDesign(source);
    support::Rng rng{seed};

    std::cerr << "locking " << design.moduleCount() << " module(s) with "
              << lock::algorithmName(algorithm) << " at " << budgetFraction * 100
              << "% budget\n";

    std::string keyBits;
    for (std::size_t i = 0; i < design.moduleCount(); ++i) {
      rtl::Module& module = design.module(i);
      lock::LockEngine engine{module, lock::PairTable::fixed()};
      if (engine.initialLockableOps() == 0) {
        std::cerr << "  " << module.name() << ": no lockable operations, skipped\n";
        continue;
      }
      const int budget = std::max(
          1, static_cast<int>(budgetFraction * engine.initialLockableOps()));
      const auto report = lock::lockWithAlgorithm(engine, algorithm, budget, rng);
      std::cerr << "  " << module.name() << ": " << report.bitsUsed << " key bits, M^g="
                << support::formatDouble(report.finalGlobalMetric, 1)
                << " M^r=" << support::formatDouble(report.finalRestrictedMetric, 1) << '\n';

      // Key bits, LSB first per module (appended across modules).
      std::string moduleKey(static_cast<std::size_t>(module.keyWidth()), '0');
      for (const auto& record : engine.records()) {
        moduleKey[static_cast<std::size_t>(record.keyIndex)] = record.keyValue ? '1' : '0';
      }
      keyBits += module.name() + ": " + moduleKey + "\n";
    }

    const std::string lockedText = verilog::writeDesign(design);
    if (args.has("out")) {
      std::ofstream out{args.get("out", "")};
      out << lockedText;
      std::cerr << "locked design written to " << args.get("out", "") << '\n';
    } else {
      std::cout << lockedText;
    }
    std::cerr << "\nactivation key (LSB first):\n" << keyBits;
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
}
