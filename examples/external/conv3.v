// External fixture: a 3-tap convolution pipeline (sequential).
//
// Exercises the classic (non-ANSI) header combined with #(parameter ...)
// ports, parameters inside ranges and expressions, synchronous reset, and
// a delay line of non-blocking assignments — the shape of real filter RTL
// that the in-tree registry generators never produce textually.
module conv3 #(parameter W = 8, parameter K0 = 3, parameter K1 = 2) (clk, rst, sample, filtered);
  input clk;
  input rst;
  input [W-1:0] sample;
  output [W-1:0] filtered;

  reg [W-1:0] d0;
  reg [W-1:0] d1;
  reg [W-1:0] d2;

  always @(posedge clk) begin
    if (rst) begin
      d0 <= 0;
      d1 <= 0;
      d2 <= 0;
    end else begin
      d0 <= sample;
      d1 <= d0;
      d2 <= d1;
    end
  end

  assign filtered = (d0 * K0) + (d1 * K1) - (d2 >> 1);
endmodule
