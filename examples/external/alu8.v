// External fixture: a parameterized combinational ALU.
//
// This file is *not* generated from the in-tree registry — it exists to
// exercise the front-end constructs arbitrary user Verilog brings in:
// #(parameter ...) headers, ANSI port-direction carry-over
// (`input [WIDTH-1:0] a, b`), localparam constants inside expressions,
// wire declaration initializers and case-based operator selection.
// docs/CLI.md and tests/cli/ both run the lock -> attack flow on it.
module alu8 #(parameter WIDTH = 8, parameter SHIFT = 1) (
  input [WIDTH-1:0] a, b,
  input [1:0] op,
  output [WIDTH-1:0] result,
  output zero
);
  localparam LSB = 0;

  wire [WIDTH-1:0] sum = a + b;
  wire [WIDTH-1:0] diff = a - b;
  wire [WIDTH-1:0] prod;
  wire [WIDTH-1:0] mix;
  reg [WIDTH-1:0] selected;

  assign prod = a * b;
  assign mix = (a & b) ^ (a | b);

  always @(*) begin
    case (op)
      0: selected = sum;
      1: selected = diff;
      2: selected = prod;
      default: selected = mix;
    endcase
  end

  assign result = selected >> SHIFT;
  assign zero = result == LSB;
endmodule
