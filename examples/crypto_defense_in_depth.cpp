// Scenario: defence in depth on a SHA-256 round pipeline — the three ASSURE
// obfuscations combined.  Constants are extracted into the key, branches are
// key-XORed, and operations are balanced with ERA.  The example reports the
// key-budget breakdown and verifies the composite lock.
//
// Usage: crypto_defense_in_depth [--rounds=12] [--seed=N]
#include <iostream>

#include "core/algorithms.hpp"
#include "designs/crypto.hpp"
#include "rtl/stats.hpp"
#include "sim/harness.hpp"
#include "support/cli.hpp"
#include "verilog/writer.hpp"

int main(int argc, char** argv) {
  using namespace rtlock;
  try {
    const support::CliArgs args(argc, argv, {"rounds", "seed"});
    const int rounds = static_cast<int>(args.getInt("rounds", 12));
    const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 3));

    const rtl::Module original = designs::makeSha256(rounds);
    rtl::Module locked = original.clone();
    support::Rng rng{seed};

    // Layer 1: constant obfuscation — round constants leave the netlist.
    const auto constants = lock::assureLockConstants(locked, /*keyBudgetBits=*/256, rng);

    // Layer 2: operation obfuscation with ERA (balance every touched pair).
    lock::LockEngine engine{locked, lock::PairTable::fixed()};
    const auto operations = lock::eraLock(engine, engine.initialLockableOps() / 2, rng);

    // Layer 3: branch obfuscation (SHA pipeline is branch-free; the call
    // demonstrates the API and is a no-op here).
    const auto branches = lock::assureLockBranches(locked, 16, rng);

    std::cout << "SHA-256 pipeline (" << rounds << " rounds) locked in depth:\n"
              << "  constant obfuscation: " << constants.bitsUsed << " key bits over "
              << constants.records.size() << " constants\n"
              << "  operation obfuscation (ERA): " << operations.bitsUsed
              << " key bits, M^r_sec = " << operations.finalRestrictedMetric << "\n"
              << "  branch obfuscation: " << branches.bitsUsed << " key bits\n"
              << "  total key width: " << locked.keyWidth() << " bits\n\n";

    // Assemble the composite key.
    sim::BitVector key{locked.keyWidth()};
    for (const auto& record : constants.records) {
      for (int i = 0; i < record.width; ++i) {
        key.setBit(record.keyIndex + i, ((record.value >> i) & 1u) != 0);
      }
    }
    for (const auto& record : engine.records()) key.setBit(record.keyIndex, record.keyValue);
    for (const auto& record : branches.records) key.setBit(record.keyIndex, record.keyValue);

    support::Rng simRng{seed + 1};
    const bool functional = sim::functionallyEquivalent(original, locked, key, {}, simRng);
    std::cout << "composite key restores behaviour: " << (functional ? "yes" : "NO") << '\n';

    sim::BitVector wrong = key;
    wrong.setBit(0, !wrong.bit(0));
    support::Rng simRng2{seed + 2};
    std::cout << "single wrong key bit corrupts:    "
              << (sim::functionallyEquivalent(original, locked, wrong, {}, simRng2) ? "NO"
                                                                                    : "yes")
              << "\n\n";

    const auto stats = rtl::computeStats(locked);
    std::cout << "locked design: " << stats.exprNodes << " expression nodes, "
              << stats.keyMuxes << " key muxes, key width " << stats.keyWidth << '\n';
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
}
