// Scenario: red-team evaluation.  An MD5 accelerator is locked once with
// ASSURE and once with ERA; the SnapShot-RTL attack is mounted against both.
// The demo prints the auto-ml leaderboard and the per-scheme KPA — ASSURE's
// operation imbalance leaks most key bits, ERA holds the attack at a coin
// flip.
//
// Usage: snapshot_attack_demo [--benchmark=MD5] [--relocks=100] [--seed=N]
#include <iostream>

#include "attack/snapshot.hpp"
#include "core/algorithms.hpp"
#include "designs/registry.hpp"
#include "support/cli.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace {

using namespace rtlock;

void attackOnce(const std::string& benchmarkName, lock::Algorithm algorithm, int relocks,
                std::uint64_t seed) {
  rtl::Module locked = designs::makeBenchmark(benchmarkName);
  support::Rng rng{seed};
  lock::LockEngine engine{locked, lock::PairTable::fixed()};
  const int budget = static_cast<int>(0.75 * engine.initialLockableOps());
  const auto lockReport = lock::lockWithAlgorithm(engine, algorithm, budget, rng);
  const auto truth = engine.records();

  attack::SnapshotConfig config;
  config.relockRounds = relocks;
  config.automl.folds = 3;
  support::Rng attackRng{seed + 1};
  const auto result =
      attack::snapshotAttack(locked, truth, lock::PairTable::fixed(), config, attackRng);

  std::cout << "=== " << benchmarkName << " locked with " << lock::algorithmName(algorithm)
            << " ===\n"
            << "key bits: " << result.keyBits << " (locking used " << lockReport.bitsUsed
            << " bits, M^g=" << support::formatDouble(lockReport.finalGlobalMetric, 1)
            << ", M^r=" << support::formatDouble(lockReport.finalRestrictedMetric, 1) << ")\n"
            << "training localities: " << result.trainingRows << " from " << relocks
            << " relock rounds\n"
            << "selected model: " << result.modelName << " (cv accuracy "
            << support::formatDouble(100.0 * result.cvAccuracy, 2) << "%)\n"
            << "KPA: " << support::formatDouble(result.kpa, 2) << "%  ("
            << result.correct << "/" << result.keyBits << " bits; 50% = random guess)\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const rtlock::support::CliArgs args(argc, argv, {"benchmark", "relocks", "seed"});
    const std::string benchmark = args.get("benchmark", "MD5");
    const int relocks = static_cast<int>(args.getInt("relocks", 100));
    const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 42));

    attackOnce(benchmark, rtlock::lock::Algorithm::AssureSerial, relocks, seed);
    attackOnce(benchmark, rtlock::lock::Algorithm::Era, relocks, seed);
    std::cout << "Takeaway: balanced operation distributions (ERA) starve the attack of\n"
                 "key-correlated structure; partial balance is not enough (Sec. 5.1).\n";
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
}
