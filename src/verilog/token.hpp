// Token vocabulary for the Verilog-2001 subset.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace rtlock::verilog {

enum class TokenKind : std::uint8_t {
  // literals / names
  Identifier,
  Number,  // value + optional explicit width stored in the token

  // keywords
  KwModule,
  KwEndmodule,
  KwInput,
  KwOutput,
  KwWire,
  KwReg,
  KwAssign,
  KwAlways,
  KwBegin,
  KwEnd,
  KwIf,
  KwElse,
  KwCase,
  KwEndcase,
  KwDefault,
  KwPosedge,
  KwNegedge,    // recognized so @(negedge ...) fails with a targeted message
  KwParameter,  // module-scoped integer constants
  KwLocalparam,
  KwSigned,  // recognized so signed declarations fail with a targeted message

  // punctuation
  Hash,  // # (parameter-port header '#(...)')
  LParen,
  RParen,
  LBracket,
  RBracket,
  LBrace,
  RBrace,
  Semicolon,
  Colon,
  Comma,
  Question,
  At,

  // operators
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  StarStar,
  Shl,      // <<
  Shr,      // >>
  AShr,     // >>>
  Amp,      // &
  Pipe,     // |
  Caret,    // ^
  TildeCaret,  // ~^ or ^~
  Tilde,    // ~
  Bang,     // !
  AmpAmp,   // &&
  PipePipe, // ||
  Lt,
  Gt,
  LtEq,     // <= (relational or non-blocking assign; parser decides)
  GtEq,
  EqEq,
  BangEq,
  Assign,   // =

  EndOfFile,
};

[[nodiscard]] std::string_view tokenKindName(TokenKind kind) noexcept;

struct Token {
  TokenKind kind = TokenKind::EndOfFile;
  std::string text;          // identifier spelling or literal text
  std::uint64_t value = 0;   // numeric value for Number tokens
  int numberWidth = 0;       // explicit size of a sized literal; 0 = unsized
  int line = 1;
  int column = 1;
};

}  // namespace rtlock::verilog
