// Lexer for the Verilog-2001 subset.
//
// Handles identifiers (incl. escaped identifiers), sized/unsized numeric
// literals with _ separators, all supported operators, and // and /* */
// comments.  Diagnostics carry line/column positions.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "verilog/token.hpp"

namespace rtlock::verilog {

class Lexer {
 public:
  explicit Lexer(std::string_view source);

  /// Tokenize the whole input (EndOfFile-terminated).  Throws
  /// support::Error on malformed input.
  [[nodiscard]] std::vector<Token> tokenize();

 private:
  [[nodiscard]] bool atEnd() const noexcept { return pos_ >= source_.size(); }
  [[nodiscard]] char peek(std::size_t lookahead = 0) const noexcept;
  char advance() noexcept;
  [[nodiscard]] bool match(char expected) noexcept;
  void skipWhitespaceAndComments();

  [[nodiscard]] Token lexIdentifierOrKeyword();
  [[nodiscard]] Token lexNumber();
  [[nodiscard]] Token lexOperator();

  [[noreturn]] void fail(const std::string& message) const;

  Token makeToken(TokenKind kind, std::string text = {}) const;

  std::string_view source_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
  int tokenLine_ = 1;
  int tokenColumn_ = 1;
};

}  // namespace rtlock::verilog
