// Verilog backend: renders IR modules as synthesizable Verilog-2001 text.
//
// Output is designed to round-trip through the parser: sized literals keep
// constant widths exact, the key vector is emitted as a real input port, and
// expression parenthesization preserves structure.
#pragma once

#include <string>

#include "rtl/module.hpp"

namespace rtlock::verilog {

struct WriterOptions {
  int indentWidth = 2;
  /// Emit a banner comment with locking statistics above locked modules.
  bool emitHeaderComment = true;
};

// Contract ------------------------------------------------------------------
// Ownership: the module/design is borrowed const; the returned string is an
//   independent copy with no IR references.
// Determinism: output text is a pure function of (IR, options) — stable
//   iteration orders, locale-independent number formatting — and re-parsing
//   it yields a structurally identical module (writer/parser fixed point,
//   pinned by tests/verilog/roundtrip_test.cpp).
// Thread-safety: safe concurrently on distinct or shared (const) modules;
//   no global state.

/// Renders one module.
[[nodiscard]] std::string writeModule(const rtl::Module& module, const WriterOptions& options = {});

/// Renders every module of the design in order.
[[nodiscard]] std::string writeDesign(const rtl::Design& design, const WriterOptions& options = {});

/// Renders a single expression (used by reports and tests).
[[nodiscard]] std::string writeExpr(const rtl::Expr& expr, const rtl::Module& module);

}  // namespace rtlock::verilog
