#include "verilog/parser.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <utility>

#include "analysis/verifier.hpp"
#include "support/diagnostics.hpp"
#include "verilog/lexer.hpp"

namespace rtlock::verilog {

namespace {

using rtl::ExprPtr;
using rtl::OpKind;
using rtl::StmtPtr;

struct BinOpInfo {
  OpKind op;
  bool rightAssoc;
};

[[nodiscard]] std::optional<BinOpInfo> binaryOpFor(TokenKind kind) noexcept {
  switch (kind) {
    case TokenKind::Plus: return BinOpInfo{OpKind::Add, false};
    case TokenKind::Minus: return BinOpInfo{OpKind::Sub, false};
    case TokenKind::Star: return BinOpInfo{OpKind::Mul, false};
    case TokenKind::Slash: return BinOpInfo{OpKind::Div, false};
    case TokenKind::Percent: return BinOpInfo{OpKind::Mod, false};
    case TokenKind::StarStar: return BinOpInfo{OpKind::Pow, true};
    case TokenKind::Shl: return BinOpInfo{OpKind::Shl, false};
    case TokenKind::Shr: return BinOpInfo{OpKind::Shr, false};
    case TokenKind::AShr: return BinOpInfo{OpKind::AShr, false};
    case TokenKind::Amp: return BinOpInfo{OpKind::And, false};
    case TokenKind::Pipe: return BinOpInfo{OpKind::Or, false};
    case TokenKind::Caret: return BinOpInfo{OpKind::Xor, false};
    case TokenKind::TildeCaret: return BinOpInfo{OpKind::Xnor, false};
    case TokenKind::Lt: return BinOpInfo{OpKind::Lt, false};
    case TokenKind::Gt: return BinOpInfo{OpKind::Gt, false};
    case TokenKind::LtEq: return BinOpInfo{OpKind::Le, false};
    case TokenKind::GtEq: return BinOpInfo{OpKind::Ge, false};
    case TokenKind::EqEq: return BinOpInfo{OpKind::Eq, false};
    case TokenKind::BangEq: return BinOpInfo{OpKind::Ne, false};
    case TokenKind::AmpAmp: return BinOpInfo{OpKind::LAnd, false};
    case TokenKind::PipePipe: return BinOpInfo{OpKind::LOr, false};
    default: return std::nullopt;
  }
}

class Parser {
 public:
  Parser(std::string_view source, const ParserOptions& options)
      : options_(options), tokens_(Lexer{source}.tokenize()) {}

  rtl::Design parseDesign() {
    rtl::Design design;
    while (!check(TokenKind::EndOfFile)) {
      design.addModule(parseModule());
    }
    if (design.moduleCount() == 0) fail("input contains no modules");
    return design;
  }

  rtl::Module parseModule() {
    expect(TokenKind::KwModule, "expected 'module'");
    const std::string name = expect(TokenKind::Identifier, "expected module name").text;

    module_.emplace(name);
    module_->setKeyPortName(options_.keyPortName);
    pendingPorts_.clear();
    params_.clear();
    keyWidth_ = 0;

    if (accept(TokenKind::Hash)) parseParameterPorts();
    parsePortHeader();
    expect(TokenKind::Semicolon, "expected ';' after module header");

    while (!check(TokenKind::KwEndmodule)) {
      parseModuleItem();
    }
    expect(TokenKind::KwEndmodule, "expected 'endmodule'");

    for (const auto& pending : pendingPorts_) {
      if (!pending.second) {
        fail("port '" + pending.first + "' was never given a direction declaration");
      }
    }
    module_->setKeyWidth(keyWidth_);
    rtl::Module result = std::move(*module_);
    module_.reset();
    return result;
  }

 private:
  struct Range {
    int msb = 0;
    int lsb = 0;
    [[nodiscard]] int width() const noexcept { return msb - lsb + 1; }
  };

  // ---- token plumbing ----

  [[nodiscard]] const Token& peek(std::size_t lookahead = 0) const {
    const std::size_t index = std::min(cursor_ + lookahead, tokens_.size() - 1);
    return tokens_[index];
  }

  [[nodiscard]] bool check(TokenKind kind) const noexcept { return peek().kind == kind; }

  const Token& advance() {
    const Token& token = tokens_[cursor_];
    if (cursor_ + 1 < tokens_.size()) ++cursor_;
    return token;
  }

  bool accept(TokenKind kind) {
    if (!check(kind)) return false;
    advance();
    return true;
  }

  const Token& expect(TokenKind kind, const std::string& message) {
    if (!check(kind)) fail(message + " (got '" + describe(peek()) + "')");
    return advance();
  }

  [[nodiscard]] static std::string describe(const Token& token) {
    return token.text.empty() ? std::string{tokenKindName(token.kind)} : token.text;
  }

  [[noreturn]] void fail(const std::string& message) const {
    const Token& token = peek();
    throw support::Error{"verilog parse error at line " + std::to_string(token.line) +
                         ", column " + std::to_string(token.column) + ": " + message};
  }

  // ---- module structure ----

  /// Parameter-port header: '#' already consumed; parses
  /// `( parameter [range]? NAME = const {, [parameter] [range]? NAME = const} )`.
  void parseParameterPorts() {
    expect(TokenKind::LParen, "expected '(' after '#'");
    do {
      accept(TokenKind::KwParameter);  // optional on every item after the first
      parseParameterAssignment();
    } while (accept(TokenKind::Comma));
    expect(TokenKind::RParen, "expected ')' after parameter ports");
  }

  /// One `[range]? NAME = constexpr` parameter declarator.
  void parseParameterAssignment() {
    rejectSigned();
    const Range range = check(TokenKind::LBracket) ? parseOptionalRange() : Range{-1, 0};
    const std::string name = expect(TokenKind::Identifier, "expected parameter name").text;
    if (params_.count(name) != 0) fail("parameter '" + name + "' declared twice");
    if (name == options_.keyPortName) fail("the key port name cannot be used as a parameter");
    expect(TokenKind::Assign, "expected '=' in parameter declaration");
    const std::int64_t value = parseConstExpr();
    if (value < 0) fail("negative parameter values are outside the supported subset");
    // Width -1 marks an unsized parameter: references take the unsized
    // literal width, exactly like a bare decimal literal would.
    params_.emplace(name, Parameter{value, range.msb >= 0 ? range.width() : -1});
  }

  void parsePortHeader() {
    if (!accept(TokenKind::LParen)) return;  // portless module
    if (accept(TokenKind::RParen)) return;
    // ANSI direction carry-over (Verilog-2001 §12.3.3): after an ANSI port,
    // bare names inherit the previous direction/range — `input [7:0] a, b`.
    std::optional<AnsiHead> carried;
    do {
      if (check(TokenKind::KwInput) || check(TokenKind::KwOutput)) {
        carried = parseAnsiHead();
        declareAnsiPort(*carried);
      } else if (carried) {
        declareAnsiPort(*carried);
      } else {
        const std::string name = expect(TokenKind::Identifier, "expected port name").text;
        pendingPorts_.emplace_back(name, false);
      }
    } while (accept(TokenKind::Comma));
    expect(TokenKind::RParen, "expected ')' after port list");
  }

  struct AnsiHead {
    bool isInput = true;
    bool isReg = false;
    Range range{0, 0};
  };

  AnsiHead parseAnsiHead() {
    AnsiHead head;
    head.isInput = check(TokenKind::KwInput);
    advance();
    head.isReg = accept(TokenKind::KwReg);
    if (head.isInput && head.isReg) fail("inputs cannot be declared 'reg'");
    accept(TokenKind::KwWire);
    rejectSigned();
    head.range = parseOptionalRange();
    return head;
  }

  void declareAnsiPort(const AnsiHead& head) {
    const std::string name = expect(TokenKind::Identifier, "expected port name").text;
    declareSignal(name, head.range.width(), head.isInput,
                  head.isReg ? rtl::NetKind::Reg : rtl::NetKind::Wire, /*isPort=*/true);
  }

  void rejectSigned() {
    if (check(TokenKind::KwSigned)) {
      fail("signed declarations are outside the supported subset (all arithmetic is unsigned)");
    }
  }

  Range parseOptionalRange() {
    if (!accept(TokenKind::LBracket)) return Range{0, 0};
    const auto msb = parseConstExpr();
    expect(TokenKind::Colon, "expected ':' in range");
    const auto lsb = parseConstExpr();
    expect(TokenKind::RBracket, "expected ']' after range");
    if (lsb != 0) fail("only [msb:0] ranges are supported");
    if (msb < 0 || msb > (1 << 20)) fail("range msb out of supported bounds");
    return Range{static_cast<int>(msb), 0};
  }

  /// Constant expression in declarations/ranges: + - * over literals,
  /// parameters and parenthesized subexpressions, with * binding tighter
  /// than + and - (standard precedence — `1 + 2 * 8` is 17).
  std::int64_t parseConstExpr() {
    std::int64_t value = parseConstTerm();
    while (check(TokenKind::Plus) || check(TokenKind::Minus)) {
      const TokenKind op = advance().kind;
      const std::int64_t rhs = parseConstTerm();
      value = op == TokenKind::Plus ? value + rhs : value - rhs;
    }
    return value;
  }

  std::int64_t parseConstTerm() {
    std::int64_t value = parseConstPrimary();
    while (accept(TokenKind::Star)) value *= parseConstPrimary();
    return value;
  }

  std::int64_t parseConstPrimary() {
    if (accept(TokenKind::LParen)) {
      const std::int64_t value = parseConstExpr();
      expect(TokenKind::RParen, "expected ')'");
      return value;
    }
    if (check(TokenKind::Identifier)) {
      const Token& token = advance();
      const auto it = params_.find(token.text);
      if (it == params_.end()) {
        fail("'" + token.text + "' is not a declared parameter (only literals and parameters "
             "may appear in constant expressions)");
      }
      return it->second.value;
    }
    const Token& token = expect(TokenKind::Number, "expected a constant");
    return static_cast<std::int64_t>(token.value);
  }

  void parseModuleItem() {
    switch (peek().kind) {
      case TokenKind::KwInput:
      case TokenKind::KwOutput:
      case TokenKind::KwWire:
      case TokenKind::KwReg: parseDeclaration(); break;
      case TokenKind::KwParameter:
      case TokenKind::KwLocalparam: parseParameterDecl(); break;
      case TokenKind::KwAssign: parseContAssign(); break;
      case TokenKind::KwAlways: parseAlways(); break;
      default: fail("unsupported module item");
    }
  }

  /// `parameter`/`localparam` module item (both behave as constants here).
  void parseParameterDecl() {
    advance();  // 'parameter' or 'localparam'
    do {
      parseParameterAssignment();
    } while (accept(TokenKind::Comma));
    expect(TokenKind::Semicolon, "expected ';' after parameter declaration");
  }

  void parseDeclaration() {
    const TokenKind head = advance().kind;
    bool isPortDecl = head == TokenKind::KwInput || head == TokenKind::KwOutput;
    const bool isInput = head == TokenKind::KwInput;
    bool isReg = head == TokenKind::KwReg;
    if (isPortDecl && accept(TokenKind::KwReg)) {
      if (isInput) fail("inputs cannot be declared 'reg'");
      isReg = true;
    }
    if (isPortDecl) accept(TokenKind::KwWire);
    rejectSigned();
    const Range range = parseOptionalRange();
    do {
      const std::string name = expect(TokenKind::Identifier, "expected signal name").text;
      if (isPortDecl) {
        declarePendingPort(name, range.width(), isInput, isReg);
      } else {
        const rtl::SignalId id = applyNetDeclaration(name, range.width(), isReg);
        // Net declaration assignment: `wire [7:0] s = expr;` desugars to a
        // declaration plus a continuous assignment (IEEE 1364-2001 §6.1.1).
        if (check(TokenKind::Assign)) {
          if (isReg) fail("reg initializers are not supported (use an always block)");
          advance();
          rtl::LValue lvalue;
          lvalue.signal = id;
          module_->addContAssign(lvalue, parseExpression());
        }
      }
    } while (accept(TokenKind::Comma));
    expect(TokenKind::Semicolon, "expected ';' after declaration");
  }

  void declarePendingPort(const std::string& name, int width, bool isInput, bool isReg) {
    const auto it = std::find_if(pendingPorts_.begin(), pendingPorts_.end(),
                                 [&name](const auto& entry) { return entry.first == name; });
    if (it == pendingPorts_.end()) {
      fail("direction declared for '" + name + "' which is not in the port list");
    }
    if (it->second) fail("port '" + name + "' declared twice");
    it->second = true;
    declareSignal(name, width, isInput, isReg ? rtl::NetKind::Reg : rtl::NetKind::Wire,
                  /*isPort=*/true);
  }

  rtl::SignalId applyNetDeclaration(const std::string& name, int width, bool isReg) {
    // `input a; wire a;` style redeclaration upgrades/confirms an existing
    // port; otherwise this declares a fresh internal net.
    if (const auto existing = module_->findSignal(name)) {
      if (module_->signal(*existing).width != width) {
        fail("conflicting width in redeclaration of '" + name + "'");
      }
      return *existing;
    }
    if (name == options_.keyPortName) fail("key port must be declared as an input");
    if (params_.count(name) != 0) fail("'" + name + "' is already declared as a parameter");
    if (width > 64) fail("signal '" + name + "' wider than the 64-bit subset limit");
    return isReg ? module_->addReg(name, width) : module_->addWire(name, width);
  }

  void declareSignal(const std::string& name, int width, bool isInput, rtl::NetKind net,
                     bool isPort) {
    if (name == options_.keyPortName) {
      if (!isInput) fail("key port '" + name + "' must be an input");
      keyWidth_ = width;
      return;  // modelled as the module's implicit key vector
    }
    if (width > 64) fail("signal '" + name + "' wider than the 64-bit subset limit");
    if (params_.count(name) != 0) fail("port '" + name + "' is already declared as a parameter");
    rtl::Signal signal;
    signal.name = name;
    signal.width = width;
    signal.net = net;
    signal.isPort = isPort;
    signal.dir = isInput ? rtl::PortDir::Input : rtl::PortDir::Output;
    module_->addSignal(std::move(signal));
  }

  void parseContAssign() {
    // 'assign' already current token.
    advance();
    const rtl::LValue target = parseLValue();
    expect(TokenKind::Assign, "expected '=' in continuous assignment");
    ExprPtr value = parseExpression();
    expect(TokenKind::Semicolon, "expected ';' after assignment");
    module_->addContAssign(target, std::move(value));
  }

  rtl::LValue parseLValue() {
    const std::string name = expect(TokenKind::Identifier, "expected assignment target").text;
    if (name == options_.keyPortName) fail("cannot assign to the key input");
    const auto id = module_->findSignal(name);
    if (!id) fail("assignment to undeclared signal '" + name + "'");
    rtl::LValue lvalue;
    lvalue.signal = *id;
    if (accept(TokenKind::LBracket)) {
      const std::int64_t first = parseConstExpr();
      int hi = static_cast<int>(first);
      int lo = hi;
      if (accept(TokenKind::Colon)) {
        lo = static_cast<int>(parseConstExpr());
      }
      expect(TokenKind::RBracket, "expected ']'");
      if (lo < 0 || hi < lo || hi >= module_->signal(*id).width) {
        fail("part-select out of range on '" + name + "'");
      }
      lvalue.range = std::make_pair(hi, lo);
    }
    return lvalue;
  }

  void parseAlways() {
    advance();  // 'always'
    expect(TokenKind::At, "expected '@' after 'always'");
    bool sequential = false;
    rtl::SignalId clock = 0;

    if (accept(TokenKind::LParen)) {
      if (accept(TokenKind::Star)) {
        expect(TokenKind::RParen, "expected ')'");
      } else if (accept(TokenKind::KwPosedge)) {
        const std::string clockName =
            expect(TokenKind::Identifier, "expected clock signal name").text;
        const auto id = module_->findSignal(clockName);
        if (!id) fail("undeclared clock '" + clockName + "'");
        clock = *id;
        sequential = true;
        if (check(TokenKind::Identifier) && peek().text == "or") {
          fail("multi-event sensitivity lists (async resets) are not supported — model the "
               "reset synchronously");
        }
        expect(TokenKind::RParen, "expected ')'");
      } else if (check(TokenKind::KwNegedge)) {
        fail("@(negedge ...) sensitivity lists are not supported — the subset models "
             "single-clock posedge logic");
      } else {
        fail("only @(*) and @(posedge clk) sensitivity lists are supported");
      }
    } else if (accept(TokenKind::Star)) {
      // '@*' form.
    } else {
      fail("expected '(*' or '*' after '@'");
    }

    StmtPtr body = parseStatement(sequential);
    module_->addProcess(sequential ? rtl::ProcessKind::Sequential : rtl::ProcessKind::Combinational,
                        clock, std::move(body));
  }

  StmtPtr parseStatement(bool sequential) {
    if (accept(TokenKind::KwBegin)) {
      std::vector<StmtPtr> body;
      while (!check(TokenKind::KwEnd)) body.push_back(parseStatement(sequential));
      expect(TokenKind::KwEnd, "expected 'end'");
      return rtl::makeBlock(std::move(body));
    }
    if (accept(TokenKind::KwIf)) {
      expect(TokenKind::LParen, "expected '(' after 'if'");
      ExprPtr cond = parseExpression();
      expect(TokenKind::RParen, "expected ')' after if-condition");
      StmtPtr thenBranch = parseStatement(sequential);
      StmtPtr elseBranch;
      if (accept(TokenKind::KwElse)) elseBranch = parseStatement(sequential);
      return rtl::makeIf(std::move(cond), std::move(thenBranch), std::move(elseBranch));
    }
    if (accept(TokenKind::KwCase)) {
      expect(TokenKind::LParen, "expected '(' after 'case'");
      ExprPtr subject = parseExpression();
      expect(TokenKind::RParen, "expected ')' after case subject");
      std::vector<rtl::CaseItem> items;
      StmtPtr defaultBody;
      while (!check(TokenKind::KwEndcase)) {
        if (accept(TokenKind::KwDefault)) {
          accept(TokenKind::Colon);
          if (defaultBody) fail("duplicate default arm");
          defaultBody = parseStatement(sequential);
          continue;
        }
        rtl::CaseItem item;
        do {
          const Token& label = expect(TokenKind::Number, "expected constant case label");
          item.labels.push_back(label.value);
        } while (accept(TokenKind::Comma));
        expect(TokenKind::Colon, "expected ':' after case label");
        item.body = parseStatement(sequential);
        items.push_back(std::move(item));
      }
      expect(TokenKind::KwEndcase, "expected 'endcase'");
      return rtl::makeCase(std::move(subject), std::move(items), std::move(defaultBody));
    }

    // Assignment statement.
    const rtl::LValue target = parseLValue();
    bool nonBlocking = false;
    if (accept(TokenKind::LtEq)) {
      nonBlocking = true;
    } else {
      expect(TokenKind::Assign, "expected '=' or '<=' in assignment");
    }
    if (sequential && !nonBlocking) {
      fail("sequential blocks must use non-blocking assignments in this subset");
    }
    if (!sequential && nonBlocking) {
      fail("combinational blocks must use blocking assignments in this subset");
    }
    ExprPtr value = parseExpression();
    expect(TokenKind::Semicolon, "expected ';' after assignment");
    return rtl::makeAssign(target, std::move(value), nonBlocking);
  }

  // ---- expressions ----

  ExprPtr parseExpression() {
    ExprPtr cond = parseBinary(1);
    if (!accept(TokenKind::Question)) return cond;
    ExprPtr thenExpr = parseExpression();
    expect(TokenKind::Colon, "expected ':' in ternary expression");
    ExprPtr elseExpr = parseExpression();
    return rtl::makeTernary(std::move(cond), std::move(thenExpr), std::move(elseExpr));
  }

  ExprPtr parseBinary(int minPrecedence) {
    ExprPtr lhs = parseUnary();
    for (;;) {
      const auto opInfo = binaryOpFor(peek().kind);
      if (!opInfo) return lhs;
      const int precedence = rtl::opPrecedence(opInfo->op);
      if (precedence < minPrecedence) return lhs;
      advance();
      ExprPtr rhs = parseBinary(opInfo->rightAssoc ? precedence : precedence + 1);
      lhs = rtl::makeBinary(opInfo->op, std::move(lhs), std::move(rhs));
    }
  }

  ExprPtr parseUnary() {
    switch (peek().kind) {
      case TokenKind::Minus: advance(); return rtl::makeUnary(rtl::UnaryOp::Neg, parseUnary());
      case TokenKind::Tilde: advance(); return rtl::makeUnary(rtl::UnaryOp::BitNot, parseUnary());
      case TokenKind::Bang: advance(); return rtl::makeUnary(rtl::UnaryOp::LogNot, parseUnary());
      case TokenKind::Amp: advance(); return rtl::makeUnary(rtl::UnaryOp::RedAnd, parseUnary());
      case TokenKind::Pipe: advance(); return rtl::makeUnary(rtl::UnaryOp::RedOr, parseUnary());
      case TokenKind::Caret: advance(); return rtl::makeUnary(rtl::UnaryOp::RedXor, parseUnary());
      default: return parsePrimary();
    }
  }

  ExprPtr parsePrimary() {
    if (accept(TokenKind::LParen)) {
      ExprPtr inner = parseExpression();
      expect(TokenKind::RParen, "expected ')'");
      return inner;
    }
    if (check(TokenKind::Number)) {
      const Token& token = advance();
      const int width = token.numberWidth > 0 ? token.numberWidth : options_.unsizedLiteralWidth;
      return rtl::makeConstant(token.value, width);
    }
    if (check(TokenKind::LBrace)) return parseConcatOrReplication();
    if (check(TokenKind::Identifier)) return parseReference();
    fail("expected an expression");
  }

  ExprPtr parseConcatOrReplication() {
    expect(TokenKind::LBrace, "expected '{'");
    // Replication: {N{expr}} — N must be a literal.
    if (check(TokenKind::Number) && peek(1).kind == TokenKind::LBrace) {
      const Token& count = advance();
      expect(TokenKind::LBrace, "expected '{' in replication");
      ExprPtr body = parseExpression();
      expect(TokenKind::RBrace, "expected '}' in replication");
      expect(TokenKind::RBrace, "expected '}' closing replication");
      if (count.value == 0 || count.value > 64) fail("replication count out of range");
      std::vector<ExprPtr> parts;
      parts.reserve(static_cast<std::size_t>(count.value));
      for (std::uint64_t i = 0; i < count.value; ++i) parts.push_back(body->clone());
      return rtl::makeConcat(std::move(parts));
    }
    std::vector<ExprPtr> parts;
    do {
      parts.push_back(parseExpression());
    } while (accept(TokenKind::Comma));
    expect(TokenKind::RBrace, "expected '}' after concatenation");
    return rtl::makeConcat(std::move(parts));
  }

  ExprPtr parseReference() {
    const std::string name = expect(TokenKind::Identifier, "expected identifier").text;
    if (const auto param = params_.find(name); param != params_.end()) {
      if (check(TokenKind::LBracket)) fail("bit-selects on parameters are not supported");
      const int width =
          param->second.width > 0 ? param->second.width : options_.unsizedLiteralWidth;
      return rtl::makeConstant(static_cast<std::uint64_t>(param->second.value), width);
    }
    std::optional<std::pair<int, int>> range;
    if (accept(TokenKind::LBracket)) {
      const bool paramIndex =
          check(TokenKind::Identifier) && params_.count(peek().text) != 0;
      if (!check(TokenKind::Number) && !check(TokenKind::LParen) && !paramIndex) {
        fail("only constant bit/part-selects are supported in this subset");
      }
      const int hi = static_cast<int>(parseConstExpr());
      int lo = hi;
      if (accept(TokenKind::Colon)) lo = static_cast<int>(parseConstExpr());
      expect(TokenKind::RBracket, "expected ']'");
      range = std::make_pair(hi, lo);
    }

    if (name == options_.keyPortName) {
      if (range) {
        const auto [hi, lo] = *range;
        if (lo < 0 || hi < lo) fail("bad key bit select");
        keyWidth_ = std::max(keyWidth_, hi + 1);
        return rtl::makeKeyRef(lo, hi - lo + 1);
      }
      if (keyWidth_ == 0) fail("bare key reference before key declaration");
      return rtl::makeKeyRef(0, keyWidth_);
    }

    const auto id = module_->findSignal(name);
    if (!id) fail("reference to undeclared signal '" + name + "'");
    ExprPtr ref = rtl::makeSignalRef(*id, module_->signal(*id).width);
    if (range) {
      const auto [hi, lo] = *range;
      if (lo < 0 || hi < lo || hi >= module_->signal(*id).width) {
        fail("bit/part-select out of range on '" + name + "'");
      }
      return rtl::makeSlice(std::move(ref), hi, lo);
    }
    return ref;
  }

  ParserOptions options_;
  std::vector<Token> tokens_;
  std::size_t cursor_ = 0;

  struct Parameter {
    std::int64_t value = 0;
    int width = -1;  // -1 = unsized (references use the unsized literal width)
  };

  std::optional<rtl::Module> module_;
  std::vector<std::pair<std::string, bool>> pendingPorts_;  // name, direction-seen
  std::map<std::string, Parameter> params_;
  int keyWidth_ = 0;
};

}  // namespace

rtl::Design parseDesign(std::string_view source, const ParserOptions& options) {
  Parser parser{source, options};
  rtl::Design design = parser.parseDesign();
  // The grammar above rejects out-of-subset syntax; the IR verifier rejects
  // structurally broken semantics the grammar cannot see (multiple drivers,
  // driven inputs, combinational loops) with the same loud support::Error
  // policy.  Accepted modules are verified clean in every build type.
  for (std::size_t i = 0; i < design.moduleCount(); ++i) {
    analysis::requireVerified(design.module(i), "verilog");
  }
  return design;
}

rtl::Module parseModule(std::string_view source, const ParserOptions& options) {
  Parser parser{source, options};
  rtl::Module module = parser.parseModule();
  analysis::requireVerified(module, "verilog");
  return module;
}

}  // namespace rtlock::verilog
