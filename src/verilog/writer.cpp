#include "verilog/writer.hpp"

#include <sstream>

#include "support/diagnostics.hpp"

namespace rtlock::verilog {

namespace {

using rtl::Expr;
using rtl::ExprKind;
using rtl::Module;
using rtl::OpKind;

class ModuleWriter {
 public:
  ModuleWriter(const Module& module, const WriterOptions& options, std::ostream& out)
      : module_(module), options_(options), out_(out) {}

  /// Renders a standalone expression (statement context).
  void runExprOnly(const Expr& expr) { writeExprNode(expr, 0, false); }

  void run() {
    if (options_.emitHeaderComment) {
      out_ << "// module " << module_.name();
      if (module_.keyWidth() > 0) out_ << " — locked, key width " << module_.keyWidth();
      out_ << "\n";
    }
    writeHeader();
    writeDeclarations();
    writeContAssigns();
    writeProcesses();
    out_ << "endmodule\n";
  }

 private:
  void indent(int depth) {
    for (int i = 0; i < depth * options_.indentWidth; ++i) out_ << ' ';
  }

  void writeHeader() {
    out_ << "module " << module_.name() << " (";
    bool first = true;
    for (const auto id : module_.ports()) {
      if (!first) out_ << ", ";
      out_ << module_.signal(id).name;
      first = false;
    }
    if (module_.keyWidth() > 0) {
      if (!first) out_ << ", ";
      out_ << module_.keyPortName();
    }
    out_ << ");\n";
  }

  void writeRange(int width) {
    if (width > 1) out_ << '[' << width - 1 << ":0] ";
  }

  void writeDeclarations() {
    // Declarations follow signal-id order so that reparsing assigns identical
    // ids — locked designs round-trip to structurally equal modules.
    for (rtl::SignalId id = 0; id < module_.signalCount(); ++id) {
      const auto& signal = module_.signal(id);
      indent(1);
      if (signal.isPort) {
        out_ << (signal.dir == rtl::PortDir::Input ? "input " : "output ");
        if (signal.net == rtl::NetKind::Reg) out_ << "reg ";
      } else {
        out_ << (signal.net == rtl::NetKind::Reg ? "reg " : "wire ");
      }
      writeRange(signal.width);
      out_ << signal.name << ";\n";
    }
    if (module_.keyWidth() > 0) {
      indent(1);
      out_ << "input ";
      writeRange(module_.keyWidth());
      out_ << module_.keyPortName() << ";\n";
    }
    out_ << '\n';
  }

  void writeLValue(const rtl::LValue& lvalue) {
    out_ << module_.signal(lvalue.signal).name;
    if (lvalue.range) {
      const auto [hi, lo] = *lvalue.range;
      if (hi == lo) {
        out_ << '[' << hi << ']';
      } else {
        out_ << '[' << hi << ':' << lo << ']';
      }
    }
  }

  void writeContAssigns() {
    for (const auto& assign : module_.contAssigns()) {
      indent(1);
      out_ << "assign ";
      writeLValue(assign->target());
      out_ << " = ";
      writeExprNode(assign->value(), /*parentPrecedence=*/0, /*rightChild=*/false);
      out_ << ";\n";
    }
    if (!module_.contAssigns().empty()) out_ << '\n';
  }

  void writeProcesses() {
    for (const auto& process : module_.processes()) {
      indent(1);
      if (process->kind == rtl::ProcessKind::Sequential) {
        out_ << "always @(posedge " << module_.signal(process->clock).name << ") ";
      } else {
        out_ << "always @(*) ";
      }
      writeStmt(*process->body, 1, /*leadingIndent=*/false);
      out_ << '\n';
    }
  }

  void writeStmt(const rtl::Stmt& stmt, int depth, bool leadingIndent = true) {
    if (leadingIndent) indent(depth);
    switch (stmt.kind()) {
      case rtl::StmtKind::Block: {
        out_ << "begin\n";
        for (int i = 0; i < stmt.stmtSlotCount(); ++i) {
          writeStmt(stmt.stmtAt(i), depth + 1);
        }
        indent(depth);
        out_ << "end\n";
        break;
      }
      case rtl::StmtKind::If: {
        const auto& ifStmt = static_cast<const rtl::IfStmt&>(stmt);
        out_ << "if (";
        writeExprNode(ifStmt.cond(), 0, false);
        out_ << ") ";
        writeStmt(ifStmt.stmtAt(0), depth, /*leadingIndent=*/false);
        if (ifStmt.hasElse()) {
          indent(depth);
          out_ << "else ";
          writeStmt(ifStmt.stmtAt(1), depth, /*leadingIndent=*/false);
        }
        break;
      }
      case rtl::StmtKind::Case: {
        const auto& caseStmt = static_cast<const rtl::CaseStmt&>(stmt);
        out_ << "case (";
        writeExprNode(caseStmt.subject(), 0, false);
        out_ << ")\n";
        const int width = caseStmt.subject().width();
        for (std::size_t i = 0; i < caseStmt.items().size(); ++i) {
          indent(depth + 1);
          const auto& labels = caseStmt.items()[i].labels;
          for (std::size_t j = 0; j < labels.size(); ++j) {
            if (j != 0) out_ << ", ";
            writeLiteral(labels[j], width);
          }
          out_ << ": ";
          writeStmt(caseStmt.stmtAt(static_cast<int>(i)), depth + 1,
                    /*leadingIndent=*/false);
        }
        if (caseStmt.hasDefault()) {
          indent(depth + 1);
          out_ << "default: ";
          writeStmt(caseStmt.stmtAt(static_cast<int>(caseStmt.items().size())),
                    depth + 1, /*leadingIndent=*/false);
        }
        indent(depth);
        out_ << "endcase\n";
        break;
      }
      case rtl::StmtKind::Assign: {
        const auto& assign = static_cast<const rtl::AssignStmt&>(stmt);
        writeLValue(assign.target());
        out_ << (assign.nonBlocking() ? " <= " : " = ");
        writeExprNode(assign.value(), 0, false);
        out_ << ";\n";
        break;
      }
    }
  }

  void writeLiteral(std::uint64_t value, int width) {
    out_ << width << "'h" << std::hex << value << std::dec;
  }

  // parentPrecedence 0 = statement context (no parens needed around the whole
  // expression); ternaries use pseudo-precedence 0 so any nested ternary is
  // parenthesized.
  void writeExprNode(const Expr& expr, int parentPrecedence, bool rightChild) {
    switch (expr.kind()) {
      case ExprKind::Constant: {
        const auto& constant = static_cast<const rtl::ConstantExpr&>(expr);
        writeLiteral(constant.value(), constant.width());
        break;
      }
      case ExprKind::SignalRef:
        out_ << module_.signal(static_cast<const rtl::SignalRefExpr&>(expr).signal()).name;
        break;
      case ExprKind::KeyRef: {
        const auto& key = static_cast<const rtl::KeyRefExpr&>(expr);
        out_ << module_.keyPortName();
        if (key.width() == 1) {
          out_ << '[' << key.firstBit() << ']';
        } else {
          out_ << '[' << key.firstBit() + key.width() - 1 << ':' << key.firstBit() << ']';
        }
        break;
      }
      case ExprKind::Unary: {
        const auto& unary = static_cast<const rtl::UnaryExpr&>(expr);
        out_ << rtl::unaryToken(unary.op());
        const bool needsParens = unary.operand().kind() == ExprKind::Binary ||
                                 unary.operand().kind() == ExprKind::Ternary ||
                                 unary.operand().kind() == ExprKind::Unary;
        if (needsParens) out_ << '(';
        writeExprNode(unary.operand(), /*parentPrecedence=*/100, false);
        if (needsParens) out_ << ')';
        break;
      }
      case ExprKind::Binary: {
        const auto& binary = static_cast<const rtl::BinaryExpr&>(expr);
        const int precedence = rtl::opPrecedence(binary.op());
        const bool needsParens =
            parentPrecedence > precedence || (parentPrecedence == precedence && rightChild);
        if (needsParens) out_ << '(';
        writeExprNode(binary.lhs(), precedence, false);
        out_ << ' ' << rtl::opToken(binary.op()) << ' ';
        writeExprNode(binary.rhs(), precedence, true);
        if (needsParens) out_ << ')';
        break;
      }
      case ExprKind::Ternary: {
        const auto& ternary = static_cast<const rtl::TernaryExpr&>(expr);
        const bool needsParens = parentPrecedence != 0;
        if (needsParens) out_ << '(';
        writeExprNode(ternary.cond(), /*parentPrecedence=*/1, false);
        out_ << " ? ";
        // Branch pseudo-precedence 1: nested ternaries (relocked pairs,
        // Fig. 3b) are parenthesized for readability; binaries are not.
        writeExprNode(ternary.thenExpr(), 1, false);
        out_ << " : ";
        writeExprNode(ternary.elseExpr(), 1, false);
        if (needsParens) out_ << ')';
        break;
      }
      case ExprKind::Concat: {
        out_ << '{';
        for (int i = 0; i < expr.exprSlotCount(); ++i) {
          if (i != 0) out_ << ", ";
          writeExprNode(expr.child(i), 0, false);
        }
        out_ << '}';
        break;
      }
      case ExprKind::Slice: {
        const auto& slice = static_cast<const rtl::SliceExpr&>(expr);
        RTLOCK_REQUIRE(slice.value().kind() == ExprKind::SignalRef,
                       "Verilog emission requires slices over named signals");
        writeExprNode(slice.value(), 100, false);
        if (slice.hi() == slice.lo()) {
          out_ << '[' << slice.hi() << ']';
        } else {
          out_ << '[' << slice.hi() << ':' << slice.lo() << ']';
        }
        break;
      }
    }
  }

  const Module& module_;
  const WriterOptions& options_;
  std::ostream& out_;
};

}  // namespace

std::string writeModule(const rtl::Module& module, const WriterOptions& options) {
  std::ostringstream out;
  ModuleWriter{module, options, out}.run();
  return out.str();
}

std::string writeDesign(const rtl::Design& design, const WriterOptions& options) {
  std::ostringstream out;
  for (std::size_t i = 0; i < design.moduleCount(); ++i) {
    if (i != 0) out << '\n';
    out << writeModule(design.module(i), options);
  }
  return out.str();
}

std::string writeExpr(const rtl::Expr& expr, const rtl::Module& module) {
  std::ostringstream out;
  const WriterOptions options;
  ModuleWriter writer{module, options, out};
  writer.runExprOnly(expr);
  return out.str();
}

}  // namespace rtlock::verilog
