// Recursive-descent parser for the Verilog-2001 subset.
//
// Supported constructs (documented in README/DESIGN):
//   * module header with classic name lists or ANSI port declarations;
//   * input/output/wire/reg declarations with [msb:lsb] ranges (lsb 0),
//     comma-separated declarator lists, `output reg` combinations;
//   * continuous assignments to whole signals or constant part-selects;
//   * always @(*) with blocking assignments and always @(posedge clk) with
//     non-blocking assignments; begin/end, if/else, case/endcase (constant
//     labels, optional default);
//   * full expression grammar: ternary, all binary/unary operators, concat,
//     replication {n{...}}, constant bit/part-selects, sized and unsized
//     literals (<= 64 bits).
//
// The key input is first-class: an input whose name equals
// ParserOptions::keyPortName is mapped to the module's key vector, and
// references to it become KeyRef nodes — locked designs round-trip exactly.
#pragma once

#include <string_view>
#include <vector>

#include "rtl/module.hpp"
#include "verilog/token.hpp"

namespace rtlock::verilog {

struct ParserOptions {
  /// Name of the locking-key input recognized during parsing.
  std::string keyPortName = "lock_key";
  /// Width assumed for unsized literals (Verilog default is 32).
  int unsizedLiteralWidth = 32;
};

/// Parses one or more modules.  Throws support::Error with line/column info
/// on malformed or unsupported input.
[[nodiscard]] rtl::Design parseDesign(std::string_view source, const ParserOptions& options = {});

/// Parses a source containing exactly one module.
[[nodiscard]] rtl::Module parseModule(std::string_view source, const ParserOptions& options = {});

}  // namespace rtlock::verilog
