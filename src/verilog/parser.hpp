// Recursive-descent parser for the Verilog-2001 subset.
//
// Supported constructs (see docs/CLI.md for the user-facing list):
//   * module header with classic name lists or ANSI port declarations,
//     including direction carry-over (`input [7:0] a, b`) and `#(parameter
//     ...)` parameter ports;
//   * input/output/wire/reg declarations with [msb:lsb] ranges (lsb 0),
//     comma-separated declarator lists, `output reg` combinations, wire
//     declaration initializers (`wire [7:0] s = expr;`);
//   * parameter/localparam integer constants, usable in ranges, constant
//     expressions and data-path expressions;
//   * continuous assignments to whole signals or constant part-selects;
//   * always @(*) with blocking assignments and always @(posedge clk) with
//     non-blocking assignments; begin/end, if/else, case/endcase (constant
//     labels, optional default);
//   * full expression grammar: ternary, all binary/unary operators, concat,
//     replication {n{...}}, constant bit/part-selects, sized and unsized
//     literals (<= 64 bits).
//
// Out-of-subset constructs fail loudly with a targeted message (signed
// declarations, negedge/multi-event sensitivity lists, module instances),
// never by silently mis-parsing.
//
// The key input is first-class: an input whose name equals
// ParserOptions::keyPortName is mapped to the module's key vector, and
// references to it become KeyRef nodes — locked designs round-trip exactly.
#pragma once

#include <string_view>
#include <vector>

#include "rtl/module.hpp"
#include "verilog/token.hpp"

namespace rtlock::verilog {

struct ParserOptions {
  /// Name of the locking-key input recognized during parsing.
  std::string keyPortName = "lock_key";
  /// Width assumed for unsized literals (Verilog default is 32).
  int unsizedLiteralWidth = 32;
};

// Contract ------------------------------------------------------------------
// Ownership: the returned Design/Module owns every IR node; `source` is not
//   retained past the call.
// Determinism: output is a pure function of (source, options) — no global
//   state, no iteration-order dependence; the same text always produces a
//   structurally identical IR (key bits included).
// Thread-safety: safe to call concurrently from any number of threads; each
//   call parses into private state.  Failure is support::Error with
//   line/column info, for malformed and for out-of-subset input alike.

/// Parses one or more modules.
[[nodiscard]] rtl::Design parseDesign(std::string_view source, const ParserOptions& options = {});

/// Parses a source containing exactly one module.
[[nodiscard]] rtl::Module parseModule(std::string_view source, const ParserOptions& options = {});

}  // namespace rtlock::verilog
