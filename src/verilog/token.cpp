#include "verilog/token.hpp"

namespace rtlock::verilog {

std::string_view tokenKindName(TokenKind kind) noexcept {
  switch (kind) {
    case TokenKind::Identifier: return "identifier";
    case TokenKind::Number: return "number";
    case TokenKind::KwModule: return "module";
    case TokenKind::KwEndmodule: return "endmodule";
    case TokenKind::KwInput: return "input";
    case TokenKind::KwOutput: return "output";
    case TokenKind::KwWire: return "wire";
    case TokenKind::KwReg: return "reg";
    case TokenKind::KwAssign: return "assign";
    case TokenKind::KwAlways: return "always";
    case TokenKind::KwBegin: return "begin";
    case TokenKind::KwEnd: return "end";
    case TokenKind::KwIf: return "if";
    case TokenKind::KwElse: return "else";
    case TokenKind::KwCase: return "case";
    case TokenKind::KwEndcase: return "endcase";
    case TokenKind::KwDefault: return "default";
    case TokenKind::KwPosedge: return "posedge";
    case TokenKind::KwNegedge: return "negedge";
    case TokenKind::KwParameter: return "parameter";
    case TokenKind::KwLocalparam: return "localparam";
    case TokenKind::KwSigned: return "signed";
    case TokenKind::Hash: return "#";
    case TokenKind::LParen: return "(";
    case TokenKind::RParen: return ")";
    case TokenKind::LBracket: return "[";
    case TokenKind::RBracket: return "]";
    case TokenKind::LBrace: return "{";
    case TokenKind::RBrace: return "}";
    case TokenKind::Semicolon: return ";";
    case TokenKind::Colon: return ":";
    case TokenKind::Comma: return ",";
    case TokenKind::Question: return "?";
    case TokenKind::At: return "@";
    case TokenKind::Plus: return "+";
    case TokenKind::Minus: return "-";
    case TokenKind::Star: return "*";
    case TokenKind::Slash: return "/";
    case TokenKind::Percent: return "%";
    case TokenKind::StarStar: return "**";
    case TokenKind::Shl: return "<<";
    case TokenKind::Shr: return ">>";
    case TokenKind::AShr: return ">>>";
    case TokenKind::Amp: return "&";
    case TokenKind::Pipe: return "|";
    case TokenKind::Caret: return "^";
    case TokenKind::TildeCaret: return "~^";
    case TokenKind::Tilde: return "~";
    case TokenKind::Bang: return "!";
    case TokenKind::AmpAmp: return "&&";
    case TokenKind::PipePipe: return "||";
    case TokenKind::Lt: return "<";
    case TokenKind::Gt: return ">";
    case TokenKind::LtEq: return "<=";
    case TokenKind::GtEq: return ">=";
    case TokenKind::EqEq: return "==";
    case TokenKind::BangEq: return "!=";
    case TokenKind::Assign: return "=";
    case TokenKind::EndOfFile: return "end of file";
  }
  return "?";
}

}  // namespace rtlock::verilog
