#include "verilog/lexer.hpp"

#include <cctype>
#include <map>

#include "support/diagnostics.hpp"

namespace rtlock::verilog {

namespace {

const std::map<std::string_view, TokenKind>& keywordTable() {
  static const std::map<std::string_view, TokenKind> table{
      {"module", TokenKind::KwModule},   {"endmodule", TokenKind::KwEndmodule},
      {"input", TokenKind::KwInput},     {"output", TokenKind::KwOutput},
      {"wire", TokenKind::KwWire},       {"reg", TokenKind::KwReg},
      {"assign", TokenKind::KwAssign},   {"always", TokenKind::KwAlways},
      {"begin", TokenKind::KwBegin},     {"end", TokenKind::KwEnd},
      {"if", TokenKind::KwIf},           {"else", TokenKind::KwElse},
      {"case", TokenKind::KwCase},       {"endcase", TokenKind::KwEndcase},
      {"default", TokenKind::KwDefault}, {"posedge", TokenKind::KwPosedge},
      {"negedge", TokenKind::KwNegedge}, {"parameter", TokenKind::KwParameter},
      {"localparam", TokenKind::KwLocalparam}, {"signed", TokenKind::KwSigned},
  };
  return table;
}

[[nodiscard]] bool isIdentStart(char c) noexcept {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_' || c == '$';
}

[[nodiscard]] bool isIdentBody(char c) noexcept {
  return isIdentStart(c) || std::isdigit(static_cast<unsigned char>(c)) != 0;
}

[[nodiscard]] int digitValue(char c, int base) noexcept {
  int value = -1;
  if (c >= '0' && c <= '9') value = c - '0';
  else if (c >= 'a' && c <= 'f') value = c - 'a' + 10;
  else if (c >= 'A' && c <= 'F') value = c - 'A' + 10;
  return value >= 0 && value < base ? value : -1;
}

}  // namespace

Lexer::Lexer(std::string_view source) : source_(source) {}

char Lexer::peek(std::size_t lookahead) const noexcept {
  return pos_ + lookahead < source_.size() ? source_[pos_ + lookahead] : '\0';
}

char Lexer::advance() noexcept {
  const char c = source_[pos_++];
  if (c == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  return c;
}

bool Lexer::match(char expected) noexcept {
  if (atEnd() || peek() != expected) return false;
  advance();
  return true;
}

void Lexer::fail(const std::string& message) const {
  throw support::Error{"verilog lexer error at line " + std::to_string(tokenLine_) + ", column " +
                       std::to_string(tokenColumn_) + ": " + message};
}

Token Lexer::makeToken(TokenKind kind, std::string text) const {
  Token token;
  token.kind = kind;
  token.text = std::move(text);
  token.line = tokenLine_;
  token.column = tokenColumn_;
  return token;
}

void Lexer::skipWhitespaceAndComments() {
  for (;;) {
    if (atEnd()) return;
    const char c = peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance();
    } else if (c == '/' && peek(1) == '/') {
      while (!atEnd() && peek() != '\n') advance();
    } else if (c == '/' && peek(1) == '*') {
      advance();
      advance();
      while (!atEnd() && !(peek() == '*' && peek(1) == '/')) advance();
      if (atEnd()) fail("unterminated block comment");
      advance();
      advance();
    } else {
      return;
    }
  }
}

std::vector<Token> Lexer::tokenize() {
  std::vector<Token> tokens;
  for (;;) {
    skipWhitespaceAndComments();
    tokenLine_ = line_;
    tokenColumn_ = column_;
    if (atEnd()) {
      tokens.push_back(makeToken(TokenKind::EndOfFile));
      return tokens;
    }
    const char c = peek();
    if (isIdentStart(c) || c == '\\') {
      tokens.push_back(lexIdentifierOrKeyword());
    } else if (std::isdigit(static_cast<unsigned char>(c)) != 0 || c == '\'') {
      tokens.push_back(lexNumber());
    } else {
      tokens.push_back(lexOperator());
    }
  }
}

Token Lexer::lexIdentifierOrKeyword() {
  std::string name;
  if (peek() == '\\') {
    // Escaped identifier: backslash to next whitespace.
    advance();
    while (!atEnd() && !std::isspace(static_cast<unsigned char>(peek()))) {
      name.push_back(advance());
    }
    if (name.empty()) fail("empty escaped identifier");
    return makeToken(TokenKind::Identifier, std::move(name));
  }
  while (!atEnd() && isIdentBody(peek())) name.push_back(advance());
  const auto it = keywordTable().find(name);
  if (it != keywordTable().end()) return makeToken(it->second, std::move(name));
  return makeToken(TokenKind::Identifier, std::move(name));
}

Token Lexer::lexNumber() {
  std::string text;
  std::uint64_t sizePrefix = 0;
  bool hasSizePrefix = false;

  while (!atEnd() && (std::isdigit(static_cast<unsigned char>(peek())) != 0 || peek() == '_')) {
    const char c = advance();
    text.push_back(c);
    if (c != '_') sizePrefix = sizePrefix * 10 + static_cast<std::uint64_t>(c - '0');
  }
  if (!text.empty()) hasSizePrefix = true;

  if (atEnd() || peek() != '\'') {
    // Plain decimal literal.
    if (!hasSizePrefix) fail("expected a number");
    Token token = makeToken(TokenKind::Number, std::move(text));
    token.value = sizePrefix;
    token.numberWidth = 0;  // unsized
    return token;
  }

  // Based literal: [size]'[base]digits
  text.push_back(advance());  // consume '
  if (atEnd()) fail("unterminated based literal");
  int base = 0;
  const char baseChar = advance();
  text.push_back(baseChar);
  switch (std::tolower(static_cast<unsigned char>(baseChar))) {
    case 'b': base = 2; break;
    case 'o': base = 8; break;
    case 'd': base = 10; break;
    case 'h': base = 16; break;
    default: fail(std::string{"unknown number base '"} + baseChar + "'");
  }

  std::uint64_t value = 0;
  bool sawDigit = false;
  while (!atEnd()) {
    const char c = peek();
    if (c == '_') {
      text.push_back(advance());
      continue;
    }
    const int digit = digitValue(c, base);
    if (digit < 0) break;
    // Overflow check: constants above 64 bits are outside the subset.
    if (value > (~std::uint64_t{0} - static_cast<std::uint64_t>(digit)) /
                    static_cast<std::uint64_t>(base)) {
      fail("constant exceeds 64 bits (unsupported subset)");
    }
    value = value * static_cast<std::uint64_t>(base) + static_cast<std::uint64_t>(digit);
    text.push_back(advance());
    sawDigit = true;
  }
  if (!sawDigit) fail("based literal has no digits");

  if (hasSizePrefix && (sizePrefix == 0 || sizePrefix > 64)) {
    fail("literal size must be between 1 and 64 bits");
  }

  Token token = makeToken(TokenKind::Number, std::move(text));
  token.value = value;
  token.numberWidth = hasSizePrefix ? static_cast<int>(sizePrefix) : 0;
  return token;
}

Token Lexer::lexOperator() {
  const char c = advance();
  switch (c) {
    case '(': return makeToken(TokenKind::LParen, "(");
    case ')': return makeToken(TokenKind::RParen, ")");
    case '[': return makeToken(TokenKind::LBracket, "[");
    case ']': return makeToken(TokenKind::RBracket, "]");
    case '{': return makeToken(TokenKind::LBrace, "{");
    case '}': return makeToken(TokenKind::RBrace, "}");
    case ';': return makeToken(TokenKind::Semicolon, ";");
    case ':': return makeToken(TokenKind::Colon, ":");
    case ',': return makeToken(TokenKind::Comma, ",");
    case '?': return makeToken(TokenKind::Question, "?");
    case '@': return makeToken(TokenKind::At, "@");
    case '#': return makeToken(TokenKind::Hash, "#");
    case '+': return makeToken(TokenKind::Plus, "+");
    case '-': return makeToken(TokenKind::Minus, "-");
    case '*':
      if (match('*')) return makeToken(TokenKind::StarStar, "**");
      return makeToken(TokenKind::Star, "*");
    case '/': return makeToken(TokenKind::Slash, "/");
    case '%': return makeToken(TokenKind::Percent, "%");
    case '&':
      if (match('&')) return makeToken(TokenKind::AmpAmp, "&&");
      return makeToken(TokenKind::Amp, "&");
    case '|':
      if (match('|')) return makeToken(TokenKind::PipePipe, "||");
      return makeToken(TokenKind::Pipe, "|");
    case '^':
      if (match('~')) return makeToken(TokenKind::TildeCaret, "^~");
      return makeToken(TokenKind::Caret, "^");
    case '~':
      if (match('^')) return makeToken(TokenKind::TildeCaret, "~^");
      return makeToken(TokenKind::Tilde, "~");
    case '!':
      if (match('=')) return makeToken(TokenKind::BangEq, "!=");
      return makeToken(TokenKind::Bang, "!");
    case '=':
      if (match('=')) return makeToken(TokenKind::EqEq, "==");
      return makeToken(TokenKind::Assign, "=");
    case '<':
      if (match('<')) return makeToken(TokenKind::Shl, "<<");
      if (match('=')) return makeToken(TokenKind::LtEq, "<=");
      return makeToken(TokenKind::Lt, "<");
    case '>':
      if (match('>')) {
        if (match('>')) return makeToken(TokenKind::AShr, ">>>");
        return makeToken(TokenKind::Shr, ">>");
      }
      if (match('=')) return makeToken(TokenKind::GtEq, ">=");
      return makeToken(TokenKind::Gt, ">");
    default: fail(std::string{"unexpected character '"} + c + "'");
  }
}

}  // namespace rtlock::verilog
