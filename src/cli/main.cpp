// The rtlock binary: a shim over cli::runCli so tests can drive the exact
// same code path in-process with captured streams.
#include <iostream>

#include "cli/cli.hpp"

int main(int argc, char** argv) { return rtlock::cli::runCli(argc, argv, std::cout, std::cerr); }
