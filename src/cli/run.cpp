// Subcommand dispatch: usage text, help/version handling, error-to-exit-code
// mapping.  docs/CLI.md mirrors the usage strings here — update both.
#include "cli/cli.hpp"

#include <ostream>
#include <string>
#include <vector>

#include "cli/common.hpp"
#include "service/build_info.hpp"

namespace rtlock::cli {

namespace {

constexpr const char* kLockUsage = R"(usage: rtlock lock <input.v> [flags]

Lock every module of a Verilog netlist and emit the locked netlist plus a
JSON key/provenance file (rtlock-key/v1).

flags:
  --algo=NAME       locking algorithm: serial|random|hra|greedy|era (default era)
  --budget=SPEC     key budget: 50% / 0.5 (fraction of lockable ops) or 40
                    (absolute key bits); default 75%
  --seed=N          RNG seed; module i draws from substream(i) (default 1)
  --out=PATH        locked netlist path (default <input>.locked.v)
  --key-out=PATH    key/provenance path (default <input>.key.json)
  --key-port=NAME   key input port name (default lock_key)
  --no-banner       omit the locking-statistics banner comment
  --csv             print the summary table as CSV
)";

constexpr const char* kAttackUsage = R"(usage: rtlock attack <locked.v> [flags]

Run the oracle-less SnapShot-RTL attack against a locked netlist and report
the Key Prediction Accuracy.  Needs nothing but the netlist; --key scores
the predictions against the lock-time ground truth.

flags:
  --key=PATH             key file from `rtlock lock` (enables KPA scoring)
  --module=NAME          attack this module (default: the only keyed module)
  --key-port=NAME        key input port name (default lock_key)
  --rounds=N             training relock rounds (default 1000, paper setup)
  --relock-budget=SPEC   training budget fraction, e.g. 75% (default 75%)
  --folds=N              auto-ml cross-validation folds (default 3)
  --extended-features    locality encoding with structural context
  --repeats=N            independent attack repeats, sharded over workers
  --seed=N               RNG root; repeat r draws from substream(r) (default 1)
  --threads=N            workers (default: RTLOCK_THREADS env, else hardware)
  --report=PATH          write JSON report (rows follow BENCH_baseline.json)
  --report-csv=PATH      write the rows as CSV
  --no-wall              zero wall_ms in rows (byte-stable output)
  --csv                  print the rows as CSV
)";

constexpr const char* kEvalUsage = R"(usage: rtlock eval <input.v> [flags]

Chain lock -> attack over an (algorithm x seed) grid: each cell locks fresh
samples of the input module and attacks every one.  Cells run through the
fault-isolated campaign runner with substream determinism — results are
bit-identical at every --threads count, a throwing cell becomes a
structured error row instead of aborting the grid, and --journal makes the
campaign crash-safe and resumable (docs/CAMPAIGNS.md).

exit codes: 0 all cells ok, 3 some cells failed/timed out, 4 interrupted
(SIGINT/SIGTERM drain; resume with the same --journal).

flags:
  --algos=LIST           comma-separated algorithms (default serial,hra,era)
  --seeds=LIST           seeds: 1,2,7 or ranges 1..5 (default 1)
  --samples=N            locked samples per cell (default 10, paper setup)
  --rounds=N             training relock rounds (default 1000)
  --budget=SPEC          key budget fraction, e.g. 75% (default 75%)
  --folds=N              auto-ml cross-validation folds (default 3)
  --extended-features    locality encoding with structural context
  --verify-functional    simulate each locked sample against the original
                         under its correct key; a mismatching sample fails
                         the cell (locking bug), KPA numbers are unchanged
  --sim-backend=NAME     simulator for --verify-functional: sliced (64-lane
                         bit-parallel, default) or compiled (scalar oracle);
                         both are bit-identical
  --module=NAME          evaluate this module (default: the only module)
  --key-port=NAME        key input port name (default lock_key)
  --threads=N            workers (default: RTLOCK_THREADS env, else hardware)
  --journal=PATH         checkpoint each cell to PATH; resume skips done cells
  --keep-errors          on resume, keep journaled error/timeout rows as-is
  --retries=N            extra attempts per failing cell (default 1)
  --deadline-ms=N        per-cell wall budget; overruns become timeout rows
  --check                re-run sampled journaled cells, byte-compare results
  --check-cells=N        sample size for --check (default 3)
  --report=PATH          write JSON report (rows follow BENCH_baseline.json)
  --report-csv=PATH      write the rows as CSV
  --no-wall              zero wall_ms in rows (byte-stable output)
  --csv                  print the rows as CSV
)";

constexpr const char* kWorkUsage = R"(usage: rtlock work <input.v> --manifest=PATH [flags]

Run one worker of a distributed eval campaign.  Start any number of workers
(any hosts sharing a filesystem) against the same --manifest with the
identical grid flags: the first worker atomically creates the manifest,
every worker claims cells through lease-based claim files
(<manifest>.claims/), and each journals results to its own journal under
<manifest>.journals/.  A worker that dies mid-cell leaves a claim that
expires after --lease-ms and is reclaimed by a survivor; duplicate computes
merge away because every cell is a pure function of its identity.  Workers
that see the fleet converge print the full merged report — byte-identical
to a single-process `rtlock eval` of the same grid (docs/CAMPAIGNS.md).

exit codes: 0 fleet converged and every cell ok, 3 failed/timed-out cells
or fleet not converged, 4 interrupted (SIGINT/SIGTERM drain).

flags:
  --manifest=PATH        the shared work manifest (required; created if absent)
  --owner=ID             worker identity in claim files (default <hostname>-<pid>)
  --journal=PATH         this worker's journal (default
                         <manifest>.journals/<owner>.jsonl)
  --lease-ms=N           claim lease: older claims count as orphaned and are
                         reclaimed (default 60000; 0 disables reclaim)
  --poll-ms=N            sweep sleep while other workers hold cells (default 50)
  --max-wait-ms=N        give up when the whole fleet makes no progress for
                         this long (default: wait forever)
  eval grid flags        --algos --seeds --samples --rounds --budget --folds
                         --extended-features --verify-functional --sim-backend
                         --module --key-port --threads --retries --deadline-ms
                         --report --report-csv --no-wall --csv  (see rtlock eval;
                         every worker must pass the identical grid)
)";

constexpr const char* kMergeUsage = R"(usage: rtlock merge [journal...] [flags]

Union per-worker campaign journals into one view.  All journals must carry
the same campaign identity header (hard error otherwise).  Duplicate ok
rows for one cell must be byte-identical — the determinism contract — and
are deduplicated; differing ok payloads are a hard error.  An ok row
supersedes error/timeout rows for the same cell.

With --manifest the merged rows are rebuilt into the full eval report (byte-
identical to `rtlock eval` of the same grid); without it a summary table is
printed.  --out writes the merged view as a valid journal for replay via
`rtlock eval --journal=<out>`.

exit codes: 0 complete and all ok, 3 missing/failed cells, 1 identity or
determinism errors.

flags:
  --journals-dir=DIR  merge every *.jsonl in DIR (in addition to positionals)
  --manifest=PATH     rebuild the full eval report in the manifest's grid
                      order; also defaults --journals-dir to
                      <manifest>.journals when no journals are listed
  --out=PATH          write the merged journal (atomic replace)
  --report=PATH       write JSON report (rows follow BENCH_baseline.json)
  --report-csv=PATH   write the rows as CSV
  --no-wall           zero wall_ms in rows (byte-stable output)
  --csv               print the rows as CSV
)";

constexpr const char* kLintUsage = R"(usage: rtlock lint <locked.v> [flags]

Static security analysis of a netlist: run the IR verifier (V1xx checks) and
the security lint (L2xx checks) over every module, then print the findings
and the static-resilience summary.  L201 "free key bit" findings are proofs:
the flagged bit's cone of influence reaches no output, so any guess for it
is correct.  Exits 1 when the verifier finds Error-severity problems.

flags:
  --module=NAME     lint this module only (default: every module)
  --key-port=NAME   key input port name (default lock_key)
  --report=PATH     write JSON report (rtlock-lint-report/v1: findings + rows)
  --report-csv=PATH write the rows as CSV
  --json            print the JSON report on stdout instead of text
  --no-wall         zero wall_ms in rows (byte-stable output)
  --csv             print the rows as CSV
)";

constexpr const char* kServeUsage = R"(usage: rtlock serve [flags]

Run the lock/attack/eval HTTP service.  One daemon holds a content-hash
session cache of parsed+verified+compiled designs, so repeated requests
against the same netlist skip the whole front half of the pipeline; response
bodies are bit-identical to the CLI's reports for the same inputs, warm or
cold (docs/SERVING.md).

endpoints:
  GET  /healthz    liveness + build identity
  GET  /v1/stats   session-cache and request counters
  POST /v1/lock    lock a netlist (JSON body with "source", "algo", ...)
  POST /v1/attack  SnapShot-RTL attack (rtlock-attack-report/v1 body)
  POST /v1/eval    (algorithm x seed) evaluation grid

exit codes: 0 clean drain (SIGINT/SIGTERM or --max-requests), 1 setup error.

flags:
  --host=ADDR            numeric IPv4 listen address (default 127.0.0.1)
  --port=N               TCP port; 0 picks an ephemeral port (default 0)
  --threads=N            connection workers (default: RTLOCK_THREADS, else hardware)
  --queue=N              pending-connection capacity; overflow answers 429 (default 64)
  --deadline-ms=N        per-request wall budget; overruns answer 504 (default: none)
  --cache-mb=N           session-cache byte budget (default 256)
  --max-body-mb=N        largest accepted request body (default 8)
  --max-requests=N       accept N connections then drain and exit (default: forever)
  --socket-timeout-ms=N  per-socket recv/send timeout (default 10000)
)";

constexpr const char* kReportUsage = R"(usage: rtlock report <report.json> [flags]

Render any rows-schema report (attack/eval reports, BENCH_baseline.json) as
an aligned table or CSV.

flags:
  --bench=NAME      keep rows with this bench (exact match)
  --metric=NAME     keep rows with this metric (exact match)
  --config=TEXT     keep rows whose config contains TEXT
  --csv             CSV instead of the aligned table
)";

constexpr const char* kDesignsUsage = R"(usage: rtlock designs [flags]

List the built-in benchmark registry (the paper's 14 evaluation designs)
with lockability numbers, or dump one design as Verilog.

flags:
  --emit=NAME       print design NAME as Verilog on stdout
  --csv             CSV instead of the aligned table
)";

void printGlobalHelp(std::ostream& out) {
  out << "rtlock — ML-resilient RTL locking: lock, attack and evaluate Verilog designs\n\n"
         "usage: rtlock <command> [args]\n\ncommands:\n";
  for (const Command& command : commandTable()) {
    out << "  " << command.name << std::string(10 - std::string{command.name}.size(), ' ')
        << command.oneLiner << "\n";
  }
  out << "\nRun 'rtlock help <command>' (or rtlock <command> --help) for the flag reference;\n"
         "docs/CLI.md is the full manual.\n";
}

}  // namespace

const std::vector<Command>& commandTable() {
  static const std::vector<Command> table{
      {"lock", "lock a Verilog netlist, emit locked netlist + key JSON", kLockUsage,
       runLockCommand},
      {"attack", "SnapShot-RTL attack against a locked netlist (KPA report)", kAttackUsage,
       runAttackCommand},
      {"eval", "lock->attack seed grids over one design (experiment engine)", kEvalUsage,
       runEvalCommand},
      {"work", "one worker of a distributed eval campaign (shared manifest)", kWorkUsage,
       runWorkCommand},
      {"merge", "union per-worker campaign journals into one report", kMergeUsage,
       runMergeCommand},
      {"lint", "static IR verification + key-influence security lint", kLintUsage,
       runLintCommand},
      {"serve", "HTTP lock/attack/eval service with a warm session cache", kServeUsage,
       runServeCommand},
      {"report", "render a rows-schema report JSON as table/CSV", kReportUsage,
       runReportCommand},
      {"designs", "list the built-in benchmark registry / dump a design", kDesignsUsage,
       runDesignsCommand},
  };
  return table;
}

int runCli(int argc, const char* const* argv, std::ostream& out, std::ostream& err) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);

  if (args.empty() || args[0] == "--help" || args[0] == "-h" || args[0] == "help") {
    if (args.size() >= 2 && args[0] == "help") {
      for (const Command& command : commandTable()) {
        if (args[1] == command.name) {
          out << command.usage;
          return kExitOk;
        }
      }
      err << "rtlock: unknown command '" << args[1] << "'\n";
      printGlobalHelp(err);
      return kExitUsage;
    }
    printGlobalHelp(out);
    return args.empty() ? kExitUsage : kExitOk;
  }
  if (args[0] == "--version") {
    // generatorTag() is the same build-identity string /healthz and the
    // report documents' "generator" field carry.
    out << service::generatorTag() << "\n";
    return kExitOk;
  }

  for (const Command& command : commandTable()) {
    if (args[0] != command.name) continue;
    const std::vector<std::string> rest(args.begin() + 1, args.end());
    for (const std::string& arg : rest) {
      if (arg == "--help" || arg == "-h") {
        out << command.usage;
        return kExitOk;
      }
    }
    CommandIo io{out, err};
    try {
      return command.run(rest, io);
    } catch (const UsageError& error) {
      err << "rtlock " << command.name << ": " << error.what() << "\n\n" << command.usage;
      return kExitUsage;
    } catch (const service::BadRequest& error) {
      // The service layer's caller-fault class: same blame, same exit code
      // as a flag typo.
      err << "rtlock " << command.name << ": " << error.what() << "\n\n" << command.usage;
      return kExitUsage;
    } catch (const std::exception& error) {
      err << "rtlock " << command.name << ": " << error.what() << "\n";
      return kExitError;
    }
  }

  err << "rtlock: unknown command '" << args[0] << "'\n";
  printGlobalHelp(err);
  return kExitUsage;
}

}  // namespace rtlock::cli
