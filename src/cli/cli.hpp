// rtlock — the end-to-end command-line tool over the library.
//
// One binary, five subcommands, covering the paper's whole workflow on
// arbitrary user-supplied Verilog (docs/CLI.md is the reference manual):
//
//   rtlock lock input.v --algo=hra --budget=50%   # lock, emit netlist + key
//   rtlock attack locked.v --key=key.json         # SnapShot attack + KPA
//   rtlock eval input.v --algos=hra,era           # lock+attack seed grids
//   rtlock report report.json                     # render any report JSON
//   rtlock designs                                # the built-in registry
//
// The entry point is a function, not main(): tests drive the CLI in-process
// through runCli with captured streams, and bin/main.cpp is a two-line shim.
#pragma once

#include <iosfwd>

namespace rtlock::cli {

/// Process exit codes, stable across releases (scripts depend on them).
inline constexpr int kExitOk = 0;     // success
inline constexpr int kExitError = 1;  // runtime failure: bad input file, parse error...
inline constexpr int kExitUsage = 2;  // usage error: unknown subcommand/flag, bad flag value
// Campaign outcomes (`rtlock eval`): the grid ran to completion but some
// cells failed (3), or a SIGINT/SIGTERM drain stopped the campaign early
// with the journal flushed for resume (4).
inline constexpr int kExitPartial = 3;      // campaign finished with error/timeout cells
inline constexpr int kExitInterrupted = 4;  // campaign drained after a shutdown request

/// Runs one CLI invocation.  argv follows main() conventions (argv[0] is the
/// program name, argv[1] the subcommand).  Normal output goes to `out`,
/// diagnostics and progress to `err`; nothing is written to the global
/// streams, and no exception escapes — failures map to the exit codes above.
[[nodiscard]] int runCli(int argc, const char* const* argv, std::ostream& out, std::ostream& err);

}  // namespace rtlock::cli
