// `rtlock work` — one worker of a distributed eval campaign.
//
// Point any number of `rtlock work` processes (any hosts sharing a
// filesystem) at the same --manifest with the identical eval grid: the
// first one atomically creates the manifest, every worker claims cells
// through lease-based claim files, journals its results to its own journal
// under `<manifest>.journals/`, and each worker that sees the fleet
// converge prints the full merged report — byte-identical to what a
// single-process `rtlock eval` of the same grid prints.  A worker that dies
// mid-cell leaves a claim that expires after --lease-ms and is reclaimed by
// a surviving worker; the determinism contract makes any double compute
// merge away.  docs/CAMPAIGNS.md covers the manifest format, lease protocol
// and merge rules.
#include <fstream>

#include "campaign/runner.hpp"
#include "cli/common.hpp"
#include "service/api.hpp"
#include "support/strings.hpp"

namespace rtlock::cli {

int runWorkCommand(const std::vector<std::string>& args, CommandIo& io) {
  const support::CliArgs flags = parseFlags(
      args, {"manifest", "owner", "lease-ms", "poll-ms", "max-wait-ms", "journal", "algos",
             "seeds", "samples", "rounds", "budget", "folds", "module", "key-port", "threads",
             "extended-features", "report", "report-csv", "csv", "no-wall", "retries",
             "deadline-ms", "sim-backend", "verify-functional"});
  const std::string inputPath = onePositional(flags, "input netlist (input.v)");
  if (!flags.has("manifest")) throw UsageError{"--manifest=PATH is required (the shared manifest)"};
  const bool noWall = flags.getBool("no-wall", false);

  service::EvalRequest request;
  request.manifestPath = flags.get("manifest", "");
  request.workerId = flags.get("owner", "");
  request.journalPath = flags.get("journal", "");
  request.leaseMs = flags.getDouble("lease-ms", 60000.0);
  request.pollMs = flags.getDouble("poll-ms", 50.0);
  if (request.pollMs <= 0.0) throw UsageError{"--poll-ms must be > 0"};
  request.maxWaitMs = flags.getDouble("max-wait-ms", 0.0);
  if (request.maxWaitMs < 0.0) throw UsageError{"--max-wait-ms must be >= 0"};

  request.algorithms = service::algorithmListFromNames(flags.get("algos", "serial,hra,era"));
  request.seeds = service::parseSeedList(flags.get("seeds", "1"));
  const std::uint64_t samples = u64Flag(flags, "samples", 10);
  if (samples < 1 || samples > 1'000'000) throw UsageError{"--samples must be in [1, 1000000]"};
  request.samples = static_cast<int>(samples);
  request.budget = parseBudget(flags.get("budget", "75%"));
  if (!request.budget.isFraction) {
    throw UsageError{"--budget takes a fraction of the module's operations here (e.g. 75%)"};
  }
  const std::uint64_t rounds = u64Flag(flags, "rounds", 1000);
  if (rounds > 1'000'000'000) throw UsageError{"--rounds must be at most 1000000000"};
  request.rounds = static_cast<int>(rounds);
  const std::uint64_t folds = u64Flag(flags, "folds", 3);
  if (folds < 2 || folds > 1000) throw UsageError{"--folds must be in [2, 1000]"};
  request.folds = static_cast<int>(folds);
  request.extendedFeatures = flags.getBool("extended-features", false);
  request.verifyFunctional = flags.getBool("verify-functional", false);
  request.simBackend = simBackendFromFlag(flags.get("sim-backend", "sliced"));
  request.includeWall = !noWall;

  request.campaign.threads = support::requestedThreads(flags);
  const std::uint64_t retries = u64Flag(flags, "retries", 1);
  if (retries > 100) throw UsageError{"--retries must be at most 100"};
  request.campaign.retry.maxAttempts = 1 + static_cast<int>(retries);
  request.campaign.cellDeadlineMs = flags.getDouble("deadline-ms", 0.0);
  if (request.campaign.cellDeadlineMs < 0.0) throw UsageError{"--deadline-ms must be >= 0"};
  try {
    request.campaign.faults = campaign::FaultPlan::fromEnv();
  } catch (const support::Error& error) {
    throw UsageError{std::string{"RTLOCK_FAULT_INJECT: "} + error.what()};
  }

  request.source = readTextFile(inputPath);
  request.session.keyPortName = flags.get("key-port", request.session.keyPortName);
  request.moduleName = flags.get("module", "");

  const campaign::ScopedSignalHandlers signalGuard;
  service::SessionCache cache;
  const service::EvalResponse response = service::runEval(cache, request);
  const campaign::WorkerReport& worker = response.worker;

  io.err << "worker " << (request.workerId.empty() ? "(auto)" : request.workerId) << ": manifest "
         << request.manifestPath << ", " << worker.totalCells << " cell(s)\n";
  io.err << "computed " << worker.computedCells << " cell(s) (" << worker.okCells << " ok, "
         << worker.errorCells << " error, " << worker.timeoutCells << " timeout), "
         << worker.journaledCells << " from own journal, " << worker.doneElsewhere
         << " done by other workers, " << worker.steals << " stale lease(s) reclaimed\n";
  for (const std::string& line : response.cellErrors) io.err << line << "\n";

  if (response.campaign.interrupted) {
    io.err << "interrupted: rerun this worker to resume its journal\n";
    return kExitInterrupted;
  }
  if (!worker.allDone) {
    io.err << "fleet not converged";
    if (worker.timedOut) io.err << " (no progress for --max-wait-ms)";
    io.err << " — rerun against the manifest, or merge what exists with rtlock merge\n";
    return kExitPartial;
  }

  if (flags.has("report")) {
    writeTextFile(flags.get("report", ""),
                  service::evalReportDocument(response, inputPath).dump());
    io.err << "report: " << flags.get("report", "") << "\n";
  }
  if (flags.has("report-csv")) {
    std::ofstream csv{flags.get("report-csv", "")};
    if (!csv) throw support::Error{"cannot open " + flags.get("report-csv", "") + " for writing"};
    emitRows(csv, response.rows, /*csv=*/true);
    io.err << "CSV report: " << flags.get("report-csv", "") << "\n";
  }

  emitRows(io.out, response.rows, flags.getBool("csv", false));
  io.err << "fleet converged: " << response.cells.size() << " grid cell(s) merged from "
         << response.mergedJournals.size() << " journal(s) in "
         << support::formatDouble(response.campaign.wallMs, 0) << " ms\n";

  if (response.campaign.errorCells > 0 || response.campaign.timeoutCells > 0) {
    io.err << "partial campaign: " << response.campaign.errorCells << " error cell(s), "
           << response.campaign.timeoutCells << " timeout cell(s)\n";
    return kExitPartial;
  }
  return kExitOk;
}

}  // namespace rtlock::cli
