// `rtlock lock` — lock an arbitrary Verilog netlist and emit the locked
// netlist plus a JSON key/provenance file (rtlock-key/v1).
//
// Thin wrapper: flag parsing and file I/O here, the locking itself in
// service::runLock (shared with `rtlock serve`).  Every module of the design
// with at least one lockable operation is locked; module i draws from
// substream(i) of the seed's root stream, so adding or reordering modules
// never perturbs sibling keys.
#include "cli/common.hpp"
#include "service/api.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace rtlock::cli {

namespace {

/// Derives the default output paths from the input: foo.v -> foo.locked.v
/// and foo.key.json.
[[nodiscard]] std::string stemOf(const std::string& inputPath) {
  const std::size_t dot = inputPath.rfind('.');
  const std::size_t slash = inputPath.find_last_of("/\\");
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash)) return inputPath;
  return inputPath.substr(0, dot);
}

}  // namespace

int runLockCommand(const std::vector<std::string>& args, CommandIo& io) {
  const support::CliArgs flags = parseFlags(
      args, {"algo", "budget", "seed", "out", "key-out", "key-port", "csv", "no-banner"});
  const std::string inputPath = onePositional(flags, "input netlist (input.v)");
  const std::string outPath = flags.get("out", stemOf(inputPath) + ".locked.v");
  const std::string keyOutPath = flags.get("key-out", stemOf(inputPath) + ".key.json");

  service::LockRequest request;
  request.algorithm = algorithmFromFlag(flags.get("algo", "era"));
  request.budget = parseBudget(flags.get("budget", "75%"));
  request.seed = u64Flag(flags, "seed", 1);
  request.emitBanner = !flags.getBool("no-banner", false);
  request.session.keyPortName = flags.get("key-port", request.session.keyPortName);
  request.source = readTextFile(inputPath);
  request.inputLabel = inputPath;

  service::SessionCache cache;
  const service::LockResponse response = service::runLock(cache, request);
  for (const std::string& note : response.notes) io.err << "note: " << note << "\n";

  writeTextFile(outPath, response.lockedVerilog);
  writeTextFile(keyOutPath, keyFileToJson(response.key).dump());

  support::Table table{{"module", "lockable_ops", "key_bits", "key_width", "M^g_sec", "M^r_sec"}};
  for (const service::LockModuleSummary& summary : response.modules) {
    table.addRow({summary.module, std::to_string(summary.lockableOps),
                  std::to_string(summary.bitsUsed), std::to_string(summary.keyWidth),
                  support::formatDouble(summary.globalMetric, 1),
                  support::formatDouble(summary.restrictedMetric, 1)});
  }
  if (flags.getBool("csv", false)) {
    table.renderCsv(io.out);
  } else {
    table.renderText(io.out);
  }
  io.err << "locked netlist: " << outPath << "\nkey/provenance: " << keyOutPath << "\n";
  return kExitOk;
}

}  // namespace rtlock::cli
