// `rtlock lock` — lock an arbitrary Verilog netlist and emit the locked
// netlist plus a JSON key/provenance file (rtlock-key/v1).
//
// Every module of the design with at least one lockable operation is locked;
// module i draws from substream(i) of the seed's root stream, so adding or
// reordering modules never perturbs sibling keys.
#include <utility>

#include "cli/common.hpp"
#include "core/algorithms.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"
#include "verilog/parser.hpp"
#include "verilog/writer.hpp"

namespace rtlock::cli {

namespace {

/// Derives the default output paths from the input: foo.v -> foo.locked.v
/// and foo.key.json.
[[nodiscard]] std::string stemOf(const std::string& inputPath) {
  const std::size_t dot = inputPath.rfind('.');
  const std::size_t slash = inputPath.find_last_of("/\\");
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash)) return inputPath;
  return inputPath.substr(0, dot);
}

}  // namespace

int runLockCommand(const std::vector<std::string>& args, CommandIo& io) {
  const support::CliArgs flags = parseFlags(
      args, {"algo", "budget", "seed", "out", "key-out", "key-port", "csv", "no-banner"});
  const std::string inputPath = onePositional(flags, "input netlist (input.v)");
  const lock::Algorithm algorithm = algorithmFromFlag(flags.get("algo", "era"));
  const BudgetSpec budget = parseBudget(flags.get("budget", "75%"));
  const std::uint64_t seed = u64Flag(flags, "seed", 1);
  const std::string outPath = flags.get("out", stemOf(inputPath) + ".locked.v");
  const std::string keyOutPath = flags.get("key-out", stemOf(inputPath) + ".key.json");

  verilog::ParserOptions parserOptions;
  parserOptions.keyPortName = flags.get("key-port", parserOptions.keyPortName);
  rtl::Design design = verilog::parseDesign(readTextFile(inputPath), parserOptions);

  KeyFile keyFile;
  keyFile.algorithm = algorithmFlagName(algorithm);
  keyFile.seed = seed;
  keyFile.budget = budget.describe();
  keyFile.input = inputPath;

  const support::Rng root{seed};
  support::Table table{{"module", "lockable_ops", "key_bits", "key_width", "M^g_sec", "M^r_sec"}};
  int lockedModules = 0;
  for (std::size_t i = 0; i < design.moduleCount(); ++i) {
    rtl::Module& module = design.module(i);
    lock::LockEngine engine{module, lock::PairTable::fixed()};
    if (engine.initialLockableOps() == 0) {
      io.err << "note: module " << module.name() << " has no lockable operations — skipped\n";
      continue;
    }
    if (module.keyWidth() != 0) {
      // Relocking would emit a key file whose pre-existing bits are unknown
      // to this invocation — an unusable (silently corrupting) key string.
      // The attack relocks internally; the lock tool refuses.
      throw support::Error{"module " + module.name() + " already carries " +
                           std::to_string(module.keyWidth()) +
                           " key bits — locking on top would make the emitted key file "
                           "incomplete; lock the original (unlocked) netlist instead"};
    }
    support::Rng moduleRng = root.substream(i);
    const int keyBudget = budget.resolve(engine.initialLockableOps());
    const lock::AlgorithmReport report =
        lock::lockWithAlgorithm(engine, algorithm, keyBudget, moduleRng, lock::ReportDetail::Summary);

    ModuleKey moduleKey;
    moduleKey.module = module.name();
    moduleKey.keyWidth = module.keyWidth();
    moduleKey.records = engine.records();
    moduleKey.bitsUsed = report.bitsUsed;
    moduleKey.globalMetric = report.finalGlobalMetric;
    moduleKey.restrictedMetric = report.finalRestrictedMetric;
    moduleKey.keyBits.assign(static_cast<std::size_t>(module.keyWidth()), '0');
    for (const lock::LockRecord& record : moduleKey.records) {
      moduleKey.keyBits[static_cast<std::size_t>(record.keyIndex)] = record.keyValue ? '1' : '0';
    }
    keyFile.modules.push_back(std::move(moduleKey));
    ++lockedModules;

    table.addRow({module.name(), std::to_string(engine.initialLockableOps()),
                  std::to_string(report.bitsUsed), std::to_string(module.keyWidth()),
                  support::formatDouble(report.finalGlobalMetric, 1),
                  support::formatDouble(report.finalRestrictedMetric, 1)});
  }
  if (lockedModules == 0) {
    throw support::Error{"nothing to lock: no module in " + inputPath +
                         " has lockable operations"};
  }

  verilog::WriterOptions writerOptions;
  writerOptions.emitHeaderComment = !flags.getBool("no-banner", false);
  writeTextFile(outPath, verilog::writeDesign(design, writerOptions));
  writeTextFile(keyOutPath, keyFileToJson(keyFile).dump());

  if (flags.getBool("csv", false)) {
    table.renderCsv(io.out);
  } else {
    table.renderText(io.out);
  }
  io.err << "locked netlist: " << outPath << "\nkey/provenance: " << keyOutPath << "\n";
  return kExitOk;
}

}  // namespace rtlock::cli
