// `rtlock eval` — the paper's full lock→attack→report loop over a seed grid.
//
// For every (algorithm, seed) cell the experiment engine locks fresh samples
// of the input module and attacks each one (attack::evaluateBenchmark).
// Cells shard across the TaskPool; cell (a, s) draws only from
// Rng{s}.substream(a), so the grid is bit-identical at every --threads
// count — the same substream convention as the fig4/5/6 benches.
#include <chrono>
#include <fstream>
#include <utility>

#include "attack/pipeline.hpp"
#include "cli/common.hpp"
#include "support/strings.hpp"
#include "support/task_pool.hpp"
#include "verilog/parser.hpp"

namespace rtlock::cli {

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] double elapsedMs(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

/// --seeds accepts "1,2,7" and ranges "1..5" (inclusive).
[[nodiscard]] std::vector<std::uint64_t> parseSeeds(const std::string& text) {
  std::vector<std::uint64_t> seeds;
  for (const std::string& piece : support::split(text, ',')) {
    const std::string item{support::trim(piece)};
    if (item.empty()) continue;
    try {
      const std::size_t dots = item.find("..");
      if (dots == std::string::npos) {
        seeds.push_back(std::stoull(item));
        continue;
      }
      const std::uint64_t first = std::stoull(item.substr(0, dots));
      const std::uint64_t last = std::stoull(item.substr(dots + 2));
      if (last < first || last - first > 10'000) throw std::out_of_range{"range"};
      for (std::uint64_t s = first; s <= last; ++s) seeds.push_back(s);
    } catch (const std::exception&) {
      throw UsageError{"malformed --seeds entry '" + item + "' (expected e.g. 1,2,7 or 1..5)"};
    }
  }
  if (seeds.empty()) throw UsageError{"--seeds lists no seeds"};
  return seeds;
}

struct Cell {
  attack::EvaluationResult result;
  double wallMs = 0.0;
};

}  // namespace

int runEvalCommand(const std::vector<std::string>& args, CommandIo& io) {
  const support::CliArgs flags = parseFlags(
      args, {"algos", "seeds", "samples", "rounds", "budget", "folds", "module", "key-port",
             "threads", "extended-features", "report", "report-csv", "csv", "no-wall"});
  const std::string inputPath = onePositional(flags, "input netlist (input.v)");
  const int threads = support::requestedThreads(flags);
  const bool noWall = flags.getBool("no-wall", false);

  std::vector<lock::Algorithm> algorithms;
  for (const std::string& name : support::split(flags.get("algos", "serial,hra,era"), ',')) {
    if (!support::trim(name).empty()) {
      algorithms.push_back(algorithmFromFlag(std::string{support::trim(name)}));
    }
  }
  if (algorithms.empty()) throw UsageError{"--algos lists no algorithms"};
  const std::vector<std::uint64_t> seeds = parseSeeds(flags.get("seeds", "1"));

  attack::EvaluationConfig config;
  config.testLocks = static_cast<int>(flags.getInt("samples", 10));
  if (config.testLocks < 1) throw UsageError{"--samples must be at least 1"};
  const BudgetSpec budget = parseBudget(flags.get("budget", "75%"));
  if (!budget.isFraction) {
    throw UsageError{"--budget takes a fraction of the module's operations here (e.g. 75%)"};
  }
  config.keyBudgetFraction = budget.fraction;
  config.snapshot.relockRounds = static_cast<int>(flags.getInt("rounds", 1000));
  config.snapshot.relockBudgetFraction = budget.fraction;
  config.snapshot.automl.folds = static_cast<int>(flags.getInt("folds", 3));
  if (config.snapshot.automl.folds < 2) throw UsageError{"--folds must be at least 2"};
  config.snapshot.locality.extendedFeatures = flags.getBool("extended-features", false);
  config.threads = 1;  // grid cells are the outer parallelism level

  verilog::ParserOptions parserOptions;
  parserOptions.keyPortName = flags.get("key-port", parserOptions.keyPortName);
  rtl::Design design = verilog::parseDesign(readTextFile(inputPath), parserOptions);
  const rtl::Module& original = selectModule(design, flags, /*requireKey=*/false);
  {
    rtl::Module probe = original.clone();
    const lock::LockEngine probeEngine{probe, lock::PairTable::fixed()};
    if (probeEngine.initialLockableOps() == 0) {
      throw support::Error{"module " + original.name() + " has no lockable operations"};
    }
  }

  const std::size_t cellCount = algorithms.size() * seeds.size();
  io.err << "evaluating " << original.name() << ": " << algorithms.size() << " algorithm(s) x "
         << seeds.size() << " seed(s), " << config.testLocks << " locked sample(s) per cell\n";

  support::TaskPool pool{support::threadsForTasks(threads, cellCount)};
  const auto started = Clock::now();
  const std::vector<Cell> cells = pool.map(cellCount, [&](std::size_t index) {
    const std::size_t algoIndex = index / seeds.size();
    const std::size_t seedIndex = index % seeds.size();
    const auto cellStart = Clock::now();
    support::Rng cellRng = support::Rng{seeds[seedIndex]}.substream(algoIndex);
    Cell cell;
    cell.result = attack::evaluateBenchmark(original, original.name(), algorithms[algoIndex],
                                            lock::PairTable::fixed(), config, cellRng);
    cell.wallMs = elapsedMs(cellStart);
    return cell;
  });
  const double totalWallMs = elapsedMs(started);

  const std::string setup = "samples=" + std::to_string(config.testLocks) +
                            " rounds=" + std::to_string(config.snapshot.relockRounds) +
                            " budget=" + budget.describe();
  std::vector<ReportRow> rows;
  for (std::size_t a = 0; a < algorithms.size(); ++a) {
    const std::string algoName = algorithmFlagName(algorithms[a]);
    double kpaSum = 0.0;
    for (std::size_t s = 0; s < seeds.size(); ++s) {
      const Cell& cell = cells[a * seeds.size() + s];
      const std::string cellConfig =
          algoName + " / seed " + std::to_string(seeds[s]) + " / " + setup;
      const double wall = noWall ? 0.0 : cell.wallMs;
      rows.push_back({original.name(), cellConfig, "mean_kpa_percent", cell.result.meanKpa, wall});
      rows.push_back({original.name(), cellConfig, "min_kpa_percent", cell.result.minKpa, 0.0});
      rows.push_back({original.name(), cellConfig, "max_kpa_percent", cell.result.maxKpa, 0.0});
      rows.push_back(
          {original.name(), cellConfig, "mean_key_bits", cell.result.meanKeyBits, 0.0});
      rows.push_back(
          {original.name(), cellConfig, "mean_global_metric", cell.result.meanGlobalMetric, 0.0});
      rows.push_back({original.name(), cellConfig, "mean_restricted_metric",
                      cell.result.meanRestrictedMetric, 0.0});
      kpaSum += cell.result.meanKpa;
    }
    rows.push_back({original.name(), algoName + " / all seeds / " + setup, "mean_kpa_percent",
                    kpaSum / static_cast<double>(seeds.size()), 0.0});
  }

  if (flags.has("report")) {
    support::JsonValue document;
    document.set("schema", "rtlock-eval-report/v1");
    document.set("input", inputPath);
    document.set("module", original.name());
    document.set("rows", rowsToJson(rows));
    writeTextFile(flags.get("report", ""), document.dump());
    io.err << "report: " << flags.get("report", "") << "\n";
  }
  if (flags.has("report-csv")) {
    std::ofstream csv{flags.get("report-csv", "")};
    if (!csv) throw support::Error{"cannot open " + flags.get("report-csv", "") + " for writing"};
    emitRows(csv, rows, /*csv=*/true);
    io.err << "CSV report: " << flags.get("report-csv", "") << "\n";
  }

  emitRows(io.out, rows, flags.getBool("csv", false));
  io.err << cellCount << " grid cell(s) in " << support::formatDouble(totalWallMs, 0) << " ms\n";
  return kExitOk;
}

}  // namespace rtlock::cli
