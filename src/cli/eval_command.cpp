// `rtlock eval` — the paper's full lock→attack→report loop over a seed grid.
//
// Thin wrapper over service::runEval (shared with `rtlock serve`).  For
// every (algorithm, seed) cell the experiment engine locks fresh samples of
// the input module and attacks each one (attack::evaluateBenchmark).  Cells
// run through the campaign runner (src/campaign/): each cell draws only
// from Rng{s}.substream(a), so the grid is bit-identical at every --threads
// count, and — with --journal — a campaign killed at any point resumes to
// the same report.  A cell that throws becomes a structured error row
// instead of aborting the grid; campaigns with failed cells exit with
// kExitPartial, an interrupted (SIGINT/SIGTERM) drain with
// kExitInterrupted.  docs/CAMPAIGNS.md covers the journal format and the
// fault-injection harness.
#include <fstream>

#include "campaign/runner.hpp"
#include "cli/common.hpp"
#include "service/api.hpp"
#include "support/strings.hpp"

namespace rtlock::cli {

int runEvalCommand(const std::vector<std::string>& args, CommandIo& io) {
  const support::CliArgs flags = parseFlags(
      args, {"algos", "seeds", "samples", "rounds", "budget", "folds", "module", "key-port",
             "threads", "extended-features", "report", "report-csv", "csv", "no-wall", "journal",
             "keep-errors", "check", "check-cells", "retries", "deadline-ms", "sim-backend",
             "verify-functional"});
  const std::string inputPath = onePositional(flags, "input netlist (input.v)");
  const bool noWall = flags.getBool("no-wall", false);

  service::EvalRequest request;
  request.algorithms = service::algorithmListFromNames(flags.get("algos", "serial,hra,era"));
  request.seeds = service::parseSeedList(flags.get("seeds", "1"));

  const std::uint64_t samples = u64Flag(flags, "samples", 10);
  if (samples < 1 || samples > 1'000'000) throw UsageError{"--samples must be in [1, 1000000]"};
  request.samples = static_cast<int>(samples);
  request.budget = parseBudget(flags.get("budget", "75%"));
  if (!request.budget.isFraction) {
    throw UsageError{"--budget takes a fraction of the module's operations here (e.g. 75%)"};
  }
  const std::uint64_t rounds = u64Flag(flags, "rounds", 1000);
  if (rounds > 1'000'000'000) throw UsageError{"--rounds must be at most 1000000000"};
  request.rounds = static_cast<int>(rounds);
  const std::uint64_t folds = u64Flag(flags, "folds", 3);
  if (folds < 2 || folds > 1000) throw UsageError{"--folds must be in [2, 1000]"};
  request.folds = static_cast<int>(folds);
  request.extendedFeatures = flags.getBool("extended-features", false);
  request.verifyFunctional = flags.getBool("verify-functional", false);
  request.simBackend = simBackendFromFlag(flags.get("sim-backend", "sliced"));
  request.includeWall = !noWall;

  request.campaign.threads = support::requestedThreads(flags);
  const std::uint64_t retries = u64Flag(flags, "retries", 1);
  if (retries > 100) throw UsageError{"--retries must be at most 100"};
  request.campaign.retry.maxAttempts = 1 + static_cast<int>(retries);
  request.campaign.cellDeadlineMs = flags.getDouble("deadline-ms", 0.0);
  if (request.campaign.cellDeadlineMs < 0.0) throw UsageError{"--deadline-ms must be >= 0"};
  request.campaign.keepErrors = flags.getBool("keep-errors", false);
  try {
    request.campaign.faults = campaign::FaultPlan::fromEnv();
  } catch (const support::Error& error) {
    throw UsageError{std::string{"RTLOCK_FAULT_INJECT: "} + error.what()};
  }
  const bool check = flags.getBool("check", false);
  const std::size_t checkCells = static_cast<std::size_t>(u64Flag(flags, "check-cells", 3));
  if (check && !flags.has("journal")) throw UsageError{"--check requires --journal"};
  request.journalPath = flags.get("journal", "");
  request.checkCells = check ? checkCells : 0;

  request.source = readTextFile(inputPath);
  request.session.keyPortName = flags.get("key-port", request.session.keyPortName);
  request.moduleName = flags.get("module", "");

  // From here on SIGINT/SIGTERM request a graceful drain (finish in-flight
  // cells, flush the journal, exit kExitInterrupted) instead of killing the
  // process mid-write; a second signal still exits immediately.
  const campaign::ScopedSignalHandlers signalGuard;
  service::SessionCache cache;
  const service::EvalResponse response = service::runEval(cache, request);

  io.err << "evaluating " << response.moduleName << ": " << request.algorithms.size()
         << " algorithm(s) x " << request.seeds.size() << " seed(s), " << request.samples
         << " locked sample(s) per cell\n";
  if (response.journaled) {
    io.err << "journal: " << request.journalPath << " (" << response.journalReloadedRows
           << " row(s) reloaded";
    if (response.journalTornTail) io.err << ", torn tail discarded";
    io.err << ")\n";
  }
  for (const std::string& line : response.cellErrors) io.err << line << "\n";

  if (response.campaign.interrupted) {
    io.err << "interrupted: " << response.campaign.okCells << " cell(s) done, "
           << response.campaign.skippedCells << " not started";
    if (response.journaled) {
      io.err << "; resume with --journal " << request.journalPath;
    }
    io.err << "\n";
    return kExitInterrupted;
  }

  if (flags.has("report")) {
    writeTextFile(flags.get("report", ""),
                  service::evalReportDocument(response, inputPath).dump());
    io.err << "report: " << flags.get("report", "") << "\n";
  }
  if (flags.has("report-csv")) {
    std::ofstream csv{flags.get("report-csv", "")};
    if (!csv) throw support::Error{"cannot open " + flags.get("report-csv", "") + " for writing"};
    emitRows(csv, response.rows, /*csv=*/true);
    io.err << "CSV report: " << flags.get("report-csv", "") << "\n";
  }

  emitRows(io.out, response.rows, flags.getBool("csv", false));
  io.err << response.cells.size() << " grid cell(s) (" << response.campaign.journaledCells
         << " from journal) in " << support::formatDouble(response.campaign.wallMs, 0) << " ms\n";

  if (check && response.journaled) {
    for (const std::string& mismatch : response.checkMismatches) {
      io.err << "check mismatch: " << mismatch << "\n";
    }
    if (!response.checkMismatches.empty()) {
      io.err << "check: " << response.checkMismatches.size() << " of " << response.checkedCells
             << " recomputed cell(s) diverged from the journal\n";
      return kExitError;
    }
    io.err << "check: " << response.checkedCells << " cell(s) recomputed, all byte-identical\n";
  }

  if (response.campaign.errorCells > 0 || response.campaign.timeoutCells > 0) {
    io.err << "partial campaign: " << response.campaign.errorCells << " error cell(s), "
           << response.campaign.timeoutCells << " timeout cell(s)\n";
    return kExitPartial;
  }
  return kExitOk;
}

}  // namespace rtlock::cli
