// `rtlock eval` — the paper's full lock→attack→report loop over a seed grid.
//
// For every (algorithm, seed) cell the experiment engine locks fresh samples
// of the input module and attacks each one (attack::evaluateBenchmark).
// Cells run through the campaign runner (src/campaign/): each cell draws
// only from Rng{s}.substream(a), so the grid is bit-identical at every
// --threads count, and — with --journal — a campaign killed at any point
// resumes to the same report.  A cell that throws becomes a structured
// error row instead of aborting the grid; campaigns with failed cells exit
// with kExitPartial, an interrupted (SIGINT/SIGTERM) drain with
// kExitInterrupted.  docs/CAMPAIGNS.md covers the journal format and the
// fault-injection harness.
#include <fstream>
#include <memory>
#include <optional>
#include <utility>

#include "attack/pipeline.hpp"
#include "campaign/runner.hpp"
#include "cli/common.hpp"
#include "support/strings.hpp"
#include "verilog/parser.hpp"

namespace rtlock::cli {

namespace {

/// --seeds accepts "1,2,7" and ranges "1..5" (inclusive).  Every token goes
/// through support::parseU64, which consumes the whole text: the stoull
/// parser this replaces accepted "--seeds 3x" as seed 3 and wrapped
/// "--seeds -1" to 2^64-1, silently running the wrong campaign.
[[nodiscard]] std::vector<std::uint64_t> parseSeeds(const std::string& text) {
  std::vector<std::uint64_t> seeds;
  for (const std::string& piece : support::split(text, ',')) {
    const std::string item{support::trim(piece)};
    if (item.empty()) continue;
    const auto malformed = [&item]() {
      return UsageError{"malformed --seeds entry '" + item + "' (expected e.g. 1,2,7 or 1..5)"};
    };
    const std::size_t dots = item.find("..");
    if (dots == std::string::npos) {
      const std::optional<std::uint64_t> seed = support::parseU64(item);
      if (!seed.has_value()) throw malformed();
      seeds.push_back(*seed);
      continue;
    }
    const std::optional<std::uint64_t> first = support::parseU64(item.substr(0, dots));
    const std::optional<std::uint64_t> last = support::parseU64(item.substr(dots + 2));
    if (!first.has_value() || !last.has_value()) throw malformed();
    if (*last < *first || *last - *first > 10'000) {
      throw UsageError{"--seeds range '" + item + "' must ascend and span at most 10000 seeds"};
    }
    for (std::uint64_t s = *first; s <= *last; ++s) seeds.push_back(s);
  }
  if (seeds.empty()) throw UsageError{"--seeds lists no seeds"};
  return seeds;
}

/// Metrics a cell journals, in payload order (also the report-row order).
constexpr const char* kCellMetrics[] = {"mean_kpa_percent",   "min_kpa_percent",
                                        "max_kpa_percent",    "mean_key_bits",
                                        "mean_global_metric", "mean_restricted_metric"};

[[nodiscard]] support::JsonValue payloadFromResult(const attack::EvaluationResult& result) {
  support::JsonValue payload;
  payload.set("mean_kpa_percent", result.meanKpa);
  payload.set("min_kpa_percent", result.minKpa);
  payload.set("max_kpa_percent", result.maxKpa);
  payload.set("mean_key_bits", result.meanKeyBits);
  payload.set("mean_global_metric", result.meanGlobalMetric);
  payload.set("mean_restricted_metric", result.meanRestrictedMetric);
  return payload;
}

}  // namespace

int runEvalCommand(const std::vector<std::string>& args, CommandIo& io) {
  const support::CliArgs flags = parseFlags(
      args, {"algos", "seeds", "samples", "rounds", "budget", "folds", "module", "key-port",
             "threads", "extended-features", "report", "report-csv", "csv", "no-wall", "journal",
             "keep-errors", "check", "check-cells", "retries", "deadline-ms", "sim-backend",
             "verify-functional"});
  const std::string inputPath = onePositional(flags, "input netlist (input.v)");
  const int threads = support::requestedThreads(flags);
  const bool noWall = flags.getBool("no-wall", false);

  std::vector<lock::Algorithm> algorithms;
  for (const std::string& name : support::split(flags.get("algos", "serial,hra,era"), ',')) {
    if (!support::trim(name).empty()) {
      algorithms.push_back(algorithmFromFlag(std::string{support::trim(name)}));
    }
  }
  if (algorithms.empty()) throw UsageError{"--algos lists no algorithms"};
  const std::vector<std::uint64_t> seeds = parseSeeds(flags.get("seeds", "1"));

  attack::EvaluationConfig config;
  const std::uint64_t samples = u64Flag(flags, "samples", 10);
  if (samples < 1 || samples > 1'000'000) throw UsageError{"--samples must be in [1, 1000000]"};
  config.testLocks = static_cast<int>(samples);
  const BudgetSpec budget = parseBudget(flags.get("budget", "75%"));
  if (!budget.isFraction) {
    throw UsageError{"--budget takes a fraction of the module's operations here (e.g. 75%)"};
  }
  config.keyBudgetFraction = budget.fraction;
  const std::uint64_t rounds = u64Flag(flags, "rounds", 1000);
  if (rounds > 1'000'000'000) throw UsageError{"--rounds must be at most 1000000000"};
  config.snapshot.relockRounds = static_cast<int>(rounds);
  config.snapshot.relockBudgetFraction = budget.fraction;
  const std::uint64_t folds = u64Flag(flags, "folds", 3);
  if (folds < 2 || folds > 1000) throw UsageError{"--folds must be in [2, 1000]"};
  config.snapshot.automl.folds = static_cast<int>(folds);
  config.snapshot.locality.extendedFeatures = flags.getBool("extended-features", false);
  config.verifyFunctional = flags.getBool("verify-functional", false);
  config.simBackend = simBackendFromFlag(flags.get("sim-backend", "sliced"));
  config.threads = 1;  // grid cells are the outer parallelism level

  campaign::CampaignOptions campaignOptions;
  campaignOptions.threads = threads;
  const std::uint64_t retries = u64Flag(flags, "retries", 1);
  if (retries > 100) throw UsageError{"--retries must be at most 100"};
  campaignOptions.retry.maxAttempts = 1 + static_cast<int>(retries);
  campaignOptions.cellDeadlineMs = flags.getDouble("deadline-ms", 0.0);
  if (campaignOptions.cellDeadlineMs < 0.0) throw UsageError{"--deadline-ms must be >= 0"};
  campaignOptions.keepErrors = flags.getBool("keep-errors", false);
  try {
    campaignOptions.faults = campaign::FaultPlan::fromEnv();
  } catch (const support::Error& error) {
    throw UsageError{std::string{"RTLOCK_FAULT_INJECT: "} + error.what()};
  }
  const bool check = flags.getBool("check", false);
  const std::size_t checkCells = static_cast<std::size_t>(u64Flag(flags, "check-cells", 3));
  if (check && !flags.has("journal")) throw UsageError{"--check requires --journal"};

  verilog::ParserOptions parserOptions;
  parserOptions.keyPortName = flags.get("key-port", parserOptions.keyPortName);
  const std::string source = readTextFile(inputPath);
  rtl::Design design = verilog::parseDesign(source, parserOptions);
  const rtl::Module& original = selectModule(design, flags, /*requireKey=*/false);
  {
    rtl::Module probe = original.clone();
    const lock::LockEngine probeEngine{probe, lock::PairTable::fixed()};
    if (probeEngine.initialLockableOps() == 0) {
      throw support::Error{"module " + original.name() + " has no lockable operations"};
    }
  }

  // Row identity.  The design hash covers everything that shapes the parsed
  // module (source text, selected module, key port); the config hash covers
  // every knob that changes a cell's numbers.  --threads is deliberately
  // absent from both: results are thread-invariant by construction.  So are
  // --sim-backend (both backends are bit-identical, proved by
  // HarnessBackendTest) and --verify-functional (an independent fixed-seed
  // check that perturbs no payload byte — it can only fail a cell).
  const std::string setup = "samples=" + std::to_string(config.testLocks) +
                            " rounds=" + std::to_string(config.snapshot.relockRounds) +
                            " budget=" + budget.describe();
  const std::string configText =
      setup + " folds=" + std::to_string(config.snapshot.automl.folds) + " extended-features=" +
      (config.snapshot.locality.extendedFeatures ? "1" : "0");
  campaign::CampaignIdentity identity;
  identity.designHash =
      support::fnv1a64Hex(source + '\0' + original.name() + '\0' + parserOptions.keyPortName);
  identity.configHash = support::fnv1a64Hex(configText);
  identity.design = original.name();
  identity.config = configText;

  std::vector<campaign::Cell> cells;
  cells.reserve(algorithms.size() * seeds.size());
  for (std::size_t a = 0; a < algorithms.size(); ++a) {
    const std::string algoName = algorithmFlagName(algorithms[a]);
    for (const std::uint64_t seed : seeds) {
      campaign::Cell cell;
      cell.id = {identity.designHash, algoName, seed, identity.configHash};
      cell.label = algoName + " / seed " + std::to_string(seed);
      cells.push_back(std::move(cell));
    }
  }

  io.err << "evaluating " << original.name() << ": " << algorithms.size() << " algorithm(s) x "
         << seeds.size() << " seed(s), " << config.testLocks << " locked sample(s) per cell\n";

  std::unique_ptr<campaign::Journal> journal;
  if (flags.has("journal")) {
    journal = std::make_unique<campaign::Journal>(flags.get("journal", ""), identity);
    io.err << "journal: " << journal->path() << " (" << journal->reloadedRows()
           << " row(s) reloaded";
    if (journal->recoveredTornTail()) io.err << ", torn tail discarded";
    io.err << ")\n";
  }

  // The cell body: pure in the cell identity (algorithm index recovered from
  // the grid position, rng derived from seed substream), so resumed and
  // re-ordered runs journal byte-identical payloads.
  const campaign::CellFn compute = [&](const campaign::Cell& cell,
                                       const campaign::CellContext& context) {
    const std::size_t algoIndex = context.index / seeds.size();
    support::Rng cellRng = support::Rng{cell.id.seed}.substream(algoIndex);
    const attack::EvaluationResult result = attack::evaluateBenchmark(
        original, original.name(), algorithms[algoIndex], lock::PairTable::fixed(), config,
        cellRng);
    if (result.functionalFailures > 0) {
      // --verify-functional found locked samples that misbehave under their
      // correct key: a locking bug, not a statistics question.  Surface it
      // through the structured error-cell path (and kExitPartial) instead of
      // reporting KPA numbers for broken hardware.
      throw support::Error{std::to_string(result.functionalFailures) + " of " +
                           std::to_string(result.samples) +
                           " locked sample(s) misbehave under the correct key"};
    }
    return payloadFromResult(result);
  };

  // From here on SIGINT/SIGTERM request a graceful drain (finish in-flight
  // cells, flush the journal, exit kExitInterrupted) instead of killing the
  // process mid-write; a second signal still exits immediately.
  const campaign::ScopedSignalHandlers signalGuard;
  const campaign::CampaignResult campaignResult =
      campaign::runCampaign(cells, campaignOptions, journal.get(), compute);

  for (std::size_t i = 0; i < cells.size(); ++i) {
    const campaign::CellOutcome& outcome = campaignResult.outcomes[i];
    if (outcome.status == campaign::CellStatus::Error ||
        outcome.status == campaign::CellStatus::Timeout) {
      io.err << "cell " << cells[i].label << ": " << outcome.errorCode << " after "
             << outcome.attempts << " attempt(s)"
             << (outcome.fromJournal ? " [journaled]" : "") << ": " << outcome.errorWhat << "\n";
    }
  }

  if (campaignResult.interrupted) {
    io.err << "interrupted: " << campaignResult.okCells << " cell(s) done, "
           << campaignResult.skippedCells << " not started";
    if (journal != nullptr) {
      io.err << "; resume with --journal " << journal->path();
    }
    io.err << "\n";
    return kExitInterrupted;
  }

  // Report rows come only from ok cells; the per-algorithm aggregate averages
  // the seeds that completed.  A fully successful campaign therefore emits
  // rows byte-identical to the pre-campaign serial loop.
  std::vector<ReportRow> rows;
  for (std::size_t a = 0; a < algorithms.size(); ++a) {
    const std::string algoName = algorithmFlagName(algorithms[a]);
    double kpaSum = 0.0;
    std::size_t okSeeds = 0;
    for (std::size_t s = 0; s < seeds.size(); ++s) {
      const campaign::CellOutcome& outcome = campaignResult.outcomes[a * seeds.size() + s];
      if (outcome.status != campaign::CellStatus::Ok) continue;
      const std::string cellConfig =
          algoName + " / seed " + std::to_string(seeds[s]) + " / " + setup;
      for (const char* metric : kCellMetrics) {
        const bool wallRow = std::string_view{metric} == "mean_kpa_percent";
        rows.push_back({original.name(), cellConfig, metric, outcome.payload.at(metric).asDouble(),
                        wallRow && !noWall ? outcome.wallMs : 0.0});
      }
      kpaSum += outcome.payload.at("mean_kpa_percent").asDouble();
      ++okSeeds;
    }
    if (okSeeds > 0) {
      rows.push_back({original.name(), algoName + " / all seeds / " + setup, "mean_kpa_percent",
                      kpaSum / static_cast<double>(okSeeds), 0.0});
    }
  }

  if (flags.has("report")) {
    support::JsonValue document;
    document.set("schema", "rtlock-eval-report/v1");
    document.set("input", inputPath);
    document.set("module", original.name());
    document.set("rows", rowsToJson(rows));
    writeTextFile(flags.get("report", ""), document.dump());
    io.err << "report: " << flags.get("report", "") << "\n";
  }
  if (flags.has("report-csv")) {
    std::ofstream csv{flags.get("report-csv", "")};
    if (!csv) throw support::Error{"cannot open " + flags.get("report-csv", "") + " for writing"};
    emitRows(csv, rows, /*csv=*/true);
    io.err << "CSV report: " << flags.get("report-csv", "") << "\n";
  }

  emitRows(io.out, rows, flags.getBool("csv", false));
  io.err << cells.size() << " grid cell(s) (" << campaignResult.journaledCells
         << " from journal) in " << support::formatDouble(campaignResult.wallMs, 0) << " ms\n";

  if (check && journal != nullptr) {
    const campaign::CheckResult checked =
        campaign::checkJournal(cells, *journal, checkCells, compute);
    for (const std::string& mismatch : checked.mismatches) {
      io.err << "check mismatch: " << mismatch << "\n";
    }
    if (!checked.mismatches.empty()) {
      io.err << "check: " << checked.mismatches.size() << " of " << checked.checkedCells
             << " recomputed cell(s) diverged from the journal\n";
      return kExitError;
    }
    io.err << "check: " << checked.checkedCells << " cell(s) recomputed, all byte-identical\n";
  }

  if (campaignResult.errorCells > 0 || campaignResult.timeoutCells > 0) {
    io.err << "partial campaign: " << campaignResult.errorCells << " error cell(s), "
           << campaignResult.timeoutCells << " timeout cell(s)\n";
    return kExitPartial;
  }
  return kExitOk;
}

}  // namespace rtlock::cli
