// `rtlock serve` — run the lock/attack/eval service daemon.
//
// Thin wrapper: flag parsing here, everything else in service::Server (the
// accept loop + worker pool) and service::Dispatcher (routing, JSON, error
// mapping).  The daemon owns one content-hash SessionCache shared across
// workers, so repeated requests against the same netlist skip the
// parse/verify/compile pipeline entirely (docs/SERVING.md).
//
// Lifecycle: binds immediately (--port=0 picks an ephemeral port), prints
// "listening on HOST:PORT" on stderr once ready, then serves until SIGINT/
// SIGTERM (graceful drain: in-flight requests finish, exit 0) or
// --max-requests connections have been accepted (smoke tests and CI use
// this to run a bounded, self-terminating daemon).
#include "campaign/runner.hpp"
#include "cli/common.hpp"
#include "service/server.hpp"

namespace rtlock::cli {

int runServeCommand(const std::vector<std::string>& args, CommandIo& io) {
  const support::CliArgs flags =
      parseFlags(args, {"host", "port", "threads", "queue", "deadline-ms", "cache-mb",
                        "max-body-mb", "max-requests", "socket-timeout-ms"});
  if (!flags.positional().empty()) {
    throw UsageError{"unexpected argument '" + flags.positional().front() + "'"};
  }

  service::ServeOptions options;
  options.host = flags.get("host", options.host);
  const std::uint64_t port = u64Flag(flags, "port", 0);
  if (port > 65535) throw UsageError{"--port must be in [0, 65535]"};
  options.port = static_cast<int>(port);
  options.threads = support::requestedThreads(flags);
  const std::uint64_t queue = u64Flag(flags, "queue", 64);
  if (queue < 1 || queue > 1'000'000) throw UsageError{"--queue must be in [1, 1000000]"};
  options.queueCapacity = static_cast<std::size_t>(queue);
  options.requestDeadlineMs = flags.getDouble("deadline-ms", 0.0);
  if (options.requestDeadlineMs < 0.0) throw UsageError{"--deadline-ms must be >= 0"};
  const std::uint64_t cacheMb = u64Flag(flags, "cache-mb", 256);
  if (cacheMb < 1 || cacheMb > 1'000'000) throw UsageError{"--cache-mb must be in [1, 1000000]"};
  options.cacheBytes = static_cast<std::size_t>(cacheMb) * 1024 * 1024;
  const std::uint64_t maxBodyMb = u64Flag(flags, "max-body-mb", 8);
  if (maxBodyMb < 1 || maxBodyMb > 1024) throw UsageError{"--max-body-mb must be in [1, 1024]"};
  options.maxBodyBytes = static_cast<std::size_t>(maxBodyMb) * 1024 * 1024;
  options.maxRequests = u64Flag(flags, "max-requests", 0);
  options.socketTimeoutMs = flags.getDouble("socket-timeout-ms", options.socketTimeoutMs);
  if (options.socketTimeoutMs < 0.0) throw UsageError{"--socket-timeout-ms must be >= 0"};

  service::Server server{options};
  // SIGINT/SIGTERM set the shared shutdown flag the accept loop polls; the
  // drain finishes in-flight requests before run() returns.
  const campaign::ScopedSignalHandlers signalGuard;
  io.err << "listening on " << options.host << ":" << server.port() << "\n";
  io.err.flush();
  const int status = server.run();
  const service::Dispatcher::Stats stats = server.dispatcher().stats();
  io.err << "served " << stats.requests << " request(s) (" << stats.ok << " ok, "
         << stats.clientErrors << " client error(s), " << stats.serverErrors
         << " server error(s)), " << server.rejectedConnections() << " rejected\n";
  return status;
}

}  // namespace rtlock::cli
