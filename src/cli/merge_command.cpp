// `rtlock merge` — union per-worker campaign journals into one view.
//
// Journals name themselves: each carries the campaign identity header, so
// the merge needs no re-parse of the design.  Identity mismatches are hard
// errors (never a silent union of unrelated campaigns), duplicate ok rows
// must be byte-identical (determinism violation otherwise), and an ok row
// supersedes failures for the same cell — the rules live in
// src/campaign/merge.hpp.  With --manifest the merged rows are rebuilt into
// the full eval report through the same row builder `rtlock eval` uses, so
// the printed table is byte-identical to the single-process run; with --out
// the merged view is written as a valid journal that `rtlock eval
// --journal=<out>` replays without recomputing anything.
#include <algorithm>
#include <fstream>

#include "campaign/manifest.hpp"
#include "campaign/merge.hpp"
#include "campaign/runner.hpp"
#include "cli/common.hpp"
#include "service/api.hpp"
#include "support/strings.hpp"

namespace rtlock::cli {

int runMergeCommand(const std::vector<std::string>& args, CommandIo& io) {
  const support::CliArgs flags =
      parseFlags(args, {"journals-dir", "out", "manifest", "report", "report-csv", "csv",
                        "no-wall"});

  std::vector<std::string> journals = flags.positional();
  if (flags.has("journals-dir")) {
    for (std::string& path : campaign::listJournals(flags.get("journals-dir", ""))) {
      journals.push_back(std::move(path));
    }
  }
  if (journals.empty() && flags.has("manifest")) {
    // Default to the manifest's conventional journal directory.
    for (std::string& path :
         campaign::listJournals(campaign::journalsDirFor(flags.get("manifest", "")))) {
      journals.push_back(std::move(path));
    }
  }
  std::sort(journals.begin(), journals.end());
  journals.erase(std::unique(journals.begin(), journals.end()), journals.end());
  if (journals.empty()) {
    throw UsageError{
        "no journals to merge: list them as positionals, or pass --journals-dir=DIR or "
        "--manifest=PATH"};
  }

  const campaign::MergeResult merged = campaign::mergeJournals(journals);
  io.err << "merged " << merged.stats.journals << " journal(s): " << merged.stats.okRows
         << " ok, " << merged.stats.errorRows << " error, " << merged.stats.timeoutRows
         << " timeout cell(s); " << merged.stats.duplicatesDropped << " duplicate row(s) dropped, "
         << merged.stats.supersededFailures << " failure(s) superseded by ok rows";
  if (merged.stats.tornTails > 0) {
    io.err << "; " << merged.stats.tornTails << " torn tail(s) discarded";
  }
  io.err << "\n";

  if (flags.has("out")) {
    campaign::writeMergedJournal(flags.get("out", ""), merged);
    io.err << "merged journal: " << flags.get("out", "") << " (replay with rtlock eval --journal="
           << flags.get("out", "") << ")\n";
  }

  std::size_t missingCells = 0;
  std::vector<ReportRow> rows;
  std::string moduleName = merged.identity.design;
  if (flags.has("manifest")) {
    const campaign::Manifest manifest = campaign::readManifest(flags.get("manifest", ""));
    if (manifest.identity.designHash != merged.identity.designHash ||
        manifest.identity.configHash != merged.identity.configHash) {
      throw support::Error{"manifest " + flags.get("manifest", "") +
                           " describes a different campaign than the merged journals "
                           "(design_hash/config_hash mismatch)"};
    }
    moduleName = manifest.identity.design;

    // Rebuild the full eval report from the merged rows — the same builder
    // `rtlock eval` and `rtlock work` use, hence the same bytes.
    std::vector<campaign::CellOutcome> outcomes(manifest.cells.size());
    std::vector<bool> present(manifest.cells.size(), false);
    for (std::size_t i = 0; i < manifest.cells.size(); ++i) {
      const auto it = merged.rows.find(manifest.cells[i].id.key());
      if (it == merged.rows.end()) {
        ++missingCells;
        io.err << "missing cell: " << manifest.cells[i].label << "\n";
        continue;
      }
      outcomes[i] = campaign::outcomeFromRow(it->second);
      present[i] = true;
    }
    rows = service::evalReportRows(
        moduleName, manifest.setup, manifest.cells,
        [&](std::size_t i) -> const campaign::CellOutcome* {
          return present[i] ? &outcomes[i] : nullptr;
        },
        !flags.getBool("no-wall", false));
  } else {
    // No manifest: a summary table of the merged view (the full report needs
    // the manifest's grid order and setup text).
    const auto statRow = [&](const char* metric, std::size_t value) {
      rows.push_back({moduleName, "merge", metric, static_cast<double>(value), 0.0});
    };
    statRow("journals", merged.stats.journals);
    statRow("ok_cells", merged.stats.okRows);
    statRow("error_cells", merged.stats.errorRows);
    statRow("timeout_cells", merged.stats.timeoutRows);
    statRow("duplicates_dropped", merged.stats.duplicatesDropped);
    statRow("superseded_failures", merged.stats.supersededFailures);
    statRow("torn_tails", merged.stats.tornTails);
  }

  if (flags.has("report")) {
    service::EvalResponse document;  // evalReportDocument needs only module + rows
    document.moduleName = moduleName;
    document.rows = rows;
    writeTextFile(flags.get("report", ""),
                  service::evalReportDocument(document, "merge").dump());
    io.err << "report: " << flags.get("report", "") << "\n";
  }
  if (flags.has("report-csv")) {
    std::ofstream csv{flags.get("report-csv", "")};
    if (!csv) throw support::Error{"cannot open " + flags.get("report-csv", "") + " for writing"};
    emitRows(csv, rows, /*csv=*/true);
    io.err << "CSV report: " << flags.get("report-csv", "") << "\n";
  }

  emitRows(io.out, rows, flags.getBool("csv", false));

  if (missingCells > 0) {
    io.err << "partial merge: " << missingCells << " manifest cell(s) have no journal row yet\n";
    return kExitPartial;
  }
  if (merged.stats.errorRows > 0 || merged.stats.timeoutRows > 0) {
    io.err << "partial campaign: " << merged.stats.errorRows << " error cell(s), "
           << merged.stats.timeoutRows << " timeout cell(s)\n";
    return kExitPartial;
  }
  return kExitOk;
}

}  // namespace rtlock::cli
