// `rtlock attack` — run the full SnapShot-RTL pipeline (relock harvesting,
// auto-ml model selection, per-bit key prediction) against a locked netlist
// and write a report whose rows follow the BENCH_baseline.json schema.
//
// With --key=key.json (the `rtlock lock` provenance file) predictions are
// scored into a Key Prediction Accuracy; without it the attack still runs —
// SnapShot is oracle-less and needs nothing but the locked netlist — and the
// report carries the per-bit predictions unscored.
//
// Determinism: repeat r of --repeats draws only from substream(r) of the
// --seed root and repeats shard across --threads workers, so the quality
// rows (and with --no-wall the whole report file) are bit-identical at every
// thread count.
#include <chrono>
#include <fstream>
#include <utility>

#include "attack/snapshot.hpp"
#include "cli/common.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"
#include "support/task_pool.hpp"
#include "verilog/parser.hpp"

namespace rtlock::cli {

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] double elapsedMs(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

struct RepeatOutcome {
  attack::SnapshotResult result;
  double wallMs = 0.0;
};

}  // namespace

int runAttackCommand(const std::vector<std::string>& args, CommandIo& io) {
  const support::CliArgs flags = parseFlags(
      args, {"key", "module", "key-port", "rounds", "relock-budget", "folds", "repeats", "seed",
             "threads", "extended-features", "report", "report-csv", "csv", "no-wall"});
  const std::string inputPath = onePositional(flags, "locked netlist (locked.v)");
  const std::uint64_t seed = u64Flag(flags, "seed", 1);
  const std::uint64_t repeatsRaw = u64Flag(flags, "repeats", 1);
  if (repeatsRaw < 1 || repeatsRaw > 1'000'000) {
    throw UsageError{"--repeats must be in [1, 1000000]"};
  }
  const int repeats = static_cast<int>(repeatsRaw);
  const int threads = support::requestedThreads(flags);
  const bool noWall = flags.getBool("no-wall", false);

  attack::SnapshotConfig config;
  const std::uint64_t rounds = u64Flag(flags, "rounds", 1000);
  if (rounds < 1 || rounds > 1'000'000'000) {
    throw UsageError{"--rounds must be in [1, 1000000000]"};
  }
  config.relockRounds = static_cast<int>(rounds);
  const BudgetSpec relockBudget = parseBudget(flags.get("relock-budget", "75%"));
  if (!relockBudget.isFraction) {
    throw UsageError{"--relock-budget takes a fraction of the target's operations (e.g. 75%)"};
  }
  config.relockBudgetFraction = relockBudget.fraction;
  const std::uint64_t folds = u64Flag(flags, "folds", 3);
  if (folds < 2 || folds > 1000) throw UsageError{"--folds must be in [2, 1000]"};
  config.automl.folds = static_cast<int>(folds);
  config.locality.extendedFeatures = flags.getBool("extended-features", false);

  verilog::ParserOptions parserOptions;
  parserOptions.keyPortName = flags.get("key-port", parserOptions.keyPortName);
  rtl::Design design = verilog::parseDesign(readTextFile(inputPath), parserOptions);
  rtl::Module& target = selectModule(design, flags, /*requireKey=*/true);

  // Ground truth: the lock-time records when a key file is given, else
  // unscored pseudo-records derived from the netlist's own key muxes.
  bool scored = false;
  std::vector<lock::LockRecord> truth;
  if (flags.has("key")) {
    const KeyFile keyFile = keyFileFromJson(support::parseJson(readTextFile(flags.get("key", ""))));
    const ModuleKey& moduleKey = moduleKeyFor(keyFile, target.name());
    if (moduleKey.keyWidth != target.keyWidth()) {
      throw support::Error{"key file was made for a " + std::to_string(moduleKey.keyWidth) +
                           "-bit key but " + target.name() + " has " +
                           std::to_string(target.keyWidth()) + " key bits"};
    }
    truth = moduleKey.records;
    scored = true;
  } else {
    for (const attack::Locality& locality : extractLocalities(target, config.locality)) {
      lock::LockRecord record;
      record.keyIndex = locality.keyIndex;
      truth.push_back(record);
    }
    io.err << "note: no --key file — KPA cannot be scored, reporting raw predictions\n";
  }
  if (truth.empty()) throw support::Error{"module " + target.name() + " has no key muxes"};

  // Repeats shard across the pool; each owns a clone and a substream.
  const support::Rng root{seed};
  support::TaskPool pool{
      support::threadsForTasks(threads, static_cast<std::size_t>(repeats))};
  const auto started = Clock::now();
  const std::vector<RepeatOutcome> outcomes =
      pool.map(static_cast<std::size_t>(repeats), [&](std::size_t index) {
        const auto repeatStart = Clock::now();
        rtl::Module clone = target.clone();
        support::Rng repeatRng = root.substream(index);
        RepeatOutcome outcome;
        outcome.result =
            attack::snapshotAttack(clone, truth, lock::PairTable::fixed(), config, repeatRng);
        outcome.wallMs = elapsedMs(repeatStart);
        return outcome;
      });
  const double totalWallMs = elapsedMs(started);

  const std::string setup = "snapshot rounds=" + std::to_string(config.relockRounds) +
                            " budget=" + relockBudget.describe() +
                            " folds=" + std::to_string(config.automl.folds) +
                            (config.locality.extendedFeatures ? " features=extended" : "");
  std::vector<ReportRow> rows;
  double kpaSum = 0.0;
  double kpaMin = 100.0;
  double kpaMax = 0.0;
  double cvSum = 0.0;
  double rowsSum = 0.0;
  for (std::size_t r = 0; r < outcomes.size(); ++r) {
    const attack::SnapshotResult& result = outcomes[r].result;
    const double wall = noWall ? 0.0 : outcomes[r].wallMs;
    if (scored) {
      rows.push_back({target.name(), setup + " repeat=" + std::to_string(r), "kpa_percent",
                      result.kpa, wall});
      kpaSum += result.kpa;
      kpaMin = std::min(kpaMin, result.kpa);
      kpaMax = std::max(kpaMax, result.kpa);
    }
    cvSum += result.cvAccuracy;
    rowsSum += static_cast<double>(result.trainingRows);
  }
  const auto count = static_cast<double>(outcomes.size());
  if (scored) {
    rows.push_back({target.name(), setup, "mean_kpa_percent", kpaSum / count,
                    noWall ? 0.0 : totalWallMs});
    if (repeats > 1) {
      rows.push_back({target.name(), setup, "min_kpa_percent", kpaMin, 0.0});
      rows.push_back({target.name(), setup, "max_kpa_percent", kpaMax, 0.0});
    }
  }
  rows.push_back({target.name(), setup, "key_bits",
                  static_cast<double>(outcomes.front().result.keyBits), 0.0});
  rows.push_back({target.name(), setup, "mean_training_rows", rowsSum / count, 0.0});
  rows.push_back({target.name(), setup, "mean_cv_accuracy_percent", 100.0 * cvSum / count, 0.0});

  if (flags.has("report")) {
    support::JsonValue document;
    document.set("schema", "rtlock-attack-report/v1");
    document.set("input", inputPath);
    document.set("module", target.name());
    document.set("seed", seed);
    document.set("scored", scored);
    support::JsonArray attacks;
    for (std::size_t r = 0; r < outcomes.size(); ++r) {
      const attack::SnapshotResult& result = outcomes[r].result;
      support::JsonValue entry;
      entry.set("repeat", static_cast<std::int64_t>(r));
      entry.set("model", result.modelName);
      entry.set("cv_accuracy", result.cvAccuracy);
      std::string predictions;
      predictions.reserve(result.predictions.size());
      for (const int bit : result.predictions) predictions.push_back(bit != 0 ? '1' : '0');
      entry.set("predictions", predictions);
      if (scored) entry.set("kpa_percent", result.kpa);
      attacks.push_back(std::move(entry));
    }
    document.set("attacks", support::JsonValue{std::move(attacks)});
    document.set("rows", rowsToJson(rows));
    writeTextFile(flags.get("report", ""), document.dump());
    io.err << "report: " << flags.get("report", "") << "\n";
  }
  if (flags.has("report-csv")) {
    std::ofstream csv{flags.get("report-csv", "")};
    if (!csv) throw support::Error{"cannot open " + flags.get("report-csv", "") + " for writing"};
    emitRows(csv, rows, /*csv=*/true);
    io.err << "CSV report: " << flags.get("report-csv", "") << "\n";
  }

  emitRows(io.out, rows, flags.getBool("csv", false));
  io.err << "model: " << outcomes.front().result.modelName << " (cv "
         << support::formatDouble(100.0 * outcomes.front().result.cvAccuracy, 1) << "%)";
  if (scored) {
    io.err << ", mean KPA " << support::formatDouble(kpaSum / count, 1) << "% over " << repeats
           << " repeat(s)";
  }
  io.err << "\n";
  return kExitOk;
}

}  // namespace rtlock::cli
