// `rtlock attack` — run the full SnapShot-RTL pipeline (relock harvesting,
// auto-ml model selection, per-bit key prediction) against a locked netlist
// and write a report whose rows follow the BENCH_baseline.json schema.
//
// Thin wrapper over service::runAttack (shared with `rtlock serve`).  With
// --key=key.json (the `rtlock lock` provenance file) predictions are scored
// into a Key Prediction Accuracy; without it the attack still runs —
// SnapShot is oracle-less and needs nothing but the locked netlist — and the
// report carries the per-bit predictions unscored.
//
// Determinism: repeat r of --repeats draws only from substream(r) of the
// --seed root and repeats shard across --threads workers, so the quality
// rows (and with --no-wall the whole report file) are bit-identical at every
// thread count.
#include <fstream>

#include "cli/common.hpp"
#include "service/api.hpp"
#include "support/strings.hpp"

namespace rtlock::cli {

int runAttackCommand(const std::vector<std::string>& args, CommandIo& io) {
  const support::CliArgs flags = parseFlags(
      args, {"key", "module", "key-port", "rounds", "relock-budget", "folds", "repeats", "seed",
             "threads", "extended-features", "report", "report-csv", "csv", "no-wall"});
  const std::string inputPath = onePositional(flags, "locked netlist (locked.v)");

  service::AttackRequest request;
  request.seed = u64Flag(flags, "seed", 1);
  const std::uint64_t repeatsRaw = u64Flag(flags, "repeats", 1);
  if (repeatsRaw < 1 || repeatsRaw > 1'000'000) {
    throw UsageError{"--repeats must be in [1, 1000000]"};
  }
  request.repeats = static_cast<int>(repeatsRaw);
  request.threads = support::requestedThreads(flags);
  request.includeWall = !flags.getBool("no-wall", false);
  const std::uint64_t rounds = u64Flag(flags, "rounds", 1000);
  if (rounds < 1 || rounds > 1'000'000'000) {
    throw UsageError{"--rounds must be in [1, 1000000000]"};
  }
  request.rounds = static_cast<int>(rounds);
  request.relockBudget = parseBudget(flags.get("relock-budget", "75%"));
  if (!request.relockBudget.isFraction) {
    throw UsageError{"--relock-budget takes a fraction of the target's operations (e.g. 75%)"};
  }
  const std::uint64_t folds = u64Flag(flags, "folds", 3);
  if (folds < 2 || folds > 1000) throw UsageError{"--folds must be in [2, 1000]"};
  request.folds = static_cast<int>(folds);
  request.extendedFeatures = flags.getBool("extended-features", false);

  request.source = readTextFile(inputPath);
  request.session.keyPortName = flags.get("key-port", request.session.keyPortName);
  request.moduleName = flags.get("module", "");
  if (flags.has("key")) {
    request.key = keyFileFromJson(support::parseJson(readTextFile(flags.get("key", ""))));
  } else {
    io.err << "note: no --key file — KPA cannot be scored, reporting raw predictions\n";
  }

  service::SessionCache cache;
  const service::AttackResponse response = service::runAttack(cache, request);

  if (flags.has("report")) {
    writeTextFile(flags.get("report", ""),
                  service::attackReportDocument(request, response, inputPath).dump());
    io.err << "report: " << flags.get("report", "") << "\n";
  }
  if (flags.has("report-csv")) {
    std::ofstream csv{flags.get("report-csv", "")};
    if (!csv) throw support::Error{"cannot open " + flags.get("report-csv", "") + " for writing"};
    emitRows(csv, response.rows, /*csv=*/true);
    io.err << "CSV report: " << flags.get("report-csv", "") << "\n";
  }

  emitRows(io.out, response.rows, flags.getBool("csv", false));
  const attack::SnapshotResult& first = response.repeats.front().result;
  io.err << "model: " << first.modelName << " (cv "
         << support::formatDouble(100.0 * first.cvAccuracy, 1) << "%)";
  if (response.scored) {
    double kpaSum = 0.0;
    for (const service::AttackRepeat& repeat : response.repeats) kpaSum += repeat.result.kpa;
    io.err << ", mean KPA "
           << support::formatDouble(kpaSum / static_cast<double>(response.repeats.size()), 1)
           << "% over " << request.repeats << " repeat(s)";
  }
  io.err << "\n";
  return kExitOk;
}

}  // namespace rtlock::cli
