// `rtlock designs` — the built-in benchmark registry (the paper's 14
// evaluation designs), with per-design lockability numbers so users can size
// budgets before running `rtlock eval` against a registry design they dumped
// via --emit.
#include "cli/common.hpp"
#include "core/engine.hpp"
#include "designs/registry.hpp"
#include "support/table.hpp"
#include "verilog/writer.hpp"

namespace rtlock::cli {

int runDesignsCommand(const std::vector<std::string>& args, CommandIo& io) {
  const support::CliArgs flags = parseFlags(args, {"csv", "emit"});
  if (!flags.positional().empty()) {
    throw UsageError{"unexpected argument '" + flags.positional().front() + "'"};
  }

  // --emit=NAME dumps one registry design as Verilog so the file-based
  // commands can chew on exactly what the figure benches evaluate.
  if (flags.has("emit")) {
    const std::string name = flags.get("emit", "");
    const rtl::Module module = designs::makeBenchmark(name);
    io.out << verilog::writeModule(module);
    return kExitOk;
  }

  support::Table table{{"name", "description", "lockable_ops", "budget@75%"}};
  for (const designs::BenchmarkInfo& info : designs::allBenchmarks()) {
    rtl::Module module = info.make();
    const lock::LockEngine engine{module, lock::PairTable::fixed()};
    const int ops = engine.initialLockableOps();
    table.addRow({info.name, info.description, std::to_string(ops),
                  std::to_string(static_cast<int>(0.75 * ops))});
  }
  if (flags.getBool("csv", false)) {
    table.renderCsv(io.out);
  } else {
    table.renderText(io.out);
  }
  return kExitOk;
}

}  // namespace rtlock::cli
