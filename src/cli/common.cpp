#include "cli/common.hpp"

#include <fstream>
#include <sstream>

#include "support/strings.hpp"
#include "support/table.hpp"

namespace rtlock::cli {

support::CliArgs parseFlags(const std::vector<std::string>& args,
                            std::vector<std::string> knownFlags) {
  std::vector<const char*> argv;
  argv.reserve(args.size() + 1);
  argv.push_back("rtlock");
  for (const std::string& arg : args) argv.push_back(arg.c_str());
  try {
    return support::CliArgs(static_cast<int>(argv.size()), argv.data(), std::move(knownFlags));
  } catch (const support::Error& error) {
    throw UsageError{error.what()};
  }
}

std::string onePositional(const support::CliArgs& args, const char* what) {
  if (args.positional().empty()) throw UsageError{std::string{"missing "} + what};
  if (args.positional().size() > 1) {
    throw UsageError{"unexpected extra argument '" + args.positional()[1] + "'"};
  }
  return args.positional().front();
}

std::uint64_t u64Flag(const support::CliArgs& args, std::string_view name,
                      std::uint64_t fallback) {
  try {
    return args.getU64(name, fallback);
  } catch (const support::Error& error) {
    throw UsageError{error.what()};
  }
}

std::string readTextFile(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) throw support::Error{"cannot open " + path};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void writeTextFile(const std::string& path, const std::string& text) {
  std::ofstream out{path, std::ios::binary};
  if (!out) throw support::Error{"cannot open " + path + " for writing"};
  out << text;
  if (!out) throw support::Error{"failed writing " + path};
}

void emitRows(std::ostream& out, const std::vector<ReportRow>& rows, bool csv) {
  support::Table table{{"bench", "config", "metric", "value", "wall_ms"}};
  for (const ReportRow& row : rows) {
    table.addRow({row.bench, row.config, row.metric, support::formatDouble(row.value, 4),
                  support::formatDouble(row.wallMs, 2)});
  }
  if (csv) {
    table.renderCsv(out);
  } else {
    table.renderText(out);
  }
}

rtl::Module& selectModule(rtl::Design& design, const support::CliArgs& args, bool requireKey) {
  std::vector<std::string> names;
  for (std::size_t i = 0; i < design.moduleCount(); ++i) {
    names.push_back(design.module(i).name());
  }
  if (args.has("module")) {
    const std::string wanted = args.get("module", "");
    if (rtl::Module* module = design.findModule(wanted)) return *module;
    throw support::Error{"no module named \"" + wanted + "\" (design has: " +
                         support::join(names, ", ") + ")"};
  }
  rtl::Module* chosen = nullptr;
  std::size_t eligible = 0;
  for (std::size_t i = 0; i < design.moduleCount(); ++i) {
    rtl::Module& module = design.module(i);
    if (requireKey && module.keyWidth() == 0) continue;
    ++eligible;
    if (chosen == nullptr) chosen = &module;
  }
  if (chosen == nullptr) {
    throw support::Error{
        requireKey
            ? "no module has a key input — is this netlist locked, and is the key port named "
              "correctly (see --key-port)?"
            : "design contains no modules"};
  }
  if (eligible > 1) {
    throw support::Error{"design has several candidate modules (" + support::join(names, ", ") +
                         ") — pick one with --module=NAME"};
  }
  return *chosen;
}

}  // namespace rtlock::cli
