#include "cli/common.hpp"

#include <fstream>
#include <sstream>

#include "support/strings.hpp"
#include "support/table.hpp"

namespace rtlock::cli {

support::CliArgs parseFlags(const std::vector<std::string>& args,
                            std::vector<std::string> knownFlags) {
  std::vector<const char*> argv;
  argv.reserve(args.size() + 1);
  argv.push_back("rtlock");
  for (const std::string& arg : args) argv.push_back(arg.c_str());
  try {
    return support::CliArgs(static_cast<int>(argv.size()), argv.data(), std::move(knownFlags));
  } catch (const support::Error& error) {
    throw UsageError{error.what()};
  }
}

std::string onePositional(const support::CliArgs& args, const char* what) {
  if (args.positional().empty()) throw UsageError{std::string{"missing "} + what};
  if (args.positional().size() > 1) {
    throw UsageError{"unexpected extra argument '" + args.positional()[1] + "'"};
  }
  return args.positional().front();
}

lock::Algorithm algorithmFromFlag(const std::string& name) {
  const std::string lowered = support::toLower(name);
  if (lowered == "serial" || lowered == "assure") return lock::Algorithm::AssureSerial;
  if (lowered == "random") return lock::Algorithm::AssureRandom;
  if (lowered == "hra") return lock::Algorithm::Hra;
  if (lowered == "greedy") return lock::Algorithm::Greedy;
  if (lowered == "era") return lock::Algorithm::Era;
  throw UsageError{"unknown algorithm '" + name + "' (expected serial|random|hra|greedy|era)"};
}

std::string algorithmFlagName(lock::Algorithm algorithm) {
  switch (algorithm) {
    case lock::Algorithm::AssureSerial: return "serial";
    case lock::Algorithm::AssureRandom: return "random";
    case lock::Algorithm::Hra: return "hra";
    case lock::Algorithm::Greedy: return "greedy";
    case lock::Algorithm::Era: return "era";
  }
  RTLOCK_UNREACHABLE("algorithm");
}

int BudgetSpec::resolve(int lockableOps) const {
  if (!isFraction) return static_cast<int>(absolute);
  const int bits = static_cast<int>(fraction * lockableOps);
  return bits > 0 ? bits : 1;
}

std::string BudgetSpec::describe() const {
  if (isFraction) return support::formatDouble(fraction * 100.0, 0) + "%";
  return std::to_string(absolute) + " bits";
}

std::uint64_t u64Flag(const support::CliArgs& args, std::string_view name,
                      std::uint64_t fallback) {
  try {
    return args.getU64(name, fallback);
  } catch (const support::Error& error) {
    throw UsageError{error.what()};
  }
}

sim::SimBackend simBackendFromFlag(const std::string& name) {
  const std::string lowered = support::toLower(name);
  if (lowered == "sliced") return sim::SimBackend::Sliced;
  if (lowered == "compiled" || lowered == "scalar") return sim::SimBackend::Compiled;
  throw UsageError{"unknown sim backend '" + name + "' (expected sliced|compiled)"};
}

BudgetSpec parseBudget(const std::string& text) {
  BudgetSpec spec;
  try {
    // Full-consumption parses: trailing junk must fail loudly, not silently
    // reinterpret the budget ("50%x", "1e2").
    std::size_t used = 0;
    if (!text.empty() && text.back() == '%') {
      const std::string number = text.substr(0, text.size() - 1);
      spec.isFraction = true;
      spec.fraction = std::stod(number, &used) / 100.0;
      if (used != number.size()) throw UsageError{"trailing junk"};
    } else if (text.find('.') != std::string::npos) {
      spec.isFraction = true;
      spec.fraction = std::stod(text, &used);
      if (used != text.size()) throw UsageError{"trailing junk"};
    } else {
      spec.isFraction = false;
      spec.absolute = std::stoll(text, &used);
      if (used != text.size()) throw UsageError{"trailing junk"};
    }
  } catch (const std::exception&) {
    throw UsageError{"malformed budget '" + text + "' (expected e.g. 50%, 0.5 or 40)"};
  }
  if (spec.isFraction && (spec.fraction <= 0.0 || spec.fraction > 1.0)) {
    throw UsageError{"budget fraction must be in (0%, 100%], got '" + text + "'"};
  }
  if (!spec.isFraction && spec.absolute < 1) {
    throw UsageError{"absolute budget must be at least 1 key bit, got '" + text + "'"};
  }
  return spec;
}

std::string readTextFile(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) throw support::Error{"cannot open " + path};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void writeTextFile(const std::string& path, const std::string& text) {
  std::ofstream out{path, std::ios::binary};
  if (!out) throw support::Error{"cannot open " + path + " for writing"};
  out << text;
  if (!out) throw support::Error{"failed writing " + path};
}

support::JsonValue rowsToJson(const std::vector<ReportRow>& rows) {
  support::JsonArray array;
  array.reserve(rows.size());
  for (const ReportRow& row : rows) {
    support::JsonValue entry;
    entry.set("bench", row.bench);
    entry.set("config", row.config);
    entry.set("metric", row.metric);
    // Match the baseline writer's fixed precisions so the documents diff and
    // gate identically whichever tool produced them.
    entry.set("value", std::stod(support::formatDouble(row.value, 4)));
    entry.set("wall_ms", std::stod(support::formatDouble(row.wallMs, 2)));
    array.push_back(std::move(entry));
  }
  return support::JsonValue{std::move(array)};
}

void emitRows(std::ostream& out, const std::vector<ReportRow>& rows, bool csv) {
  support::Table table{{"bench", "config", "metric", "value", "wall_ms"}};
  for (const ReportRow& row : rows) {
    table.addRow({row.bench, row.config, row.metric, support::formatDouble(row.value, 4),
                  support::formatDouble(row.wallMs, 2)});
  }
  if (csv) {
    table.renderCsv(out);
  } else {
    table.renderText(out);
  }
}

support::JsonValue keyFileToJson(const KeyFile& keyFile) {
  support::JsonValue document;
  document.set("schema", kKeySchema);
  document.set("input", keyFile.input);
  document.set("algorithm", keyFile.algorithm);
  document.set("budget", keyFile.budget);
  document.set("seed", keyFile.seed);
  support::JsonArray modules;
  modules.reserve(keyFile.modules.size());
  for (const ModuleKey& module : keyFile.modules) {
    support::JsonValue entry;
    entry.set("module", module.module);
    entry.set("key_width", module.keyWidth);
    entry.set("key", module.keyBits);
    entry.set("bits_used", module.bitsUsed);
    entry.set("global_metric", module.globalMetric);
    entry.set("restricted_metric", module.restrictedMetric);
    support::JsonArray records;
    records.reserve(module.records.size());
    for (const lock::LockRecord& record : module.records) {
      support::JsonValue row;
      row.set("key_index", record.keyIndex);
      row.set("key_value", record.keyValue ? 1 : 0);
      row.set("real_op", std::string{rtl::opName(record.realOp)});
      row.set("dummy_op", std::string{rtl::opName(record.dummyOp)});
      records.push_back(std::move(row));
    }
    entry.set("records", support::JsonValue{std::move(records)});
    modules.push_back(std::move(entry));
  }
  document.set("modules", support::JsonValue{std::move(modules)});
  return document;
}

KeyFile keyFileFromJson(const support::JsonValue& document) {
  const std::string schema = document.at("schema").asString();
  if (schema != kKeySchema) {
    throw support::Error{"unsupported key file schema \"" + schema + "\" (expected " +
                         kKeySchema + ")"};
  }
  KeyFile keyFile;
  keyFile.input = document.at("input").asString();
  keyFile.algorithm = document.at("algorithm").asString();
  keyFile.budget = document.at("budget").asString();
  keyFile.seed = static_cast<std::uint64_t>(document.at("seed").asInt());
  for (const support::JsonValue& entry : document.at("modules").asArray()) {
    ModuleKey module;
    module.module = entry.at("module").asString();
    module.keyWidth = static_cast<int>(entry.at("key_width").asInt());
    module.keyBits = entry.at("key").asString();
    module.bitsUsed = static_cast<int>(entry.at("bits_used").asInt());
    module.globalMetric = entry.at("global_metric").asDouble();
    module.restrictedMetric = entry.at("restricted_metric").asDouble();
    if (module.keyBits.size() != static_cast<std::size_t>(module.keyWidth)) {
      throw support::Error{"key file module \"" + module.module +
                           "\": key string length does not match key_width"};
    }
    for (const support::JsonValue& row : entry.at("records").asArray()) {
      lock::LockRecord record;
      record.keyIndex = static_cast<int>(row.at("key_index").asInt());
      record.keyValue = row.at("key_value").asInt() != 0;
      const auto realOp = rtl::opFromName(row.at("real_op").asString());
      const auto dummyOp = rtl::opFromName(row.at("dummy_op").asString());
      if (!realOp || !dummyOp) {
        throw support::Error{"key file module \"" + module.module +
                             "\": unknown operator mnemonic in record"};
      }
      record.realOp = *realOp;
      record.dummyOp = *dummyOp;
      module.records.push_back(record);
    }
    keyFile.modules.push_back(std::move(module));
  }
  return keyFile;
}

const ModuleKey& moduleKeyFor(const KeyFile& keyFile, const std::string& moduleName) {
  std::vector<std::string> names;
  for (const ModuleKey& module : keyFile.modules) {
    if (module.module == moduleName) return module;
    names.push_back(module.module);
  }
  throw support::Error{"key file has no entry for module \"" + moduleName + "\" (it has: " +
                       support::join(names, ", ") + ")"};
}

rtl::Module& selectModule(rtl::Design& design, const support::CliArgs& args, bool requireKey) {
  std::vector<std::string> names;
  for (std::size_t i = 0; i < design.moduleCount(); ++i) {
    names.push_back(design.module(i).name());
  }
  if (args.has("module")) {
    const std::string wanted = args.get("module", "");
    if (rtl::Module* module = design.findModule(wanted)) return *module;
    throw support::Error{"no module named \"" + wanted + "\" (design has: " +
                         support::join(names, ", ") + ")"};
  }
  rtl::Module* chosen = nullptr;
  std::size_t eligible = 0;
  for (std::size_t i = 0; i < design.moduleCount(); ++i) {
    rtl::Module& module = design.module(i);
    if (requireKey && module.keyWidth() == 0) continue;
    ++eligible;
    if (chosen == nullptr) chosen = &module;
  }
  if (chosen == nullptr) {
    throw support::Error{
        requireKey
            ? "no module has a key input — is this netlist locked, and is the key port named "
              "correctly (see --key-port)?"
            : "design contains no modules"};
  }
  if (eligible > 1) {
    throw support::Error{"design has several candidate modules (" + support::join(names, ", ") +
                         ") — pick one with --module=NAME"};
  }
  return *chosen;
}

}  // namespace rtlock::cli
