// `rtlock lint` — static security analysis of a (locked) netlist.
//
// Runs both analysis tiers over every module of the input: the Tier A IR
// verifier (rendered for completeness — parseDesign already rejected
// Error-severity input, so what remains here are warnings) and the Tier B
// security lint, which reports provably free key bits, constant-propagation
// removable muxes and identical-arm mux shells, condensed into the static
// resilience summary.  Rows follow the BENCH_baseline.json schema so the
// output feeds the same `rtlock report` tooling as every other command.
#include <chrono>
#include <fstream>
#include <iterator>

#include "analysis/lint.hpp"
#include "analysis/verifier.hpp"
#include "cli/common.hpp"
#include "support/strings.hpp"
#include "verilog/parser.hpp"

namespace rtlock::cli {

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] double elapsedMs(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

[[nodiscard]] support::JsonValue findingsToJson(
    const std::vector<analysis::Diagnostic>& findings) {
  support::JsonArray array;
  array.reserve(findings.size());
  for (const analysis::Diagnostic& finding : findings) {
    support::JsonValue entry;
    entry.set("code", analysis::checkCode(finding.check));
    entry.set("check", analysis::checkName(finding.check));
    entry.set("severity", analysis::severityName(finding.severity));
    entry.set("module", finding.module);
    entry.set("context", finding.context);
    entry.set("message", finding.message);
    array.push_back(std::move(entry));
  }
  return support::JsonValue{std::move(array)};
}

}  // namespace

int runLintCommand(const std::vector<std::string>& args, CommandIo& io) {
  const support::CliArgs flags =
      parseFlags(args, {"module", "key-port", "report", "report-csv", "csv", "json", "no-wall"});
  const std::string inputPath = onePositional(flags, "input netlist (locked.v)");
  const bool noWall = flags.getBool("no-wall", false);

  verilog::ParserOptions parserOptions;
  parserOptions.keyPortName = flags.get("key-port", parserOptions.keyPortName);
  rtl::Design design = verilog::parseDesign(readTextFile(inputPath), parserOptions);

  std::vector<const rtl::Module*> modules;
  if (flags.has("module")) {
    modules.push_back(&selectModule(design, flags, /*requireKey=*/false));
  } else {
    for (std::size_t i = 0; i < design.moduleCount(); ++i) {
      modules.push_back(&design.module(i));
    }
  }

  std::vector<analysis::Diagnostic> findings;
  std::vector<ReportRow> rows;
  bool sawErrors = false;
  for (const rtl::Module* module : modules) {
    const auto started = Clock::now();
    std::vector<analysis::Diagnostic> moduleFindings = analysis::verify(*module);
    const int verifierErrors =
        analysis::countWithSeverity(moduleFindings, analysis::Severity::Error);
    const int verifierWarnings =
        analysis::countWithSeverity(moduleFindings, analysis::Severity::Warning);
    sawErrors = sawErrors || verifierErrors > 0;

    const analysis::LintReport lint = analysis::lintLocked(*module);
    moduleFindings.insert(moduleFindings.end(), lint.findings.begin(), lint.findings.end());
    const double wallMs = noWall ? 0.0 : elapsedMs(started);

    const std::string bench = module->name();
    const auto metric = [&](const char* name, double value, double wall = 0.0) {
      rows.push_back({bench, "lint", name, value, wall});
    };
    metric("key_width", static_cast<double>(lint.summary.keyWidth), wallMs);
    metric("key_muxes", static_cast<double>(lint.summary.keyMuxes));
    metric("free_key_bits", static_cast<double>(lint.summary.freeKeyBits));
    metric("constant_select_muxes", static_cast<double>(lint.summary.constantSelectMuxes));
    metric("identical_arm_muxes", static_cast<double>(lint.summary.identicalArmMuxes));
    metric("static_resilience_percent", lint.summary.staticResiliencePercent);
    metric("verifier_errors", static_cast<double>(verifierErrors));
    metric("verifier_warnings", static_cast<double>(verifierWarnings));

    findings.insert(findings.end(), std::make_move_iterator(moduleFindings.begin()),
                    std::make_move_iterator(moduleFindings.end()));
  }

  support::JsonValue document;
  document.set("schema", "rtlock-lint-report/v1");
  document.set("input", inputPath);
  document.set("findings", findingsToJson(findings));
  document.set("rows", rowsToJson(rows));

  if (flags.has("report")) {
    writeTextFile(flags.get("report", ""), document.dump());
    io.err << "report: " << flags.get("report", "") << "\n";
  }
  if (flags.has("report-csv")) {
    std::ofstream csv{flags.get("report-csv", "")};
    if (!csv) throw support::Error{"cannot open " + flags.get("report-csv", "") + " for writing"};
    emitRows(csv, rows, /*csv=*/true);
    io.err << "CSV report: " << flags.get("report-csv", "") << "\n";
  }

  if (flags.getBool("json", false)) {
    io.out << document.dump() << "\n";
  } else {
    for (const analysis::Diagnostic& finding : findings) {
      io.out << analysis::describe(finding) << "\n";
    }
    if (!findings.empty()) io.out << "\n";
    emitRows(io.out, rows, flags.getBool("csv", false));
  }
  io.err << findings.size() << " finding(s) across " << modules.size() << " module(s)\n";
  return sawErrors ? kExitError : kExitOk;
}

}  // namespace rtlock::cli
