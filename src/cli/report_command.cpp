// `rtlock report` — render any rows-schema report JSON (attack/eval reports,
// BENCH_baseline.json) as an aligned table or CSV, with optional filters.
#include "cli/common.hpp"
#include "support/strings.hpp"

namespace rtlock::cli {

int runReportCommand(const std::vector<std::string>& args, CommandIo& io) {
  const support::CliArgs flags = parseFlags(args, {"csv", "bench", "metric", "config"});
  const std::string inputPath = onePositional(flags, "report file (report.json)");

  const support::JsonValue document = support::parseJson(readTextFile(inputPath));
  const support::JsonValue* rowsValue = document.find("rows");
  if (rowsValue == nullptr || !rowsValue->isArray()) {
    throw support::Error{inputPath + " is not a rows-schema report (no \"rows\" array)"};
  }
  if (const support::JsonValue* schema = document.find("schema")) {
    io.err << "schema: " << schema->asString() << "\n";
  }

  const bool filterBench = flags.has("bench");
  const bool filterMetric = flags.has("metric");
  const bool filterConfig = flags.has("config");
  const std::string wantBench = flags.get("bench", "");
  const std::string wantMetric = flags.get("metric", "");
  const std::string wantConfig = flags.get("config", "");

  std::vector<ReportRow> rows;
  for (const support::JsonValue& entry : rowsValue->asArray()) {
    ReportRow row;
    row.bench = entry.at("bench").asString();
    row.config = entry.at("config").asString();
    row.metric = entry.at("metric").asString();
    row.value = entry.at("value").asDouble();
    if (const support::JsonValue* wall = entry.find("wall_ms")) row.wallMs = wall->asDouble();
    if (filterBench && row.bench != wantBench) continue;
    if (filterMetric && row.metric != wantMetric) continue;
    if (filterConfig && row.config.find(wantConfig) == std::string::npos) continue;
    rows.push_back(std::move(row));
  }
  if (rows.empty()) throw support::Error{"no rows match the requested filters"};

  emitRows(io.out, rows, flags.getBool("csv", false));
  io.err << rows.size() << " row(s)\n";
  return kExitOk;
}

}  // namespace rtlock::cli
