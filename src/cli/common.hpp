// Internal plumbing shared by the rtlock subcommands.
//
// Everything here is CLI-private: commands include this header, the library
// proper never does.  The public surface is cli.hpp's runCli alone.
//
// The request/response vocabulary (budgets, algorithm spellings, report
// rows, key files) lives in src/service/types.hpp since the serve front end
// shares it; the aliases below keep the subcommands reading unchanged.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "cli/cli.hpp"
#include "core/report.hpp"
#include "rtl/module.hpp"
#include "service/types.hpp"
#include "sim/harness.hpp"
#include "support/cli.hpp"
#include "support/diagnostics.hpp"
#include "support/json.hpp"

namespace rtlock::cli {

/// Usage-class failure (unknown flag, malformed flag value, missing
/// positional).  Mapped to kExitUsage at the dispatch boundary — alongside
/// service::BadRequest, its library-level sibling — while plain
/// support::Error (bad file, parse error) maps to kExitError.
class UsageError : public support::Error {
 public:
  using support::Error::Error;
};

/// Output streams for one invocation.  `out` carries the requested artifact
/// (tables, rendered reports); `err` carries diagnostics and progress.
struct CommandIo {
  std::ostream& out;
  std::ostream& err;
};

/// A subcommand: entry point plus the usage text `rtlock help <name>` prints.
struct Command {
  const char* name;
  const char* oneLiner;
  const char* usage;  // full flag reference, man-page style
  int (*run)(const std::vector<std::string>& args, CommandIo& io);
};

/// The dispatch table, in help order.
[[nodiscard]] const std::vector<Command>& commandTable();

// Subcommand entry points (one translation unit each).
int runLockCommand(const std::vector<std::string>& args, CommandIo& io);
int runAttackCommand(const std::vector<std::string>& args, CommandIo& io);
int runEvalCommand(const std::vector<std::string>& args, CommandIo& io);
int runWorkCommand(const std::vector<std::string>& args, CommandIo& io);
int runMergeCommand(const std::vector<std::string>& args, CommandIo& io);
int runReportCommand(const std::vector<std::string>& args, CommandIo& io);
int runDesignsCommand(const std::vector<std::string>& args, CommandIo& io);
int runLintCommand(const std::vector<std::string>& args, CommandIo& io);
int runServeCommand(const std::vector<std::string>& args, CommandIo& io);

// ---- flag parsing ---------------------------------------------------------

/// Wraps CliArgs so flag-syntax failures classify as UsageError.
[[nodiscard]] support::CliArgs parseFlags(const std::vector<std::string>& args,
                                          std::vector<std::string> knownFlags);

/// The one required positional argument (the input path); UsageError when
/// missing or when extras are present.
[[nodiscard]] std::string onePositional(const support::CliArgs& args, const char* what);

/// Locking algorithm from its CLI spelling: serial|assure, random, hra,
/// greedy, era (case-insensitive).  service::BadRequest otherwise
/// (kExitUsage, like any flag typo).
[[nodiscard]] inline lock::Algorithm algorithmFromFlag(const std::string& name) {
  return service::algorithmFromName(name);
}

/// CLI spelling of an algorithm (lower-case, stable in reports/key files).
[[nodiscard]] inline std::string algorithmFlagName(lock::Algorithm algorithm) {
  return service::algorithmName(algorithm);
}

// Key budgets: "50%" / "0.5" = fraction of lockable operations, bare
// integer = absolute key bits (service::BadRequest on malformed text).
using service::BudgetSpec;
using service::parseBudget;

/// Strict non-negative integer flag (support::parseU64 semantics: the whole
/// token, no sign, no trailing junk, no wraparound).  Malformed values
/// classify as UsageError so they exit with kExitUsage like any other flag
/// typo — "--seed -1" and "--samples 3x" must never silently run with a
/// wrapped or truncated value.
[[nodiscard]] std::uint64_t u64Flag(const support::CliArgs& args, std::string_view name,
                                    std::uint64_t fallback);

/// Simulation backend from its CLI spelling: "sliced" (64-lane bit-parallel,
/// the default everywhere) or "compiled" (the scalar differential oracle).
/// service::BadRequest otherwise.
[[nodiscard]] inline sim::SimBackend simBackendFromFlag(const std::string& name) {
  return service::simBackendFromName(name);
}

// ---- file I/O -------------------------------------------------------------

[[nodiscard]] std::string readTextFile(const std::string& path);
void writeTextFile(const std::string& path, const std::string& text);

// ---- report rows ----------------------------------------------------------

// One metric row ({bench, config, metric, value, wall_ms}) and its JSON
// spelling — the BENCH_baseline.json schema, shared with the service layer.
using service::ReportRow;
using service::rowsToJson;

/// Renders rows as an aligned table or CSV on `out`.
void emitRows(std::ostream& out, const std::vector<ReportRow>& rows, bool csv);

// ---- key files (rtlock-key/v1) --------------------------------------------

using service::kKeySchema;
using service::KeyFile;
using service::keyFileFromJson;
using service::keyFileToJson;
using service::ModuleKey;
using service::moduleKeyFor;

// ---- module selection -----------------------------------------------------

/// Picks the module a single-module command operates on: --module=NAME when
/// given; otherwise the design's only module, or — when `requireKey` — its
/// only keyed module.  Throws support::Error listing the candidates when the
/// choice is ambiguous or impossible.
[[nodiscard]] rtl::Module& selectModule(rtl::Design& design, const support::CliArgs& args,
                                        bool requireKey);

}  // namespace rtlock::cli
