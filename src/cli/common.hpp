// Internal plumbing shared by the rtlock subcommands.
//
// Everything here is CLI-private: commands include this header, the library
// proper never does.  The public surface is cli.hpp's runCli alone.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "cli/cli.hpp"
#include "core/report.hpp"
#include "rtl/module.hpp"
#include "sim/harness.hpp"
#include "support/cli.hpp"
#include "support/diagnostics.hpp"
#include "support/json.hpp"

namespace rtlock::cli {

/// Usage-class failure (unknown flag, malformed flag value, missing
/// positional).  Mapped to kExitUsage at the dispatch boundary, while plain
/// support::Error (bad file, parse error) maps to kExitError.
class UsageError : public support::Error {
 public:
  using support::Error::Error;
};

/// Output streams for one invocation.  `out` carries the requested artifact
/// (tables, rendered reports); `err` carries diagnostics and progress.
struct CommandIo {
  std::ostream& out;
  std::ostream& err;
};

/// A subcommand: entry point plus the usage text `rtlock help <name>` prints.
struct Command {
  const char* name;
  const char* oneLiner;
  const char* usage;  // full flag reference, man-page style
  int (*run)(const std::vector<std::string>& args, CommandIo& io);
};

/// The dispatch table, in help order.
[[nodiscard]] const std::vector<Command>& commandTable();

// Subcommand entry points (one translation unit each).
int runLockCommand(const std::vector<std::string>& args, CommandIo& io);
int runAttackCommand(const std::vector<std::string>& args, CommandIo& io);
int runEvalCommand(const std::vector<std::string>& args, CommandIo& io);
int runReportCommand(const std::vector<std::string>& args, CommandIo& io);
int runDesignsCommand(const std::vector<std::string>& args, CommandIo& io);
int runLintCommand(const std::vector<std::string>& args, CommandIo& io);

// ---- flag parsing ---------------------------------------------------------

/// Wraps CliArgs so flag-syntax failures classify as UsageError.
[[nodiscard]] support::CliArgs parseFlags(const std::vector<std::string>& args,
                                          std::vector<std::string> knownFlags);

/// The one required positional argument (the input path); UsageError when
/// missing or when extras are present.
[[nodiscard]] std::string onePositional(const support::CliArgs& args, const char* what);

/// Locking algorithm from its CLI spelling: serial|assure, random, hra,
/// greedy, era (case-insensitive).  UsageError otherwise.
[[nodiscard]] lock::Algorithm algorithmFromFlag(const std::string& name);

/// CLI spelling of an algorithm (lower-case, stable in reports/key files).
[[nodiscard]] std::string algorithmFlagName(lock::Algorithm algorithm);

/// Key budget: "50%" or "0.5" = fraction of the module's lockable
/// operations; a bare integer = absolute key bits.
struct BudgetSpec {
  bool isFraction = true;
  double fraction = 0.75;
  std::int64_t absolute = 0;

  /// Key bits for a module with `lockableOps` operations (floor, min 1).
  [[nodiscard]] int resolve(int lockableOps) const;
  /// Canonical spelling for reports ("75%" / "12 bits").
  [[nodiscard]] std::string describe() const;
};

[[nodiscard]] BudgetSpec parseBudget(const std::string& text);

/// Strict non-negative integer flag (support::parseU64 semantics: the whole
/// token, no sign, no trailing junk, no wraparound).  Malformed values
/// classify as UsageError so they exit with kExitUsage like any other flag
/// typo — "--seed -1" and "--samples 3x" must never silently run with a
/// wrapped or truncated value.
[[nodiscard]] std::uint64_t u64Flag(const support::CliArgs& args, std::string_view name,
                                    std::uint64_t fallback);

/// Simulation backend from its CLI spelling: "sliced" (64-lane bit-parallel,
/// the default everywhere) or "compiled" (the scalar differential oracle).
/// UsageError otherwise.
[[nodiscard]] sim::SimBackend simBackendFromFlag(const std::string& name);

// ---- file I/O -------------------------------------------------------------

[[nodiscard]] std::string readTextFile(const std::string& path);
void writeTextFile(const std::string& path, const std::string& text);

// ---- report rows ----------------------------------------------------------

/// One metric row; the schema BENCH_baseline.json established
/// ({bench, config, metric, value, wall_ms}), reused verbatim so every
/// rtlock report is consumable by the same tooling as the committed
/// baseline.
struct ReportRow {
  std::string bench;
  std::string config;
  std::string metric;
  double value = 0.0;
  double wallMs = 0.0;
};

/// Rows as the JSON array for a report's "rows" member.
[[nodiscard]] support::JsonValue rowsToJson(const std::vector<ReportRow>& rows);

/// Renders rows as an aligned table or CSV on `out`.
void emitRows(std::ostream& out, const std::vector<ReportRow>& rows, bool csv);

// ---- key files (rtlock-key/v1) --------------------------------------------

inline constexpr const char* kKeySchema = "rtlock-key/v1";

/// Per-module locking ground truth + provenance.
struct ModuleKey {
  std::string module;
  int keyWidth = 0;
  std::string keyBits;  // LSB-first '0'/'1' string, length == keyWidth
  std::vector<lock::LockRecord> records;
  int bitsUsed = 0;
  double globalMetric = 0.0;
  double restrictedMetric = 0.0;
};

struct KeyFile {
  std::string algorithm;  // CLI spelling
  std::uint64_t seed = 0;
  std::string budget;  // BudgetSpec::describe() text
  std::string input;   // source netlist path
  std::vector<ModuleKey> modules;
};

[[nodiscard]] support::JsonValue keyFileToJson(const KeyFile& keyFile);
[[nodiscard]] KeyFile keyFileFromJson(const support::JsonValue& document);

/// Entry for `moduleName`; throws support::Error naming the candidates when
/// absent.
[[nodiscard]] const ModuleKey& moduleKeyFor(const KeyFile& keyFile, const std::string& moduleName);

// ---- module selection -----------------------------------------------------

/// Picks the module a single-module command operates on: --module=NAME when
/// given; otherwise the design's only module, or — when `requireKey` — its
/// only keyed module.  Throws support::Error listing the candidates when the
/// choice is ambiguous or impossible.
[[nodiscard]] rtl::Module& selectModule(rtl::Design& design, const support::CliArgs& args,
                                        bool requireKey);

}  // namespace rtlock::cli
