// ExprHolder: uniform access to "a place that owns an expression".
//
// Locking rewrites expressions in place: wrapping a binary operation into a
// key-controlled multiplexer replaces the ExprPtr in whatever slot owned it
// (a parent expression, a continuous assignment, an if-condition, ...).
// ExprHolder gives all those owners one interface, so the op-index, the
// locking engine and the undo stack can treat any expression position as a
// (holder, slot-index) pair.
//
// Slot references stay valid as long as the holder object itself is alive;
// module structures heap-allocate their holders so container growth never
// moves them.
#pragma once

#include <memory>

#include "support/config.hpp"  // C++20 floor: ExprSlot uses defaulted operator==

namespace rtlock::rtl {

class Expr;
using ExprPtrRefOwner = std::unique_ptr<Expr>;

class ExprHolder {
 public:
  virtual ~ExprHolder() = default;

  /// Number of expression slots this holder owns.
  [[nodiscard]] virtual int exprSlotCount() const noexcept = 0;

  /// Mutable access to slot `index` in [0, exprSlotCount()).
  [[nodiscard]] virtual std::unique_ptr<Expr>& exprSlotAt(int index) = 0;

  /// Read-only access to the expression in slot `index`.  The standard
  /// const-overload idiom: forwarding through the non-const virtual is safe
  /// because the result is returned as const.
  [[nodiscard]] const Expr& exprAt(int index) const {
    return *const_cast<ExprHolder*>(this)->exprSlotAt(index);
  }

  /// Downcast to Expr when this holder IS an expression node (a parent
  /// expression, as opposed to a statement or continuous assignment).  A
  /// virtual instead of dynamic_cast: the incremental locality harvester
  /// asks once per applied lock, on the hottest path of the attack.
  [[nodiscard]] virtual const Expr* asExpr() const noexcept { return nullptr; }
};

/// A stable handle to one owned expression position.
struct ExprSlot {
  ExprHolder* holder = nullptr;
  int index = 0;

  [[nodiscard]] std::unique_ptr<Expr>& get() const { return holder->exprSlotAt(index); }
  [[nodiscard]] bool operator==(const ExprSlot&) const noexcept = default;
};

}  // namespace rtlock::rtl
