#include "rtl/expr.hpp"

#include <algorithm>
#include <numeric>

namespace rtlock::rtl {

namespace {

[[noreturn]] void badSlot() { RTLOCK_UNREACHABLE("expression slot index out of range"); }

}  // namespace

// ---- ConstantExpr ----

ConstantExpr::ConstantExpr(std::uint64_t value, int width)
    : Expr(ExprKind::Constant, width), value_(maskToWidth(value, width)) {
  RTLOCK_REQUIRE(width <= 64, "constants wider than 64 bits are outside the supported subset");
}

ExprPtr& ConstantExpr::exprSlotAt(int) { badSlot(); }

ExprPtr ConstantExpr::clone() const { return makeConstant(value_, width()); }

std::uint64_t ConstantExpr::maskToWidth(std::uint64_t value, int width) noexcept {
  if (width >= 64) return value;
  return value & ((std::uint64_t{1} << width) - 1);
}

// ---- SignalRefExpr ----

ExprPtr& SignalRefExpr::exprSlotAt(int) { badSlot(); }

ExprPtr SignalRefExpr::clone() const { return makeSignalRef(signal_, width()); }

// ---- KeyRefExpr ----

ExprPtr& KeyRefExpr::exprSlotAt(int) { badSlot(); }

ExprPtr KeyRefExpr::clone() const { return makeKeyRef(firstBit_, width()); }

// ---- UnaryExpr ----

UnaryExpr::UnaryExpr(UnaryOp op, ExprPtr operand)
    : Expr(ExprKind::Unary, unaryResultWidth(op, operand ? operand->width() : 1)),
      op_(op),
      operand_(std::move(operand)) {
  RTLOCK_REQUIRE(operand_ != nullptr, "unary operand must not be null");
}

ExprPtr& UnaryExpr::exprSlotAt(int index) {
  if (index != 0) badSlot();
  return operand_;
}

ExprPtr UnaryExpr::clone() const { return makeUnary(op_, operand_->clone()); }

// ---- BinaryExpr ----

BinaryExpr::BinaryExpr(OpKind op, ExprPtr lhs, ExprPtr rhs)
    : Expr(ExprKind::Binary,
           resultWidth(op, lhs ? lhs->width() : 1, rhs ? rhs->width() : 1)),
      op_(op),
      lhs_(std::move(lhs)),
      rhs_(std::move(rhs)) {
  RTLOCK_REQUIRE(lhs_ != nullptr && rhs_ != nullptr, "binary operands must not be null");
}

ExprPtr& BinaryExpr::exprSlotAt(int index) {
  if (index == 0) return lhs_;
  if (index == 1) return rhs_;
  badSlot();
}

ExprPtr BinaryExpr::clone() const { return makeBinary(op_, lhs_->clone(), rhs_->clone()); }

// ---- TernaryExpr ----

TernaryExpr::TernaryExpr(ExprPtr cond, ExprPtr thenExpr, ExprPtr elseExpr)
    : Expr(ExprKind::Ternary,
           std::max(thenExpr ? thenExpr->width() : 1, elseExpr ? elseExpr->width() : 1)),
      cond_(std::move(cond)),
      then_(std::move(thenExpr)),
      else_(std::move(elseExpr)) {
  RTLOCK_REQUIRE(cond_ != nullptr && then_ != nullptr && else_ != nullptr,
                 "ternary operands must not be null");
}

bool TernaryExpr::isKeyMux() const noexcept {
  return cond_->kind() == ExprKind::KeyRef && cond_->width() == 1;
}

ExprPtr& TernaryExpr::exprSlotAt(int index) {
  switch (index) {
    case kCondSlot: return cond_;
    case kThenSlot: return then_;
    case kElseSlot: return else_;
    default: badSlot();
  }
}

ExprPtr TernaryExpr::clone() const {
  return makeTernary(cond_->clone(), then_->clone(), else_->clone());
}

// ---- ConcatExpr ----

namespace {
int concatWidth(const std::vector<ExprPtr>& parts) {
  RTLOCK_REQUIRE(!parts.empty(), "concatenation needs at least one part");
  int total = 0;
  for (const auto& part : parts) {
    RTLOCK_REQUIRE(part != nullptr, "concatenation parts must not be null");
    total += part->width();
  }
  return total;
}
}  // namespace

ConcatExpr::ConcatExpr(std::vector<ExprPtr> parts)
    : Expr(ExprKind::Concat, concatWidth(parts)), parts_(std::move(parts)) {}

ExprPtr& ConcatExpr::exprSlotAt(int index) {
  if (index < 0 || index >= partCount()) badSlot();
  return parts_[static_cast<std::size_t>(index)];
}

ExprPtr ConcatExpr::clone() const {
  std::vector<ExprPtr> parts;
  parts.reserve(parts_.size());
  for (const auto& part : parts_) parts.push_back(part->clone());
  return makeConcat(std::move(parts));
}

// ---- SliceExpr ----

SliceExpr::SliceExpr(ExprPtr value, int hi, int lo)
    : Expr(ExprKind::Slice, hi - lo + 1), value_(std::move(value)), hi_(hi), lo_(lo) {
  RTLOCK_REQUIRE(value_ != nullptr, "slice base must not be null");
  RTLOCK_REQUIRE(lo >= 0 && hi >= lo, "slice bounds must satisfy 0 <= lo <= hi");
  RTLOCK_REQUIRE(hi < value_->width(), "slice upper bound exceeds base width");
}

ExprPtr& SliceExpr::exprSlotAt(int index) {
  if (index != 0) badSlot();
  return value_;
}

ExprPtr SliceExpr::clone() const { return makeSlice(value_->clone(), hi_, lo_); }

// ---- Factories ----

ExprPtr makeConstant(std::uint64_t value, int width) {
  return std::make_unique<ConstantExpr>(value, width);
}

ExprPtr makeSignalRef(SignalId signal, int width) {
  return std::make_unique<SignalRefExpr>(signal, width);
}

ExprPtr makeKeyRef(int firstBit, int width) {
  return std::make_unique<KeyRefExpr>(firstBit, width);
}

ExprPtr makeUnary(UnaryOp op, ExprPtr operand) {
  return std::make_unique<UnaryExpr>(op, std::move(operand));
}

ExprPtr makeBinary(OpKind op, ExprPtr lhs, ExprPtr rhs) {
  return std::make_unique<BinaryExpr>(op, std::move(lhs), std::move(rhs));
}

ExprPtr makeTernary(ExprPtr cond, ExprPtr thenExpr, ExprPtr elseExpr) {
  return std::make_unique<TernaryExpr>(std::move(cond), std::move(thenExpr), std::move(elseExpr));
}

ExprPtr makeConcat(std::vector<ExprPtr> parts) {
  return std::make_unique<ConcatExpr>(std::move(parts));
}

ExprPtr makeSlice(ExprPtr value, int hi, int lo) {
  return std::make_unique<SliceExpr>(std::move(value), hi, lo);
}

// ---- Utilities ----

bool structurallyEqual(const Expr& a, const Expr& b) noexcept {
  if (a.kind() != b.kind() || a.width() != b.width()) return false;
  switch (a.kind()) {
    case ExprKind::Constant:
      return static_cast<const ConstantExpr&>(a).value() ==
             static_cast<const ConstantExpr&>(b).value();
    case ExprKind::SignalRef:
      return static_cast<const SignalRefExpr&>(a).signal() ==
             static_cast<const SignalRefExpr&>(b).signal();
    case ExprKind::KeyRef:
      return static_cast<const KeyRefExpr&>(a).firstBit() ==
             static_cast<const KeyRefExpr&>(b).firstBit();
    case ExprKind::Unary:
      if (static_cast<const UnaryExpr&>(a).op() != static_cast<const UnaryExpr&>(b).op()) {
        return false;
      }
      break;
    case ExprKind::Binary:
      if (static_cast<const BinaryExpr&>(a).op() != static_cast<const BinaryExpr&>(b).op()) {
        return false;
      }
      break;
    case ExprKind::Ternary:
    case ExprKind::Concat: break;
    case ExprKind::Slice: {
      const auto& sa = static_cast<const SliceExpr&>(a);
      const auto& sb = static_cast<const SliceExpr&>(b);
      if (sa.hi() != sb.hi() || sa.lo() != sb.lo()) return false;
      break;
    }
  }
  if (a.exprSlotCount() != b.exprSlotCount()) return false;
  for (int i = 0; i < a.exprSlotCount(); ++i) {
    if (!structurallyEqual(a.exprAt(i), b.exprAt(i))) return false;
  }
  return true;
}

int exprSize(const Expr& expr) noexcept {
  int total = 1;
  for (int i = 0; i < expr.exprSlotCount(); ++i) {
    total += exprSize(expr.exprAt(i));
  }
  return total;
}

int exprDepth(const Expr& expr) noexcept {
  int deepest = 0;
  for (int i = 0; i < expr.exprSlotCount(); ++i) {
    deepest = std::max(deepest, exprDepth(expr.exprAt(i)));
  }
  return deepest + 1;
}

}  // namespace rtlock::rtl
