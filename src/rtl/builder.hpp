// Fluent construction of modules for tests, examples and the benchmark
// generators.
//
//   ModuleBuilder b{"fir4"};
//   auto clk = b.input("clk", 1);
//   auto x   = b.input("x", 16);
//   auto acc = b.wire("acc", 16);
//   b.assign(acc, b.add(b.ref(x), b.lit(3, 16)));
//   auto y = b.output("y", 16);
//   b.assign(y, b.ref(acc));
//   Module m = b.take();
#pragma once

#include <string>
#include <vector>

#include "rtl/module.hpp"

namespace rtlock::rtl {

class ModuleBuilder {
 public:
  explicit ModuleBuilder(std::string name) : module_(std::move(name)) {}

  // ---- Declarations ----
  SignalId input(std::string name, int width) { return module_.addInput(std::move(name), width); }
  SignalId output(std::string name, int width) {
    return module_.addOutput(std::move(name), width);
  }
  SignalId outputReg(std::string name, int width) {
    return module_.addOutput(std::move(name), width, NetKind::Reg);
  }
  SignalId wire(std::string name, int width) { return module_.addWire(std::move(name), width); }
  SignalId reg(std::string name, int width) { return module_.addReg(std::move(name), width); }

  // ---- Expressions ----
  [[nodiscard]] ExprPtr ref(SignalId id) const {
    return makeSignalRef(id, module_.signal(id).width);
  }
  [[nodiscard]] ExprPtr lit(std::uint64_t value, int width) const {
    return makeConstant(value, width);
  }
  [[nodiscard]] ExprPtr bin(OpKind op, ExprPtr lhs, ExprPtr rhs) const {
    return makeBinary(op, std::move(lhs), std::move(rhs));
  }
  [[nodiscard]] ExprPtr add(ExprPtr l, ExprPtr r) const {
    return bin(OpKind::Add, std::move(l), std::move(r));
  }
  [[nodiscard]] ExprPtr sub(ExprPtr l, ExprPtr r) const {
    return bin(OpKind::Sub, std::move(l), std::move(r));
  }
  [[nodiscard]] ExprPtr mul(ExprPtr l, ExprPtr r) const {
    return bin(OpKind::Mul, std::move(l), std::move(r));
  }
  [[nodiscard]] ExprPtr div(ExprPtr l, ExprPtr r) const {
    return bin(OpKind::Div, std::move(l), std::move(r));
  }
  [[nodiscard]] ExprPtr xorE(ExprPtr l, ExprPtr r) const {
    return bin(OpKind::Xor, std::move(l), std::move(r));
  }
  [[nodiscard]] ExprPtr andE(ExprPtr l, ExprPtr r) const {
    return bin(OpKind::And, std::move(l), std::move(r));
  }
  [[nodiscard]] ExprPtr orE(ExprPtr l, ExprPtr r) const {
    return bin(OpKind::Or, std::move(l), std::move(r));
  }
  [[nodiscard]] ExprPtr shl(ExprPtr l, ExprPtr r) const {
    return bin(OpKind::Shl, std::move(l), std::move(r));
  }
  [[nodiscard]] ExprPtr shr(ExprPtr l, ExprPtr r) const {
    return bin(OpKind::Shr, std::move(l), std::move(r));
  }
  [[nodiscard]] ExprPtr notE(ExprPtr operand) const {
    return makeUnary(UnaryOp::BitNot, std::move(operand));
  }
  [[nodiscard]] ExprPtr mux(ExprPtr cond, ExprPtr t, ExprPtr f) const {
    return makeTernary(std::move(cond), std::move(t), std::move(f));
  }
  [[nodiscard]] ExprPtr slice(ExprPtr value, int hi, int lo) const {
    return makeSlice(std::move(value), hi, lo);
  }
  [[nodiscard]] ExprPtr concat(std::vector<ExprPtr> parts) const {
    return makeConcat(std::move(parts));
  }

  // ---- Structure ----
  ContAssign& assign(SignalId target, ExprPtr value) {
    return module_.addContAssign(LValue{target, std::nullopt}, std::move(value));
  }
  ContAssign& assignSlice(SignalId target, int hi, int lo, ExprPtr value) {
    return module_.addContAssign(LValue{target, std::make_pair(hi, lo)}, std::move(value));
  }

  /// Appends `q <= value` to the sequential process clocked by `clock`
  /// (creating the process on first use).
  void regAssign(SignalId clock, SignalId target, ExprPtr value);

  /// Adds a combinational always block.
  Process& combProcess(StmtPtr body) {
    return module_.addProcess(ProcessKind::Combinational, 0, std::move(body));
  }

  /// Adds a sequential always block verbatim.
  Process& seqProcess(SignalId clock, StmtPtr body) {
    return module_.addProcess(ProcessKind::Sequential, clock, std::move(body));
  }

  [[nodiscard]] Module& module() noexcept { return module_; }

  /// Finalize and move the module out of the builder.
  [[nodiscard]] Module take() { return std::move(module_); }

 private:
  Module module_;
  /// Clock -> open sequential block (owned by module_), for regAssign.
  std::vector<std::pair<SignalId, BlockStmt*>> openSeqBlocks_;
};

}  // namespace rtlock::rtl
