// Generic traversals over modules, statements and expressions.
//
// Header-only templates: traversal sits in the inner loop of locking and
// locality extraction, so visitors are passed as template parameters instead
// of std::function.
#pragma once

#include <utility>

#include "rtl/module.hpp"

namespace rtlock::rtl {

/// Pre-order walk over every expression slot in the subtree rooted at `slot`
/// (including `slot` itself).  The visitor receives an ExprSlot whose holder
/// stays valid for the lifetime of the owning module.
template <typename Visitor>
void forEachExprSlotIn(const ExprSlot& slot, Visitor&& visit) {
  visit(slot);
  Expr& node = *slot.get();
  for (int i = 0; i < node.exprSlotCount(); ++i) {
    forEachExprSlotIn(ExprSlot{&node, i}, visit);
  }
}

/// Walks every expression slot inside a statement tree.
template <typename Visitor>
void forEachExprSlotInStmt(Stmt& stmt, Visitor&& visit) {
  for (int i = 0; i < stmt.exprSlotCount(); ++i) {
    forEachExprSlotIn(ExprSlot{&stmt, i}, visit);
  }
  for (int i = 0; i < stmt.stmtSlotCount(); ++i) {
    forEachExprSlotInStmt(*stmt.stmtSlotAt(i), visit);
  }
}

/// Walks every expression slot in the module: continuous assignments first
/// (in order), then process bodies.
template <typename Visitor>
void forEachExprSlot(Module& module, Visitor&& visit) {
  for (const auto& assign : module.contAssigns()) {
    forEachExprSlotIn(ExprSlot{assign.get(), ContAssign::kValueSlot}, visit);
  }
  for (const auto& process : module.processes()) {
    forEachExprSlotInStmt(*process->body, visit);
  }
}

/// Const pre-order walk over expressions (no slot access).
template <typename Visitor>
void forEachExpr(const Expr& expr, Visitor&& visit) {
  visit(expr);
  for (int i = 0; i < expr.exprSlotCount(); ++i) {
    forEachExpr(expr.exprAt(i), visit);
  }
}

template <typename Visitor>
void forEachExprInStmt(const Stmt& stmt, Visitor&& visit) {
  for (int i = 0; i < stmt.exprSlotCount(); ++i) {
    forEachExpr(stmt.exprAt(i), visit);
  }
  for (int i = 0; i < stmt.stmtSlotCount(); ++i) {
    forEachExprInStmt(stmt.stmtAt(i), visit);
  }
}

template <typename Visitor>
void forEachExpr(const Module& module, Visitor&& visit) {
  for (const auto& assign : module.contAssigns()) {
    forEachExpr(assign->value(), visit);
  }
  for (const auto& process : module.processes()) {
    forEachExprInStmt(*process->body, visit);
  }
}

/// Pre-order walk over statements.
template <typename Visitor>
void forEachStmt(const Stmt& stmt, Visitor&& visit) {
  visit(stmt);
  for (int i = 0; i < stmt.stmtSlotCount(); ++i) {
    forEachStmt(stmt.stmtAt(i), visit);
  }
}

template <typename Visitor>
void forEachStmt(const Module& module, Visitor&& visit) {
  for (const auto& process : module.processes()) {
    forEachStmt(*process->body, visit);
  }
}

/// How a driver writes its target — the traversal-level view the static
/// analyses (analysis/verifier, analysis/key_influence) consume.
enum class DriverKind : std::uint8_t { ContAssign, Blocking, NonBlocking };

/// Walks every assignment inside one process body, in statement order.
template <typename Visitor>
void forEachDriverInStmt(const Stmt& stmt, const Process& process, Visitor&& visit) {
  forEachStmt(stmt, [&](const Stmt& node) {
    if (node.kind() != StmtKind::Assign) return;
    const auto& assign = static_cast<const AssignStmt&>(node);
    visit(assign.target(), assign.value(),
          assign.nonBlocking() ? DriverKind::NonBlocking : DriverKind::Blocking, &process);
  });
}

/// Walks every assignment in the module — continuous assignments first, then
/// process-body assignments in statement order.  The visitor receives
/// (const LValue&, const Expr& value, DriverKind, const Process*); the
/// process pointer is nullptr for continuous assignments.  Const counterpart
/// of the slot walkers above, for read-only analysis passes.
template <typename Visitor>
void forEachDriver(const Module& module, Visitor&& visit) {
  for (const auto& assign : module.contAssigns()) {
    visit(assign->target(), assign->value(), DriverKind::ContAssign,
          static_cast<const Process*>(nullptr));
  }
  for (const auto& process : module.processes()) {
    forEachDriverInStmt(*process->body, *process, visit);
  }
}

}  // namespace rtlock::rtl
