// Generic traversals over modules, statements and expressions.
//
// Header-only templates: traversal sits in the inner loop of locking and
// locality extraction, so visitors are passed as template parameters instead
// of std::function.
#pragma once

#include <utility>

#include "rtl/module.hpp"

namespace rtlock::rtl {

/// Pre-order walk over every expression slot in the subtree rooted at `slot`
/// (including `slot` itself).  The visitor receives an ExprSlot whose holder
/// stays valid for the lifetime of the owning module.
template <typename Visitor>
void forEachExprSlotIn(const ExprSlot& slot, Visitor&& visit) {
  visit(slot);
  Expr& node = *slot.get();
  for (int i = 0; i < node.exprSlotCount(); ++i) {
    forEachExprSlotIn(ExprSlot{&node, i}, visit);
  }
}

/// Walks every expression slot inside a statement tree.
template <typename Visitor>
void forEachExprSlotInStmt(Stmt& stmt, Visitor&& visit) {
  for (int i = 0; i < stmt.exprSlotCount(); ++i) {
    forEachExprSlotIn(ExprSlot{&stmt, i}, visit);
  }
  for (int i = 0; i < stmt.stmtSlotCount(); ++i) {
    forEachExprSlotInStmt(*stmt.stmtSlotAt(i), visit);
  }
}

/// Walks every expression slot in the module: continuous assignments first
/// (in order), then process bodies.
template <typename Visitor>
void forEachExprSlot(Module& module, Visitor&& visit) {
  for (const auto& assign : module.contAssigns()) {
    forEachExprSlotIn(ExprSlot{assign.get(), ContAssign::kValueSlot}, visit);
  }
  for (const auto& process : module.processes()) {
    forEachExprSlotInStmt(*process->body, visit);
  }
}

/// Const pre-order walk over expressions (no slot access).
template <typename Visitor>
void forEachExpr(const Expr& expr, Visitor&& visit) {
  visit(expr);
  for (int i = 0; i < expr.exprSlotCount(); ++i) {
    forEachExpr(expr.exprAt(i), visit);
  }
}

template <typename Visitor>
void forEachExprInStmt(const Stmt& stmt, Visitor&& visit) {
  for (int i = 0; i < stmt.exprSlotCount(); ++i) {
    forEachExpr(stmt.exprAt(i), visit);
  }
  for (int i = 0; i < stmt.stmtSlotCount(); ++i) {
    forEachExprInStmt(stmt.stmtAt(i), visit);
  }
}

template <typename Visitor>
void forEachExpr(const Module& module, Visitor&& visit) {
  for (const auto& assign : module.contAssigns()) {
    forEachExpr(assign->value(), visit);
  }
  for (const auto& process : module.processes()) {
    forEachExprInStmt(*process->body, visit);
  }
}

/// Pre-order walk over statements.
template <typename Visitor>
void forEachStmt(const Stmt& stmt, Visitor&& visit) {
  visit(stmt);
  for (int i = 0; i < stmt.stmtSlotCount(); ++i) {
    forEachStmt(stmt.stmtAt(i), visit);
  }
}

template <typename Visitor>
void forEachStmt(const Module& module, Visitor&& visit) {
  for (const auto& process : module.processes()) {
    forEachStmt(*process->body, visit);
  }
}

}  // namespace rtlock::rtl
