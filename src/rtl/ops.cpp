#include "rtl/ops.hpp"

#include <algorithm>
#include <array>

#include "support/diagnostics.hpp"

namespace rtlock::rtl {

namespace {

struct OpInfo {
  OpKind kind;
  std::string_view token;
  std::string_view name;
  int precedence;
};

// Precedence follows the Verilog-2001 operator table (unary binds tightest;
// handled separately by the writer).
constexpr std::array<OpInfo, kOpKindCount> kOpTable{{
    {OpKind::Add, "+", "add", 9},
    {OpKind::Sub, "-", "sub", 9},
    {OpKind::Mul, "*", "mul", 10},
    {OpKind::Div, "/", "div", 10},
    {OpKind::Mod, "%", "mod", 10},
    {OpKind::Pow, "**", "pow", 11},
    {OpKind::Shl, "<<", "shl", 8},
    {OpKind::Shr, ">>", "shr", 8},
    {OpKind::AShr, ">>>", "ashr", 8},
    {OpKind::And, "&", "and", 5},
    {OpKind::Or, "|", "or", 3},
    {OpKind::Xor, "^", "xor", 4},
    {OpKind::Xnor, "~^", "xnor", 4},
    {OpKind::Lt, "<", "lt", 7},
    {OpKind::Gt, ">", "gt", 7},
    {OpKind::Le, "<=", "le", 7},
    {OpKind::Ge, ">=", "ge", 7},
    {OpKind::Eq, "==", "eq", 6},
    {OpKind::Ne, "!=", "ne", 6},
    {OpKind::LAnd, "&&", "land", 2},
    {OpKind::LOr, "||", "lor", 1},
}};

const OpInfo& info(OpKind op) noexcept { return kOpTable[static_cast<std::size_t>(op)]; }

}  // namespace

std::string_view opToken(OpKind op) noexcept { return info(op).token; }

std::string_view opName(OpKind op) noexcept { return info(op).name; }

std::optional<OpKind> opFromName(std::string_view name) noexcept {
  const auto it = std::find_if(kOpTable.begin(), kOpTable.end(),
                               [name](const OpInfo& entry) { return entry.name == name; });
  if (it == kOpTable.end()) return std::nullopt;
  return it->kind;
}

std::string_view unaryToken(UnaryOp op) noexcept {
  switch (op) {
    case UnaryOp::Neg: return "-";
    case UnaryOp::BitNot: return "~";
    case UnaryOp::LogNot: return "!";
    case UnaryOp::RedAnd: return "&";
    case UnaryOp::RedOr: return "|";
    case UnaryOp::RedXor: return "^";
  }
  return "?";
}

bool isComparison(OpKind op) noexcept {
  switch (op) {
    case OpKind::Lt:
    case OpKind::Gt:
    case OpKind::Le:
    case OpKind::Ge:
    case OpKind::Eq:
    case OpKind::Ne: return true;
    default: return false;
  }
}

bool isLogical(OpKind op) noexcept { return op == OpKind::LAnd || op == OpKind::LOr; }

bool isShift(OpKind op) noexcept {
  return op == OpKind::Shl || op == OpKind::Shr || op == OpKind::AShr;
}

int resultWidth(OpKind op, int lw, int rw) noexcept {
  if (isComparison(op) || isLogical(op)) return 1;
  if (isShift(op) || op == OpKind::Pow) return lw;
  return std::max(lw, rw);
}

int unaryResultWidth(UnaryOp op, int w) noexcept {
  switch (op) {
    case UnaryOp::Neg:
    case UnaryOp::BitNot: return w;
    case UnaryOp::LogNot:
    case UnaryOp::RedAnd:
    case UnaryOp::RedOr:
    case UnaryOp::RedXor: return 1;
  }
  return w;
}

int opPrecedence(OpKind op) noexcept { return info(op).precedence; }

}  // namespace rtlock::rtl
