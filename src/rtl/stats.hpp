// Operation counting and structural statistics.
//
// The operation distribution drives everything in the paper: the ODT, the
// security metrics and Definition 1 all reduce to per-operator counts over
// the locked design, including dummy operations introduced by locking.
#pragma once

#include <array>
#include <iosfwd>

#include "rtl/module.hpp"

namespace rtlock::rtl {

/// Per-operator occurrence counts.
class OpCounts {
 public:
  [[nodiscard]] int of(OpKind op) const noexcept { return counts_[static_cast<std::size_t>(op)]; }
  void add(OpKind op, int delta = 1) noexcept { counts_[static_cast<std::size_t>(op)] += delta; }

  /// Total number of binary operations.
  [[nodiscard]] int total() const noexcept;

  [[nodiscard]] bool operator==(const OpCounts&) const noexcept = default;

 private:
  std::array<int, kOpKindCount> counts_{};
};

/// Counts every binary operation in the module (dummies included — attackers
/// cannot distinguish them).
[[nodiscard]] OpCounts countOps(const Module& module);

/// Coarse structural statistics for reports.
struct ModuleStats {
  int signals = 0;
  int ports = 0;
  int contAssigns = 0;
  int processes = 0;
  int exprNodes = 0;
  int binaryOps = 0;
  int keyMuxes = 0;
  int maxExprDepth = 0;
  int keyWidth = 0;
};

[[nodiscard]] ModuleStats computeStats(const Module& module);

std::ostream& operator<<(std::ostream& out, const ModuleStats& stats);

}  // namespace rtlock::rtl
