// Expression tree of the RTL IR.
//
// Expressions are strict trees: every node uniquely owns its children via
// ExprPtr.  Sharing happens through named signals, as in Verilog source.
// Locking transformations splice nodes in place through ExprHolder slots (see
// holder.hpp), which keeps undo trivial and pointer-stable.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "rtl/holder.hpp"
#include "rtl/ops.hpp"
#include "support/diagnostics.hpp"

namespace rtlock::rtl {

class Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Index into a module's signal table.
using SignalId = std::uint32_t;

enum class ExprKind : std::uint8_t {
  Constant,   // sized literal
  SignalRef,  // wire/reg/port read
  KeyRef,     // read of locking-key bits K[first +: width]
  Unary,      // -a ~a !a &a |a ^a
  Binary,     // a <op> b
  Ternary,    // c ? t : f
  Concat,     // {a, b, ...}
  Slice,      // a[hi:lo] (constant bounds)
};

/// Abstract expression node.
class Expr : public ExprHolder {
 public:
  Expr(const Expr&) = delete;
  Expr& operator=(const Expr&) = delete;
  ~Expr() override = default;

  [[nodiscard]] ExprKind kind() const noexcept { return kind_; }

  [[nodiscard]] const Expr* asExpr() const noexcept override { return this; }

  /// Bit width of the value this expression produces (>= 1).
  [[nodiscard]] int width() const noexcept { return width_; }

  /// Deep copy.
  [[nodiscard]] virtual ExprPtr clone() const = 0;

  /// Children double as expression slots (ExprHolder interface).
  [[nodiscard]] const Expr& child(int index) const { return exprAt(index); }

 protected:
  Expr(ExprKind kind, int width) : kind_(kind), width_(width) {
    RTLOCK_REQUIRE(width >= 1, "expressions must be at least one bit wide");
  }

 private:
  ExprKind kind_;
  int width_;
};

/// Sized literal.  Values wider than 64 bits are outside the supported
/// Verilog subset (documented in DESIGN.md); widths up to 64 cover every
/// generator and benchmark in this repository.
class ConstantExpr final : public Expr {
 public:
  ConstantExpr(std::uint64_t value, int width);

  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

  [[nodiscard]] int exprSlotCount() const noexcept override { return 0; }
  [[nodiscard]] ExprPtr& exprSlotAt(int) override;
  [[nodiscard]] ExprPtr clone() const override;

  /// Mask keeping the low `width` bits of a 64-bit word.
  [[nodiscard]] static std::uint64_t maskToWidth(std::uint64_t value, int width) noexcept;

 private:
  std::uint64_t value_;
};

/// Read of a named signal.
class SignalRefExpr final : public Expr {
 public:
  SignalRefExpr(SignalId signal, int width) : Expr(ExprKind::SignalRef, width), signal_(signal) {}

  [[nodiscard]] SignalId signal() const noexcept { return signal_; }

  [[nodiscard]] int exprSlotCount() const noexcept override { return 0; }
  [[nodiscard]] ExprPtr& exprSlotAt(int) override;
  [[nodiscard]] ExprPtr clone() const override;

 private:
  SignalId signal_;
};

/// Read of locking-key bits: K[firstBit +: width].  Operation and branch
/// locking use width 1; constant obfuscation extracts multi-bit chunks.
class KeyRefExpr final : public Expr {
 public:
  KeyRefExpr(int firstBit, int width) : Expr(ExprKind::KeyRef, width), firstBit_(firstBit) {
    RTLOCK_REQUIRE(firstBit >= 0, "key bit indices are non-negative");
  }

  [[nodiscard]] int firstBit() const noexcept { return firstBit_; }

  /// Re-targets the reference (locking-engine shell recycling).
  void setFirstBit(int firstBit) noexcept { firstBit_ = firstBit; }

  [[nodiscard]] int exprSlotCount() const noexcept override { return 0; }
  [[nodiscard]] ExprPtr& exprSlotAt(int) override;
  [[nodiscard]] ExprPtr clone() const override;

 private:
  int firstBit_;
};

class UnaryExpr final : public Expr {
 public:
  UnaryExpr(UnaryOp op, ExprPtr operand);

  [[nodiscard]] UnaryOp op() const noexcept { return op_; }
  [[nodiscard]] const Expr& operand() const noexcept { return *operand_; }

  [[nodiscard]] int exprSlotCount() const noexcept override { return 1; }
  [[nodiscard]] ExprPtr& exprSlotAt(int index) override;
  [[nodiscard]] ExprPtr clone() const override;

 private:
  UnaryOp op_;
  ExprPtr operand_;
};

/// Binary operation — the unit of ASSURE operation obfuscation.
class BinaryExpr final : public Expr {
 public:
  BinaryExpr(OpKind op, ExprPtr lhs, ExprPtr rhs);

  [[nodiscard]] OpKind op() const noexcept { return op_; }
  void setOp(OpKind op) noexcept { op_ = op; }
  [[nodiscard]] const Expr& lhs() const noexcept { return *lhs_; }
  [[nodiscard]] const Expr& rhs() const noexcept { return *rhs_; }

  [[nodiscard]] int exprSlotCount() const noexcept override { return 2; }
  [[nodiscard]] ExprPtr& exprSlotAt(int index) override;
  [[nodiscard]] ExprPtr clone() const override;

 private:
  OpKind op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

/// cond ? thenExpr : elseExpr.  Key-conditioned ternaries are the locking
/// multiplexers of Fig. 3 in the paper.
class TernaryExpr final : public Expr {
 public:
  TernaryExpr(ExprPtr cond, ExprPtr thenExpr, ExprPtr elseExpr);

  [[nodiscard]] const Expr& cond() const noexcept { return *cond_; }
  [[nodiscard]] const Expr& thenExpr() const noexcept { return *then_; }
  [[nodiscard]] const Expr& elseExpr() const noexcept { return *else_; }

  /// True when the condition is a single-bit key reference (a locking mux).
  [[nodiscard]] bool isKeyMux() const noexcept;

  /// Slot indices for readers that need to splice branches.
  static constexpr int kCondSlot = 0;
  static constexpr int kThenSlot = 1;
  static constexpr int kElseSlot = 2;

  [[nodiscard]] int exprSlotCount() const noexcept override { return 3; }
  [[nodiscard]] ExprPtr& exprSlotAt(int index) override;
  [[nodiscard]] ExprPtr clone() const override;

 private:
  ExprPtr cond_;
  ExprPtr then_;
  ExprPtr else_;
};

/// {a, b, ...} — width is the sum of the parts, leftmost part lands in the
/// most significant bits.
class ConcatExpr final : public Expr {
 public:
  explicit ConcatExpr(std::vector<ExprPtr> parts);

  [[nodiscard]] int partCount() const noexcept { return static_cast<int>(parts_.size()); }

  [[nodiscard]] int exprSlotCount() const noexcept override { return partCount(); }
  [[nodiscard]] ExprPtr& exprSlotAt(int index) override;
  [[nodiscard]] ExprPtr clone() const override;

 private:
  std::vector<ExprPtr> parts_;
};

/// value[hi:lo] with constant bounds; width = hi - lo + 1.
class SliceExpr final : public Expr {
 public:
  SliceExpr(ExprPtr value, int hi, int lo);

  [[nodiscard]] int hi() const noexcept { return hi_; }
  [[nodiscard]] int lo() const noexcept { return lo_; }
  [[nodiscard]] const Expr& value() const noexcept { return *value_; }

  [[nodiscard]] int exprSlotCount() const noexcept override { return 1; }
  [[nodiscard]] ExprPtr& exprSlotAt(int index) override;
  [[nodiscard]] ExprPtr clone() const override;

 private:
  ExprPtr value_;
  int hi_;
  int lo_;
};

// ---- Factory helpers (compute result widths per ops.hpp rules) ----

[[nodiscard]] ExprPtr makeConstant(std::uint64_t value, int width);
[[nodiscard]] ExprPtr makeSignalRef(SignalId signal, int width);
[[nodiscard]] ExprPtr makeKeyRef(int firstBit, int width = 1);
[[nodiscard]] ExprPtr makeUnary(UnaryOp op, ExprPtr operand);
[[nodiscard]] ExprPtr makeBinary(OpKind op, ExprPtr lhs, ExprPtr rhs);
[[nodiscard]] ExprPtr makeTernary(ExprPtr cond, ExprPtr thenExpr, ExprPtr elseExpr);
[[nodiscard]] ExprPtr makeConcat(std::vector<ExprPtr> parts);
[[nodiscard]] ExprPtr makeSlice(ExprPtr value, int hi, int lo);

/// Structural equality (kind, operator, widths, constants, signal/key ids).
[[nodiscard]] bool structurallyEqual(const Expr& a, const Expr& b) noexcept;

/// Number of nodes in the subtree rooted at `expr`.
[[nodiscard]] int exprSize(const Expr& expr) noexcept;

/// Depth of the subtree (a leaf has depth 1).
[[nodiscard]] int exprDepth(const Expr& expr) noexcept;

}  // namespace rtlock::rtl
