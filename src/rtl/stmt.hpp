// Behavioural statements (always-block bodies) of the RTL IR.
//
// The supported statement subset matches what the ASSURE flow and the
// benchmark generators need: begin/end blocks, if/else, case, and
// blocking/non-blocking assignments to whole signals or constant slices.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "rtl/expr.hpp"

namespace rtlock::rtl {

class Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

enum class StmtKind : std::uint8_t { Block, If, Case, Assign };

/// Assignment target: a whole signal or signal[hi:lo] with constant bounds.
struct LValue {
  SignalId signal = 0;
  /// Slice bounds; nullopt assigns the whole signal.
  std::optional<std::pair<int, int>> range;  // {hi, lo}

  [[nodiscard]] bool wholeSignal() const noexcept { return !range.has_value(); }
  [[nodiscard]] bool operator==(const LValue&) const noexcept = default;
};

class Stmt : public ExprHolder {
 public:
  Stmt(const Stmt&) = delete;
  Stmt& operator=(const Stmt&) = delete;
  ~Stmt() override = default;

  [[nodiscard]] StmtKind kind() const noexcept { return kind_; }
  [[nodiscard]] virtual StmtPtr clone() const = 0;

  /// Child statements (blocks, branches); expressions go through ExprHolder.
  [[nodiscard]] virtual int stmtSlotCount() const noexcept = 0;
  [[nodiscard]] virtual StmtPtr& stmtSlotAt(int index) = 0;

  /// Read-only access to child statement `index` (const-overload idiom,
  /// mirroring ExprHolder::exprAt).
  [[nodiscard]] const Stmt& stmtAt(int index) const {
    return *const_cast<Stmt*>(this)->stmtSlotAt(index);
  }

 protected:
  explicit Stmt(StmtKind kind) : kind_(kind) {}

 private:
  StmtKind kind_;
};

/// begin ... end
class BlockStmt final : public Stmt {
 public:
  explicit BlockStmt(std::vector<StmtPtr> body = {});

  void append(StmtPtr stmt);
  [[nodiscard]] int size() const noexcept { return static_cast<int>(body_.size()); }

  [[nodiscard]] int exprSlotCount() const noexcept override { return 0; }
  [[nodiscard]] ExprPtr& exprSlotAt(int index) override;
  [[nodiscard]] int stmtSlotCount() const noexcept override { return size(); }
  [[nodiscard]] StmtPtr& stmtSlotAt(int index) override;
  [[nodiscard]] StmtPtr clone() const override;

 private:
  std::vector<StmtPtr> body_;
};

/// if (cond) then [else other] — the locus of ASSURE branch obfuscation.
class IfStmt final : public Stmt {
 public:
  IfStmt(ExprPtr cond, StmtPtr thenBranch, StmtPtr elseBranch = nullptr);

  [[nodiscard]] const Expr& cond() const noexcept { return *cond_; }
  [[nodiscard]] bool hasElse() const noexcept { return elseBranch_ != nullptr; }

  static constexpr int kCondSlot = 0;

  [[nodiscard]] int exprSlotCount() const noexcept override { return 1; }
  [[nodiscard]] ExprPtr& exprSlotAt(int index) override;
  [[nodiscard]] int stmtSlotCount() const noexcept override { return hasElse() ? 2 : 1; }
  [[nodiscard]] StmtPtr& stmtSlotAt(int index) override;
  [[nodiscard]] StmtPtr clone() const override;

 private:
  ExprPtr cond_;
  StmtPtr thenBranch_;
  StmtPtr elseBranch_;
};

/// One arm of a case statement; an arm may carry several label values.
struct CaseItem {
  std::vector<std::uint64_t> labels;  // matched against the subject value
  StmtPtr body;
};

/// case (subject) ... endcase with an optional default arm.
class CaseStmt final : public Stmt {
 public:
  CaseStmt(ExprPtr subject, std::vector<CaseItem> items, StmtPtr defaultBody = nullptr);

  [[nodiscard]] const Expr& subject() const noexcept { return *subject_; }
  [[nodiscard]] const std::vector<CaseItem>& items() const noexcept { return items_; }
  [[nodiscard]] bool hasDefault() const noexcept { return defaultBody_ != nullptr; }

  [[nodiscard]] int exprSlotCount() const noexcept override { return 1; }
  [[nodiscard]] ExprPtr& exprSlotAt(int index) override;
  [[nodiscard]] int stmtSlotCount() const noexcept override {
    return static_cast<int>(items_.size()) + (hasDefault() ? 1 : 0);
  }
  [[nodiscard]] StmtPtr& stmtSlotAt(int index) override;
  [[nodiscard]] StmtPtr clone() const override;

 private:
  ExprPtr subject_;
  std::vector<CaseItem> items_;
  StmtPtr defaultBody_;
};

/// target = value (blocking) or target <= value (non-blocking).
class AssignStmt final : public Stmt {
 public:
  AssignStmt(LValue target, ExprPtr value, bool nonBlocking);

  [[nodiscard]] const LValue& target() const noexcept { return target_; }
  [[nodiscard]] const Expr& value() const noexcept { return *value_; }
  [[nodiscard]] bool nonBlocking() const noexcept { return nonBlocking_; }

  static constexpr int kValueSlot = 0;

  [[nodiscard]] int exprSlotCount() const noexcept override { return 1; }
  [[nodiscard]] ExprPtr& exprSlotAt(int index) override;
  [[nodiscard]] int stmtSlotCount() const noexcept override { return 0; }
  [[nodiscard]] StmtPtr& stmtSlotAt(int index) override;
  [[nodiscard]] StmtPtr clone() const override;

 private:
  LValue target_;
  ExprPtr value_;
  bool nonBlocking_;
};

[[nodiscard]] StmtPtr makeBlock(std::vector<StmtPtr> body = {});
[[nodiscard]] StmtPtr makeIf(ExprPtr cond, StmtPtr thenBranch, StmtPtr elseBranch = nullptr);
[[nodiscard]] StmtPtr makeCase(ExprPtr subject, std::vector<CaseItem> items,
                               StmtPtr defaultBody = nullptr);
[[nodiscard]] StmtPtr makeAssign(LValue target, ExprPtr value, bool nonBlocking);

/// Structural equality over statement trees (recurses into expressions).
[[nodiscard]] bool structurallyEqual(const Stmt& a, const Stmt& b) noexcept;

}  // namespace rtlock::rtl
