#include "rtl/stmt.hpp"

namespace rtlock::rtl {

namespace {
[[noreturn]] void badSlot() { RTLOCK_UNREACHABLE("statement slot index out of range"); }
}  // namespace

// ---- BlockStmt ----

BlockStmt::BlockStmt(std::vector<StmtPtr> body) : Stmt(StmtKind::Block), body_(std::move(body)) {
  for (const auto& stmt : body_) RTLOCK_REQUIRE(stmt != nullptr, "block entries must not be null");
}

void BlockStmt::append(StmtPtr stmt) {
  RTLOCK_REQUIRE(stmt != nullptr, "cannot append a null statement");
  body_.push_back(std::move(stmt));
}

ExprPtr& BlockStmt::exprSlotAt(int) { badSlot(); }

StmtPtr& BlockStmt::stmtSlotAt(int index) {
  if (index < 0 || index >= size()) badSlot();
  return body_[static_cast<std::size_t>(index)];
}

StmtPtr BlockStmt::clone() const {
  std::vector<StmtPtr> body;
  body.reserve(body_.size());
  for (const auto& stmt : body_) body.push_back(stmt->clone());
  return makeBlock(std::move(body));
}

// ---- IfStmt ----

IfStmt::IfStmt(ExprPtr cond, StmtPtr thenBranch, StmtPtr elseBranch)
    : Stmt(StmtKind::If),
      cond_(std::move(cond)),
      thenBranch_(std::move(thenBranch)),
      elseBranch_(std::move(elseBranch)) {
  RTLOCK_REQUIRE(cond_ != nullptr, "if-condition must not be null");
  RTLOCK_REQUIRE(thenBranch_ != nullptr, "if-then branch must not be null");
}

ExprPtr& IfStmt::exprSlotAt(int index) {
  if (index != kCondSlot) badSlot();
  return cond_;
}

StmtPtr& IfStmt::stmtSlotAt(int index) {
  if (index == 0) return thenBranch_;
  if (index == 1 && hasElse()) return elseBranch_;
  badSlot();
}

StmtPtr IfStmt::clone() const {
  return makeIf(cond_->clone(), thenBranch_->clone(),
                elseBranch_ ? elseBranch_->clone() : nullptr);
}

// ---- CaseStmt ----

CaseStmt::CaseStmt(ExprPtr subject, std::vector<CaseItem> items, StmtPtr defaultBody)
    : Stmt(StmtKind::Case),
      subject_(std::move(subject)),
      items_(std::move(items)),
      defaultBody_(std::move(defaultBody)) {
  RTLOCK_REQUIRE(subject_ != nullptr, "case subject must not be null");
  for (const auto& item : items_) {
    RTLOCK_REQUIRE(item.body != nullptr, "case arms must have bodies");
    RTLOCK_REQUIRE(!item.labels.empty(), "case arms need at least one label");
  }
}

ExprPtr& CaseStmt::exprSlotAt(int index) {
  if (index != 0) badSlot();
  return subject_;
}

StmtPtr& CaseStmt::stmtSlotAt(int index) {
  const int itemCount = static_cast<int>(items_.size());
  if (index >= 0 && index < itemCount) return items_[static_cast<std::size_t>(index)].body;
  if (index == itemCount && hasDefault()) return defaultBody_;
  badSlot();
}

StmtPtr CaseStmt::clone() const {
  std::vector<CaseItem> items;
  items.reserve(items_.size());
  for (const auto& item : items_) {
    items.push_back(CaseItem{item.labels, item.body->clone()});
  }
  return makeCase(subject_->clone(), std::move(items),
                  defaultBody_ ? defaultBody_->clone() : nullptr);
}

// ---- AssignStmt ----

AssignStmt::AssignStmt(LValue target, ExprPtr value, bool nonBlocking)
    : Stmt(StmtKind::Assign),
      target_(target),
      value_(std::move(value)),
      nonBlocking_(nonBlocking) {
  RTLOCK_REQUIRE(value_ != nullptr, "assignment value must not be null");
}

ExprPtr& AssignStmt::exprSlotAt(int index) {
  if (index != kValueSlot) badSlot();
  return value_;
}

StmtPtr& AssignStmt::stmtSlotAt(int) { badSlot(); }

StmtPtr AssignStmt::clone() const { return makeAssign(target_, value_->clone(), nonBlocking_); }

// ---- Factories ----

StmtPtr makeBlock(std::vector<StmtPtr> body) { return std::make_unique<BlockStmt>(std::move(body)); }

StmtPtr makeIf(ExprPtr cond, StmtPtr thenBranch, StmtPtr elseBranch) {
  return std::make_unique<IfStmt>(std::move(cond), std::move(thenBranch), std::move(elseBranch));
}

StmtPtr makeCase(ExprPtr subject, std::vector<CaseItem> items, StmtPtr defaultBody) {
  return std::make_unique<CaseStmt>(std::move(subject), std::move(items), std::move(defaultBody));
}

StmtPtr makeAssign(LValue target, ExprPtr value, bool nonBlocking) {
  return std::make_unique<AssignStmt>(target, std::move(value), nonBlocking);
}

// ---- Equality ----

bool structurallyEqual(const Stmt& a, const Stmt& b) noexcept {
  if (a.kind() != b.kind()) return false;

  switch (a.kind()) {
    case StmtKind::Assign: {
      const auto& aa = static_cast<const AssignStmt&>(a);
      const auto& ab = static_cast<const AssignStmt&>(b);
      if (!(aa.target() == ab.target()) || aa.nonBlocking() != ab.nonBlocking()) return false;
      break;
    }
    case StmtKind::Case: {
      const auto& ca = static_cast<const CaseStmt&>(a);
      const auto& cb = static_cast<const CaseStmt&>(b);
      if (ca.items().size() != cb.items().size() || ca.hasDefault() != cb.hasDefault()) {
        return false;
      }
      for (std::size_t i = 0; i < ca.items().size(); ++i) {
        if (ca.items()[i].labels != cb.items()[i].labels) return false;
      }
      break;
    }
    case StmtKind::If:
      if (static_cast<const IfStmt&>(a).hasElse() != static_cast<const IfStmt&>(b).hasElse()) {
        return false;
      }
      break;
    case StmtKind::Block: break;
  }

  if (a.exprSlotCount() != b.exprSlotCount() || a.stmtSlotCount() != b.stmtSlotCount()) {
    return false;
  }
  for (int i = 0; i < a.exprSlotCount(); ++i) {
    if (!structurallyEqual(a.exprAt(i), b.exprAt(i))) return false;
  }
  for (int i = 0; i < a.stmtSlotCount(); ++i) {
    if (!structurallyEqual(a.stmtAt(i), b.stmtAt(i))) return false;
  }
  return true;
}

}  // namespace rtlock::rtl
