#include "rtl/module.hpp"

#include <algorithm>

namespace rtlock::rtl {

// ---- ContAssign ----

ContAssign::ContAssign(LValue target, ExprPtr value) : target_(target), value_(std::move(value)) {
  RTLOCK_REQUIRE(value_ != nullptr, "continuous assignment needs a value");
}

ExprPtr& ContAssign::exprSlotAt(int index) {
  RTLOCK_REQUIRE(index == kValueSlot, "continuous assignments own a single expression");
  return value_;
}

// ---- Module ----

Module::Module(std::string name) : name_(std::move(name)) {
  RTLOCK_REQUIRE(!name_.empty(), "modules must be named");
}

SignalId Module::addSignal(Signal signal) {
  RTLOCK_REQUIRE(!signal.name.empty(), "signals must be named");
  RTLOCK_REQUIRE(signal.width >= 1, "signal width must be positive");
  RTLOCK_REQUIRE(!findSignal(signal.name).has_value(),
                 "duplicate signal name: " + signal.name);
  RTLOCK_REQUIRE(signal.name != keyPortName_, "signal name collides with the key port");
  signals_.push_back(std::move(signal));
  return static_cast<SignalId>(signals_.size() - 1);
}

SignalId Module::addInput(std::string name, int width) {
  return addSignal({std::move(name), width, NetKind::Wire, true, PortDir::Input});
}

SignalId Module::addOutput(std::string name, int width, NetKind net) {
  return addSignal({std::move(name), width, net, true, PortDir::Output});
}

SignalId Module::addWire(std::string name, int width) {
  return addSignal({std::move(name), width, NetKind::Wire, false, PortDir::Input});
}

SignalId Module::addReg(std::string name, int width) {
  return addSignal({std::move(name), width, NetKind::Reg, false, PortDir::Input});
}

const Signal& Module::signal(SignalId id) const {
  RTLOCK_REQUIRE(id < signals_.size(), "signal id out of range");
  return signals_[id];
}

std::optional<SignalId> Module::findSignal(std::string_view name) const noexcept {
  const auto it = std::find_if(signals_.begin(), signals_.end(),
                               [name](const Signal& s) { return s.name == name; });
  if (it == signals_.end()) return std::nullopt;
  return static_cast<SignalId>(it - signals_.begin());
}

std::vector<SignalId> Module::ports() const {
  std::vector<SignalId> result;
  for (SignalId id = 0; id < signals_.size(); ++id) {
    if (signals_[id].isPort) result.push_back(id);
  }
  return result;
}

ContAssign& Module::addContAssign(LValue target, ExprPtr value) {
  RTLOCK_REQUIRE(target.signal < signals_.size(), "assignment target signal out of range");
  contAssigns_.push_back(std::make_unique<ContAssign>(target, std::move(value)));
  return *contAssigns_.back();
}

Process& Module::addProcess(ProcessKind kind, SignalId clock, StmtPtr body) {
  RTLOCK_REQUIRE(body != nullptr, "process body must not be null");
  if (kind == ProcessKind::Sequential) {
    RTLOCK_REQUIRE(clock < signals_.size(), "sequential process clock out of range");
  }
  auto process = std::make_unique<Process>();
  process->kind = kind;
  process->clock = clock;
  process->body = std::move(body);
  processes_.push_back(std::move(process));
  return *processes_.back();
}

int Module::allocateKeyBits(int count) {
  RTLOCK_REQUIRE(count >= 1, "key allocation must request at least one bit");
  const int first = keyWidth_;
  keyWidth_ += count;
  return first;
}

void Module::setKeyWidth(int width) {
  RTLOCK_REQUIRE(width >= 0, "key width cannot be negative");
  keyWidth_ = width;
}

Module Module::clone() const {
  Module copy{name_};
  copy.signals_ = signals_;
  copy.keyPortName_ = keyPortName_;
  copy.keyWidth_ = keyWidth_;
  copy.contAssigns_.reserve(contAssigns_.size());
  for (const auto& assign : contAssigns_) {
    copy.contAssigns_.push_back(
        std::make_unique<ContAssign>(assign->target(), assign->value().clone()));
  }
  copy.processes_.reserve(processes_.size());
  for (const auto& process : processes_) {
    auto cloned = std::make_unique<Process>();
    cloned->kind = process->kind;
    cloned->clock = process->clock;
    cloned->body = process->body->clone();
    copy.processes_.push_back(std::move(cloned));
  }
  return copy;
}

bool structurallyEqual(const Module& a, const Module& b) noexcept {
  if (a.name() != b.name() || a.keyWidth() != b.keyWidth() ||
      a.signalCount() != b.signalCount() || a.contAssigns().size() != b.contAssigns().size() ||
      a.processes().size() != b.processes().size()) {
    return false;
  }
  for (SignalId id = 0; id < a.signalCount(); ++id) {
    const Signal& sa = a.signal(id);
    const Signal& sb = b.signal(id);
    if (sa.name != sb.name || sa.width != sb.width || sa.net != sb.net ||
        sa.isPort != sb.isPort || (sa.isPort && sa.dir != sb.dir)) {
      return false;
    }
  }
  for (std::size_t i = 0; i < a.contAssigns().size(); ++i) {
    const auto& ca = *a.contAssigns()[i];
    const auto& cb = *b.contAssigns()[i];
    if (!(ca.target() == cb.target()) || !structurallyEqual(ca.value(), cb.value())) return false;
  }
  for (std::size_t i = 0; i < a.processes().size(); ++i) {
    const auto& pa = *a.processes()[i];
    const auto& pb = *b.processes()[i];
    if (pa.kind != pb.kind) return false;
    if (pa.kind == ProcessKind::Sequential && pa.clock != pb.clock) return false;
    if (!structurallyEqual(*pa.body, *pb.body)) return false;
  }
  return true;
}

// ---- Design ----

Module& Design::addModule(Module module) {
  modules_.push_back(std::make_unique<Module>(std::move(module)));
  return *modules_.back();
}

Module* Design::findModule(std::string_view name) noexcept {
  const auto it = std::find_if(modules_.begin(), modules_.end(),
                               [name](const auto& m) { return m->name() == name; });
  return it == modules_.end() ? nullptr : it->get();
}

Module& Design::top() {
  RTLOCK_REQUIRE(!modules_.empty(), "design has no modules");
  return *modules_[topIndex_];
}

const Module& Design::top() const {
  RTLOCK_REQUIRE(!modules_.empty(), "design has no modules");
  return *modules_[topIndex_];
}

void Design::setTop(std::string_view name) {
  for (std::size_t i = 0; i < modules_.size(); ++i) {
    if (modules_[i]->name() == name) {
      topIndex_ = i;
      return;
    }
  }
  throw support::Error{"no module named '" + std::string{name} + "' in design"};
}

}  // namespace rtlock::rtl
