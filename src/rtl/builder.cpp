#include "rtl/builder.hpp"

#include <algorithm>

namespace rtlock::rtl {

void ModuleBuilder::regAssign(SignalId clock, SignalId target, ExprPtr value) {
  const auto it = std::find_if(openSeqBlocks_.begin(), openSeqBlocks_.end(),
                               [clock](const auto& entry) { return entry.first == clock; });
  BlockStmt* block = nullptr;
  if (it != openSeqBlocks_.end()) {
    block = it->second;
  } else {
    auto body = makeBlock();
    block = static_cast<BlockStmt*>(body.get());
    module_.addProcess(ProcessKind::Sequential, clock, std::move(body));
    openSeqBlocks_.emplace_back(clock, block);
  }
  block->append(makeAssign(LValue{target, std::nullopt}, std::move(value), /*nonBlocking=*/true));
}

}  // namespace rtlock::rtl
