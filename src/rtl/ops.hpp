// Operator vocabulary of the RTL IR.
//
// The binary operator set mirrors the Verilog-2001 operators that ASSURE-style
// operation obfuscation manipulates.  Locking pairs over this vocabulary are
// defined in core/pairs.hpp; this header only knows about syntax and width
// semantics.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace rtlock::rtl {

/// Binary operators.  Names follow Verilog spelling in comments.
enum class OpKind : std::uint8_t {
  Add,   // +
  Sub,   // -
  Mul,   // *
  Div,   // /
  Mod,   // %
  Pow,   // **
  Shl,   // <<
  Shr,   // >>
  AShr,  // >>>
  And,   // &
  Or,    // |
  Xor,   // ^
  Xnor,  // ~^
  Lt,    // <
  Gt,    // >
  Le,    // <=
  Ge,    // >=
  Eq,    // ==
  Ne,    // !=
  LAnd,  // &&
  LOr,   // ||
};

inline constexpr int kOpKindCount = static_cast<int>(OpKind::LOr) + 1;

/// Unary operators.
enum class UnaryOp : std::uint8_t {
  Neg,     // -
  BitNot,  // ~
  LogNot,  // !
  RedAnd,  // &  (reduction)
  RedOr,   // |  (reduction)
  RedXor,  // ^  (reduction)
};

/// Verilog spelling of a binary operator.
[[nodiscard]] std::string_view opToken(OpKind op) noexcept;

/// Verilog spelling of a unary operator.
[[nodiscard]] std::string_view unaryToken(UnaryOp op) noexcept;

/// Short mnemonic used in reports/CSV ("add", "shl", ...).
[[nodiscard]] std::string_view opName(OpKind op) noexcept;

/// Inverse of opName; empty optional for unknown mnemonics.
[[nodiscard]] std::optional<OpKind> opFromName(std::string_view name) noexcept;

/// True for <, >, <=, >=, ==, != (1-bit result).
[[nodiscard]] bool isComparison(OpKind op) noexcept;

/// True for && and || (1-bit result, logical operands).
[[nodiscard]] bool isLogical(OpKind op) noexcept;

/// True for <<, >> and >>> (result width = left operand width).
[[nodiscard]] bool isShift(OpKind op) noexcept;

/// Result width of `op` applied to operand widths `lw` and `rw` under the
/// IR's simplified (context-free) width rules:
///   arithmetic/bitwise -> max(lw, rw); shifts -> lw; comparisons/logical -> 1.
[[nodiscard]] int resultWidth(OpKind op, int lw, int rw) noexcept;

/// Result width of a unary operator on operand width `w`.
[[nodiscard]] int unaryResultWidth(UnaryOp op, int w) noexcept;

/// Binding strength for the Verilog writer/parser (higher binds tighter).
[[nodiscard]] int opPrecedence(OpKind op) noexcept;

}  // namespace rtlock::rtl
