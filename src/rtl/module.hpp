// Module: the unit of locking, simulation and Verilog I/O.
//
// A module owns a signal table, continuous assignments, and always-processes.
// Continuous assignments and processes are heap-allocated so that ExprSlot
// handles into them stay valid while containers grow (see holder.hpp).
//
// Key bits are modelled as one implicit input vector (named by keyPortName,
// default "lock_key"); locking transformations allocate bits through
// allocateKeyBits and may roll the allocation back via setKeyWidth (the undo
// stack uses this).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "rtl/stmt.hpp"

namespace rtlock::rtl {

enum class PortDir : std::uint8_t { Input, Output };
enum class NetKind : std::uint8_t { Wire, Reg };

struct Signal {
  std::string name;
  int width = 1;
  NetKind net = NetKind::Wire;
  bool isPort = false;
  PortDir dir = PortDir::Input;
};

/// assign target = value;
class ContAssign final : public ExprHolder {
 public:
  ContAssign(LValue target, ExprPtr value);

  [[nodiscard]] const LValue& target() const noexcept { return target_; }
  [[nodiscard]] const Expr& value() const noexcept { return *value_; }

  static constexpr int kValueSlot = 0;
  [[nodiscard]] int exprSlotCount() const noexcept override { return 1; }
  [[nodiscard]] ExprPtr& exprSlotAt(int index) override;

 private:
  LValue target_;
  ExprPtr value_;
};

enum class ProcessKind : std::uint8_t {
  Combinational,  // always @(*)    — blocking assignments
  Sequential,     // always @(posedge clock) — non-blocking assignments
};

struct Process {
  ProcessKind kind = ProcessKind::Combinational;
  /// Clock signal for sequential processes; unused otherwise.
  SignalId clock = 0;
  StmtPtr body;
};

class Module {
 public:
  explicit Module(std::string name);

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;
  Module(Module&&) noexcept = default;
  Module& operator=(Module&&) noexcept = default;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  // ---- Signals ----

  /// Adds a signal; names must be unique within the module.
  SignalId addSignal(Signal signal);
  SignalId addInput(std::string name, int width);
  SignalId addOutput(std::string name, int width, NetKind net = NetKind::Wire);
  SignalId addWire(std::string name, int width);
  SignalId addReg(std::string name, int width);

  [[nodiscard]] const Signal& signal(SignalId id) const;
  [[nodiscard]] std::optional<SignalId> findSignal(std::string_view name) const noexcept;
  [[nodiscard]] std::size_t signalCount() const noexcept { return signals_.size(); }

  /// Ports in declaration order.
  [[nodiscard]] std::vector<SignalId> ports() const;

  // ---- Structure ----

  ContAssign& addContAssign(LValue target, ExprPtr value);
  Process& addProcess(ProcessKind kind, SignalId clock, StmtPtr body);

  [[nodiscard]] const std::vector<std::unique_ptr<ContAssign>>& contAssigns() const noexcept {
    return contAssigns_;
  }
  [[nodiscard]] std::vector<std::unique_ptr<ContAssign>>& contAssigns() noexcept {
    return contAssigns_;
  }
  [[nodiscard]] const std::vector<std::unique_ptr<Process>>& processes() const noexcept {
    return processes_;
  }
  [[nodiscard]] std::vector<std::unique_ptr<Process>>& processes() noexcept { return processes_; }

  // ---- Locking key ----

  [[nodiscard]] const std::string& keyPortName() const noexcept { return keyPortName_; }
  void setKeyPortName(std::string name) { keyPortName_ = std::move(name); }

  /// Width of the implicit key input (0 = unlocked design).
  [[nodiscard]] int keyWidth() const noexcept { return keyWidth_; }

  /// Reserve `count` key bits; returns the first allocated index.
  int allocateKeyBits(int count);

  /// Rewind/advance the key allocation (undo support).
  void setKeyWidth(int width);

  /// Deep copy preserving signal ids and key allocation.
  [[nodiscard]] Module clone() const;

 private:
  std::string name_;
  std::vector<Signal> signals_;
  std::vector<std::unique_ptr<ContAssign>> contAssigns_;
  std::vector<std::unique_ptr<Process>> processes_;
  std::string keyPortName_ = "lock_key";
  int keyWidth_ = 0;
};

/// Structural equality: same signals, assigns, processes and key width.
[[nodiscard]] bool structurallyEqual(const Module& a, const Module& b) noexcept;

/// A design is a set of modules with a designated top.  The locking flow and
/// the attack operate module-by-module; multi-module designs come from the
/// Verilog frontend.
class Design {
 public:
  Design() = default;

  Module& addModule(Module module);
  [[nodiscard]] std::size_t moduleCount() const noexcept { return modules_.size(); }
  [[nodiscard]] Module& module(std::size_t index) { return *modules_.at(index); }
  [[nodiscard]] const Module& module(std::size_t index) const { return *modules_.at(index); }
  [[nodiscard]] Module* findModule(std::string_view name) noexcept;

  [[nodiscard]] Module& top();
  [[nodiscard]] const Module& top() const;
  void setTop(std::string_view name);

 private:
  std::vector<std::unique_ptr<Module>> modules_;
  std::size_t topIndex_ = 0;
};

}  // namespace rtlock::rtl
