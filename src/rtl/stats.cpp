#include "rtl/stats.hpp"

#include <numeric>
#include <ostream>

#include "rtl/traverse.hpp"

namespace rtlock::rtl {

int OpCounts::total() const noexcept {
  return std::accumulate(counts_.begin(), counts_.end(), 0);
}

OpCounts countOps(const Module& module) {
  OpCounts counts;
  forEachExpr(module, [&counts](const Expr& expr) {
    if (expr.kind() == ExprKind::Binary) {
      counts.add(static_cast<const BinaryExpr&>(expr).op());
    }
  });
  return counts;
}

ModuleStats computeStats(const Module& module) {
  ModuleStats stats;
  stats.signals = static_cast<int>(module.signalCount());
  stats.ports = static_cast<int>(module.ports().size());
  stats.contAssigns = static_cast<int>(module.contAssigns().size());
  stats.processes = static_cast<int>(module.processes().size());
  stats.keyWidth = module.keyWidth();

  forEachExpr(module, [&stats](const Expr& expr) {
    ++stats.exprNodes;
    if (expr.kind() == ExprKind::Binary) ++stats.binaryOps;
    if (expr.kind() == ExprKind::Ternary &&
        static_cast<const TernaryExpr&>(expr).isKeyMux()) {
      ++stats.keyMuxes;
    }
  });

  for (const auto& assign : module.contAssigns()) {
    stats.maxExprDepth = std::max(stats.maxExprDepth, exprDepth(assign->value()));
  }
  forEachStmt(module, [&stats](const Stmt& stmt) {
    for (int i = 0; i < stmt.exprSlotCount(); ++i) {
      stats.maxExprDepth = std::max(stats.maxExprDepth, exprDepth(stmt.exprAt(i)));
    }
  });
  return stats;
}

std::ostream& operator<<(std::ostream& out, const ModuleStats& stats) {
  out << "signals=" << stats.signals << " ports=" << stats.ports
      << " assigns=" << stats.contAssigns << " processes=" << stats.processes
      << " exprNodes=" << stats.exprNodes << " binaryOps=" << stats.binaryOps
      << " keyMuxes=" << stats.keyMuxes << " maxDepth=" << stats.maxExprDepth
      << " keyWidth=" << stats.keyWidth;
  return out;
}

}  // namespace rtlock::rtl
