#include "sim/sliced_sim.hpp"

#include <algorithm>

#include "sim/compiler.hpp"
#include "sim/op_eval.hpp"

namespace rtlock::sim {

namespace detail {

void transpose64(std::uint64_t m[64]) noexcept {
  // Hacker's Delight 7-3 block transpose.  The textbook routine transposes
  // about the anti-diagonal under LSB-first bit numbering; reversing the
  // rows on the way in and out turns that into the plain transpose
  // (out[i] bit j == in[j] bit i) that the plane<->lane conversions need.
  std::reverse(m, m + 64);
  std::uint64_t mask = 0x00000000FFFFFFFFULL;
  for (int j = 32; j != 0; j >>= 1, mask ^= mask << j) {
    for (int k = 0; k < 64; k = (k + j + 1) & ~j) {
      const std::uint64_t t = (m[k] ^ (m[k + j] >> j)) & mask;
      m[k] ^= t;
      m[k + j] ^= t << j;
    }
  }
  std::reverse(m, m + 64);
}

}  // namespace detail

namespace {

using u64 = std::uint64_t;

u64 powU64(u64 base, u64 exponent) noexcept {
  // Square-and-multiply modulo 2^64 (same semantics as BitVector::pow).
  u64 value = 1;
  while (exponent != 0) {
    if ((exponent & 1) != 0) value *= base;
    base *= base;
    exponent >>= 1;
  }
  return value;
}

/// Plane b of a slot, zero-extended past the slot's width.
inline u64 planeOr0(const u64* planes, int width, int b) noexcept {
  return b < width ? planes[b] : 0;
}

/// OpKind equivalent of a lane-fallback opcode (for the wide BitVector path).
rtl::OpKind fallbackOpKind(Opcode op) {
  switch (op) {
    case Opcode::Mul: return rtl::OpKind::Mul;
    case Opcode::Div: return rtl::OpKind::Div;
    case Opcode::Mod: return rtl::OpKind::Mod;
    case Opcode::Pow: return rtl::OpKind::Pow;
    case Opcode::Shl: return rtl::OpKind::Shl;
    case Opcode::Shr: return rtl::OpKind::Shr;
    default: break;
  }
  RTLOCK_UNREACHABLE("lane-fallback opcode");
}

/// Construction-time verification that a program really is in the sliced
/// encoding: jump-free, no Wide* opcodes, 1-bit Select conditions.
void verifySlicedTape(const Program& program, const std::vector<Instr>& tape) {
  for (const Instr& in : tape) {
    switch (in.op) {
      case Opcode::Jump:
      case Opcode::JumpIfZero:
      case Opcode::JumpIfEq:
      case Opcode::WideBinary:
      case Opcode::WideUnary:
      case Opcode::WideSelect:
      case Opcode::WideConcat:
      case Opcode::WideSlice:
      case Opcode::WideCopy:
      case Opcode::WideInsert:
        RTLOCK_UNREACHABLE("jump/wide opcode in a sliced tape");
      case Opcode::Select:
        RTLOCK_REQUIRE(program.slots()[static_cast<std::size_t>(in.a)].width == 1,
                       "sliced Select condition must be a 1-bit slot");
        break;
      default: break;
    }
  }
}

}  // namespace

SlicedSim::SlicedSim(const rtl::Module& module)
    : SlicedSim(std::make_shared<const Program>(Compiler::compileSliced(module))) {}

SlicedSim::SlicedSim(std::shared_ptr<const Program> program) : program_(std::move(program)) {
  RTLOCK_REQUIRE(program_->slicedLowering(),
                 "SlicedSim needs a Compiler::compileSliced program");
  verifySlicedTape(*program_, program_->combTape());
  for (const SequentialTape& seq : program_->sequentialTapes()) {
    verifySlicedTape(*program_, seq.tape);
  }

  // Plane arena layout: one plane per bit of every slot, in slot order.
  planeBase_.reserve(program_->slots().size());
  std::int32_t next = 0;
  for (const Slot& slot : program_->slots()) {
    planeBase_.push_back(next);
    next += slot.width;
  }

  // Broadcast the scalar initial image (constants baked in, signals zero):
  // a set constant bit is set in every lane.
  initialPlanes_.assign(static_cast<std::size_t>(next), 0);
  const std::vector<u64>& words = program_->initialWords();
  for (std::size_t id = 0; id < program_->slots().size(); ++id) {
    const Slot& slot = program_->slots()[id];
    u64* planes = &initialPlanes_[static_cast<std::size_t>(planeBase_[id])];
    for (int b = 0; b < slot.width; ++b) {
      const u64 word = words[static_cast<std::size_t>(slot.offset + b / 64)];
      planes[b] = ((word >> (b % 64)) & 1) != 0 ? ~u64{0} : 0;
    }
  }
  planes_ = initialPlanes_;
}

void SlicedSim::reset() { planes_ = initialPlanes_; }

void SlicedSim::setValue(rtl::SignalId signal, const BitVector& value) {
  const std::int32_t id = program_->signalSlotId(signal);
  const int width = program_->slots()[static_cast<std::size_t>(id)].width;
  const BitVector v = value.width() == width ? value : value.resized(width);
  u64* planes = planesOf(id);
  for (int b = 0; b < width; ++b) planes[b] = v.bit(b) ? ~u64{0} : 0;
}

void SlicedSim::setLaneValues(rtl::SignalId signal, std::span<const BitVector> values) {
  RTLOCK_REQUIRE(values.size() <= static_cast<std::size_t>(kLanes),
                 "at most 64 lanes per sliced arena");
  const std::int32_t id = program_->signalSlotId(signal);
  const int width = program_->slots()[static_cast<std::size_t>(id)].width;
  u64* planes = planesOf(id);
  if (width <= 64) {
    u64 lanes[kLanes] = {};
    for (std::size_t l = 0; l < values.size(); ++l) {
      lanes[l] = values[l].toUint64() & narrowMask(width);
    }
    detail::transpose64(lanes);
    std::copy_n(lanes, width, planes);
    return;
  }
  // Wide ports: transpose one 64-bit word chunk at a time.
  for (int chunk = 0; chunk * 64 < width; ++chunk) {
    const int lo = chunk * 64;
    const int hi = std::min(width - 1, lo + 63);
    u64 lanes[kLanes] = {};
    for (std::size_t l = 0; l < values.size(); ++l) {
      const BitVector& value = values[l];
      if (lo >= value.width()) continue;
      lanes[l] = value.slice(std::min(hi, value.width() - 1), lo).toUint64();
    }
    detail::transpose64(lanes);
    std::copy_n(lanes, hi - lo + 1, planes + lo);
  }
}

BitVector SlicedSim::laneValue(rtl::SignalId signal, int lane) const {
  return gatherLane(program_->signalSlotId(signal), lane);
}

void SlicedSim::setKey(const BitVector& key) {
  RTLOCK_REQUIRE(program_->keyWidth() > 0, "module has no key input");
  const BitVector k = key.resized(program_->keyWidth());
  for (const KeyBinding& binding : program_->keyBindings()) {
    u64* planes = planesOf(binding.slot);
    for (int b = 0; b < binding.width; ++b) {
      planes[b] = k.bit(binding.firstBit + b) ? ~u64{0} : 0;
    }
  }
}

void SlicedSim::setKeys(std::span<const BitVector> keys) {
  RTLOCK_REQUIRE(program_->keyWidth() > 0, "module has no key input");
  RTLOCK_REQUIRE(keys.size() <= static_cast<std::size_t>(kLanes),
                 "at most 64 lanes per sliced arena");
  for (const BitVector& key : keys) {
    RTLOCK_REQUIRE(key.width() == program_->keyWidth(), "key width mismatch");
  }
  for (const KeyBinding& binding : program_->keyBindings()) {
    u64* planes = planesOf(binding.slot);
    for (int b = 0; b < binding.width; ++b) {
      u64 plane = 0;
      for (std::size_t l = 0; l < keys.size(); ++l) {
        plane |= static_cast<u64>(keys[l].bit(binding.firstBit + b) ? 1 : 0) << l;
      }
      planes[b] = plane;
    }
  }
}

void SlicedSim::setKeys(std::span<const BitVector> keys, std::span<const u64> laneMasks) {
  RTLOCK_REQUIRE(program_->keyWidth() > 0, "module has no key input");
  RTLOCK_REQUIRE(keys.size() == laneMasks.size(), "one lane mask per key");
  for (const BitVector& key : keys) {
    RTLOCK_REQUIRE(key.width() == program_->keyWidth(), "key width mismatch");
  }
  for (const KeyBinding& binding : program_->keyBindings()) {
    u64* planes = planesOf(binding.slot);
    for (int b = 0; b < binding.width; ++b) {
      u64 plane = 0;
      for (std::size_t k = 0; k < keys.size(); ++k) {
        if (keys[k].bit(binding.firstBit + b)) plane |= laneMasks[k];
      }
      planes[b] = plane;
    }
  }
}

void SlicedSim::settle() { exec(program_->combTape()); }

void SlicedSim::clockEdge(rtl::SignalId clock) {
  for (const SequentialTape& seq : program_->sequentialTapes()) {
    if (seq.clock != clock) continue;
    // Same double-buffer dance as the scalar executor, over planes.
    for (const ShadowCopy& copy : seq.shadows) {
      const int width = program_->slots()[static_cast<std::size_t>(copy.liveSlot)].width;
      std::copy_n(planesOf(copy.liveSlot), width, planesOf(copy.shadowSlot));
    }
    exec(seq.tape);
    for (const ShadowCopy& copy : seq.shadows) {
      const int width = program_->slots()[static_cast<std::size_t>(copy.liveSlot)].width;
      std::copy_n(planesOf(copy.shadowSlot), width, planesOf(copy.liveSlot));
    }
  }
  settle();
}

void SlicedSim::loadLanes(std::int32_t slotId, u64 out[kLanes]) const {
  const int width = program_->slots()[static_cast<std::size_t>(slotId)].width;
  const u64* planes = planesOf(slotId);
  std::copy_n(planes, width, out);
  std::fill(out + width, out + kLanes, 0);
  detail::transpose64(out);
}

BitVector SlicedSim::gatherLane(std::int32_t slotId, int lane) const {
  const Slot& slot = program_->slots()[static_cast<std::size_t>(slotId)];
  const u64* planes = planesOf(slotId);
  std::vector<u64> words(static_cast<std::size_t>(slot.wordCount()), 0);
  for (int b = 0; b < slot.width; ++b) {
    words[static_cast<std::size_t>(b >> 6)] |= ((planes[b] >> lane) & 1) << (b & 63);
  }
  return BitVector::fromWords(words.data(), slot.width);
}

void SlicedSim::scatterLane(std::int32_t slotId, int lane, const BitVector& value) {
  const Slot& slot = program_->slots()[static_cast<std::size_t>(slotId)];
  u64* planes = planesOf(slotId);
  const u64 laneBit = u64{1} << lane;
  for (int b = 0; b < slot.width; ++b) {
    planes[b] = value.bit(b) ? (planes[b] | laneBit) : (planes[b] & ~laneBit);
  }
}

void SlicedSim::laneFallback(const Instr& in) {
  const std::vector<Slot>& slots = program_->slots();
  const int wd = slots[static_cast<std::size_t>(in.dst)].width;
  const int wa = slots[static_cast<std::size_t>(in.a)].width;
  const int wb = slots[static_cast<std::size_t>(in.b)].width;
  if (wd <= 64 && wa <= 64 && wb <= 64) {
    // Transpose to lanes, apply the scalar narrow semantics per lane,
    // transpose back: ~3 transposes buy 64 lanes of a non-bitwise op.
    u64 la[kLanes];
    u64 lb[kLanes];
    u64 out[kLanes];
    loadLanes(in.a, la);
    loadLanes(in.b, lb);
    const u64 mask = narrowMask(wd);
    for (int l = 0; l < kLanes; ++l) {
      const u64 a = la[l];
      const u64 b = lb[l];
      switch (in.op) {
        case Opcode::Mul: out[l] = (a * b) & mask; break;
        case Opcode::Div: out[l] = b == 0 ? mask : (a / b) & mask; break;
        case Opcode::Mod: out[l] = b == 0 ? mask : (a % b) & mask; break;
        case Opcode::Pow: out[l] = powU64(a, b) & mask; break;
        case Opcode::Shl: out[l] = b >= static_cast<u64>(wd) ? 0 : (a << b) & mask; break;
        case Opcode::Shr: out[l] = b >= static_cast<u64>(wa) ? 0 : (a >> b) & mask; break;
        default: RTLOCK_UNREACHABLE("lane-fallback opcode");
      }
    }
    detail::transpose64(out);
    std::copy_n(out, wd, planesOf(in.dst));
    return;
  }
  // Wide operands: per-lane BitVector evaluation via the shared op
  // semantics (identical to the scalar tape's Wide* fallback).
  const rtl::OpKind kind = fallbackOpKind(in.op);
  for (int l = 0; l < kLanes; ++l) {
    scatterLane(in.dst, l, evalBinaryOp(kind, gatherLane(in.a, l), gatherLane(in.b, l), wd));
  }
}

void SlicedSim::exec(const std::vector<Instr>& tape) {
  const std::vector<Slot>& slots = program_->slots();
  const std::int32_t* base = planeBase_.data();
  u64* const arena = planes_.data();
  const auto planes = [&](std::int32_t id) -> u64* {
    return arena + base[static_cast<std::size_t>(id)];
  };
  const auto width = [&](std::int32_t id) -> int {
    return slots[static_cast<std::size_t>(id)].width;
  };
  // "Is any bit set" lane mask of a slot.
  const auto nonZero = [&](std::int32_t id) -> u64 {
    const u64* p = planes(id);
    const int w = width(id);
    u64 any = 0;
    for (int i = 0; i < w; ++i) any |= p[i];
    return any;
  };

  for (const Instr& in : tape) {
    switch (in.op) {
      case Opcode::Copy: {
        u64* d = planes(in.dst);
        const u64* a = planes(in.a);
        const int wd = width(in.dst);
        const int wa = width(in.a);
        for (int i = 0; i < wd; ++i) d[i] = planeOr0(a, wa, i);
        break;
      }
      case Opcode::Add: {
        u64* d = planes(in.dst);
        const u64* a = planes(in.a);
        const u64* b = planes(in.b);
        const int wd = width(in.dst);
        const int wa = width(in.a);
        const int wb = width(in.b);
        u64 carry = 0;
        for (int i = 0; i < wd; ++i) {
          const u64 x = planeOr0(a, wa, i);
          const u64 y = planeOr0(b, wb, i);
          d[i] = x ^ y ^ carry;
          carry = (x & y) | ((x ^ y) & carry);
        }
        break;
      }
      case Opcode::Sub:
      case Opcode::Neg: {
        // Neg is 0 - a: same borrow ripple with a zero minuend.
        u64* d = planes(in.dst);
        const u64* a = in.op == Opcode::Sub ? planes(in.a) : nullptr;
        const u64* b = in.op == Opcode::Sub ? planes(in.b) : planes(in.a);
        const int wd = width(in.dst);
        const int wa = in.op == Opcode::Sub ? width(in.a) : 0;
        const int wb = in.op == Opcode::Sub ? width(in.b) : width(in.a);
        u64 borrow = 0;
        for (int i = 0; i < wd; ++i) {
          const u64 x = a != nullptr ? planeOr0(a, wa, i) : 0;
          const u64 y = planeOr0(b, wb, i);
          d[i] = x ^ y ^ borrow;
          borrow = (~x & y) | (~(x ^ y) & borrow);
        }
        break;
      }
      case Opcode::Mul:
      case Opcode::Div:
      case Opcode::Mod:
      case Opcode::Pow:
      case Opcode::Shl:
      case Opcode::Shr: laneFallback(in); break;
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Xnor: {
        u64* d = planes(in.dst);
        const u64* a = planes(in.a);
        const u64* b = planes(in.b);
        const int wd = width(in.dst);
        const int wa = width(in.a);
        const int wb = width(in.b);
        for (int i = 0; i < wd; ++i) {
          const u64 x = planeOr0(a, wa, i);
          const u64 y = planeOr0(b, wb, i);
          switch (in.op) {
            case Opcode::And: d[i] = x & y; break;
            case Opcode::Or: d[i] = x | y; break;
            case Opcode::Xor: d[i] = x ^ y; break;
            default: d[i] = ~(x ^ y); break;  // Xnor
          }
        }
        break;
      }
      case Opcode::Lt:
      case Opcode::Le: {
        // Ripple comparator from the LSB plane; Le computes !(b < a).
        const bool le = in.op == Opcode::Le;
        const u64* a = planes(le ? in.b : in.a);
        const u64* b = planes(le ? in.a : in.b);
        const int wa = width(le ? in.b : in.a);
        const int wb = width(le ? in.a : in.b);
        u64 lt = 0;
        const int wm = std::max(wa, wb);
        for (int i = 0; i < wm; ++i) {
          const u64 x = planeOr0(a, wa, i);
          const u64 y = planeOr0(b, wb, i);
          lt = (~x & y) | (~(x ^ y) & lt);
        }
        u64* d = planes(in.dst);
        const int wd = width(in.dst);
        d[0] = le ? ~lt : lt;
        for (int i = 1; i < wd; ++i) d[i] = 0;
        break;
      }
      case Opcode::Eq:
      case Opcode::Ne: {
        const u64* a = planes(in.a);
        const u64* b = planes(in.b);
        const int wa = width(in.a);
        const int wb = width(in.b);
        u64 equal = ~u64{0};
        const int wm = std::max(wa, wb);
        for (int i = 0; i < wm; ++i) {
          equal &= ~(planeOr0(a, wa, i) ^ planeOr0(b, wb, i));
        }
        u64* d = planes(in.dst);
        const int wd = width(in.dst);
        d[0] = in.op == Opcode::Eq ? equal : ~equal;
        for (int i = 1; i < wd; ++i) d[i] = 0;
        break;
      }
      case Opcode::LAnd: planes(in.dst)[0] = nonZero(in.a) & nonZero(in.b); break;
      case Opcode::LOr: planes(in.dst)[0] = nonZero(in.a) | nonZero(in.b); break;
      case Opcode::LogNot: planes(in.dst)[0] = ~nonZero(in.a); break;
      case Opcode::RedOr: planes(in.dst)[0] = nonZero(in.a); break;
      case Opcode::RedAnd: {
        const u64* a = planes(in.a);
        const int wa = width(in.a);
        u64 all = ~u64{0};
        for (int i = 0; i < wa; ++i) all &= a[i];
        planes(in.dst)[0] = all;
        break;
      }
      case Opcode::RedXor: {
        const u64* a = planes(in.a);
        const int wa = width(in.a);
        u64 parity = 0;
        for (int i = 0; i < wa; ++i) parity ^= a[i];
        planes(in.dst)[0] = parity;
        break;
      }
      case Opcode::Not: {
        u64* d = planes(in.dst);
        const u64* a = planes(in.a);
        const int wd = width(in.dst);
        const int wa = width(in.a);
        for (int i = 0; i < wd; ++i) d[i] = ~planeOr0(a, wa, i);
        break;
      }
      case Opcode::Select: {
        // Lane-mask mux; the else operand may alias the destination
        // (predicated stores), so each plane is read before it is written.
        const u64 m = planes(in.a)[0];
        u64* d = planes(in.dst);
        const u64* t = planes(in.b);
        const u64* e = planes(in.c);
        const int wd = width(in.dst);
        const int wt = width(in.b);
        const int we = width(in.c);
        for (int i = 0; i < wd; ++i) {
          d[i] = (m & planeOr0(t, wt, i)) | (~m & planeOr0(e, we, i));
        }
        break;
      }
      case Opcode::SliceLow: {
        u64* d = planes(in.dst);
        const u64* a = planes(in.a);
        const int wd = width(in.dst);
        const int wa = width(in.a);
        for (int i = 0; i < wd; ++i) d[i] = planeOr0(a, wa, i + in.b);
        break;
      }
      case Opcode::ShlConst: {
        u64* d = planes(in.dst);
        const u64* a = planes(in.a);
        const int wd = width(in.dst);
        const int wa = width(in.a);
        for (int i = 0; i < wd; ++i) d[i] = i >= in.b ? planeOr0(a, wa, i - in.b) : 0;
        break;
      }
      case Opcode::ConcatPair: {
        u64* d = planes(in.dst);
        const u64* a = planes(in.a);
        const u64* b = planes(in.b);
        const int wd = width(in.dst);
        const int wa = width(in.a);
        const int wb = width(in.b);
        for (int i = 0; i < wd; ++i) {
          d[i] = i < in.c ? planeOr0(b, wb, i) : planeOr0(a, wa, i - in.c);
        }
        break;
      }
      case Opcode::Insert: {
        u64* d = planes(in.dst);
        const u64* a = planes(in.a);
        const int wd = width(in.dst);
        const int wa = width(in.a);
        for (int i = 0; i < in.c && in.b + i < wd; ++i) d[in.b + i] = planeOr0(a, wa, i);
        break;
      }
      case Opcode::Jump:
      case Opcode::JumpIfZero:
      case Opcode::JumpIfEq:
      case Opcode::WideBinary:
      case Opcode::WideUnary:
      case Opcode::WideSelect:
      case Opcode::WideConcat:
      case Opcode::WideSlice:
      case Opcode::WideCopy:
      case Opcode::WideInsert: RTLOCK_UNREACHABLE("jump/wide opcode in a sliced tape");
    }
  }
}

std::vector<std::vector<BitVector>> SlicedSim::runVectors(
    const BatchRequest& request, const std::vector<std::vector<BitVector>>& stimuli,
    const std::vector<BitVector>& keys) {
  RTLOCK_REQUIRE(request.cycles >= 1, "batch runs need at least one cycle");
  RTLOCK_REQUIRE(keys.empty() || keys.size() == stimuli.size(),
                 "runVectors needs no keys or one key per stimulus vector");
  const std::size_t inputCount = request.inputs.size();
  const std::size_t samplesPerCycle = request.clock.has_value() ? 2 : 1;

  std::vector<std::vector<BitVector>> traces(stimuli.size());
  std::vector<BitVector> laneValues;
  for (std::size_t chunk = 0; chunk < stimuli.size(); chunk += kLanes) {
    const std::size_t lanes = std::min<std::size_t>(kLanes, stimuli.size() - chunk);
    for (std::size_t l = 0; l < lanes; ++l) {
      RTLOCK_REQUIRE(stimuli[chunk + l].size() ==
                         inputCount * static_cast<std::size_t>(request.cycles),
                     "stimulus vector size must be cycles * inputs");
      traces[chunk + l].reserve(static_cast<std::size_t>(request.cycles) * samplesPerCycle *
                                request.outputs.size());
    }
    reset();
    if (!keys.empty()) setKeys(std::span{keys}.subspan(chunk, lanes));

    for (int cycle = 0; cycle < request.cycles; ++cycle) {
      for (std::size_t i = 0; i < inputCount; ++i) {
        laneValues.clear();
        for (std::size_t l = 0; l < lanes; ++l) {
          laneValues.push_back(
              stimuli[chunk + l][static_cast<std::size_t>(cycle) * inputCount + i]);
        }
        setLaneValues(request.inputs[i], laneValues);
      }
      settle();
      for (const rtl::SignalId output : request.outputs) {
        for (std::size_t l = 0; l < lanes; ++l) {
          traces[chunk + l].push_back(laneValue(output, static_cast<int>(l)));
        }
      }
      if (request.clock.has_value()) {
        clockEdge(*request.clock);
        for (const rtl::SignalId output : request.outputs) {
          for (std::size_t l = 0; l < lanes; ++l) {
            traces[chunk + l].push_back(laneValue(output, static_cast<int>(l)));
          }
        }
      }
    }
  }
  return traces;
}

}  // namespace rtlock::sim
