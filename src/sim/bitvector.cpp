#include "sim/bitvector.hpp"

#include <algorithm>
#include <bit>

#include "support/diagnostics.hpp"

namespace rtlock::sim {

namespace {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

}  // namespace

BitVector::BitVector(int width) : width_(width) {
  RTLOCK_REQUIRE(width >= 1, "bit vectors must be at least one bit wide");
  words_.assign(static_cast<std::size_t>(wordCountFor(width)), 0);
}

BitVector::BitVector(std::uint64_t value, int width) : BitVector(width) {
  words_[0] = value;
  canonicalize();
}

BitVector BitVector::random(int width, support::Rng& rng) {
  BitVector result{width};
  for (auto& word : result.words_) word = rng();
  result.canonicalize();
  return result;
}

void BitVector::canonicalize() noexcept {
  const int topBits = width_ % 64;
  if (topBits != 0) {
    words_.back() &= (u64{1} << topBits) - 1;
  }
}

bool BitVector::bit(int index) const {
  RTLOCK_REQUIRE(index >= 0 && index < width_, "bit index out of range");
  return ((words_[static_cast<std::size_t>(index / 64)] >> (index % 64)) & 1u) != 0;
}

void BitVector::setBit(int index, bool value) {
  RTLOCK_REQUIRE(index >= 0 && index < width_, "bit index out of range");
  const u64 mask = u64{1} << (index % 64);
  auto& word = words_[static_cast<std::size_t>(index / 64)];
  word = value ? (word | mask) : (word & ~mask);
}

std::uint64_t BitVector::toUint64() const noexcept { return words_[0]; }

bool BitVector::any() const noexcept {
  return std::any_of(words_.begin(), words_.end(), [](u64 w) { return w != 0; });
}

int BitVector::popcount() const noexcept {
  int total = 0;
  for (const u64 word : words_) total += std::popcount(word);
  return total;
}

std::string BitVector::toBinaryString() const {
  std::string out;
  out.reserve(static_cast<std::size_t>(width_));
  for (int i = width_ - 1; i >= 0; --i) out.push_back(bit(i) ? '1' : '0');
  return out;
}

BitVector BitVector::resized(int width) const {
  BitVector result{width};
  const std::size_t copyWords = std::min(result.words_.size(), words_.size());
  std::copy_n(words_.begin(), copyWords, result.words_.begin());
  result.canonicalize();
  return result;
}

BitVector BitVector::add(const BitVector& a, const BitVector& b, int width) {
  BitVector result{width};
  u64 carry = 0;
  for (std::size_t i = 0; i < result.words_.size(); ++i) {
    const u64 wa = i < a.words_.size() ? a.words_[i] : 0;
    const u64 wb = i < b.words_.size() ? b.words_[i] : 0;
    const u128 sum = static_cast<u128>(wa) + wb + carry;
    result.words_[i] = static_cast<u64>(sum);
    carry = static_cast<u64>(sum >> 64);
  }
  result.canonicalize();
  return result;
}

BitVector BitVector::sub(const BitVector& a, const BitVector& b, int width) {
  BitVector result{width};
  u64 borrow = 0;
  for (std::size_t i = 0; i < result.words_.size(); ++i) {
    const u64 wa = i < a.words_.size() ? a.words_[i] : 0;
    const u64 wb = i < b.words_.size() ? b.words_[i] : 0;
    const u128 diff = static_cast<u128>(wa) - wb - borrow;
    result.words_[i] = static_cast<u64>(diff);
    borrow = static_cast<u64>((diff >> 64) & 1);
  }
  result.canonicalize();
  return result;
}

BitVector BitVector::mul(const BitVector& a, const BitVector& b, int width) {
  RTLOCK_REQUIRE(a.width_ <= 64 && b.width_ <= 64,
                 "multiplication is defined for operands up to 64 bits");
  const u128 product = static_cast<u128>(a.toUint64()) * b.toUint64();
  BitVector result{width};
  result.words_[0] = static_cast<u64>(product);
  if (result.words_.size() > 1) result.words_[1] = static_cast<u64>(product >> 64);
  result.canonicalize();
  return result;
}

BitVector BitVector::div(const BitVector& a, const BitVector& b, int width) {
  RTLOCK_REQUIRE(a.width_ <= 64 && b.width_ <= 64,
                 "division is defined for operands up to 64 bits");
  BitVector result{width};
  if (!b.any()) {
    // Deterministic stand-in for Verilog's X result.
    for (auto& word : result.words_) word = ~u64{0};
  } else {
    result.words_[0] = a.toUint64() / b.toUint64();
  }
  result.canonicalize();
  return result;
}

BitVector BitVector::mod(const BitVector& a, const BitVector& b, int width) {
  RTLOCK_REQUIRE(a.width_ <= 64 && b.width_ <= 64,
                 "modulo is defined for operands up to 64 bits");
  BitVector result{width};
  if (!b.any()) {
    for (auto& word : result.words_) word = ~u64{0};
  } else {
    result.words_[0] = a.toUint64() % b.toUint64();
  }
  result.canonicalize();
  return result;
}

BitVector BitVector::pow(const BitVector& a, const BitVector& b, int width) {
  RTLOCK_REQUIRE(a.width_ <= 64 && b.width_ <= 64,
                 "exponentiation is defined for operands up to 64 bits");
  // Square-and-multiply modulo 2^64; truncation to `width` at the end.
  u64 base = a.toUint64();
  u64 exponent = b.toUint64();
  u64 value = 1;
  while (exponent != 0) {
    if ((exponent & 1) != 0) value *= base;
    base *= base;
    exponent >>= 1;
  }
  return BitVector{value, width};
}

BitVector BitVector::neg(const BitVector& a, int width) {
  return sub(BitVector{0, width}, a, width);
}

BitVector BitVector::shl(const BitVector& a, const BitVector& amount, int width) {
  BitVector result{width};
  // Shift amounts >= width zero the result; amounts are capped so huge
  // operands cannot overflow the word arithmetic.
  const u64 rawShift = amount.words_.size() == 1 ? amount.toUint64()
                                                 : (amount.any() ? u64{1} << 20 : 0);
  if (rawShift >= static_cast<u64>(width)) return result;
  const int shift = static_cast<int>(rawShift);
  const int wordShift = shift / 64;
  const int bitShift = shift % 64;
  for (int i = static_cast<int>(result.words_.size()) - 1; i >= wordShift; --i) {
    const std::size_t src = static_cast<std::size_t>(i - wordShift);
    u64 word = src < a.words_.size() ? a.words_[src] << bitShift : 0;
    if (bitShift != 0 && src >= 1 && src - 1 < a.words_.size()) {
      word |= a.words_[src - 1] >> (64 - bitShift);
    }
    result.words_[static_cast<std::size_t>(i)] = word;
  }
  result.canonicalize();
  return result;
}

BitVector BitVector::shr(const BitVector& a, const BitVector& amount, int width) {
  BitVector result{width};
  const u64 rawShift = amount.words_.size() == 1 ? amount.toUint64()
                                                 : (amount.any() ? u64{1} << 20 : 0);
  if (rawShift >= static_cast<u64>(a.width_)) return result;
  const int shift = static_cast<int>(rawShift);
  const int wordShift = shift / 64;
  const int bitShift = shift % 64;
  for (std::size_t i = 0; i < result.words_.size(); ++i) {
    const std::size_t src = i + static_cast<std::size_t>(wordShift);
    u64 word = src < a.words_.size() ? a.words_[src] >> bitShift : 0;
    if (bitShift != 0 && src + 1 < a.words_.size()) {
      word |= a.words_[src + 1] << (64 - bitShift);
    }
    result.words_[i] = word;
  }
  result.canonicalize();
  return result;
}

BitVector BitVector::bitAnd(const BitVector& a, const BitVector& b, int width) {
  BitVector result{width};
  for (std::size_t i = 0; i < result.words_.size(); ++i) {
    const u64 wa = i < a.words_.size() ? a.words_[i] : 0;
    const u64 wb = i < b.words_.size() ? b.words_[i] : 0;
    result.words_[i] = wa & wb;
  }
  result.canonicalize();
  return result;
}

BitVector BitVector::bitOr(const BitVector& a, const BitVector& b, int width) {
  BitVector result{width};
  for (std::size_t i = 0; i < result.words_.size(); ++i) {
    const u64 wa = i < a.words_.size() ? a.words_[i] : 0;
    const u64 wb = i < b.words_.size() ? b.words_[i] : 0;
    result.words_[i] = wa | wb;
  }
  result.canonicalize();
  return result;
}

BitVector BitVector::bitXor(const BitVector& a, const BitVector& b, int width) {
  BitVector result{width};
  for (std::size_t i = 0; i < result.words_.size(); ++i) {
    const u64 wa = i < a.words_.size() ? a.words_[i] : 0;
    const u64 wb = i < b.words_.size() ? b.words_[i] : 0;
    result.words_[i] = wa ^ wb;
  }
  result.canonicalize();
  return result;
}

BitVector BitVector::bitXnor(const BitVector& a, const BitVector& b, int width) {
  BitVector result{width};
  for (std::size_t i = 0; i < result.words_.size(); ++i) {
    const u64 wa = i < a.words_.size() ? a.words_[i] : 0;
    const u64 wb = i < b.words_.size() ? b.words_[i] : 0;
    result.words_[i] = ~(wa ^ wb);
  }
  result.canonicalize();
  return result;
}

BitVector BitVector::bitNot(const BitVector& a, int width) {
  BitVector result{width};
  for (std::size_t i = 0; i < result.words_.size(); ++i) {
    result.words_[i] = ~(i < a.words_.size() ? a.words_[i] : 0);
  }
  result.canonicalize();
  return result;
}

bool BitVector::ult(const BitVector& a, const BitVector& b) noexcept {
  const std::size_t words = std::max(a.words_.size(), b.words_.size());
  for (std::size_t i = words; i-- > 0;) {
    const u64 wa = i < a.words_.size() ? a.words_[i] : 0;
    const u64 wb = i < b.words_.size() ? b.words_[i] : 0;
    if (wa != wb) return wa < wb;
  }
  return false;
}

bool BitVector::ule(const BitVector& a, const BitVector& b) noexcept { return !ult(b, a); }

bool BitVector::eq(const BitVector& a, const BitVector& b) noexcept {
  const std::size_t words = std::max(a.words_.size(), b.words_.size());
  for (std::size_t i = 0; i < words; ++i) {
    const u64 wa = i < a.words_.size() ? a.words_[i] : 0;
    const u64 wb = i < b.words_.size() ? b.words_[i] : 0;
    if (wa != wb) return false;
  }
  return true;
}

BitVector BitVector::slice(int hi, int lo) const {
  RTLOCK_REQUIRE(lo >= 0 && hi >= lo && hi < width_, "slice bounds out of range");
  return shr(*this, BitVector{static_cast<u64>(lo), 32}, width_).resized(hi - lo + 1);
}

BitVector BitVector::concat(const std::vector<BitVector>& parts) {
  RTLOCK_REQUIRE(!parts.empty(), "concat needs at least one part");
  int total = 0;
  for (const auto& part : parts) total += part.width();
  BitVector result{total};
  int offset = total;
  for (const auto& part : parts) {
    offset -= part.width();
    result.insert(offset, part);
  }
  return result;
}

void BitVector::insert(int lo, const BitVector& value) {
  RTLOCK_REQUIRE(lo >= 0 && lo + value.width_ <= width_, "insert out of range");
  for (int i = 0; i < value.width_; ++i) setBit(lo + i, value.bit(i));
}

bool BitVector::operator==(const BitVector& other) const noexcept {
  return width_ == other.width_ && words_ == other.words_;
}

int BitVector::hammingDistance(const BitVector& a, const BitVector& b) {
  RTLOCK_REQUIRE(a.width_ == b.width_, "hamming distance requires equal widths");
  int total = 0;
  for (std::size_t i = 0; i < a.words_.size(); ++i) {
    total += std::popcount(a.words_[i] ^ b.words_[i]);
  }
  return total;
}

}  // namespace rtlock::sim
