#include "sim/bitvector.hpp"

#include <algorithm>
#include <bit>

#include "support/diagnostics.hpp"

namespace rtlock::sim {

namespace {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

}  // namespace

BitVector::BitVector(int width) : width_(width) {
  RTLOCK_REQUIRE(width >= 1, "bit vectors must be at least one bit wide");
  if (width > 64) heap_.assign(static_cast<std::size_t>(wordCountFor(width)), 0);
}

BitVector::BitVector(std::uint64_t value, int width) : BitVector(width) {
  words()[0] = value;
  canonicalize();
}

BitVector BitVector::random(int width, support::Rng& rng) {
  BitVector result{width};
  u64* w = result.words();
  for (int i = 0; i < result.wordCount(); ++i) w[i] = rng();
  result.canonicalize();
  return result;
}

BitVector BitVector::fromWords(const std::uint64_t* words, int width) {
  BitVector result{width};
  std::copy_n(words, result.wordCount(), result.words());
  result.canonicalize();
  return result;
}

void BitVector::writeWords(std::uint64_t* dest) const noexcept {
  std::copy_n(words(), wordCount(), dest);
}

void BitVector::canonicalize() noexcept {
  const int topBits = width_ % 64;
  if (topBits != 0) {
    words()[wordCount() - 1] &= (u64{1} << topBits) - 1;
  }
}

bool BitVector::bit(int index) const {
  RTLOCK_REQUIRE(index >= 0 && index < width_, "bit index out of range");
  return ((words()[index / 64] >> (index % 64)) & 1u) != 0;
}

void BitVector::setBit(int index, bool value) {
  RTLOCK_REQUIRE(index >= 0 && index < width_, "bit index out of range");
  const u64 mask = u64{1} << (index % 64);
  u64& word = words()[index / 64];
  word = value ? (word | mask) : (word & ~mask);
}

std::uint64_t BitVector::toUint64() const noexcept { return words()[0]; }

bool BitVector::any() const noexcept {
  const u64* w = words();
  return std::any_of(w, w + wordCount(), [](u64 word) { return word != 0; });
}

int BitVector::popcount() const noexcept {
  int total = 0;
  const u64* w = words();
  for (int i = 0; i < wordCount(); ++i) total += std::popcount(w[i]);
  return total;
}

std::string BitVector::toBinaryString() const {
  std::string out;
  out.reserve(static_cast<std::size_t>(width_));
  for (int i = width_ - 1; i >= 0; --i) out.push_back(bit(i) ? '1' : '0');
  return out;
}

BitVector BitVector::resized(int width) const {
  BitVector result{width};
  std::copy_n(words(), std::min(result.wordCount(), wordCount()), result.words());
  result.canonicalize();
  return result;
}

BitVector BitVector::add(const BitVector& a, const BitVector& b, int width) {
  BitVector result{width};
  u64* out = result.words();
  u64 carry = 0;
  for (int i = 0; i < result.wordCount(); ++i) {
    const u64 wa = i < a.wordCount() ? a.words()[i] : 0;
    const u64 wb = i < b.wordCount() ? b.words()[i] : 0;
    const u128 sum = static_cast<u128>(wa) + wb + carry;
    out[i] = static_cast<u64>(sum);
    carry = static_cast<u64>(sum >> 64);
  }
  result.canonicalize();
  return result;
}

BitVector BitVector::sub(const BitVector& a, const BitVector& b, int width) {
  BitVector result{width};
  u64* out = result.words();
  u64 borrow = 0;
  for (int i = 0; i < result.wordCount(); ++i) {
    const u64 wa = i < a.wordCount() ? a.words()[i] : 0;
    const u64 wb = i < b.wordCount() ? b.words()[i] : 0;
    const u128 diff = static_cast<u128>(wa) - wb - borrow;
    out[i] = static_cast<u64>(diff);
    borrow = static_cast<u64>((diff >> 64) & 1);
  }
  result.canonicalize();
  return result;
}

BitVector BitVector::mul(const BitVector& a, const BitVector& b, int width) {
  RTLOCK_REQUIRE(a.width_ <= 64 && b.width_ <= 64,
                 "multiplication is defined for operands up to 64 bits");
  const u128 product = static_cast<u128>(a.toUint64()) * b.toUint64();
  BitVector result{width};
  result.words()[0] = static_cast<u64>(product);
  if (result.wordCount() > 1) result.words()[1] = static_cast<u64>(product >> 64);
  result.canonicalize();
  return result;
}

BitVector BitVector::div(const BitVector& a, const BitVector& b, int width) {
  RTLOCK_REQUIRE(a.width_ <= 64 && b.width_ <= 64,
                 "division is defined for operands up to 64 bits");
  BitVector result{width};
  if (!b.any()) {
    // Deterministic stand-in for Verilog's X result.
    u64* out = result.words();
    for (int i = 0; i < result.wordCount(); ++i) out[i] = ~u64{0};
  } else {
    result.words()[0] = a.toUint64() / b.toUint64();
  }
  result.canonicalize();
  return result;
}

BitVector BitVector::mod(const BitVector& a, const BitVector& b, int width) {
  RTLOCK_REQUIRE(a.width_ <= 64 && b.width_ <= 64,
                 "modulo is defined for operands up to 64 bits");
  BitVector result{width};
  if (!b.any()) {
    u64* out = result.words();
    for (int i = 0; i < result.wordCount(); ++i) out[i] = ~u64{0};
  } else {
    result.words()[0] = a.toUint64() % b.toUint64();
  }
  result.canonicalize();
  return result;
}

BitVector BitVector::pow(const BitVector& a, const BitVector& b, int width) {
  RTLOCK_REQUIRE(a.width_ <= 64 && b.width_ <= 64,
                 "exponentiation is defined for operands up to 64 bits");
  // Square-and-multiply modulo 2^64; truncation to `width` at the end.
  u64 base = a.toUint64();
  u64 exponent = b.toUint64();
  u64 value = 1;
  while (exponent != 0) {
    if ((exponent & 1) != 0) value *= base;
    base *= base;
    exponent >>= 1;
  }
  return BitVector{value, width};
}

BitVector BitVector::neg(const BitVector& a, int width) {
  return sub(BitVector{0, width}, a, width);
}

BitVector BitVector::shl(const BitVector& a, const BitVector& amount, int width) {
  BitVector result{width};
  // Shift amounts >= width zero the result; amounts are capped so huge
  // operands cannot overflow the word arithmetic.
  const u64 rawShift = amount.wordCount() == 1 ? amount.toUint64()
                                               : (amount.any() ? u64{1} << 20 : 0);
  if (rawShift >= static_cast<u64>(width)) return result;
  const int shift = static_cast<int>(rawShift);
  const int wordShift = shift / 64;
  const int bitShift = shift % 64;
  u64* out = result.words();
  for (int i = result.wordCount() - 1; i >= wordShift; --i) {
    const int src = i - wordShift;
    u64 word = src < a.wordCount() ? a.words()[src] << bitShift : 0;
    if (bitShift != 0 && src >= 1 && src - 1 < a.wordCount()) {
      word |= a.words()[src - 1] >> (64 - bitShift);
    }
    out[i] = word;
  }
  result.canonicalize();
  return result;
}

BitVector BitVector::shr(const BitVector& a, const BitVector& amount, int width) {
  BitVector result{width};
  const u64 rawShift = amount.wordCount() == 1 ? amount.toUint64()
                                               : (amount.any() ? u64{1} << 20 : 0);
  if (rawShift >= static_cast<u64>(a.width_)) return result;
  const int shift = static_cast<int>(rawShift);
  const int wordShift = shift / 64;
  const int bitShift = shift % 64;
  u64* out = result.words();
  for (int i = 0; i < result.wordCount(); ++i) {
    const int src = i + wordShift;
    u64 word = src < a.wordCount() ? a.words()[src] >> bitShift : 0;
    if (bitShift != 0 && src + 1 < a.wordCount()) {
      word |= a.words()[src + 1] << (64 - bitShift);
    }
    out[i] = word;
  }
  result.canonicalize();
  return result;
}

BitVector BitVector::bitAnd(const BitVector& a, const BitVector& b, int width) {
  BitVector result{width};
  u64* out = result.words();
  for (int i = 0; i < result.wordCount(); ++i) {
    const u64 wa = i < a.wordCount() ? a.words()[i] : 0;
    const u64 wb = i < b.wordCount() ? b.words()[i] : 0;
    out[i] = wa & wb;
  }
  result.canonicalize();
  return result;
}

BitVector BitVector::bitOr(const BitVector& a, const BitVector& b, int width) {
  BitVector result{width};
  u64* out = result.words();
  for (int i = 0; i < result.wordCount(); ++i) {
    const u64 wa = i < a.wordCount() ? a.words()[i] : 0;
    const u64 wb = i < b.wordCount() ? b.words()[i] : 0;
    out[i] = wa | wb;
  }
  result.canonicalize();
  return result;
}

BitVector BitVector::bitXor(const BitVector& a, const BitVector& b, int width) {
  BitVector result{width};
  u64* out = result.words();
  for (int i = 0; i < result.wordCount(); ++i) {
    const u64 wa = i < a.wordCount() ? a.words()[i] : 0;
    const u64 wb = i < b.wordCount() ? b.words()[i] : 0;
    out[i] = wa ^ wb;
  }
  result.canonicalize();
  return result;
}

BitVector BitVector::bitXnor(const BitVector& a, const BitVector& b, int width) {
  BitVector result{width};
  u64* out = result.words();
  for (int i = 0; i < result.wordCount(); ++i) {
    const u64 wa = i < a.wordCount() ? a.words()[i] : 0;
    const u64 wb = i < b.wordCount() ? b.words()[i] : 0;
    out[i] = ~(wa ^ wb);
  }
  result.canonicalize();
  return result;
}

BitVector BitVector::bitNot(const BitVector& a, int width) {
  BitVector result{width};
  u64* out = result.words();
  for (int i = 0; i < result.wordCount(); ++i) {
    out[i] = ~(i < a.wordCount() ? a.words()[i] : 0);
  }
  result.canonicalize();
  return result;
}

bool BitVector::ult(const BitVector& a, const BitVector& b) noexcept {
  const int wordCount = std::max(a.wordCount(), b.wordCount());
  for (int i = wordCount; i-- > 0;) {
    const u64 wa = i < a.wordCount() ? a.words()[i] : 0;
    const u64 wb = i < b.wordCount() ? b.words()[i] : 0;
    if (wa != wb) return wa < wb;
  }
  return false;
}

bool BitVector::ule(const BitVector& a, const BitVector& b) noexcept { return !ult(b, a); }

bool BitVector::eq(const BitVector& a, const BitVector& b) noexcept {
  const int wordCount = std::max(a.wordCount(), b.wordCount());
  for (int i = 0; i < wordCount; ++i) {
    const u64 wa = i < a.wordCount() ? a.words()[i] : 0;
    const u64 wb = i < b.wordCount() ? b.words()[i] : 0;
    if (wa != wb) return false;
  }
  return true;
}

BitVector BitVector::slice(int hi, int lo) const {
  RTLOCK_REQUIRE(lo >= 0 && hi >= lo && hi < width_, "slice bounds out of range");
  return shr(*this, BitVector{static_cast<u64>(lo), 32}, width_).resized(hi - lo + 1);
}

BitVector BitVector::concat(const std::vector<BitVector>& parts) {
  RTLOCK_REQUIRE(!parts.empty(), "concat needs at least one part");
  int total = 0;
  for (const auto& part : parts) total += part.width();
  BitVector result{total};
  int offset = total;
  for (const auto& part : parts) {
    offset -= part.width();
    result.insert(offset, part);
  }
  return result;
}

void BitVector::insert(int lo, const BitVector& value) {
  RTLOCK_REQUIRE(lo >= 0 && lo + value.width_ <= width_, "insert out of range");
  for (int i = 0; i < value.width_; ++i) setBit(lo + i, value.bit(i));
}

bool BitVector::operator==(const BitVector& other) const noexcept {
  if (width_ != other.width_) return false;
  return std::equal(words(), words() + wordCount(), other.words());
}

int BitVector::hammingDistance(const BitVector& a, const BitVector& b) {
  RTLOCK_REQUIRE(a.width_ == b.width_, "hamming distance requires equal widths");
  int total = 0;
  for (int i = 0; i < a.wordCount(); ++i) {
    total += std::popcount(a.words()[i] ^ b.words()[i]);
  }
  return total;
}

}  // namespace rtlock::sim
