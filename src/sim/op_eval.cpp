#include "sim/op_eval.hpp"

#include "support/diagnostics.hpp"

namespace rtlock::sim {

using rtl::OpKind;
using rtl::UnaryOp;

BitVector evalBinaryOp(OpKind op, const BitVector& lhs, const BitVector& rhs, int width) {
  switch (op) {
    case OpKind::Add: return BitVector::add(lhs, rhs, width);
    case OpKind::Sub: return BitVector::sub(lhs, rhs, width);
    case OpKind::Mul: return BitVector::mul(lhs, rhs, width);
    case OpKind::Div: return BitVector::div(lhs, rhs, width);
    case OpKind::Mod: return BitVector::mod(lhs, rhs, width);
    case OpKind::Pow: return BitVector::pow(lhs, rhs, width);
    case OpKind::Shl: return BitVector::shl(lhs, rhs, width);
    // Unsigned semantics: >>> behaves as logical shift (signed nets are
    // outside the subset).
    case OpKind::Shr:
    case OpKind::AShr: return BitVector::shr(lhs, rhs, width);
    case OpKind::And: return BitVector::bitAnd(lhs, rhs, width);
    case OpKind::Or: return BitVector::bitOr(lhs, rhs, width);
    case OpKind::Xor: return BitVector::bitXor(lhs, rhs, width);
    case OpKind::Xnor: return BitVector::bitXnor(lhs, rhs, width);
    case OpKind::Lt: return BitVector{BitVector::ult(lhs, rhs) ? 1u : 0u, 1};
    case OpKind::Gt: return BitVector{BitVector::ult(rhs, lhs) ? 1u : 0u, 1};
    case OpKind::Le: return BitVector{BitVector::ule(lhs, rhs) ? 1u : 0u, 1};
    case OpKind::Ge: return BitVector{BitVector::ule(rhs, lhs) ? 1u : 0u, 1};
    case OpKind::Eq: return BitVector{BitVector::eq(lhs, rhs) ? 1u : 0u, 1};
    case OpKind::Ne: return BitVector{BitVector::eq(lhs, rhs) ? 0u : 1u, 1};
    case OpKind::LAnd: return BitVector{lhs.any() && rhs.any() ? 1u : 0u, 1};
    case OpKind::LOr: return BitVector{lhs.any() || rhs.any() ? 1u : 0u, 1};
  }
  RTLOCK_UNREACHABLE("binary operator");
}

BitVector evalUnaryOp(UnaryOp op, const BitVector& operand, int width) {
  switch (op) {
    case UnaryOp::Neg: return BitVector::neg(operand, width);
    case UnaryOp::BitNot: return BitVector::bitNot(operand, width);
    case UnaryOp::LogNot: return BitVector{operand.any() ? 0u : 1u, 1};
    case UnaryOp::RedAnd:
      return BitVector{operand.popcount() == operand.width() ? 1u : 0u, 1};
    case UnaryOp::RedOr: return BitVector{operand.any() ? 1u : 0u, 1};
    case UnaryOp::RedXor: return BitVector{(operand.popcount() & 1) != 0 ? 1u : 0u, 1};
  }
  RTLOCK_UNREACHABLE("unary operator");
}

}  // namespace rtlock::sim
