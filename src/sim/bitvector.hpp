// Arbitrary-width two-state bit vectors for RTL simulation.
//
// Two-state semantics (no X/Z) are sufficient for the paper's experiments:
// functional equivalence under the correct key and output corruption under
// wrong keys are both defined over fully-specified stimuli.
//
// Representation: little-endian array of 64-bit words; unused high bits of
// the top word are kept zero (canonical form) so equality is word-wise.
// Widths up to 64 bits (the overwhelmingly common case) live in an inline
// word with no heap allocation; only wider vectors spill to a heap-backed
// word array.  Multiplication, division, modulo and exponentiation are
// defined for operands up to 64 bits (the subset limit for named signals);
// wider values only arise through concatenation, where linear ops
// (add/sub/shift/bitwise/compare) remain fully supported.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/rng.hpp"

namespace rtlock::sim {

class BitVector {
 public:
  /// Zero-valued vector of the given width.
  explicit BitVector(int width = 1);

  /// Low-width bits of `value`.
  BitVector(std::uint64_t value, int width);

  [[nodiscard]] static BitVector random(int width, support::Rng& rng);

  [[nodiscard]] int width() const noexcept { return width_; }

  /// Value of bit `index` (0 = LSB).
  [[nodiscard]] bool bit(int index) const;
  void setBit(int index, bool value);

  /// Low 64 bits.
  [[nodiscard]] std::uint64_t toUint64() const noexcept;

  /// True iff any bit is set.
  [[nodiscard]] bool any() const noexcept;

  /// Number of set bits.
  [[nodiscard]] int popcount() const noexcept;

  /// Binary string, MSB first (for diagnostics).
  [[nodiscard]] std::string toBinaryString() const;

  /// Returns a copy resized to `width` (zero-extend or truncate).
  [[nodiscard]] BitVector resized(int width) const;

  // ---- arithmetic (results truncated to the stated width) ----
  [[nodiscard]] static BitVector add(const BitVector& a, const BitVector& b, int width);
  [[nodiscard]] static BitVector sub(const BitVector& a, const BitVector& b, int width);
  [[nodiscard]] static BitVector mul(const BitVector& a, const BitVector& b, int width);
  /// Division by zero yields all-ones (deterministic stand-in for Verilog X).
  [[nodiscard]] static BitVector div(const BitVector& a, const BitVector& b, int width);
  [[nodiscard]] static BitVector mod(const BitVector& a, const BitVector& b, int width);
  [[nodiscard]] static BitVector pow(const BitVector& a, const BitVector& b, int width);
  [[nodiscard]] static BitVector neg(const BitVector& a, int width);

  // ---- shifts ----
  [[nodiscard]] static BitVector shl(const BitVector& a, const BitVector& amount, int width);
  [[nodiscard]] static BitVector shr(const BitVector& a, const BitVector& amount, int width);

  // ---- bitwise ----
  [[nodiscard]] static BitVector bitAnd(const BitVector& a, const BitVector& b, int width);
  [[nodiscard]] static BitVector bitOr(const BitVector& a, const BitVector& b, int width);
  [[nodiscard]] static BitVector bitXor(const BitVector& a, const BitVector& b, int width);
  [[nodiscard]] static BitVector bitXnor(const BitVector& a, const BitVector& b, int width);
  [[nodiscard]] static BitVector bitNot(const BitVector& a, int width);

  // ---- comparisons (unsigned) ----
  [[nodiscard]] static bool ult(const BitVector& a, const BitVector& b) noexcept;
  [[nodiscard]] static bool ule(const BitVector& a, const BitVector& b) noexcept;
  [[nodiscard]] static bool eq(const BitVector& a, const BitVector& b) noexcept;

  // ---- structure ----
  [[nodiscard]] BitVector slice(int hi, int lo) const;
  /// parts[0] is most significant (Verilog {a, b} order).
  [[nodiscard]] static BitVector concat(const std::vector<BitVector>& parts);
  /// Writes `value` into bits [lo, lo+value.width()) of this vector.
  void insert(int lo, const BitVector& value);

  [[nodiscard]] bool operator==(const BitVector& other) const noexcept;

  /// Number of differing bits between equal-width vectors.
  [[nodiscard]] static int hammingDistance(const BitVector& a, const BitVector& b);

  // ---- raw word access (the compiled simulator's value arena) ----

  /// Words needed to hold `width` bits.
  [[nodiscard]] static int wordCountFor(int width) noexcept { return (width + 63) / 64; }

  /// Wraps `wordCountFor(width)` little-endian words as a vector of `width`
  /// bits (high bits of the top word are masked off).
  [[nodiscard]] static BitVector fromWords(const std::uint64_t* words, int width);

  /// Copies the canonical words into `dest` (`wordCountFor(width())` words).
  void writeWords(std::uint64_t* dest) const noexcept;

 private:
  [[nodiscard]] int wordCount() const noexcept { return wordCountFor(width_); }
  [[nodiscard]] const std::uint64_t* words() const noexcept {
    return width_ <= 64 ? &inline_ : heap_.data();
  }
  [[nodiscard]] std::uint64_t* words() noexcept {
    return width_ <= 64 ? &inline_ : heap_.data();
  }
  void canonicalize() noexcept;

  int width_;
  std::uint64_t inline_ = 0;         // storage for widths <= 64 (no heap)
  std::vector<std::uint64_t> heap_;  // all words for widths > 64
};

}  // namespace rtlock::sim
