#include "sim/compiled_sim.hpp"

#include <algorithm>
#include <bit>

#include "sim/compiler.hpp"
#include "sim/op_eval.hpp"

namespace rtlock::sim {

namespace {

using u64 = std::uint64_t;

u64 powU64(u64 base, u64 exponent) noexcept {
  // Square-and-multiply modulo 2^64 (same semantics as BitVector::pow).
  u64 value = 1;
  while (exponent != 0) {
    if ((exponent & 1) != 0) value *= base;
    base *= base;
    exponent >>= 1;
  }
  return value;
}

}  // namespace

CompiledSim::CompiledSim(const rtl::Module& module)
    : CompiledSim(std::make_shared<const Program>(Compiler::compile(module))) {}

CompiledSim::CompiledSim(std::shared_ptr<const Program> program)
    : program_(std::move(program)), words_(program_->initialWords()) {
  if (program_->keyWidth() > 0) key_ = BitVector{program_->keyWidth()};
}

void CompiledSim::reset() {
  words_ = program_->initialWords();
  if (program_->keyWidth() > 0) key_ = BitVector{program_->keyWidth()};
}

void CompiledSim::setValue(rtl::SignalId signal, const BitVector& value) {
  const Slot& slot = program_->signalSlot(signal);
  value.resized(slot.width).writeWords(&words_[static_cast<std::size_t>(slot.offset)]);
}

BitVector CompiledSim::value(rtl::SignalId signal) const {
  const Slot& slot = program_->signalSlot(signal);
  return BitVector::fromWords(&words_[static_cast<std::size_t>(slot.offset)], slot.width);
}

void CompiledSim::setKey(const BitVector& key) {
  RTLOCK_REQUIRE(program_->keyWidth() > 0, "module has no key input");
  key_ = key.resized(program_->keyWidth());
  for (const KeyBinding& binding : program_->keyBindings()) {
    const Slot& slot = program_->slots()[static_cast<std::size_t>(binding.slot)];
    key_.slice(binding.firstBit + binding.width - 1, binding.firstBit)
        .writeWords(&words_[static_cast<std::size_t>(slot.offset)]);
  }
}

void CompiledSim::settle() { exec(program_->combTape()); }

void CompiledSim::clockEdge(rtl::SignalId clock) {
  for (const SequentialTape& seq : program_->sequentialTapes()) {
    if (seq.clock != clock) continue;
    // Seed shadows from the live values so partial (if/case-guarded or
    // sliced) updates keep unwritten bits, then run the tape against the
    // pre-edge state and commit.
    for (const ShadowCopy& copy : seq.shadows) {
      std::copy_n(&words_[static_cast<std::size_t>(copy.liveOffset)], copy.words,
                  &words_[static_cast<std::size_t>(copy.shadowOffset)]);
    }
    exec(seq.tape);
    for (const ShadowCopy& copy : seq.shadows) {
      std::copy_n(&words_[static_cast<std::size_t>(copy.shadowOffset)], copy.words,
                  &words_[static_cast<std::size_t>(copy.liveOffset)]);
    }
  }
  settle();
}

BitVector CompiledSim::load(std::int32_t slotId) const {
  const Slot& slot = program_->slots()[static_cast<std::size_t>(slotId)];
  return BitVector::fromWords(&words_[static_cast<std::size_t>(slot.offset)], slot.width);
}

void CompiledSim::store(std::int32_t slotId, const BitVector& value) {
  const Slot& slot = program_->slots()[static_cast<std::size_t>(slotId)];
  u64* dest = &words_[static_cast<std::size_t>(slot.offset)];
  if (value.width() == slot.width) {
    value.writeWords(dest);
  } else {
    value.resized(slot.width).writeWords(dest);
  }
}

void CompiledSim::exec(const std::vector<Instr>& tape) {
  u64* const w = words_.data();
  const std::size_t size = tape.size();
  for (std::size_t pc = 0; pc < size; ++pc) {
    const Instr& in = tape[pc];
    switch (in.op) {
      case Opcode::Copy: w[in.dst] = w[in.a] & narrowMask(in.width); break;
      case Opcode::Add: w[in.dst] = (w[in.a] + w[in.b]) & narrowMask(in.width); break;
      case Opcode::Sub: w[in.dst] = (w[in.a] - w[in.b]) & narrowMask(in.width); break;
      case Opcode::Mul: w[in.dst] = (w[in.a] * w[in.b]) & narrowMask(in.width); break;
      case Opcode::Div:
        w[in.dst] = w[in.b] == 0 ? narrowMask(in.width)
                                 : (w[in.a] / w[in.b]) & narrowMask(in.width);
        break;
      case Opcode::Mod:
        w[in.dst] = w[in.b] == 0 ? narrowMask(in.width)
                                 : (w[in.a] % w[in.b]) & narrowMask(in.width);
        break;
      case Opcode::Pow:
        w[in.dst] = powU64(w[in.a], w[in.b]) & narrowMask(in.width);
        break;
      case Opcode::Shl: {
        const u64 amount = w[in.b];
        w[in.dst] = amount >= static_cast<u64>(in.width)
                        ? 0
                        : (w[in.a] << amount) & narrowMask(in.width);
        break;
      }
      case Opcode::Shr: {
        const u64 amount = w[in.b];
        w[in.dst] = amount >= static_cast<u64>(in.c)
                        ? 0
                        : (w[in.a] >> amount) & narrowMask(in.width);
        break;
      }
      case Opcode::And: w[in.dst] = w[in.a] & w[in.b]; break;
      case Opcode::Or: w[in.dst] = w[in.a] | w[in.b]; break;
      case Opcode::Xor: w[in.dst] = w[in.a] ^ w[in.b]; break;
      case Opcode::Xnor: w[in.dst] = ~(w[in.a] ^ w[in.b]) & narrowMask(in.width); break;
      case Opcode::Lt: w[in.dst] = w[in.a] < w[in.b] ? 1 : 0; break;
      case Opcode::Le: w[in.dst] = w[in.a] <= w[in.b] ? 1 : 0; break;
      case Opcode::Eq: w[in.dst] = w[in.a] == w[in.b] ? 1 : 0; break;
      case Opcode::Ne: w[in.dst] = w[in.a] != w[in.b] ? 1 : 0; break;
      case Opcode::LAnd: w[in.dst] = w[in.a] != 0 && w[in.b] != 0 ? 1 : 0; break;
      case Opcode::LOr: w[in.dst] = w[in.a] != 0 || w[in.b] != 0 ? 1 : 0; break;
      case Opcode::Neg: w[in.dst] = (0 - w[in.a]) & narrowMask(in.width); break;
      case Opcode::Not: w[in.dst] = ~w[in.a] & narrowMask(in.width); break;
      case Opcode::LogNot: w[in.dst] = w[in.a] == 0 ? 1 : 0; break;
      case Opcode::RedAnd: w[in.dst] = std::popcount(w[in.a]) == in.b ? 1 : 0; break;
      case Opcode::RedOr: w[in.dst] = w[in.a] != 0 ? 1 : 0; break;
      case Opcode::RedXor: w[in.dst] = static_cast<u64>(std::popcount(w[in.a])) & 1; break;
      case Opcode::Select:
        w[in.dst] = (w[in.a] != 0 ? w[in.b] : w[in.c]) & narrowMask(in.width);
        break;
      case Opcode::SliceLow: w[in.dst] = (w[in.a] >> in.b) & narrowMask(in.width); break;
      case Opcode::ShlConst: RTLOCK_UNREACHABLE("ShlConst only occurs in sliced tapes");
      case Opcode::ConcatPair:
        w[in.dst] = ((w[in.a] << in.c) | w[in.b]) & narrowMask(in.width);
        break;
      case Opcode::Insert: {
        const u64 mask = narrowMask(in.c);
        w[in.dst] = (w[in.dst] & ~(mask << in.b)) | ((w[in.a] & mask) << in.b);
        break;
      }
      case Opcode::Jump: pc = static_cast<std::size_t>(in.dst) - 1; break;
      case Opcode::JumpIfZero:
        if (w[in.a] == 0) pc = static_cast<std::size_t>(in.dst) - 1;
        break;
      case Opcode::JumpIfEq:
        if (w[in.a] == w[in.b]) pc = static_cast<std::size_t>(in.dst) - 1;
        break;
      case Opcode::WideBinary:
        store(in.dst, evalBinaryOp(static_cast<rtl::OpKind>(in.c), load(in.a), load(in.b),
                                   program_->slots()[static_cast<std::size_t>(in.dst)].width));
        break;
      case Opcode::WideUnary:
        store(in.dst, evalUnaryOp(static_cast<rtl::UnaryOp>(in.c), load(in.a),
                                  program_->slots()[static_cast<std::size_t>(in.dst)].width));
        break;
      case Opcode::WideSelect: {
        const int width = program_->slots()[static_cast<std::size_t>(in.dst)].width;
        store(in.dst, (load(in.a).any() ? load(in.b) : load(in.c)).resized(width));
        break;
      }
      case Opcode::WideConcat: {
        std::vector<BitVector> parts;
        parts.reserve(static_cast<std::size_t>(in.b));
        for (std::int32_t i = 0; i < in.b; ++i) {
          parts.push_back(load(program_->argPool()[static_cast<std::size_t>(in.a + i)]));
        }
        store(in.dst, BitVector::concat(parts));
        break;
      }
      case Opcode::WideSlice: {
        const int width = program_->slots()[static_cast<std::size_t>(in.dst)].width;
        store(in.dst, load(in.a).slice(in.b + width - 1, in.b));
        break;
      }
      case Opcode::WideCopy: {
        const int width = program_->slots()[static_cast<std::size_t>(in.dst)].width;
        store(in.dst, load(in.a).resized(width));
        break;
      }
      case Opcode::WideInsert: {
        BitVector target = load(in.dst);
        target.insert(in.b, load(in.a).resized(in.c));
        store(in.dst, target);
        break;
      }
    }
  }
}

std::vector<std::vector<BitVector>> CompiledSim::runVectors(
    const BatchRequest& request, const std::vector<std::vector<BitVector>>& stimuli,
    const std::vector<BitVector>& keys) {
  RTLOCK_REQUIRE(request.cycles >= 1, "batch runs need at least one cycle");
  RTLOCK_REQUIRE(keys.empty() || keys.size() == stimuli.size(),
                 "runVectors needs no keys or one key per stimulus vector");
  const std::size_t inputCount = request.inputs.size();
  const std::size_t samplesPerCycle = request.clock.has_value() ? 2 : 1;

  std::vector<std::vector<BitVector>> traces;
  traces.reserve(stimuli.size());
  for (std::size_t vector = 0; vector < stimuli.size(); ++vector) {
    const std::vector<BitVector>& stimulus = stimuli[vector];
    RTLOCK_REQUIRE(stimulus.size() ==
                       inputCount * static_cast<std::size_t>(request.cycles),
                   "stimulus vector size must be cycles * inputs");
    reset();
    if (!keys.empty()) setKey(keys[vector]);

    std::vector<BitVector> trace;
    trace.reserve(static_cast<std::size_t>(request.cycles) * samplesPerCycle *
                  request.outputs.size());
    for (int cycle = 0; cycle < request.cycles; ++cycle) {
      for (std::size_t i = 0; i < inputCount; ++i) {
        setValue(request.inputs[i],
                 stimulus[static_cast<std::size_t>(cycle) * inputCount + i]);
      }
      settle();
      for (const rtl::SignalId output : request.outputs) trace.push_back(value(output));
      if (request.clock.has_value()) {
        clockEdge(*request.clock);
        for (const rtl::SignalId output : request.outputs) trace.push_back(value(output));
      }
    }
    traces.push_back(std::move(trace));
  }
  return traces;
}

}  // namespace rtlock::sim
