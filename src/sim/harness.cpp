#include "sim/harness.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <vector>

namespace rtlock::sim {

namespace {

using rtl::Module;
using rtl::PortDir;
using rtl::SignalId;

/// Bits [0, lanes) set: the active-lane mask of a partially filled chunk.
constexpr std::uint64_t laneMask(int lanes) noexcept {
  return lanes >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << lanes) - 1;
}

}  // namespace

Harness::Harness(const Module& golden, const Module& candidate, SimBackend backend)
    : goldenLocked_(golden.keyWidth() > 0),
      candidateLocked_(candidate.keyWidth() > 0),
      backend_(backend) {
  if (backend_ == SimBackend::Compiled) {
    golden_.emplace(golden);
    candidate_.emplace(candidate);
  } else {
    goldenSliced_.emplace(golden);
    candidateSliced_.emplace(candidate);
  }

  // Single-clock designs: a clock is any signal driving a sequential process.
  std::optional<SignalId> goldenClock;
  for (const auto& process : golden.processes()) {
    if (process->kind == rtl::ProcessKind::Sequential) {
      goldenClock = process->clock;
      break;
    }
  }

  for (const SignalId id : golden.ports()) {
    const auto& signal = golden.signal(id);
    const auto other = candidate.findSignal(signal.name);
    RTLOCK_REQUIRE(other.has_value(),
                   "candidate module is missing port '" + signal.name + "'");
    RTLOCK_REQUIRE(candidate.signal(*other).width == signal.width,
                   "port width mismatch on '" + signal.name + "'");
    PortPair pair;
    pair.golden = id;
    pair.candidate = *other;
    pair.width = signal.width;
    pair.name = signal.name;
    if (signal.dir == PortDir::Input) {
      if (goldenClock && *goldenClock == id) {
        clock_ = pair;
      } else {
        inputs_.push_back(pair);
      }
    } else {
      outputs_.push_back(pair);
    }
  }
}

void Harness::beginVector(const BitVector& candidateKey, bool keyGolden) {
  golden_->reset();
  candidate_->reset();
  if (candidateLocked_) candidate_->setKey(candidateKey);
  if (keyGolden && goldenLocked_) {
    // Comparing two locked modules: drive the golden one with the same key.
    golden_->setKey(candidateKey);
  }
}

std::vector<std::vector<BitVector>> Harness::drawStimuli(const EquivalenceOptions& options,
                                                         support::Rng& rng) const {
  const int cycles = clock_.has_value() ? options.cyclesPerVector : 1;
  std::vector<std::vector<BitVector>> stimuli(static_cast<std::size_t>(options.vectors));
  for (auto& stimulus : stimuli) {
    stimulus.reserve(static_cast<std::size_t>(cycles) * inputs_.size());
    for (int cycle = 0; cycle < cycles; ++cycle) {
      for (const auto& pair : inputs_) stimulus.push_back(BitVector::random(pair.width, rng));
    }
  }
  return stimuli;
}

std::optional<Mismatch> Harness::findMismatch(const BitVector& candidateKey,
                                              const EquivalenceOptions& options,
                                              support::Rng& rng) {
  if (backend_ == SimBackend::Sliced) return findMismatchSliced(candidateKey, options, rng);
  const bool sequential = clock_.has_value();

  for (int vector = 0; vector < options.vectors; ++vector) {
    beginVector(candidateKey, /*keyGolden=*/true);

    const int cycles = sequential ? options.cyclesPerVector : 1;
    for (int cycle = 0; cycle < cycles; ++cycle) {
      for (const auto& pair : inputs_) {
        const BitVector stimulus = BitVector::random(pair.width, rng);
        golden_->setValue(pair.golden, stimulus);
        candidate_->setValue(pair.candidate, stimulus);
      }
      golden_->settle();
      candidate_->settle();

      for (const auto& pair : outputs_) {
        if (!(golden_->value(pair.golden) == candidate_->value(pair.candidate))) {
          return Mismatch{pair.name, vector, cycle};
        }
      }

      if (sequential) {
        golden_->clockEdge(clock_->golden);
        candidate_->clockEdge(clock_->candidate);
        for (const auto& pair : outputs_) {
          if (!(golden_->value(pair.golden) == candidate_->value(pair.candidate))) {
            return Mismatch{pair.name, vector, cycle};
          }
        }
      }
    }
  }
  return std::nullopt;
}

std::optional<Mismatch> Harness::findMismatchSliced(const BitVector& candidateKey,
                                                    const EquivalenceOptions& options,
                                                    support::Rng& rng) {
  const int cycles = clock_.has_value() ? options.cyclesPerVector : 1;
  std::vector<BitVector> laneValues;

  for (int base = 0; base < options.vectors; base += SlicedSim::kLanes) {
    const int active = std::min(SlicedSim::kLanes, options.vectors - base);
    // Draw the chunk's stimuli before evaluating any of it, in the scalar
    // order (vector -> cycle -> input) so both backends see the same values.
    EquivalenceOptions chunk = options;
    chunk.vectors = active;
    const auto stimuli = drawStimuli(chunk, rng);

    goldenSliced_->reset();
    candidateSliced_->reset();
    if (candidateLocked_) candidateSliced_->setKey(candidateKey);
    if (goldenLocked_) goldenSliced_->setKey(candidateKey);

    const std::uint64_t activeMask = laneMask(active);
    // Per-lane first mismatch in (cycle, phase, output) order; the scalar
    // backend would fully simulate vector v before looking at v+1, so the
    // reported hit is the LOWEST mismatching lane's own first hit.
    std::uint64_t found = 0;
    struct Hit {
      int output = 0;
      int cycle = 0;
    };
    std::array<Hit, SlicedSim::kLanes> hits{};

    const auto sample = [&](int cycle) {
      for (std::size_t o = 0; o < outputs_.size(); ++o) {
        const PortPair& pair = outputs_[o];
        const std::uint64_t* g = goldenSliced_->signalPlanes(pair.golden);
        const std::uint64_t* c = candidateSliced_->signalPlanes(pair.candidate);
        std::uint64_t diff = 0;
        for (int b = 0; b < pair.width; ++b) diff |= g[b] ^ c[b];
        std::uint64_t fresh = diff & activeMask & ~found;
        found |= diff & activeMask;
        while (fresh != 0) {
          const int lane = std::countr_zero(fresh);
          fresh &= fresh - 1;
          hits[static_cast<std::size_t>(lane)] = {static_cast<int>(o), cycle};
        }
      }
    };

    for (int cycle = 0; cycle < cycles && found != activeMask; ++cycle) {
      for (std::size_t i = 0; i < inputs_.size(); ++i) {
        laneValues.clear();
        for (int lane = 0; lane < active; ++lane) {
          laneValues.push_back(stimuli[static_cast<std::size_t>(lane)]
                                      [static_cast<std::size_t>(cycle) * inputs_.size() + i]);
        }
        goldenSliced_->setLaneValues(inputs_[i].golden, laneValues);
        candidateSliced_->setLaneValues(inputs_[i].candidate, laneValues);
      }
      goldenSliced_->settle();
      candidateSliced_->settle();
      sample(cycle);
      if (clock_.has_value() && found != activeMask) {
        goldenSliced_->clockEdge(clock_->golden);
        candidateSliced_->clockEdge(clock_->candidate);
        sample(cycle);
      }
    }
    if (found != 0) {
      const int lane = std::countr_zero(found);
      const Hit& hit = hits[static_cast<std::size_t>(lane)];
      return Mismatch{outputs_[static_cast<std::size_t>(hit.output)].name, base + lane,
                      hit.cycle};
    }
  }
  return std::nullopt;
}

double Harness::outputCorruption(const BitVector& key, const EquivalenceOptions& options,
                                 support::Rng& rng) {
  if (backend_ == SimBackend::Sliced) {
    return outputCorruptionBatch(std::span<const BitVector>{&key, 1}, options, rng).front();
  }
  const bool sequential = clock_.has_value();

  std::int64_t differingBits = 0;
  std::int64_t totalBits = 0;

  for (int vector = 0; vector < options.vectors; ++vector) {
    // The golden module keeps its zero key: corruption is always measured
    // against the unlocked behaviour, even if the golden design is locked.
    beginVector(key, /*keyGolden=*/false);

    const int cycles = sequential ? options.cyclesPerVector : 1;
    for (int cycle = 0; cycle < cycles; ++cycle) {
      for (const auto& pair : inputs_) {
        const BitVector stimulus = BitVector::random(pair.width, rng);
        golden_->setValue(pair.golden, stimulus);
        candidate_->setValue(pair.candidate, stimulus);
      }
      golden_->settle();
      candidate_->settle();
      for (const auto& pair : outputs_) {
        differingBits += BitVector::hammingDistance(golden_->value(pair.golden),
                                                    candidate_->value(pair.candidate));
        totalBits += pair.width;
      }
      if (sequential) {
        golden_->clockEdge(clock_->golden);
        candidate_->clockEdge(clock_->candidate);
      }
    }
  }
  return totalBits == 0 ? 0.0 : static_cast<double>(differingBits) / static_cast<double>(totalBits);
}

std::vector<double> Harness::outputCorruptionBatch(std::span<const BitVector> keys,
                                                   const EquivalenceOptions& options,
                                                   support::Rng& rng) {
  if (keys.empty()) return {};
  const int cycles = clock_.has_value() ? options.cyclesPerVector : 1;
  const auto stimuli = drawStimuli(options, rng);

  std::int64_t outputWidth = 0;
  for (const PortPair& pair : outputs_) outputWidth += pair.width;
  const std::int64_t totalBits = outputWidth * cycles * options.vectors;  // same per key
  std::vector<std::int64_t> differing(keys.size(), 0);

  if (backend_ == SimBackend::Compiled) {
    // Oracle path: replay the shared stimuli per key, one vector at a time.
    for (std::size_t k = 0; k < keys.size(); ++k) {
      for (int vector = 0; vector < options.vectors; ++vector) {
        beginVector(keys[k], /*keyGolden=*/false);
        for (int cycle = 0; cycle < cycles; ++cycle) {
          for (std::size_t i = 0; i < inputs_.size(); ++i) {
            const BitVector& stimulus =
                stimuli[static_cast<std::size_t>(vector)]
                       [static_cast<std::size_t>(cycle) * inputs_.size() + i];
            golden_->setValue(inputs_[i].golden, stimulus);
            candidate_->setValue(inputs_[i].candidate, stimulus);
          }
          golden_->settle();
          candidate_->settle();
          for (const PortPair& pair : outputs_) {
            differing[k] += BitVector::hammingDistance(golden_->value(pair.golden),
                                                       candidate_->value(pair.candidate));
          }
          if (clock_.has_value()) {
            golden_->clockEdge(clock_->golden);
            candidate_->clockEdge(clock_->candidate);
          }
        }
      }
    }
  } else {
    // Lane L of a chunk starting at `base` is the (key, vector) pair number
    // base+L in key-major order, so each key's lanes are one contiguous run
    // per chunk and its popcounts use a single mask.
    const std::int64_t vectors = options.vectors;
    const std::int64_t lanesTotal = static_cast<std::int64_t>(keys.size()) * vectors;
    struct KeySlice {
      std::size_t key = 0;
      std::uint64_t mask = 0;
    };
    std::vector<KeySlice> slices;
    std::vector<BitVector> sliceKeys;
    std::vector<std::uint64_t> sliceMasks;
    std::vector<BitVector> laneValues;

    // When the lane count is a multiple of the vector count, every chunk maps
    // lane L to vector L % vectors — the same stimuli in the same lanes.  Two
    // things then become chunk-invariant and are computed once: the packed
    // per-lane stimulus arrays, and the golden sim's output planes (the
    // golden half runs with the zero key regardless of the chunk's keys), so
    // every chunk after the first costs only the candidate's tape passes.
    const bool mapInvariant = (SlicedSim::kLanes % static_cast<int>(vectors)) == 0;
    std::vector<std::vector<BitVector>> packedStimuli;
    if (mapInvariant) {
      const int lanes = static_cast<int>(std::min<std::int64_t>(SlicedSim::kLanes, lanesTotal));
      packedStimuli.resize(static_cast<std::size_t>(cycles) * inputs_.size());
      for (int cycle = 0; cycle < cycles; ++cycle) {
        for (std::size_t i = 0; i < inputs_.size(); ++i) {
          auto& packed = packedStimuli[static_cast<std::size_t>(cycle) * inputs_.size() + i];
          packed.reserve(static_cast<std::size_t>(lanes));
          for (int lane = 0; lane < lanes; ++lane) {
            packed.push_back(stimuli[static_cast<std::size_t>(lane % vectors)]
                                    [static_cast<std::size_t>(cycle) * inputs_.size() + i]);
          }
        }
      }
    }
    std::vector<std::uint64_t> goldenCache(
        mapInvariant ? static_cast<std::size_t>(cycles) * static_cast<std::size_t>(outputWidth)
                     : 0);

    for (std::int64_t base = 0; base < lanesTotal; base += SlicedSim::kLanes) {
      const int active =
          static_cast<int>(std::min<std::int64_t>(SlicedSim::kLanes, lanesTotal - base));
      slices.clear();
      for (std::size_t k = static_cast<std::size_t>(base / vectors);
           k <= static_cast<std::size_t>((base + active - 1) / vectors); ++k) {
        const auto lo = std::max<std::int64_t>(static_cast<std::int64_t>(k) * vectors, base);
        const auto hi =
            std::min<std::int64_t>((static_cast<std::int64_t>(k) + 1) * vectors, base + active);
        slices.push_back({k, laneMask(static_cast<int>(hi - base)) ^
                                 laneMask(static_cast<int>(lo - base))});
      }
      const bool runGolden = !mapInvariant || base == 0;

      // Without a clock the tape never latches state: every slot a settle
      // reads is rewritten by setLaneValues / setKeys / the tape itself, so
      // later chunks can skip the full-arena reset.
      const bool needReset = base == 0 || clock_.has_value();
      if (runGolden && needReset) {
        goldenSliced_->reset();  // golden keeps the zero key even when locked
      }
      if (needReset) candidateSliced_->reset();
      if (candidateLocked_) {
        sliceKeys.clear();
        sliceMasks.clear();
        for (const KeySlice& slice : slices) {
          sliceKeys.push_back(keys[slice.key]);
          sliceMasks.push_back(slice.mask);
        }
        candidateSliced_->setKeys(sliceKeys, sliceMasks);
      }

      for (int cycle = 0; cycle < cycles; ++cycle) {
        for (std::size_t i = 0; i < inputs_.size(); ++i) {
          if (mapInvariant) {
            // A partial final chunk reuses the full packed arrays: lanes
            // beyond `active` carry real stimuli but sit in no slice mask,
            // so their results are never scored.
            const auto& packed =
                packedStimuli[static_cast<std::size_t>(cycle) * inputs_.size() + i];
            if (runGolden) goldenSliced_->setLaneValues(inputs_[i].golden, packed);
            candidateSliced_->setLaneValues(inputs_[i].candidate, packed);
            continue;
          }
          laneValues.clear();
          for (int lane = 0; lane < active; ++lane) {
            laneValues.push_back(stimuli[static_cast<std::size_t>((base + lane) % vectors)]
                                        [static_cast<std::size_t>(cycle) * inputs_.size() + i]);
          }
          goldenSliced_->setLaneValues(inputs_[i].golden, laneValues);
          candidateSliced_->setLaneValues(inputs_[i].candidate, laneValues);
        }
        if (runGolden) goldenSliced_->settle();
        candidateSliced_->settle();
        std::uint64_t* cache =
            mapInvariant
                ? goldenCache.data() + static_cast<std::size_t>(cycle) *
                                           static_cast<std::size_t>(outputWidth)
                : nullptr;
        std::int64_t cacheOffset = 0;
        for (const PortPair& pair : outputs_) {
          const std::uint64_t* g;
          if (runGolden) {
            g = goldenSliced_->signalPlanes(pair.golden);
            if (mapInvariant) std::copy(g, g + pair.width, cache + cacheOffset);
          } else {
            g = cache + cacheOffset;
          }
          cacheOffset += pair.width;
          const std::uint64_t* c = candidateSliced_->signalPlanes(pair.candidate);
          for (int b = 0; b < pair.width; ++b) {
            const std::uint64_t diff = g[b] ^ c[b];
            if (diff == 0) continue;
            for (const KeySlice& slice : slices) {
              differing[slice.key] += std::popcount(diff & slice.mask);
            }
          }
        }
        if (clock_.has_value()) {
          if (runGolden) goldenSliced_->clockEdge(clock_->golden);
          candidateSliced_->clockEdge(clock_->candidate);
        }
      }
    }
  }

  std::vector<double> corruption(keys.size(), 0.0);
  for (std::size_t k = 0; k < keys.size(); ++k) {
    corruption[k] =
        totalBits == 0 ? 0.0 : static_cast<double>(differing[k]) / static_cast<double>(totalBits);
  }
  return corruption;
}

std::optional<Mismatch> findMismatch(const Module& golden, const Module& candidate,
                                     const BitVector& candidateKey,
                                     const EquivalenceOptions& options, support::Rng& rng) {
  Harness harness{golden, candidate};
  return harness.findMismatch(candidateKey, options, rng);
}

bool functionallyEquivalent(const Module& golden, const Module& candidate,
                            const BitVector& candidateKey, const EquivalenceOptions& options,
                            support::Rng& rng) {
  return !findMismatch(golden, candidate, candidateKey, options, rng).has_value();
}

double outputCorruption(const Module& golden, const Module& locked, const BitVector& key,
                        const EquivalenceOptions& options, support::Rng& rng) {
  Harness harness{golden, locked};
  return harness.outputCorruption(key, options, rng);
}

}  // namespace rtlock::sim
