#include "sim/harness.hpp"

#include <algorithm>
#include <vector>

namespace rtlock::sim {

namespace {

using rtl::Module;
using rtl::PortDir;
using rtl::SignalId;

struct PortPair {
  SignalId golden;
  SignalId candidate;
  int width;
};

struct MatchedPorts {
  std::vector<PortPair> inputs;   // clock excluded
  std::vector<PortPair> outputs;
  std::optional<PortPair> clock;
};

MatchedPorts matchPorts(const Module& golden, const Module& candidate) {
  MatchedPorts matched;

  // Single-clock designs: a clock is any signal driving a sequential process.
  std::optional<SignalId> goldenClock;
  for (const auto& process : golden.processes()) {
    if (process->kind == rtl::ProcessKind::Sequential) {
      goldenClock = process->clock;
      break;
    }
  }

  for (const SignalId id : golden.ports()) {
    const auto& signal = golden.signal(id);
    const auto other = candidate.findSignal(signal.name);
    RTLOCK_REQUIRE(other.has_value(),
                   "candidate module is missing port '" + signal.name + "'");
    RTLOCK_REQUIRE(candidate.signal(*other).width == signal.width,
                   "port width mismatch on '" + signal.name + "'");
    const PortPair pair{id, *other, signal.width};
    if (signal.dir == PortDir::Input) {
      if (goldenClock && *goldenClock == id) {
        matched.clock = pair;
      } else {
        matched.inputs.push_back(pair);
      }
    } else {
      matched.outputs.push_back(pair);
    }
  }
  return matched;
}

}  // namespace

std::optional<Mismatch> findMismatch(const Module& golden, const Module& candidate,
                                     const BitVector& candidateKey,
                                     const EquivalenceOptions& options, support::Rng& rng) {
  const MatchedPorts ports = matchPorts(golden, candidate);
  Evaluator goldenEval{golden};
  Evaluator candidateEval{candidate};

  const bool sequential = ports.clock.has_value();

  for (int vector = 0; vector < options.vectors; ++vector) {
    goldenEval.reset();
    candidateEval.reset();
    if (candidate.keyWidth() > 0) candidateEval.setKey(candidateKey);
    if (golden.keyWidth() > 0) {
      // Comparing two locked modules: drive the golden one with the same key.
      goldenEval.setKey(candidateKey);
    }

    const int cycles = sequential ? options.cyclesPerVector : 1;
    for (int cycle = 0; cycle < cycles; ++cycle) {
      for (const auto& pair : ports.inputs) {
        const BitVector stimulus = BitVector::random(pair.width, rng);
        goldenEval.setValue(pair.golden, stimulus);
        candidateEval.setValue(pair.candidate, stimulus);
      }
      goldenEval.settle();
      candidateEval.settle();

      for (const auto& pair : ports.outputs) {
        if (!(goldenEval.value(pair.golden) == candidateEval.value(pair.candidate))) {
          return Mismatch{golden.signal(pair.golden).name, vector, cycle};
        }
      }

      if (sequential) {
        goldenEval.clockEdge(ports.clock->golden);
        candidateEval.clockEdge(ports.clock->candidate);
        for (const auto& pair : ports.outputs) {
          if (!(goldenEval.value(pair.golden) == candidateEval.value(pair.candidate))) {
            return Mismatch{golden.signal(pair.golden).name, vector, cycle};
          }
        }
      }
    }
  }
  return std::nullopt;
}

bool functionallyEquivalent(const Module& golden, const Module& candidate,
                            const BitVector& candidateKey, const EquivalenceOptions& options,
                            support::Rng& rng) {
  return !findMismatch(golden, candidate, candidateKey, options, rng).has_value();
}

double outputCorruption(const Module& golden, const Module& locked, const BitVector& key,
                        const EquivalenceOptions& options, support::Rng& rng) {
  const MatchedPorts ports = matchPorts(golden, locked);
  Evaluator goldenEval{golden};
  Evaluator lockedEval{locked};
  const bool sequential = ports.clock.has_value();

  std::int64_t differingBits = 0;
  std::int64_t totalBits = 0;

  for (int vector = 0; vector < options.vectors; ++vector) {
    goldenEval.reset();
    lockedEval.reset();
    if (locked.keyWidth() > 0) lockedEval.setKey(key);

    const int cycles = sequential ? options.cyclesPerVector : 1;
    for (int cycle = 0; cycle < cycles; ++cycle) {
      for (const auto& pair : ports.inputs) {
        const BitVector stimulus = BitVector::random(pair.width, rng);
        goldenEval.setValue(pair.golden, stimulus);
        lockedEval.setValue(pair.candidate, stimulus);
      }
      goldenEval.settle();
      lockedEval.settle();
      for (const auto& pair : ports.outputs) {
        differingBits += BitVector::hammingDistance(goldenEval.value(pair.golden),
                                                    lockedEval.value(pair.candidate));
        totalBits += pair.width;
      }
      if (sequential) {
        goldenEval.clockEdge(ports.clock->golden);
        lockedEval.clockEdge(ports.clock->candidate);
      }
    }
  }
  return totalBits == 0 ? 0.0 : static_cast<double>(differingBits) / static_cast<double>(totalBits);
}

}  // namespace rtlock::sim
