#include "sim/harness.hpp"

#include <vector>

namespace rtlock::sim {

namespace {

using rtl::Module;
using rtl::PortDir;
using rtl::SignalId;

}  // namespace

Harness::Harness(const Module& golden, const Module& candidate)
    : goldenLocked_(golden.keyWidth() > 0),
      candidateLocked_(candidate.keyWidth() > 0),
      golden_(golden),
      candidate_(candidate) {
  // Single-clock designs: a clock is any signal driving a sequential process.
  std::optional<SignalId> goldenClock;
  for (const auto& process : golden.processes()) {
    if (process->kind == rtl::ProcessKind::Sequential) {
      goldenClock = process->clock;
      break;
    }
  }

  for (const SignalId id : golden.ports()) {
    const auto& signal = golden.signal(id);
    const auto other = candidate.findSignal(signal.name);
    RTLOCK_REQUIRE(other.has_value(),
                   "candidate module is missing port '" + signal.name + "'");
    RTLOCK_REQUIRE(candidate.signal(*other).width == signal.width,
                   "port width mismatch on '" + signal.name + "'");
    PortPair pair;
    pair.golden = id;
    pair.candidate = *other;
    pair.width = signal.width;
    pair.name = signal.name;
    if (signal.dir == PortDir::Input) {
      if (goldenClock && *goldenClock == id) {
        clock_ = pair;
      } else {
        inputs_.push_back(pair);
      }
    } else {
      outputs_.push_back(pair);
    }
  }
}

void Harness::beginVector(const BitVector& candidateKey, bool keyGolden) {
  golden_.reset();
  candidate_.reset();
  if (candidateLocked_) candidate_.setKey(candidateKey);
  if (keyGolden && goldenLocked_) {
    // Comparing two locked modules: drive the golden one with the same key.
    golden_.setKey(candidateKey);
  }
}

std::optional<Mismatch> Harness::findMismatch(const BitVector& candidateKey,
                                              const EquivalenceOptions& options,
                                              support::Rng& rng) {
  const bool sequential = clock_.has_value();

  for (int vector = 0; vector < options.vectors; ++vector) {
    beginVector(candidateKey, /*keyGolden=*/true);

    const int cycles = sequential ? options.cyclesPerVector : 1;
    for (int cycle = 0; cycle < cycles; ++cycle) {
      for (const auto& pair : inputs_) {
        const BitVector stimulus = BitVector::random(pair.width, rng);
        golden_.setValue(pair.golden, stimulus);
        candidate_.setValue(pair.candidate, stimulus);
      }
      golden_.settle();
      candidate_.settle();

      for (const auto& pair : outputs_) {
        if (!(golden_.value(pair.golden) == candidate_.value(pair.candidate))) {
          return Mismatch{pair.name, vector, cycle};
        }
      }

      if (sequential) {
        golden_.clockEdge(clock_->golden);
        candidate_.clockEdge(clock_->candidate);
        for (const auto& pair : outputs_) {
          if (!(golden_.value(pair.golden) == candidate_.value(pair.candidate))) {
            return Mismatch{pair.name, vector, cycle};
          }
        }
      }
    }
  }
  return std::nullopt;
}

double Harness::outputCorruption(const BitVector& key, const EquivalenceOptions& options,
                                 support::Rng& rng) {
  const bool sequential = clock_.has_value();

  std::int64_t differingBits = 0;
  std::int64_t totalBits = 0;

  for (int vector = 0; vector < options.vectors; ++vector) {
    // The golden module keeps its zero key: corruption is always measured
    // against the unlocked behaviour, even if the golden design is locked.
    beginVector(key, /*keyGolden=*/false);

    const int cycles = sequential ? options.cyclesPerVector : 1;
    for (int cycle = 0; cycle < cycles; ++cycle) {
      for (const auto& pair : inputs_) {
        const BitVector stimulus = BitVector::random(pair.width, rng);
        golden_.setValue(pair.golden, stimulus);
        candidate_.setValue(pair.candidate, stimulus);
      }
      golden_.settle();
      candidate_.settle();
      for (const auto& pair : outputs_) {
        differingBits += BitVector::hammingDistance(golden_.value(pair.golden),
                                                    candidate_.value(pair.candidate));
        totalBits += pair.width;
      }
      if (sequential) {
        golden_.clockEdge(clock_->golden);
        candidate_.clockEdge(clock_->candidate);
      }
    }
  }
  return totalBits == 0 ? 0.0 : static_cast<double>(differingBits) / static_cast<double>(totalBits);
}

std::optional<Mismatch> findMismatch(const Module& golden, const Module& candidate,
                                     const BitVector& candidateKey,
                                     const EquivalenceOptions& options, support::Rng& rng) {
  Harness harness{golden, candidate};
  return harness.findMismatch(candidateKey, options, rng);
}

bool functionallyEquivalent(const Module& golden, const Module& candidate,
                            const BitVector& candidateKey, const EquivalenceOptions& options,
                            support::Rng& rng) {
  return !findMismatch(golden, candidate, candidateKey, options, rng).has_value();
}

double outputCorruption(const Module& golden, const Module& locked, const BitVector& key,
                        const EquivalenceOptions& options, support::Rng& rng) {
  Harness harness{golden, locked};
  return harness.outputCorruption(key, options, rng);
}

}  // namespace rtlock::sim
