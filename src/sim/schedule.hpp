// Levelization of a module's processes, shared by both simulation backends.
//
// Continuous assignments and always @(*) processes are topologically ordered
// over their signal dependencies (combinational loops are rejected with
// support::Error); sequential processes are grouped by driving clock in
// module order.  The reference interpreter (Evaluator) executes the schedule
// directly; the bytecode Compiler lowers it to a flat tape.
#pragma once

#include <set>
#include <vector>

#include "rtl/module.hpp"

namespace rtlock::sim {

/// One combinational execution unit: exactly one of assign/process is set.
struct ScheduleUnit {
  const rtl::ContAssign* assign = nullptr;
  const rtl::Process* process = nullptr;
};

/// Sequential processes driven by one clock, in module order.
struct SequentialGroup {
  rtl::SignalId clock = 0;
  std::vector<const rtl::Process*> processes;
};

struct Schedule {
  std::vector<ScheduleUnit> comb;           // topologically ordered
  std::vector<SequentialGroup> sequential;  // one group per clock, discovery order
  std::vector<rtl::SignalId> clocks;        // group clocks, same order
};

/// Builds the levelized schedule.  The module must outlive the schedule.
/// Throws support::Error when the combinational logic contains a loop.
[[nodiscard]] Schedule buildSchedule(const rtl::Module& module);

/// Signals read by an expression (SignalRef leaves).
void collectExprReads(const rtl::Expr& expr, std::set<rtl::SignalId>& reads);

/// Signals read and written by a statement tree.
void collectStmtReadsWrites(const rtl::Stmt& stmt, std::set<rtl::SignalId>& reads,
                            std::set<rtl::SignalId>& writes);

}  // namespace rtlock::sim
