// Cycle-based two-state RTL simulator (reference interpreter).
//
// The evaluator executes a module directly on the IR:
//  * continuous assignments and always @(*) processes are levelized into a
//    topological order over their signal dependencies (combinational loops
//    are rejected with support::Error);
//  * always @(posedge clk) processes follow non-blocking semantics: all
//    right-hand sides are evaluated against the pre-edge state, then all
//    updates commit atomically, then combinational logic resettles.
//
// The locking key is part of the environment (setKey), so locked modules
// simulate exactly like any other input-extended design.
//
// This backend is the executable semantics of the IR; the compiled backend
// (sim/compiled_sim.hpp) is the fast path and is differential-tested against
// this one.  Prefer CompiledSim for anything that simulates more than a
// handful of cycles.
#pragma once

#include <vector>

#include "rtl/module.hpp"
#include "sim/bitvector.hpp"
#include "sim/schedule.hpp"

namespace rtlock::sim {

class Evaluator {
 public:
  /// Builds the levelized schedule.  The module must outlive the evaluator.
  explicit Evaluator(const rtl::Module& module);

  /// Zeroes all signals (registers included) and the key.
  void reset();

  void setValue(rtl::SignalId signal, BitVector value);
  [[nodiscard]] const BitVector& value(rtl::SignalId signal) const;

  /// Key must match the module's key width (ignored for unlocked modules).
  void setKey(BitVector key);

  /// Settles all combinational logic (call after changing inputs).
  void settle();

  /// Applies one positive edge on `clock`, then resettles.
  void clockEdge(rtl::SignalId clock);

  /// Evaluates an expression against the current environment.
  [[nodiscard]] BitVector evalExpr(const rtl::Expr& expr) const;

  /// Clocks that drive at least one sequential process.
  [[nodiscard]] const std::vector<rtl::SignalId>& clocks() const noexcept {
    return schedule_.clocks;
  }

 private:
  void executeUnit(const ScheduleUnit& unit);
  void executeStmtBlocking(const rtl::Stmt& stmt);
  void collectNonBlocking(const rtl::Stmt& stmt,
                          std::vector<std::pair<rtl::LValue, BitVector>>& updates) const;
  void writeLValue(const rtl::LValue& lvalue, const BitVector& value);

  const rtl::Module& module_;
  std::vector<BitVector> values_;
  BitVector key_{1};
  Schedule schedule_;
  /// Non-blocking update buffer, reused across clockEdge calls.
  std::vector<std::pair<rtl::LValue, BitVector>> updatesScratch_;
};

}  // namespace rtlock::sim
