// Bit-sliced batch simulator: 64 stimulus vectors per tape pass.
//
// SlicedSim executes a Program in the *sliced* encoding (Compiler::
// compileSliced) over a transposed value arena.  Where CompiledSim stores a
// w-bit signal as ceil(w/64) words holding ONE value, SlicedSim stores it as
// w *planes* — plane b is a 64-bit word whose bit L is bit b of lane L's
// value.  Every 2-state logic op then becomes a handful of plain bitwise
// word ops evaluating all 64 lanes at once:
//  * and/or/xor/not/mux run one word op per plane;
//  * add/sub/neg ripple a carry/borrow plane across the result width;
//  * compares ripple from the LSB plane; reductions fold the planes;
//  * constant shifts, slices and concats are pure plane relabelings;
//  * mul/div/mod/pow and variable-amount shifts fall back to per-lane scalar
//    evaluation through a 64x64 bit-matrix transpose (rare ops pay ~1 scalar
//    pass for the whole batch instead of poisoning the bitwise fast path).
//
// Lanes never branch: the sliced lowering if-converts control flow, so tapes
// are jump-free and every store is masked by a 1-bit predicate slot whose
// plane 0 is the per-lane "this branch taken" mask (see sim/compiler.hpp).
// Keys are per-lane: setKeys materialises 64 hypothesis keys into the key
// binding planes, which is what lets corruption sweeps score 64 (key, vector)
// pairs per tape pass.
//
// Semantics are differentially pinned against both the reference interpreter
// and the scalar tape by tests/sim/sliced_sim_test.cpp; the scalar backends
// remain the oracles (see src/sim/README.md for the contract).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "sim/compiled_sim.hpp"

namespace rtlock::sim {

namespace detail {
/// In-place transpose of a 64x64 bit matrix: out[i] bit j == in[j] bit i.
/// Exposed for the unit tests that pin the orientation.
void transpose64(std::uint64_t m[64]) noexcept;
}  // namespace detail

class SlicedSim {
 public:
  /// Lane capacity of one arena (bits per machine word).
  static constexpr int kLanes = 64;

  using BatchRequest = CompiledSim::BatchRequest;

  /// Compiles `module` privately in the sliced encoding.
  explicit SlicedSim(const rtl::Module& module);

  /// Runs a pre-compiled sliced program (Compiler::compileSliced); one
  /// Program can back any number of instances.
  explicit SlicedSim(std::shared_ptr<const Program> program);

  /// Zeroes all signals (registers included) in every lane and clears all
  /// key planes — a fresh batch never observes a previous batch's keys.
  void reset();

  /// Broadcasts `value` to all 64 lanes of `signal`.
  void setValue(rtl::SignalId signal, const BitVector& value);

  /// Drives lanes [0, values.size()) of `signal` with per-lane values and
  /// zeroes the remaining lanes.  At most kLanes values.
  void setLaneValues(rtl::SignalId signal, std::span<const BitVector> values);

  /// Value of `signal` in one lane.
  [[nodiscard]] BitVector laneValue(rtl::SignalId signal, int lane) const;

  /// Broadcasts one key to all lanes (width must match the module's key).
  void setKey(const BitVector& key);

  /// Per-lane hypothesis keys for lanes [0, keys.size()); remaining lanes
  /// run with the all-zero key.  At most kLanes keys.
  void setKeys(std::span<const BitVector> keys);

  /// Distinct-key variant: key i drives every lane set in laneMasks[i]
  /// (masks must be disjoint); lanes in no mask get the all-zero key.  Reads
  /// each key's bits once instead of once per lane, which is what makes
  /// key-batched corruption sweeps cheap when consecutive lanes share a key.
  void setKeys(std::span<const BitVector> keys, std::span<const std::uint64_t> laneMasks);

  /// Settles all combinational logic (call after changing inputs).
  void settle();

  /// Applies one positive edge on `clock` in every lane, then resettles.
  void clockEdge(rtl::SignalId clock);

  [[nodiscard]] const std::vector<rtl::SignalId>& clocks() const noexcept {
    return program_->clocks();
  }

  [[nodiscard]] const Program& program() const noexcept { return *program_; }

  /// Read-only plane view of `signal`: `width` words, plane b holding bit b
  /// of all 64 lanes.  The pointer is invalidated by nothing short of
  /// destruction; contents change on every settle/clockEdge.
  [[nodiscard]] const std::uint64_t* signalPlanes(rtl::SignalId signal) const {
    return &planes_[static_cast<std::size_t>(
        planeBase_[static_cast<std::size_t>(program_->signalSlotId(signal))])];
  }

  /// Batch API with CompiledSim::runVectors semantics (same request shape,
  /// same trace layout, same "empty keys = zero key" contract), evaluated in
  /// chunks of up to kLanes vectors per tape pass.
  [[nodiscard]] std::vector<std::vector<BitVector>> runVectors(
      const BatchRequest& request, const std::vector<std::vector<BitVector>>& stimuli,
      const std::vector<BitVector>& keys);

 private:
  void exec(const std::vector<Instr>& tape);
  void laneFallback(const Instr& in);
  [[nodiscard]] std::uint64_t* planesOf(std::int32_t slotId) {
    return &planes_[static_cast<std::size_t>(planeBase_[static_cast<std::size_t>(slotId)])];
  }
  [[nodiscard]] const std::uint64_t* planesOf(std::int32_t slotId) const {
    return &planes_[static_cast<std::size_t>(planeBase_[static_cast<std::size_t>(slotId)])];
  }
  /// Lanes of a narrow (<= 64 bit) slot via one bit-matrix transpose.
  void loadLanes(std::int32_t slotId, std::uint64_t out[kLanes]) const;
  /// Whole-width lane accessors (any width, bit-at-a-time).
  [[nodiscard]] BitVector gatherLane(std::int32_t slotId, int lane) const;
  void scatterLane(std::int32_t slotId, int lane, const BitVector& value);

  std::shared_ptr<const Program> program_;
  std::vector<std::int32_t> planeBase_;      // slot id -> first plane index
  std::vector<std::uint64_t> initialPlanes_;  // constants broadcast, signals zero
  std::vector<std::uint64_t> planes_;
};

}  // namespace rtlock::sim
