// Lowers a module to a flat bytecode Program (see sim/program.hpp).
//
// The compiler walks the levelized schedule (the same one the reference
// interpreter executes) and emits one opcode per IR operation:
//  * expression trees become straight-line tapes over arena slots, with the
//    single-word fast path chosen per node at compile time;
//  * if/case statements become conditional jumps, so the executor never
//    re-inspects the IR;
//  * constants are baked into the arena image and key slices bound to slots
//    refreshed on setKey — neither costs anything per cycle.
//
// compileSliced produces the same tape vocabulary in the *sliced* encoding
// consumed by sim/sliced_sim.hpp: operands are slot ids, every width runs
// through the narrow opcodes (the executor reads widths from the slot table,
// so there are no Wide* fallbacks), and control flow is if-converted —
// if/case bodies execute unconditionally under a 1-bit predicate slot whose
// lanes mask each store via Select.  Jump-free tapes are what lets 64
// stimulus lanes share one tape pass even when they diverge on branches.
#pragma once

#include "sim/program.hpp"

namespace rtlock::sim {

class Compiler {
 public:
  /// Compiles `module`.  The Program is self-contained: the module may be
  /// mutated or destroyed afterwards (relocking invalidates a Program — just
  /// recompile).  Throws support::Error on combinational loops, like the
  /// interpreter.
  [[nodiscard]] static Program compile(const rtl::Module& module);

  /// Compiles `module` in the sliced (slot-id, jump-free, predicated)
  /// encoding for sim::SlicedSim.  Same error behaviour as compile().
  [[nodiscard]] static Program compileSliced(const rtl::Module& module);

 private:
  [[nodiscard]] static Program assemble(const rtl::Module& module, bool sliced);
};

}  // namespace rtlock::sim
