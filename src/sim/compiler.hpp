// Lowers a module to a flat bytecode Program (see sim/program.hpp).
//
// The compiler walks the levelized schedule (the same one the reference
// interpreter executes) and emits one opcode per IR operation:
//  * expression trees become straight-line tapes over arena slots, with the
//    single-word fast path chosen per node at compile time;
//  * if/case statements become conditional jumps, so the executor never
//    re-inspects the IR;
//  * constants are baked into the arena image and key slices bound to slots
//    refreshed on setKey — neither costs anything per cycle.
#pragma once

#include "sim/program.hpp"

namespace rtlock::sim {

class Compiler {
 public:
  /// Compiles `module`.  The Program is self-contained: the module may be
  /// mutated or destroyed afterwards (relocking invalidates a Program — just
  /// recompile).  Throws support::Error on combinational loops, like the
  /// interpreter.
  [[nodiscard]] static Program compile(const rtl::Module& module);
};

}  // namespace rtlock::sim
