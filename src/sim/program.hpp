// Flat bytecode representation of a compiled module (the fast sim backend).
//
// A Program is an immutable compilation artifact: a value arena layout plus
// branch-light instruction tapes.  Every signal, constant, key slice and
// expression temporary owns a *slot* — a (word offset, width) pair into a
// flat array of 64-bit words.  Values of width <= 64 (the overwhelmingly
// common case) occupy exactly one word and are manipulated by *narrow*
// opcodes whose operands are raw word offsets — no per-node allocation, no
// virtual dispatch, no BitVector construction.  Wider values (concatenation
// results) keep the multi-word little-endian layout and fall back to *wide*
// opcodes executed through the shared BitVector routines.
//
// Tapes:
//  * one combinational tape — the levelized schedule lowered in order, with
//    if/case lowered to conditional jumps;
//  * one sequential tape per clock — non-blocking assignments store into
//    shadow slots that are double-buffered against the live signal slots by
//    the executor (copy-in before the tape, commit after), so all right-hand
//    sides observe the pre-edge state.
//
// Programs are produced by sim::Compiler and executed by sim::CompiledSim;
// one Program can back any number of concurrently running CompiledSim
// instances (each owns its own arena).
#pragma once

#include <cstdint>
#include <vector>

#include "rtl/module.hpp"

namespace rtlock::sim {

enum class Opcode : std::uint8_t {
  // ---- narrow value ops: dst/a/b/c are arena word offsets unless noted;
  //      results are masked to `width` bits ----
  Copy,        // dst = a & mask
  Add,         // dst = (a + b) & mask
  Sub,         // dst = (a - b) & mask
  Mul,         // dst = (a * b) & mask
  Div,         // dst = b == 0 ? mask : a / b
  Mod,         // dst = b == 0 ? mask : a % b
  Pow,         // dst = pow(a, b) mod 2^64, & mask
  Shl,         // dst = b >= width ? 0 : (a << b) & mask
  Shr,         // c = width of operand a; dst = b >= c ? 0 : (a >> b) & mask
  And,         // dst = a & b
  Or,          // dst = a | b
  Xor,         // dst = a ^ b
  Xnor,        // dst = ~(a ^ b) & mask
  Lt,          // dst = a < b
  Le,          // dst = a <= b
  Eq,          // dst = a == b
  Ne,          // dst = a != b
  LAnd,        // dst = (a != 0) && (b != 0)
  LOr,         // dst = (a != 0) || (b != 0)
  Neg,         // dst = -a & mask
  Not,         // dst = ~a & mask
  LogNot,      // dst = a == 0
  RedAnd,      // b = width of operand a; dst = popcount(a) == b
  RedOr,       // dst = a != 0
  RedXor,      // dst = popcount(a) & 1
  Select,      // dst = (a != 0 ? b : c) & mask
  SliceLow,    // b = lo; dst = (a >> lo) & mask
  ShlConst,    // b = amount (sliced lowering only); dst = (a << b) & mask
  ConcatPair,  // c = width of b; dst = ((a << c) | b) & mask
  Insert,      // b = lo, c = slice width m; dst = dst with bits [lo, lo+m) := a
  // ---- control flow: dst is a tape index ----
  Jump,        // pc = dst
  JumpIfZero,  // pc = dst when word a == 0
  JumpIfEq,    // pc = dst when word a == word b
  // ---- wide fallback: dst/a/b are slot ids, executed via BitVector ----
  WideBinary,  // c = rtl::OpKind; dst = a <op> b
  WideUnary,   // c = rtl::UnaryOp; dst = <op> a
  WideSelect,  // dst = (a.any() ? b : c).resized(dst.width)
  WideConcat,  // a = arg-pool start, b = part count
  WideSlice,   // b = lo; dst = a[lo + dst.width - 1 : lo]
  WideCopy,    // dst = a.resized(dst.width)
  WideInsert,  // b = lo, c = slice width; dst with bits [lo, lo+c) := a
};

/// One fixed-size tape entry.  `width` is the result width for narrow value
/// ops (1..64) and unused for control flow / wide ops.
struct Instr {
  Opcode op = Opcode::Copy;
  std::uint8_t width = 0;
  std::int32_t dst = 0;
  std::int32_t a = 0;
  std::int32_t b = 0;
  std::int32_t c = 0;
};

/// One value in the arena: `wordCount()` words starting at `offset`.
struct Slot {
  std::int32_t offset = 0;
  std::int32_t width = 1;

  [[nodiscard]] int wordCount() const noexcept { return (width + 63) / 64; }
};

/// A key-bit slice referenced by the module; the executor materialises the
/// slice into `slot` whenever the key changes (zero per-cycle cost).
struct KeyBinding {
  int firstBit = 0;
  int width = 1;
  std::int32_t slot = 0;
};

/// Copy directive committing a shadow slot back into its live signal slot
/// (and seeding the shadow from the live value before a sequential tape).
/// The offsets drive the scalar word arena; the slot ids drive the bit-sliced
/// plane arena, whose layout is derived per executor.
struct ShadowCopy {
  std::int32_t liveOffset = 0;
  std::int32_t shadowOffset = 0;
  std::int32_t words = 0;
  std::int32_t liveSlot = 0;
  std::int32_t shadowSlot = 0;
};

/// Sequential tape for one clock.
struct SequentialTape {
  rtl::SignalId clock = 0;
  std::vector<Instr> tape;
  std::vector<ShadowCopy> shadows;
};

class Program {
 public:
  [[nodiscard]] const std::vector<Slot>& slots() const noexcept { return slots_; }
  [[nodiscard]] const std::vector<std::uint64_t>& initialWords() const noexcept {
    return initialWords_;
  }
  [[nodiscard]] const Slot& signalSlot(rtl::SignalId signal) const {
    return slots_[static_cast<std::size_t>(signalSlots_.at(signal))];
  }
  [[nodiscard]] std::int32_t signalSlotId(rtl::SignalId signal) const {
    return signalSlots_.at(signal);
  }
  [[nodiscard]] const std::vector<Instr>& combTape() const noexcept { return combTape_; }
  [[nodiscard]] const std::vector<SequentialTape>& sequentialTapes() const noexcept {
    return seqTapes_;
  }
  [[nodiscard]] const std::vector<KeyBinding>& keyBindings() const noexcept {
    return keyBindings_;
  }
  [[nodiscard]] const std::vector<std::int32_t>& argPool() const noexcept { return argPool_; }
  [[nodiscard]] int keyWidth() const noexcept { return keyWidth_; }
  [[nodiscard]] const std::vector<rtl::SignalId>& clocks() const noexcept { return clocks_; }

  /// True for programs produced by Compiler::compileSliced: operands are slot
  /// ids (not word offsets), tapes are jump-free (if/case are lowered to
  /// predicated masked selects) and there are no Wide* opcodes.  Such
  /// programs run on sim::SlicedSim; offset-encoded programs run on
  /// sim::CompiledSim.  The two encodings are never mixed.
  [[nodiscard]] bool slicedLowering() const noexcept { return sliced_; }

  /// Total tape length across the combinational and sequential tapes.
  [[nodiscard]] std::size_t instructionCount() const noexcept;

 private:
  friend class Compiler;

  std::vector<Slot> slots_;
  std::vector<std::uint64_t> initialWords_;  // constants baked in, signals zero
  std::vector<std::int32_t> signalSlots_;    // SignalId -> slot id
  std::vector<Instr> combTape_;
  std::vector<SequentialTape> seqTapes_;
  std::vector<KeyBinding> keyBindings_;
  std::vector<std::int32_t> argPool_;  // slot-id lists for WideConcat
  std::vector<rtl::SignalId> clocks_;
  int keyWidth_ = 0;
  bool sliced_ = false;
};

/// Mask keeping the low `width` bits of a word; `width` must be in [1, 64].
[[nodiscard]] inline std::uint64_t narrowMask(int width) noexcept {
  return ~std::uint64_t{0} >> (64 - width);
}

}  // namespace rtlock::sim
