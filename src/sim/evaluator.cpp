#include "sim/evaluator.hpp"

#include <algorithm>

#include "sim/op_eval.hpp"

namespace rtlock::sim {

namespace {

using rtl::Expr;
using rtl::ExprKind;
using rtl::SignalId;
using rtl::Stmt;
using rtl::StmtKind;

}  // namespace

Evaluator::Evaluator(const rtl::Module& module)
    : module_(module), schedule_(buildSchedule(module)) {
  values_.reserve(module.signalCount());
  for (SignalId id = 0; id < module.signalCount(); ++id) {
    values_.emplace_back(module.signal(id).width);
  }
  if (module.keyWidth() > 0) key_ = BitVector{module.keyWidth()};
}

void Evaluator::reset() {
  for (SignalId id = 0; id < module_.signalCount(); ++id) {
    values_[id] = BitVector{module_.signal(id).width};
  }
  if (module_.keyWidth() > 0) key_ = BitVector{module_.keyWidth()};
}

void Evaluator::setValue(SignalId signal, BitVector value) {
  RTLOCK_REQUIRE(signal < values_.size(), "signal id out of range");
  values_[signal] = value.resized(module_.signal(signal).width);
}

const BitVector& Evaluator::value(SignalId signal) const {
  RTLOCK_REQUIRE(signal < values_.size(), "signal id out of range");
  return values_[signal];
}

void Evaluator::setKey(BitVector key) {
  RTLOCK_REQUIRE(module_.keyWidth() > 0, "module has no key input");
  key_ = key.resized(module_.keyWidth());
}

void Evaluator::settle() {
  for (const ScheduleUnit& unit : schedule_.comb) executeUnit(unit);
}

void Evaluator::executeUnit(const ScheduleUnit& unit) {
  if (unit.assign != nullptr) {
    writeLValue(unit.assign->target(), evalExpr(unit.assign->value()));
  } else {
    executeStmtBlocking(*unit.process->body);
  }
}

void Evaluator::executeStmtBlocking(const Stmt& stmt) {
  switch (stmt.kind()) {
    case StmtKind::Block: {
      for (int i = 0; i < stmt.stmtSlotCount(); ++i) executeStmtBlocking(stmt.stmtAt(i));
      break;
    }
    case StmtKind::If: {
      const auto& ifStmt = static_cast<const rtl::IfStmt&>(stmt);
      if (evalExpr(ifStmt.cond()).any()) {
        executeStmtBlocking(ifStmt.stmtAt(0));
      } else if (ifStmt.hasElse()) {
        executeStmtBlocking(ifStmt.stmtAt(1));
      }
      break;
    }
    case StmtKind::Case: {
      const auto& caseStmt = static_cast<const rtl::CaseStmt&>(stmt);
      const BitVector subject = evalExpr(caseStmt.subject());
      const std::uint64_t subjectValue = subject.toUint64();
      for (std::size_t i = 0; i < caseStmt.items().size(); ++i) {
        const auto& labels = caseStmt.items()[i].labels;
        if (std::find(labels.begin(), labels.end(), subjectValue) != labels.end()) {
          executeStmtBlocking(caseStmt.stmtAt(static_cast<int>(i)));
          return;
        }
      }
      if (caseStmt.hasDefault()) {
        executeStmtBlocking(caseStmt.stmtAt(static_cast<int>(caseStmt.items().size())));
      }
      break;
    }
    case StmtKind::Assign: {
      const auto& assign = static_cast<const rtl::AssignStmt&>(stmt);
      RTLOCK_REQUIRE(!assign.nonBlocking(),
                     "non-blocking assignment inside combinational process");
      writeLValue(assign.target(), evalExpr(assign.value()));
      break;
    }
  }
}

void Evaluator::collectNonBlocking(
    const Stmt& stmt, std::vector<std::pair<rtl::LValue, BitVector>>& updates) const {
  switch (stmt.kind()) {
    case StmtKind::Block: {
      for (int i = 0; i < stmt.stmtSlotCount(); ++i) {
        collectNonBlocking(stmt.stmtAt(i), updates);
      }
      break;
    }
    case StmtKind::If: {
      const auto& ifStmt = static_cast<const rtl::IfStmt&>(stmt);
      if (evalExpr(ifStmt.cond()).any()) {
        collectNonBlocking(ifStmt.stmtAt(0), updates);
      } else if (ifStmt.hasElse()) {
        collectNonBlocking(ifStmt.stmtAt(1), updates);
      }
      break;
    }
    case StmtKind::Case: {
      const auto& caseStmt = static_cast<const rtl::CaseStmt&>(stmt);
      const std::uint64_t subjectValue = evalExpr(caseStmt.subject()).toUint64();
      for (std::size_t i = 0; i < caseStmt.items().size(); ++i) {
        const auto& labels = caseStmt.items()[i].labels;
        if (std::find(labels.begin(), labels.end(), subjectValue) != labels.end()) {
          collectNonBlocking(caseStmt.stmtAt(static_cast<int>(i)), updates);
          return;
        }
      }
      if (caseStmt.hasDefault()) {
        collectNonBlocking(caseStmt.stmtAt(static_cast<int>(caseStmt.items().size())),
                           updates);
      }
      break;
    }
    case StmtKind::Assign: {
      const auto& assign = static_cast<const rtl::AssignStmt&>(stmt);
      RTLOCK_REQUIRE(assign.nonBlocking(), "blocking assignment inside sequential process");
      updates.emplace_back(assign.target(), evalExpr(assign.value()));
      break;
    }
  }
}

void Evaluator::clockEdge(SignalId clock) {
  updatesScratch_.clear();
  for (const SequentialGroup& group : schedule_.sequential) {
    if (group.clock != clock) continue;
    for (const rtl::Process* process : group.processes) {
      collectNonBlocking(*process->body, updatesScratch_);
    }
  }
  for (const auto& [lvalue, value] : updatesScratch_) writeLValue(lvalue, value);
  settle();
}

void Evaluator::writeLValue(const rtl::LValue& lvalue, const BitVector& value) {
  const int signalWidth = module_.signal(lvalue.signal).width;
  if (lvalue.wholeSignal()) {
    values_[lvalue.signal] = value.resized(signalWidth);
    return;
  }
  const auto [hi, lo] = *lvalue.range;
  RTLOCK_REQUIRE(lo >= 0 && hi >= lo && hi < signalWidth, "lvalue slice out of range");
  values_[lvalue.signal].insert(lo, value.resized(hi - lo + 1));
}

BitVector Evaluator::evalExpr(const Expr& expr) const {
  const int width = expr.width();
  switch (expr.kind()) {
    case ExprKind::Constant:
      return BitVector{static_cast<const rtl::ConstantExpr&>(expr).value(), width};
    case ExprKind::SignalRef:
      return values_[static_cast<const rtl::SignalRefExpr&>(expr).signal()];
    case ExprKind::KeyRef: {
      const auto& key = static_cast<const rtl::KeyRefExpr&>(expr);
      RTLOCK_REQUIRE(key.firstBit() + key.width() <= key_.width(),
                     "key reference exceeds key width");
      return key_.slice(key.firstBit() + key.width() - 1, key.firstBit());
    }
    case ExprKind::Unary: {
      const auto& unary = static_cast<const rtl::UnaryExpr&>(expr);
      return evalUnaryOp(unary.op(), evalExpr(unary.operand()), width);
    }
    case ExprKind::Binary: {
      const auto& binary = static_cast<const rtl::BinaryExpr&>(expr);
      return evalBinaryOp(binary.op(), evalExpr(binary.lhs()), evalExpr(binary.rhs()), width);
    }
    case ExprKind::Ternary: {
      const auto& ternary = static_cast<const rtl::TernaryExpr&>(expr);
      const BitVector chosen = evalExpr(ternary.cond()).any() ? evalExpr(ternary.thenExpr())
                                                              : evalExpr(ternary.elseExpr());
      return chosen.resized(width);
    }
    case ExprKind::Concat: {
      std::vector<BitVector> parts;
      parts.reserve(static_cast<std::size_t>(expr.exprSlotCount()));
      for (int i = 0; i < expr.exprSlotCount(); ++i) {
        parts.push_back(evalExpr(expr.child(i)));
      }
      return BitVector::concat(parts);
    }
    case ExprKind::Slice: {
      const auto& slice = static_cast<const rtl::SliceExpr&>(expr);
      return evalExpr(slice.value()).slice(slice.hi(), slice.lo());
    }
  }
  RTLOCK_UNREACHABLE("expression kind");
}

}  // namespace rtlock::sim
