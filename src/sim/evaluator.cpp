#include "sim/evaluator.hpp"

#include <algorithm>
#include <queue>
#include <set>

namespace rtlock::sim {

namespace {

using rtl::Expr;
using rtl::ExprKind;
using rtl::OpKind;
using rtl::SignalId;
using rtl::Stmt;
using rtl::StmtKind;

/// Signals read by an expression.
void collectReads(const Expr& expr, std::set<SignalId>& reads) {
  rtl::forEachExpr(expr, [&reads](const Expr& node) {
    if (node.kind() == ExprKind::SignalRef) {
      reads.insert(static_cast<const rtl::SignalRefExpr&>(node).signal());
    }
  });
}

void collectStmtReadsWrites(const Stmt& stmt, std::set<SignalId>& reads,
                            std::set<SignalId>& writes) {
  rtl::forEachStmt(stmt, [&](const Stmt& node) {
    auto& mutableNode = const_cast<Stmt&>(node);
    for (int i = 0; i < mutableNode.exprSlotCount(); ++i) {
      collectReads(*mutableNode.exprSlotAt(i), reads);
    }
    if (node.kind() == StmtKind::Assign) {
      writes.insert(static_cast<const rtl::AssignStmt&>(node).target().signal);
    }
  });
}

}  // namespace

Evaluator::Evaluator(const rtl::Module& module) : module_(module) {
  values_.reserve(module.signalCount());
  for (SignalId id = 0; id < module.signalCount(); ++id) {
    values_.emplace_back(module.signal(id).width);
  }
  if (module.keyWidth() > 0) key_ = BitVector{module.keyWidth()};
  buildSchedule();
}

void Evaluator::reset() {
  for (SignalId id = 0; id < module_.signalCount(); ++id) {
    values_[id] = BitVector{module_.signal(id).width};
  }
  if (module_.keyWidth() > 0) key_ = BitVector{module_.keyWidth()};
}

void Evaluator::setValue(SignalId signal, BitVector value) {
  RTLOCK_REQUIRE(signal < values_.size(), "signal id out of range");
  values_[signal] = value.resized(module_.signal(signal).width);
}

const BitVector& Evaluator::value(SignalId signal) const {
  RTLOCK_REQUIRE(signal < values_.size(), "signal id out of range");
  return values_[signal];
}

void Evaluator::setKey(BitVector key) {
  RTLOCK_REQUIRE(module_.keyWidth() > 0, "module has no key input");
  key_ = key.resized(module_.keyWidth());
}

void Evaluator::buildSchedule() {
  std::vector<Unit> units;

  for (const auto& assign : module_.contAssigns()) {
    Unit unit;
    unit.assign = assign.get();
    std::set<SignalId> reads;
    collectReads(assign->value(), reads);
    unit.reads.assign(reads.begin(), reads.end());
    unit.writes.push_back(assign->target().signal);
    units.push_back(std::move(unit));
  }

  for (const auto& process : module_.processes()) {
    if (process->kind == rtl::ProcessKind::Sequential) {
      if (std::find(clocks_.begin(), clocks_.end(), process->clock) == clocks_.end()) {
        clocks_.push_back(process->clock);
      }
      continue;
    }
    Unit unit;
    unit.process = process.get();
    std::set<SignalId> reads;
    std::set<SignalId> writes;
    collectStmtReadsWrites(*process->body, reads, writes);
    // A signal both written and read inside one @(*) block is an internal
    // (blocking) chain, not an external dependency.
    for (const SignalId w : writes) reads.erase(w);
    unit.reads.assign(reads.begin(), reads.end());
    unit.writes.assign(writes.begin(), writes.end());
    units.push_back(std::move(unit));
  }

  // Signals produced by sequential processes (or inputs) are sources; build
  // writer map for combinational units only.
  std::vector<int> writerOf(module_.signalCount(), -1);
  for (std::size_t i = 0; i < units.size(); ++i) {
    for (const SignalId w : units[i].writes) {
      writerOf[w] = static_cast<int>(i);
    }
  }

  // Kahn's algorithm over unit dependencies.
  std::vector<std::vector<int>> successors(units.size());
  std::vector<int> inDegree(units.size(), 0);
  for (std::size_t i = 0; i < units.size(); ++i) {
    for (const SignalId r : units[i].reads) {
      const int writer = writerOf[r];
      if (writer >= 0 && writer != static_cast<int>(i)) {
        successors[static_cast<std::size_t>(writer)].push_back(static_cast<int>(i));
        ++inDegree[i];
      }
    }
  }

  std::queue<int> ready;
  for (std::size_t i = 0; i < units.size(); ++i) {
    if (inDegree[i] == 0) ready.push(static_cast<int>(i));
  }
  schedule_.clear();
  schedule_.reserve(units.size());
  std::vector<int> order;
  while (!ready.empty()) {
    const int index = ready.front();
    ready.pop();
    order.push_back(index);
    for (const int next : successors[static_cast<std::size_t>(index)]) {
      if (--inDegree[static_cast<std::size_t>(next)] == 0) ready.push(next);
    }
  }
  if (order.size() != units.size()) {
    throw support::Error{"combinational loop detected in module '" + module_.name() + "'"};
  }
  for (const int index : order) schedule_.push_back(std::move(units[static_cast<std::size_t>(index)]));
}

void Evaluator::settle() {
  for (const Unit& unit : schedule_) executeUnit(unit);
}

void Evaluator::executeUnit(const Unit& unit) {
  if (unit.assign != nullptr) {
    writeLValue(unit.assign->target(), evalExpr(unit.assign->value()));
  } else {
    executeStmtBlocking(*unit.process->body);
  }
}

void Evaluator::executeStmtBlocking(const Stmt& stmt) {
  switch (stmt.kind()) {
    case StmtKind::Block: {
      auto& block = const_cast<Stmt&>(stmt);
      for (int i = 0; i < block.stmtSlotCount(); ++i) executeStmtBlocking(*block.stmtSlotAt(i));
      break;
    }
    case StmtKind::If: {
      const auto& ifStmt = static_cast<const rtl::IfStmt&>(stmt);
      auto& mutableIf = const_cast<rtl::IfStmt&>(ifStmt);
      if (evalExpr(ifStmt.cond()).any()) {
        executeStmtBlocking(*mutableIf.stmtSlotAt(0));
      } else if (ifStmt.hasElse()) {
        executeStmtBlocking(*mutableIf.stmtSlotAt(1));
      }
      break;
    }
    case StmtKind::Case: {
      const auto& caseStmt = static_cast<const rtl::CaseStmt&>(stmt);
      auto& mutableCase = const_cast<rtl::CaseStmt&>(caseStmt);
      const BitVector subject = evalExpr(caseStmt.subject());
      const std::uint64_t subjectValue = subject.toUint64();
      for (std::size_t i = 0; i < caseStmt.items().size(); ++i) {
        const auto& labels = caseStmt.items()[i].labels;
        if (std::find(labels.begin(), labels.end(), subjectValue) != labels.end()) {
          executeStmtBlocking(*mutableCase.stmtSlotAt(static_cast<int>(i)));
          return;
        }
      }
      if (caseStmt.hasDefault()) {
        executeStmtBlocking(
            *mutableCase.stmtSlotAt(static_cast<int>(caseStmt.items().size())));
      }
      break;
    }
    case StmtKind::Assign: {
      const auto& assign = static_cast<const rtl::AssignStmt&>(stmt);
      RTLOCK_REQUIRE(!assign.nonBlocking(),
                     "non-blocking assignment inside combinational process");
      writeLValue(assign.target(), evalExpr(assign.value()));
      break;
    }
  }
}

void Evaluator::collectNonBlocking(
    const Stmt& stmt, std::vector<std::pair<rtl::LValue, BitVector>>& updates) const {
  switch (stmt.kind()) {
    case StmtKind::Block: {
      auto& block = const_cast<Stmt&>(stmt);
      for (int i = 0; i < block.stmtSlotCount(); ++i) {
        collectNonBlocking(*block.stmtSlotAt(i), updates);
      }
      break;
    }
    case StmtKind::If: {
      const auto& ifStmt = static_cast<const rtl::IfStmt&>(stmt);
      auto& mutableIf = const_cast<rtl::IfStmt&>(ifStmt);
      if (evalExpr(ifStmt.cond()).any()) {
        collectNonBlocking(*mutableIf.stmtSlotAt(0), updates);
      } else if (ifStmt.hasElse()) {
        collectNonBlocking(*mutableIf.stmtSlotAt(1), updates);
      }
      break;
    }
    case StmtKind::Case: {
      const auto& caseStmt = static_cast<const rtl::CaseStmt&>(stmt);
      auto& mutableCase = const_cast<rtl::CaseStmt&>(caseStmt);
      const std::uint64_t subjectValue = evalExpr(caseStmt.subject()).toUint64();
      for (std::size_t i = 0; i < caseStmt.items().size(); ++i) {
        const auto& labels = caseStmt.items()[i].labels;
        if (std::find(labels.begin(), labels.end(), subjectValue) != labels.end()) {
          collectNonBlocking(*mutableCase.stmtSlotAt(static_cast<int>(i)), updates);
          return;
        }
      }
      if (caseStmt.hasDefault()) {
        collectNonBlocking(
            *mutableCase.stmtSlotAt(static_cast<int>(caseStmt.items().size())), updates);
      }
      break;
    }
    case StmtKind::Assign: {
      const auto& assign = static_cast<const rtl::AssignStmt&>(stmt);
      RTLOCK_REQUIRE(assign.nonBlocking(), "blocking assignment inside sequential process");
      updates.emplace_back(assign.target(), evalExpr(assign.value()));
      break;
    }
  }
}

void Evaluator::clockEdge(SignalId clock) {
  std::vector<std::pair<rtl::LValue, BitVector>> updates;
  for (const auto& process : module_.processes()) {
    if (process->kind == rtl::ProcessKind::Sequential && process->clock == clock) {
      collectNonBlocking(*process->body, updates);
    }
  }
  for (const auto& [lvalue, value] : updates) writeLValue(lvalue, value);
  settle();
}

void Evaluator::writeLValue(const rtl::LValue& lvalue, const BitVector& value) {
  const int signalWidth = module_.signal(lvalue.signal).width;
  if (lvalue.wholeSignal()) {
    values_[lvalue.signal] = value.resized(signalWidth);
    return;
  }
  const auto [hi, lo] = *lvalue.range;
  RTLOCK_REQUIRE(lo >= 0 && hi >= lo && hi < signalWidth, "lvalue slice out of range");
  values_[lvalue.signal].insert(lo, value.resized(hi - lo + 1));
}

BitVector Evaluator::evalExpr(const Expr& expr) const {
  const int width = expr.width();
  switch (expr.kind()) {
    case ExprKind::Constant:
      return BitVector{static_cast<const rtl::ConstantExpr&>(expr).value(), width};
    case ExprKind::SignalRef:
      return values_[static_cast<const rtl::SignalRefExpr&>(expr).signal()];
    case ExprKind::KeyRef: {
      const auto& key = static_cast<const rtl::KeyRefExpr&>(expr);
      RTLOCK_REQUIRE(key.firstBit() + key.width() <= key_.width(),
                     "key reference exceeds key width");
      return key_.slice(key.firstBit() + key.width() - 1, key.firstBit());
    }
    case ExprKind::Unary: {
      const auto& unary = static_cast<const rtl::UnaryExpr&>(expr);
      const BitVector operand = evalExpr(unary.operand());
      switch (unary.op()) {
        case rtl::UnaryOp::Neg: return BitVector::neg(operand, width);
        case rtl::UnaryOp::BitNot: return BitVector::bitNot(operand, width);
        case rtl::UnaryOp::LogNot: return BitVector{operand.any() ? 0u : 1u, 1};
        case rtl::UnaryOp::RedAnd:
          return BitVector{operand.popcount() == operand.width() ? 1u : 0u, 1};
        case rtl::UnaryOp::RedOr: return BitVector{operand.any() ? 1u : 0u, 1};
        case rtl::UnaryOp::RedXor: return BitVector{(operand.popcount() & 1) != 0 ? 1u : 0u, 1};
      }
      RTLOCK_UNREACHABLE("unary operator");
    }
    case ExprKind::Binary: {
      const auto& binary = static_cast<const rtl::BinaryExpr&>(expr);
      const BitVector lhs = evalExpr(binary.lhs());
      const BitVector rhs = evalExpr(binary.rhs());
      switch (binary.op()) {
        case OpKind::Add: return BitVector::add(lhs, rhs, width);
        case OpKind::Sub: return BitVector::sub(lhs, rhs, width);
        case OpKind::Mul: return BitVector::mul(lhs, rhs, width);
        case OpKind::Div: return BitVector::div(lhs, rhs, width);
        case OpKind::Mod: return BitVector::mod(lhs, rhs, width);
        case OpKind::Pow: return BitVector::pow(lhs, rhs, width);
        case OpKind::Shl: return BitVector::shl(lhs, rhs, width);
        // Unsigned semantics: >>> behaves as logical shift (signed nets are
        // outside the subset).
        case OpKind::Shr:
        case OpKind::AShr: return BitVector::shr(lhs, rhs, width);
        case OpKind::And: return BitVector::bitAnd(lhs, rhs, width);
        case OpKind::Or: return BitVector::bitOr(lhs, rhs, width);
        case OpKind::Xor: return BitVector::bitXor(lhs, rhs, width);
        case OpKind::Xnor: return BitVector::bitXnor(lhs, rhs, width);
        case OpKind::Lt: return BitVector{BitVector::ult(lhs, rhs) ? 1u : 0u, 1};
        case OpKind::Gt: return BitVector{BitVector::ult(rhs, lhs) ? 1u : 0u, 1};
        case OpKind::Le: return BitVector{BitVector::ule(lhs, rhs) ? 1u : 0u, 1};
        case OpKind::Ge: return BitVector{BitVector::ule(rhs, lhs) ? 1u : 0u, 1};
        case OpKind::Eq: return BitVector{BitVector::eq(lhs, rhs) ? 1u : 0u, 1};
        case OpKind::Ne: return BitVector{BitVector::eq(lhs, rhs) ? 0u : 1u, 1};
        case OpKind::LAnd: return BitVector{lhs.any() && rhs.any() ? 1u : 0u, 1};
        case OpKind::LOr: return BitVector{lhs.any() || rhs.any() ? 1u : 0u, 1};
      }
      RTLOCK_UNREACHABLE("binary operator");
    }
    case ExprKind::Ternary: {
      const auto& ternary = static_cast<const rtl::TernaryExpr&>(expr);
      const BitVector chosen = evalExpr(ternary.cond()).any() ? evalExpr(ternary.thenExpr())
                                                              : evalExpr(ternary.elseExpr());
      return chosen.resized(width);
    }
    case ExprKind::Concat: {
      auto& concat = const_cast<Expr&>(expr);
      std::vector<BitVector> parts;
      parts.reserve(static_cast<std::size_t>(concat.exprSlotCount()));
      for (int i = 0; i < concat.exprSlotCount(); ++i) {
        parts.push_back(evalExpr(*concat.exprSlotAt(i)));
      }
      return BitVector::concat(parts);
    }
    case ExprKind::Slice: {
      const auto& slice = static_cast<const rtl::SliceExpr&>(expr);
      return evalExpr(slice.value()).slice(slice.hi(), slice.lo());
    }
  }
  RTLOCK_UNREACHABLE("expression kind");
}

}  // namespace rtlock::sim
