#include "sim/schedule.hpp"

#include <algorithm>
#include <iterator>
#include <queue>
#include <utility>

#include "rtl/traverse.hpp"

namespace rtlock::sim {

namespace {

using rtl::Expr;
using rtl::ExprKind;
using rtl::SignalId;
using rtl::Stmt;
using rtl::StmtKind;

}  // namespace

void collectExprReads(const Expr& expr, std::set<SignalId>& reads) {
  rtl::forEachExpr(expr, [&reads](const Expr& node) {
    if (node.kind() == ExprKind::SignalRef) {
      reads.insert(static_cast<const rtl::SignalRefExpr&>(node).signal());
    }
  });
}

void collectStmtReadsWrites(const Stmt& stmt, std::set<SignalId>& reads,
                            std::set<SignalId>& writes) {
  rtl::forEachStmt(stmt, [&](const Stmt& node) {
    for (int i = 0; i < node.exprSlotCount(); ++i) {
      collectExprReads(node.exprAt(i), reads);
    }
    if (node.kind() == StmtKind::Assign) {
      writes.insert(static_cast<const rtl::AssignStmt&>(node).target().signal);
    }
  });
}

Schedule buildSchedule(const rtl::Module& module) {
  Schedule schedule;

  struct PendingUnit {
    ScheduleUnit unit;
    std::vector<SignalId> reads;
    std::vector<SignalId> writes;
  };
  std::vector<PendingUnit> units;

  for (const auto& assign : module.contAssigns()) {
    PendingUnit unit;
    unit.unit.assign = assign.get();
    std::set<SignalId> reads;
    collectExprReads(assign->value(), reads);
    unit.reads.assign(reads.begin(), reads.end());
    unit.writes.push_back(assign->target().signal);
    units.push_back(std::move(unit));
  }

  for (const auto& process : module.processes()) {
    if (process->kind == rtl::ProcessKind::Sequential) {
      auto group = std::find_if(schedule.sequential.begin(), schedule.sequential.end(),
                                [&](const SequentialGroup& g) { return g.clock == process->clock; });
      if (group == schedule.sequential.end()) {
        schedule.sequential.push_back({process->clock, {}});
        schedule.clocks.push_back(process->clock);
        group = std::prev(schedule.sequential.end());
      }
      group->processes.push_back(process.get());
      continue;
    }
    PendingUnit unit;
    unit.unit.process = process.get();
    std::set<SignalId> reads;
    std::set<SignalId> writes;
    collectStmtReadsWrites(*process->body, reads, writes);
    // A signal both written and read inside one @(*) block is an internal
    // (blocking) chain, not an external dependency.
    for (const SignalId w : writes) reads.erase(w);
    unit.reads.assign(reads.begin(), reads.end());
    unit.writes.assign(writes.begin(), writes.end());
    units.push_back(std::move(unit));
  }

  // Signals produced by sequential processes (or inputs) are sources; build
  // writer map for combinational units only.
  std::vector<int> writerOf(module.signalCount(), -1);
  for (std::size_t i = 0; i < units.size(); ++i) {
    for (const SignalId w : units[i].writes) {
      writerOf[w] = static_cast<int>(i);
    }
  }

  // Kahn's algorithm over unit dependencies.
  std::vector<std::vector<int>> successors(units.size());
  std::vector<int> inDegree(units.size(), 0);
  for (std::size_t i = 0; i < units.size(); ++i) {
    for (const SignalId r : units[i].reads) {
      const int writer = writerOf[r];
      if (writer >= 0 && writer != static_cast<int>(i)) {
        successors[static_cast<std::size_t>(writer)].push_back(static_cast<int>(i));
        ++inDegree[i];
      }
    }
  }

  std::queue<int> ready;
  for (std::size_t i = 0; i < units.size(); ++i) {
    if (inDegree[i] == 0) ready.push(static_cast<int>(i));
  }
  schedule.comb.reserve(units.size());
  while (!ready.empty()) {
    const int index = ready.front();
    ready.pop();
    schedule.comb.push_back(units[static_cast<std::size_t>(index)].unit);
    for (const int next : successors[static_cast<std::size_t>(index)]) {
      if (--inDegree[static_cast<std::size_t>(next)] == 0) ready.push(next);
    }
  }
  if (schedule.comb.size() != units.size()) {
    throw support::Error{"combinational loop detected in module '" + module.name() + "'"};
  }
  return schedule;
}

}  // namespace rtlock::sim
