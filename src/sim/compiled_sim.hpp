// Fast cycle simulator executing a compiled bytecode Program.
//
// CompiledSim mirrors the Evaluator interface (reset / setValue / setKey /
// settle / clockEdge / value) but executes a flat, branch-light tape over a
// preallocated word arena instead of walking the IR:
//  * zero per-node allocation — signals <= 64 bits wide (the common case)
//    live in single words manipulated in place; wide concat values keep the
//    multi-word BitVector representation via fallback opcodes;
//  * non-blocking updates are double-buffered through shadow slots instead
//    of a per-edge rebuilt update list;
//  * if/case run as conditional jumps;
//  * key slices materialise into arena slots on setKey — zero per-cycle key
//    handling.
//
// One Program (shared_ptr) can back many CompiledSim instances; each owns
// its own arena, so hypothesis keys or stimuli can be streamed in parallel.
//
// The reference interpreter (sim/evaluator.hpp) stays the executable
// semantics; tests/sim/compiled_sim_test.cpp differential-tests the two
// backends against each other over every registry design.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "sim/bitvector.hpp"
#include "sim/program.hpp"

namespace rtlock::sim {

class CompiledSim {
 public:
  /// Compiles `module` privately.  The module may be mutated or destroyed
  /// afterwards; recompile after relocking.
  explicit CompiledSim(const rtl::Module& module);

  /// Runs a pre-compiled program (shared across instances).
  explicit CompiledSim(std::shared_ptr<const Program> program);

  /// Zeroes all signals (registers included) and the key.
  void reset();

  void setValue(rtl::SignalId signal, const BitVector& value);
  [[nodiscard]] BitVector value(rtl::SignalId signal) const;

  /// Key must match the module's key width (ignored for unlocked modules).
  void setKey(const BitVector& key);

  /// Settles all combinational logic (call after changing inputs).
  void settle();

  /// Applies one positive edge on `clock`, then resettles.
  void clockEdge(rtl::SignalId clock);

  /// Clocks that drive at least one sequential process.
  [[nodiscard]] const std::vector<rtl::SignalId>& clocks() const noexcept {
    return program_->clocks();
  }

  [[nodiscard]] const Program& program() const noexcept { return *program_; }

  // ---- batch-stimulus API ----

  /// One batch run description: which ports to drive (in stimulus order),
  /// which to sample, and how many cycles per vector.
  struct BatchRequest {
    std::vector<rtl::SignalId> inputs;
    std::vector<rtl::SignalId> outputs;
    /// Clock to toggle each cycle; nullopt runs purely combinationally.
    std::optional<rtl::SignalId> clock;
    int cycles = 1;
  };

  /// Streams many stimulus/key pairs through the compiled tape (compile
  /// once, simulate many).  `stimuli[v]` holds `cycles * inputs.size()`
  /// values in cycle-major order; `keys` is empty (key stays zero) or holds
  /// one key per vector.  Returns one output trace per vector: outputs
  /// sampled after each settle and — for clocked runs — again after each
  /// edge, in `outputs` order.
  [[nodiscard]] std::vector<std::vector<BitVector>> runVectors(
      const BatchRequest& request, const std::vector<std::vector<BitVector>>& stimuli,
      const std::vector<BitVector>& keys);

 private:
  void exec(const std::vector<Instr>& tape);
  [[nodiscard]] BitVector load(std::int32_t slotId) const;
  void store(std::int32_t slotId, const BitVector& value);

  std::shared_ptr<const Program> program_;
  std::vector<std::uint64_t> words_;
  BitVector key_{1};
};

}  // namespace rtlock::sim
