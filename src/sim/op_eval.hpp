// Operator semantics shared by both simulation backends.
//
// The reference interpreter applies these directly while walking the
// expression tree; the compiled backend calls them from its wide-value
// fallback opcodes, so a single definition fixes the semantics of every
// operator for both.
#pragma once

#include "rtl/ops.hpp"
#include "sim/bitvector.hpp"

namespace rtlock::sim {

/// Result of `lhs <op> rhs` truncated/extended to `width` bits.  Unsigned
/// semantics throughout: >>> behaves as logical shift (signed nets are
/// outside the subset).
[[nodiscard]] BitVector evalBinaryOp(rtl::OpKind op, const BitVector& lhs, const BitVector& rhs,
                                     int width);

/// Result of the unary operator applied to `operand` at `width` bits.
[[nodiscard]] BitVector evalUnaryOp(rtl::UnaryOp op, const BitVector& operand, int width);

}  // namespace rtlock::sim
