#include "sim/compiler.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/schedule.hpp"

namespace rtlock::sim {

namespace {

using rtl::Expr;
using rtl::ExprKind;
using rtl::OpKind;
using rtl::SignalId;
using rtl::Stmt;
using rtl::StmtKind;

constexpr int kNarrow = 64;  // widths up to this use the single-word fast path

/// Narrow opcode for a binary operator; Gt/Ge lower to Lt/Le with swapped
/// operands, so they have no opcode of their own.
Opcode narrowBinaryOpcode(OpKind op) {
  switch (op) {
    case OpKind::Add: return Opcode::Add;
    case OpKind::Sub: return Opcode::Sub;
    case OpKind::Mul: return Opcode::Mul;
    case OpKind::Div: return Opcode::Div;
    case OpKind::Mod: return Opcode::Mod;
    case OpKind::Pow: return Opcode::Pow;
    case OpKind::Shl: return Opcode::Shl;
    case OpKind::Shr:
    case OpKind::AShr: return Opcode::Shr;
    case OpKind::And: return Opcode::And;
    case OpKind::Or: return Opcode::Or;
    case OpKind::Xor: return Opcode::Xor;
    case OpKind::Xnor: return Opcode::Xnor;
    case OpKind::Lt:
    case OpKind::Gt: return Opcode::Lt;
    case OpKind::Le:
    case OpKind::Ge: return Opcode::Le;
    case OpKind::Eq: return Opcode::Eq;
    case OpKind::Ne: return Opcode::Ne;
    case OpKind::LAnd: return Opcode::LAnd;
    case OpKind::LOr: return Opcode::LOr;
  }
  RTLOCK_UNREACHABLE("binary operator");
}

struct CompilerImpl {
  const rtl::Module& module;
  // Sliced mode: operands are slot ids, all widths use the narrow opcodes
  // (the sliced executor reads widths from the slot table), and control flow
  // is if-converted under a 1-bit predicate slot instead of jumps.
  const bool sliced;

  // Program pieces, assembled by Compiler::compile at the end.
  std::vector<Slot> slots;
  std::vector<std::int32_t> signalSlots;
  std::vector<Instr> combTape;
  std::vector<SequentialTape> seqTapes;
  std::vector<KeyBinding> keyBindings;
  std::vector<std::int32_t> argPool;
  std::vector<rtl::SignalId> clocks;

  std::int32_t nextOffset = 0;
  std::vector<std::pair<std::int32_t, std::uint64_t>> constInits;  // {offset, word0}
  std::map<std::pair<std::uint64_t, int>, std::int32_t> constSlots;
  std::map<std::pair<int, int>, std::int32_t> keySlots;
  std::unordered_map<SignalId, std::int32_t> shadowSlots;

  // Lowering context: the tape being emitted, and (for sequential tapes)
  // whether assignments are non-blocking plus the set of written signals.
  std::vector<Instr>* tape = nullptr;
  bool nonBlocking = false;
  std::set<SignalId>* seqWrites = nullptr;
  // Sliced mode: 1-bit slot guarding the statements being lowered, or -1 at
  // top level (store unconditionally).
  std::int32_t pred = -1;

  CompilerImpl(const rtl::Module& m, bool slicedMode) : module(m), sliced(slicedMode) {}

  [[nodiscard]] std::int32_t addSlot(int width) {
    const auto id = static_cast<std::int32_t>(slots.size());
    slots.push_back({nextOffset, width});
    nextOffset += slots.back().wordCount();
    return id;
  }

  [[nodiscard]] const Slot& slot(std::int32_t id) const {
    return slots[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] std::int32_t offset(std::int32_t id) const { return slot(id).offset; }
  [[nodiscard]] bool narrow(std::int32_t id) const { return slot(id).width <= kNarrow; }

  [[nodiscard]] std::int32_t constSlot(std::uint64_t value, int width) {
    const std::uint64_t canonical = width < 64 ? (value & narrowMask(width)) : value;
    const auto [it, inserted] = constSlots.try_emplace({canonical, width}, 0);
    if (inserted) {
      it->second = addSlot(width);
      constInits.emplace_back(offset(it->second), canonical);
    }
    return it->second;
  }

  [[nodiscard]] std::int32_t keySlot(int firstBit, int width) {
    RTLOCK_REQUIRE(firstBit + width <= module.keyWidth(), "key reference exceeds key width");
    const auto [it, inserted] = keySlots.try_emplace({firstBit, width}, 0);
    if (inserted) {
      it->second = addSlot(width);
      keyBindings.push_back({firstBit, width, it->second});
    }
    return it->second;
  }

  [[nodiscard]] std::int32_t shadowSlot(SignalId signal) {
    const auto [it, inserted] = shadowSlots.try_emplace(signal, 0);
    if (inserted) it->second = addSlot(module.signal(signal).width);
    return it->second;
  }

  void emit(Opcode op, int width, std::int32_t dst, std::int32_t a, std::int32_t b = 0,
            std::int32_t c = 0) {
    tape->push_back({op, static_cast<std::uint8_t>(width), dst, a, b, c});
  }

  /// Emits a placeholder jump; the target is patched later.
  [[nodiscard]] std::size_t emitJump(Opcode op, std::int32_t a = 0, std::int32_t b = 0) {
    tape->push_back({op, 0, 0, a, b, 0});
    return tape->size() - 1;
  }

  void patchJump(std::size_t at, std::size_t target) {
    (*tape)[at].dst = static_cast<std::int32_t>(target);
  }

  [[nodiscard]] std::size_t here() const { return tape->size(); }

  /// Reduces a slot to a single "is non-zero" word usable by JumpIfZero /
  /// narrow Select; returns the word offset.
  [[nodiscard]] std::int32_t condWord(std::int32_t slotId) {
    if (narrow(slotId)) return offset(slotId);
    const std::int32_t reduced = addSlot(1);
    emit(Opcode::WideUnary, 0, reduced, slotId, 0, static_cast<std::int32_t>(rtl::UnaryOp::RedOr));
    return offset(reduced);
  }

  /// Operand encoding: word offset for the scalar tape, slot id for sliced.
  [[nodiscard]] std::int32_t ref(std::int32_t slotId) const {
    return sliced ? slotId : offset(slotId);
  }

  /// Sliced mode: reduces a slot to a 1-bit "is non-zero" slot, the only
  /// condition shape Select/predication accept (lane masks live in plane 0).
  [[nodiscard]] std::int32_t boolSlot(std::int32_t slotId) {
    if (slot(slotId).width == 1) return slotId;
    const std::int32_t reduced = addSlot(1);
    emit(Opcode::RedOr, 0, reduced, slotId);
    return reduced;
  }

  /// Sliced mode: 1-bit slot holding `a & b`, where either may be -1 (true).
  [[nodiscard]] std::int32_t andPred(std::int32_t a, std::int32_t b) {
    if (a < 0) return b;
    if (b < 0) return a;
    const std::int32_t both = addSlot(1);
    emit(Opcode::And, 0, both, a, b);
    return both;
  }

  /// Sliced mode: 1-bit slot holding `!a`.
  [[nodiscard]] std::int32_t notPred(std::int32_t a) {
    const std::int32_t inverted = addSlot(1);
    emit(Opcode::LogNot, 0, inverted, a);
    return inverted;
  }

  // ---- expressions ------------------------------------------------------

  /// Lowers `expr`; returns the slot holding its value.
  [[nodiscard]] std::int32_t lowerExpr(const Expr& expr) {
    const int width = expr.width();
    switch (expr.kind()) {
      case ExprKind::Constant:
        return constSlot(static_cast<const rtl::ConstantExpr&>(expr).value(), width);
      case ExprKind::SignalRef:
        return signalSlots[static_cast<const rtl::SignalRefExpr&>(expr).signal()];
      case ExprKind::KeyRef: {
        const auto& key = static_cast<const rtl::KeyRefExpr&>(expr);
        return keySlot(key.firstBit(), key.width());
      }
      case ExprKind::Unary: return lowerUnary(static_cast<const rtl::UnaryExpr&>(expr));
      case ExprKind::Binary: return lowerBinary(static_cast<const rtl::BinaryExpr&>(expr));
      case ExprKind::Ternary: return lowerTernary(static_cast<const rtl::TernaryExpr&>(expr));
      case ExprKind::Concat: return lowerConcat(expr);
      case ExprKind::Slice: return lowerSlice(static_cast<const rtl::SliceExpr&>(expr));
    }
    RTLOCK_UNREACHABLE("expression kind");
  }

  [[nodiscard]] std::int32_t lowerUnary(const rtl::UnaryExpr& expr) {
    const std::int32_t operand = lowerExpr(expr.operand());
    const int width = expr.width();
    const std::int32_t dst = addSlot(width);
    if (!sliced && (width > kNarrow || !narrow(operand))) {
      emit(Opcode::WideUnary, 0, dst, operand, 0, static_cast<std::int32_t>(expr.op()));
      return dst;
    }
    const int w = sliced ? 0 : width;  // sliced kernels read widths from slots
    const int operandWidth = slot(operand).width;
    switch (expr.op()) {
      case rtl::UnaryOp::Neg: emit(Opcode::Neg, w, ref(dst), ref(operand)); break;
      case rtl::UnaryOp::BitNot: emit(Opcode::Not, w, ref(dst), ref(operand)); break;
      case rtl::UnaryOp::LogNot: emit(Opcode::LogNot, w, ref(dst), ref(operand)); break;
      case rtl::UnaryOp::RedAnd:
        emit(Opcode::RedAnd, w, ref(dst), ref(operand), sliced ? 0 : operandWidth);
        break;
      case rtl::UnaryOp::RedOr: emit(Opcode::RedOr, w, ref(dst), ref(operand)); break;
      case rtl::UnaryOp::RedXor: emit(Opcode::RedXor, w, ref(dst), ref(operand)); break;
    }
    return dst;
  }

  [[nodiscard]] std::int32_t lowerBinary(const rtl::BinaryExpr& expr) {
    const OpKind op = expr.op();
    // Sliced mode: shifts by a constant amount are pure plane relabelings —
    // lower them to ShlConst / SliceLow so the executor never has to leave
    // the bitwise domain for the (overwhelmingly common) fixed-shift case.
    if (sliced && (op == OpKind::Shl || op == OpKind::Shr || op == OpKind::AShr) &&
        expr.rhs().kind() == ExprKind::Constant) {
      const std::uint64_t amount = static_cast<const rtl::ConstantExpr&>(expr.rhs()).value();
      const std::int32_t operand = lowerExpr(expr.lhs());
      const int width = expr.width();
      const std::int32_t dst = addSlot(width);
      // Clamp to the width that already zeroes everything; keeps int32 safe.
      const auto clamped = static_cast<std::int32_t>(
          std::min<std::uint64_t>(amount, static_cast<std::uint64_t>(slot(operand).width)));
      if (op == OpKind::Shl) {
        emit(Opcode::ShlConst, 0, dst, operand, clamped);
      } else {
        emit(Opcode::SliceLow, 0, dst, operand, clamped);
      }
      return dst;
    }
    std::int32_t lhs = lowerExpr(expr.lhs());
    std::int32_t rhs = lowerExpr(expr.rhs());
    const int width = expr.width();
    const std::int32_t dst = addSlot(width);
    if (!sliced && (width > kNarrow || !narrow(lhs) || !narrow(rhs))) {
      emit(Opcode::WideBinary, 0, dst, lhs, rhs, static_cast<std::int32_t>(expr.op()));
      return dst;
    }
    // Gt/Ge are Lt/Le with the operands swapped.
    if (op == OpKind::Gt || op == OpKind::Ge) std::swap(lhs, rhs);
    // Shr zeroes the result when the amount reaches the *operand* width.
    const std::int32_t aux =
        !sliced && (op == OpKind::Shr || op == OpKind::AShr) ? slot(lhs).width : 0;
    emit(narrowBinaryOpcode(op), sliced ? 0 : width, ref(dst), ref(lhs), ref(rhs), aux);
    return dst;
  }

  [[nodiscard]] std::int32_t lowerTernary(const rtl::TernaryExpr& expr) {
    const std::int32_t cond = lowerExpr(expr.cond());
    const std::int32_t thenSlot = lowerExpr(expr.thenExpr());
    const std::int32_t elseSlot = lowerExpr(expr.elseExpr());
    const int width = expr.width();
    const std::int32_t dst = addSlot(width);
    if (sliced) {
      emit(Opcode::Select, 0, dst, boolSlot(cond), thenSlot, elseSlot);
      return dst;
    }
    if (width > kNarrow || !narrow(thenSlot) || !narrow(elseSlot)) {
      emit(Opcode::WideSelect, 0, dst, cond, thenSlot, elseSlot);
      return dst;
    }
    emit(Opcode::Select, width, offset(dst), condWord(cond), offset(thenSlot),
         offset(elseSlot));
    return dst;
  }

  [[nodiscard]] std::int32_t lowerConcat(const Expr& expr) {
    std::vector<std::int32_t> parts;
    parts.reserve(static_cast<std::size_t>(expr.exprSlotCount()));
    for (int i = 0; i < expr.exprSlotCount(); ++i) parts.push_back(lowerExpr(expr.exprAt(i)));
    if (parts.size() == 1) return parts.front();

    const int width = expr.width();
    if (!sliced && width > kNarrow) {
      const std::int32_t dst = addSlot(width);
      const auto start = static_cast<std::int32_t>(argPool.size());
      argPool.insert(argPool.end(), parts.begin(), parts.end());
      emit(Opcode::WideConcat, 0, dst, start, static_cast<std::int32_t>(parts.size()));
      return dst;
    }
    // Fold left: acc = {acc, part}; parts[0] is most significant.
    std::int32_t acc = parts.front();
    int accWidth = slot(acc).width;
    for (std::size_t i = 1; i < parts.size(); ++i) {
      const int partWidth = slot(parts[i]).width;
      accWidth += partWidth;
      const std::int32_t next = addSlot(accWidth);
      emit(Opcode::ConcatPair, sliced ? 0 : accWidth, ref(next), ref(acc), ref(parts[i]),
           partWidth);
      acc = next;
    }
    return acc;
  }

  [[nodiscard]] std::int32_t lowerSlice(const rtl::SliceExpr& expr) {
    const std::int32_t value = lowerExpr(expr.value());
    RTLOCK_REQUIRE(expr.lo() >= 0 && expr.hi() >= expr.lo() && expr.hi() < slot(value).width,
                   "slice bounds out of range");
    const int width = expr.width();
    const std::int32_t dst = addSlot(width);
    if (sliced) {
      emit(Opcode::SliceLow, 0, dst, value, expr.lo());
    } else if (!narrow(value)) {
      emit(Opcode::WideSlice, 0, dst, value, expr.lo());
    } else {
      emit(Opcode::SliceLow, width, offset(dst), offset(value), expr.lo());
    }
    return dst;
  }

  // ---- statements -------------------------------------------------------

  void emitStore(const rtl::LValue& lvalue, std::int32_t value) {
    const int signalWidth = module.signal(lvalue.signal).width;
    if (nonBlocking) seqWrites->insert(lvalue.signal);
    const std::int32_t target =
        nonBlocking ? shadowSlot(lvalue.signal) : signalSlots[lvalue.signal];
    if (sliced) {
      emitStoreSliced(lvalue, target, value, signalWidth);
      return;
    }
    if (lvalue.wholeSignal()) {
      if (signalWidth <= kNarrow) {
        emit(Opcode::Copy, signalWidth, offset(target), offset(value));
      } else {
        emit(Opcode::WideCopy, 0, target, value);
      }
      return;
    }
    const auto [hi, lo] = *lvalue.range;
    RTLOCK_REQUIRE(lo >= 0 && hi >= lo && hi < signalWidth, "lvalue slice out of range");
    const int sliceWidth = hi - lo + 1;
    if (signalWidth <= kNarrow) {
      emit(Opcode::Insert, signalWidth, offset(target), offset(value), lo, sliceWidth);
    } else {
      emit(Opcode::WideInsert, 0, target, value, lo, sliceWidth);
    }
  }

  /// Sliced store: lanes where `pred` is 0 must keep the old target bits, so
  /// a guarded store blends through Select (whose else operand may alias the
  /// destination — the kernel reads each plane before writing it).
  void emitStoreSliced(const rtl::LValue& lvalue, std::int32_t target, std::int32_t value,
                       int signalWidth) {
    if (lvalue.wholeSignal()) {
      if (pred < 0) {
        emit(Opcode::Copy, 0, target, value);
      } else {
        emit(Opcode::Select, 0, target, pred, value, target);
      }
      return;
    }
    const auto [hi, lo] = *lvalue.range;
    RTLOCK_REQUIRE(lo >= 0 && hi >= lo && hi < signalWidth, "lvalue slice out of range");
    const int sliceWidth = hi - lo + 1;
    std::int32_t inserted = value;
    if (pred >= 0) {
      const std::int32_t oldBits = addSlot(sliceWidth);
      emit(Opcode::SliceLow, 0, oldBits, target, lo);
      const std::int32_t blended = addSlot(sliceWidth);
      emit(Opcode::Select, 0, blended, pred, value, oldBits);
      inserted = blended;
    }
    emit(Opcode::Insert, 0, target, inserted, lo, sliceWidth);
  }

  void lowerStmt(const Stmt& stmt) {
    switch (stmt.kind()) {
      case StmtKind::Block: {
        for (int i = 0; i < stmt.stmtSlotCount(); ++i) lowerStmt(stmt.stmtAt(i));
        break;
      }
      case StmtKind::If: {
        const auto& ifStmt = static_cast<const rtl::IfStmt&>(stmt);
        if (sliced) {
          // If-conversion: both arms always execute, their stores guarded by
          // pred & cond (then) and pred & !cond (else).
          const std::int32_t cond = boolSlot(lowerExpr(ifStmt.cond()));
          const std::int32_t saved = pred;
          pred = andPred(saved, cond);
          lowerStmt(ifStmt.stmtAt(0));
          if (ifStmt.hasElse()) {
            pred = andPred(saved, notPred(cond));
            lowerStmt(ifStmt.stmtAt(1));
          }
          pred = saved;
          break;
        }
        const std::int32_t cond = condWord(lowerExpr(ifStmt.cond()));
        const std::size_t skipThen = emitJump(Opcode::JumpIfZero, cond);
        lowerStmt(ifStmt.stmtAt(0));
        if (ifStmt.hasElse()) {
          const std::size_t skipElse = emitJump(Opcode::Jump);
          patchJump(skipThen, here());
          lowerStmt(ifStmt.stmtAt(1));
          patchJump(skipElse, here());
        } else {
          patchJump(skipThen, here());
        }
        break;
      }
      case StmtKind::Case: lowerCase(static_cast<const rtl::CaseStmt&>(stmt)); break;
      case StmtKind::Assign: {
        const auto& assign = static_cast<const rtl::AssignStmt&>(stmt);
        RTLOCK_REQUIRE(assign.nonBlocking() == nonBlocking,
                       nonBlocking ? "blocking assignment inside sequential process"
                                   : "non-blocking assignment inside combinational process");
        emitStore(assign.target(), lowerExpr(assign.value()));
        break;
      }
    }
  }

  void lowerCase(const rtl::CaseStmt& caseStmt) {
    if (sliced) {
      lowerCaseSliced(caseStmt);
      return;
    }
    // subject == label dispatches on the low word, matching the
    // interpreter's toUint64() comparison (labels are raw 64-bit values).
    const std::int32_t subjectWord = offset(lowerExpr(caseStmt.subject()));
    const std::size_t itemCount = caseStmt.items().size();

    std::vector<std::size_t> dispatches(itemCount);  // first jump of each item
    for (std::size_t i = 0; i < itemCount; ++i) {
      const auto& labels = caseStmt.items()[i].labels;
      dispatches[i] = here();
      for (const std::uint64_t label : labels) {
        (void)emitJump(Opcode::JumpIfEq, subjectWord, offset(constSlot(label, 64)));
      }
    }
    std::vector<std::size_t> exits;
    if (caseStmt.hasDefault()) {
      lowerStmt(caseStmt.stmtAt(static_cast<int>(itemCount)));
    }
    exits.push_back(emitJump(Opcode::Jump));

    for (std::size_t i = 0; i < itemCount; ++i) {
      const std::size_t body = here();
      for (std::size_t j = 0; j < caseStmt.items()[i].labels.size(); ++j) {
        patchJump(dispatches[i] + j, body);
      }
      lowerStmt(caseStmt.stmtAt(static_cast<int>(i)));
      exits.push_back(emitJump(Opcode::Jump));
    }
    for (const std::size_t exit : exits) patchJump(exit, here());
  }

  /// Sliced case: every body executes under the predicate
  /// `pred & match_i & !anyEarlierMatch` — the same low-64-bit, first-match-
  /// wins dispatch as the interpreter and the jump lowering, just expressed
  /// as lane masks.  The per-item predicates are pairwise disjoint, so body
  /// order does not matter for the masked stores.
  void lowerCaseSliced(const rtl::CaseStmt& caseStmt) {
    std::int32_t subject = lowerExpr(caseStmt.subject());
    if (slot(subject).width > 64) {
      // Labels are raw 64-bit values; match the interpreter's toUint64().
      const std::int32_t low = addSlot(64);
      emit(Opcode::SliceLow, 0, low, subject, 0);
      subject = low;
    }
    const std::int32_t saved = pred;
    std::int32_t anyMatch = -1;  // 1-bit slot, -1 = no item lowered yet
    const std::size_t itemCount = caseStmt.items().size();
    for (std::size_t i = 0; i < itemCount; ++i) {
      std::int32_t match = -1;
      for (const std::uint64_t label : caseStmt.items()[i].labels) {
        const std::int32_t equal = addSlot(1);
        emit(Opcode::Eq, 0, equal, subject, constSlot(label, 64));
        if (match < 0) {
          match = equal;
        } else {
          const std::int32_t either = addSlot(1);
          emit(Opcode::Or, 0, either, match, equal);
          match = either;
        }
      }
      if (match < 0) continue;  // no labels: body can never run
      std::int32_t taken = match;
      if (anyMatch >= 0) taken = andPred(taken, notPred(anyMatch));
      pred = andPred(saved, taken);
      lowerStmt(caseStmt.stmtAt(static_cast<int>(i)));
      if (anyMatch < 0) {
        anyMatch = match;
      } else {
        const std::int32_t either = addSlot(1);
        emit(Opcode::Or, 0, either, anyMatch, match);
        anyMatch = either;
      }
    }
    if (caseStmt.hasDefault()) {
      pred = anyMatch < 0 ? saved : andPred(saved, notPred(anyMatch));
      lowerStmt(caseStmt.stmtAt(static_cast<int>(itemCount)));
    }
    pred = saved;
  }

  // ---- top level --------------------------------------------------------

  void run(const Schedule& schedule) {
    signalSlots.reserve(module.signalCount());
    for (SignalId id = 0; id < module.signalCount(); ++id) {
      signalSlots.push_back(addSlot(module.signal(id).width));
    }

    tape = &combTape;
    nonBlocking = false;
    for (const ScheduleUnit& unit : schedule.comb) {
      if (unit.assign != nullptr) {
        emitStore(unit.assign->target(), lowerExpr(unit.assign->value()));
      } else {
        lowerStmt(*unit.process->body);
      }
    }

    clocks = schedule.clocks;
    for (const SequentialGroup& group : schedule.sequential) {
      SequentialTape seq;
      seq.clock = group.clock;
      std::set<SignalId> writes;
      tape = &seq.tape;
      nonBlocking = true;
      seqWrites = &writes;
      for (const rtl::Process* process : group.processes) lowerStmt(*process->body);
      nonBlocking = false;
      seqWrites = nullptr;
      for (const SignalId signal : writes) {
        const std::int32_t liveId = signalSlots[signal];
        const std::int32_t shadowId = shadowSlot(signal);
        const Slot& live = slot(liveId);
        const Slot& shadow = slot(shadowId);
        seq.shadows.push_back({live.offset, shadow.offset, live.wordCount(), liveId, shadowId});
      }
      seqTapes.push_back(std::move(seq));
    }
    tape = nullptr;
  }
};

}  // namespace

/// Shared back half of compile/compileSliced: runs the lowering and packs
/// the CompilerImpl pieces into an immutable Program.
Program Compiler::assemble(const rtl::Module& module, bool sliced) {
  const Schedule schedule = buildSchedule(module);
  CompilerImpl impl{module, sliced};
  impl.run(schedule);

  Program program;
  program.slots_ = std::move(impl.slots);
  program.signalSlots_ = std::move(impl.signalSlots);
  program.combTape_ = std::move(impl.combTape);
  program.seqTapes_ = std::move(impl.seqTapes);
  program.keyBindings_ = std::move(impl.keyBindings);
  program.argPool_ = std::move(impl.argPool);
  program.clocks_ = std::move(impl.clocks);
  program.keyWidth_ = module.keyWidth();
  program.sliced_ = sliced;
  program.initialWords_.assign(static_cast<std::size_t>(impl.nextOffset), 0);
  for (const auto& [offset, word] : impl.constInits) {
    program.initialWords_[static_cast<std::size_t>(offset)] = word;
  }
  return program;
}

Program Compiler::compile(const rtl::Module& module) { return assemble(module, false); }

Program Compiler::compileSliced(const rtl::Module& module) { return assemble(module, true); }

}  // namespace rtlock::sim
