#include "sim/program.hpp"

namespace rtlock::sim {

std::size_t Program::instructionCount() const noexcept {
  std::size_t total = combTape_.size();
  for (const SequentialTape& tape : seqTapes_) total += tape.tape.size();
  return total;
}

}  // namespace rtlock::sim
