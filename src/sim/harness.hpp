// Simulation harnesses: functional-equivalence checking and output-corruption
// measurement between an original design and its locked counterpart.
//
// These are the verification backbone of the locking test-suite: every
// locking algorithm must preserve functionality under the correct key
// (equivalence) and should corrupt outputs under wrong keys (corruption).
#pragma once

#include <optional>
#include <string>

#include "rtl/module.hpp"
#include "sim/evaluator.hpp"

namespace rtlock::sim {

struct EquivalenceOptions {
  int vectors = 32;       // random stimulus vectors
  int cyclesPerVector = 4;  // clock cycles applied per vector (sequential designs)
};

struct Mismatch {
  std::string output;
  int vector = 0;
  int cycle = 0;
};

/// Drives both modules with identical random stimuli (ports matched by name;
/// `golden`'s inputs must exist in `candidate`).  `candidateKey` is applied
/// to the candidate's key input when it has one.  Returns the first mismatch
/// found, or nullopt when all compared outputs agree.
[[nodiscard]] std::optional<Mismatch> findMismatch(const rtl::Module& golden,
                                                   const rtl::Module& candidate,
                                                   const BitVector& candidateKey,
                                                   const EquivalenceOptions& options,
                                                   support::Rng& rng);

/// True when no mismatch was found.
[[nodiscard]] bool functionallyEquivalent(const rtl::Module& golden, const rtl::Module& candidate,
                                          const BitVector& candidateKey,
                                          const EquivalenceOptions& options, support::Rng& rng);

/// Average fraction of output bits that differ between the golden module and
/// the locked module driven with `key` (0.0 = identical behaviour, 0.5 ≈
/// uncorrelated outputs).
[[nodiscard]] double outputCorruption(const rtl::Module& golden, const rtl::Module& locked,
                                      const BitVector& key, const EquivalenceOptions& options,
                                      support::Rng& rng);

}  // namespace rtlock::sim
