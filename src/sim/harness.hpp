// Simulation harnesses: functional-equivalence checking and output-corruption
// measurement between an original design and its locked counterpart.
//
// These are the verification backbone of the locking test-suite: every
// locking algorithm must preserve functionality under the correct key
// (equivalence) and should corrupt outputs under wrong keys (corruption).
//
// Two execution backends share the same semantics and rng draw order:
//
//  * SimBackend::Compiled — the scalar bytecode tape (sim/compiled_sim.hpp),
//    one stimulus vector at a time.  Retained as the differential oracle.
//  * SimBackend::Sliced (default) — the bit-sliced tape (sim/sliced_sim.hpp),
//    which packs up to 64 stimulus vectors (or 64 (key, vector) pairs in
//    outputCorruptionBatch) into one tape pass.  This is the hot shape for
//    oracle-style attacks that measure corruption under thousands of
//    hypothesis keys.
//
// Both backends draw stimuli from the passed rng in the identical order
// (vector -> cycle -> input), so corruption values and mismatch reports are
// bit-for-bit reproducible across backends; tests/sim/harness_test.cpp pins
// the parity.  The free functions are one-shot conveniences with identical
// semantics.
#pragma once

#include <optional>
#include <span>
#include <string>

#include "rtl/module.hpp"
#include "sim/compiled_sim.hpp"
#include "sim/sliced_sim.hpp"

namespace rtlock::sim {

/// Which simulator executes harness sweeps (see file comment).
enum class SimBackend {
  Compiled,  ///< scalar bytecode tape, one vector per pass (the oracle)
  Sliced,    ///< bit-sliced tape, up to 64 lanes per pass (the default)
};

struct EquivalenceOptions {
  int vectors = 32;       // random stimulus vectors
  int cyclesPerVector = 4;  // clock cycles applied per vector (sequential designs)
};

struct Mismatch {
  std::string output;
  int vector = 0;
  int cycle = 0;
};

/// Compile-once harness over a (golden, candidate) module pair.  Ports are
/// matched by name (`golden`'s ports must exist in `candidate` with the same
/// widths); single-clock sequential designs are driven through both backends'
/// clockEdge.  Construction compiles both modules; each call then streams
/// fresh random stimuli, drawing from the passed rng one vector at a time.
class Harness {
 public:
  Harness(const rtl::Module& golden, const rtl::Module& candidate,
          SimBackend backend = SimBackend::Sliced);

  [[nodiscard]] SimBackend backend() const noexcept { return backend_; }

  /// Drives both modules with identical random stimuli; `candidateKey` is
  /// applied to the candidate's key input when it has one (and to the golden
  /// module too when comparing two locked designs).  Returns the first
  /// mismatch found, or nullopt when all compared outputs agree.  The sliced
  /// backend returns the same first-in-(vector, cycle, output)-order mismatch
  /// the scalar backend would, but evaluates 64 vectors per tape pass (and so
  /// may consume rng draws for up to a full 64-vector chunk past it).
  [[nodiscard]] std::optional<Mismatch> findMismatch(const BitVector& candidateKey,
                                                     const EquivalenceOptions& options,
                                                     support::Rng& rng);

  /// Average fraction of output bits that differ between the golden module
  /// and the candidate driven with `key` (0.0 = identical behaviour, 0.5 ≈
  /// uncorrelated outputs).  Bit-identical across backends: the differing-bit
  /// count is an integer sum in either arena layout.
  [[nodiscard]] double outputCorruption(const BitVector& key,
                                        const EquivalenceOptions& options, support::Rng& rng);

  /// Corruption for many hypothesis keys over ONE shared stimulus set, drawn
  /// from `rng` exactly like a single outputCorruption call.  Element i is
  /// the corruption of keys[i] on those stimuli.  On the sliced backend the
  /// (key, vector) pairs are packed 64 per tape pass — with K keys and V
  /// vectors the whole sweep costs ceil(K*V/64) passes instead of K*V — and
  /// the scalar backend replays the identical stimuli per key, so both
  /// backends return identical values.
  [[nodiscard]] std::vector<double> outputCorruptionBatch(std::span<const BitVector> keys,
                                                          const EquivalenceOptions& options,
                                                          support::Rng& rng);

 private:
  struct PortPair {
    rtl::SignalId golden = 0;
    rtl::SignalId candidate = 0;
    int width = 1;
    std::string name;  // golden-side port name (for mismatch reports)
  };

  /// Resets both sims and applies the key(s) for a fresh stimulus vector;
  /// `keyGolden` additionally drives a locked golden module with the key
  /// (equivalence checks do, corruption measurement does not).
  void beginVector(const BitVector& candidateKey, bool keyGolden);

  /// Pre-draws options.vectors random stimulus vectors in the scalar draw
  /// order (vector -> cycle -> input); element [v] holds cycle-major values
  /// for the non-clock inputs.
  [[nodiscard]] std::vector<std::vector<BitVector>> drawStimuli(
      const EquivalenceOptions& options, support::Rng& rng) const;

  [[nodiscard]] std::optional<Mismatch> findMismatchSliced(const BitVector& candidateKey,
                                                           const EquivalenceOptions& options,
                                                           support::Rng& rng);

  bool goldenLocked_ = false;
  bool candidateLocked_ = false;
  SimBackend backend_ = SimBackend::Sliced;
  std::vector<PortPair> inputs_;  // clock excluded
  std::vector<PortPair> outputs_;
  std::optional<PortPair> clock_;
  // Exactly one backend pair is engaged, chosen at construction.
  std::optional<CompiledSim> golden_;
  std::optional<CompiledSim> candidate_;
  std::optional<SlicedSim> goldenSliced_;
  std::optional<SlicedSim> candidateSliced_;
};

/// One-shot form of Harness::findMismatch (compiles both modules per call).
[[nodiscard]] std::optional<Mismatch> findMismatch(const rtl::Module& golden,
                                                   const rtl::Module& candidate,
                                                   const BitVector& candidateKey,
                                                   const EquivalenceOptions& options,
                                                   support::Rng& rng);

/// True when no mismatch was found.
[[nodiscard]] bool functionallyEquivalent(const rtl::Module& golden, const rtl::Module& candidate,
                                          const BitVector& candidateKey,
                                          const EquivalenceOptions& options, support::Rng& rng);

/// One-shot form of Harness::outputCorruption (compiles both modules per
/// call).
[[nodiscard]] double outputCorruption(const rtl::Module& golden, const rtl::Module& locked,
                                      const BitVector& key, const EquivalenceOptions& options,
                                      support::Rng& rng);

}  // namespace rtlock::sim
