// Simulation harnesses: functional-equivalence checking and output-corruption
// measurement between an original design and its locked counterpart.
//
// These are the verification backbone of the locking test-suite: every
// locking algorithm must preserve functionality under the correct key
// (equivalence) and should corrupt outputs under wrong keys (corruption).
//
// Both run on the compiled bytecode backend (sim/compiled_sim.hpp).  The
// Harness class compiles the module pair once and can then stream any number
// of stimulus/key batches through the tapes — the hot shape for oracle-style
// attacks that measure corruption under thousands of hypothesis keys.  The
// free functions are one-shot conveniences with identical semantics (and an
// identical rng draw order, so results are reproducible across both forms).
#pragma once

#include <optional>
#include <string>

#include "rtl/module.hpp"
#include "sim/compiled_sim.hpp"

namespace rtlock::sim {

struct EquivalenceOptions {
  int vectors = 32;       // random stimulus vectors
  int cyclesPerVector = 4;  // clock cycles applied per vector (sequential designs)
};

struct Mismatch {
  std::string output;
  int vector = 0;
  int cycle = 0;
};

/// Compile-once harness over a (golden, candidate) module pair.  Ports are
/// matched by name (`golden`'s ports must exist in `candidate` with the same
/// widths); single-clock sequential designs are driven through both backends'
/// clockEdge.  Construction compiles both modules; each call then streams
/// fresh random stimuli, drawing from the passed rng one vector at a time.
class Harness {
 public:
  Harness(const rtl::Module& golden, const rtl::Module& candidate);

  /// Drives both modules with identical random stimuli; `candidateKey` is
  /// applied to the candidate's key input when it has one (and to the golden
  /// module too when comparing two locked designs).  Returns the first
  /// mismatch found, or nullopt when all compared outputs agree.
  [[nodiscard]] std::optional<Mismatch> findMismatch(const BitVector& candidateKey,
                                                     const EquivalenceOptions& options,
                                                     support::Rng& rng);

  /// Average fraction of output bits that differ between the golden module
  /// and the candidate driven with `key` (0.0 = identical behaviour, 0.5 ≈
  /// uncorrelated outputs).
  [[nodiscard]] double outputCorruption(const BitVector& key,
                                        const EquivalenceOptions& options, support::Rng& rng);

 private:
  struct PortPair {
    rtl::SignalId golden = 0;
    rtl::SignalId candidate = 0;
    int width = 1;
    std::string name;  // golden-side port name (for mismatch reports)
  };

  /// Resets both sims and applies the key(s) for a fresh stimulus vector;
  /// `keyGolden` additionally drives a locked golden module with the key
  /// (equivalence checks do, corruption measurement does not).
  void beginVector(const BitVector& candidateKey, bool keyGolden);

  bool goldenLocked_ = false;
  bool candidateLocked_ = false;
  std::vector<PortPair> inputs_;  // clock excluded
  std::vector<PortPair> outputs_;
  std::optional<PortPair> clock_;
  CompiledSim golden_;
  CompiledSim candidate_;
};

/// One-shot form of Harness::findMismatch (compiles both modules per call).
[[nodiscard]] std::optional<Mismatch> findMismatch(const rtl::Module& golden,
                                                   const rtl::Module& candidate,
                                                   const BitVector& candidateKey,
                                                   const EquivalenceOptions& options,
                                                   support::Rng& rng);

/// True when no mismatch was found.
[[nodiscard]] bool functionallyEquivalent(const rtl::Module& golden, const rtl::Module& candidate,
                                          const BitVector& candidateKey,
                                          const EquivalenceOptions& options, support::Rng& rng);

/// One-shot form of Harness::outputCorruption (compiles both modules per
/// call).
[[nodiscard]] double outputCorruption(const rtl::Module& golden, const rtl::Module& locked,
                                      const BitVector& key, const EquivalenceOptions& options,
                                      support::Rng& rng);

}  // namespace rtlock::sim
