#include "support/rng.hpp"

#include <numeric>

namespace rtlock::support {

std::vector<std::size_t> Rng::sampleIndices(std::size_t n, std::size_t k) {
  RTLOCK_REQUIRE(k <= n, "cannot sample more indices than the population size");
  std::vector<std::size_t> pool(n);
  std::iota(pool.begin(), pool.end(), std::size_t{0});
  // Partial Fisher-Yates: after k swaps the first k slots are a uniform
  // k-subset in uniform order.
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = i + static_cast<std::size_t>(below(n - i));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

}  // namespace rtlock::support
