// Deterministic pseudo-random number generation for reproducible experiments.
//
// Every stochastic component in rtlock (operation selection, key generation,
// ML initialization, workload synthesis) draws from an explicitly seeded Rng
// passed in by the caller.  Nothing in the library touches global random
// state, so a (seed, configuration) pair fully determines every experiment.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "support/config.hpp"  // C++20 floor: pick() takes std::span
#include "support/diagnostics.hpp"

namespace rtlock::support {

/// xoshiro256** by Blackman & Vigna: fast, high-quality, 2^256-1 period.
/// Seeded through splitmix64 so that small consecutive seeds give unrelated
/// streams.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    // splitmix64 expansion of the scalar seed into the 256-bit state.
    auto next = [&seed]() noexcept {
      seed += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      return z ^ (z >> 31);
    };
    for (auto& word : state_) word = next();
  }

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound).  bound must be positive.
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) {
    RTLOCK_REQUIRE(bound > 0, "Rng::below requires a positive bound");
    // Lemire-style rejection to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t range(std::int64_t lo, std::int64_t hi) {
    RTLOCK_REQUIRE(lo <= hi, "Rng::range requires lo <= hi");
    const auto span = static_cast<std::uint64_t>(hi - lo);
    return lo + static_cast<std::int64_t>(span == max() ? (*this)() : below(span + 1));
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Bernoulli draw with success probability p.
  [[nodiscard]] bool chance(double p) noexcept { return uniform() < p; }

  /// Fair coin flip (the paper's RndBoolean).
  [[nodiscard]] bool coin() noexcept { return ((*this)() & 1u) != 0; }

  /// Standard normal via Marsaglia polar method.
  [[nodiscard]] double gaussian() noexcept {
    for (;;) {
      const double u = uniform(-1.0, 1.0);
      const double v = uniform(-1.0, 1.0);
      const double s = u * u + v * v;
      if (s > 0.0 && s < 1.0) {
        double scale = 1.0;
        // sqrt(-2 ln s / s) without <cmath> dependency creep is not worth it;
        // use std functions.
        scale = std::sqrt(-2.0 * std::log(s) / s);
        return u * scale;
      }
    }
  }

  /// Uniformly pick an element of a non-empty span (the paper's RndSelect).
  template <typename T>
  [[nodiscard]] T& pick(std::span<T> items) {
    RTLOCK_REQUIRE(!items.empty(), "Rng::pick requires a non-empty span");
    return items[static_cast<std::size_t>(below(items.size()))];
  }

  template <typename T>
  [[nodiscard]] const T& pick(const std::vector<T>& items) {
    RTLOCK_REQUIRE(!items.empty(), "Rng::pick requires a non-empty vector");
    return items[static_cast<std::size_t>(below(items.size()))];
  }

  /// Fisher-Yates shuffle (the paper's Shuffle).
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      using std::swap;
      swap(items[i - 1], items[static_cast<std::size_t>(below(i))]);
    }
  }

  /// k distinct indices drawn uniformly from [0, n) (partial Fisher-Yates).
  [[nodiscard]] std::vector<std::size_t> sampleIndices(std::size_t n, std::size_t k);

  /// Derive an independent child stream; children of distinct draws are
  /// statistically unrelated.
  [[nodiscard]] Rng fork() noexcept { return Rng{(*this)()}; }

  /// Task-indexed child stream: derived only from the current state and
  /// `index`, without advancing the parent.  This is the experiment engine's
  /// seeding convention — task i of a batch draws from `base.substream(i)`,
  /// so a sharded run produces bit-identical results at any thread count
  /// (every task's stream depends on (root seed, task index) alone, never on
  /// how many draws its siblings consumed).  Distinct indices give
  /// statistically unrelated streams via splitmix64 mixing.
  [[nodiscard]] Rng substream(std::uint64_t index) const noexcept {
    // Fold the 256-bit state and the index through splitmix64 finalizers;
    // the Rng constructor expands the folded seed back into 256 bits.
    auto mix = [](std::uint64_t z) noexcept {
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      return z ^ (z >> 31);
    };
    std::uint64_t h = mix(index + 0x9e3779b97f4a7c15ULL);
    for (const std::uint64_t word : state_) h = mix(h ^ word);
    return Rng{h};
  }

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace rtlock::support
