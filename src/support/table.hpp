// Console table / CSV rendering for experiment harnesses.
//
// Every bench binary reports its figure/table reproduction through this
// writer so output stays uniform and machine-parseable (`--csv` mode in the
// benches switches renderers).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace rtlock::support {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a row; must match the header arity.
  void addRow(std::vector<std::string> cells);

  /// Convenience: formats doubles to `decimals` places, keeps strings as-is.
  void addNumericRow(const std::vector<double>& cells, int decimals = 2);

  [[nodiscard]] std::size_t rowCount() const noexcept { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& header() const noexcept { return header_; }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const noexcept { return rows_; }

  /// Aligned, boxed console rendering.
  void renderText(std::ostream& out) const;

  /// RFC-4180-ish CSV (quotes fields containing separators).
  void renderCsv(std::ostream& out) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rtlock::support
