// Build-configuration floor for rtlock.
//
// The library leans on C++20 throughout (defaulted operator== on aggregates,
// std::span, designated initializers).  Under an older -std= the first
// symptom is a wall of template errors deep inside rng.hpp/holder.hpp, so
// this header turns a mis-configured build into one actionable diagnostic.
// Every header that exercises a C++20-only construct includes it.
#pragma once

#if defined(_MSVC_LANG)
#define RTLOCK_CPLUSPLUS _MSVC_LANG
#else
#define RTLOCK_CPLUSPLUS __cplusplus
#endif

#if RTLOCK_CPLUSPLUS < 202002L
#error \
    "rtlock requires C++20 (std::span, defaulted operator==). Build with -std=c++20 or newer; the CMake build enforces this via target_compile_features(rtlock PUBLIC cxx_std_20)."
#endif

namespace rtlock::support {

/// Language floor the library is built against, for tests and diagnostics.
inline constexpr long kRequiredCppStandard = 202002L;

/// The standard this translation unit was actually compiled under.
inline constexpr long kCompiledCppStandard = RTLOCK_CPLUSPLUS;

}  // namespace rtlock::support
