#include "support/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>

#include "support/diagnostics.hpp"

namespace rtlock::support {

namespace {

[[nodiscard]] std::string_view kindName(const JsonValue& value) noexcept {
  if (value.isNull()) return "null";
  if (value.isBool()) return "bool";
  if (value.isNumber()) return "number";
  if (value.isString()) return "string";
  if (value.isArray()) return "array";
  return "object";
}

[[noreturn]] void wrongKind(const JsonValue& value, std::string_view wanted) {
  throw Error{"JSON value is " + std::string{kindName(value)} + ", expected " +
              std::string{wanted}};
}

/// Formats a double the way the baseline writer does: integral values print
/// without an exponent or trailing zeros, everything else via shortest
/// round-trip %.17g trimmed.  Keeps emitted reports diffable and re-parsable.
[[nodiscard]] std::string formatNumber(double value) {
  if (std::isfinite(value) && value == std::floor(value) && std::abs(value) < 1e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%.0f", value);
    return buffer;
  }
  if (!std::isfinite(value)) throw Error{"JSON cannot represent a non-finite number"};
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  // Prefer the shortest representation that round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    char shorter[40];
    std::snprintf(shorter, sizeof shorter, "%.*g", precision, value);
    if (std::strtod(shorter, nullptr) == value) return shorter;
  }
  return buffer;
}

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    JsonValue value = parseValue();
    skipWhitespace();
    if (pos_ != text_.size()) fail("trailing content after JSON document");
    return value;
  }

 private:
  [[nodiscard]] char peek() const noexcept { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  char advance() {
    const char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  [[noreturn]] void fail(const std::string& message) const {
    throw Error{"JSON parse error at line " + std::to_string(line_) + ", column " +
                std::to_string(column_) + ": " + message};
  }

  void skipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\r' && c != '\n') return;
      advance();
    }
  }

  void expect(char wanted, const char* context) {
    if (peek() != wanted) {
      fail(std::string{"expected '"} + wanted + "' " + context);
    }
    advance();
  }

  bool acceptLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    for (std::size_t i = 0; i < literal.size(); ++i) advance();
    return true;
  }

  JsonValue parseValue() {
    skipWhitespace();
    switch (peek()) {
      case '{': return parseObject();
      case '[': return parseArray();
      case '"': return JsonValue{parseString()};
      case 't':
        if (acceptLiteral("true")) return JsonValue{true};
        fail("malformed literal");
      case 'f':
        if (acceptLiteral("false")) return JsonValue{false};
        fail("malformed literal");
      case 'n':
        if (acceptLiteral("null")) return JsonValue{nullptr};
        fail("malformed literal");
      default: return parseNumber();
    }
  }

  JsonValue parseObject() {
    expect('{', "to open object");
    JsonObject members;
    skipWhitespace();
    if (peek() == '}') {
      advance();
      return JsonValue{std::move(members)};
    }
    for (;;) {
      skipWhitespace();
      std::string key = parseString();
      skipWhitespace();
      expect(':', "after object key");
      members.emplace_back(std::move(key), parseValue());
      skipWhitespace();
      if (peek() == ',') {
        advance();
        continue;
      }
      expect('}', "to close object");
      return JsonValue{std::move(members)};
    }
  }

  JsonValue parseArray() {
    expect('[', "to open array");
    JsonArray items;
    skipWhitespace();
    if (peek() == ']') {
      advance();
      return JsonValue{std::move(items)};
    }
    for (;;) {
      items.push_back(parseValue());
      skipWhitespace();
      if (peek() == ',') {
        advance();
        continue;
      }
      expect(']', "to close array");
      return JsonValue{std::move(items)};
    }
  }

  /// Consumes the continuation bytes of a UTF-8 sequence whose lead byte is
  /// `lead`, appending them to `out`.  Rejects truncated sequences, stray
  /// continuation bytes, overlong encodings, surrogates and > U+10FFFF —
  /// corrupt journal tails and binary garbage must fail loudly, never be
  /// accepted as a string payload.
  void consumeUtf8Tail(std::string& out, unsigned char lead) {
    int tail = 0;
    unsigned min = 0x80;
    if (lead >= 0xc2 && lead <= 0xdf) {
      tail = 1;
    } else if (lead >= 0xe0 && lead <= 0xef) {
      tail = 2;
      min = lead == 0xe0 ? 0xa0 : 0x80;          // no overlong 3-byte forms
    } else if (lead >= 0xf0 && lead <= 0xf4) {
      tail = 3;
      min = lead == 0xf0 ? 0x90 : 0x80;          // no overlong 4-byte forms
    } else {
      fail("invalid UTF-8 byte in string");      // 0x80..0xc1, 0xf5..0xff
    }
    for (int i = 0; i < tail; ++i) {
      if (pos_ >= text_.size()) fail("truncated UTF-8 sequence in string");
      const auto byte = static_cast<unsigned char>(advance());
      const unsigned low = i == 0 ? min : 0x80u;
      unsigned high = 0xbf;
      if (i == 0 && lead == 0xed) high = 0x9f;   // reject UTF-16 surrogates
      if (i == 0 && lead == 0xf4) high = 0x8f;   // reject > U+10FFFF
      if (byte < low || byte > high) fail("malformed UTF-8 sequence in string");
      out.push_back(static_cast<char>(byte));
    }
  }

  std::string parseString() {
    expect('"', "to open string");
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = advance();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (static_cast<unsigned char>(c) >= 0x80) {
        out.push_back(c);
        consumeUtf8Tail(out, static_cast<unsigned char>(c));
        continue;
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char escape = advance();
      switch (escape) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': appendCodepoint(out); break;
        default: fail(std::string{"unknown escape '\\"} + escape + "'");
      }
    }
  }

  void appendCodepoint(std::string& out) {
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= text_.size()) fail("unterminated \\u escape");
      const char c = advance();
      code <<= 4;
      if (c >= '0' && c <= '9') code += static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') code += static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') code += static_cast<unsigned>(c - 'A' + 10);
      else fail("malformed \\u escape");
    }
    // Basic-plane UTF-8 encoding; surrogate pairs are outside what the tools
    // ever emit and are rejected rather than silently mangled.
    if (code >= 0xd800 && code <= 0xdfff) fail("surrogate pairs are not supported");
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xc0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
    } else {
      out.push_back(static_cast<char>(0xe0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
    }
  }

  JsonValue parseNumber() {
    const std::size_t start = pos_;
    if (peek() == '-') advance();
    while (std::isdigit(static_cast<unsigned char>(peek())) != 0) advance();
    if (peek() == '.') {
      advance();
      // strtod would happily accept a bare "1." — enforce the JSON grammar
      // (at least one fraction digit) so a number truncated mid-token by a
      // torn write is rejected instead of silently shortened.
      if (std::isdigit(static_cast<unsigned char>(peek())) == 0) fail("malformed number");
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) advance();
    }
    if (peek() == 'e' || peek() == 'E') {
      advance();
      if (peek() == '+' || peek() == '-') advance();
      if (std::isdigit(static_cast<unsigned char>(peek())) == 0) fail("malformed number");
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) advance();
    }
    const std::string token{text_.substr(start, pos_ - start)};
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (token.empty() || end != token.c_str() + token.size()) fail("malformed number");
    return JsonValue{value};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

bool JsonValue::asBool() const {
  if (!isBool()) wrongKind(*this, "bool");
  return std::get<bool>(value_);
}

double JsonValue::asDouble() const {
  if (!isNumber()) wrongKind(*this, "number");
  return std::get<double>(value_);
}

std::int64_t JsonValue::asInt() const {
  const double value = asDouble();
  // Range-check before the cast: double→int64 outside the representable
  // range is undefined behavior, and corrupt documents must fail cleanly.
  if (!(value >= -9223372036854775808.0 && value < 9223372036854775808.0)) {
    throw Error{"JSON number is outside the 64-bit integer range"};
  }
  const auto integral = static_cast<std::int64_t>(value);
  if (static_cast<double>(integral) != value) {
    throw Error{"JSON number " + formatNumber(value) + " is not an integer"};
  }
  return integral;
}

const std::string& JsonValue::asString() const {
  if (!isString()) wrongKind(*this, "string");
  return std::get<std::string>(value_);
}

const JsonArray& JsonValue::asArray() const {
  if (!isArray()) wrongKind(*this, "array");
  return std::get<JsonArray>(value_);
}

const JsonObject& JsonValue::asObject() const {
  if (!isObject()) wrongKind(*this, "object");
  return std::get<JsonObject>(value_);
}

JsonArray& JsonValue::asArray() {
  if (!isArray()) wrongKind(*this, "array");
  return std::get<JsonArray>(value_);
}

JsonObject& JsonValue::asObject() {
  if (!isObject()) wrongKind(*this, "object");
  return std::get<JsonObject>(value_);
}

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (!isObject()) return nullptr;
  for (const auto& [name, value] : std::get<JsonObject>(value_)) {
    if (name == key) return &value;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  if (const JsonValue* value = find(key)) return *value;
  throw Error{"JSON object has no member \"" + std::string{key} + "\""};
}

void JsonValue::set(std::string_view key, JsonValue value) {
  if (isNull()) value_ = JsonObject{};
  // Overwrite in place (keeping the member's position) rather than append a
  // duplicate key at() would never see.
  for (auto& member : asObject()) {
    if (member.first == key) {
      member.second = std::move(value);
      return;
    }
  }
  asObject().emplace_back(std::string{key}, std::move(value));
}

void JsonValue::writeIndented(std::ostream& out, int depth) const {
  const std::string indent(static_cast<std::size_t>(depth) * 2, ' ');
  const std::string inner(static_cast<std::size_t>(depth + 1) * 2, ' ');
  if (isNull()) {
    out << "null";
  } else if (isBool()) {
    out << (std::get<bool>(value_) ? "true" : "false");
  } else if (isNumber()) {
    out << formatNumber(std::get<double>(value_));
  } else if (isString()) {
    out << '"' << jsonEscape(std::get<std::string>(value_)) << '"';
  } else if (isArray()) {
    const JsonArray& items = std::get<JsonArray>(value_);
    if (items.empty()) {
      out << "[]";
      return;
    }
    out << "[\n";
    for (std::size_t i = 0; i < items.size(); ++i) {
      out << inner;
      items[i].writeIndented(out, depth + 1);
      out << (i + 1 < items.size() ? ",\n" : "\n");
    }
    out << indent << ']';
  } else {
    const JsonObject& members = std::get<JsonObject>(value_);
    if (members.empty()) {
      out << "{}";
      return;
    }
    out << "{\n";
    for (std::size_t i = 0; i < members.size(); ++i) {
      out << inner << '"' << jsonEscape(members[i].first) << "\": ";
      members[i].second.writeIndented(out, depth + 1);
      out << (i + 1 < members.size() ? ",\n" : "\n");
    }
    out << indent << '}';
  }
}

void JsonValue::writeCompact(std::ostream& out) const {
  if (isNull()) {
    out << "null";
  } else if (isBool()) {
    out << (std::get<bool>(value_) ? "true" : "false");
  } else if (isNumber()) {
    out << formatNumber(std::get<double>(value_));
  } else if (isString()) {
    out << '"' << jsonEscape(std::get<std::string>(value_)) << '"';
  } else if (isArray()) {
    const JsonArray& items = std::get<JsonArray>(value_);
    out << '[';
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (i != 0) out << ", ";
      items[i].writeCompact(out);
    }
    out << ']';
  } else {
    const JsonObject& members = std::get<JsonObject>(value_);
    out << '{';
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (i != 0) out << ", ";
      out << '"' << jsonEscape(members[i].first) << "\": ";
      members[i].second.writeCompact(out);
    }
    out << '}';
  }
}

void JsonValue::write(std::ostream& out) const {
  writeIndented(out, 0);
  out << '\n';
}

std::string JsonValue::dumpLine() const {
  std::ostringstream out;
  writeCompact(out);
  return out.str();
}

std::string JsonValue::dump() const {
  std::ostringstream out;
  write(out);
  return out.str();
}

JsonValue parseJson(std::string_view text) { return JsonParser{text}.parse(); }

std::string jsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof buffer, "\\u%04x", static_cast<unsigned>(c));
      out += buffer;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace rtlock::support
