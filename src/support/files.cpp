#include "support/files.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "support/diagnostics.hpp"

namespace rtlock::support {

namespace {

[[nodiscard]] std::string errnoText(int code) {
  return std::string{std::strerror(code)} + " (errno " + std::to_string(code) + ")";
}

/// Unique-per-call temp sibling: pid + a process-wide counter keep
/// concurrent writers (threads or processes sharing a directory) from
/// clobbering each other's temp files.
[[nodiscard]] std::string tempSibling(const std::string& path) {
  static std::atomic<unsigned long> counter{0};
  return path + ".tmp." + std::to_string(static_cast<long>(::getpid())) + "." +
         std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
}

}  // namespace

void atomicWriteFile(const std::string& path, std::string_view content, SyncMode sync) {
  const std::string temp = tempSibling(path);
  const int fd = ::open(temp.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
  if (fd < 0) {
    throw Error{"cannot create temp file " + temp + " for atomic write: " + errnoText(errno)};
  }
  const char* data = content.data();
  std::size_t remaining = content.size();
  while (remaining > 0) {
    const ::ssize_t written = ::write(fd, data, remaining);
    if (written < 0) {
      if (errno == EINTR) continue;
      const int code = errno;
      ::close(fd);
      ::unlink(temp.c_str());
      throw Error{"failed writing " + temp + ": " + errnoText(code)};
    }
    data += written;
    remaining -= static_cast<std::size_t>(written);
  }
  // fsync BEFORE rename: once the new name is visible it must point at the
  // complete bytes even across a power loss, never at a zero-length file.
  // ProcessCrashOnly callers accept the power-loss window to avoid paying a
  // disk flush per cell.
  if (sync == SyncMode::Durable && ::fsync(fd) != 0) {
    const int code = errno;
    ::close(fd);
    ::unlink(temp.c_str());
    throw Error{"fsync of " + temp + " failed: " + errnoText(code)};
  }
  if (::close(fd) != 0) {
    const int code = errno;
    ::unlink(temp.c_str());
    throw Error{"close of " + temp + " failed: " + errnoText(code)};
  }
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    const int code = errno;
    ::unlink(temp.c_str());
    throw Error{"cannot rename " + temp + " to " + path + ": " + errnoText(code)};
  }
}

}  // namespace rtlock::support
