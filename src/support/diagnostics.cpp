#include "support/diagnostics.hpp"

#include <sstream>

namespace rtlock::support {

std::string ContractViolation::format(std::string_view condition, std::string_view message,
                                      std::string_view file, int line) {
  std::ostringstream out;
  out << "contract violation at " << file << ':' << line << ": `" << condition << "` — "
      << message;
  return out.str();
}

void raiseContractViolation(std::string_view condition, std::string_view message,
                            std::string_view file, int line) {
  throw ContractViolation{condition, message, file, line};
}

}  // namespace rtlock::support
