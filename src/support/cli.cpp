#include "support/cli.hpp"

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cstdlib>

#include "support/diagnostics.hpp"
#include "support/strings.hpp"

namespace rtlock::support {

CliArgs::CliArgs(int argc, const char* const* argv, std::vector<std::string> knownFlags) {
  const auto isKnown = [&knownFlags](std::string_view name) {
    return std::find(knownFlags.begin(), knownFlags.end(), name) != knownFlags.end();
  };

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg{argv[i]};
    if (!startsWith(arg, "--")) {
      positional_.emplace_back(arg);
      continue;
    }
    const std::string_view body = arg.substr(2);
    const auto equals = body.find('=');
    std::string name{equals == std::string_view::npos ? body : body.substr(0, equals)};
    if (!isKnown(name)) {
      throw Error{"unknown flag --" + name};
    }
    if (equals != std::string_view::npos) {
      values_[name] = std::string{body.substr(equals + 1)};
    } else if (i + 1 < argc && !startsWith(argv[i + 1], "--")) {
      values_[name] = argv[++i];
    } else {
      values_[name] = "true";
    }
  }
}

bool CliArgs::has(std::string_view name) const { return values_.find(name) != values_.end(); }

std::string CliArgs::get(std::string_view name, std::string_view fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? std::string{fallback} : it->second;
}

std::int64_t CliArgs::getInt(std::string_view name, std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  std::int64_t value = 0;
  const auto& text = it->second;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    throw Error{"flag --" + it->first + " expects an integer, got '" + text + "'"};
  }
  return value;
}

std::uint64_t CliArgs::getU64(std::string_view name, std::uint64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const auto value = parseU64(it->second);
  if (!value.has_value()) {
    throw Error{"flag --" + it->first + " expects a non-negative integer, got '" + it->second +
                "'"};
  }
  return *value;
}

std::optional<std::uint64_t> parseU64(std::string_view text) {
  // from_chars<unsigned> already rejects signs and leading whitespace; the
  // end-pointer check rejects trailing junk ("3x"), and errc catches
  // overflow — exactly the failure modes stoull-based parsing let through.
  if (text.empty()) return std::nullopt;
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) return std::nullopt;
  return value;
}

double CliArgs::getDouble(std::string_view name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    std::size_t used = 0;
    const double value = std::stod(it->second, &used);
    if (used != it->second.size()) throw Error{"trailing junk"};
    return value;
  } catch (const std::exception&) {
    throw Error{"flag --" + it->first + " expects a number, got '" + it->second + "'"};
  }
}

int requestedThreads(const CliArgs& args) {
  if (args.has("threads")) return static_cast<int>(args.getInt("threads", 0));
  if (const char* env = std::getenv("RTLOCK_THREADS")) {
    char* end = nullptr;
    errno = 0;
    const long value = std::strtol(env, &end, 10);
    constexpr long kMaxThreads = 4096;  // sanity bound, not a real target
    if (end == env || *end != '\0' || errno == ERANGE || value < 0 || value > kMaxThreads) {
      throw Error("RTLOCK_THREADS expects an integer in [0, 4096], got \"" + std::string{env} +
                  "\"");
    }
    return static_cast<int>(value);
  }
  return 0;
}

bool CliArgs::getBool(std::string_view name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string lowered = toLower(it->second);
  if (lowered == "true" || lowered == "1" || lowered == "yes" || lowered == "on") return true;
  if (lowered == "false" || lowered == "0" || lowered == "no" || lowered == "off") return false;
  throw Error{"flag --" + it->first + " expects a boolean, got '" + it->second + "'"};
}

}  // namespace rtlock::support
