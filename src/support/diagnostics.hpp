// Error handling and invariant checking.
//
// rtlock distinguishes two failure classes:
//  * rtlock::support::Error — recoverable, caller-facing failures (malformed
//    Verilog input, impossible locking request, bad CLI usage).  Thrown and
//    expected to be caught at tool boundaries.
//  * RTLOCK_REQUIRE — programming-contract violations.  These throw
//    ContractViolation so tests can assert on them; they indicate a bug in
//    rtlock itself or misuse of a documented precondition.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace rtlock::support {

/// Recoverable, user-facing error (bad input file, invalid configuration...).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Violated precondition / invariant inside the library.
class ContractViolation : public std::logic_error {
 public:
  ContractViolation(std::string_view condition, std::string_view message, std::string_view file,
                    int line)
      : std::logic_error(format(condition, message, file, line)) {}

 private:
  static std::string format(std::string_view condition, std::string_view message,
                            std::string_view file, int line);
};

[[noreturn]] void raiseContractViolation(std::string_view condition, std::string_view message,
                                         std::string_view file, int line);

}  // namespace rtlock::support

/// Check a precondition; throws ContractViolation with location info on
/// failure.  Active in all build types: the checks guard algorithmic
/// invariants (ODT consistency, undo-stack discipline) whose silent violation
/// would corrupt experiment results.
#define RTLOCK_REQUIRE(condition, message)                                                 \
  do {                                                                                     \
    if (!(condition)) {                                                                    \
      ::rtlock::support::raiseContractViolation(#condition, (message), __FILE__, __LINE__); \
    }                                                                                      \
  } while (false)

/// Marks an unreachable code path.
#define RTLOCK_UNREACHABLE(message) \
  ::rtlock::support::raiseContractViolation("unreachable", (message), __FILE__, __LINE__)
