// Small string helpers shared across modules.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rtlock::support {

/// Strip leading/trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view text) noexcept;

/// Split on a separator character; empty fields are preserved.
[[nodiscard]] std::vector<std::string> split(std::string_view text, char separator);

/// Join pieces with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& pieces, std::string_view separator);

/// True if `text` starts with `prefix`.
[[nodiscard]] bool startsWith(std::string_view text, std::string_view prefix) noexcept;

/// Lower-case ASCII copy.
[[nodiscard]] std::string toLower(std::string_view text);

/// Render a double with fixed precision (locale-independent).
[[nodiscard]] std::string formatDouble(double value, int decimals);

/// FNV-1a 64-bit hash of a byte string.  Used for content identity keys
/// (campaign row identity hashes design text and config descriptions) —
/// stable across platforms and releases, not cryptographic.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view text) noexcept;

/// `fnv1a64` rendered as the 16-digit lower-case hex string the journal
/// stores (fixed width so keys align and compare lexicographically).
[[nodiscard]] std::string fnv1a64Hex(std::string_view text);

}  // namespace rtlock::support
