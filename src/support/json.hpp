// Minimal JSON reader/writer for tool I/O.
//
// The CLI exchanges three document kinds — key/provenance files
// (rtlock-key/v1), attack/eval reports (rtlock-*-report/v1, row-compatible
// with BENCH_baseline.json) and the committed baseline itself — and this is
// the one JSON implementation behind all of them.  Scope is deliberately
// small: UTF-8 text, doubles for every number, objects preserving insertion
// order (so emitted documents diff cleanly), no streaming.  Malformed input
// raises support::Error with line/column info, the same contract as the
// Verilog front end.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace rtlock::support {

class JsonValue;

/// Object members in insertion order.  Lookup is linear — the documents the
/// tools exchange have a handful of keys, and stable order matters more.
using JsonObject = std::vector<std::pair<std::string, JsonValue>>;
using JsonArray = std::vector<JsonValue>;

class JsonValue {
 public:
  JsonValue() noexcept : value_(nullptr) {}
  JsonValue(std::nullptr_t) noexcept : value_(nullptr) {}  // NOLINT(google-explicit-constructor)
  JsonValue(bool value) noexcept : value_(value) {}        // NOLINT(google-explicit-constructor)
  JsonValue(double value) noexcept : value_(value) {}      // NOLINT(google-explicit-constructor)
  JsonValue(int value) noexcept                            // NOLINT(google-explicit-constructor)
      : value_(static_cast<double>(value)) {}
  JsonValue(std::int64_t value) noexcept  // NOLINT(google-explicit-constructor)
      : value_(static_cast<double>(value)) {}
  JsonValue(std::uint64_t value) noexcept  // NOLINT(google-explicit-constructor)
      : value_(static_cast<double>(value)) {}
  JsonValue(std::string value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  JsonValue(std::string_view value)                           // NOLINT(google-explicit-constructor)
      : value_(std::string{value}) {}
  JsonValue(const char* value) : value_(std::string{value}) {}  // NOLINT(google-explicit-constructor)
  JsonValue(JsonArray value) : value_(std::move(value)) {}      // NOLINT(google-explicit-constructor)
  JsonValue(JsonObject value) : value_(std::move(value)) {}     // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool isNull() const noexcept { return std::holds_alternative<std::nullptr_t>(value_); }
  [[nodiscard]] bool isBool() const noexcept { return std::holds_alternative<bool>(value_); }
  [[nodiscard]] bool isNumber() const noexcept { return std::holds_alternative<double>(value_); }
  [[nodiscard]] bool isString() const noexcept { return std::holds_alternative<std::string>(value_); }
  [[nodiscard]] bool isArray() const noexcept { return std::holds_alternative<JsonArray>(value_); }
  [[nodiscard]] bool isObject() const noexcept { return std::holds_alternative<JsonObject>(value_); }

  // Typed accessors throw support::Error on kind mismatch — tool code can
  // validate a whole document through them without hand-written type checks.
  [[nodiscard]] bool asBool() const;
  [[nodiscard]] double asDouble() const;
  [[nodiscard]] std::int64_t asInt() const;  // requires an integral number
  [[nodiscard]] const std::string& asString() const;
  [[nodiscard]] const JsonArray& asArray() const;
  [[nodiscard]] const JsonObject& asObject() const;
  [[nodiscard]] JsonArray& asArray();
  [[nodiscard]] JsonObject& asObject();

  /// Member lookup; nullptr when absent (or when not an object).
  [[nodiscard]] const JsonValue* find(std::string_view key) const noexcept;

  /// Member lookup; throws support::Error naming the missing key.
  [[nodiscard]] const JsonValue& at(std::string_view key) const;

  /// Appends a member (no duplicate check; writers own their key sets).
  void set(std::string_view key, JsonValue value);

  /// Serializes with 2-space indentation and a trailing newline at top level.
  void write(std::ostream& out) const;
  [[nodiscard]] std::string dump() const;

  /// Compact single-line serialization (no newline, no indentation).  This
  /// is the journal's row encoding: one complete document per line, so a
  /// torn write can only ever damage the final line of the file.  Stable for
  /// byte-comparison — re-serializing a parsed document reproduces it.
  [[nodiscard]] std::string dumpLine() const;

 private:
  void writeIndented(std::ostream& out, int depth) const;
  void writeCompact(std::ostream& out) const;

  std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject> value_;
};

/// Parses one JSON document (trailing whitespace allowed, nothing else).
[[nodiscard]] JsonValue parseJson(std::string_view text);

/// JSON string escaping (shared with ad-hoc emitters like run_baseline).
[[nodiscard]] std::string jsonEscape(std::string_view text);

}  // namespace rtlock::support
