#include "support/strings.hpp"

#include <cctype>
#include <cstdio>

namespace rtlock::support {

std::string_view trim(std::string_view text) noexcept {
  const auto isSpace = [](unsigned char c) { return std::isspace(c) != 0; };
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && isSpace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && isSpace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

std::vector<std::string> split(std::string_view text, char separator) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == separator) {
      fields.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return fields;
}

std::string join(const std::vector<std::string>& pieces, std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i != 0) out += separator;
    out += pieces[i];
  }
  return out;
}

bool startsWith(std::string_view text, std::string_view prefix) noexcept {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string toLower(std::string_view text) {
  std::string out{text};
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string formatDouble(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", decimals, value);
  return buffer;
}

std::uint64_t fnv1a64(std::string_view text) noexcept {
  std::uint64_t hash = 1469598103934665603ull;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

std::string fnv1a64Hex(std::string_view text) {
  char buffer[24];
  std::snprintf(buffer, sizeof buffer, "%016llx",
                static_cast<unsigned long long>(fnv1a64(text)));
  return buffer;
}

}  // namespace rtlock::support
