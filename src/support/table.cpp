#include "support/table.hpp"

#include <algorithm>
#include <ostream>

#include "support/diagnostics.hpp"
#include "support/strings.hpp"

namespace rtlock::support {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  RTLOCK_REQUIRE(!header_.empty(), "a table needs at least one column");
}

void Table::addRow(std::vector<std::string> cells) {
  RTLOCK_REQUIRE(cells.size() == header_.size(), "row arity must match the header");
  rows_.push_back(std::move(cells));
}

void Table::addNumericRow(const std::vector<double>& cells, int decimals) {
  std::vector<std::string> rendered;
  rendered.reserve(cells.size());
  for (const double value : cells) rendered.push_back(formatDouble(value, decimals));
  addRow(std::move(rendered));
}

void Table::renderText(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  const auto renderLine = [&](const std::vector<std::string>& cells) {
    out << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << ' ' << cells[c];
      for (std::size_t pad = cells[c].size(); pad < widths[c]; ++pad) out << ' ';
      out << " |";
    }
    out << '\n';
  };
  const auto renderRule = [&] {
    out << '+';
    for (const std::size_t width : widths) {
      for (std::size_t i = 0; i < width + 2; ++i) out << '-';
      out << '+';
    }
    out << '\n';
  };

  renderRule();
  renderLine(header_);
  renderRule();
  for (const auto& row : rows_) renderLine(row);
  renderRule();
}

void Table::renderCsv(std::ostream& out) const {
  const auto renderField = [&out](const std::string& field) {
    if (field.find_first_of(",\"\n") == std::string::npos) {
      out << field;
      return;
    }
    out << '"';
    for (const char c : field) {
      if (c == '"') out << '"';
      out << c;
    }
    out << '"';
  };
  const auto renderRow = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) out << ',';
      renderField(cells[c]);
    }
    out << '\n';
  };
  renderRow(header_);
  for (const auto& row : rows_) renderRow(row);
}

}  // namespace rtlock::support
