// Deterministic fixed-size worker pool for the experiment engine.
//
// The evaluation pipeline (Sec. 5) is embarrassingly parallel: every locked
// sample, every (benchmark, algorithm) grid cell, and every figure scenario
// is an independent task once it owns its own RNG substream and module clone.
// TaskPool shards such batches across a fixed set of workers while keeping
// the *observable* behaviour identical to a serial loop:
//
//  * results are collected in submission order, regardless of the order in
//    which workers finish (map() fills a result slot per index);
//  * exceptions thrown by tasks are captured and rethrown from wait() — the
//    first failure in submission order wins, exactly like a serial loop that
//    stops at the first throw;
//  * with threads == 1 no worker thread exists at all: submit() runs the
//    task inline on the calling thread, so the single-threaded pool *is* the
//    serial reference path, not a simulation of it.
//
// Determinism contract: the pool never provides randomness and never
// reorders observable results.  Tasks must not share mutable state; each
// task derives everything it needs from its submission index (see
// Rng::substream for the seeding convention).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace rtlock::support {

/// Effective worker count: `requested` >= 1 is taken as-is; 0 or negative
/// (the "pick for me" default) resolves to the hardware concurrency, with a
/// floor of 1 when the runtime reports nothing.
[[nodiscard]] int resolveThreadCount(int requested) noexcept;

/// Worker count for a batch of `tasks`: resolveThreadCount(requested) capped
/// to the batch size, so small grids don't spawn workers that never run a
/// task.  A zero-task batch still gets the one (inline) thread.
[[nodiscard]] int threadsForTasks(int requested, std::size_t tasks) noexcept;

class TaskPool {
 public:
  /// Creates the pool.  `threads` follows resolveThreadCount; a pool of one
  /// thread spawns no workers and runs every task inline in submit().
  /// `queueCapacity` bounds trySubmit() (0 = unbounded): it is the
  /// backpressure limit for open-ended producers like `rtlock serve`, and
  /// deliberately does NOT apply to submit()/map(), whose batch producers
  /// rely on unconditional enqueueing.
  explicit TaskPool(int threads = 0, std::size_t queueCapacity = 0);

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Drains outstanding tasks, then joins the workers.  Pending exceptions
  /// that were never collected through wait() are dropped.
  ~TaskPool();

  [[nodiscard]] int threadCount() const noexcept { return threadCount_; }

  /// Enqueues one task and returns its submission index within the current
  /// batch.  Tasks may run in any order and on any worker.
  std::size_t submit(std::function<void()> task);

  /// Like submit(), but the task receives the id of the worker executing it
  /// (in [0, threadCount()); the inline serial path passes 0).  Worker ids
  /// let tasks index per-worker reusable state — the ids are stable for the
  /// pool's lifetime and never shared between concurrently running tasks.
  std::size_t submitWithWorker(std::function<void(int)> task);

  /// Bounded-queue submit: enqueues like submit() unless the pool was built
  /// with a queueCapacity and that many tasks are already *queued* (running
  /// tasks don't count), in which case it returns false without touching any
  /// batch bookkeeping — the caller sheds load (HTTP 429) instead of
  /// buffering unboundedly.  On the serial (inline) path the queue never
  /// holds tasks, so trySubmit always accepts.  After requestStop() the task
  /// is accepted-and-skipped exactly like submit(): backpressure reports
  /// *fullness*, not shutdown — the drain still owns shutdown semantics.
  [[nodiscard]] bool trySubmit(std::function<void()> task);

  [[nodiscard]] std::size_t queueCapacity() const noexcept { return queueCapacity_; }

  /// Tasks currently queued (excluding running ones).  A snapshot for stats
  /// surfaces; stale the moment it returns.
  [[nodiscard]] std::size_t queueDepth() const;

  /// Blocks until every task submitted since the last wait() has finished,
  /// then rethrows the earliest failure by *submission* order (if any) and
  /// resets the batch so the pool can be reused.
  void wait();

  // ---- cooperative cancellation ------------------------------------------
  //
  // requestStop() turns the pool into a drain: tasks already *running*
  // finish normally (long-running tasks should poll stopRequested() and cut
  // themselves short), tasks still queued are skipped entirely — their
  // map()/mapWithWorker() result slots keep their default-constructed value
  // and submit/wait bookkeeping stays consistent, so wait() still unblocks
  // and the completed prefix of results is exactly what a serial loop that
  // stopped at the same point would have produced.  The flag is sticky
  // across batches (a SIGINT drain must not resume on the next batch);
  // clearStop() re-arms the pool.  Both calls are safe from any thread,
  // including from inside a running task.

  /// Stop claiming queued tasks; running tasks drain.  Idempotent.
  void requestStop() noexcept;

  /// True once requestStop() was called (and clearStop() was not).
  [[nodiscard]] bool stopRequested() const noexcept;

  /// Re-arms a stopped pool for the next batch.
  void clearStop() noexcept;

  /// Deterministic fan-out: runs `fn(index)` for every index in [0, count)
  /// and returns the results in index order regardless of completion order.
  /// The result type must be default-constructible and movable.  Rethrows
  /// the first failing task's exception (by index) after the batch drains.
  template <typename Fn>
  auto map(std::size_t count, Fn&& fn) {
    using Result = std::decay_t<std::invoke_result_t<Fn&, std::size_t>>;
    // std::vector<bool> packs bits: concurrent writes to distinct indices
    // would race on shared bytes.  Return int/char instead.
    static_assert(!std::is_same_v<Result, bool>,
                  "TaskPool::map cannot return bool (vector<bool> bit-packing races)");
    std::vector<Result> results(count);
    try {
      for (std::size_t index = 0; index < count; ++index) {
        submit([&results, &fn, index] { results[index] = fn(index); });
      }
    } catch (...) {
      // submit() itself failed (e.g. bad_alloc): already-queued tasks still
      // reference `results`/`fn`, so drain them before unwinding.  The
      // submit failure outranks any task exception.
      try {
        wait();
      } catch (...) {  // NOLINT(bugprone-empty-catch)
      }
      throw;
    }
    wait();
    return results;
  }

  /// map() variant whose callable receives (workerId, index).  Determinism
  /// contract unchanged: per-worker state must never influence a task's
  /// observable result — it exists for reuse (allocation amortization), not
  /// for communication.
  template <typename Fn>
  auto mapWithWorker(std::size_t count, Fn&& fn) {
    using Result = std::decay_t<std::invoke_result_t<Fn&, int, std::size_t>>;
    static_assert(!std::is_same_v<Result, bool>,
                  "TaskPool::mapWithWorker cannot return bool (vector<bool> bit-packing races)");
    std::vector<Result> results(count);
    try {
      for (std::size_t index = 0; index < count; ++index) {
        submitWithWorker(
            [&results, &fn, index](int worker) { results[index] = fn(worker, index); });
      }
    } catch (...) {
      try {
        wait();
      } catch (...) {  // NOLINT(bugprone-empty-catch)
      }
      throw;
    }
    wait();
    return results;
  }

 private:
  void workerLoop(int workerId);
  void runTask(std::size_t index, const std::function<void(int)>& task, int workerId) noexcept;

  int threadCount_ = 1;
  std::size_t queueCapacity_ = 0;  // trySubmit() bound; 0 = unbounded
  std::vector<std::thread> workers_;

  mutable std::mutex mutex_;
  std::condition_variable workAvailable_;
  std::condition_variable batchDone_;
  std::deque<std::pair<std::size_t, std::function<void(int)>>> queue_;
  // Failures only, unordered: a long-running pool that never fails (the
  // serve worker pool) must not grow a slot per submission between wait()s.
  std::vector<std::pair<std::size_t, std::exception_ptr>> errors_;
  std::size_t nextIndex_ = 0;  // submissions in the current batch
  std::size_t inFlight_ = 0;   // queued + running tasks
  bool stopping_ = false;
  std::atomic<bool> stopRequested_{false};  // cooperative cancellation flag
};

}  // namespace rtlock::support
