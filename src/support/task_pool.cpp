#include "support/task_pool.hpp"

#include "support/diagnostics.hpp"

namespace rtlock::support {

int resolveThreadCount(int requested) noexcept {
  if (requested >= 1) return requested;
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : static_cast<int>(hardware);
}

int threadsForTasks(int requested, std::size_t tasks) noexcept {
  const int resolved = resolveThreadCount(requested);
  if (tasks == 0) return 1;
  return tasks < static_cast<std::size_t>(resolved) ? static_cast<int>(tasks) : resolved;
}

TaskPool::TaskPool(int threads, std::size_t queueCapacity)
    : threadCount_(resolveThreadCount(threads)), queueCapacity_(queueCapacity) {
  // One thread means "the calling thread": submit() runs tasks inline, so
  // the serial reference path involves no worker, no queue hand-off, and no
  // scheduling at all.
  if (threadCount_ > 1) {
    workers_.reserve(static_cast<std::size_t>(threadCount_));
    for (int i = 0; i < threadCount_; ++i) {
      workers_.emplace_back([this, i] { workerLoop(i); });
    }
  }
}

TaskPool::~TaskPool() {
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    stopping_ = true;
  }
  workAvailable_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::size_t TaskPool::submit(std::function<void()> task) {
  RTLOCK_REQUIRE(task != nullptr, "TaskPool::submit requires a callable task");
  return submitWithWorker([task = std::move(task)](int /*worker*/) { task(); });
}

std::size_t TaskPool::submitWithWorker(std::function<void(int)> task) {
  RTLOCK_REQUIRE(task != nullptr, "TaskPool::submitWithWorker requires a callable task");
  if (workers_.empty()) {
    // Serial reference path: run inline (as worker 0), capture failures for
    // wait() so the error contract matches the threaded pool exactly.  A
    // stopped pool skips the task — the same drain semantics a worker
    // applies when it dequeues after requestStop().
    const std::size_t index = nextIndex_++;
    if (!stopRequested_.load(std::memory_order_acquire)) runTask(index, task, 0);
    return index;
  }
  std::size_t index = 0;
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    index = nextIndex_++;
    queue_.emplace_back(index, std::move(task));
    ++inFlight_;
  }
  workAvailable_.notify_one();
  return index;
}

bool TaskPool::trySubmit(std::function<void()> task) {
  RTLOCK_REQUIRE(task != nullptr, "TaskPool::trySubmit requires a callable task");
  if (workers_.empty()) {
    // Inline path: nothing ever queues, so capacity cannot be exceeded.
    submit(std::move(task));
    return true;
  }
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    if (queueCapacity_ != 0 && queue_.size() >= queueCapacity_) return false;
    queue_.emplace_back(nextIndex_++, [task = std::move(task)](int /*worker*/) { task(); });
    ++inFlight_;
  }
  workAvailable_.notify_one();
  return true;
}

std::size_t TaskPool::queueDepth() const {
  if (workers_.empty()) return 0;
  const std::lock_guard<std::mutex> lock{mutex_};
  return queue_.size();
}

void TaskPool::wait() {
  // The earliest failure by *submission* index wins, like a serial loop
  // that stops at its first throw.  errors_ holds failures only (not a slot
  // per submission), so the scan is over actual failures.
  const auto firstError = [this]() {
    std::exception_ptr first;
    std::size_t firstIndex = 0;
    for (const auto& [index, error] : errors_) {
      if (!first || index < firstIndex) {
        first = error;
        firstIndex = index;
      }
    }
    return first;
  };
  std::exception_ptr first;
  if (workers_.empty()) {
    first = firstError();
    errors_.clear();
    nextIndex_ = 0;
  } else {
    std::unique_lock<std::mutex> lock{mutex_};
    batchDone_.wait(lock, [this] { return inFlight_ == 0; });
    first = firstError();
    errors_.clear();
    nextIndex_ = 0;
  }
  if (first) std::rethrow_exception(first);
}

void TaskPool::requestStop() noexcept {
  stopRequested_.store(true, std::memory_order_release);
}

bool TaskPool::stopRequested() const noexcept {
  return stopRequested_.load(std::memory_order_acquire);
}

void TaskPool::clearStop() noexcept {
  stopRequested_.store(false, std::memory_order_release);
}

void TaskPool::workerLoop(int workerId) {
  for (;;) {
    std::pair<std::size_t, std::function<void(int)>> job;
    {
      std::unique_lock<std::mutex> lock{mutex_};
      workAvailable_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and nothing left to drain
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    // A stop request skips tasks that have not started yet; the inFlight_
    // bookkeeping below still runs so wait() unblocks once running tasks
    // drain.
    if (!stopRequested_.load(std::memory_order_acquire)) {
      runTask(job.first, job.second, workerId);
    }
    {
      const std::lock_guard<std::mutex> lock{mutex_};
      --inFlight_;
      if (inFlight_ == 0) batchDone_.notify_all();
    }
  }
}

void TaskPool::runTask(std::size_t index, const std::function<void(int)>& task,
                       int workerId) noexcept {
  try {
    task(workerId);
  } catch (...) {
    if (workers_.empty()) {
      errors_.emplace_back(index, std::current_exception());
    } else {
      const std::lock_guard<std::mutex> lock{mutex_};
      errors_.emplace_back(index, std::current_exception());
    }
  }
}

}  // namespace rtlock::support
