// Durable, atomic file replacement for the campaign layer.
//
// Multi-host coordination files (work manifests, done markers, merged
// journals) must never be observed half-written: a reader on another host
// either sees the previous complete content or the new complete content.
// POSIX gives exactly that through write-to-temp + fsync + rename — the
// rename is atomic on every filesystem the campaign layer targets, and the
// fsync before it closes the power-loss window where some filesystems would
// otherwise expose a zero-length file under the final name.
#pragma once

#include <string>
#include <string_view>

namespace rtlock::support {

enum class SyncMode {
  /// fsync before rename: complete bytes under the final name even across a
  /// power loss.  For write-once coordination files (manifests, merged
  /// journals) whose loss would silently change campaign results.
  Durable,
  /// Skip the fsync: the rename is still atomic, so the replacement is safe
  /// against process crashes (the campaign fault model — _Exit, kill -9),
  /// just not against power loss.  For high-frequency per-cell files (done
  /// markers, heartbeats) whose worst-case loss costs a recompute, matching
  /// the journal's own flush-without-fsync stance.
  ProcessCrashOnly,
};

/// Atomically replaces (or creates) `path` with `content`: writes a unique
/// sibling temp file, fsyncs it (per `sync`), then renames it over `path`.
/// Throws Error naming the failing step and errno when the directory is
/// missing, the filesystem is full, or the rename is rejected; the temp
/// file is removed on every failure path.
void atomicWriteFile(const std::string& path, std::string_view content,
                     SyncMode sync = SyncMode::Durable);

}  // namespace rtlock::support
