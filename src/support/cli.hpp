// Minimal command-line flag parsing for benches and examples.
//
// Syntax: --name=value or --name value; bare --flag sets a boolean.
// Unknown flags raise Error so typos in experiment scripts fail loudly
// instead of silently running the default configuration.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace rtlock::support {

class CliArgs {
 public:
  /// Parse argv; `spec` lists the accepted flag names (without "--").
  CliArgs(int argc, const char* const* argv, std::vector<std::string> knownFlags);

  [[nodiscard]] bool has(std::string_view name) const;
  [[nodiscard]] std::string get(std::string_view name, std::string_view fallback) const;
  [[nodiscard]] std::int64_t getInt(std::string_view name, std::int64_t fallback) const;
  /// Strict non-negative integer flag via parseU64: unlike std::stoull-style
  /// parsing, "3x" and "-1" both fail loudly instead of truncating to 3 or
  /// wrapping to 2^64-1.  Throws Error on any malformed value.
  [[nodiscard]] std::uint64_t getU64(std::string_view name, std::uint64_t fallback) const;
  [[nodiscard]] double getDouble(std::string_view name, double fallback) const;
  [[nodiscard]] bool getBool(std::string_view name, bool fallback) const;

  /// Positional (non-flag) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept { return positional_; }

 private:
  std::map<std::string, std::string, std::less<>> values_;
  std::vector<std::string> positional_;
};

/// Requested worker count for a tool invocation: the --threads flag wins,
/// then the RTLOCK_THREADS environment override, then 0 ("hardware
/// concurrency").  Feed the result to TaskPool / EvaluationConfig::threads,
/// which resolve 0 via resolveThreadCount.  A malformed RTLOCK_THREADS fails
/// loudly (same policy as CliArgs: typos must not silently run a default
/// configuration).  Shared by the benches and the rtlock CLI.
[[nodiscard]] int requestedThreads(const CliArgs& args);

/// Strict base-10 parse of the ENTIRE text as an unsigned 64-bit integer:
/// no sign, no whitespace, no trailing junk, no overflow — nullopt on any
/// violation.  The one parser behind every non-negative CLI integer, so a
/// typo like "3x" or a negative seed can never silently truncate or wrap.
[[nodiscard]] std::optional<std::uint64_t> parseU64(std::string_view text);

}  // namespace rtlock::support
