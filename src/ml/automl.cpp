#include "ml/automl.hpp"

#include <chrono>

#include "ml/baseline.hpp"
#include "ml/forest.hpp"
#include "ml/knn.hpp"
#include "ml/linear.hpp"
#include "ml/mlp.hpp"
#include "ml/naive_bayes.hpp"
#include "ml/tree.hpp"
#include "support/diagnostics.hpp"

namespace rtlock::ml {

namespace {

[[nodiscard]] bool isSlowFamily(const Classifier& model) {
  const std::string name = model.name();
  return name.rfind("knn", 0) == 0 || name.rfind("mlp", 0) == 0 ||
         name.rfind("forest", 0) == 0;
}

}  // namespace

std::vector<std::unique_ptr<Classifier>> defaultPortfolio() {
  std::vector<std::unique_ptr<Classifier>> portfolio;
  portfolio.push_back(std::make_unique<MajorityClassifier>());
  portfolio.push_back(std::make_unique<HistogramClassifier>(1.0));
  portfolio.push_back(std::make_unique<HistogramClassifier>(0.1));
  portfolio.push_back(std::make_unique<CategoricalNaiveBayes>(1.0));
  portfolio.push_back(std::make_unique<CategoricalNaiveBayes>(0.1));
  portfolio.push_back(std::make_unique<GaussianNaiveBayes>());
  portfolio.push_back(std::make_unique<LogisticRegression>(LogisticRegression::Hyper{0.5, 1e-4, 300}));
  portfolio.push_back(std::make_unique<LogisticRegression>(LogisticRegression::Hyper{0.1, 1e-3, 300}));
  portfolio.push_back(std::make_unique<DecisionTree>(DecisionTree::Hyper{6, 2.0, 32, 0}));
  portfolio.push_back(std::make_unique<DecisionTree>(DecisionTree::Hyper{12, 2.0, 32, 0}));
  portfolio.push_back(std::make_unique<RandomForest>(RandomForest::Hyper{15, 10, 0}));
  portfolio.push_back(std::make_unique<KnnClassifier>(KnnClassifier::Hyper{5, 4096}));
  portfolio.push_back(std::make_unique<KnnClassifier>(KnnClassifier::Hyper{15, 4096}));
  portfolio.push_back(std::make_unique<MlpClassifier>(MlpClassifier::Hyper{16, 0.05, 250, 1e-5}));
  return portfolio;
}

AutoMlResult autoSelect(const Dataset& rawData, const AutoMlConfig& config, support::Rng& rng) {
  RTLOCK_REQUIRE(!rawData.empty(), "auto-ml needs a non-empty training set");

  const auto start = std::chrono::steady_clock::now();
  const auto elapsedSeconds = [&start] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  };

  // Subsample raw rows first (folding must happen on raw rows: aggregating
  // duplicates before the split would make folds all-or-nothing per feature
  // tuple and bias validation accuracy).  Each fold is aggregated afterwards
  // — lossless — so model fitting stays fast.
  Dataset data = rawData.sampled(config.maxTrainingRows, rng);

  std::vector<std::pair<Dataset, Dataset>> folds;
  std::size_t largestTrainFold = 0;
  for (auto& [train, validation] : data.kFold(config.folds, rng)) {
    Dataset aggregatedTrain = train.aggregated();
    Dataset aggregatedValidation = validation.aggregated();
    largestTrainFold = std::max(largestTrainFold, aggregatedTrain.size());
    folds.emplace_back(std::move(aggregatedTrain), std::move(aggregatedValidation));
  }

  AutoMlResult result;
  result.bestCvAccuracy = -1.0;

  for (auto& candidate : defaultPortfolio()) {
    // Always evaluate at least one candidate, budget or not.
    if (!result.leaderboard.empty() && elapsedSeconds() > config.timeBudgetSeconds) break;
    if (largestTrainFold > config.slowModelRowLimit && isSlowFamily(*candidate)) continue;

    const double candidateStart = elapsedSeconds();
    double weightedCorrect = 0.0;
    double weightedTotal = 0.0;
    for (const auto& [train, validation] : folds) {
      if (train.empty() || validation.empty()) continue;
      auto foldModel = candidate->fresh();
      foldModel->fit(train, rng);
      weightedCorrect += accuracy(*foldModel, validation) * validation.totalWeight();
      weightedTotal += validation.totalWeight();
    }
    const double cvAccuracy = weightedTotal == 0.0 ? 0.0 : weightedCorrect / weightedTotal;

    result.leaderboard.push_back(
        LeaderboardEntry{candidate->name(), cvAccuracy, elapsedSeconds() - candidateStart});
    if (cvAccuracy > result.bestCvAccuracy) {
      result.bestCvAccuracy = cvAccuracy;
      result.bestName = candidate->name();
      result.model = candidate->fresh();
    }
  }

  RTLOCK_REQUIRE(result.model != nullptr, "auto-ml evaluated no candidates");
  result.model->fit(data.aggregated(), rng);
  return result;
}

}  // namespace rtlock::ml
