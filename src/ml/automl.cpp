#include "ml/automl.hpp"

#include <chrono>
#include <optional>

#include "ml/baseline.hpp"
#include "ml/forest.hpp"
#include "ml/knn.hpp"
#include "ml/linear.hpp"
#include "ml/mlp.hpp"
#include "ml/naive_bayes.hpp"
#include "ml/tree.hpp"
#include "support/diagnostics.hpp"

namespace rtlock::ml {

std::vector<std::unique_ptr<Classifier>> defaultPortfolio() {
  std::vector<std::unique_ptr<Classifier>> portfolio;
  portfolio.push_back(std::make_unique<MajorityClassifier>());
  portfolio.push_back(std::make_unique<HistogramClassifier>(1.0));
  portfolio.push_back(std::make_unique<HistogramClassifier>(0.1));
  portfolio.push_back(std::make_unique<CategoricalNaiveBayes>(1.0));
  portfolio.push_back(std::make_unique<CategoricalNaiveBayes>(0.1));
  portfolio.push_back(std::make_unique<GaussianNaiveBayes>());
  portfolio.push_back(std::make_unique<LogisticRegression>(LogisticRegression::Hyper{0.5, 1e-4, 300}));
  portfolio.push_back(std::make_unique<LogisticRegression>(LogisticRegression::Hyper{0.1, 1e-3, 300}));
  portfolio.push_back(std::make_unique<DecisionTree>(DecisionTree::Hyper{6, 2.0, 32, 0}));
  portfolio.push_back(std::make_unique<DecisionTree>(DecisionTree::Hyper{12, 2.0, 32, 0}));
  portfolio.push_back(std::make_unique<RandomForest>(RandomForest::Hyper{15, 10, 0}));
  portfolio.push_back(std::make_unique<KnnClassifier>(KnnClassifier::Hyper{5, 4096}));
  portfolio.push_back(std::make_unique<KnnClassifier>(KnnClassifier::Hyper{15, 4096}));
  portfolio.push_back(std::make_unique<MlpClassifier>(MlpClassifier::Hyper{16, 0.05, 250, 1e-5}));
  return portfolio;
}

AutoMlResult autoSelect(const Dataset& rawData, const AutoMlConfig& config, support::Rng& rng) {
  RTLOCK_REQUIRE(!rawData.empty(), "auto-ml needs a non-empty training set");

  using Clock = std::chrono::steady_clock;
  const auto elapsedSecondsSince = [](Clock::time_point start) {
    return std::chrono::duration<double>(Clock::now() - start).count();
  };

  // Subsample raw rows first (folding must happen on raw rows: aggregating
  // duplicates before the split would make folds all-or-nothing per feature
  // tuple and bias validation accuracy).  Folds are index views over the one
  // backing matrix; each view is aggregated afterwards — lossless — so model
  // fitting stays fast.  Under the cap, fold directly over the caller's data
  // (sampled() would be a full flat copy and draws no randomness then).
  std::optional<Dataset> sampledStorage;
  if (rawData.size() > config.maxTrainingRows) {
    sampledStorage.emplace(rawData.sampled(config.maxTrainingRows, rng));
  }
  const Dataset& data = sampledStorage.has_value() ? *sampledStorage : rawData;

  // Single-pass fold construction: per-fold aggregated (train, validation)
  // pairs plus the full aggregate for the final refit, row-for-row identical
  // to aggregating kFold() views one by one.
  KFoldAggregates aggregates = data.kFoldAggregated(config.folds, rng);
  const std::vector<std::pair<Dataset, Dataset>>& folds = aggregates.folds;
  std::size_t largestTrainFold = 0;
  for (const auto& [train, validation] : folds) {
    largestTrainFold = std::max(largestTrainFold, train.size());
  }

  AutoMlResult result;
  result.bestCvAccuracy = -1.0;
  std::size_t rowsConsumed = 0;

  for (auto& candidate : defaultPortfolio()) {
    // Always evaluate at least one candidate, budget or not.  The budget is
    // a deterministic row count, never wall clock, so the candidate cut-off
    // is identical on every machine.
    if (!result.leaderboard.empty() && rowsConsumed > config.fitRowBudget) break;
    if (largestTrainFold > config.slowModelRowLimit &&
        candidate->costClass() == CostClass::Slow) {
      continue;
    }

    const auto candidateStart = Clock::now();
    double weightedCorrect = 0.0;
    double weightedTotal = 0.0;
    for (const auto& [train, validation] : folds) {
      if (train.empty() || validation.empty()) continue;
      auto foldModel = candidate->fresh();
      foldModel->fit(train, rng);
      weightedCorrect += accuracy(*foldModel, validation) * validation.totalWeight();
      weightedTotal += validation.totalWeight();
      rowsConsumed += train.size() + validation.size();
    }
    const double cvAccuracy = weightedTotal == 0.0 ? 0.0 : weightedCorrect / weightedTotal;

    result.leaderboard.push_back(
        LeaderboardEntry{candidate->name(), cvAccuracy, elapsedSecondsSince(candidateStart)});
    if (cvAccuracy > result.bestCvAccuracy) {
      result.bestCvAccuracy = cvAccuracy;
      result.bestName = candidate->name();
      result.model = candidate->fresh();
    }
  }

  RTLOCK_REQUIRE(result.model != nullptr, "auto-ml evaluated no candidates");
  result.model->fit(aggregates.all, rng);
  return result;
}

}  // namespace rtlock::ml
