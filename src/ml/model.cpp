#include "ml/model.hpp"

namespace rtlock::ml {

namespace {

template <typename Table>
[[nodiscard]] double accuracyOn(const Classifier& model, const Table& data) {
  if (data.empty()) return 0.0;
  double correct = 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    total += data.weight(i);
    if (model.predict(data.row(i)) == data.label(i)) correct += data.weight(i);
  }
  return total == 0.0 ? 0.0 : correct / total;
}

}  // namespace

double accuracy(const Classifier& model, const Dataset& data) { return accuracyOn(model, data); }

double accuracy(const Classifier& model, const DatasetView& data) {
  return accuracyOn(model, data);
}

}  // namespace rtlock::ml
