// k-nearest-neighbours with weighted voting.  Training data is capped by
// subsampling (prediction is O(stored rows)).
#pragma once

#include "ml/model.hpp"

namespace rtlock::ml {

struct KnnHyper {
  int k = 5;
  std::size_t maxStoredRows = 4096;
};

class KnnClassifier final : public Classifier {
 public:
  using Hyper = KnnHyper;

  explicit KnnClassifier(Hyper hyper = Hyper()) : hyper_(hyper) {}

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] CostClass costClass() const noexcept override { return CostClass::Slow; }
  void fit(const Dataset& data, support::Rng& rng) override;
  [[nodiscard]] std::unique_ptr<Classifier> fresh() const override;

 private:
  [[nodiscard]] double probaOf(RowView features) const override;

  Hyper hyper_;
  /// Aggregated + capped training rows, stored flat.
  Dataset stored_{1};
  bool fitted_ = false;
  /// Per-prediction distance scratch (predictions are not thread-safe; see
  /// Classifier docs).
  mutable std::vector<std::pair<double, std::size_t>> distances_;
};

}  // namespace rtlock::ml
