// k-nearest-neighbours with weighted voting.  Training data is capped by
// subsampling (prediction is O(stored rows)).
#pragma once

#include "ml/model.hpp"

namespace rtlock::ml {

struct KnnHyper {
  int k = 5;
  std::size_t maxStoredRows = 4096;
};

class KnnClassifier final : public Classifier {
 public:
  using Hyper = KnnHyper;

  explicit KnnClassifier(Hyper hyper = Hyper()) : hyper_(hyper) {}

  [[nodiscard]] std::string name() const override;
  void fit(const Dataset& data, support::Rng& rng) override;
  [[nodiscard]] double predictProba(const FeatureRow& features) const override;
  [[nodiscard]] std::unique_ptr<Classifier> fresh() const override;

 private:
  Hyper hyper_;
  std::vector<FeatureRow> rows_;
  std::vector<int> labels_;
  std::vector<double> weights_;
};

}  // namespace rtlock::ml
