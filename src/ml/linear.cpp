#include "ml/linear.hpp"

#include <cmath>

namespace rtlock::ml {

namespace {
[[nodiscard]] double sigmoid(double x) noexcept { return 1.0 / (1.0 + std::exp(-x)); }
}  // namespace

std::string LogisticRegression::name() const {
  return "logistic(lr=" + std::to_string(hyper_.learningRate) +
         ",l2=" + std::to_string(hyper_.l2) + ")";
}

void LogisticRegression::fit(const Dataset& data, support::Rng& /*rng*/) {
  const auto features = static_cast<std::size_t>(data.featureCount());
  weights_.assign(features, 0.0);
  bias_ = 0.0;
  mean_.assign(features, 0.0);
  scale_.assign(features, 1.0);
  fitted_ = true;
  if (data.empty()) return;

  // Standardize features for stable step sizes.
  const double totalWeight = data.totalWeight();
  for (std::size_t i = 0; i < data.size(); ++i) {
    const RowView row = data.row(i);
    for (std::size_t f = 0; f < features; ++f) {
      mean_[f] += data.weight(i) * row[f];
    }
  }
  for (double& m : mean_) m /= totalWeight;
  std::vector<double> variance(features, 0.0);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const RowView row = data.row(i);
    for (std::size_t f = 0; f < features; ++f) {
      const double delta = row[f] - mean_[f];
      variance[f] += data.weight(i) * delta * delta;
    }
  }
  for (std::size_t f = 0; f < features; ++f) {
    scale_[f] = std::sqrt(std::max(variance[f] / totalWeight, 1e-12));
  }

  std::vector<double> gradient(features);
  for (int epoch = 0; epoch < hyper_.epochs; ++epoch) {
    std::fill(gradient.begin(), gradient.end(), 0.0);
    double biasGradient = 0.0;
    for (std::size_t i = 0; i < data.size(); ++i) {
      const RowView row = data.row(i);
      double z = bias_;
      for (std::size_t f = 0; f < features; ++f) {
        z += weights_[f] * (row[f] - mean_[f]) / scale_[f];
      }
      const double error = sigmoid(z) - static_cast<double>(data.label(i));
      const double scaledError = data.weight(i) * error / totalWeight;
      for (std::size_t f = 0; f < features; ++f) {
        gradient[f] += scaledError * (row[f] - mean_[f]) / scale_[f];
      }
      biasGradient += scaledError;
    }
    for (std::size_t f = 0; f < features; ++f) {
      gradient[f] += hyper_.l2 * weights_[f];
      weights_[f] -= hyper_.learningRate * gradient[f];
    }
    bias_ -= hyper_.learningRate * biasGradient;
  }
}

double LogisticRegression::decision(RowView features) const {
  double z = bias_;
  for (std::size_t f = 0; f < features.size() && f < weights_.size(); ++f) {
    z += weights_[f] * (features[f] - mean_[f]) / scale_[f];
  }
  return z;
}

double LogisticRegression::probaOf(RowView features) const {
  if (!fitted_) return 0.5;
  return sigmoid(decision(features));
}

std::unique_ptr<Classifier> LogisticRegression::fresh() const {
  return std::make_unique<LogisticRegression>(hyper_);
}

}  // namespace rtlock::ml
