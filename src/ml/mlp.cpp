#include "ml/mlp.hpp"

#include <cmath>

namespace rtlock::ml {

namespace {

[[nodiscard]] double sigmoid(double x) noexcept { return 1.0 / (1.0 + std::exp(-x)); }

/// Adam state for one parameter vector.
struct Adam {
  std::vector<double> m;
  std::vector<double> v;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
  int step = 0;

  explicit Adam(std::size_t size) : m(size, 0.0), v(size, 0.0) {}

  void update(std::vector<double>& params, const std::vector<double>& gradient, double lr) {
    ++step;
    const double correction1 = 1.0 - std::pow(beta1, step);
    const double correction2 = 1.0 - std::pow(beta2, step);
    for (std::size_t i = 0; i < params.size(); ++i) {
      m[i] = beta1 * m[i] + (1.0 - beta1) * gradient[i];
      v[i] = beta2 * v[i] + (1.0 - beta2) * gradient[i] * gradient[i];
      const double mHat = m[i] / correction1;
      const double vHat = v[i] / correction2;
      params[i] -= lr * mHat / (std::sqrt(vHat) + epsilon);
    }
  }
};

}  // namespace

std::string MlpClassifier::name() const {
  return "mlp(hidden=" + std::to_string(hyper_.hiddenUnits) + ")";
}

void MlpClassifier::fit(const Dataset& data, support::Rng& rng) {
  inputs_ = data.featureCount();
  const auto hidden = static_cast<std::size_t>(hyper_.hiddenUnits);
  const auto inputs = static_cast<std::size_t>(inputs_);

  hiddenWeights_.assign(hidden * inputs, 0.0);
  hiddenBias_.assign(hidden, 0.0);
  outputWeights_.assign(hidden, 0.0);
  outputBias_ = 0.0;
  mean_.assign(inputs, 0.0);
  scale_.assign(inputs, 1.0);
  fitted_ = true;
  if (data.empty()) return;

  // Xavier-style initialization.
  const double initScale = std::sqrt(2.0 / static_cast<double>(inputs + hidden));
  for (double& w : hiddenWeights_) w = rng.gaussian() * initScale;
  for (double& w : outputWeights_) w = rng.gaussian() * initScale;

  // Standardization statistics.
  const double totalWeight = data.totalWeight();
  for (std::size_t i = 0; i < data.size(); ++i) {
    const RowView row = data.row(i);
    for (std::size_t f = 0; f < inputs; ++f) mean_[f] += data.weight(i) * row[f];
  }
  for (double& m : mean_) m /= totalWeight;
  std::vector<double> variance(inputs, 0.0);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const RowView row = data.row(i);
    for (std::size_t f = 0; f < inputs; ++f) {
      const double delta = row[f] - mean_[f];
      variance[f] += data.weight(i) * delta * delta;
    }
  }
  for (std::size_t f = 0; f < inputs; ++f) {
    scale_[f] = std::sqrt(std::max(variance[f] / totalWeight, 1e-12));
  }

  Adam adamHiddenW{hiddenWeights_.size()};
  Adam adamHiddenB{hiddenBias_.size()};
  Adam adamOutputW{outputWeights_.size()};
  Adam adamOutputB{1};

  std::vector<double> gradHiddenW(hiddenWeights_.size());
  std::vector<double> gradHiddenB(hiddenBias_.size());
  std::vector<double> gradOutputW(outputWeights_.size());
  std::vector<double> gradOutputB(1);
  std::vector<double> normalized(inputs);
  std::vector<double> activations(hidden);

  for (int epoch = 0; epoch < hyper_.epochs; ++epoch) {
    std::fill(gradHiddenW.begin(), gradHiddenW.end(), 0.0);
    std::fill(gradHiddenB.begin(), gradHiddenB.end(), 0.0);
    std::fill(gradOutputW.begin(), gradOutputW.end(), 0.0);
    gradOutputB[0] = 0.0;

    for (std::size_t i = 0; i < data.size(); ++i) {
      const RowView row = data.row(i);
      for (std::size_t f = 0; f < inputs; ++f) {
        normalized[f] = (row[f] - mean_[f]) / scale_[f];
      }
      double output = outputBias_;
      for (std::size_t h = 0; h < hidden; ++h) {
        double z = hiddenBias_[h];
        for (std::size_t f = 0; f < inputs; ++f) {
          z += hiddenWeights_[h * inputs + f] * normalized[f];
        }
        activations[h] = std::tanh(z);
        output += outputWeights_[h] * activations[h];
      }
      const double prediction = sigmoid(output);
      const double error =
          data.weight(i) * (prediction - static_cast<double>(data.label(i))) / totalWeight;

      gradOutputB[0] += error;
      for (std::size_t h = 0; h < hidden; ++h) {
        gradOutputW[h] += error * activations[h];
        const double hiddenError =
            error * outputWeights_[h] * (1.0 - activations[h] * activations[h]);
        gradHiddenB[h] += hiddenError;
        for (std::size_t f = 0; f < inputs; ++f) {
          gradHiddenW[h * inputs + f] += hiddenError * normalized[f];
        }
      }
    }

    for (std::size_t j = 0; j < hiddenWeights_.size(); ++j) {
      gradHiddenW[j] += hyper_.l2 * hiddenWeights_[j];
    }
    for (std::size_t j = 0; j < outputWeights_.size(); ++j) {
      gradOutputW[j] += hyper_.l2 * outputWeights_[j];
    }

    adamHiddenW.update(hiddenWeights_, gradHiddenW, hyper_.learningRate);
    adamHiddenB.update(hiddenBias_, gradHiddenB, hyper_.learningRate);
    adamOutputW.update(outputWeights_, gradOutputW, hyper_.learningRate);
    std::vector<double> biasVec{outputBias_};
    adamOutputB.update(biasVec, gradOutputB, hyper_.learningRate);
    outputBias_ = biasVec[0];
  }
}

void MlpClassifier::hiddenActivations(RowView features) const {
  const auto hidden = static_cast<std::size_t>(hyper_.hiddenUnits);
  const auto inputs = static_cast<std::size_t>(inputs_);
  activations_.resize(hidden);
  for (std::size_t h = 0; h < hidden; ++h) {
    double z = hiddenBias_[h];
    for (std::size_t f = 0; f < inputs && f < features.size(); ++f) {
      z += hiddenWeights_[h * inputs + f] * (features[f] - mean_[f]) / scale_[f];
    }
    activations_[h] = std::tanh(z);
  }
}

double MlpClassifier::probaOf(RowView features) const {
  if (!fitted_) return 0.5;
  hiddenActivations(features);
  double output = outputBias_;
  for (std::size_t h = 0; h < activations_.size(); ++h) {
    output += outputWeights_[h] * activations_[h];
  }
  return sigmoid(output);
}

std::unique_ptr<Classifier> MlpClassifier::fresh() const {
  return std::make_unique<MlpClassifier>(hyper_);
}

}  // namespace rtlock::ml
