// Single-hidden-layer multilayer perceptron (tanh hidden units, sigmoid
// output) trained with full-batch Adam on weighted binary cross-entropy.
// Stands in for the neural models SnapShot originally explored.
#pragma once

#include "ml/model.hpp"

namespace rtlock::ml {

struct MlpHyper {
  int hiddenUnits = 16;
  double learningRate = 0.05;
  int epochs = 300;
  double l2 = 1e-5;
};

class MlpClassifier final : public Classifier {
 public:
  using Hyper = MlpHyper;

  explicit MlpClassifier(Hyper hyper = Hyper()) : hyper_(hyper) {}

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] CostClass costClass() const noexcept override { return CostClass::Slow; }
  void fit(const Dataset& data, support::Rng& rng) override;
  [[nodiscard]] std::unique_ptr<Classifier> fresh() const override;

 private:
  [[nodiscard]] double probaOf(RowView features) const override;
  /// Fills activations_ (per-prediction scratch; predictions are not
  /// thread-safe, see Classifier docs).
  void hiddenActivations(RowView features) const;

  Hyper hyper_;
  int inputs_ = 0;
  std::vector<double> hiddenWeights_;  // hiddenUnits x inputs
  std::vector<double> hiddenBias_;     // hiddenUnits
  std::vector<double> outputWeights_;  // hiddenUnits
  double outputBias_ = 0.0;
  std::vector<double> mean_;
  std::vector<double> scale_;
  bool fitted_ = false;
  mutable std::vector<double> activations_;
};

}  // namespace rtlock::ml
