#include "ml/baseline.hpp"

namespace rtlock::ml {

// ---- MajorityClassifier ----

void MajorityClassifier::fit(const Dataset& data, support::Rng& /*rng*/) {
  positiveFraction_ = data.empty() ? 0.5 : data.positiveFraction();
}

double MajorityClassifier::predictProba(const FeatureRow& /*features*/) const {
  return positiveFraction_;
}

std::unique_ptr<Classifier> MajorityClassifier::fresh() const {
  return std::make_unique<MajorityClassifier>();
}

// ---- HistogramClassifier ----

std::string HistogramClassifier::name() const {
  return "histogram(smoothing=" + std::to_string(smoothing_) + ")";
}

std::string HistogramClassifier::keyFor(const FeatureRow& features) {
  std::string key;
  key.reserve(features.size() * sizeof(double));
  for (const double value : features) {
    key.append(reinterpret_cast<const char*>(&value), sizeof(double));
  }
  return key;
}

void HistogramClassifier::fit(const Dataset& data, support::Rng& /*rng*/) {
  table_.clear();
  prior_ = data.empty() ? 0.5 : data.positiveFraction();
  for (std::size_t i = 0; i < data.size(); ++i) {
    auto& weights = table_[keyFor(data.features(i))];
    if (data.label(i) == 1) {
      weights.positive += data.weight(i);
    } else {
      weights.negative += data.weight(i);
    }
  }
}

double HistogramClassifier::predictProba(const FeatureRow& features) const {
  const auto it = table_.find(keyFor(features));
  if (it == table_.end()) return prior_;
  const double positive = it->second.positive + smoothing_ * prior_;
  const double negative = it->second.negative + smoothing_ * (1.0 - prior_);
  return positive / (positive + negative);
}

std::unique_ptr<Classifier> HistogramClassifier::fresh() const {
  return std::make_unique<HistogramClassifier>(smoothing_);
}

}  // namespace rtlock::ml
