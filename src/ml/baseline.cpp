#include "ml/baseline.hpp"

namespace rtlock::ml {

// ---- MajorityClassifier ----

void MajorityClassifier::fit(const Dataset& data, support::Rng& /*rng*/) {
  positiveFraction_ = data.empty() ? 0.5 : data.positiveFraction();
}

double MajorityClassifier::probaOf(RowView /*features*/) const { return positiveFraction_; }

std::unique_ptr<Classifier> MajorityClassifier::fresh() const {
  return std::make_unique<MajorityClassifier>();
}

// ---- HistogramClassifier ----

std::string HistogramClassifier::name() const {
  return "histogram(smoothing=" + std::to_string(smoothing_) + ")";
}

void HistogramClassifier::fit(const Dataset& data, support::Rng& /*rng*/) {
  table_.clear();
  prior_ = data.empty() ? 0.5 : data.positiveFraction();
  for (std::size_t i = 0; i < data.size(); ++i) {
    const std::string_view key = keyFor(data.row(i));
    auto it = table_.find(key);
    if (it == table_.end()) it = table_.emplace(std::string{key}, ClassWeights{}).first;
    if (data.label(i) == 1) {
      it->second.positive += data.weight(i);
    } else {
      it->second.negative += data.weight(i);
    }
  }
}

double HistogramClassifier::probaOf(RowView features) const {
  const auto it = table_.find(keyFor(features));
  if (it == table_.end()) return prior_;
  const double positive = it->second.positive + smoothing_ * prior_;
  const double negative = it->second.negative + smoothing_ * (1.0 - prior_);
  return positive / (positive + negative);
}

std::unique_ptr<Classifier> HistogramClassifier::fresh() const {
  return std::make_unique<HistogramClassifier>(smoothing_);
}

}  // namespace rtlock::ml
