#include "ml/forest.hpp"

#include <cmath>

namespace rtlock::ml {

std::string RandomForest::name() const {
  return "forest(trees=" + std::to_string(hyper_.trees) +
         ",depth=" + std::to_string(hyper_.maxDepth) + ")";
}

void RandomForest::fit(const Dataset& data, support::Rng& rng) {
  trees_.clear();
  if (data.empty()) return;

  const int subset = hyper_.featureSubset > 0
                         ? hyper_.featureSubset
                         : static_cast<int>(std::ceil(std::sqrt(data.featureCount())));

  DecisionTree::Hyper treeHyper;
  treeHyper.maxDepth = hyper_.maxDepth;
  treeHyper.featureSubset = subset;

  for (int t = 0; t < hyper_.trees; ++t) {
    // Bootstrap by row (weights carried over): classic bagging.  Rows copy
    // flat-matrix to flat-matrix — no per-row vector churn.
    Dataset bootstrap{data.featureCount()};
    bootstrap.reserveRows(data.size());
    for (std::size_t i = 0; i < data.size(); ++i) {
      const auto row = static_cast<std::size_t>(rng.below(data.size()));
      bootstrap.add(data.row(row), data.label(row), data.weight(row));
    }
    DecisionTree tree{treeHyper};
    tree.fit(bootstrap, rng);
    trees_.push_back(std::move(tree));
  }
}

double RandomForest::probaOf(RowView features) const {
  if (trees_.empty()) return 0.5;
  double sum = 0.0;
  for (const auto& tree : trees_) sum += tree.predictProba(features);
  return sum / static_cast<double>(trees_.size());
}

std::unique_ptr<Classifier> RandomForest::fresh() const {
  return std::make_unique<RandomForest>(hyper_);
}

}  // namespace rtlock::ml
