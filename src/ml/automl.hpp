// AutoML driver standing in for auto-sklearn [13].
//
// The driver enumerates a model/hyperparameter portfolio (histogram table,
// categorical & Gaussian naive Bayes, logistic regression, decision tree,
// random forest, k-NN, MLP), scores every candidate with k-fold
// cross-validation under a deterministic row-count budget, and refits the
// winner on the full training set.  The paper allots 600 s per attack
// iteration; the portfolio here converges in far less on locality data
// because aggregation shrinks the dataset to the distinct feature tuples.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "ml/model.hpp"

namespace rtlock::ml {

struct AutoMlConfig {
  int folds = 3;
  /// Deterministic search budget: cumulative rows consumed by candidate
  /// cross-validations (aggregated fold train + validation rows, summed
  /// after each candidate).  Once exceeded, the portfolio scan stops — at
  /// least one candidate is always evaluated.  A row-count budget (instead
  /// of the historical wall-clock cutoff) means model selection can never
  /// differ across machines; the default is far above what any experiment
  /// configuration consumes.
  std::size_t fitRowBudget = 50'000'000;
  /// Rows are aggregated first; if still larger, subsampled to this cap.
  std::size_t maxTrainingRows = 100000;
  /// Skip Slow-cost families (knn/mlp/forest, per Classifier::costClass)
  /// when the largest aggregated training fold exceeds this.
  std::size_t slowModelRowLimit = 20000;
};

struct LeaderboardEntry {
  std::string model;
  double cvAccuracy = 0.0;
  double seconds = 0.0;  // informational only; never feeds back into selection
};

struct AutoMlResult {
  std::unique_ptr<Classifier> model;  // refit on the full training set
  std::string bestName;
  double bestCvAccuracy = 0.0;
  std::vector<LeaderboardEntry> leaderboard;
};

/// Builds the default candidate portfolio.
[[nodiscard]] std::vector<std::unique_ptr<Classifier>> defaultPortfolio();

/// Cross-validated model selection + final refit.
///
/// Contract -------------------------------------------------------------------
/// Ownership: `data` is borrowed const (aggregated/subsampled views are
///   private copies); the returned classifier is owned by the caller via
///   unique_ptr and keeps no reference into `data`.
/// Determinism: the winner and its fit are a pure function of (data, config,
///   rng state).  The search budget is counted in rows, not seconds
///   (fitRowBudget), so machine speed can never change which model wins;
///   LeaderboardEntry::seconds is informational only.
/// Thread-safety: safe to call concurrently with distinct Rngs; the returned
///   Classifier's predict/probaOf may race on internal scratch — clone or
///   guard per thread (see src/ml/README.md).
[[nodiscard]] AutoMlResult autoSelect(const Dataset& data, const AutoMlConfig& config,
                                      support::Rng& rng);

}  // namespace rtlock::ml
