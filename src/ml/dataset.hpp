// Weighted tabular dataset for binary classification.
//
// SnapShot localities are tiny categorical tuples that repeat millions of
// times across relocking rounds, so the dataset supports instance weights and
// lossless aggregation of duplicate rows — a 10^6-row training set typically
// collapses to a few hundred weighted rows.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "support/rng.hpp"

namespace rtlock::ml {

using FeatureRow = std::vector<double>;

class Dataset {
 public:
  explicit Dataset(int featureCount);

  void add(FeatureRow features, int label, double weight = 1.0);

  [[nodiscard]] int featureCount() const noexcept { return featureCount_; }
  [[nodiscard]] std::size_t size() const noexcept { return labels_.size(); }
  [[nodiscard]] bool empty() const noexcept { return labels_.empty(); }

  [[nodiscard]] const FeatureRow& features(std::size_t row) const { return features_.at(row); }
  [[nodiscard]] int label(std::size_t row) const { return labels_.at(row); }
  [[nodiscard]] double weight(std::size_t row) const { return weights_.at(row); }

  [[nodiscard]] double totalWeight() const noexcept;
  /// Weighted fraction of rows with label 1.
  [[nodiscard]] double positiveFraction() const noexcept;

  /// Merges duplicate feature rows: one row per (features, label) with
  /// accumulated weight.  Order is deterministic (first-seen order).
  [[nodiscard]] Dataset aggregated() const;

  /// Weighted random subsample of at most `maxRows` rows (weights carried
  /// over; aggregation-friendly).  Returns *this unchanged if small enough.
  [[nodiscard]] Dataset sampled(std::size_t maxRows, support::Rng& rng) const;

  /// Random split into train/test by row (weights preserved).
  [[nodiscard]] std::pair<Dataset, Dataset> split(double trainFraction, support::Rng& rng) const;

  /// k-fold partition: returns (train, validation) pairs.
  [[nodiscard]] std::vector<std::pair<Dataset, Dataset>> kFold(int folds,
                                                               support::Rng& rng) const;

 private:
  int featureCount_;
  std::vector<FeatureRow> features_;
  std::vector<int> labels_;
  std::vector<double> weights_;
};

}  // namespace rtlock::ml
