// Weighted tabular dataset for binary classification — flat data plane.
//
// SnapShot localities are tiny categorical tuples that repeat millions of
// times across relocking rounds, so the dataset supports instance weights and
// lossless aggregation of duplicate rows — a 10^6-row training set typically
// collapses to a few hundred weighted rows.
//
// Storage is one contiguous row-major matrix (size() * featureCount()
// doubles) plus parallel label/weight columns: appending a row never
// allocates per row (amortized growth only), and rows are read through
// span-style views.  Cross-validation folds are DatasetView index views over
// the one backing matrix instead of deep-copied Datasets; see
// src/ml/README.md for the layout and ownership rules.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <utility>
#include <vector>

#include "support/rng.hpp"

namespace rtlock::ml {

/// Borrowed, contiguous view of one feature row.
using RowView = std::span<const double>;

/// Owning row type for call sites that build feature vectors incrementally.
using FeatureRow = std::vector<double>;

class DatasetView;
struct KFoldAggregates;

class Dataset {
 public:
  explicit Dataset(int featureCount);

  void add(RowView features, int label, double weight = 1.0);
  void add(std::initializer_list<double> features, int label, double weight = 1.0) {
    add(RowView{features.begin(), features.size()}, label, weight);
  }

  /// Pre-grows the backing storage for `rows` additional rows.
  void reserveRows(std::size_t rows);

  [[nodiscard]] int featureCount() const noexcept { return featureCount_; }
  [[nodiscard]] std::size_t size() const noexcept { return labels_.size(); }
  [[nodiscard]] bool empty() const noexcept { return labels_.empty(); }

  [[nodiscard]] RowView row(std::size_t index) const noexcept {
    return RowView{values_.data() + index * static_cast<std::size_t>(featureCount_),
                   static_cast<std::size_t>(featureCount_)};
  }
  [[nodiscard]] int label(std::size_t index) const noexcept { return labels_[index]; }
  [[nodiscard]] double weight(std::size_t index) const noexcept { return weights_[index]; }

  [[nodiscard]] double totalWeight() const noexcept;
  /// Weighted fraction of rows with label 1.
  [[nodiscard]] double positiveFraction() const noexcept;

  /// Merges duplicate feature rows: one row per (features, label) with
  /// accumulated weight.  Order is deterministic (first-seen order).
  [[nodiscard]] Dataset aggregated() const;

  /// Weighted random subsample of at most `maxRows` rows (weights carried
  /// over; aggregation-friendly).  Returns a copy of *this if small enough.
  [[nodiscard]] Dataset sampled(std::size_t maxRows, support::Rng& rng) const;

  /// Random split into train/test by row (weights preserved).
  [[nodiscard]] std::pair<Dataset, Dataset> split(double trainFraction, support::Rng& rng) const;

  /// k-fold partition as (train, validation) index views over *this*.  The
  /// views borrow this dataset and must not outlive it.  Fold membership is
  /// identical to the historical deep-copy semantics: one shuffle of the row
  /// order, row i lands in fold (shuffled position % folds), and every view
  /// lists its rows in ascending original-row order.
  [[nodiscard]] std::vector<std::pair<DatasetView, DatasetView>> kFold(int folds,
                                                                       support::Rng& rng) const;

  /// kFold() composed with aggregation, in a single pass over the matrix:
  /// per fold the aggregated (train, validation) pair, plus the aggregate of
  /// the whole dataset (`all`) from the same scan.  Row-for-row identical to
  /// aggregating each kFold() view and calling aggregated() separately —
  /// same shuffle, same first-seen order — just one streaming pass instead
  /// of four (the auto-ml fast path).
  [[nodiscard]] KFoldAggregates kFoldAggregated(int folds, support::Rng& rng) const;

 private:
  friend class DatasetView;
  class Aggregator;

  /// Shared aggregation over anything with featureCount/size/row/label/weight.
  template <typename Table>
  [[nodiscard]] static Dataset aggregateOf(const Table& table);

  int featureCount_;
  std::vector<double> values_;  // row-major, size() * featureCount_
  std::vector<int> labels_;
  std::vector<double> weights_;
};

/// Result bundle of Dataset::kFoldAggregated.
struct KFoldAggregates {
  /// Aggregated (train, validation) pair per fold.
  std::vector<std::pair<Dataset, Dataset>> folds;
  /// Aggregate of the entire dataset (the final-refit training set).
  Dataset all{1};
};

/// Non-owning subset of a Dataset's rows (the fold-view type).  Holds the
/// row indices it exposes; the backing Dataset must outlive every view.
class DatasetView {
 public:
  DatasetView(const Dataset& base, std::vector<std::uint32_t> rows)
      : base_(&base), rows_(std::move(rows)) {}

  [[nodiscard]] int featureCount() const noexcept { return base_->featureCount(); }
  [[nodiscard]] std::size_t size() const noexcept { return rows_.size(); }
  [[nodiscard]] bool empty() const noexcept { return rows_.empty(); }

  [[nodiscard]] RowView row(std::size_t index) const noexcept {
    return base_->row(rows_[index]);
  }
  [[nodiscard]] int label(std::size_t index) const noexcept {
    return base_->label(rows_[index]);
  }
  [[nodiscard]] double weight(std::size_t index) const noexcept {
    return base_->weight(rows_[index]);
  }

  [[nodiscard]] double totalWeight() const noexcept;
  [[nodiscard]] double positiveFraction() const noexcept;

  /// Backing-row indices, in exposure order.
  [[nodiscard]] const std::vector<std::uint32_t>& indices() const noexcept { return rows_; }

  /// Lossless duplicate merge (first-seen order), as Dataset::aggregated().
  [[nodiscard]] Dataset aggregated() const;

  /// Deep copy of the viewed rows into a standalone Dataset.
  [[nodiscard]] Dataset materialized() const;

 private:
  const Dataset* base_;
  std::vector<std::uint32_t> rows_;
};

}  // namespace rtlock::ml
