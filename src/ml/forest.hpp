// Random forest: bagged decision trees with per-split feature subsampling.
#pragma once

#include "ml/tree.hpp"

namespace rtlock::ml {

struct ForestHyper {
  int trees = 25;
  int maxDepth = 10;
  /// Features per split; 0 = ceil(sqrt(featureCount)).
  int featureSubset = 0;
};

class RandomForest final : public Classifier {
 public:
  using Hyper = ForestHyper;

  explicit RandomForest(Hyper hyper = Hyper()) : hyper_(hyper) {}

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] CostClass costClass() const noexcept override { return CostClass::Slow; }
  void fit(const Dataset& data, support::Rng& rng) override;
  [[nodiscard]] std::unique_ptr<Classifier> fresh() const override;

 private:
  [[nodiscard]] double probaOf(RowView features) const override;

  Hyper hyper_;
  std::vector<DecisionTree> trees_;
};

}  // namespace rtlock::ml
