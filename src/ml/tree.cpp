#include "ml/tree.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

namespace rtlock::ml {

namespace {

struct ClassMass {
  double negative = 0.0;
  double positive = 0.0;

  [[nodiscard]] double total() const noexcept { return negative + positive; }

  /// Weighted Gini impurity.
  [[nodiscard]] double gini() const noexcept {
    const double sum = total();
    if (sum <= 0.0) return 0.0;
    const double p = positive / sum;
    return 2.0 * p * (1.0 - p);
  }
};

}  // namespace

std::string DecisionTree::name() const {
  return "tree(depth=" + std::to_string(hyper_.maxDepth) + ")";
}

void DecisionTree::fit(const Dataset& data, support::Rng& rng) {
  nodes_.clear();
  std::vector<std::size_t> rows(data.size());
  std::iota(rows.begin(), rows.end(), std::size_t{0});
  if (rows.empty()) {
    nodes_.push_back(Node{});
    return;
  }
  buildNode(data, rows, 0, rng);
}

int DecisionTree::buildNode(const Dataset& data, const std::vector<std::size_t>& rows, int depth,
                            support::Rng& rng) {
  ClassMass mass;
  for (const std::size_t row : rows) {
    if (data.label(row) == 1) {
      mass.positive += data.weight(row);
    } else {
      mass.negative += data.weight(row);
    }
  }

  const int nodeIndex = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{});
  nodes_[static_cast<std::size_t>(nodeIndex)].probability =
      mass.total() > 0.0 ? mass.positive / mass.total() : 0.5;

  const bool pure = mass.positive == 0.0 || mass.negative == 0.0;
  if (depth >= hyper_.maxDepth || mass.total() < hyper_.minSplitWeight || pure) {
    return nodeIndex;
  }

  // Candidate features (all, or a random subset for forests).
  std::vector<int> featureIds(static_cast<std::size_t>(data.featureCount()));
  std::iota(featureIds.begin(), featureIds.end(), 0);
  if (hyper_.featureSubset > 0 &&
      hyper_.featureSubset < static_cast<int>(featureIds.size())) {
    rng.shuffle(featureIds);
    featureIds.resize(static_cast<std::size_t>(hyper_.featureSubset));
  }

  const double parentGini = mass.gini();
  double bestGain = 1e-12;
  int bestFeature = -1;
  double bestThreshold = 0.0;

  for (const int feature : featureIds) {
    // Candidate thresholds: midpoints between distinct sorted values
    // (subsampled to maxThresholds).
    std::set<double> values;
    for (const std::size_t row : rows) {
      values.insert(data.row(row)[static_cast<std::size_t>(feature)]);
    }
    if (values.size() < 2) continue;
    std::vector<double> sorted(values.begin(), values.end());
    std::vector<double> thresholds;
    const std::size_t step =
        std::max<std::size_t>(1, sorted.size() / static_cast<std::size_t>(hyper_.maxThresholds));
    for (std::size_t i = 0; i + 1 < sorted.size(); i += step) {
      thresholds.push_back(0.5 * (sorted[i] + sorted[i + 1]));
    }

    for (const double threshold : thresholds) {
      ClassMass left;
      ClassMass right;
      for (const std::size_t row : rows) {
        const bool goLeft = data.row(row)[static_cast<std::size_t>(feature)] <= threshold;
        ClassMass& side = goLeft ? left : right;
        if (data.label(row) == 1) {
          side.positive += data.weight(row);
        } else {
          side.negative += data.weight(row);
        }
      }
      if (left.total() <= 0.0 || right.total() <= 0.0) continue;
      const double weightedGini =
          (left.total() * left.gini() + right.total() * right.gini()) / mass.total();
      const double gain = parentGini - weightedGini;
      if (gain > bestGain) {
        bestGain = gain;
        bestFeature = feature;
        bestThreshold = threshold;
      }
    }
  }

  if (bestFeature < 0) return nodeIndex;

  std::vector<std::size_t> leftRows;
  std::vector<std::size_t> rightRows;
  for (const std::size_t row : rows) {
    if (data.row(row)[static_cast<std::size_t>(bestFeature)] <= bestThreshold) {
      leftRows.push_back(row);
    } else {
      rightRows.push_back(row);
    }
  }

  const int left = buildNode(data, leftRows, depth + 1, rng);
  const int right = buildNode(data, rightRows, depth + 1, rng);
  Node& node = nodes_[static_cast<std::size_t>(nodeIndex)];
  node.feature = bestFeature;
  node.threshold = bestThreshold;
  node.left = left;
  node.right = right;
  return nodeIndex;
}

double DecisionTree::probaOf(RowView features) const {
  if (nodes_.empty()) return 0.5;
  int index = 0;
  for (;;) {
    const Node& node = nodes_[static_cast<std::size_t>(index)];
    if (node.feature < 0) return node.probability;
    index = features[static_cast<std::size_t>(node.feature)] <= node.threshold ? node.left
                                                                               : node.right;
  }
}

std::unique_ptr<Classifier> DecisionTree::fresh() const {
  return std::make_unique<DecisionTree>(hyper_);
}

}  // namespace rtlock::ml
