#include "ml/naive_bayes.hpp"

#include <cmath>
#include <set>

namespace rtlock::ml {

namespace {

constexpr double kMinVariance = 1e-9;
constexpr double kMinWeight = 1e-12;

[[nodiscard]] long long categoryOf(double value) noexcept {
  return static_cast<long long>(std::llround(value));
}

/// Converts two class log-scores into P(class 1) robustly.
[[nodiscard]] double softmaxBinary(double logScore0, double logScore1) noexcept {
  const double maxScore = std::max(logScore0, logScore1);
  const double exp0 = std::exp(logScore0 - maxScore);
  const double exp1 = std::exp(logScore1 - maxScore);
  return exp1 / (exp0 + exp1);
}

}  // namespace

// ---- GaussianNaiveBayes ----

void GaussianNaiveBayes::fit(const Dataset& data, support::Rng& /*rng*/) {
  const int features = data.featureCount();
  double classWeight[2] = {kMinWeight, kMinWeight};
  for (auto& model : classes_) {
    model.mean.assign(static_cast<std::size_t>(features), 0.0);
    model.variance.assign(static_cast<std::size_t>(features), 0.0);
  }

  for (std::size_t i = 0; i < data.size(); ++i) {
    const int label = data.label(i);
    const RowView row = data.row(i);
    classWeight[label] += data.weight(i);
    for (int f = 0; f < features; ++f) {
      classes_[label].mean[static_cast<std::size_t>(f)] +=
          data.weight(i) * row[static_cast<std::size_t>(f)];
    }
  }
  for (int label = 0; label < 2; ++label) {
    for (double& mean : classes_[label].mean) mean /= classWeight[label];
  }
  for (std::size_t i = 0; i < data.size(); ++i) {
    const int label = data.label(i);
    const RowView row = data.row(i);
    for (int f = 0; f < features; ++f) {
      const double delta = row[static_cast<std::size_t>(f)] -
                           classes_[label].mean[static_cast<std::size_t>(f)];
      classes_[label].variance[static_cast<std::size_t>(f)] += data.weight(i) * delta * delta;
    }
  }
  const double total = classWeight[0] + classWeight[1];
  for (int label = 0; label < 2; ++label) {
    for (double& variance : classes_[label].variance) {
      variance = std::max(variance / classWeight[label], kMinVariance);
    }
    classes_[label].logPrior = std::log(classWeight[label] / total);
  }
  fitted_ = true;
}

double GaussianNaiveBayes::logLikelihood(const ClassModel& model, RowView features) const {
  double logSum = model.logPrior;
  for (std::size_t f = 0; f < features.size(); ++f) {
    const double variance = model.variance[f];
    const double delta = features[f] - model.mean[f];
    logSum += -0.5 * std::log(2.0 * M_PI * variance) - delta * delta / (2.0 * variance);
  }
  return logSum;
}

double GaussianNaiveBayes::probaOf(RowView features) const {
  if (!fitted_) return 0.5;
  return softmaxBinary(logLikelihood(classes_[0], features),
                       logLikelihood(classes_[1], features));
}

std::unique_ptr<Classifier> GaussianNaiveBayes::fresh() const {
  return std::make_unique<GaussianNaiveBayes>();
}

// ---- CategoricalNaiveBayes ----

std::string CategoricalNaiveBayes::name() const {
  return "categorical-nb(alpha=" + std::to_string(alpha_) + ")";
}

void CategoricalNaiveBayes::fit(const Dataset& data, support::Rng& /*rng*/) {
  const auto features = static_cast<std::size_t>(data.featureCount());
  double classWeight[2] = {kMinWeight, kMinWeight};
  for (int label = 0; label < 2; ++label) {
    counts_[label].assign(features, {});
    classFeatureTotals_[label].assign(features, 0.0);
  }
  categoryCounts_.assign(features, 0);

  std::vector<std::set<long long>> seen(features);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const int label = data.label(i);
    const RowView row = data.row(i);
    classWeight[label] += data.weight(i);
    for (std::size_t f = 0; f < features; ++f) {
      const long long category = categoryOf(row[f]);
      counts_[label][f][category] += data.weight(i);
      classFeatureTotals_[label][f] += data.weight(i);
      seen[f].insert(category);
    }
  }
  for (std::size_t f = 0; f < features; ++f) {
    categoryCounts_[f] = std::max<std::size_t>(seen[f].size(), 1);
  }
  const double total = classWeight[0] + classWeight[1];
  logPrior_[0] = std::log(classWeight[0] / total);
  logPrior_[1] = std::log(classWeight[1] / total);
  fitted_ = true;
}

double CategoricalNaiveBayes::probaOf(RowView features) const {
  if (!fitted_) return 0.5;
  double logScore[2] = {logPrior_[0], logPrior_[1]};
  for (int label = 0; label < 2; ++label) {
    for (std::size_t f = 0; f < features.size(); ++f) {
      const long long category = categoryOf(features[f]);
      const auto it = counts_[label][f].find(category);
      const double count = it == counts_[label][f].end() ? 0.0 : it->second;
      const double denominator = classFeatureTotals_[label][f] +
                                 alpha_ * static_cast<double>(categoryCounts_[f]);
      logScore[label] += std::log((count + alpha_) / denominator);
    }
  }
  return softmaxBinary(logScore[0], logScore[1]);
}

std::unique_ptr<Classifier> CategoricalNaiveBayes::fresh() const {
  return std::make_unique<CategoricalNaiveBayes>(alpha_);
}

}  // namespace rtlock::ml
