#include "ml/dataset.hpp"

#include <cstring>
#include <numeric>

#include "support/diagnostics.hpp"

namespace rtlock::ml {

Dataset::Dataset(int featureCount) : featureCount_(featureCount) {
  RTLOCK_REQUIRE(featureCount >= 1, "datasets need at least one feature");
}

void Dataset::add(RowView features, int label, double weight) {
  RTLOCK_REQUIRE(static_cast<int>(features.size()) == featureCount_,
                 "feature row arity mismatch");
  RTLOCK_REQUIRE(label == 0 || label == 1, "binary labels only");
  RTLOCK_REQUIRE(weight > 0.0, "weights must be positive");
  const double* source = features.data();
  if (values_.size() + features.size() > values_.capacity()) {
    // Growth would invalidate `features` if it views this dataset's own
    // matrix (e.g. d.add(d.row(i), ...)); re-anchor through the row offset.
    const bool aliasesSelf =
        source >= values_.data() && source < values_.data() + values_.size();
    const std::size_t offset =
        aliasesSelf ? static_cast<std::size_t>(source - values_.data()) : 0;
    values_.reserve(std::max(values_.capacity() * 2, values_.size() + features.size()));
    if (aliasesSelf) source = values_.data() + offset;
  }
  values_.insert(values_.end(), source, source + features.size());
  labels_.push_back(label);
  weights_.push_back(weight);
}

void Dataset::reserveRows(std::size_t rows) {
  values_.reserve(values_.size() + rows * static_cast<std::size_t>(featureCount_));
  labels_.reserve(labels_.size() + rows);
  weights_.reserve(weights_.size() + rows);
}

double Dataset::totalWeight() const noexcept {
  return std::accumulate(weights_.begin(), weights_.end(), 0.0);
}

double Dataset::positiveFraction() const noexcept {
  double positive = 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < size(); ++i) {
    total += weights_[i];
    if (labels_[i] == 1) positive += weights_[i];
  }
  return total == 0.0 ? 0.0 : positive / total;
}

namespace {

/// Word-wise mix over a row's exact double bit patterns plus the label.
/// Only equality (exact bytes) affects aggregation results — the hash merely
/// routes probes, so grouping, first-seen order and accumulated weights are
/// identical to the historical string-key map regardless of this function.
[[nodiscard]] std::uint64_t hashRow(RowView row, int label) noexcept {
  auto mix = [](std::uint64_t h, std::uint64_t value) noexcept {
    h ^= value + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return h * 0xff51afd7ed558ccdull;
  };
  std::uint64_t hash = 1469598103934665603ull;
  for (const double value : row) {
    std::uint64_t bits;
    std::memcpy(&bits, &value, sizeof bits);
    hash = mix(hash, bits);
  }
  return mix(hash, static_cast<std::uint64_t>(label));
}

[[nodiscard]] bool sameRow(RowView a, RowView b) noexcept {
  return std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

}  // namespace

/// Open-addressing index from (features, label) to a result row, preserving
/// first-seen order.  Aggregation runs several times per auto-ml call over
/// ~10^5 raw rows — it has to be a flat probe table, not a node-based map
/// with a string key per row.
class Dataset::Aggregator {
 public:
  explicit Aggregator(int featureCount) : result_(featureCount) {}

  void consume(RowView row, int label, double weight, std::uint64_t hash) {
    std::size_t slot = static_cast<std::size_t>(hash) & (capacity_ - 1);
    for (;;) {
      const std::uint32_t candidate = slots_[slot];
      if (candidate == UINT32_MAX) {
        slots_[slot] = static_cast<std::uint32_t>(result_.size());
        rowHashes_.push_back(hash);
        result_.add(row, label, weight);
        break;
      }
      if (rowHashes_[candidate] == hash && result_.labels_[candidate] == label &&
          sameRow(result_.row(candidate), row)) {
        result_.weights_[candidate] += weight;
        break;
      }
      slot = (slot + 1) & (capacity_ - 1);
    }
    if (result_.size() * 2 >= capacity_) grow();
  }

  [[nodiscard]] Dataset take() && { return std::move(result_); }

 private:
  void grow() {
    capacity_ *= 2;
    slots_.assign(capacity_, UINT32_MAX);
    for (std::uint32_t r = 0; r < result_.size(); ++r) {
      std::size_t slot = static_cast<std::size_t>(rowHashes_[r]) & (capacity_ - 1);
      while (slots_[slot] != UINT32_MAX) slot = (slot + 1) & (capacity_ - 1);
      slots_[slot] = r;
    }
  }

  Dataset result_;
  std::size_t capacity_ = 64;  // power of two; grown when half full
  std::vector<std::uint32_t> slots_ = std::vector<std::uint32_t>(64, UINT32_MAX);
  std::vector<std::uint64_t> rowHashes_;  // per result row
};

template <typename Table>
Dataset Dataset::aggregateOf(const Table& table) {
  Aggregator aggregator{table.featureCount()};
  for (std::size_t i = 0; i < table.size(); ++i) {
    const RowView row = table.row(i);
    const int label = table.label(i);
    aggregator.consume(row, label, table.weight(i), hashRow(row, label));
  }
  return std::move(aggregator).take();
}

Dataset Dataset::aggregated() const { return aggregateOf(*this); }

KFoldAggregates Dataset::kFoldAggregated(int folds, support::Rng& rng) const {
  RTLOCK_REQUIRE(folds >= 2, "k-fold needs at least two folds");
  std::vector<std::size_t> order(size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng.shuffle(order);

  std::vector<int> foldOf(size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    foldOf[order[i]] = static_cast<int>(i % static_cast<std::size_t>(folds));
  }

  // One streaming pass: row i (ascending, exactly the view order) feeds its
  // own fold's validation aggregate, every other fold's train aggregate, and
  // the whole-dataset aggregate; the row hash is computed once.
  std::vector<Aggregator> trains;
  std::vector<Aggregator> validations;
  for (int fold = 0; fold < folds; ++fold) {
    trains.emplace_back(featureCount_);
    validations.emplace_back(featureCount_);
  }
  Aggregator full{featureCount_};
  for (std::size_t i = 0; i < size(); ++i) {
    const RowView r = row(i);
    const int label = labels_[i];
    const double w = weights_[i];
    const std::uint64_t hash = hashRow(r, label);
    for (int fold = 0; fold < folds; ++fold) {
      (foldOf[i] == fold ? validations : trains)[static_cast<std::size_t>(fold)].consume(
          r, label, w, hash);
    }
    full.consume(r, label, w, hash);
  }

  KFoldAggregates result;
  result.folds.reserve(static_cast<std::size_t>(folds));
  for (int fold = 0; fold < folds; ++fold) {
    result.folds.emplace_back(std::move(trains[static_cast<std::size_t>(fold)]).take(),
                              std::move(validations[static_cast<std::size_t>(fold)]).take());
  }
  result.all = std::move(full).take();
  return result;
}

Dataset Dataset::sampled(std::size_t maxRows, support::Rng& rng) const {
  if (size() <= maxRows) return *this;
  Dataset result{featureCount_};
  result.reserveRows(maxRows);
  // Uniform row sample with weight rescaling keeps the total mass unbiased.
  const auto indices = rng.sampleIndices(size(), maxRows);
  const double scale = static_cast<double>(size()) / static_cast<double>(maxRows);
  for (const std::size_t i : indices) {
    result.add(row(i), labels_[i], weights_[i] * scale);
  }
  return result;
}

std::pair<Dataset, Dataset> Dataset::split(double trainFraction, support::Rng& rng) const {
  RTLOCK_REQUIRE(trainFraction > 0.0 && trainFraction < 1.0,
                 "train fraction must lie strictly between 0 and 1");
  Dataset train{featureCount_};
  Dataset test{featureCount_};
  for (std::size_t i = 0; i < size(); ++i) {
    (rng.chance(trainFraction) ? train : test).add(row(i), labels_[i], weights_[i]);
  }
  return {std::move(train), std::move(test)};
}

std::vector<std::pair<DatasetView, DatasetView>> Dataset::kFold(int folds,
                                                                support::Rng& rng) const {
  RTLOCK_REQUIRE(folds >= 2, "k-fold needs at least two folds");
  std::vector<std::size_t> order(size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng.shuffle(order);

  std::vector<int> foldOf(size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    foldOf[order[i]] = static_cast<int>(i % static_cast<std::size_t>(folds));
  }

  std::vector<std::pair<DatasetView, DatasetView>> result;
  result.reserve(static_cast<std::size_t>(folds));
  for (int fold = 0; fold < folds; ++fold) {
    std::vector<std::uint32_t> train;
    std::vector<std::uint32_t> validation;
    train.reserve(size());
    validation.reserve(size() / static_cast<std::size_t>(folds) + 1);
    for (std::size_t i = 0; i < size(); ++i) {
      (foldOf[i] == fold ? validation : train).push_back(static_cast<std::uint32_t>(i));
    }
    result.emplace_back(DatasetView{*this, std::move(train)},
                        DatasetView{*this, std::move(validation)});
  }
  return result;
}

double DatasetView::totalWeight() const noexcept {
  double total = 0.0;
  for (const std::uint32_t r : rows_) total += base_->weights_[r];
  return total;
}

double DatasetView::positiveFraction() const noexcept {
  double positive = 0.0;
  double total = 0.0;
  for (const std::uint32_t r : rows_) {
    total += base_->weights_[r];
    if (base_->labels_[r] == 1) positive += base_->weights_[r];
  }
  return total == 0.0 ? 0.0 : positive / total;
}

Dataset DatasetView::aggregated() const { return Dataset::aggregateOf(*this); }

Dataset DatasetView::materialized() const {
  Dataset result{featureCount()};
  result.reserveRows(size());
  for (std::size_t i = 0; i < size(); ++i) result.add(row(i), label(i), weight(i));
  return result;
}

}  // namespace rtlock::ml
