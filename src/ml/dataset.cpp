#include "ml/dataset.hpp"

#include <numeric>
#include <string>
#include <unordered_map>

#include "support/diagnostics.hpp"

namespace rtlock::ml {

Dataset::Dataset(int featureCount) : featureCount_(featureCount) {
  RTLOCK_REQUIRE(featureCount >= 1, "datasets need at least one feature");
}

void Dataset::add(FeatureRow features, int label, double weight) {
  RTLOCK_REQUIRE(static_cast<int>(features.size()) == featureCount_,
                 "feature row arity mismatch");
  RTLOCK_REQUIRE(label == 0 || label == 1, "binary labels only");
  RTLOCK_REQUIRE(weight > 0.0, "weights must be positive");
  features_.push_back(std::move(features));
  labels_.push_back(label);
  weights_.push_back(weight);
}

double Dataset::totalWeight() const noexcept {
  return std::accumulate(weights_.begin(), weights_.end(), 0.0);
}

double Dataset::positiveFraction() const noexcept {
  double positive = 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < size(); ++i) {
    total += weights_[i];
    if (labels_[i] == 1) positive += weights_[i];
  }
  return total == 0.0 ? 0.0 : positive / total;
}

Dataset Dataset::aggregated() const {
  // Key: features + label serialized into a string of doubles (exact bit
  // patterns), preserving first-seen order via index map.
  std::unordered_map<std::string, std::size_t> keyToRow;
  Dataset result{featureCount_};
  for (std::size_t i = 0; i < size(); ++i) {
    std::string key;
    key.reserve(features_[i].size() * sizeof(double) + 1);
    for (const double value : features_[i]) {
      key.append(reinterpret_cast<const char*>(&value), sizeof(double));
    }
    key.push_back(static_cast<char>(labels_[i]));
    const auto it = keyToRow.find(key);
    if (it == keyToRow.end()) {
      keyToRow.emplace(std::move(key), result.size());
      result.add(features_[i], labels_[i], weights_[i]);
    } else {
      result.weights_[it->second] += weights_[i];
    }
  }
  return result;
}

Dataset Dataset::sampled(std::size_t maxRows, support::Rng& rng) const {
  if (size() <= maxRows) return *this;
  Dataset result{featureCount_};
  // Uniform row sample with weight rescaling keeps the total mass unbiased.
  const auto indices = rng.sampleIndices(size(), maxRows);
  const double scale = static_cast<double>(size()) / static_cast<double>(maxRows);
  for (const std::size_t i : indices) {
    result.add(features_[i], labels_[i], weights_[i] * scale);
  }
  return result;
}

std::pair<Dataset, Dataset> Dataset::split(double trainFraction, support::Rng& rng) const {
  RTLOCK_REQUIRE(trainFraction > 0.0 && trainFraction < 1.0,
                 "train fraction must lie strictly between 0 and 1");
  Dataset train{featureCount_};
  Dataset test{featureCount_};
  for (std::size_t i = 0; i < size(); ++i) {
    (rng.chance(trainFraction) ? train : test).add(features_[i], labels_[i], weights_[i]);
  }
  return {std::move(train), std::move(test)};
}

std::vector<std::pair<Dataset, Dataset>> Dataset::kFold(int folds, support::Rng& rng) const {
  RTLOCK_REQUIRE(folds >= 2, "k-fold needs at least two folds");
  std::vector<std::size_t> order(size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng.shuffle(order);

  std::vector<int> foldOf(size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    foldOf[order[i]] = static_cast<int>(i % static_cast<std::size_t>(folds));
  }

  std::vector<std::pair<Dataset, Dataset>> result;
  result.reserve(static_cast<std::size_t>(folds));
  for (int fold = 0; fold < folds; ++fold) {
    Dataset train{featureCount_};
    Dataset validation{featureCount_};
    for (std::size_t i = 0; i < size(); ++i) {
      (foldOf[i] == fold ? validation : train).add(features_[i], labels_[i], weights_[i]);
    }
    result.emplace_back(std::move(train), std::move(validation));
  }
  return result;
}

}  // namespace rtlock::ml
