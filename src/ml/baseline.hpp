// Baseline classifiers.
//
// HistogramClassifier is the Bayes-optimal model for SnapShot localities:
// features are small categorical tuples, and the optimal decision is the
// per-tuple weighted majority vote.  Every other model family can at best
// approximate this table; auto-ml usually selects it or an equally-good
// approximation.
#pragma once

#include <string_view>
#include <unordered_map>

#include "ml/model.hpp"

namespace rtlock::ml {

/// Predicts the globally most frequent class (sanity floor for auto-ml).
class MajorityClassifier final : public Classifier {
 public:
  [[nodiscard]] std::string name() const override { return "majority"; }
  void fit(const Dataset& data, support::Rng& rng) override;
  [[nodiscard]] std::unique_ptr<Classifier> fresh() const override;

 private:
  [[nodiscard]] double probaOf(RowView features) const override;

  double positiveFraction_ = 0.5;
};

/// Per-feature-tuple weighted majority table with a Laplace-smoothed global
/// prior for unseen tuples.
class HistogramClassifier final : public Classifier {
 public:
  /// `smoothing` is the pseudo-count added to both classes per tuple.
  explicit HistogramClassifier(double smoothing = 1.0) : smoothing_(smoothing) {}

  [[nodiscard]] std::string name() const override;
  void fit(const Dataset& data, support::Rng& rng) override;
  [[nodiscard]] std::unique_ptr<Classifier> fresh() const override;

 private:
  struct ClassWeights {
    double negative = 0.0;
    double positive = 0.0;
  };

  /// Transparent hashing lets lookups run on a string_view over the raw row
  /// bytes — no per-prediction key allocation.
  struct RowKeyHash {
    using is_transparent = void;
    [[nodiscard]] std::size_t operator()(std::string_view key) const noexcept {
      return std::hash<std::string_view>{}(key);
    }
    [[nodiscard]] std::size_t operator()(const std::string& key) const noexcept {
      return std::hash<std::string_view>{}(key);
    }
  };

  [[nodiscard]] static std::string_view keyFor(RowView features) noexcept {
    return std::string_view{reinterpret_cast<const char*>(features.data()),
                            features.size() * sizeof(double)};
  }

  [[nodiscard]] double probaOf(RowView features) const override;

  double smoothing_;
  double prior_ = 0.5;
  std::unordered_map<std::string, ClassWeights, RowKeyHash, std::equal_to<>> table_;
};

}  // namespace rtlock::ml
