// L2-regularized logistic regression trained with full-batch gradient descent
// and feature standardization.
#pragma once

#include "ml/model.hpp"

namespace rtlock::ml {

struct LogisticHyper {
  double learningRate = 0.5;
  double l2 = 1e-4;
  int epochs = 300;
};

class LogisticRegression final : public Classifier {
 public:
  using Hyper = LogisticHyper;

  explicit LogisticRegression(Hyper hyper = Hyper()) : hyper_(hyper) {}

  [[nodiscard]] std::string name() const override;
  void fit(const Dataset& data, support::Rng& rng) override;
  [[nodiscard]] std::unique_ptr<Classifier> fresh() const override;

 private:
  [[nodiscard]] double probaOf(RowView features) const override;
  [[nodiscard]] double decision(RowView features) const;

  Hyper hyper_;
  std::vector<double> weights_;
  double bias_ = 0.0;
  std::vector<double> mean_;
  std::vector<double> scale_;
  bool fitted_ = false;
};

}  // namespace rtlock::ml
