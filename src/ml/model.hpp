// Abstract binary classifier interface shared by all model families.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "ml/dataset.hpp"

namespace rtlock::ml {

class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Human-readable model identifier ("logistic(lr=0.1)", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Trains on the (weighted) dataset.  Must be callable repeatedly.
  virtual void fit(const Dataset& data, support::Rng& rng) = 0;

  /// P(label == 1 | features) in [0, 1].
  [[nodiscard]] virtual double predictProba(const FeatureRow& features) const = 0;

  [[nodiscard]] int predict(const FeatureRow& features) const {
    return predictProba(features) >= 0.5 ? 1 : 0;
  }

  /// Fresh untrained copy with the same hyperparameters (for CV folds).
  [[nodiscard]] virtual std::unique_ptr<Classifier> fresh() const = 0;
};

/// Weighted accuracy of a fitted model on a dataset.
[[nodiscard]] double accuracy(const Classifier& model, const Dataset& data);

}  // namespace rtlock::ml
