// Abstract binary classifier interface shared by all model families.
//
// Determinism contract (see src/ml/README.md): given the same dataset
// contents (row order included) and the same Rng state, fit() must produce a
// model whose predictions are bit-identical on every machine — no wall-clock
// reads, no iteration over unordered containers where order reaches the
// output, no hidden global state.  predictProba() takes a span-style row
// view and must not allocate per call; implementations may reuse mutable
// scratch buffers, so predictions on one instance are NOT thread-safe
// (clone via fresh()+fit for concurrent use).
#pragma once

#include <initializer_list>
#include <memory>
#include <string>

#include "ml/dataset.hpp"

namespace rtlock::ml {

/// Relative fitting cost of a model family.  Auto-ml gates Slow candidates
/// on large training sets (the portfolio's "don't start what cannot finish"
/// rule), so the cost class is part of the model API rather than a
/// name-prefix convention.
enum class CostClass { Fast, Slow };

class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Human-readable model identifier ("logistic(lr=0.1)", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Fitting-cost family for auto-ml portfolio gating.
  [[nodiscard]] virtual CostClass costClass() const noexcept { return CostClass::Fast; }

  /// Trains on the (weighted) dataset.  Must be callable repeatedly.
  virtual void fit(const Dataset& data, support::Rng& rng) = 0;

  /// P(label == 1 | features) in [0, 1].
  [[nodiscard]] double predictProba(RowView features) const { return probaOf(features); }
  [[nodiscard]] double predictProba(std::initializer_list<double> features) const {
    return probaOf(RowView{features.begin(), features.size()});
  }

  [[nodiscard]] int predict(RowView features) const {
    return probaOf(features) >= 0.5 ? 1 : 0;
  }
  [[nodiscard]] int predict(std::initializer_list<double> features) const {
    return predict(RowView{features.begin(), features.size()});
  }

  /// Fresh untrained copy with the same hyperparameters (for CV folds).
  [[nodiscard]] virtual std::unique_ptr<Classifier> fresh() const = 0;

 private:
  /// Implementation hook behind predictProba/predict (non-virtual interface
  /// so the initializer_list conveniences exist exactly once, here).
  [[nodiscard]] virtual double probaOf(RowView features) const = 0;
};

/// Weighted accuracy of a fitted model on a dataset.
[[nodiscard]] double accuracy(const Classifier& model, const Dataset& data);
[[nodiscard]] double accuracy(const Classifier& model, const DatasetView& data);

}  // namespace rtlock::ml
