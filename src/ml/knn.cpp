#include "ml/knn.hpp"

#include <algorithm>
#include <cmath>

namespace rtlock::ml {

std::string KnnClassifier::name() const { return "knn(k=" + std::to_string(hyper_.k) + ")"; }

void KnnClassifier::fit(const Dataset& data, support::Rng& rng) {
  rows_.clear();
  labels_.clear();
  weights_.clear();
  const Dataset stored = data.aggregated().sampled(hyper_.maxStoredRows, rng);
  rows_.reserve(stored.size());
  for (std::size_t i = 0; i < stored.size(); ++i) {
    rows_.push_back(stored.features(i));
    labels_.push_back(stored.label(i));
    weights_.push_back(stored.weight(i));
  }
}

double KnnClassifier::predictProba(const FeatureRow& features) const {
  if (rows_.empty()) return 0.5;

  // Distances to all stored rows; take the k nearest by partial sort.
  std::vector<std::pair<double, std::size_t>> distances;
  distances.reserve(rows_.size());
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    double sum = 0.0;
    for (std::size_t f = 0; f < features.size(); ++f) {
      const double delta = features[f] - rows_[i][f];
      sum += delta * delta;
    }
    distances.emplace_back(sum, i);
  }
  const std::size_t k = std::min<std::size_t>(static_cast<std::size_t>(hyper_.k),
                                              distances.size());
  std::partial_sort(distances.begin(), distances.begin() + static_cast<std::ptrdiff_t>(k),
                    distances.end());

  double positive = 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t row = distances[i].second;
    total += weights_[row];
    if (labels_[row] == 1) positive += weights_[row];
  }
  return total == 0.0 ? 0.5 : positive / total;
}

std::unique_ptr<Classifier> KnnClassifier::fresh() const {
  return std::make_unique<KnnClassifier>(hyper_);
}

}  // namespace rtlock::ml
