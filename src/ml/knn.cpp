#include "ml/knn.hpp"

#include <algorithm>
#include <cmath>

namespace rtlock::ml {

std::string KnnClassifier::name() const { return "knn(k=" + std::to_string(hyper_.k) + ")"; }

void KnnClassifier::fit(const Dataset& data, support::Rng& rng) {
  stored_ = data.aggregated().sampled(hyper_.maxStoredRows, rng);
  fitted_ = !stored_.empty();
}

double KnnClassifier::probaOf(RowView features) const {
  if (!fitted_ || stored_.empty()) return 0.5;

  // Distances to all stored rows; take the k nearest by partial sort.
  distances_.clear();
  distances_.reserve(stored_.size());
  for (std::size_t i = 0; i < stored_.size(); ++i) {
    const RowView candidate = stored_.row(i);
    double sum = 0.0;
    for (std::size_t f = 0; f < features.size(); ++f) {
      const double delta = features[f] - candidate[f];
      sum += delta * delta;
    }
    distances_.emplace_back(sum, i);
  }
  const std::size_t k = std::min<std::size_t>(static_cast<std::size_t>(hyper_.k),
                                              distances_.size());
  std::partial_sort(distances_.begin(), distances_.begin() + static_cast<std::ptrdiff_t>(k),
                    distances_.end());

  double positive = 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t row = distances_[i].second;
    total += stored_.weight(row);
    if (stored_.label(row) == 1) positive += stored_.weight(row);
  }
  return total == 0.0 ? 0.5 : positive / total;
}

std::unique_ptr<Classifier> KnnClassifier::fresh() const {
  return std::make_unique<KnnClassifier>(hyper_);
}

}  // namespace rtlock::ml
