// Naive Bayes classifiers (Gaussian for continuous features, categorical for
// discrete encodings such as SnapShot operation codes).
#pragma once

#include <unordered_map>
#include <vector>

#include "ml/model.hpp"

namespace rtlock::ml {

/// Gaussian naive Bayes with per-class, per-feature mean/variance.
class GaussianNaiveBayes final : public Classifier {
 public:
  [[nodiscard]] std::string name() const override { return "gaussian-nb"; }
  void fit(const Dataset& data, support::Rng& rng) override;
  [[nodiscard]] std::unique_ptr<Classifier> fresh() const override;

 private:
  struct ClassModel {
    double logPrior = 0.0;
    std::vector<double> mean;
    std::vector<double> variance;
  };

  [[nodiscard]] double logLikelihood(const ClassModel& model, RowView features) const;
  [[nodiscard]] double probaOf(RowView features) const override;

  ClassModel classes_[2];
  bool fitted_ = false;
};

/// Categorical naive Bayes: features are treated as category ids with
/// Laplace smoothing.
class CategoricalNaiveBayes final : public Classifier {
 public:
  explicit CategoricalNaiveBayes(double alpha = 1.0) : alpha_(alpha) {}

  [[nodiscard]] std::string name() const override;
  void fit(const Dataset& data, support::Rng& rng) override;
  [[nodiscard]] std::unique_ptr<Classifier> fresh() const override;

 private:
  [[nodiscard]] double probaOf(RowView features) const override;

  double alpha_;
  double logPrior_[2] = {0.0, 0.0};
  /// Per class, per feature: category -> accumulated weight.
  std::vector<std::unordered_map<long long, double>> counts_[2];
  std::vector<double> classFeatureTotals_[2];  // per feature total weight
  std::vector<std::size_t> categoryCounts_;    // distinct categories per feature
  bool fitted_ = false;
};

}  // namespace rtlock::ml
