// CART decision tree (weighted Gini impurity, numeric threshold splits).
#pragma once

#include <optional>

#include "ml/model.hpp"

namespace rtlock::ml {

struct TreeHyper {
  int maxDepth = 8;
  double minSplitWeight = 2.0;  // do not split lighter nodes
  int maxThresholds = 32;       // candidate thresholds per feature
  /// Features considered per split; 0 = all (set by RandomForest).
  int featureSubset = 0;
};

class DecisionTree final : public Classifier {
 public:
  using Hyper = TreeHyper;

  explicit DecisionTree(Hyper hyper = Hyper()) : hyper_(hyper) {}

  [[nodiscard]] std::string name() const override;
  void fit(const Dataset& data, support::Rng& rng) override;
  [[nodiscard]] std::unique_ptr<Classifier> fresh() const override;

 private:
  [[nodiscard]] double probaOf(RowView features) const override;

  struct Node {
    int feature = -1;          // -1 = leaf
    double threshold = 0.0;    // go left if value <= threshold
    int left = -1;
    int right = -1;
    double probability = 0.5;  // leaf P(label == 1)
  };

  int buildNode(const Dataset& data, const std::vector<std::size_t>& rows, int depth,
                support::Rng& rng);

  Hyper hyper_;
  std::vector<Node> nodes_;
};

}  // namespace rtlock::ml
