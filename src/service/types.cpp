#include "service/types.hpp"

#include <optional>
#include <utility>

#include "support/cli.hpp"
#include "support/strings.hpp"

namespace rtlock::service {

lock::Algorithm algorithmFromName(const std::string& name) {
  const std::string lowered = support::toLower(name);
  if (lowered == "serial" || lowered == "assure") return lock::Algorithm::AssureSerial;
  if (lowered == "random") return lock::Algorithm::AssureRandom;
  if (lowered == "hra") return lock::Algorithm::Hra;
  if (lowered == "greedy") return lock::Algorithm::Greedy;
  if (lowered == "era") return lock::Algorithm::Era;
  throw BadRequest{"unknown algorithm '" + name + "' (expected serial|random|hra|greedy|era)"};
}

std::string algorithmName(lock::Algorithm algorithm) {
  switch (algorithm) {
    case lock::Algorithm::AssureSerial: return "serial";
    case lock::Algorithm::AssureRandom: return "random";
    case lock::Algorithm::Hra: return "hra";
    case lock::Algorithm::Greedy: return "greedy";
    case lock::Algorithm::Era: return "era";
  }
  RTLOCK_UNREACHABLE("algorithm");
}

sim::SimBackend simBackendFromName(const std::string& name) {
  const std::string lowered = support::toLower(name);
  if (lowered == "sliced") return sim::SimBackend::Sliced;
  if (lowered == "compiled" || lowered == "scalar") return sim::SimBackend::Compiled;
  throw BadRequest{"unknown sim backend '" + name + "' (expected sliced|compiled)"};
}

std::vector<lock::Algorithm> algorithmListFromNames(const std::string& text) {
  std::vector<lock::Algorithm> algorithms;
  for (const std::string& name : support::split(text, ',')) {
    if (!support::trim(name).empty()) {
      algorithms.push_back(algorithmFromName(std::string{support::trim(name)}));
    }
  }
  if (algorithms.empty()) throw BadRequest{"no algorithms listed"};
  return algorithms;
}

std::vector<std::uint64_t> parseSeedList(const std::string& text) {
  std::vector<std::uint64_t> seeds;
  for (const std::string& piece : support::split(text, ',')) {
    const std::string item{support::trim(piece)};
    if (item.empty()) continue;
    const auto malformed = [&item]() {
      return BadRequest{"malformed seeds entry '" + item + "' (expected e.g. 1,2,7 or 1..5)"};
    };
    const std::size_t dots = item.find("..");
    if (dots == std::string::npos) {
      const std::optional<std::uint64_t> seed = support::parseU64(item);
      if (!seed.has_value()) throw malformed();
      seeds.push_back(*seed);
      continue;
    }
    const std::optional<std::uint64_t> first = support::parseU64(item.substr(0, dots));
    const std::optional<std::uint64_t> last = support::parseU64(item.substr(dots + 2));
    if (!first.has_value() || !last.has_value()) throw malformed();
    if (*last < *first || *last - *first > 10'000) {
      throw BadRequest{"seeds range '" + item + "' must ascend and span at most 10000 seeds"};
    }
    for (std::uint64_t s = *first; s <= *last; ++s) seeds.push_back(s);
  }
  if (seeds.empty()) throw BadRequest{"no seeds listed"};
  return seeds;
}

int BudgetSpec::resolve(int lockableOps) const {
  if (!isFraction) return static_cast<int>(absolute);
  const int bits = static_cast<int>(fraction * lockableOps);
  return bits > 0 ? bits : 1;
}

std::string BudgetSpec::describe() const {
  if (isFraction) return support::formatDouble(fraction * 100.0, 0) + "%";
  return std::to_string(absolute) + " bits";
}

BudgetSpec parseBudget(const std::string& text) {
  BudgetSpec spec;
  try {
    // Full-consumption parses: trailing junk must fail loudly, not silently
    // reinterpret the budget ("50%x", "1e2").
    std::size_t used = 0;
    if (!text.empty() && text.back() == '%') {
      const std::string number = text.substr(0, text.size() - 1);
      spec.isFraction = true;
      spec.fraction = std::stod(number, &used) / 100.0;
      if (used != number.size()) throw BadRequest{"trailing junk"};
    } else if (text.find('.') != std::string::npos) {
      spec.isFraction = true;
      spec.fraction = std::stod(text, &used);
      if (used != text.size()) throw BadRequest{"trailing junk"};
    } else {
      spec.isFraction = false;
      spec.absolute = std::stoll(text, &used);
      if (used != text.size()) throw BadRequest{"trailing junk"};
    }
  } catch (const std::exception&) {
    throw BadRequest{"malformed budget '" + text + "' (expected e.g. 50%, 0.5 or 40)"};
  }
  if (spec.isFraction && (spec.fraction <= 0.0 || spec.fraction > 1.0)) {
    throw BadRequest{"budget fraction must be in (0%, 100%], got '" + text + "'"};
  }
  if (!spec.isFraction && spec.absolute < 1) {
    throw BadRequest{"absolute budget must be at least 1 key bit, got '" + text + "'"};
  }
  return spec;
}

support::JsonValue rowsToJson(const std::vector<ReportRow>& rows) {
  support::JsonArray array;
  array.reserve(rows.size());
  for (const ReportRow& row : rows) {
    support::JsonValue entry;
    entry.set("bench", row.bench);
    entry.set("config", row.config);
    entry.set("metric", row.metric);
    // Match the baseline writer's fixed precisions so the documents diff and
    // gate identically whichever tool produced them.
    entry.set("value", std::stod(support::formatDouble(row.value, 4)));
    entry.set("wall_ms", std::stod(support::formatDouble(row.wallMs, 2)));
    array.push_back(std::move(entry));
  }
  return support::JsonValue{std::move(array)};
}

support::JsonValue keyFileToJson(const KeyFile& keyFile) {
  support::JsonValue document;
  document.set("schema", kKeySchema);
  document.set("input", keyFile.input);
  document.set("algorithm", keyFile.algorithm);
  document.set("budget", keyFile.budget);
  document.set("seed", keyFile.seed);
  support::JsonArray modules;
  modules.reserve(keyFile.modules.size());
  for (const ModuleKey& module : keyFile.modules) {
    support::JsonValue entry;
    entry.set("module", module.module);
    entry.set("key_width", module.keyWidth);
    entry.set("key", module.keyBits);
    entry.set("bits_used", module.bitsUsed);
    entry.set("global_metric", module.globalMetric);
    entry.set("restricted_metric", module.restrictedMetric);
    support::JsonArray records;
    records.reserve(module.records.size());
    for (const lock::LockRecord& record : module.records) {
      support::JsonValue row;
      row.set("key_index", record.keyIndex);
      row.set("key_value", record.keyValue ? 1 : 0);
      row.set("real_op", std::string{rtl::opName(record.realOp)});
      row.set("dummy_op", std::string{rtl::opName(record.dummyOp)});
      records.push_back(std::move(row));
    }
    entry.set("records", support::JsonValue{std::move(records)});
    modules.push_back(std::move(entry));
  }
  document.set("modules", support::JsonValue{std::move(modules)});
  return document;
}

KeyFile keyFileFromJson(const support::JsonValue& document) {
  const std::string schema = document.at("schema").asString();
  if (schema != kKeySchema) {
    throw support::Error{"unsupported key file schema \"" + schema + "\" (expected " + kKeySchema +
                         ")"};
  }
  KeyFile keyFile;
  keyFile.input = document.at("input").asString();
  keyFile.algorithm = document.at("algorithm").asString();
  keyFile.budget = document.at("budget").asString();
  keyFile.seed = static_cast<std::uint64_t>(document.at("seed").asInt());
  for (const support::JsonValue& entry : document.at("modules").asArray()) {
    ModuleKey module;
    module.module = entry.at("module").asString();
    module.keyWidth = static_cast<int>(entry.at("key_width").asInt());
    module.keyBits = entry.at("key").asString();
    module.bitsUsed = static_cast<int>(entry.at("bits_used").asInt());
    module.globalMetric = entry.at("global_metric").asDouble();
    module.restrictedMetric = entry.at("restricted_metric").asDouble();
    if (module.keyBits.size() != static_cast<std::size_t>(module.keyWidth)) {
      throw support::Error{"key file module \"" + module.module +
                           "\": key string length does not match key_width"};
    }
    for (const support::JsonValue& row : entry.at("records").asArray()) {
      lock::LockRecord record;
      record.keyIndex = static_cast<int>(row.at("key_index").asInt());
      record.keyValue = row.at("key_value").asInt() != 0;
      const auto realOp = rtl::opFromName(row.at("real_op").asString());
      const auto dummyOp = rtl::opFromName(row.at("dummy_op").asString());
      if (!realOp || !dummyOp) {
        throw support::Error{"key file module \"" + module.module +
                             "\": unknown operator mnemonic in record"};
      }
      record.realOp = *realOp;
      record.dummyOp = *dummyOp;
      module.records.push_back(record);
    }
    keyFile.modules.push_back(std::move(module));
  }
  return keyFile;
}

const ModuleKey& moduleKeyFor(const KeyFile& keyFile, const std::string& moduleName) {
  std::vector<std::string> names;
  for (const ModuleKey& module : keyFile.modules) {
    if (module.module == moduleName) return module;
    names.push_back(module.module);
  }
  throw support::Error{"key file has no entry for module \"" + moduleName +
                       "\" (it has: " + support::join(names, ", ") + ")"};
}

}  // namespace rtlock::service
