// Build identity: the version tag and capability list every provenance
// surface shares.
//
// One implementation feeds four consumers — `rtlock --version`, the
// `GET /healthz` endpoint, the `Server:` response header, and the
// `generator` field stamped into report documents — so a deployed binary can
// always be traced from any artifact it produced.  The engine tag
// additionally versions the parser/compiler pipeline for cache keying: a
// SessionCache key hashes it alongside the source text, so a binary whose
// front end changed can never serve artifacts compiled by an older one.
#pragma once

#include <string>
#include <vector>

namespace rtlock::service {

struct BuildInfo {
  std::string version;                   // semantic project version ("0.1.0")
  std::vector<std::string> simBackends;  // execution backends compiled in
};

/// The binary's build identity (stable for the process lifetime).
[[nodiscard]] const BuildInfo& buildInfo() noexcept;

/// One-line provenance stamp: "rtlock <version> (sim: a,b,c)".  This is the
/// `generator` value in report documents and the --version headline.
[[nodiscard]] const std::string& generatorTag() noexcept;

/// Parser/compiler pipeline tag mixed into every SessionCache content hash.
/// Bump the embedded revision whenever parse/verify/compile output for the
/// same source can change, so upgraded binaries rebuild rather than trusting
/// artifacts keyed by an older pipeline.
[[nodiscard]] const std::string& engineVersionTag() noexcept;

}  // namespace rtlock::service
