#include "service/http.hpp"

#include <optional>
#include <string_view>
#include <utility>

#include "service/build_info.hpp"
#include "support/cli.hpp"
#include "support/strings.hpp"

namespace rtlock::service {

namespace {

const std::string kEmpty;

}  // namespace

const std::string& HttpRequest::header(const std::string& name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return value;
  }
  return kEmpty;
}

const char* statusReason(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

std::string serializeResponse(const HttpResponse& response) {
  std::string text = "HTTP/1.1 " + std::to_string(response.status) + " " +
                     statusReason(response.status) + "\r\n";
  text += "Server: " + generatorTag() + "\r\n";
  text += "Content-Type: " + response.contentType + "\r\n";
  text += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  for (const auto& [name, value] : response.extraHeaders) {
    text += name + ": " + value + "\r\n";
  }
  text += "Connection: close\r\n\r\n";
  text += response.body;
  return text;
}

RequestParser::State RequestParser::fail(int status, std::string reason) {
  state_ = State::Error;
  errorStatus_ = status;
  errorReason_ = std::move(reason);
  buffer_.clear();
  return state_;
}

RequestParser::State RequestParser::feed(std::string_view chunk) {
  if (state_ != State::NeedMore) return state_;
  buffer_.append(chunk);

  if (!headDone_) {
    const std::size_t headEnd = buffer_.find("\r\n\r\n");
    if (headEnd == std::string::npos) {
      if (buffer_.size() > limits_.maxHeaderBytes) {
        return fail(431, "request head exceeds " + std::to_string(limits_.maxHeaderBytes) +
                             " bytes");
      }
      return state_;
    }
    if (headEnd > limits_.maxHeaderBytes) {
      return fail(431,
                  "request head exceeds " + std::to_string(limits_.maxHeaderBytes) + " bytes");
    }
    if (parseHead() == State::Error) return state_;
    headDone_ = true;
    buffer_.erase(0, headEnd + 4);
  }

  if (buffer_.size() >= bodyExpected_) {
    // Anything past Content-Length is pipelining, which this server does not
    // speak; the connection closes after one response anyway.
    request_.body = buffer_.substr(0, bodyExpected_);
    buffer_.clear();
    state_ = State::Complete;
  }
  return state_;
}

RequestParser::State RequestParser::parseHead() {
  const std::string_view head{buffer_.data(), buffer_.find("\r\n\r\n")};

  // Request line: METHOD SP TARGET SP VERSION, single spaces, no bare LF.
  const std::size_t lineEnd = head.find("\r\n");
  const std::string_view requestLine = head.substr(0, lineEnd);
  if (requestLine.find('\n') != std::string_view::npos) {
    return fail(400, "bare LF in request line");
  }
  const std::size_t firstSpace = requestLine.find(' ');
  const std::size_t lastSpace = requestLine.rfind(' ');
  if (firstSpace == std::string_view::npos || lastSpace == firstSpace || firstSpace == 0) {
    return fail(400, "malformed request line");
  }
  request_.method = std::string{requestLine.substr(0, firstSpace)};
  request_.target = std::string{requestLine.substr(firstSpace + 1, lastSpace - firstSpace - 1)};
  request_.version = std::string{requestLine.substr(lastSpace + 1)};
  if (request_.target.empty() || request_.target.find(' ') != std::string::npos ||
      request_.target[0] != '/') {
    return fail(400, "malformed request target");
  }
  if (request_.version != "HTTP/1.1" && request_.version != "HTTP/1.0") {
    return fail(400, "unsupported HTTP version '" + request_.version + "'");
  }

  // Header fields.  Lower-cased names; no obs-fold, no empty names, no
  // whitespace before the colon (request-smuggling hygiene).
  std::string_view rest = lineEnd == std::string_view::npos ? std::string_view{}
                                                            : head.substr(lineEnd + 2);
  while (!rest.empty()) {
    const std::size_t end = rest.find("\r\n");
    const std::string_view line = rest.substr(0, end);
    rest = end == std::string_view::npos ? std::string_view{} : rest.substr(end + 2);
    if (line.empty()) continue;
    if (line.find('\n') != std::string_view::npos) return fail(400, "bare LF in header field");
    if (line.front() == ' ' || line.front() == '\t') {
      return fail(400, "obsolete header folding");
    }
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return fail(400, "malformed header field");
    }
    const std::string_view name = line.substr(0, colon);
    if (name.find(' ') != std::string_view::npos || name.find('\t') != std::string_view::npos) {
      return fail(400, "whitespace in header name");
    }
    request_.headers.emplace_back(support::toLower(name),
                                  std::string{support::trim(line.substr(colon + 1))});
  }

  if (!request_.header("transfer-encoding").empty()) {
    return fail(501, "Transfer-Encoding is not supported");
  }
  bodyExpected_ = 0;
  bool sawContentLength = false;
  for (const auto& [name, value] : request_.headers) {
    if (name != "content-length") continue;
    // Strict full-token parse: "-1", "1e3", "10x" and 2^64 wraparound are
    // all hard 400s, never a silently wrong body size.
    const std::optional<std::uint64_t> length = support::parseU64(value);
    if (!length.has_value()) return fail(400, "malformed Content-Length '" + value + "'");
    if (sawContentLength && *length != bodyExpected_) {
      return fail(400, "conflicting Content-Length values");
    }
    if (*length > limits_.maxBodyBytes) {
      return fail(413, "body of " + value + " bytes exceeds the " +
                           std::to_string(limits_.maxBodyBytes) + "-byte limit");
    }
    bodyExpected_ = static_cast<std::size_t>(*length);
    sawContentLength = true;
  }
  return state_;
}

}  // namespace rtlock::service
