// Minimal HTTP/1.1 message layer for `rtlock serve`.
//
// Deliberately tiny: one request per connection (`Connection: close`),
// no chunked transfer (Transfer-Encoding -> 501), no keep-alive, no TLS.
// What it is instead is *strict* — the parser is a pure incremental state
// machine with hard limits on every dimension an untrusted peer controls
// (request-line length, header bytes, body bytes), a strict
// support::parseU64 Content-Length (no sign, no trailing junk, no
// wraparound), and a definite 4xx verdict for every malformed input.  It
// never throws on peer bytes and holds no socket: the server feeds it
// recv() chunks, tests feed it torn/hostile byte strings directly
// (tests/service/http_test.cpp, the ASan robustness corpus).
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace rtlock::service {

struct HttpRequest {
  std::string method;  // verbatim token (dispatch decides what is allowed)
  std::string target;  // origin-form, e.g. "/v1/lock"
  std::string version;                                     // "HTTP/1.1"
  std::vector<std::pair<std::string, std::string>> headers;  // names lower-cased
  std::string body;

  /// First value of `name` (lower-case), or "" when absent.
  [[nodiscard]] const std::string& header(const std::string& name) const;
};

struct HttpResponse {
  int status = 200;
  std::string contentType = "application/json";
  std::string body;
  std::vector<std::pair<std::string, std::string>> extraHeaders;
};

/// Reason phrase for the status codes the service emits.
[[nodiscard]] const char* statusReason(int status) noexcept;

/// Serializes a response (Connection: close, Content-Length, Server tag).
[[nodiscard]] std::string serializeResponse(const HttpResponse& response);

/// Incremental request parser.  Feed bytes as they arrive; the parser is in
/// exactly one of three states.  All limits violations and syntax errors
/// park it in Error with the HTTP status to answer with.
class RequestParser {
 public:
  struct Limits {
    std::size_t maxHeaderBytes = 16 * 1024;  // request line + headers
    std::size_t maxBodyBytes = 8 * 1024 * 1024;
  };

  enum class State { NeedMore, Complete, Error };

  RequestParser() = default;
  explicit RequestParser(Limits limits) : limits_(limits) {}

  /// Consumes one chunk (possibly empty, possibly torn mid-token) and
  /// returns the resulting state.  Feeding after Complete/Error is a no-op.
  State feed(std::string_view chunk);

  [[nodiscard]] State state() const noexcept { return state_; }

  /// The parsed request; meaningful only in Complete.
  [[nodiscard]] const HttpRequest& request() const noexcept { return request_; }

  /// In Error: the status to answer with (400 syntax / bad Content-Length,
  /// 413 body too large, 431 headers too large, 501 Transfer-Encoding).
  [[nodiscard]] int errorStatus() const noexcept { return errorStatus_; }
  [[nodiscard]] const std::string& errorReason() const noexcept { return errorReason_; }

 private:
  State fail(int status, std::string reason);
  State parseHead();

  Limits limits_;
  State state_ = State::NeedMore;
  std::string buffer_;
  bool headDone_ = false;
  std::size_t bodyExpected_ = 0;
  HttpRequest request_;
  int errorStatus_ = 400;
  std::string errorReason_;
};

}  // namespace rtlock::service
