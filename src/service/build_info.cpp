#include "service/build_info.hpp"

#ifndef RTLOCK_VERSION
#define RTLOCK_VERSION "0.0.0-dev"
#endif

namespace rtlock::service {

namespace {

// Bumped by hand when the parser/verifier/compiler pipeline changes what a
// compiled session contains for identical source text.
constexpr int kEnginePipelineRevision = 1;

}  // namespace

const BuildInfo& buildInfo() noexcept {
  static const BuildInfo info{RTLOCK_VERSION, {"interpreter", "compiled", "sliced"}};
  return info;
}

const std::string& generatorTag() noexcept {
  static const std::string tag = [] {
    std::string backends;
    for (const std::string& backend : buildInfo().simBackends) {
      if (!backends.empty()) backends += ',';
      backends += backend;
    }
    return "rtlock " + buildInfo().version + " (sim: " + backends + ")";
  }();
  return tag;
}

const std::string& engineVersionTag() noexcept {
  static const std::string tag =
      "rtlock-engine/" + std::to_string(kEnginePipelineRevision) + "/" + buildInfo().version;
  return tag;
}

}  // namespace rtlock::service
