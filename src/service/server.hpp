// `rtlock serve` — the lock/attack/eval service daemon.
//
// A deliberately small HTTP/1.1 server over POSIX sockets: one accept loop
// (poll with a short tick so shutdown flags are honored promptly) feeding a
// bounded TaskPool of connection workers.  Backpressure is fail-fast: when
// the worker queue is at capacity the accept thread answers 429 inline and
// closes — the server never buffers an unbounded connection backlog.
// Graceful drain: on requestStop() (or SIGINT/SIGTERM via the campaign
// shutdown flag) the listener stops accepting, in-flight requests finish,
// and run() returns 0.
//
// Per-connection hygiene: recv/send timeouts, MSG_NOSIGNAL (a peer that
// disconnects mid-response must not SIGPIPE the daemon), one request per
// connection, strict RequestParser limits.  All engine state lives in the
// owned SessionCache, shared across workers.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "service/dispatch.hpp"
#include "service/session.hpp"
#include "support/task_pool.hpp"

namespace rtlock::service {

struct ServeOptions {
  std::string host = "127.0.0.1";  // numeric IPv4 listen address
  int port = 0;                    // 0 = ephemeral (query with Server::port())
  int threads = 0;                 // connection workers (0 = hardware)
  std::size_t queueCapacity = 64;  // pending connections before 429
  double requestDeadlineMs = 0.0;  // per-request wall budget (0 = none)
  std::size_t cacheBytes = SessionCache::kDefaultByteBudget;
  std::size_t maxBodyBytes = 8 * 1024 * 1024;
  double socketTimeoutMs = 10'000.0;  // per-socket recv/send timeout
  std::uint64_t maxRequests = 0;      // accept N connections then drain (0 = forever)
};

class Server {
 public:
  /// Binds and listens immediately (so port() is valid before run()).
  /// Throws support::Error when the address is unusable.
  explicit Server(const ServeOptions& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound TCP port (resolves ephemeral port 0).
  [[nodiscard]] int port() const noexcept { return boundPort_; }

  /// Accept loop; blocks until requestStop(), the campaign shutdown flag
  /// (SIGINT/SIGTERM under ScopedSignalHandlers), or maxRequests accepted
  /// connections.  Drains in-flight requests before returning 0.
  int run();

  /// Thread-safe stop request; run() returns after its current poll tick.
  void requestStop() noexcept { stop_.store(true, std::memory_order_release); }

  [[nodiscard]] Dispatcher& dispatcher() noexcept { return dispatcher_; }
  [[nodiscard]] SessionCache& sessionCache() noexcept { return cache_; }

  /// Connections answered 429 because the worker queue was full.
  [[nodiscard]] std::uint64_t rejectedConnections() const noexcept {
    return rejected_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t acceptedConnections() const noexcept {
    return accepted_.load(std::memory_order_relaxed);
  }

 private:
  [[nodiscard]] bool stopRequested() const noexcept;
  void serveConnection(int fd) noexcept;
  void sendAll(int fd, const std::string& text) noexcept;

  ServeOptions options_;
  SessionCache cache_;
  Dispatcher dispatcher_;
  support::TaskPool pool_;
  int listenFd_ = -1;
  int boundPort_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_{0};
};

}  // namespace rtlock::service
