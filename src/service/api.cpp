#include "service/api.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <memory>
#include <utility>

#include "attack/pipeline.hpp"
#include "campaign/merge.hpp"
#include "core/algorithms.hpp"
#include "service/build_info.hpp"
#include "support/strings.hpp"
#include "support/task_pool.hpp"
#include "verilog/writer.hpp"

namespace rtlock::service {

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] double elapsedMs(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

void checkDeadline(const campaign::CellContext* deadline) {
  if (deadline != nullptr) deadline->checkDeadline();
}

/// Const counterpart of the CLI's selectModule: picks the module a request
/// operates on — `name` when given, otherwise the design's only module or
/// (requireKey) its only keyed module.  Throws support::Error listing the
/// candidates when the choice is ambiguous or impossible.
[[nodiscard]] const rtl::Module& selectSessionModule(const DesignSession& session,
                                                     const std::string& name, bool requireKey) {
  std::vector<std::string> names;
  names.reserve(session.moduleCount());
  for (std::size_t i = 0; i < session.moduleCount(); ++i) {
    names.push_back(session.module(i).name());
  }
  if (!name.empty()) {
    if (const rtl::Module* module = session.findModule(name)) return *module;
    throw support::Error{"no module named \"" + name +
                         "\" (design has: " + support::join(names, ", ") + ")"};
  }
  const rtl::Module* chosen = nullptr;
  std::size_t eligible = 0;
  for (std::size_t i = 0; i < session.moduleCount(); ++i) {
    const rtl::Module& module = session.module(i);
    if (requireKey && module.keyWidth() == 0) continue;
    ++eligible;
    if (chosen == nullptr) chosen = &module;
  }
  if (chosen == nullptr) {
    throw support::Error{
        requireKey
            ? "no module has a key input — is this netlist locked, and is the key port named "
              "correctly (see --key-port)?"
            : "design contains no modules"};
  }
  if (eligible > 1) {
    throw support::Error{"design has several candidate modules (" + support::join(names, ", ") +
                         ") — pick one with --module=NAME"};
  }
  return *chosen;
}

/// Metrics an eval cell journals, in payload order (also the report-row
/// order).
constexpr const char* kCellMetrics[] = {"mean_kpa_percent",   "min_kpa_percent",
                                        "max_kpa_percent",    "mean_key_bits",
                                        "mean_global_metric", "mean_restricted_metric"};

[[nodiscard]] support::JsonValue payloadFromResult(const attack::EvaluationResult& result) {
  support::JsonValue payload;
  payload.set("mean_kpa_percent", result.meanKpa);
  payload.set("min_kpa_percent", result.minKpa);
  payload.set("max_kpa_percent", result.maxKpa);
  payload.set("mean_key_bits", result.meanKeyBits);
  payload.set("mean_global_metric", result.meanGlobalMetric);
  payload.set("mean_restricted_metric", result.meanRestrictedMetric);
  return payload;
}

}  // namespace

LockResponse runLock(SessionCache& cache, const LockRequest& request,
                     const campaign::CellContext* deadline) {
  const SessionCache::FetchResult fetched = cache.fetch(request.source, request.session);
  checkDeadline(deadline);

  LockResponse response;
  response.designHash = fetched.session->contentHash();
  response.cacheHit = fetched.hit;
  response.key.algorithm = service::algorithmName(request.algorithm);
  response.key.seed = request.seed;
  response.key.budget = request.budget.describe();
  response.key.input = request.inputLabel;

  // Locking mutates, sessions are immutable: lock a private clone of the
  // cached design (the clone replaces the per-invocation re-parse).
  rtl::Design design = fetched.session->cloneDesign();
  const support::Rng root{request.seed};
  int lockedModules = 0;
  for (std::size_t i = 0; i < design.moduleCount(); ++i) {
    checkDeadline(deadline);
    rtl::Module& module = design.module(i);
    lock::LockEngine engine{module, lock::PairTable::fixed()};
    if (engine.initialLockableOps() == 0) {
      response.notes.push_back("module " + module.name() +
                               " has no lockable operations — skipped");
      continue;
    }
    if (module.keyWidth() != 0) {
      // Relocking would emit a key file whose pre-existing bits are unknown
      // to this invocation — an unusable (silently corrupting) key string.
      // The attack relocks internally; the lock entry point refuses.
      throw support::Error{"module " + module.name() + " already carries " +
                           std::to_string(module.keyWidth()) +
                           " key bits — locking on top would make the emitted key file "
                           "incomplete; lock the original (unlocked) netlist instead"};
    }
    support::Rng moduleRng = root.substream(i);
    const int keyBudget = request.budget.resolve(engine.initialLockableOps());
    const lock::AlgorithmReport report = lock::lockWithAlgorithm(
        engine, request.algorithm, keyBudget, moduleRng, lock::ReportDetail::Summary);

    ModuleKey moduleKey;
    moduleKey.module = module.name();
    moduleKey.keyWidth = module.keyWidth();
    moduleKey.records = engine.records();
    moduleKey.bitsUsed = report.bitsUsed;
    moduleKey.globalMetric = report.finalGlobalMetric;
    moduleKey.restrictedMetric = report.finalRestrictedMetric;
    moduleKey.keyBits.assign(static_cast<std::size_t>(module.keyWidth()), '0');
    for (const lock::LockRecord& record : moduleKey.records) {
      moduleKey.keyBits[static_cast<std::size_t>(record.keyIndex)] = record.keyValue ? '1' : '0';
    }
    response.key.modules.push_back(std::move(moduleKey));
    ++lockedModules;

    LockModuleSummary summary;
    summary.module = module.name();
    summary.lockableOps = engine.initialLockableOps();
    summary.bitsUsed = report.bitsUsed;
    summary.keyWidth = module.keyWidth();
    summary.globalMetric = report.finalGlobalMetric;
    summary.restrictedMetric = report.finalRestrictedMetric;
    response.modules.push_back(std::move(summary));
  }
  if (lockedModules == 0) {
    throw support::Error{"nothing to lock: no module in " + request.inputLabel +
                         " has lockable operations"};
  }

  verilog::WriterOptions writerOptions;
  writerOptions.emitHeaderComment = request.emitBanner;
  response.lockedVerilog = verilog::writeDesign(design, writerOptions);
  return response;
}

AttackResponse runAttack(SessionCache& cache, const AttackRequest& request,
                         const campaign::CellContext* deadline) {
  if (request.repeats < 1 || request.repeats > 1'000'000) {
    throw BadRequest{"repeats must be in [1, 1000000]"};
  }
  if (request.rounds < 1 || request.rounds > 1'000'000'000) {
    throw BadRequest{"rounds must be in [1, 1000000000]"};
  }
  if (!request.relockBudget.isFraction) {
    throw BadRequest{"relock-budget takes a fraction of the target's operations (e.g. 75%)"};
  }
  if (request.folds < 2 || request.folds > 1000) throw BadRequest{"folds must be in [2, 1000]"};

  attack::SnapshotConfig config;
  config.relockRounds = request.rounds;
  config.relockBudgetFraction = request.relockBudget.fraction;
  config.automl.folds = request.folds;
  config.locality.extendedFeatures = request.extendedFeatures;

  const SessionCache::FetchResult fetched = cache.fetch(request.source, request.session);
  checkDeadline(deadline);
  const rtl::Module& target =
      selectSessionModule(*fetched.session, request.moduleName, /*requireKey=*/true);

  AttackResponse response;
  response.designHash = fetched.session->contentHash();
  response.cacheHit = fetched.hit;
  response.moduleName = target.name();

  // Ground truth: the lock-time records when a key file is given, else
  // unscored pseudo-records derived from the netlist's own key muxes.
  std::vector<lock::LockRecord> truth;
  if (request.key.has_value()) {
    const ModuleKey& moduleKey = moduleKeyFor(*request.key, target.name());
    if (moduleKey.keyWidth != target.keyWidth()) {
      throw support::Error{"key file was made for a " + std::to_string(moduleKey.keyWidth) +
                           "-bit key but " + target.name() + " has " +
                           std::to_string(target.keyWidth()) + " key bits"};
    }
    truth = moduleKey.records;
    response.scored = true;
  } else {
    for (const attack::Locality& locality : attack::extractLocalities(target, config.locality)) {
      lock::LockRecord record;
      record.keyIndex = locality.keyIndex;
      truth.push_back(record);
    }
    response.notes.emplace_back("no key file — KPA cannot be scored, reporting raw predictions");
  }
  if (truth.empty()) throw support::Error{"module " + target.name() + " has no key muxes"};

  // Repeats shard across the pool; each owns a clone and a substream.
  const support::Rng root{request.seed};
  support::TaskPool pool{
      support::threadsForTasks(request.threads, static_cast<std::size_t>(request.repeats))};
  const auto started = Clock::now();
  response.repeats = pool.map(static_cast<std::size_t>(request.repeats), [&](std::size_t index) {
    checkDeadline(deadline);
    const auto repeatStart = Clock::now();
    rtl::Module clone = target.clone();
    support::Rng repeatRng = root.substream(index);
    AttackRepeat outcome;
    outcome.result =
        attack::snapshotAttack(clone, truth, lock::PairTable::fixed(), config, repeatRng);
    outcome.wallMs = elapsedMs(repeatStart);
    return outcome;
  });
  response.totalWallMs = elapsedMs(started);

  response.setup = "snapshot rounds=" + std::to_string(config.relockRounds) +
                   " budget=" + request.relockBudget.describe() +
                   " folds=" + std::to_string(config.automl.folds) +
                   (config.locality.extendedFeatures ? " features=extended" : "");
  const bool noWall = !request.includeWall;
  double kpaSum = 0.0;
  double kpaMin = 100.0;
  double kpaMax = 0.0;
  double cvSum = 0.0;
  double rowsSum = 0.0;
  for (std::size_t r = 0; r < response.repeats.size(); ++r) {
    const attack::SnapshotResult& result = response.repeats[r].result;
    const double wall = noWall ? 0.0 : response.repeats[r].wallMs;
    if (response.scored) {
      response.rows.push_back({target.name(), response.setup + " repeat=" + std::to_string(r),
                               "kpa_percent", result.kpa, wall});
      kpaSum += result.kpa;
      kpaMin = std::min(kpaMin, result.kpa);
      kpaMax = std::max(kpaMax, result.kpa);
    }
    cvSum += result.cvAccuracy;
    rowsSum += static_cast<double>(result.trainingRows);
  }
  const auto count = static_cast<double>(response.repeats.size());
  if (response.scored) {
    response.rows.push_back({target.name(), response.setup, "mean_kpa_percent", kpaSum / count,
                             noWall ? 0.0 : response.totalWallMs});
    if (request.repeats > 1) {
      response.rows.push_back({target.name(), response.setup, "min_kpa_percent", kpaMin, 0.0});
      response.rows.push_back({target.name(), response.setup, "max_kpa_percent", kpaMax, 0.0});
    }
  }
  response.rows.push_back({target.name(), response.setup, "key_bits",
                           static_cast<double>(response.repeats.front().result.keyBits), 0.0});
  response.rows.push_back({target.name(), response.setup, "mean_training_rows", rowsSum / count, 0.0});
  response.rows.push_back(
      {target.name(), response.setup, "mean_cv_accuracy_percent", 100.0 * cvSum / count, 0.0});
  return response;
}

namespace {

/// The manifest-mode body of runEval: create-or-validate the shared
/// manifest, work it through runWorker, and — once the whole fleet is done —
/// merge every per-worker journal into the full campaign view so *any*
/// finishing worker can emit the complete report.
void runEvalOnManifest(const EvalRequest& request, const campaign::CampaignIdentity& identity,
                       const campaign::CellFn& compute, EvalResponse& response) {
  campaign::Manifest manifest;
  manifest.identity = identity;
  manifest.setup = response.setup;
  manifest.cells = response.cells;

  std::error_code ec;
  if (!std::filesystem::exists(request.manifestPath, ec)) {
    // Atomic create; racing creators of the same grid serialize identical
    // bytes, and the read-back below validates whichever rename won.
    campaign::writeManifest(request.manifestPath, manifest);
  }
  const campaign::Manifest onDisk = campaign::readManifest(request.manifestPath);
  if (onDisk.identity.designHash != identity.designHash ||
      onDisk.identity.configHash != identity.configHash) {
    throw support::Error{"manifest " + request.manifestPath +
                         " belongs to a different campaign (design_hash/config_hash mismatch) — "
                         "delete it or pass a fresh --manifest path"};
  }
  // The config hash does not cover the grid axes (--algos/--seeds), so the
  // cell lists must be compared outright: every worker of one manifest has
  // to request the identical grid.
  bool sameCells = onDisk.cells.size() == response.cells.size();
  for (std::size_t i = 0; sameCells && i < onDisk.cells.size(); ++i) {
    sameCells = onDisk.cells[i].id.key() == response.cells[i].id.key();
  }
  if (!sameCells) {
    throw support::Error{"manifest " + request.manifestPath + " lists " +
                         std::to_string(onDisk.cells.size()) + " cells but this request builds " +
                         std::to_string(response.cells.size()) +
                         " — all workers of one manifest must pass the identical --algos/--seeds "
                         "grid"};
  }

  const std::string workerId =
      request.workerId.empty() ? campaign::defaultWorkerId() : request.workerId;
  std::string journalPath = request.journalPath;
  if (journalPath.empty()) {
    const std::string dir = campaign::journalsDirFor(request.manifestPath);
    std::filesystem::create_directories(dir, ec);
    if (ec && !std::filesystem::is_directory(dir)) {
      throw support::Error{"cannot create journal directory " + dir + ": " + ec.message()};
    }
    journalPath = dir + "/" + workerId + ".jsonl";
  }
  campaign::Journal journal{journalPath, identity};
  response.journaled = true;
  response.journalReloadedRows = journal.reloadedRows();
  response.journalTornTail = journal.recoveredTornTail();

  campaign::WorkerOptions workerOptions;
  workerOptions.campaign = request.campaign;
  workerOptions.ownerId = workerId;
  workerOptions.leaseMs = request.leaseMs;
  workerOptions.pollMs = request.pollMs;
  workerOptions.maxWaitMs = request.maxWaitMs;
  response.distributed = true;
  response.worker = campaign::runWorker(manifest, request.manifestPath, journal, workerOptions,
                                        compute);

  response.campaign.outcomes.resize(response.cells.size());
  response.campaign.interrupted = response.worker.interrupted;
  response.campaign.journaledCells = response.worker.journaledCells;
  response.campaign.wallMs = response.worker.wallMs;
  if (!response.worker.allDone) {
    // The fleet has not converged (drain or no-progress timeout): report
    // only this worker's counters, no rows.
    response.campaign.okCells = response.worker.okCells;
    response.campaign.errorCells = response.worker.errorCells;
    response.campaign.timeoutCells = response.worker.timeoutCells;
    response.campaign.skippedCells =
        response.cells.size() - response.worker.computedCells - response.worker.journaledCells;
    return;
  }

  std::vector<std::string> journals =
      campaign::listJournals(campaign::journalsDirFor(request.manifestPath));
  if (std::find(journals.begin(), journals.end(), journalPath) == journals.end()) {
    journals.push_back(journalPath);  // explicit --journal outside the journals dir
    std::sort(journals.begin(), journals.end());
  }
  const campaign::MergeResult merged = campaign::mergeJournals(journals);
  response.mergedJournals = journals;
  for (std::size_t i = 0; i < response.cells.size(); ++i) {
    const auto it = merged.rows.find(response.cells[i].id.key());
    if (it == merged.rows.end()) {
      throw support::Error{"cell " + response.cells[i].label +
                           " has a done marker but no journal row — was a worker journal deleted "
                           "from " +
                           campaign::journalsDirFor(request.manifestPath) + "?"};
    }
    response.campaign.outcomes[i] = campaign::outcomeFromRow(it->second);
    switch (response.campaign.outcomes[i].status) {
      case campaign::CellStatus::Ok:
        ++response.campaign.okCells;
        break;
      case campaign::CellStatus::Timeout:
        ++response.campaign.timeoutCells;
        break;
      default:
        ++response.campaign.errorCells;
        break;
    }
  }
}

}  // namespace

std::vector<ReportRow> evalReportRows(
    const std::string& moduleName, const std::string& setup,
    const std::vector<campaign::Cell>& cells,
    const std::function<const campaign::CellOutcome*(std::size_t)>& outcomeAt, bool includeWall) {
  std::vector<ReportRow> rows;
  std::size_t start = 0;
  while (start < cells.size()) {
    const std::string& algoName = cells[start].id.algorithm;
    std::size_t end = start;
    while (end < cells.size() && cells[end].id.algorithm == algoName) ++end;
    double kpaSum = 0.0;
    std::size_t okSeeds = 0;
    for (std::size_t i = start; i < end; ++i) {
      const campaign::CellOutcome* outcome = outcomeAt(i);
      if (outcome == nullptr || outcome->status != campaign::CellStatus::Ok) continue;
      const std::string cellConfig = cells[i].label + " / " + setup;
      for (const char* metric : kCellMetrics) {
        const bool wallRow = std::string_view{metric} == "mean_kpa_percent";
        rows.push_back({moduleName, cellConfig, metric, outcome->payload.at(metric).asDouble(),
                        wallRow && includeWall ? outcome->wallMs : 0.0});
      }
      kpaSum += outcome->payload.at("mean_kpa_percent").asDouble();
      ++okSeeds;
    }
    if (okSeeds > 0) {
      rows.push_back({moduleName, algoName + " / all seeds / " + setup, "mean_kpa_percent",
                      kpaSum / static_cast<double>(okSeeds), 0.0});
    }
    start = end;
  }
  return rows;
}

EvalResponse runEval(SessionCache& cache, const EvalRequest& request) {
  if (request.algorithms.empty()) throw BadRequest{"no algorithms listed"};
  if (request.seeds.empty()) throw BadRequest{"no seeds listed"};
  if (request.samples < 1 || request.samples > 1'000'000) {
    throw BadRequest{"samples must be in [1, 1000000]"};
  }
  if (!request.budget.isFraction) {
    throw BadRequest{"budget takes a fraction of the module's operations here (e.g. 75%)"};
  }
  if (request.rounds < 0 || request.rounds > 1'000'000'000) {
    throw BadRequest{"rounds must be at most 1000000000"};
  }
  if (request.folds < 2 || request.folds > 1000) throw BadRequest{"folds must be in [2, 1000]"};

  attack::EvaluationConfig config;
  config.testLocks = request.samples;
  config.keyBudgetFraction = request.budget.fraction;
  config.snapshot.relockRounds = request.rounds;
  config.snapshot.relockBudgetFraction = request.budget.fraction;
  config.snapshot.automl.folds = request.folds;
  config.snapshot.locality.extendedFeatures = request.extendedFeatures;
  config.verifyFunctional = request.verifyFunctional;
  config.simBackend = request.simBackend;
  config.threads = 1;  // grid cells are the outer parallelism level

  const SessionCache::FetchResult fetched = cache.fetch(request.source, request.session);
  const rtl::Module& original =
      selectSessionModule(*fetched.session, request.moduleName, /*requireKey=*/false);
  {
    rtl::Module probe = original.clone();
    const lock::LockEngine probeEngine{probe, lock::PairTable::fixed()};
    if (probeEngine.initialLockableOps() == 0) {
      throw support::Error{"module " + original.name() + " has no lockable operations"};
    }
  }

  EvalResponse response;
  response.designHash = fetched.session->contentHash();
  response.cacheHit = fetched.hit;
  response.moduleName = original.name();

  // Row identity.  The design hash covers everything that shapes the parsed
  // module (source text, selected module, key port); the config hash covers
  // every knob that changes a cell's numbers.  threads is deliberately
  // absent from both: results are thread-invariant by construction.  So are
  // simBackend (both backends are bit-identical, proved by
  // HarnessBackendTest) and verifyFunctional (an independent fixed-seed
  // check that perturbs no payload byte — it can only fail a cell).  The
  // journal hash keeps the pre-service formula so existing journals resume.
  response.setup = "samples=" + std::to_string(config.testLocks) +
                   " rounds=" + std::to_string(config.snapshot.relockRounds) +
                   " budget=" + request.budget.describe();
  response.configText = response.setup + " folds=" + std::to_string(config.snapshot.automl.folds) +
                        " extended-features=" +
                        (config.snapshot.locality.extendedFeatures ? "1" : "0");
  campaign::CampaignIdentity identity;
  identity.designHash = support::fnv1a64Hex(request.source + '\0' + original.name() + '\0' +
                                            request.session.keyPortName);
  identity.configHash = support::fnv1a64Hex(response.configText);
  identity.design = original.name();
  identity.config = response.configText;

  std::unique_ptr<campaign::Journal> journalHolder;
  if (!request.journalPath.empty() && request.manifestPath.empty()) {
    journalHolder = std::make_unique<campaign::Journal>(request.journalPath, identity);
    response.journaled = true;
    response.journalReloadedRows = journalHolder->reloadedRows();
    response.journalTornTail = journalHolder->recoveredTornTail();
  }
  campaign::Journal* journal = journalHolder.get();

  response.cells.reserve(request.algorithms.size() * request.seeds.size());
  for (std::size_t a = 0; a < request.algorithms.size(); ++a) {
    const std::string algoName = service::algorithmName(request.algorithms[a]);
    for (const std::uint64_t seed : request.seeds) {
      campaign::Cell cell;
      cell.id = {identity.designHash, algoName, seed, identity.configHash};
      cell.label = algoName + " / seed " + std::to_string(seed);
      response.cells.push_back(std::move(cell));
    }
  }

  // The cell body: pure in the cell identity (algorithm index recovered from
  // the grid position, rng derived from seed substream), so resumed and
  // re-ordered runs journal byte-identical payloads.
  const std::size_t seedCount = request.seeds.size();
  const campaign::CellFn compute = [&](const campaign::Cell& cell,
                                       const campaign::CellContext& context) {
    const std::size_t algoIndex = context.index / seedCount;
    support::Rng cellRng = support::Rng{cell.id.seed}.substream(algoIndex);
    const attack::EvaluationResult result =
        attack::evaluateBenchmark(original, original.name(), request.algorithms[algoIndex],
                                  lock::PairTable::fixed(), config, cellRng);
    if (result.functionalFailures > 0) {
      // verifyFunctional found locked samples that misbehave under their
      // correct key: a locking bug, not a statistics question.  Surface it
      // through the structured error-cell path instead of reporting KPA
      // numbers for broken hardware.
      throw support::Error{std::to_string(result.functionalFailures) + " of " +
                           std::to_string(result.samples) +
                           " locked sample(s) misbehave under the correct key"};
    }
    return payloadFromResult(result);
  };

  bool reportReady = false;
  if (request.manifestPath.empty()) {
    response.campaign = campaign::runCampaign(response.cells, request.campaign, journal, compute);
    reportReady = !response.campaign.interrupted;
  } else {
    runEvalOnManifest(request, identity, compute, response);
    reportReady = response.worker.allDone && !response.campaign.interrupted;
  }

  for (std::size_t i = 0; i < response.cells.size(); ++i) {
    const campaign::CellOutcome& outcome = response.campaign.outcomes[i];
    if (outcome.status == campaign::CellStatus::Error ||
        outcome.status == campaign::CellStatus::Timeout) {
      response.cellErrors.push_back(
          "cell " + response.cells[i].label + ": " + outcome.errorCode + " after " +
          std::to_string(outcome.attempts) + " attempt(s)" +
          (outcome.fromJournal ? " [journaled]" : "") + ": " + outcome.errorWhat);
    }
  }

  // Report rows come only from ok cells; the per-algorithm aggregate
  // averages the seeds that completed.  A fully successful campaign
  // therefore emits rows byte-identical to the pre-campaign serial loop —
  // and a merged distributed campaign goes through the same builder, so its
  // report cannot drift from the single-process bytes either.
  if (reportReady) {
    response.rows = evalReportRows(
        response.moduleName, response.setup, response.cells,
        [&](std::size_t i) { return &response.campaign.outcomes[i]; }, request.includeWall);
  }

  if (reportReady && journal != nullptr && request.checkCells > 0) {
    const campaign::CheckResult checked =
        campaign::checkJournal(response.cells, *journal, request.checkCells, compute);
    response.checkedCells = checked.checkedCells;
    response.checkMismatches = checked.mismatches;
  }
  return response;
}

support::JsonValue attackReportDocument(const AttackRequest& request,
                                        const AttackResponse& response,
                                        const std::string& inputLabel) {
  support::JsonValue document;
  document.set("schema", "rtlock-attack-report/v1");
  document.set("generator", generatorTag());
  document.set("input", inputLabel);
  document.set("module", response.moduleName);
  document.set("seed", request.seed);
  document.set("scored", response.scored);
  support::JsonArray attacks;
  for (std::size_t r = 0; r < response.repeats.size(); ++r) {
    const attack::SnapshotResult& result = response.repeats[r].result;
    support::JsonValue entry;
    entry.set("repeat", static_cast<std::int64_t>(r));
    entry.set("model", result.modelName);
    entry.set("cv_accuracy", result.cvAccuracy);
    std::string predictions;
    predictions.reserve(result.predictions.size());
    for (const int bit : result.predictions) predictions.push_back(bit != 0 ? '1' : '0');
    entry.set("predictions", predictions);
    if (response.scored) entry.set("kpa_percent", result.kpa);
    attacks.push_back(std::move(entry));
  }
  document.set("attacks", support::JsonValue{std::move(attacks)});
  document.set("rows", rowsToJson(response.rows));
  return document;
}

support::JsonValue evalReportDocument(const EvalResponse& response,
                                      const std::string& inputLabel) {
  support::JsonValue document;
  document.set("schema", "rtlock-eval-report/v1");
  document.set("generator", generatorTag());
  document.set("input", inputLabel);
  document.set("module", response.moduleName);
  document.set("rows", rowsToJson(response.rows));
  return document;
}

support::JsonValue lockResponseDocument(const LockResponse& response) {
  support::JsonValue document;
  document.set("schema", "rtlock-lock-response/v1");
  document.set("generator", generatorTag());
  document.set("design_hash", response.designHash);
  support::JsonArray modules;
  modules.reserve(response.modules.size());
  for (const LockModuleSummary& summary : response.modules) {
    support::JsonValue entry;
    entry.set("module", summary.module);
    entry.set("lockable_ops", summary.lockableOps);
    entry.set("bits_used", summary.bitsUsed);
    entry.set("key_width", summary.keyWidth);
    entry.set("global_metric", summary.globalMetric);
    entry.set("restricted_metric", summary.restrictedMetric);
    modules.push_back(std::move(entry));
  }
  document.set("modules", support::JsonValue{std::move(modules)});
  document.set("key", keyFileToJson(response.key));
  document.set("locked_verilog", response.lockedVerilog);
  support::JsonArray notes;
  for (const std::string& note : response.notes) notes.push_back(support::JsonValue{note});
  document.set("notes", support::JsonValue{std::move(notes)});
  return document;
}

}  // namespace rtlock::service
