// Reusable engine sessions: parse/verify/compile once, serve many.
//
// Every rtlock request is a pure function of (design content, seed, config),
// yet each CLI invocation used to re-parse, re-verify and re-compile its
// input from scratch.  A DesignSession captures that per-design setup work
// as an immutable artifact — the parsed + verified design, both compiled
// sim::Programs (scalar oracle and bit-sliced) per module, and the static
// lint results — keyed by a content hash over the source text, the parser
// options that shape the IR, and the engine pipeline version tag (so a
// binary upgrade can never serve artifacts compiled by an older front end).
//
// SessionCache is the thread-safe LRU in front of session construction:
//
//  * fetch() either returns a pinned shared_ptr to a cached session (hit) or
//    builds one (miss).  Concurrent fetches of the same content share one
//    build — late arrivals wait on the first builder's future instead of
//    duplicating parse/compile work.
//  * entries are evicted least-recently-used once the byte budget is
//    exceeded; shared_ptr pinning means an evicted session stays alive for
//    every request still holding it, eviction only drops the cache's own
//    reference.
//  * hit/miss/eviction counters feed `GET /v1/stats` and the cache-sanity
//    assertions in CI.
//
// Determinism contract: a session is a pure function of (source, options);
// request results computed from a cached session are byte-identical to ones
// computed from a freshly built session (tests/service/api_test.cpp holds
// warm-vs-cold and eviction-then-refetch responses to byte equality).
#pragma once

#include <cstddef>
#include <cstdint>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/lint.hpp"
#include "rtl/module.hpp"
#include "sim/program.hpp"
#include "verilog/parser.hpp"

namespace rtlock::service {

/// Options that shape the parsed IR and therefore the content hash.
struct SessionOptions {
  std::string keyPortName = "lock_key";
};

/// Per-module compiled artifacts (parallel to DesignSession::design modules).
struct ModuleArtifacts {
  sim::Program scalar;         // offset-encoded tape for sim::CompiledSim
  sim::Program sliced;         // slot-encoded tape for sim::SlicedSim
  analysis::LintReport lint;   // static security lint (empty when unlocked)
};

/// Immutable parse/verify/compile artifact for one design text.  Sessions
/// are shared across threads; nothing here is mutated after construction.
class DesignSession {
 public:
  /// Builds a session: parse (verification is always-on in parseDesign),
  /// compile both backends for every module, lint.  Throws support::Error on
  /// malformed input, exactly like the direct parse path.
  DesignSession(std::string hash, std::string_view source, const SessionOptions& options);

  DesignSession(const DesignSession&) = delete;
  DesignSession& operator=(const DesignSession&) = delete;

  [[nodiscard]] const std::string& contentHash() const noexcept { return hash_; }
  [[nodiscard]] const SessionOptions& options() const noexcept { return options_; }
  [[nodiscard]] const rtl::Design& design() const noexcept { return design_; }
  [[nodiscard]] std::size_t moduleCount() const noexcept { return design_.moduleCount(); }
  [[nodiscard]] const rtl::Module& module(std::size_t index) const {
    return design_.module(index);
  }
  [[nodiscard]] const ModuleArtifacts& artifacts(std::size_t index) const {
    return artifacts_.at(index);
  }
  /// Module lookup by name; nullptr when absent.
  [[nodiscard]] const rtl::Module* findModule(std::string_view name) const noexcept;

  /// Clones every module into a fresh mutable Design (module order and top
  /// selection preserved) — the unit of work for requests that lock.
  [[nodiscard]] rtl::Design cloneDesign() const;

  /// Rough retained size in bytes (source + IR estimate + compiled tapes);
  /// the SessionCache budget accounting unit.  An estimate, not an audit —
  /// stable for a given session, never zero.
  [[nodiscard]] std::size_t approxBytes() const noexcept { return approxBytes_; }

 private:
  std::string hash_;
  SessionOptions options_;
  std::size_t sourceBytes_ = 0;
  rtl::Design design_;
  std::vector<ModuleArtifacts> artifacts_;
  std::size_t approxBytes_ = 0;
};

using SessionPtr = std::shared_ptr<const DesignSession>;

/// Thread-safe LRU cache of DesignSessions with a byte budget.
class SessionCache {
 public:
  static constexpr std::size_t kDefaultByteBudget = 256ull * 1024 * 1024;

  explicit SessionCache(std::size_t byteBudget = kDefaultByteBudget);

  SessionCache(const SessionCache&) = delete;
  SessionCache& operator=(const SessionCache&) = delete;

  /// Content identity of (source, options) under the current engine version
  /// tag: fnv1a64Hex over source text, key-port option and
  /// build_info::engineVersionTag(), NUL-separated.
  [[nodiscard]] static std::string contentHash(std::string_view source,
                                               const SessionOptions& options);

  struct FetchResult {
    SessionPtr session;
    bool hit = false;  // served from cache without building
  };

  /// Returns the session for (source, options), building it on miss.
  /// Concurrent misses for the same hash share a single build; a build
  /// failure (parse error) propagates to every waiter and caches nothing.
  [[nodiscard]] FetchResult fetch(std::string_view source, const SessionOptions& options);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;    // cached sessions (in-flight builds excluded)
    std::size_t bytes = 0;      // sum of cached approxBytes
    std::size_t byteBudget = 0;
  };
  [[nodiscard]] Stats stats() const;

  /// Drops every cached entry (pinned sessions stay alive with their
  /// holders).  Counts the dropped entries as evictions.
  void clear();

 private:
  struct Entry {
    std::string hash;
    std::shared_future<SessionPtr> session;  // ready, or being built
    std::size_t bytes = 0;                   // 0 until the build finishes
    bool building = true;
  };

  /// Evicts LRU entries (never in-flight builds, never `keepHash`) until the
  /// budget holds.  Caller holds the lock.
  void enforceBudgetLocked(const std::string& keepHash);

  mutable std::mutex mutex_;
  std::list<Entry> lru_;  // front = most recently used
  std::map<std::string, std::list<Entry>::iterator, std::less<>> index_;
  std::size_t byteBudget_;
  std::size_t bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace rtlock::service
