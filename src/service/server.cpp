#include "service/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "campaign/runner.hpp"
#include "service/http.hpp"
#include "support/diagnostics.hpp"
#include "support/json.hpp"

namespace rtlock::service {

namespace {

[[nodiscard]] std::string errnoText() { return std::strerror(errno); }

void setSocketTimeout(int fd, double timeoutMs) {
  if (timeoutMs <= 0.0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeoutMs / 1000.0);
  tv.tv_usec = static_cast<suseconds_t>((timeoutMs - static_cast<double>(tv.tv_sec) * 1000.0) *
                                        1000.0);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

[[nodiscard]] std::string jsonError(int status, const std::string& message) {
  support::JsonValue document;
  document.set("error", message);
  document.set("status", status);
  HttpResponse response;
  response.status = status;
  response.body = document.dump();
  return serializeResponse(response);
}

}  // namespace

Server::Server(const ServeOptions& options)
    : options_(options),
      cache_(options.cacheBytes),
      dispatcher_(cache_, Dispatcher::Options{options.requestDeadlineMs, 1}),
      pool_(options.threads, options.queueCapacity) {
  listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listenFd_ < 0) throw support::Error{"socket(): " + errnoText()};
  const int one = 1;
  ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &address.sin_addr) != 1) {
    ::close(listenFd_);
    listenFd_ = -1;
    throw support::Error{"unusable listen address '" + options_.host +
                         "' (numeric IPv4 expected, e.g. 127.0.0.1)"};
  }
  if (::bind(listenFd_, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) != 0) {
    const std::string what = errnoText();
    ::close(listenFd_);
    listenFd_ = -1;
    throw support::Error{"cannot bind " + options_.host + ":" + std::to_string(options_.port) +
                         ": " + what};
  }
  if (::listen(listenFd_, 128) != 0) {
    const std::string what = errnoText();
    ::close(listenFd_);
    listenFd_ = -1;
    throw support::Error{"listen(): " + what};
  }
  sockaddr_in bound{};
  socklen_t boundLen = sizeof(bound);
  if (::getsockname(listenFd_, reinterpret_cast<sockaddr*>(&bound), &boundLen) == 0) {
    boundPort_ = static_cast<int>(ntohs(bound.sin_port));
  }
}

Server::~Server() {
  if (listenFd_ >= 0) ::close(listenFd_);
}

bool Server::stopRequested() const noexcept {
  return stop_.load(std::memory_order_acquire) || campaign::shutdownRequested();
}

int Server::run() {
  while (!stopRequested()) {
    if (options_.maxRequests != 0 &&
        accepted_.load(std::memory_order_relaxed) >= options_.maxRequests) {
      break;
    }
    pollfd entry{listenFd_, POLLIN, 0};
    // Short tick: the poll timeout bounds how long a SIGINT waits before
    // the drain starts.
    const int ready = ::poll(&entry, 1, 200);
    if (ready <= 0) continue;  // timeout or EINTR: re-check the stop flags
    const int fd = ::accept(listenFd_, nullptr, nullptr);
    if (fd < 0) continue;
    setSocketTimeout(fd, options_.socketTimeoutMs);
    accepted_.fetch_add(1, std::memory_order_relaxed);
    const bool queued = pool_.trySubmit([this, fd] { serveConnection(fd); });
    if (!queued) {
      // Backpressure: shed the connection from the accept thread instead of
      // buffering unboundedly.  429 tells well-behaved clients to retry.
      rejected_.fetch_add(1, std::memory_order_relaxed);
      sendAll(fd, jsonError(429, "request queue is full, retry later"));
      ::close(fd);
    }
  }
  // Graceful drain: stop accepting, finish every queued/in-flight request.
  pool_.wait();
  return 0;
}

void Server::serveConnection(int fd) noexcept {
  try {
    RequestParser::Limits limits;
    limits.maxBodyBytes = options_.maxBodyBytes;
    RequestParser parser{limits};
    char buffer[16 * 1024];
    for (;;) {
      const ssize_t got = ::recv(fd, buffer, sizeof(buffer), 0);
      if (got <= 0) {
        // Early disconnect or socket timeout before a complete request:
        // nothing to answer, close quietly (never a crash).
        ::close(fd);
        return;
      }
      const RequestParser::State state =
          parser.feed(std::string_view{buffer, static_cast<std::size_t>(got)});
      if (state == RequestParser::State::NeedMore) continue;
      if (state == RequestParser::State::Error) {
        sendAll(fd, jsonError(parser.errorStatus(), parser.errorReason()));
        ::close(fd);
        return;
      }
      break;
    }
    const HttpResponse response = dispatcher_.handle(parser.request());
    sendAll(fd, serializeResponse(response));
    ::close(fd);
  } catch (...) {
    // The dispatcher never throws; this guards the message plumbing itself
    // (bad_alloc on a huge body, ...).  The worker must survive.
    ::close(fd);
  }
}

void Server::sendAll(int fd, const std::string& text) noexcept {
  std::size_t sent = 0;
  while (sent < text.size()) {
    // MSG_NOSIGNAL: a peer that already closed must yield EPIPE, not kill
    // the daemon with SIGPIPE.
    const ssize_t wrote = ::send(fd, text.data() + sent, text.size() - sent, MSG_NOSIGNAL);
    if (wrote <= 0) return;
    sent += static_cast<std::size_t>(wrote);
  }
}

}  // namespace rtlock::service
