// Request/response vocabulary shared by the CLI subcommands and the serve
// front end.
//
// Everything here used to be CLI-private plumbing (src/cli/common.hpp); the
// service layer promotes it to the library so `rtlock lock` and
// `POST /v1/lock` validate budgets, spell algorithms and emit key files
// through the same code.  The CLI keeps aliases so the subcommands read
// unchanged.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/algorithms.hpp"
#include "sim/harness.hpp"
#include "support/diagnostics.hpp"
#include "support/json.hpp"

namespace rtlock::service {

/// Caller-fault failure (malformed budget text, unknown algorithm name,
/// out-of-range knob).  The CLI maps it to kExitUsage, the HTTP front end to
/// status 400 — distinct from support::Error only in *blame*, not severity.
class BadRequest : public support::Error {
 public:
  using support::Error::Error;
};

// ---- algorithm spelling ----------------------------------------------------

/// Locking algorithm from its canonical spelling: serial|assure, random,
/// hra, greedy, era (case-insensitive).  Throws BadRequest otherwise.
[[nodiscard]] lock::Algorithm algorithmFromName(const std::string& name);

/// Canonical lower-case spelling (stable in reports and key files).
[[nodiscard]] std::string algorithmName(lock::Algorithm algorithm);

/// Simulation backend from its spelling: "sliced" (64-lane bit-parallel) or
/// "compiled"/"scalar" (the scalar differential oracle).  Throws BadRequest
/// otherwise.
[[nodiscard]] sim::SimBackend simBackendFromName(const std::string& name);

/// Comma-separated algorithm list ("serial,hra,era"); BadRequest when empty
/// or any name is unknown.
[[nodiscard]] std::vector<lock::Algorithm> algorithmListFromNames(const std::string& text);

/// Seed list: "1,2,7" and inclusive ranges "1..5" (span capped at 10000).
/// Every token goes through support::parseU64 — trailing junk and negative
/// values are BadRequest, never silently misread.
[[nodiscard]] std::vector<std::uint64_t> parseSeedList(const std::string& text);

// ---- key budgets -----------------------------------------------------------

/// Key budget: "50%" or "0.5" = fraction of the module's lockable
/// operations; a bare integer = absolute key bits.
struct BudgetSpec {
  bool isFraction = true;
  double fraction = 0.75;
  std::int64_t absolute = 0;

  /// Key bits for a module with `lockableOps` operations (floor, min 1).
  [[nodiscard]] int resolve(int lockableOps) const;
  /// Canonical spelling for reports ("75%" / "12 bits").
  [[nodiscard]] std::string describe() const;
};

/// Parses a budget spelling; throws BadRequest on malformed or out-of-range
/// text ("50%x", "1e2", "140%", "0").
[[nodiscard]] BudgetSpec parseBudget(const std::string& text);

// ---- report rows -----------------------------------------------------------

/// One metric row; the schema BENCH_baseline.json established
/// ({bench, config, metric, value, wall_ms}), reused verbatim so every
/// rtlock report is consumable by the same tooling as the committed
/// baseline.
struct ReportRow {
  std::string bench;
  std::string config;
  std::string metric;
  double value = 0.0;
  double wallMs = 0.0;
};

/// Rows as the JSON array for a report's "rows" member.
[[nodiscard]] support::JsonValue rowsToJson(const std::vector<ReportRow>& rows);

// ---- key files (rtlock-key/v1) --------------------------------------------

inline constexpr const char* kKeySchema = "rtlock-key/v1";

/// Per-module locking ground truth + provenance.
struct ModuleKey {
  std::string module;
  int keyWidth = 0;
  std::string keyBits;  // LSB-first '0'/'1' string, length == keyWidth
  std::vector<lock::LockRecord> records;
  int bitsUsed = 0;
  double globalMetric = 0.0;
  double restrictedMetric = 0.0;
};

struct KeyFile {
  std::string algorithm;  // canonical spelling
  std::uint64_t seed = 0;
  std::string budget;  // BudgetSpec::describe() text
  std::string input;   // source netlist path (or request label)
  std::vector<ModuleKey> modules;
};

[[nodiscard]] support::JsonValue keyFileToJson(const KeyFile& keyFile);
[[nodiscard]] KeyFile keyFileFromJson(const support::JsonValue& document);

/// Entry for `moduleName`; throws support::Error naming the candidates when
/// absent.
[[nodiscard]] const ModuleKey& moduleKeyFor(const KeyFile& keyFile, const std::string& moduleName);

}  // namespace rtlock::service
