#include "service/session.hpp"

#include <utility>

#include "rtl/stats.hpp"
#include "service/build_info.hpp"
#include "sim/compiler.hpp"
#include "support/strings.hpp"

namespace rtlock::service {

namespace {

[[nodiscard]] std::size_t programBytes(const sim::Program& program) noexcept {
  std::size_t bytes = program.instructionCount() * sizeof(sim::Instr);
  bytes += program.slots().size() * sizeof(sim::Slot);
  bytes += program.initialWords().size() * sizeof(std::uint64_t);
  bytes += program.argPool().size() * sizeof(std::int32_t);
  return bytes;
}

}  // namespace

DesignSession::DesignSession(std::string hash, std::string_view source,
                             const SessionOptions& options)
    : hash_(std::move(hash)), options_(options), sourceBytes_(source.size()) {
  verilog::ParserOptions parserOptions;
  parserOptions.keyPortName = options_.keyPortName;
  design_ = verilog::parseDesign(source, parserOptions);  // verification always-on

  artifacts_.reserve(design_.moduleCount());
  std::size_t bytes = sourceBytes_;
  for (std::size_t i = 0; i < design_.moduleCount(); ++i) {
    const rtl::Module& module = design_.module(i);
    ModuleArtifacts artifact;
    artifact.scalar = sim::Compiler::compile(module);
    artifact.sliced = sim::Compiler::compileSliced(module);
    artifact.lint = analysis::lintLocked(module);
    bytes += programBytes(artifact.scalar) + programBytes(artifact.sliced);
    // IR size proxy: the expression-node count scales with every per-node
    // allocation the module owns.
    bytes += static_cast<std::size_t>(rtl::computeStats(module).exprNodes) * 64;
    artifacts_.push_back(std::move(artifact));
  }
  // Floor: even an empty-ish design occupies cache bookkeeping.
  approxBytes_ = bytes < 1024 ? 1024 : bytes;
}

const rtl::Module* DesignSession::findModule(std::string_view name) const noexcept {
  for (std::size_t i = 0; i < design_.moduleCount(); ++i) {
    if (design_.module(i).name() == name) return &design_.module(i);
  }
  return nullptr;
}

rtl::Design DesignSession::cloneDesign() const {
  rtl::Design clone;
  for (std::size_t i = 0; i < design_.moduleCount(); ++i) {
    clone.addModule(design_.module(i).clone());
  }
  clone.setTop(design_.top().name());
  return clone;
}

SessionCache::SessionCache(std::size_t byteBudget) : byteBudget_(byteBudget) {}

std::string SessionCache::contentHash(std::string_view source, const SessionOptions& options) {
  std::string keyed;
  keyed.reserve(source.size() + options.keyPortName.size() + 64);
  keyed.append(source);
  keyed.push_back('\0');
  keyed.append(options.keyPortName);
  keyed.push_back('\0');
  keyed.append(engineVersionTag());
  return support::fnv1a64Hex(keyed);
}

SessionCache::FetchResult SessionCache::fetch(std::string_view source,
                                              const SessionOptions& options) {
  std::string hash = contentHash(source, options);

  std::shared_future<SessionPtr> pending;
  std::promise<SessionPtr> promise;
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    const auto found = index_.find(hash);
    if (found != index_.end()) {
      // Hit (possibly on an in-flight build — sharing the build still skips
      // every byte of parse/compile work for this caller).
      lru_.splice(lru_.begin(), lru_, found->second);
      ++hits_;
      pending = found->second->session;
    } else {
      ++misses_;
      Entry entry;
      entry.hash = hash;
      entry.session = promise.get_future().share();
      entry.building = true;
      lru_.push_front(std::move(entry));
      index_.emplace(hash, lru_.begin());
    }
  }
  if (pending.valid()) return {pending.get(), true};

  // Build outside the lock: concurrent fetches of *other* designs proceed,
  // concurrent fetches of this design wait on the shared future.
  SessionPtr session;
  try {
    session = std::make_shared<const DesignSession>(hash, source, options);
  } catch (...) {
    {
      const std::lock_guard<std::mutex> lock{mutex_};
      const auto found = index_.find(hash);
      if (found != index_.end()) {
        lru_.erase(found->second);
        index_.erase(found);
      }
    }
    promise.set_exception(std::current_exception());
    throw;
  }
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    const auto found = index_.find(hash);
    if (found != index_.end()) {
      found->second->bytes = session->approxBytes();
      found->second->building = false;
      bytes_ += session->approxBytes();
    }
    promise.set_value(session);
    enforceBudgetLocked(hash);
  }
  return {std::move(session), false};
}

void SessionCache::enforceBudgetLocked(const std::string& keepHash) {
  // Walk from the LRU tail; skip in-flight builds (their cost is unknown and
  // their waiters hold the future anyway) and the entry that triggered the
  // sweep — a single design larger than the whole budget must still be
  // served, it just will not keep neighbours resident.
  auto it = lru_.end();
  while (bytes_ > byteBudget_ && it != lru_.begin()) {
    --it;
    if (it->building || it->hash == keepHash) continue;
    bytes_ -= it->bytes;
    index_.erase(it->hash);
    it = lru_.erase(it);
    ++evictions_;
  }
}

SessionCache::Stats SessionCache::stats() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  Stats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.evictions = evictions_;
  stats.bytes = bytes_;
  stats.byteBudget = byteBudget_;
  for (const Entry& entry : lru_) {
    if (!entry.building) ++stats.entries;
  }
  return stats;
}

void SessionCache::clear() {
  const std::lock_guard<std::mutex> lock{mutex_};
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->building) {
      ++it;
      continue;
    }
    bytes_ -= it->bytes;
    index_.erase(it->hash);
    it = lru_.erase(it);
    ++evictions_;
  }
}

}  // namespace rtlock::service
