// Route table + JSON (de)serialization between HTTP messages and the
// service API — everything `rtlock serve` does with a request except the
// socket work, so tests exercise the full endpoint surface in-process.
//
// Endpoints:
//   GET  /healthz    liveness + build identity (version, sim backends)
//   GET  /v1/stats   session-cache and request counters
//   POST /v1/lock    LockRequest JSON  -> rtlock-lock-response/v1
//   POST /v1/attack  AttackRequest JSON -> rtlock-attack-report/v1
//   POST /v1/eval    EvalRequest JSON  -> rtlock-eval-report/v1
//
// Determinism: response *bodies* are a pure function of the request (with
// no_wall=true, byte-for-byte); cache state is reported only through the
// X-Rtlock-Cache response header, never in the body.  Error mapping:
// BadRequest and support::Error -> 400 (all service input is in-body, so
// unusable input is always the caller's fault), campaign::CellTimeout ->
// 504, anything else -> 500.  handle() itself never throws.
#pragma once

#include <atomic>
#include <cstdint>

#include "service/api.hpp"
#include "service/http.hpp"
#include "service/session.hpp"

namespace rtlock::service {

class Dispatcher {
 public:
  struct Options {
    /// Per-request wall budget in ms (0 = none).  Lock/attack poll it
    /// between modules/repeats (overrun -> 504); eval applies it per grid
    /// cell (overrun -> structured timeout rows, like the CLI).
    double requestDeadlineMs = 0.0;
    /// Worker threads available *inside* one request (attack repeats, eval
    /// cells).  Serve defaults to 1: concurrency comes from serving many
    /// requests, not from fanning out inside each.
    int requestThreads = 1;
  };

  explicit Dispatcher(SessionCache& cache);
  Dispatcher(SessionCache& cache, Options options);

  /// Routes one request; never throws.
  [[nodiscard]] HttpResponse handle(const HttpRequest& request);

  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t ok = 0;            // 2xx
    std::uint64_t clientErrors = 0;  // 4xx
    std::uint64_t serverErrors = 0;  // 5xx
  };
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] SessionCache& cache() noexcept { return cache_; }

 private:
  [[nodiscard]] HttpResponse route(const HttpRequest& request);

  SessionCache& cache_;
  Options options_;
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> ok_{0};
  std::atomic<std::uint64_t> clientErrors_{0};
  std::atomic<std::uint64_t> serverErrors_{0};
};

}  // namespace rtlock::service
