#include "service/dispatch.hpp"

#include <chrono>
#include <utility>

#include "campaign/runner.hpp"
#include "service/build_info.hpp"
#include "support/json.hpp"

namespace rtlock::service {

namespace {

/// JSON field access that blames the caller: a missing key falls back, a
/// present key of the wrong shape is a BadRequest naming the field.
[[nodiscard]] std::string stringField(const support::JsonValue& body, std::string_view key,
                                      std::string fallback) {
  const support::JsonValue* value = body.find(key);
  if (value == nullptr) return fallback;
  if (!value->isString()) throw BadRequest{"field '" + std::string{key} + "' must be a string"};
  return value->asString();
}

[[nodiscard]] bool boolField(const support::JsonValue& body, std::string_view key, bool fallback) {
  const support::JsonValue* value = body.find(key);
  if (value == nullptr) return fallback;
  if (!value->isBool()) throw BadRequest{"field '" + std::string{key} + "' must be a boolean"};
  return value->asBool();
}

[[nodiscard]] std::uint64_t u64Field(const support::JsonValue& body, std::string_view key,
                                     std::uint64_t fallback) {
  const support::JsonValue* value = body.find(key);
  if (value == nullptr) return fallback;
  try {
    const std::int64_t number = value->asInt();
    if (number < 0) throw support::Error{"negative"};
    return static_cast<std::uint64_t>(number);
  } catch (const support::Error&) {
    throw BadRequest{"field '" + std::string{key} + "' must be a non-negative integer"};
  }
}

[[nodiscard]] int intField(const support::JsonValue& body, std::string_view key, int fallback) {
  const std::uint64_t value =
      u64Field(body, key, static_cast<std::uint64_t>(fallback));
  if (value > 1'000'000'000) {
    throw BadRequest{"field '" + std::string{key} + "' is out of range"};
  }
  return static_cast<int>(value);
}

[[nodiscard]] support::JsonValue parseBody(const HttpRequest& request) {
  try {
    support::JsonValue body = support::parseJson(request.body);
    if (!body.isObject()) throw BadRequest{"request body must be a JSON object"};
    return body;
  } catch (const BadRequest&) {
    throw;
  } catch (const support::Error& error) {
    // Covers syntax errors and invalid UTF-8: the JSON layer is strict.
    throw BadRequest{std::string{"request body is not valid JSON: "} + error.what()};
  }
}

/// Seeds accept both spellings: a JSON array of integers or the CLI's list
/// string ("1,2,7", "1..5").
[[nodiscard]] std::vector<std::uint64_t> seedsField(const support::JsonValue& body) {
  const support::JsonValue* value = body.find("seeds");
  if (value == nullptr) return {1};
  if (value->isString()) return parseSeedList(value->asString());
  if (value->isArray()) {
    std::vector<std::uint64_t> seeds;
    for (const support::JsonValue& entry : value->asArray()) {
      try {
        const std::int64_t seed = entry.asInt();
        if (seed < 0) throw support::Error{"negative"};
        seeds.push_back(static_cast<std::uint64_t>(seed));
      } catch (const support::Error&) {
        throw BadRequest{"field 'seeds' entries must be non-negative integers"};
      }
    }
    if (seeds.empty()) throw BadRequest{"no seeds listed"};
    return seeds;
  }
  throw BadRequest{"field 'seeds' must be a list string or an integer array"};
}

[[nodiscard]] std::vector<lock::Algorithm> algosField(const support::JsonValue& body) {
  const support::JsonValue* value = body.find("algos");
  if (value == nullptr) return algorithmListFromNames("serial,hra,era");
  if (value->isString()) return algorithmListFromNames(value->asString());
  if (value->isArray()) {
    std::vector<lock::Algorithm> algorithms;
    for (const support::JsonValue& entry : value->asArray()) {
      if (!entry.isString()) throw BadRequest{"field 'algos' entries must be strings"};
      algorithms.push_back(algorithmFromName(entry.asString()));
    }
    if (algorithms.empty()) throw BadRequest{"no algorithms listed"};
    return algorithms;
  }
  throw BadRequest{"field 'algos' must be a list string or a string array"};
}

[[nodiscard]] std::string requiredSource(const support::JsonValue& body) {
  const support::JsonValue* source = body.find("source");
  if (source == nullptr || !source->isString() || source->asString().empty()) {
    throw BadRequest{"field 'source' (the Verilog netlist text) is required"};
  }
  return source->asString();
}

[[nodiscard]] HttpResponse errorResponse(int status, const std::string& message) {
  support::JsonValue document;
  document.set("error", message);
  document.set("status", status);
  HttpResponse response;
  response.status = status;
  response.body = document.dump();
  return response;
}

}  // namespace

Dispatcher::Dispatcher(SessionCache& cache) : Dispatcher(cache, Options{}) {}

Dispatcher::Dispatcher(SessionCache& cache, Options options)
    : cache_(cache), options_(options) {}

HttpResponse Dispatcher::handle(const HttpRequest& request) {
  ++requests_;
  HttpResponse response;
  try {
    response = route(request);
  } catch (const BadRequest& error) {
    response = errorResponse(400, error.what());
  } catch (const campaign::CellTimeout& error) {
    response = errorResponse(504, error.what());
  } catch (const support::Error& error) {
    // Every input the service consumes arrives in the request body, so an
    // unusable design/key is the caller's fault, not the server's.
    response = errorResponse(400, error.what());
  } catch (const std::exception& error) {
    response = errorResponse(500, error.what());
  }
  if (response.status >= 500) {
    ++serverErrors_;
  } else if (response.status >= 400) {
    ++clientErrors_;
  } else {
    ++ok_;
  }
  return response;
}

HttpResponse Dispatcher::route(const HttpRequest& request) {
  const bool isGet = request.method == "GET";
  const bool isPost = request.method == "POST";
  if (!isGet && !isPost) return errorResponse(405, "unsupported method " + request.method);

  if (request.target == "/healthz") {
    if (!isGet) return errorResponse(405, "use GET for /healthz");
    support::JsonValue document;
    document.set("status", "ok");
    document.set("version", buildInfo().version);
    document.set("engine", engineVersionTag());
    support::JsonArray backends;
    for (const std::string& backend : buildInfo().simBackends) {
      backends.push_back(support::JsonValue{backend});
    }
    document.set("sim_backends", support::JsonValue{std::move(backends)});
    HttpResponse response;
    response.body = document.dump();
    return response;
  }

  if (request.target == "/v1/stats") {
    if (!isGet) return errorResponse(405, "use GET for /v1/stats");
    const SessionCache::Stats cacheStats = cache_.stats();
    support::JsonValue cacheDoc;
    cacheDoc.set("hits", cacheStats.hits);
    cacheDoc.set("misses", cacheStats.misses);
    cacheDoc.set("evictions", cacheStats.evictions);
    cacheDoc.set("entries", static_cast<std::uint64_t>(cacheStats.entries));
    cacheDoc.set("bytes", static_cast<std::uint64_t>(cacheStats.bytes));
    cacheDoc.set("byte_budget", static_cast<std::uint64_t>(cacheStats.byteBudget));
    const Stats requestStats = stats();
    support::JsonValue requestsDoc;
    requestsDoc.set("total", requestStats.requests);
    requestsDoc.set("ok", requestStats.ok);
    requestsDoc.set("client_errors", requestStats.clientErrors);
    requestsDoc.set("server_errors", requestStats.serverErrors);
    support::JsonValue document;
    document.set("cache", std::move(cacheDoc));
    document.set("requests", std::move(requestsDoc));
    HttpResponse response;
    response.body = document.dump();
    return response;
  }

  if (request.target != "/v1/lock" && request.target != "/v1/attack" &&
      request.target != "/v1/eval") {
    return errorResponse(404, "no such endpoint " + request.target);
  }
  if (!isPost) return errorResponse(405, "use POST for " + request.target);

  const support::JsonValue body = parseBody(request);
  const std::string label = stringField(body, "label", "<request>");
  SessionOptions sessionOptions;
  sessionOptions.keyPortName = stringField(body, "key_port", sessionOptions.keyPortName);

  campaign::CellContext deadline;
  deadline.deadlineMs = options_.requestDeadlineMs;
  deadline.start = std::chrono::steady_clock::now();

  HttpResponse response;
  if (request.target == "/v1/lock") {
    LockRequest lockRequest;
    lockRequest.source = requiredSource(body);
    lockRequest.session = sessionOptions;
    lockRequest.algorithm = algorithmFromName(stringField(body, "algo", "era"));
    lockRequest.budget = parseBudget(stringField(body, "budget", "75%"));
    lockRequest.seed = u64Field(body, "seed", 1);
    lockRequest.emitBanner = !boolField(body, "no_banner", false);
    lockRequest.inputLabel = label;
    const LockResponse result = runLock(cache_, lockRequest, &deadline);
    response.body = lockResponseDocument(result).dump();
    response.extraHeaders.emplace_back("X-Rtlock-Cache", result.cacheHit ? "hit" : "miss");
    response.extraHeaders.emplace_back("X-Rtlock-Design-Hash", result.designHash);
    return response;
  }

  if (request.target == "/v1/attack") {
    AttackRequest attackRequest;
    attackRequest.source = requiredSource(body);
    attackRequest.session = sessionOptions;
    attackRequest.moduleName = stringField(body, "module", "");
    if (const support::JsonValue* key = body.find("key")) {
      attackRequest.key = keyFileFromJson(*key);
    }
    attackRequest.rounds = intField(body, "rounds", 1000);
    attackRequest.relockBudget = parseBudget(stringField(body, "relock_budget", "75%"));
    attackRequest.folds = intField(body, "folds", 3);
    attackRequest.extendedFeatures = boolField(body, "extended_features", false);
    attackRequest.repeats = intField(body, "repeats", 1);
    attackRequest.seed = u64Field(body, "seed", 1);
    attackRequest.threads = options_.requestThreads;
    attackRequest.includeWall = !boolField(body, "no_wall", false);
    const AttackResponse result = runAttack(cache_, attackRequest, &deadline);
    response.body = attackReportDocument(attackRequest, result, label).dump();
    response.extraHeaders.emplace_back("X-Rtlock-Cache", result.cacheHit ? "hit" : "miss");
    response.extraHeaders.emplace_back("X-Rtlock-Design-Hash", result.designHash);
    return response;
  }

  EvalRequest evalRequest;
  evalRequest.source = requiredSource(body);
  evalRequest.session = sessionOptions;
  evalRequest.moduleName = stringField(body, "module", "");
  evalRequest.algorithms = algosField(body);
  evalRequest.seeds = seedsField(body);
  evalRequest.samples = intField(body, "samples", 10);
  evalRequest.rounds = intField(body, "rounds", 1000);
  evalRequest.budget = parseBudget(stringField(body, "budget", "75%"));
  evalRequest.folds = intField(body, "folds", 3);
  evalRequest.extendedFeatures = boolField(body, "extended_features", false);
  evalRequest.campaign.threads = options_.requestThreads;
  evalRequest.campaign.cellDeadlineMs = options_.requestDeadlineMs;
  evalRequest.includeWall = !boolField(body, "no_wall", false);
  // Manifest mode: this server becomes one worker of a distributed
  // campaign — claim cells from the shared manifest, journal locally, and
  // answer with the merged fleet-wide report once every cell is done.
  evalRequest.manifestPath = stringField(body, "manifest", "");
  if (!evalRequest.manifestPath.empty()) {
    evalRequest.workerId = stringField(body, "worker_id", "");
    evalRequest.journalPath = stringField(body, "journal", "");
    evalRequest.leaseMs = static_cast<double>(u64Field(body, "lease_ms", 60000));
    evalRequest.pollMs = static_cast<double>(u64Field(body, "poll_ms", 50));
    if (evalRequest.pollMs <= 0.0) throw BadRequest{"poll_ms must be > 0"};
    evalRequest.maxWaitMs = static_cast<double>(u64Field(body, "max_wait_ms", 0));
  }
  const EvalResponse result = runEval(cache_, evalRequest);
  if (result.campaign.interrupted) {
    return errorResponse(503, "campaign interrupted by server shutdown");
  }
  if (result.distributed && !result.worker.allDone) {
    return errorResponse(504, "fleet not converged: manifest cells still unfinished after " +
                                  std::to_string(static_cast<long long>(evalRequest.maxWaitMs)) +
                                  " ms without progress");
  }
  support::JsonValue document = evalReportDocument(result, label);
  if (!result.cellErrors.empty()) {
    support::JsonArray errors;
    for (const std::string& line : result.cellErrors) {
      errors.push_back(support::JsonValue{line});
    }
    document.set("cell_errors", support::JsonValue{std::move(errors)});
  }
  response.body = document.dump();
  response.extraHeaders.emplace_back("X-Rtlock-Cache", result.cacheHit ? "hit" : "miss");
  response.extraHeaders.emplace_back("X-Rtlock-Design-Hash", result.designHash);
  return response;
}

Dispatcher::Stats Dispatcher::stats() const {
  Stats stats;
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.ok = ok_.load(std::memory_order_relaxed);
  stats.clientErrors = clientErrors_.load(std::memory_order_relaxed);
  stats.serverErrors = serverErrors_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace rtlock::service
