// Library-level lock/attack/eval entry points — the bodies that used to
// live inside the CLI subcommands, now callable by anything that holds a
// SessionCache (the thin CLI wrappers, `rtlock serve`, tests, future
// search loops).
//
// Every function is a pure request -> response mapping on top of a cached
// DesignSession: the response is bit-identical for identical (design
// content, seed, config) whether the session was freshly built or served
// warm, at any thread count, in any arrival order (tests/service/
// api_test.cpp pins warm-vs-cold byte equality).  Wall-clock values are the
// one exception and are suppressed entirely with includeWall=false.
//
// Error taxonomy: BadRequest = the caller's parameters are malformed
// (kExitUsage / HTTP 400 with the message); support::Error = the input
// design or key data is unusable (also the caller's fault in a service
// setting — HTTP 400); campaign::CellTimeout = the per-request deadline
// expired (HTTP 504).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "attack/snapshot.hpp"
#include "campaign/runner.hpp"
#include "campaign/worker.hpp"
#include "service/session.hpp"
#include "service/types.hpp"

namespace rtlock::service {

// ---- lock ------------------------------------------------------------------

struct LockRequest {
  std::string source;      // Verilog netlist text
  SessionOptions session;  // key-port name
  lock::Algorithm algorithm = lock::Algorithm::Era;
  BudgetSpec budget;  // default 75% of lockable operations
  std::uint64_t seed = 1;
  bool emitBanner = true;           // locking-statistics banner comment
  std::string inputLabel = "<request>";  // provenance text in the key file
};

/// Per-module summary of one lock run (the CLI's table rows).
struct LockModuleSummary {
  std::string module;
  int lockableOps = 0;
  int bitsUsed = 0;
  int keyWidth = 0;
  double globalMetric = 0.0;
  double restrictedMetric = 0.0;
};

struct LockResponse {
  std::string designHash;  // SessionCache content hash
  bool cacheHit = false;
  std::string lockedVerilog;
  KeyFile key;
  std::vector<LockModuleSummary> modules;
  std::vector<std::string> notes;  // skipped-module diagnostics
};

/// Locks every lockable module of the request's design: module i draws from
/// substream(i) of the seed's root stream.  Throws support::Error when a
/// module already carries key bits or nothing is lockable.  `deadline` (may
/// be null) is polled between modules; overruns throw campaign::CellTimeout.
[[nodiscard]] LockResponse runLock(SessionCache& cache, const LockRequest& request,
                                   const campaign::CellContext* deadline = nullptr);

// ---- attack ----------------------------------------------------------------

struct AttackRequest {
  std::string source;      // locked Verilog netlist text
  SessionOptions session;  // key-port name
  std::string moduleName;  // empty = the design's only keyed module
  std::optional<KeyFile> key;  // present = score KPA against ground truth
  int rounds = 1000;           // training relock rounds
  BudgetSpec relockBudget;     // fraction-only (training budget)
  int folds = 3;               // auto-ml cross-validation folds
  bool extendedFeatures = false;
  int repeats = 1;
  std::uint64_t seed = 1;  // repeat r draws from substream(r)
  int threads = 0;         // TaskPool convention: 0 = hardware, 1 = serial
  bool includeWall = true;
};

struct AttackRepeat {
  attack::SnapshotResult result;
  double wallMs = 0.0;
};

struct AttackResponse {
  std::string designHash;
  bool cacheHit = false;
  std::string moduleName;
  bool scored = false;
  std::string setup;  // "snapshot rounds=... budget=... folds=..." config text
  std::vector<AttackRepeat> repeats;
  std::vector<ReportRow> rows;
  std::vector<std::string> notes;
  double totalWallMs = 0.0;
};

/// Runs the SnapShot-RTL attack; repeats shard across a private TaskPool and
/// each clones the cached session's target module.  `deadline` (may be null)
/// is polled between repeats; overruns throw campaign::CellTimeout.
[[nodiscard]] AttackResponse runAttack(SessionCache& cache, const AttackRequest& request,
                                       const campaign::CellContext* deadline = nullptr);

// ---- eval ------------------------------------------------------------------

struct EvalRequest {
  std::string source;
  SessionOptions session;
  std::string moduleName;  // empty = the design's only module
  std::vector<lock::Algorithm> algorithms;
  std::vector<std::uint64_t> seeds;
  int samples = 10;  // locked samples per cell
  int rounds = 1000;
  BudgetSpec budget;  // fraction-only
  int folds = 3;
  bool extendedFeatures = false;
  bool verifyFunctional = false;
  sim::SimBackend simBackend = sim::SimBackend::Sliced;
  campaign::CampaignOptions campaign;  // threads, retries, deadlines, faults
  bool includeWall = true;
  std::string journalPath;     // non-empty: checkpoint cells to this journal
  std::size_t checkCells = 0;  // with a journal: re-check this many cells

  // Distributed manifest mode (`rtlock work` and serve's manifest eval):
  // non-empty manifestPath switches runEval from owning the whole grid to
  // claiming cells from the shared manifest (created atomically on first
  // use, validated against the request on every use).  journalPath then
  // defaults to `<manifest>.journals/<workerId>.jsonl`; checkCells is
  // ignored (a worker's journal holds only its own cells).
  std::string manifestPath;
  std::string workerId;       // empty = "<hostname>-<pid>"
  double leaseMs = 60000.0;   // claim lease; <= 0 disables stale-claim steals
  double pollMs = 50.0;       // sweep sleep while other workers hold cells
  double maxWaitMs = 0.0;     // give up after this long with no fleet progress
};

struct EvalResponse {
  std::string designHash;
  bool cacheHit = false;
  std::string moduleName;
  std::string setup;       // row config text ("samples=... rounds=... budget=...")
  std::string configText;  // full campaign config identity text
  std::vector<campaign::Cell> cells;
  campaign::CampaignResult campaign;
  std::vector<ReportRow> rows;
  std::vector<std::string> cellErrors;  // formatted error/timeout lines
  bool journaled = false;               // a journal was open for this run
  std::size_t journalReloadedRows = 0;
  bool journalTornTail = false;
  std::size_t checkedCells = 0;
  std::vector<std::string> checkMismatches;

  // Manifest mode only.
  bool distributed = false;
  campaign::WorkerReport worker;
  std::vector<std::string> mergedJournals;  // journals unioned for the report
};

/// Runs the (algorithm x seed) grid through the campaign runner.  With a
/// journalPath the campaign checkpoints (and resumes); with checkCells > 0 a
/// deterministic sample of journaled cells is additionally recomputed and
/// byte-compared.  Cell failures become structured outcomes, never
/// exceptions; a journal belonging to a different campaign throws
/// support::Error.
[[nodiscard]] EvalResponse runEval(SessionCache& cache, const EvalRequest& request);

/// Rebuilds an eval report's rows from grid cells and their outcomes.  The
/// one row builder behind runEval, `rtlock work` and `rtlock merge
/// --manifest`, so a merged multi-worker report cannot drift from the
/// single-process bytes.  `outcomeAt` returns the outcome for a grid index
/// (nullptr = cell missing); cells must be algorithm-major (manifest order).
[[nodiscard]] std::vector<ReportRow> evalReportRows(
    const std::string& moduleName, const std::string& setup,
    const std::vector<campaign::Cell>& cells,
    const std::function<const campaign::CellOutcome*(std::size_t)>& outcomeAt, bool includeWall);

// ---- report documents ------------------------------------------------------

/// `rtlock-attack-report/v1` document (the --report file / HTTP body).
[[nodiscard]] support::JsonValue attackReportDocument(const AttackRequest& request,
                                                      const AttackResponse& response,
                                                      const std::string& inputLabel);

/// `rtlock-eval-report/v1` document.
[[nodiscard]] support::JsonValue evalReportDocument(const EvalResponse& response,
                                                    const std::string& inputLabel);

/// `rtlock-lock-response/v1` document (the HTTP lock body: key file +
/// locked netlist + per-module summaries).
[[nodiscard]] support::JsonValue lockResponseDocument(const LockResponse& response);

}  // namespace rtlock::service
