// Per-key-bit cone-of-influence analysis over one module.
//
// The attacker's-eye question behind Tier B of the lint: which outputs can a
// given key bit possibly affect?  The analysis propagates key-bit taint
// through the signal dependency graph — a driver taints its targets with
// every key bit its expressions read plus the taint of every signal they
// read; process writes additionally inherit the taint of every signal the
// process reads (control dependence through if/case conditions).  Sequential
// feedback is covered by iterating to a fixpoint, so influence that only
// reaches an output after several clock cycles still counts.
//
// The propagation over-approximates influence, which makes the *absence* of
// influence a proof: a key bit whose taint reaches no output port can never
// change any output value under any stimulus — the provably-free-key-bit
// flag `rtlock lint` reports and the differential test holds against
// simulation.
//
// Contract --------------------------------------------------------------------
// Ownership: the constructor reads the module and keeps no reference to it.
// Determinism: results are a pure function of the module.
// Thread-safety: const after construction; concurrent use is safe.
#pragma once

#include <cstdint>
#include <vector>

#include "rtl/module.hpp"

namespace rtlock::analysis {

class KeyInfluence {
 public:
  explicit KeyInfluence(const rtl::Module& module);

  [[nodiscard]] int keyWidth() const noexcept { return keyWidth_; }

  /// True when `bit`'s cone of influence contains at least one output port.
  [[nodiscard]] bool reachesOutput(int bit) const;

  /// Key bits (ascending) that provably never influence any output.
  [[nodiscard]] std::vector<int> freeBits() const;

  /// Number of key-reference leaves covering `bit` anywhere in the module.
  [[nodiscard]] int refCount(int bit) const;

  /// Number of key multiplexers (ternaries with a 1-bit key select, the
  /// locking shells of Fig. 3) whose select reads `bit`.
  [[nodiscard]] int muxCount(int bit) const;

 private:
  [[nodiscard]] std::size_t words() const noexcept {
    return (static_cast<std::size_t>(keyWidth_) + 63) / 64;
  }

  int keyWidth_ = 0;
  std::vector<std::uint64_t> outputTaint_;  // bitset over key bits
  std::vector<int> refCounts_;
  std::vector<int> muxCounts_;
};

}  // namespace rtlock::analysis
