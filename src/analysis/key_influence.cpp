#include "analysis/key_influence.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "rtl/traverse.hpp"
#include "sim/schedule.hpp"
#include "support/diagnostics.hpp"

namespace rtlock::analysis {

namespace {

using rtl::Expr;
using rtl::ExprKind;
using rtl::SignalId;

/// One taint-propagation unit: targets |= keyMask | taint(reads).
struct TaintUnit {
  std::vector<SignalId> reads;
  std::vector<SignalId> writes;
  std::vector<std::uint64_t> keyMask;  // key bits read directly
};

void orKeyBitsOf(const Expr& expr, std::vector<std::uint64_t>& mask, int keyWidth) {
  rtl::forEachExpr(expr, [&](const Expr& node) {
    if (node.kind() != ExprKind::KeyRef) return;
    const auto& ref = static_cast<const rtl::KeyRefExpr&>(node);
    const int end = std::min(ref.firstBit() + ref.width(), keyWidth);
    for (int bit = ref.firstBit(); bit < end && bit >= 0; ++bit) {
      mask[static_cast<std::size_t>(bit) / 64] |= std::uint64_t{1} << (bit % 64);
    }
  });
}

}  // namespace

KeyInfluence::KeyInfluence(const rtl::Module& module) : keyWidth_(module.keyWidth()) {
  refCounts_.assign(static_cast<std::size_t>(keyWidth_), 0);
  muxCounts_.assign(static_cast<std::size_t>(keyWidth_), 0);
  outputTaint_.assign(words(), 0);
  if (keyWidth_ <= 0) return;

  // Gate statistics: raw key-reference coverage and key-mux selects.
  rtl::forEachExpr(module, [&](const Expr& node) {
    if (node.kind() == ExprKind::KeyRef) {
      const auto& ref = static_cast<const rtl::KeyRefExpr&>(node);
      const int end = std::min(ref.firstBit() + ref.width(), keyWidth_);
      for (int bit = std::max(ref.firstBit(), 0); bit < end; ++bit) {
        ++refCounts_[static_cast<std::size_t>(bit)];
      }
    } else if (node.kind() == ExprKind::Ternary) {
      const auto& ternary = static_cast<const rtl::TernaryExpr&>(node);
      if (ternary.isKeyMux()) {
        const auto& ref = static_cast<const rtl::KeyRefExpr&>(ternary.cond());
        if (ref.firstBit() >= 0 && ref.firstBit() < keyWidth_) {
          ++muxCounts_[static_cast<std::size_t>(ref.firstBit())];
        }
      }
    }
  });

  // Taint units: one per continuous assignment, one per process (a process
  // taints every signal it writes with everything it reads — conditions
  // included, which is exactly the control-dependence over-approximation).
  std::vector<TaintUnit> units;
  for (const auto& assign : module.contAssigns()) {
    TaintUnit unit;
    std::set<SignalId> reads;
    sim::collectExprReads(assign->value(), reads);
    unit.reads.assign(reads.begin(), reads.end());
    unit.writes.push_back(assign->target().signal);
    unit.keyMask.assign(words(), 0);
    orKeyBitsOf(assign->value(), unit.keyMask, keyWidth_);
    units.push_back(std::move(unit));
  }
  for (const auto& process : module.processes()) {
    TaintUnit unit;
    std::set<SignalId> reads;
    std::set<SignalId> writes;
    sim::collectStmtReadsWrites(*process->body, reads, writes);
    unit.reads.assign(reads.begin(), reads.end());
    unit.writes.assign(writes.begin(), writes.end());
    unit.keyMask.assign(words(), 0);
    rtl::forEachExprInStmt(*process->body, [&](const Expr& expr) {
      if (expr.kind() == ExprKind::KeyRef) {
        const auto& ref = static_cast<const rtl::KeyRefExpr&>(expr);
        const int end = std::min(ref.firstBit() + ref.width(), keyWidth_);
        for (int bit = std::max(ref.firstBit(), 0); bit < end; ++bit) {
          unit.keyMask[static_cast<std::size_t>(bit) / 64] |= std::uint64_t{1} << (bit % 64);
        }
      }
    });
    units.push_back(std::move(unit));
  }

  // Fixpoint taint propagation (registers feed back, so iterate until no
  // signal's taint grows; bounded by the longest dependency chain).
  std::vector<std::uint64_t> taint(module.signalCount() * words(), 0);
  const auto rowOf = [&](SignalId id) { return static_cast<std::size_t>(id) * words(); };
  bool changed = true;
  std::vector<std::uint64_t> acc(words());
  while (changed) {
    changed = false;
    for (const TaintUnit& unit : units) {
      acc = unit.keyMask;
      for (const SignalId read : unit.reads) {
        if (read >= module.signalCount()) continue;
        const std::size_t row = rowOf(read);
        for (std::size_t w = 0; w < words(); ++w) acc[w] |= taint[row + w];
      }
      for (const SignalId write : unit.writes) {
        if (write >= module.signalCount()) continue;
        const std::size_t row = rowOf(write);
        for (std::size_t w = 0; w < words(); ++w) {
          const std::uint64_t merged = taint[row + w] | acc[w];
          if (merged != taint[row + w]) {
            taint[row + w] = merged;
            changed = true;
          }
        }
      }
    }
  }

  for (std::size_t id = 0; id < module.signalCount(); ++id) {
    const rtl::Signal& signal = module.signal(static_cast<SignalId>(id));
    if (!signal.isPort || signal.dir != rtl::PortDir::Output) continue;
    const std::size_t row = rowOf(static_cast<SignalId>(id));
    for (std::size_t w = 0; w < words(); ++w) outputTaint_[w] |= taint[row + w];
  }
}

bool KeyInfluence::reachesOutput(int bit) const {
  RTLOCK_REQUIRE(bit >= 0 && bit < keyWidth_, "key bit index outside the key");
  return (outputTaint_[static_cast<std::size_t>(bit) / 64] >>
          (static_cast<std::size_t>(bit) % 64)) &
         1U;
}

std::vector<int> KeyInfluence::freeBits() const {
  std::vector<int> bits;
  for (int bit = 0; bit < keyWidth_; ++bit) {
    if (!reachesOutput(bit)) bits.push_back(bit);
  }
  return bits;
}

int KeyInfluence::refCount(int bit) const {
  RTLOCK_REQUIRE(bit >= 0 && bit < keyWidth_, "key bit index outside the key");
  return refCounts_[static_cast<std::size_t>(bit)];
}

int KeyInfluence::muxCount(int bit) const {
  RTLOCK_REQUIRE(bit >= 0 && bit < keyWidth_, "key bit index outside the key");
  return muxCounts_[static_cast<std::size_t>(bit)];
}

}  // namespace rtlock::analysis
