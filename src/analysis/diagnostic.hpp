// Structured diagnostics for the static-analysis passes.
//
// Every finding a pass produces is a Diagnostic: a stable check code
// (documented in docs/ANALYSIS.md), a severity, and location context inside
// the module.  Passes return plain vectors so callers decide policy — the
// debug-build IR assertions abort on Error-severity findings, `rtlock lint`
// renders every severity, and tests assert on codes.
//
// This is the structured counterpart of support/diagnostics.hpp: exceptions
// carry single fatal failures across tool boundaries, Diagnostic carries the
// many-findings-per-run shape of an analysis pass.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rtlock::analysis {

enum class Severity : std::uint8_t { Note, Warning, Error };

/// Every check the analysis passes implement.  Codes are stable identifiers
/// (V1xx = Tier A verifier, L2xx = Tier B security lint); new checks append.
enum class Check : std::uint8_t {
  // Tier A — IR verifier.
  SignalOutOfRange,     // V101: expression references a signal id outside the table
  SignalWidthMismatch,  // V102: signal reference width != declared width
  ExprWidthMismatch,    // V103: node width != width implied by its operands
  SliceOutOfRange,      // V104: slice bounds outside the base expression
  KeyRefOutOfRange,     // V105: key reference beyond the module's key width
  DanglingKeyBit,       // V106: allocated key bit never referenced
  DrivenInput,          // V107: assignment targets an input port
  AssignOutOfRange,     // V108: assignment target bounds outside the signal
  AssignWidthMismatch,  // V109: value width != assignment target width
  NameCollision,        // V110: duplicate signal name / key-port collision
  CombinationalLoop,    // V111: cyclic combinational dependency
  MultipleDrivers,      // V112: signal driven from more than one place
  UndrivenSignal,       // V113: signal read (or output) but never driven
  UseBeforeDef,         // V114: comb process reads its own output before writing
  ProcessDiscipline,    // V115: wrong assign kind / net kind for the context
  CaseLabelOverflow,    // V116: case label wider than the subject
  BadClock,             // V117: sequential clock missing or not 1 bit wide
  // Tier B — security lint over a locked netlist.
  FreeKeyBit,           // L201: key bit whose cone of influence misses every output
  ConstantSelectMux,    // L202: mux select constant-folds — removable by constprop
  IdenticalArmsMux,     // L203: key mux with syntactically identical arms
};

struct Diagnostic {
  Check check = Check::SignalOutOfRange;
  Severity severity = Severity::Error;
  std::string module;   // module name
  std::string context;  // location inside the module ("assign #3", "key bit 7")
  std::string message;
};

/// Stable code of a check ("V101", "L203").
[[nodiscard]] std::string_view checkCode(Check check) noexcept;

/// Kebab-case name of a check ("signal-out-of-range").
[[nodiscard]] std::string_view checkName(Check check) noexcept;

[[nodiscard]] std::string_view severityName(Severity severity) noexcept;

/// One-line rendering: "error V101 [mod] assign #3: message".
[[nodiscard]] std::string describe(const Diagnostic& diagnostic);

/// Multi-line rendering of a whole finding list (one describe() per line).
[[nodiscard]] std::string describeAll(const std::vector<Diagnostic>& diagnostics);

[[nodiscard]] int countWithSeverity(const std::vector<Diagnostic>& diagnostics,
                                    Severity severity) noexcept;

[[nodiscard]] bool hasErrors(const std::vector<Diagnostic>& diagnostics) noexcept;

}  // namespace rtlock::analysis
