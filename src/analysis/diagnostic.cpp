#include "analysis/diagnostic.hpp"

#include <algorithm>

#include "support/diagnostics.hpp"

namespace rtlock::analysis {

namespace {

struct CheckInfo {
  Check check;
  std::string_view code;
  std::string_view name;
};

constexpr CheckInfo kCheckTable[] = {
    {Check::SignalOutOfRange, "V101", "signal-out-of-range"},
    {Check::SignalWidthMismatch, "V102", "signal-width-mismatch"},
    {Check::ExprWidthMismatch, "V103", "expr-width-mismatch"},
    {Check::SliceOutOfRange, "V104", "slice-out-of-range"},
    {Check::KeyRefOutOfRange, "V105", "key-ref-out-of-range"},
    {Check::DanglingKeyBit, "V106", "dangling-key-bit"},
    {Check::DrivenInput, "V107", "driven-input"},
    {Check::AssignOutOfRange, "V108", "assign-out-of-range"},
    {Check::AssignWidthMismatch, "V109", "assign-width-mismatch"},
    {Check::NameCollision, "V110", "name-collision"},
    {Check::CombinationalLoop, "V111", "combinational-loop"},
    {Check::MultipleDrivers, "V112", "multiple-drivers"},
    {Check::UndrivenSignal, "V113", "undriven-signal"},
    {Check::UseBeforeDef, "V114", "use-before-def"},
    {Check::ProcessDiscipline, "V115", "process-discipline"},
    {Check::CaseLabelOverflow, "V116", "case-label-overflow"},
    {Check::BadClock, "V117", "bad-clock"},
    {Check::FreeKeyBit, "L201", "free-key-bit"},
    {Check::ConstantSelectMux, "L202", "constant-select-mux"},
    {Check::IdenticalArmsMux, "L203", "identical-arms-mux"},
};

const CheckInfo& infoFor(Check check) noexcept {
  for (const CheckInfo& info : kCheckTable) {
    if (info.check == check) return info;
  }
  return kCheckTable[0];
}

}  // namespace

std::string_view checkCode(Check check) noexcept { return infoFor(check).code; }

std::string_view checkName(Check check) noexcept { return infoFor(check).name; }

std::string_view severityName(Severity severity) noexcept {
  switch (severity) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  RTLOCK_UNREACHABLE("severity");
}

std::string describe(const Diagnostic& diagnostic) {
  std::string text{severityName(diagnostic.severity)};
  text += ' ';
  text += checkCode(diagnostic.check);
  text += " [";
  text += diagnostic.module;
  text += "] ";
  if (!diagnostic.context.empty()) {
    text += diagnostic.context;
    text += ": ";
  }
  text += diagnostic.message;
  return text;
}

std::string describeAll(const std::vector<Diagnostic>& diagnostics) {
  std::string text;
  for (const Diagnostic& diagnostic : diagnostics) {
    text += describe(diagnostic);
    text += '\n';
  }
  return text;
}

int countWithSeverity(const std::vector<Diagnostic>& diagnostics, Severity severity) noexcept {
  return static_cast<int>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [severity](const Diagnostic& d) { return d.severity == severity; }));
}

bool hasErrors(const std::vector<Diagnostic>& diagnostics) noexcept {
  return countWithSeverity(diagnostics, Severity::Error) > 0;
}

}  // namespace rtlock::analysis
