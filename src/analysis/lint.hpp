// Tier B of the static-analysis subsystem: the security lint.
//
// lintLocked() looks at a locked netlist the way an oracle-less attacker
// with a parser would — purely structurally — and reports every weakness a
// lock should not exhibit:
//
//  * L201 free key bit: the bit's cone of influence (analysis/key_influence)
//    contains no output port, so any key guess for it is correct — the bit
//    adds zero resilience.  The flag is a proof: the differential test suite
//    holds it against exhaustive per-bit corruption sweeps.
//  * L202 constant-select mux: a multiplexer whose select constant-folds, so
//    constant propagation deletes the dead arm (and any key logic in it).
//  * L203 identical-arms mux: a key multiplexer whose two arms are
//    syntactically identical — constant propagation removes the mux and the
//    key bit with it, and a D-MUX-style deceptive clone/dummy pair must
//    never degenerate into this shape.
//
// The summary condenses the findings into the "static resilience" row the
// CLI reports next to the dynamic KPA metrics.
//
// Contract: same as analysis/verifier.hpp — pure function of the module,
// stable finding order, safe concurrently on distinct modules.
#pragma once

#include <vector>

#include "analysis/diagnostic.hpp"
#include "rtl/module.hpp"

namespace rtlock::analysis {

/// Static attacker's-eye facts about one key bit.
struct KeyBitLint {
  int bit = 0;
  bool reachesOutput = false;  // false = provably free (L201)
  int refCount = 0;            // key-reference leaves covering the bit
  int muxCount = 0;            // key-mux selects reading the bit
};

struct LintSummary {
  int keyWidth = 0;
  int keyMuxes = 0;             // locking multiplexers in the netlist
  int freeKeyBits = 0;          // L201 findings
  int constantSelectMuxes = 0;  // L202 findings
  int identicalArmMuxes = 0;    // L203 findings
  /// Share of key bits that static analysis cannot discharge:
  /// 100 * (keyWidth - freeKeyBits) / keyWidth; 0 for an unlocked module.
  double staticResiliencePercent = 0.0;
};

struct LintReport {
  std::vector<Diagnostic> findings;  // L2xx, stable order
  std::vector<KeyBitLint> bits;      // one entry per key bit, ascending
  LintSummary summary;
};

/// Lints a locked netlist (an unlocked module yields an empty report with
/// keyWidth 0 — nothing to defend, nothing to flag).
[[nodiscard]] LintReport lintLocked(const rtl::Module& module);

}  // namespace rtlock::analysis
