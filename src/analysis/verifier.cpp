#include "analysis/verifier.hpp"

#include <algorithm>
#include <iterator>
#include <map>
#include <set>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "rtl/traverse.hpp"
#include "sim/schedule.hpp"
#include "support/diagnostics.hpp"

namespace rtlock::analysis {

namespace {

using rtl::Expr;
using rtl::ExprKind;
using rtl::Module;
using rtl::Process;
using rtl::ProcessKind;
using rtl::SignalId;
using rtl::Stmt;
using rtl::StmtKind;

/// One write site of a signal, for the multiple-driver check.
struct DriverSite {
  const Process* process = nullptr;  // nullptr = continuous assignment
  int contIndex = -1;                // index into contAssigns() when process == nullptr
  int hi = 0;                        // driven range (whole signal when no slice)
  int lo = 0;
};

class Verifier {
 public:
  Verifier(const Module& module, const VerifyOptions& options)
      : module_(module), options_(options) {}

  std::vector<Diagnostic> run() {
    checkSignalTable();
    checkDrivers();
    checkProcesses();
    checkMultipleDrivers();
    checkUndrivenSignals();
    checkKeyCoverage();
    checkSchedule();
    return std::move(diags_);
  }

 private:
  void emit(Check check, Severity severity, std::string context, std::string message) {
    diags_.push_back(
        {check, severity, module_.name(), std::move(context), std::move(message)});
  }

  [[nodiscard]] bool validSignal(SignalId id) const noexcept {
    return id < module_.signalCount();
  }

  [[nodiscard]] std::string signalName(SignalId id) const {
    return validSignal(id) ? module_.signal(id).name : "<signal " + std::to_string(id) + ">";
  }

  // ---- signal table ---------------------------------------------------------

  void checkSignalTable() {
    std::unordered_set<std::string> seen;
    for (std::size_t id = 0; id < module_.signalCount(); ++id) {
      const rtl::Signal& signal = module_.signal(static_cast<SignalId>(id));
      if (signal.width < 1) {
        emit(Check::SignalWidthMismatch, Severity::Error, signal.name,
             "declared width " + std::to_string(signal.width) + " is below 1");
      }
      if (!seen.insert(signal.name).second) {
        emit(Check::NameCollision, Severity::Error, signal.name, "duplicate signal name");
      }
      if (module_.keyWidth() > 0 && signal.name == module_.keyPortName()) {
        emit(Check::NameCollision, Severity::Error, signal.name,
             "signal name collides with the implicit key port '" + module_.keyPortName() + "'");
      }
    }
  }

  // ---- expressions ----------------------------------------------------------

  [[nodiscard]] static int expectedWidth(const Expr& expr) {
    switch (expr.kind()) {
      case ExprKind::Constant:
      case ExprKind::SignalRef:
      case ExprKind::KeyRef:
        return expr.width();  // leaves carry their own width; checked separately
      case ExprKind::Unary:
      case ExprKind::Binary:
      case ExprKind::Ternary:
        // Operator nodes may carry any explicit width: the simulator masks or
        // zero-extends every result to the node's width, so narrowing and
        // widening are both well-defined IR.  The lock engine relies on this —
        // a key mux carries the real operation's width while its dummy branch
        // keeps the natural width of its own operator kind (e.g. a Mul dummy
        // standing in for an Add).  Only structurally determined widths
        // (concat, slice) are invariants worth enforcing.
        return expr.width();
      case ExprKind::Concat: {
        int total = 0;
        for (int i = 0; i < expr.exprSlotCount(); ++i) total += expr.exprAt(i).width();
        return total;
      }
      case ExprKind::Slice: {
        const auto& slice = static_cast<const rtl::SliceExpr&>(expr);
        return slice.hi() - slice.lo() + 1;
      }
    }
    RTLOCK_UNREACHABLE("expr kind");
  }

  void checkExprTree(const Expr& root, const std::string& context) {
    rtl::forEachExpr(root, [&](const Expr& node) {
      switch (node.kind()) {
        case ExprKind::SignalRef: {
          const auto& ref = static_cast<const rtl::SignalRefExpr&>(node);
          if (!validSignal(ref.signal())) {
            emit(Check::SignalOutOfRange, Severity::Error, context,
                 "reference to signal id " + std::to_string(ref.signal()) + " outside a table of " +
                     std::to_string(module_.signalCount()) + " signals");
          } else if (ref.width() != module_.signal(ref.signal()).width) {
            emit(Check::SignalWidthMismatch, Severity::Error, context,
                 "reference to '" + signalName(ref.signal()) + "' is " +
                     std::to_string(ref.width()) + " bits wide, declaration says " +
                     std::to_string(module_.signal(ref.signal()).width));
          }
          break;
        }
        case ExprKind::KeyRef: {
          const auto& ref = static_cast<const rtl::KeyRefExpr&>(node);
          if (ref.firstBit() + ref.width() > module_.keyWidth()) {
            emit(Check::KeyRefOutOfRange, Severity::Error, context,
                 "key reference K[" + std::to_string(ref.firstBit()) + " +: " +
                     std::to_string(ref.width()) + "] exceeds key width " +
                     std::to_string(module_.keyWidth()));
          }
          break;
        }
        case ExprKind::Slice: {
          const auto& slice = static_cast<const rtl::SliceExpr&>(node);
          if (slice.lo() < 0 || slice.hi() < slice.lo() ||
              slice.hi() >= slice.value().width()) {
            emit(Check::SliceOutOfRange, Severity::Error, context,
                 "slice [" + std::to_string(slice.hi()) + ":" + std::to_string(slice.lo()) +
                     "] outside a " + std::to_string(slice.value().width()) + "-bit base");
            break;  // width recomputation would be meaningless
          }
          checkNodeWidth(node, context);
          break;
        }
        default: checkNodeWidth(node, context); break;
      }
    });
  }

  void checkNodeWidth(const Expr& node, const std::string& context) {
    const int expected = expectedWidth(node);
    if (node.width() != expected) {
      emit(Check::ExprWidthMismatch, Severity::Error, context,
           "node carries width " + std::to_string(node.width()) + ", operands imply " +
               std::to_string(expected));
    }
  }

  // ---- drivers --------------------------------------------------------------

  void checkDrivers() {
    int contIndex = 0;
    rtl::forEachDriver(module_, [&](const rtl::LValue& target, const Expr& value,
                                    rtl::DriverKind kind, const Process* process) {
      const std::string context =
          process == nullptr
              ? "assign #" + std::to_string(contIndex) + " to " + signalName(target.signal)
              : "process #" + std::to_string(processIndex(process)) + " assign to " +
                    signalName(target.signal);
      checkExprTree(value, context);
      checkAssignTarget(target, value, kind, context);
      recordDriver(target, process, contIndex);
      if (process == nullptr) ++contIndex;
    });
  }

  [[nodiscard]] int processIndex(const Process* process) const {
    const auto& processes = module_.processes();
    for (std::size_t i = 0; i < processes.size(); ++i) {
      if (processes[i].get() == process) return static_cast<int>(i);
    }
    return -1;
  }

  void checkAssignTarget(const rtl::LValue& target, const Expr& value, rtl::DriverKind kind,
                         const std::string& context) {
    if (!validSignal(target.signal)) {
      emit(Check::AssignOutOfRange, Severity::Error, context,
           "assignment target id " + std::to_string(target.signal) + " outside the signal table");
      return;
    }
    const rtl::Signal& signal = module_.signal(target.signal);
    int targetWidth = signal.width;
    if (target.range.has_value()) {
      const auto [hi, lo] = *target.range;
      if (lo < 0 || hi < lo || hi >= signal.width) {
        emit(Check::AssignOutOfRange, Severity::Error, context,
             "target slice [" + std::to_string(hi) + ":" + std::to_string(lo) + "] outside the " +
                 std::to_string(signal.width) + "-bit declaration");
        return;
      }
      targetWidth = hi - lo + 1;
    }
    if (signal.isPort && signal.dir == rtl::PortDir::Input) {
      emit(Check::DrivenInput, Severity::Error, context, "assignment drives an input port");
    }
    if (kind == rtl::DriverKind::ContAssign && signal.net != rtl::NetKind::Wire) {
      emit(Check::ProcessDiscipline, Severity::Error, context,
           "continuous assignment drives a reg");
    }
    if (kind != rtl::DriverKind::ContAssign && signal.net != rtl::NetKind::Reg) {
      emit(Check::ProcessDiscipline, Severity::Error, context,
           "procedural assignment drives a wire");
    }
    if (value.width() != targetWidth) {
      emit(Check::AssignWidthMismatch, Severity::Warning, context,
           "a " + std::to_string(value.width()) + "-bit value drives a " +
               std::to_string(targetWidth) + "-bit target (implicit resize)");
    }
  }

  void recordDriver(const rtl::LValue& target, const Process* process, int contIndex) {
    if (!validSignal(target.signal)) return;
    DriverSite site;
    site.process = process;
    site.contIndex = process == nullptr ? contIndex : -1;
    site.hi = module_.signal(target.signal).width - 1;
    site.lo = 0;
    if (target.range.has_value()) {
      site.hi = target.range->first;
      site.lo = target.range->second;
    }
    driversOf_[target.signal].push_back(site);
  }

  void checkMultipleDrivers() {
    for (std::size_t id = 0; id < module_.signalCount(); ++id) {
      const auto it = driversOf_.find(static_cast<SignalId>(id));
      if (it == driversOf_.end()) continue;
      const std::vector<DriverSite>& sites = it->second;
      const std::string name = signalName(static_cast<SignalId>(id));
      // Continuous assignments must not overlap each other.
      for (std::size_t a = 0; a < sites.size(); ++a) {
        if (sites[a].process != nullptr) continue;
        for (std::size_t b = a + 1; b < sites.size(); ++b) {
          if (sites[b].process != nullptr) continue;
          if (sites[a].lo <= sites[b].hi && sites[b].lo <= sites[a].hi) {
            emit(Check::MultipleDrivers, Severity::Error, name,
                 "driven by overlapping continuous assignments #" +
                     std::to_string(sites[a].contIndex) + " and #" +
                     std::to_string(sites[b].contIndex));
          }
        }
      }
      // A signal is owned by continuous logic or by exactly one process.
      const Process* owner = nullptr;
      bool hasCont = false;
      bool mixed = false;
      std::unordered_set<const Process*> processes;
      for (const DriverSite& site : sites) {
        if (site.process == nullptr) {
          hasCont = true;
        } else {
          processes.insert(site.process);
          owner = site.process;
        }
      }
      mixed = hasCont && owner != nullptr;
      if (mixed) {
        emit(Check::MultipleDrivers, Severity::Error, name,
             "driven by both a continuous assignment and a process");
      }
      if (processes.size() > 1) {
        emit(Check::MultipleDrivers, Severity::Error, name,
             "driven by " + std::to_string(processes.size()) + " distinct processes");
      }
    }
  }

  void checkUndrivenSignals() {
    std::vector<bool> read(module_.signalCount(), false);
    rtl::forEachExpr(module_, [&](const Expr& node) {
      if (node.kind() != ExprKind::SignalRef) return;
      const auto& ref = static_cast<const rtl::SignalRefExpr&>(node);
      if (validSignal(ref.signal())) read[ref.signal()] = true;
    });
    for (const auto& process : module_.processes()) {
      if (process->kind == ProcessKind::Sequential && validSignal(process->clock)) {
        read[process->clock] = true;
      }
    }
    for (std::size_t id = 0; id < module_.signalCount(); ++id) {
      const rtl::Signal& signal = module_.signal(static_cast<SignalId>(id));
      if (signal.isPort && signal.dir == rtl::PortDir::Input) continue;
      const bool driven = driversOf_.contains(static_cast<SignalId>(id));
      const bool isOutput = signal.isPort && signal.dir == rtl::PortDir::Output;
      if (!driven && (read[id] || isOutput)) {
        emit(Check::UndrivenSignal, Severity::Warning, signal.name,
             isOutput ? "output port is never driven" : "signal is read but never driven");
      }
    }
  }

  // ---- processes ------------------------------------------------------------

  void checkProcesses() {
    const auto& processes = module_.processes();
    for (std::size_t index = 0; index < processes.size(); ++index) {
      const Process& process = *processes[index];
      const std::string context = "process #" + std::to_string(index);
      if (process.kind == ProcessKind::Sequential) {
        if (!validSignal(process.clock)) {
          emit(Check::BadClock, Severity::Error, context,
               "clock id " + std::to_string(process.clock) + " outside the signal table");
        } else if (module_.signal(process.clock).width != 1) {
          emit(Check::BadClock, Severity::Error, context,
               "clock '" + signalName(process.clock) + "' is " +
                   std::to_string(module_.signal(process.clock).width) + " bits wide");
        }
      }
      checkDiscipline(process, context);
      checkCaseLabels(*process.body, context);
      if (process.kind == ProcessKind::Combinational) {
        checkUseBeforeDef(process, context);
      }
    }
  }

  void checkDiscipline(const Process& process, const std::string& context) {
    rtl::forEachStmt(*process.body, [&](const Stmt& node) {
      if (node.kind() != StmtKind::Assign) return;
      const auto& assign = static_cast<const rtl::AssignStmt&>(node);
      if (process.kind == ProcessKind::Combinational && assign.nonBlocking()) {
        emit(Check::ProcessDiscipline, Severity::Error, context,
             "non-blocking assignment inside always @(*)");
      }
      if (process.kind == ProcessKind::Sequential && !assign.nonBlocking()) {
        emit(Check::ProcessDiscipline, Severity::Error, context,
             "blocking assignment inside a clocked process");
      }
    });
  }

  void checkCaseLabels(const Stmt& stmt, const std::string& context) {
    rtl::forEachStmt(stmt, [&](const Stmt& node) {
      if (node.kind() != StmtKind::Case) return;
      const auto& caseStmt = static_cast<const rtl::CaseStmt&>(node);
      const int width = caseStmt.subject().width();
      if (width >= 64) return;
      const std::uint64_t bound = std::uint64_t{1} << width;
      for (const rtl::CaseItem& item : caseStmt.items()) {
        for (const std::uint64_t label : item.labels) {
          if (label >= bound) {
            emit(Check::CaseLabelOverflow, Severity::Warning, context,
                 "case label " + std::to_string(label) + " never matches a " +
                     std::to_string(width) + "-bit subject");
          }
        }
      }
    });
  }

  /// Definite-assignment analysis inside one combinational process: a read
  /// of a signal this process itself drives must come after an assignment on
  /// every path, otherwise the read sees the previous settle iteration.
  void checkUseBeforeDef(const Process& process, const std::string& context) {
    std::set<SignalId> readsIgnored;
    std::set<SignalId> writes;
    sim::collectStmtReadsWrites(*process.body, readsIgnored, writes);
    std::vector<bool> defined(module_.signalCount(), false);
    std::unordered_set<SignalId> reported;
    walkDefiniteAssignment(*process.body, writes, defined, reported, context);
  }

  void reportReads(const Expr& expr, const std::set<SignalId>& writes,
                   const std::vector<bool>& defined, std::unordered_set<SignalId>& reported,
                   const std::string& context) {
    rtl::forEachExpr(expr, [&](const Expr& node) {
      if (node.kind() != ExprKind::SignalRef) return;
      const SignalId id = static_cast<const rtl::SignalRefExpr&>(node).signal();
      if (!validSignal(id) || !writes.contains(id) || defined[id] || reported.contains(id)) {
        return;
      }
      reported.insert(id);
      emit(Check::UseBeforeDef, Severity::Warning, context,
           "'" + signalName(id) + "' is read before the process assigns it");
    });
  }

  void walkDefiniteAssignment(const Stmt& stmt, const std::set<SignalId>& writes,
                              std::vector<bool>& defined, std::unordered_set<SignalId>& reported,
                              const std::string& context) {
    switch (stmt.kind()) {
      case StmtKind::Block:
        for (int i = 0; i < stmt.stmtSlotCount(); ++i) {
          walkDefiniteAssignment(stmt.stmtAt(i), writes, defined, reported, context);
        }
        return;
      case StmtKind::Assign: {
        const auto& assign = static_cast<const rtl::AssignStmt&>(stmt);
        reportReads(assign.value(), writes, defined, reported, context);
        if (validSignal(assign.target().signal)) defined[assign.target().signal] = true;
        return;
      }
      case StmtKind::If: {
        const auto& ifStmt = static_cast<const rtl::IfStmt&>(stmt);
        reportReads(ifStmt.cond(), writes, defined, reported, context);
        std::vector<bool> thenDefined = defined;
        walkDefiniteAssignment(ifStmt.stmtAt(0), writes, thenDefined, reported, context);
        if (ifStmt.hasElse()) {
          std::vector<bool> elseDefined = defined;
          walkDefiniteAssignment(ifStmt.stmtAt(1), writes, elseDefined, reported, context);
          for (std::size_t i = 0; i < defined.size(); ++i) {
            defined[i] = defined[i] || (thenDefined[i] && elseDefined[i]);
          }
        }
        return;
      }
      case StmtKind::Case: {
        const auto& caseStmt = static_cast<const rtl::CaseStmt&>(stmt);
        reportReads(caseStmt.subject(), writes, defined, reported, context);
        std::vector<bool> merged;
        bool first = true;
        for (int i = 0; i < stmt.stmtSlotCount(); ++i) {
          std::vector<bool> armDefined = defined;
          walkDefiniteAssignment(stmt.stmtAt(i), writes, armDefined, reported, context);
          if (first) {
            merged = std::move(armDefined);
            first = false;
          } else {
            for (std::size_t b = 0; b < merged.size(); ++b) {
              merged[b] = merged[b] && armDefined[b];
            }
          }
        }
        // Only a case with a default arm guarantees one arm ran.
        if (caseStmt.hasDefault() && !first) defined = std::move(merged);
        return;
      }
    }
    RTLOCK_UNREACHABLE("stmt kind");
  }

  // ---- key coverage ---------------------------------------------------------

  void checkKeyCoverage() {
    if (module_.keyWidth() <= 0) return;
    std::vector<bool> referenced(static_cast<std::size_t>(module_.keyWidth()), false);
    rtl::forEachExpr(module_, [&](const Expr& node) {
      if (node.kind() != ExprKind::KeyRef) return;
      const auto& ref = static_cast<const rtl::KeyRefExpr&>(node);
      const int end = std::min(ref.firstBit() + ref.width(), module_.keyWidth());
      for (int bit = ref.firstBit(); bit < end; ++bit) {
        referenced[static_cast<std::size_t>(bit)] = true;
      }
    });
    int runStart = -1;
    for (int bit = 0; bit <= module_.keyWidth(); ++bit) {
      const bool covered = bit == module_.keyWidth() || referenced[static_cast<std::size_t>(bit)];
      if (!covered && runStart < 0) runStart = bit;
      if (covered && runStart >= 0) {
        const int runEnd = bit - 1;
        const std::string range = runStart == runEnd
                                      ? "key bit " + std::to_string(runStart)
                                      : "key bits " + std::to_string(runStart) + ".." +
                                            std::to_string(runEnd);
        emit(Check::DanglingKeyBit, Severity::Warning, range,
             "allocated but never referenced by the netlist");
        runStart = -1;
      }
    }
  }

  // ---- schedule -------------------------------------------------------------

  void checkSchedule() {
    if (!options_.checkSchedule || hasErrors(diags_)) return;
    try {
      (void)sim::buildSchedule(module_);
    } catch (const support::Error& error) {
      emit(Check::CombinationalLoop, Severity::Error, "", error.what());
    }
  }

  const Module& module_;
  const VerifyOptions& options_;
  std::vector<Diagnostic> diags_;
  std::map<SignalId, std::vector<DriverSite>> driversOf_;
};

}  // namespace

std::vector<Diagnostic> verify(const Module& module, const VerifyOptions& options) {
  return Verifier{module, options}.run();
}

std::vector<Diagnostic> verify(const rtl::Design& design, const VerifyOptions& options) {
  std::vector<Diagnostic> all;
  for (std::size_t i = 0; i < design.moduleCount(); ++i) {
    std::vector<Diagnostic> found = verify(design.module(i), options);
    all.insert(all.end(), std::make_move_iterator(found.begin()),
               std::make_move_iterator(found.end()));
  }
  return all;
}

void verifyOrThrow(const Module& module, std::string_view when) {
  const std::vector<Diagnostic> diags = verify(module);
  if (!hasErrors(diags)) return;
  support::raiseContractViolation(
      "analysis::verify(module) is clean",
      "IR verification failed " + std::string{when} + " for module '" + module.name() + "':\n" +
          describeAll(diags),
      __FILE__, __LINE__);
}

void requireVerified(const Module& module, std::string_view origin) {
  const std::vector<Diagnostic> diags = verify(module);
  if (!hasErrors(diags)) return;
  std::string message{origin};
  message += ": module '" + module.name() + "' fails IR verification:\n";
  for (const Diagnostic& diagnostic : diags) {
    if (diagnostic.severity == Severity::Error) message += describe(diagnostic) + "\n";
  }
  throw support::Error{message};
}

}  // namespace rtlock::analysis
