#include "analysis/lint.hpp"

#include <optional>
#include <string>

#include "analysis/key_influence.hpp"
#include "rtl/traverse.hpp"
#include "sim/op_eval.hpp"

namespace rtlock::analysis {

namespace {

using rtl::Expr;
using rtl::ExprKind;

/// Folds an expression to its constant value when it contains no signal or
/// key leaves.  Restricted to widths <= 64 (the ConstantExpr subset); wider
/// or non-constant trees return nullopt.  Semantics come from the simulator's
/// shared operator kernels, so the fold can never disagree with execution.
std::optional<std::uint64_t> tryFoldConstant(const Expr& expr) {
  if (expr.width() > 64) return std::nullopt;
  switch (expr.kind()) {
    case ExprKind::Constant:
      return static_cast<const rtl::ConstantExpr&>(expr).value();
    case ExprKind::SignalRef:
    case ExprKind::KeyRef:
      return std::nullopt;
    case ExprKind::Unary: {
      const auto& unary = static_cast<const rtl::UnaryExpr&>(expr);
      const auto operand = tryFoldConstant(unary.operand());
      if (!operand) return std::nullopt;
      return sim::evalUnaryOp(unary.op(), sim::BitVector{*operand, unary.operand().width()},
                              expr.width())
          .toUint64();
    }
    case ExprKind::Binary: {
      const auto& binary = static_cast<const rtl::BinaryExpr&>(expr);
      const auto lhs = tryFoldConstant(binary.lhs());
      const auto rhs = tryFoldConstant(binary.rhs());
      if (!lhs || !rhs) return std::nullopt;
      return sim::evalBinaryOp(binary.op(), sim::BitVector{*lhs, binary.lhs().width()},
                               sim::BitVector{*rhs, binary.rhs().width()}, expr.width())
          .toUint64();
    }
    case ExprKind::Ternary: {
      const auto& ternary = static_cast<const rtl::TernaryExpr&>(expr);
      const auto cond = tryFoldConstant(ternary.cond());
      if (!cond) return std::nullopt;
      const auto chosen = tryFoldConstant(*cond != 0 ? ternary.thenExpr() : ternary.elseExpr());
      if (!chosen) return std::nullopt;
      return rtl::ConstantExpr::maskToWidth(*chosen, expr.width());
    }
    case ExprKind::Concat: {
      std::uint64_t value = 0;
      for (int i = 0; i < expr.exprSlotCount(); ++i) {
        const Expr& part = expr.exprAt(i);
        const auto folded = tryFoldConstant(part);
        if (!folded) return std::nullopt;
        value = (value << part.width()) | *folded;
      }
      return rtl::ConstantExpr::maskToWidth(value, expr.width());
    }
    case ExprKind::Slice: {
      const auto& slice = static_cast<const rtl::SliceExpr&>(expr);
      const auto base = tryFoldConstant(slice.value());
      if (!base) return std::nullopt;
      return rtl::ConstantExpr::maskToWidth(*base >> slice.lo(), expr.width());
    }
  }
  return std::nullopt;
}

}  // namespace

LintReport lintLocked(const rtl::Module& module) {
  LintReport report;
  const KeyInfluence influence{module};
  report.summary.keyWidth = influence.keyWidth();

  const auto emit = [&](Check check, std::string context, std::string message) {
    report.findings.push_back(
        {check, Severity::Warning, module.name(), std::move(context), std::move(message)});
  };

  // Mux-shape findings, in module traversal order.
  int muxIndex = 0;
  rtl::forEachExpr(module, [&](const Expr& node) {
    if (node.kind() != ExprKind::Ternary) return;
    const auto& ternary = static_cast<const rtl::TernaryExpr&>(node);
    const int index = muxIndex++;
    if (ternary.isKeyMux()) ++report.summary.keyMuxes;
    const std::string context = "mux #" + std::to_string(index);
    if (const auto select = tryFoldConstant(ternary.cond())) {
      ++report.summary.constantSelectMuxes;
      emit(Check::ConstantSelectMux, context,
           "select constant-folds to " + std::to_string(*select) +
               " — constant propagation deletes the " + (*select != 0 ? "else" : "then") +
               " arm");
    }
    if (ternary.isKeyMux() && structurallyEqual(ternary.thenExpr(), ternary.elseExpr())) {
      ++report.summary.identicalArmMuxes;
      const auto& select = static_cast<const rtl::KeyRefExpr&>(ternary.cond());
      emit(Check::IdenticalArmsMux, context,
           "key bit " + std::to_string(select.firstBit()) +
               " selects between syntactically identical arms — the mux is removable");
    }
  });

  // Per-bit influence facts and L201 findings.
  report.bits.reserve(static_cast<std::size_t>(influence.keyWidth()));
  for (int bit = 0; bit < influence.keyWidth(); ++bit) {
    KeyBitLint info;
    info.bit = bit;
    info.reachesOutput = influence.reachesOutput(bit);
    info.refCount = influence.refCount(bit);
    info.muxCount = influence.muxCount(bit);
    report.bits.push_back(info);
    if (!info.reachesOutput) {
      ++report.summary.freeKeyBits;
      emit(Check::FreeKeyBit, "key bit " + std::to_string(bit),
           info.refCount == 0
               ? "never referenced — any guess is correct"
               : "cone of influence reaches no output — any guess is correct");
    }
  }

  report.summary.staticResiliencePercent =
      report.summary.keyWidth == 0
          ? 0.0
          : 100.0 *
                static_cast<double>(report.summary.keyWidth - report.summary.freeKeyBits) /
                static_cast<double>(report.summary.keyWidth);
  return report;
}

}  // namespace rtlock::analysis
