// Tier A of the static-analysis subsystem: the IR verifier.
//
// verify() machine-checks the invariants every well-formed module satisfies
// after parse, generation, locking and undo — width consistency across the
// expression tree, signal/key reference validity, driver uniqueness,
// combinational acyclicity (via the simulator's levelization), process
// discipline and definite-assignment order inside combinational processes.
// The full check catalog with codes and severities lives in
// docs/ANALYSIS.md.
//
// Policy lives with the caller:
//  * Debug builds assert the IR through RTLOCK_DEBUG_VERIFY_IR after every
//    parse, engine construction and completed lock/undo cycle — an
//    Error-severity finding there is a bug in rtlock and raises
//    ContractViolation.
//  * The Verilog front end rejects structurally broken *input* (multiple
//    drivers, driven inputs, comb loops) through requireVerified, which
//    raises the user-facing support::Error instead.
//  * `rtlock lint` renders every severity.
//
// Contract --------------------------------------------------------------------
// Ownership: verify borrows the module for the duration of the call and
//   allocates only its result.
// Determinism: findings are a pure function of the module, emitted in a
//   stable order (signal table, then drivers in module order, then schedule).
// Thread-safety: safe concurrently on distinct modules; concurrent verify of
//   one module is safe with any other const reader.
#pragma once

#include <string_view>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "rtl/module.hpp"

namespace rtlock::analysis {

struct VerifyOptions {
  /// Levelize the combinational logic to detect dependency cycles (V111).
  /// Skipped automatically while structural errors are present.
  bool checkSchedule = true;
};

/// Verifies one module; findings in stable order, empty = clean.
[[nodiscard]] std::vector<Diagnostic> verify(const rtl::Module& module,
                                             const VerifyOptions& options = {});

/// Verifies every module of a design (module order).
[[nodiscard]] std::vector<Diagnostic> verify(const rtl::Design& design,
                                             const VerifyOptions& options = {});

/// Raises support::ContractViolation listing every finding when `module` has
/// an Error-severity finding.  `when` names the call site ("after parse").
void verifyOrThrow(const rtl::Module& module, std::string_view when);

/// Raises the user-facing support::Error listing every Error-severity
/// finding — the front end's rejection path for structurally broken input.
void requireVerified(const rtl::Module& module, std::string_view origin);

}  // namespace rtlock::analysis

/// Debug-build IR assertion: full verify, ContractViolation on errors.
/// Compiled out in NDEBUG builds — call sites sit on paths (lock/undo
/// cycles) that release experiments traverse millions of times.
#ifndef NDEBUG
#define RTLOCK_DEBUG_VERIFY_IR(module, when) ::rtlock::analysis::verifyOrThrow((module), (when))
#else
#define RTLOCK_DEBUG_VERIFY_IR(module, when) \
  do {                                       \
  } while (false)
#endif
