// Random module generation for property-based testing (fuzzing the parser,
// writer, locking engine and simulator with structurally diverse designs).
#pragma once

#include "rtl/module.hpp"
#include "support/rng.hpp"

namespace rtlock::designs {

struct RandomModuleParams {
  int operations = 30;       // binary operations to generate
  int maxWidth = 16;         // signal widths drawn from [1, maxWidth]
  bool sequential = true;    // add a clocked process over some wires
  bool useTernaries = true;  // sprinkle design (non-key) muxes
  bool useSlices = true;     // bit/part selects and concatenations
};

/// Generates a well-formed, loop-free module: every expression references
/// only previously declared signals, all widths are consistent, and the
/// design always has at least one input and one output.
[[nodiscard]] rtl::Module makeRandomModule(support::Rng& rng,
                                           const RandomModuleParams& params = {});

}  // namespace rtlock::designs
