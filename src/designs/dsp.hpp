// DSP benchmark generators: FIR, IIR, DFT, IDFT.
//
// Operation-mix stand-ins for the DSP circuits of the ASSURE benchmark suite
// (see DESIGN.md substitution table).  All are fixed-point, three-address,
// single-clock designs; coefficient constants are real expression nodes so
// constant obfuscation has material to work on.
#pragma once

#include "rtl/module.hpp"

namespace rtlock::designs {

/// Direct-form FIR filter: `taps` multiply-accumulate stages over a register
/// delay line.  Heavily imbalanced: muls and adds with no divs/subs.
[[nodiscard]] rtl::Module makeFir(int taps = 32, int width = 16);

/// Cascade of `sections` biquad (Direct Form I) sections.  Mix of mul, add
/// and sub with feedback registers.
[[nodiscard]] rtl::Module makeIir(int sections = 8, int width = 16);

/// Radix-2 decimation-in-time FFT butterfly network over `points` samples
/// (fixed twiddle constants).  Balanced add/sub from the butterflies,
/// imbalanced mul.
[[nodiscard]] rtl::Module makeDft(int points = 16, int width = 16);

/// Inverse transform: same butterfly structure plus per-stage scaling shifts.
[[nodiscard]] rtl::Module makeIdft(int points = 16, int width = 16);

}  // namespace rtlock::designs
