// Cryptographic benchmark generators: MD5, SHA256, RSA, DES3.
//
// Round-structured stand-ins matching the operation mixes of the original
// circuits: modular adders + boolean round functions + rotations (MD5/SHA),
// square-and-multiply modular arithmetic (RSA), and a xor/permutation
// Feistel network (DES3).  Round constants are expression-level constants.
#pragma once

#include "rtl/module.hpp"

namespace rtlock::designs {

/// MD5-style round pipeline (F/G/H/I boolean mixes, modular adds, rotates).
[[nodiscard]] rtl::Module makeMd5(int rounds = 16, int width = 32);

/// SHA-256-style round pipeline (Sigma rotations, Ch/Maj, modular adds).
[[nodiscard]] rtl::Module makeSha256(int rounds = 12, int width = 32);

/// RSA modular exponentiation datapath (square-and-multiply iterations).
[[nodiscard]] rtl::Module makeRsa(int iterations = 16, int width = 32);

/// Triple-DES-style Feistel network (xor/permutation heavy, no arithmetic).
[[nodiscard]] rtl::Module makeDes3(int rounds = 12, int width = 32);

}  // namespace rtlock::designs
