// Benchmark registry: the 14 evaluation designs of the paper by name.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "rtl/module.hpp"

namespace rtlock::designs {

struct BenchmarkInfo {
  std::string name;
  std::string description;
  std::function<rtl::Module()> make;
};

/// All benchmarks in the paper's Fig. 6 order:
/// DES3, DFT, FIR, IDFT, IIR, MD5, RSA, SHA256, SASC, SIM_SPI, USB_PHY,
/// I2C_SL, N_2046, N_1023.
[[nodiscard]] const std::vector<BenchmarkInfo>& allBenchmarks();

/// Lookup by name (case-sensitive).  Throws support::Error for unknown names.
[[nodiscard]] rtl::Module makeBenchmark(const std::string& name);

/// Names only, in Fig. 6 order.
[[nodiscard]] std::vector<std::string> benchmarkNames();

}  // namespace rtlock::designs
