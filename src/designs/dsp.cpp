#include "designs/dsp.hpp"

#include "rtl/builder.hpp"
#include "support/diagnostics.hpp"

namespace rtlock::designs {

namespace {

using rtl::ModuleBuilder;
using rtl::OpKind;
using rtl::SignalId;

/// Deterministic pseudo-coefficients (no RNG: benchmarks are fixed designs).
[[nodiscard]] std::uint64_t coefficient(int index, int width) noexcept {
  std::uint64_t value = 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(index + 1);
  value ^= value >> 29;
  const std::uint64_t mask = width >= 64 ? ~0ULL : ((1ULL << width) - 1);
  return (value & mask) | 1u;  // odd, non-zero
}

}  // namespace

rtl::Module makeFir(int taps, int width) {
  RTLOCK_REQUIRE(taps >= 2, "FIR needs at least two taps");
  ModuleBuilder b{"FIR"};
  const auto clk = b.input("clk", 1);
  const auto x = b.input("x", width);
  const auto y = b.output("y", width);

  // Delay line x0..x{taps-1}.
  std::vector<SignalId> delays;
  delays.reserve(static_cast<std::size_t>(taps));
  for (int t = 0; t < taps; ++t) {
    delays.push_back(b.reg("d" + std::to_string(t), width));
  }
  b.regAssign(clk, delays[0], b.ref(x));
  for (int t = 1; t < taps; ++t) {
    b.regAssign(clk, delays[static_cast<std::size_t>(t)],
                b.ref(delays[static_cast<std::size_t>(t - 1)]));
  }

  // Multiply-accumulate chain: taps muls, taps-1 adds.
  SignalId acc = 0;
  for (int t = 0; t < taps; ++t) {
    const auto product = b.wire("p" + std::to_string(t), width);
    b.assign(product, b.mul(b.ref(delays[static_cast<std::size_t>(t)]),
                            b.lit(coefficient(t, width), width)));
    if (t == 0) {
      acc = product;
    } else {
      const auto sum = b.wire("s" + std::to_string(t), width);
      b.assign(sum, b.add(b.ref(acc), b.ref(product)));
      acc = sum;
    }
  }
  b.assign(y, b.ref(acc));
  return b.take();
}

rtl::Module makeIir(int sections, int width) {
  RTLOCK_REQUIRE(sections >= 1, "IIR needs at least one section");
  ModuleBuilder b{"IIR"};
  const auto clk = b.input("clk", 1);
  const auto x = b.input("x", width);
  const auto y = b.output("y", width);

  SignalId stageIn = x;
  for (int s = 0; s < sections; ++s) {
    const std::string tag = std::to_string(s);
    // Direct Form I state: two input delays, two output delays.
    const auto x1 = b.reg("x1_" + tag, width);
    const auto x2 = b.reg("x2_" + tag, width);
    const auto y1 = b.reg("y1_" + tag, width);
    const auto y2 = b.reg("y2_" + tag, width);

    // Feed-forward: b0*x + b1*x1 + b2*x2 (3 muls, 2 adds).
    const auto ff0 = b.wire("ff0_" + tag, width);
    const auto ff1 = b.wire("ff1_" + tag, width);
    const auto ff2 = b.wire("ff2_" + tag, width);
    b.assign(ff0, b.mul(b.ref(stageIn), b.lit(coefficient(5 * s, width), width)));
    b.assign(ff1, b.mul(b.ref(x1), b.lit(coefficient(5 * s + 1, width), width)));
    b.assign(ff2, b.mul(b.ref(x2), b.lit(coefficient(5 * s + 2, width), width)));
    const auto ffa = b.wire("ffa_" + tag, width);
    const auto ffb = b.wire("ffb_" + tag, width);
    b.assign(ffa, b.add(b.ref(ff0), b.ref(ff1)));
    b.assign(ffb, b.add(b.ref(ffa), b.ref(ff2)));

    // Feedback: - a1*y1 - a2*y2 (2 muls, 2 subs).
    const auto fb1 = b.wire("fb1_" + tag, width);
    const auto fb2 = b.wire("fb2_" + tag, width);
    b.assign(fb1, b.mul(b.ref(y1), b.lit(coefficient(5 * s + 3, width), width)));
    b.assign(fb2, b.mul(b.ref(y2), b.lit(coefficient(5 * s + 4, width), width)));
    const auto da = b.wire("da_" + tag, width);
    const auto out = b.wire("out_" + tag, width);
    b.assign(da, b.sub(b.ref(ffb), b.ref(fb1)));
    b.assign(out, b.sub(b.ref(da), b.ref(fb2)));

    b.regAssign(clk, x1, b.ref(stageIn));
    b.regAssign(clk, x2, b.ref(x1));
    b.regAssign(clk, y1, b.ref(out));
    b.regAssign(clk, y2, b.ref(y1));
    stageIn = out;
  }
  b.assign(y, b.ref(stageIn));
  return b.take();
}

namespace {

/// Shared butterfly network for DFT/IDFT.  `inverse` adds per-stage scaling
/// shifts (>> 1) as IFFTs commonly do in fixed point.
rtl::Module makeTransform(const char* name, int points, int width, bool inverse) {
  RTLOCK_REQUIRE(points >= 4 && (points & (points - 1)) == 0,
                 "transform size must be a power of two >= 4");
  ModuleBuilder b{name};
  const auto xr = b.input("xr", width);
  const auto xi = b.input("xi", width);
  const auto yr = b.output("yr", width);
  const auto yi = b.output("yi", width);

  int stages = 0;
  for (int n = points; n > 1; n >>= 1) ++stages;
  const int butterfliesPerStage = points / 2;

  // Streaming butterfly network: values flow through stage wires.
  SignalId ar = xr;
  SignalId ai = xi;
  int coeff = 0;
  int wireId = 0;
  for (int stage = 0; stage < stages; ++stage) {
    for (int k = 0; k < butterfliesPerStage; ++k) {
      const std::string tag = std::to_string(wireId++);
      // Complex twiddle multiply: (ar*wr - ai*wi), (ar*wi + ai*wr).
      const auto m0 = b.wire("m0_" + tag, width);
      const auto m1 = b.wire("m1_" + tag, width);
      const auto m2 = b.wire("m2_" + tag, width);
      const auto m3 = b.wire("m3_" + tag, width);
      const std::uint64_t wr = coefficient(coeff++, width);
      const std::uint64_t wi = coefficient(coeff++, width);
      b.assign(m0, b.mul(b.ref(ar), b.lit(wr, width)));
      b.assign(m1, b.mul(b.ref(ai), b.lit(wi, width)));
      b.assign(m2, b.mul(b.ref(ar), b.lit(wi, width)));
      b.assign(m3, b.mul(b.ref(ai), b.lit(wr, width)));
      const auto tr = b.wire("tr_" + tag, width);
      const auto ti = b.wire("ti_" + tag, width);
      b.assign(tr, b.sub(b.ref(m0), b.ref(m1)));
      b.assign(ti, b.add(b.ref(m2), b.ref(m3)));
      // Butterfly add/sub.
      const auto br = b.wire("br_" + tag, width);
      const auto bi = b.wire("bi_" + tag, width);
      b.assign(br, b.add(b.ref(ar), b.ref(tr)));
      b.assign(bi, b.sub(b.ref(ai), b.ref(ti)));
      ar = br;
      ai = bi;
    }
    if (inverse) {
      // Per-stage scaling to keep fixed-point magnitude bounded.
      const std::string tag = "sc" + std::to_string(stage);
      const auto sr = b.wire(tag + "r", width);
      const auto si = b.wire(tag + "i", width);
      b.assign(sr, b.shr(b.ref(ar), b.lit(1, 4)));
      b.assign(si, b.shr(b.ref(ai), b.lit(1, 4)));
      ar = sr;
      ai = si;
    }
  }

  b.assign(yr, b.ref(ar));
  b.assign(yi, b.ref(ai));
  return b.take();
}

}  // namespace

rtl::Module makeDft(int points, int width) { return makeTransform("DFT", points, width, false); }

rtl::Module makeIdft(int points, int width) { return makeTransform("IDFT", points, width, true); }

}  // namespace rtlock::designs
