#include "designs/registry.hpp"

#include "designs/controllers.hpp"
#include "designs/crypto.hpp"
#include "designs/dsp.hpp"
#include "designs/networks.hpp"
#include "support/diagnostics.hpp"

namespace rtlock::designs {

const std::vector<BenchmarkInfo>& allBenchmarks() {
  static const std::vector<BenchmarkInfo> registry{
      {"DES3", "Triple-DES-style Feistel network (xor/permutation heavy)",
       [] { return makeDes3(); }},
      {"DFT", "Radix-2 FFT butterfly network (mul + balanced add/sub)",
       [] { return makeDft(); }},
      {"FIR", "Direct-form FIR filter (mul/add, fully imbalanced)", [] { return makeFir(); }},
      {"IDFT", "Inverse FFT with per-stage scaling shifts", [] { return makeIdft(); }},
      {"IIR", "Biquad cascade (mul with mixed add/sub)", [] { return makeIir(); }},
      {"MD5", "MD5-style round pipeline (add/boolean/rotate)", [] { return makeMd5(); }},
      {"RSA", "Square-and-multiply modular exponentiation", [] { return makeRsa(); }},
      {"SHA256", "SHA-256-style round pipeline (add/xor/rotate)", [] { return makeSha256(); }},
      {"SASC", "Asynchronous serial controller (FSM + counters)", [] { return makeSasc(); }},
      {"SIM_SPI", "SPI shift engine (shift/compare logic)", [] { return makeSimSpi(); }},
      {"USB_PHY", "USB PHY front end (NRZI decode, bit unstuffing)",
       [] { return makeUsbPhy(); }},
      {"I2C_SL", "I2C slave (start/stop detect, address match)", [] { return makeI2cSlave(); }},
      {"N_2046", "Fully imbalanced synthetic network: 2046 '+' ops", [] { return makeN2046(); }},
      {"N_1023", "Fully balanced synthetic network: 1023 '+' and 1023 '-'",
       [] { return makeN1023(); }},
  };
  return registry;
}

rtl::Module makeBenchmark(const std::string& name) {
  for (const auto& info : allBenchmarks()) {
    if (info.name == name) return info.make();
  }
  throw support::Error{"unknown benchmark '" + name + "'"};
}

std::vector<std::string> benchmarkNames() {
  std::vector<std::string> names;
  names.reserve(allBenchmarks().size());
  for (const auto& info : allBenchmarks()) names.push_back(info.name);
  return names;
}

}  // namespace rtlock::designs
