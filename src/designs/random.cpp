#include "designs/random.hpp"

#include <string>
#include <vector>

#include "rtl/builder.hpp"

namespace rtlock::designs {

namespace {

using rtl::ExprPtr;
using rtl::OpKind;
using rtl::SignalId;

/// Operators drawn for random expressions (every lockable kind plus >>>).
constexpr OpKind kOps[] = {
    OpKind::Add, OpKind::Sub, OpKind::Mul,  OpKind::Div, OpKind::Mod, OpKind::Pow,
    OpKind::Shl, OpKind::Shr, OpKind::AShr, OpKind::And, OpKind::Or,  OpKind::Xor,
    OpKind::Xnor, OpKind::Lt, OpKind::Gt,   OpKind::Le,  OpKind::Ge,  OpKind::Eq,
    OpKind::Ne,  OpKind::LAnd, OpKind::LOr,
};

}  // namespace

rtl::Module makeRandomModule(support::Rng& rng, const RandomModuleParams& params) {
  rtl::ModuleBuilder b{"fuzz_" + std::to_string(rng.below(1u << 30))};

  const int inputCount = static_cast<int>(rng.range(1, 4));
  std::vector<SignalId> values;  // signals usable as operands
  for (int i = 0; i < inputCount; ++i) {
    values.push_back(
        b.input("in" + std::to_string(i), static_cast<int>(rng.range(1, params.maxWidth))));
  }
  SignalId clk = 0;
  if (params.sequential) clk = b.input("clk", 1);

  // Random operand over existing signals: plain ref, slice, or literal.
  const auto operand = [&]() -> ExprPtr {
    const SignalId id = rng.pick(values);
    const int width = b.module().signal(id).width;
    if (params.useSlices && width > 2 && rng.chance(0.2)) {
      const int hi = static_cast<int>(rng.range(1, width - 1));
      const int lo = static_cast<int>(rng.range(0, hi));
      return b.slice(b.ref(id), hi, lo);
    }
    if (rng.chance(0.15)) {
      return b.lit(rng(), static_cast<int>(rng.range(1, params.maxWidth)));
    }
    return b.ref(id);
  };

  int wireId = 0;
  std::vector<SignalId> regCandidates;
  for (int i = 0; i < params.operations; ++i) {
    ExprPtr expr = rtl::makeBinary(kOps[rng.below(std::size(kOps))], operand(), operand());
    if (rng.chance(0.15)) {
      const rtl::UnaryOp unary[] = {rtl::UnaryOp::Neg, rtl::UnaryOp::BitNot,
                                    rtl::UnaryOp::LogNot, rtl::UnaryOp::RedXor};
      expr = rtl::makeUnary(unary[rng.below(std::size(unary))], std::move(expr));
    }
    if (params.useTernaries && rng.chance(0.15)) {
      expr = b.mux(operand(), std::move(expr), operand());
    }
    if (params.useSlices && rng.chance(0.1)) {
      std::vector<ExprPtr> parts;
      parts.push_back(std::move(expr));
      parts.push_back(operand());
      expr = b.concat(std::move(parts));
    }
    const int width = std::min(expr->width(), 64);
    if (expr->width() > 64) expr = rtl::makeSlice(std::move(expr), 63, 0);
    const SignalId wire = b.wire("w" + std::to_string(wireId++), width);
    b.assign(wire, std::move(expr));
    values.push_back(wire);
    regCandidates.push_back(wire);
  }

  if (params.sequential && !regCandidates.empty()) {
    // A few registers latching combinational wires (no feedback: operands of
    // wires never reference registers declared later, so this stays acyclic).
    const int regCount = static_cast<int>(rng.range(1, 3));
    for (int i = 0; i < regCount; ++i) {
      const SignalId source = rng.pick(regCandidates);
      const SignalId reg =
          b.reg("r" + std::to_string(i), b.module().signal(source).width);
      b.regAssign(clk, reg, b.ref(source));
      values.push_back(reg);
    }
  }

  const SignalId last = values.back();
  const auto y = b.output("y", b.module().signal(last).width);
  b.assign(y, b.ref(last));
  return b.take();
}

}  // namespace rtlock::designs
