#include "designs/crypto.hpp"

#include "rtl/builder.hpp"
#include "support/diagnostics.hpp"

namespace rtlock::designs {

namespace {

using rtl::ModuleBuilder;
using rtl::OpKind;
using rtl::SignalId;

[[nodiscard]] std::uint64_t roundConstant(int index, int width) noexcept {
  std::uint64_t value = 0xd1342543de82ef95ULL * static_cast<std::uint64_t>(index + 7);
  value ^= value >> 31;
  const std::uint64_t mask = width >= 64 ? ~0ULL : ((1ULL << width) - 1);
  return value & mask;
}

/// value rotated left by `amount` bits: (v << a) | (v >> (w - a)).
SignalId rotateLeft(ModuleBuilder& b, SignalId value, int amount, int width,
                    const std::string& tag) {
  const auto left = b.wire(tag + "_l", width);
  const auto right = b.wire(tag + "_r", width);
  const auto out = b.wire(tag, width);
  b.assign(left, b.shl(b.ref(value), b.lit(static_cast<std::uint64_t>(amount), 6)));
  b.assign(right,
           b.shr(b.ref(value), b.lit(static_cast<std::uint64_t>(width - amount), 6)));
  b.assign(out, b.orE(b.ref(left), b.ref(right)));
  return out;
}

}  // namespace

rtl::Module makeMd5(int rounds, int width) {
  RTLOCK_REQUIRE(rounds >= 4, "MD5 pipeline needs at least four rounds");
  ModuleBuilder b{"MD5"};
  const auto msg = b.input("msg", width);
  const auto digest = b.output("digest", width);

  // State registers modelled as a streaming pipeline (combinational rounds).
  SignalId a = b.wire("a0", width);
  SignalId bb = b.wire("b0", width);
  SignalId c = b.wire("c0", width);
  SignalId d = b.wire("d0", width);
  b.assign(a, b.ref(msg));
  b.assign(bb, b.notE(b.ref(msg)));
  b.assign(c, b.xorE(b.ref(msg), b.lit(roundConstant(0, width), width)));
  b.assign(d, b.andE(b.ref(msg), b.lit(roundConstant(1, width), width)));

  static constexpr int kShifts[4] = {7, 12, 17, 22};
  for (int r = 0; r < rounds; ++r) {
    const std::string tag = "r" + std::to_string(r);
    // Round function rotates through F/G/H/I-style boolean mixes.
    const auto f = b.wire(tag + "_f", width);
    switch (r % 4) {
      case 0: {  // F = (b & c) | (~b & d)
        const auto t0 = b.wire(tag + "_t0", width);
        const auto t1 = b.wire(tag + "_t1", width);
        b.assign(t0, b.andE(b.ref(bb), b.ref(c)));
        b.assign(t1, b.andE(b.notE(b.ref(bb)), b.ref(d)));
        b.assign(f, b.orE(b.ref(t0), b.ref(t1)));
        break;
      }
      case 1: {  // G = (d & b) | (~d & c)
        const auto t0 = b.wire(tag + "_t0", width);
        const auto t1 = b.wire(tag + "_t1", width);
        b.assign(t0, b.andE(b.ref(d), b.ref(bb)));
        b.assign(t1, b.andE(b.notE(b.ref(d)), b.ref(c)));
        b.assign(f, b.orE(b.ref(t0), b.ref(t1)));
        break;
      }
      case 2: {  // H = b ^ c ^ d
        const auto t0 = b.wire(tag + "_t0", width);
        b.assign(t0, b.xorE(b.ref(bb), b.ref(c)));
        b.assign(f, b.xorE(b.ref(t0), b.ref(d)));
        break;
      }
      default: {  // I = c ^ (b | ~d)
        const auto t0 = b.wire(tag + "_t0", width);
        b.assign(t0, b.orE(b.ref(bb), b.notE(b.ref(d))));
        b.assign(f, b.xorE(b.ref(c), b.ref(t0)));
        break;
      }
    }
    // a + F + msg + K, rotated, plus b.
    const auto s0 = b.wire(tag + "_s0", width);
    const auto s1 = b.wire(tag + "_s1", width);
    const auto s2 = b.wire(tag + "_s2", width);
    b.assign(s0, b.add(b.ref(a), b.ref(f)));
    b.assign(s1, b.add(b.ref(s0), b.ref(msg)));
    b.assign(s2, b.add(b.ref(s1), b.lit(roundConstant(r + 2, width), width)));
    const auto rotated = rotateLeft(b, s2, kShifts[r % 4], width, tag + "_rot");
    const auto newB = b.wire(tag + "_nb", width);
    b.assign(newB, b.add(b.ref(bb), b.ref(rotated)));

    // Rotate state (a, b, c, d) <- (d, newB, b, c).
    const SignalId oldD = d;
    d = c;
    c = bb;
    bb = newB;
    a = oldD;
  }

  const auto mix = b.wire("mix", width);
  b.assign(mix, b.add(b.ref(a), b.ref(bb)));
  b.assign(digest, b.xorE(b.ref(mix), b.ref(c)));
  return b.take();
}

rtl::Module makeSha256(int rounds, int width) {
  RTLOCK_REQUIRE(rounds >= 2, "SHA-256 pipeline needs at least two rounds");
  ModuleBuilder b{"SHA256"};
  const auto block = b.input("blk", width);
  const auto digest = b.output("digest", width);

  SignalId aw = b.wire("wa0", width);
  SignalId ew = b.wire("we0", width);
  SignalId hw = b.wire("wh0", width);
  b.assign(aw, b.xorE(b.ref(block), b.lit(roundConstant(0, width), width)));
  b.assign(ew, b.add(b.ref(block), b.lit(roundConstant(1, width), width)));
  b.assign(hw, b.notE(b.ref(block)));

  for (int r = 0; r < rounds; ++r) {
    const std::string tag = "sh" + std::to_string(r);

    // Sigma1(e) = rotr6 ^ rotr11 ^ rotr25 (rotl by width-k).
    const auto rot1 = rotateLeft(b, ew, width - 6 % width, width, tag + "_s1a");
    const auto rot2 = rotateLeft(b, ew, width - 11 % width, width, tag + "_s1b");
    const auto rot3 = rotateLeft(b, ew, width - 25 % width, width, tag + "_s1c");
    const auto sig1a = b.wire(tag + "_sig1a", width);
    const auto sig1 = b.wire(tag + "_sig1", width);
    b.assign(sig1a, b.xorE(b.ref(rot1), b.ref(rot2)));
    b.assign(sig1, b.xorE(b.ref(sig1a), b.ref(rot3)));

    // Ch(e, a, h) = (e & a) ^ (~e & h).
    const auto ch0 = b.wire(tag + "_ch0", width);
    const auto ch1 = b.wire(tag + "_ch1", width);
    const auto ch = b.wire(tag + "_ch", width);
    b.assign(ch0, b.andE(b.ref(ew), b.ref(aw)));
    b.assign(ch1, b.andE(b.notE(b.ref(ew)), b.ref(hw)));
    b.assign(ch, b.xorE(b.ref(ch0), b.ref(ch1)));

    // T1 = h + Sigma1 + Ch + K + W.
    const auto t1a = b.wire(tag + "_t1a", width);
    const auto t1b = b.wire(tag + "_t1b", width);
    const auto t1c = b.wire(tag + "_t1c", width);
    const auto t1 = b.wire(tag + "_t1", width);
    b.assign(t1a, b.add(b.ref(hw), b.ref(sig1)));
    b.assign(t1b, b.add(b.ref(t1a), b.ref(ch)));
    b.assign(t1c, b.add(b.ref(t1b), b.lit(roundConstant(r + 3, width), width)));
    b.assign(t1, b.add(b.ref(t1c), b.ref(block)));

    // Sigma0(a) = rotr2 ^ rotr13 ^ rotr22, T2 = Sigma0 + Maj-ish mix.
    const auto rot4 = rotateLeft(b, aw, width - 2 % width, width, tag + "_s0a");
    const auto rot5 = rotateLeft(b, aw, width - 13 % width, width, tag + "_s0b");
    const auto sig0 = b.wire(tag + "_sig0", width);
    b.assign(sig0, b.xorE(b.ref(rot4), b.ref(rot5)));
    const auto maj = b.wire(tag + "_maj", width);
    b.assign(maj, b.andE(b.ref(aw), b.ref(ew)));
    const auto t2 = b.wire(tag + "_t2", width);
    b.assign(t2, b.add(b.ref(sig0), b.ref(maj)));

    // State advance: h <- e, e <- a + T1, a <- T1 + T2.
    const auto newE = b.wire(tag + "_ne", width);
    const auto newA = b.wire(tag + "_na", width);
    b.assign(newE, b.add(b.ref(aw), b.ref(t1)));
    b.assign(newA, b.add(b.ref(t1), b.ref(t2)));
    hw = ew;
    ew = newE;
    aw = newA;
  }

  const auto fold = b.wire("fold", width);
  b.assign(fold, b.add(b.ref(aw), b.ref(ew)));
  b.assign(digest, b.xorE(b.ref(fold), b.ref(hw)));
  return b.take();
}

rtl::Module makeRsa(int iterations, int width) {
  RTLOCK_REQUIRE(iterations >= 2, "RSA datapath needs at least two iterations");
  ModuleBuilder b{"RSA"};
  const auto base = b.input("base", width);
  const auto exponent = b.input("exp", width);
  const auto modulus = b.input("modulus", width);
  const auto result = b.output("result", width);

  SignalId acc = b.wire("acc0", width);
  SignalId sq = b.wire("sq0", width);
  SignalId e = b.wire("e0", width);
  b.assign(acc, b.lit(1, width));
  b.assign(sq, b.ref(base));
  b.assign(e, b.ref(exponent));

  for (int i = 0; i < iterations; ++i) {
    const std::string tag = "it" + std::to_string(i);
    // Conditional multiply: bit = e & 1; acc' = bit ? (acc * sq) % m : acc.
    const auto bit = b.wire(tag + "_bit", width);
    b.assign(bit, b.andE(b.ref(e), b.lit(1, width)));
    const auto mulw = b.wire(tag + "_mul", width);
    const auto mmod = b.wire(tag + "_mmod", width);
    b.assign(mulw, b.mul(b.ref(acc), b.ref(sq)));
    b.assign(mmod, b.bin(OpKind::Mod, b.ref(mulw), b.ref(modulus)));
    const auto take = b.wire(tag + "_take", 1);
    b.assign(take, b.bin(OpKind::Ne, b.ref(bit), b.lit(0, width)));
    const auto nextAcc = b.wire(tag + "_acc", width);
    b.assign(nextAcc, b.mux(b.ref(take), b.ref(mmod), b.ref(acc)));

    // Square step: sq' = (sq * sq) % m; e' = e >> 1.
    const auto sqw = b.wire(tag + "_sqm", width);
    const auto sqmod = b.wire(tag + "_sqmod", width);
    b.assign(sqw, b.mul(b.ref(sq), b.ref(sq)));
    b.assign(sqmod, b.bin(OpKind::Mod, b.ref(sqw), b.ref(modulus)));
    const auto nextE = b.wire(tag + "_e", width);
    b.assign(nextE, b.shr(b.ref(e), b.lit(1, 3)));

    acc = nextAcc;
    sq = sqmod;
    e = nextE;
  }
  b.assign(result, b.ref(acc));
  return b.take();
}

rtl::Module makeDes3(int rounds, int width) {
  RTLOCK_REQUIRE(rounds >= 3, "DES3 network needs at least three rounds");
  ModuleBuilder b{"DES3"};
  const auto plain = b.input("plain", width);
  const auto key = b.input("k", width);
  const auto cipher = b.output("cipher", width);

  SignalId left = b.wire("l0", width);
  SignalId right = b.wire("r0", width);
  b.assign(left, b.xorE(b.ref(plain), b.ref(key)));
  b.assign(right, b.notE(b.ref(plain)));

  for (int r = 0; r < rounds; ++r) {
    const std::string tag = "f" + std::to_string(r);
    // Expansion-ish permutation: (right << 3) | (right >> (w-3)).
    const auto expanded = rotateLeft(b, right, 3 + (r % 5), width, tag + "_exp");
    // Key mixing.
    const auto mixed = b.wire(tag + "_mix", width);
    b.assign(mixed, b.xorE(b.ref(expanded), b.ref(key)));
    // S-box-ish nonlinearity: (m & c1) | (~m & c2).
    const auto sb0 = b.wire(tag + "_sb0", width);
    const auto sb1 = b.wire(tag + "_sb1", width);
    const auto sbox = b.wire(tag + "_sbox", width);
    b.assign(sb0, b.andE(b.ref(mixed), b.lit(roundConstant(2 * r, width), width)));
    b.assign(sb1, b.andE(b.notE(b.ref(mixed)), b.lit(roundConstant(2 * r + 1, width), width)));
    b.assign(sbox, b.orE(b.ref(sb0), b.ref(sb1)));
    // Permutation + Feistel xor.
    const auto permuted = rotateLeft(b, sbox, 7, width, tag + "_perm");
    const auto newRight = b.wire(tag + "_nr", width);
    b.assign(newRight, b.xorE(b.ref(left), b.ref(permuted)));
    left = right;
    right = newRight;
  }

  b.assign(cipher, b.xorE(b.ref(left), b.ref(right)));
  return b.take();
}

}  // namespace rtlock::designs
