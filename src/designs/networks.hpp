// Synthetic operation networks (the paper's N_2046 / N_1023 benchmarks and
// the "+ network" used throughout Sec. 3).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "rtl/module.hpp"

namespace rtlock::designs {

/// Builds a connected network of binary operations in three-address form:
/// each operation reads the two most recent values (seeded by two inputs) and
/// writes a fresh wire; the final value drives the output.  The mix lists
/// (operator, count) groups; operations are interleaved round-robin so types
/// are spread through the topology.
[[nodiscard]] rtl::Module makeOperationNetwork(
    std::string name, const std::vector<std::pair<rtl::OpKind, int>>& mix, int width = 16);

/// N_2046: fully imbalanced network of 2046 '+' operations (paper Sec. 5).
[[nodiscard]] rtl::Module makeN2046();

/// N_1023: fully balanced network of 1023 '+' and 1023 '-' operations.
[[nodiscard]] rtl::Module makeN1023();

/// Small '+' network for the Fig. 4 observation analyses.
[[nodiscard]] rtl::Module makePlusNetwork(int operations, int width = 8);

}  // namespace rtlock::designs
