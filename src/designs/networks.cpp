#include "designs/networks.hpp"

#include "rtl/builder.hpp"
#include "support/diagnostics.hpp"

namespace rtlock::designs {

rtl::Module makeOperationNetwork(std::string name,
                                 const std::vector<std::pair<rtl::OpKind, int>>& mix,
                                 int width) {
  RTLOCK_REQUIRE(!mix.empty(), "operation network needs a non-empty mix");

  rtl::ModuleBuilder b{std::move(name)};
  const auto a = b.input("a", width);
  const auto c = b.input("b", width);

  // Round-robin over the mix so operation types interleave through the
  // topology instead of forming per-type segments.
  std::vector<std::pair<rtl::OpKind, int>> remaining = mix;
  std::vector<rtl::OpKind> sequence;
  bool emitted = true;
  while (emitted) {
    emitted = false;
    for (auto& [kind, count] : remaining) {
      if (count > 0) {
        sequence.push_back(kind);
        --count;
        emitted = true;
      }
    }
  }
  RTLOCK_REQUIRE(!sequence.empty(), "operation network mix has no operations");

  // Each op consumes the two most recent values, keeping the graph connected.
  rtl::SignalId prev = a;
  rtl::SignalId prevPrev = c;
  for (std::size_t i = 0; i < sequence.size(); ++i) {
    const auto wire = b.wire("n" + std::to_string(i), width);
    b.assign(wire, b.bin(sequence[i], b.ref(prev), b.ref(prevPrev)));
    prevPrev = prev;
    prev = wire;
  }

  const auto y = b.output("y", width);
  b.assign(y, b.ref(prev));
  return b.take();
}

rtl::Module makeN2046() {
  return makeOperationNetwork("N_2046", {{rtl::OpKind::Add, 2046}});
}

rtl::Module makeN1023() {
  return makeOperationNetwork("N_1023",
                              {{rtl::OpKind::Add, 1023}, {rtl::OpKind::Sub, 1023}});
}

rtl::Module makePlusNetwork(int operations, int width) {
  RTLOCK_REQUIRE(operations >= 1, "plus network needs at least one operation");
  return makeOperationNetwork("plus_network", {{rtl::OpKind::Add, operations}}, width);
}

}  // namespace rtlock::designs
