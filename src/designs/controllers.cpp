#include "designs/controllers.hpp"

#include "rtl/builder.hpp"
#include "support/diagnostics.hpp"

namespace rtlock::designs {

namespace {

using rtl::LValue;
using rtl::ModuleBuilder;
using rtl::OpKind;
using rtl::SignalId;

/// Builds `state' = case(state) ...` FSM skeleton with an if/else guard per
/// arm, exercising case/if statement locking paths.  Returns the next-state
/// register written by the combinational process.
SignalId addFsm(ModuleBuilder& b, SignalId state, SignalId trigger, const std::string& tag) {
  const auto next = b.reg(tag + "_next", 2);
  std::vector<rtl::CaseItem> arms;
  for (std::uint64_t s = 0; s < 4; ++s) {
    rtl::CaseItem arm;
    arm.labels.push_back(s);
    arm.body = rtl::makeIf(
        b.bin(OpKind::Ne, b.ref(trigger), b.lit(0, 1)),
        rtl::makeAssign(LValue{next, std::nullopt}, b.lit((s + 1) % 4, 2), false),
        rtl::makeAssign(LValue{next, std::nullopt}, b.lit(s, 2), false));
    arms.push_back(std::move(arm));
  }
  auto body = rtl::makeBlock();
  static_cast<rtl::BlockStmt&>(*body).append(
      rtl::makeAssign(LValue{next, std::nullopt}, b.lit(0, 2), false));
  static_cast<rtl::BlockStmt&>(*body).append(
      rtl::makeCase(b.ref(state), std::move(arms),
                    rtl::makeAssign(LValue{next, std::nullopt}, b.lit(0, 2), false)));
  b.combProcess(std::move(body));
  return next;
}

}  // namespace

rtl::Module makeSasc(int lanes, int width) {
  RTLOCK_REQUIRE(lanes >= 1, "SASC needs at least one lane");
  ModuleBuilder b{"SASC"};
  const auto clk = b.input("clk", 1);
  const auto rxd = b.input("rxd", lanes);
  const auto baudDiv = b.input("baud_div", width);
  const auto out = b.output("rx_data", width);

  SignalId merged = 0;
  for (int lane = 0; lane < lanes; ++lane) {
    const std::string tag = "u" + std::to_string(lane);
    const auto state = b.reg(tag + "_state", 2);
    const auto count = b.reg(tag + "_cnt", width);
    const auto shift = b.reg(tag + "_shift", width);

    // Baud tick: count == baud_div[1:0].  Comparing against the low divider
    // bits keeps ticks frequent enough that short simulations exercise the
    // sampling datapath.
    const auto tick = b.wire(tag + "_tick", 1);
    b.assign(tick,
             b.bin(OpKind::Eq, b.ref(count), b.andE(b.ref(baudDiv), b.lit(3, width))));
    const auto countInc = b.wire(tag + "_ci", width);
    b.assign(countInc, b.add(b.ref(count), b.lit(1, width)));
    const auto countNext = b.wire(tag + "_cn", width);
    b.assign(countNext, b.mux(b.ref(tick), b.lit(0, width), b.ref(countInc)));
    b.regAssign(clk, count, b.ref(countNext));

    // Start-bit detect: line low while idle.
    const auto bitIn = b.wire(tag + "_bit", 1);
    b.assign(bitIn, b.slice(b.ref(rxd), lane, lane));
    const auto idle = b.wire(tag + "_idle", 1);
    b.assign(idle, b.bin(OpKind::Eq, b.ref(state), b.lit(0, 2)));
    const auto start = b.wire(tag + "_start", 1);
    b.assign(start, b.andE(b.ref(idle), b.bin(OpKind::Eq, b.ref(bitIn), b.lit(0, 1))));

    // Sample into the shift register on ticks.
    const auto shifted = b.wire(tag + "_sh", width);
    b.assign(shifted, b.shl(b.ref(shift), b.lit(1, 3)));
    const auto sampled = b.wire(tag + "_sm", width);
    b.assign(sampled, b.orE(b.ref(shifted), b.ref(bitIn)));
    const auto shiftNext = b.wire(tag + "_sn", width);
    b.assign(shiftNext, b.mux(b.ref(tick), b.ref(sampled), b.ref(shift)));
    b.regAssign(clk, shift, b.ref(shiftNext));

    // Frame complete: shift register above threshold and not idle.
    const auto busy = b.wire(tag + "_busy", 1);
    b.assign(busy, b.bin(OpKind::Gt, b.ref(state), b.lit(0, 2)));
    const auto done = b.wire(tag + "_done", 1);
    b.assign(done, b.andE(b.ref(busy), b.bin(OpKind::Ge, b.ref(shift), b.ref(baudDiv))));

    const auto trigger = b.wire(tag + "_trig", 1);
    b.assign(trigger, b.orE(b.ref(start), b.ref(done)));
    const auto next = addFsm(b, state, trigger, tag);
    b.regAssign(clk, state, b.ref(next));

    if (lane == 0) {
      merged = shift;
    } else {
      const auto mix = b.wire(tag + "_mix", width);
      b.assign(mix, b.xorE(b.ref(merged), b.ref(shift)));
      merged = mix;
    }
  }
  b.assign(out, b.ref(merged));
  return b.take();
}

rtl::Module makeSimSpi(int lanes, int width) {
  RTLOCK_REQUIRE(lanes >= 1, "SPI needs at least one lane");
  ModuleBuilder b{"SIM_SPI"};
  const auto clk = b.input("clk", 1);
  const auto mosi = b.input("mosi", lanes);
  const auto divider = b.input("divider", width);
  const auto out = b.output("miso_data", width);

  SignalId merged = 0;
  for (int lane = 0; lane < lanes; ++lane) {
    const std::string tag = "spi" + std::to_string(lane);
    const auto count = b.reg(tag + "_cnt", width);
    const auto shift = b.reg(tag + "_shift", width);
    const auto bits = b.reg(tag + "_bits", width);

    // Clock divider (low bits only, so short simulations see ticks).
    const auto tick = b.wire(tag + "_tick", 1);
    b.assign(tick, b.bin(OpKind::Ge, b.ref(count), b.andE(b.ref(divider), b.lit(3, width))));
    const auto inc = b.wire(tag + "_inc", width);
    b.assign(inc, b.add(b.ref(count), b.lit(1, width)));
    const auto cnext = b.wire(tag + "_cnext", width);
    b.assign(cnext, b.mux(b.ref(tick), b.lit(0, width), b.ref(inc)));
    b.regAssign(clk, count, b.ref(cnext));

    // Shift in MOSI on ticks.
    const auto bitIn = b.wire(tag + "_bit", 1);
    b.assign(bitIn, b.slice(b.ref(mosi), lane, lane));
    const auto shl1 = b.wire(tag + "_shl", width);
    b.assign(shl1, b.shl(b.ref(shift), b.lit(1, 3)));
    const auto within = b.wire(tag + "_in", width);
    b.assign(within, b.orE(b.ref(shl1), b.ref(bitIn)));
    const auto snext = b.wire(tag + "_snext", width);
    b.assign(snext, b.mux(b.ref(tick), b.ref(within), b.ref(shift)));
    b.regAssign(clk, shift, b.ref(snext));

    // Bit counter with wraparound at word size.
    const auto full = b.wire(tag + "_full", 1);
    b.assign(full, b.bin(OpKind::Eq, b.ref(bits),
                         b.lit(static_cast<std::uint64_t>(width - 1), width)));
    const auto binc = b.wire(tag + "_binc", width);
    b.assign(binc, b.add(b.ref(bits), b.lit(1, width)));
    const auto bnext0 = b.wire(tag + "_bnext0", width);
    b.assign(bnext0, b.mux(b.ref(full), b.lit(0, width), b.ref(binc)));
    const auto bnext = b.wire(tag + "_bnext", width);
    b.assign(bnext, b.mux(b.ref(tick), b.ref(bnext0), b.ref(bits)));
    b.regAssign(clk, bits, b.ref(bnext));

    if (lane == 0) {
      merged = shift;
    } else {
      const auto mix = b.wire(tag + "_mix", width);
      b.assign(mix, b.orE(b.ref(merged), b.ref(shift)));
      merged = mix;
    }
  }
  b.assign(out, b.ref(merged));
  return b.take();
}

rtl::Module makeUsbPhy(int lanes, int width) {
  RTLOCK_REQUIRE(lanes >= 1, "USB PHY needs at least one lane");
  ModuleBuilder b{"USB_PHY"};
  const auto clk = b.input("clk", 1);
  const auto dp = b.input("dp", lanes);
  const auto dn = b.input("dn", lanes);
  const auto out = b.output("rx_byte", width);

  SignalId merged = 0;
  for (int lane = 0; lane < lanes; ++lane) {
    const std::string tag = "phy" + std::to_string(lane);
    const auto lastBit = b.reg(tag + "_last", 1);
    const auto ones = b.reg(tag + "_ones", 3);
    const auto shift = b.reg(tag + "_shift", width);

    const auto dpBit = b.wire(tag + "_dp", 1);
    const auto dnBit = b.wire(tag + "_dn", 1);
    b.assign(dpBit, b.slice(b.ref(dp), lane, lane));
    b.assign(dnBit, b.slice(b.ref(dn), lane, lane));

    // Differential receive + NRZI decode: bit = ~(dp ^ last), valid = dp != dn.
    const auto diffValid = b.wire(tag + "_valid", 1);
    b.assign(diffValid, b.bin(OpKind::Ne, b.ref(dpBit), b.ref(dnBit)));
    const auto nrzi = b.wire(tag + "_nrzi", 1);
    b.assign(nrzi, b.notE(b.xorE(b.ref(dpBit), b.ref(lastBit))));
    b.regAssign(clk, lastBit, b.ref(dpBit));

    // Bit-stuffing counter: six consecutive ones force a skip.
    const auto isOne = b.wire(tag + "_one", 1);
    b.assign(isOne, b.andE(b.ref(nrzi), b.ref(diffValid)));
    const auto onesInc = b.wire(tag + "_oinc", 3);
    b.assign(onesInc, b.add(b.ref(ones), b.lit(1, 3)));
    const auto stuffed = b.wire(tag + "_stuff", 1);
    b.assign(stuffed, b.bin(OpKind::Ge, b.ref(ones), b.lit(6, 3)));
    const auto onesNext = b.wire(tag + "_onext", 3);
    b.assign(onesNext, b.mux(b.ref(isOne), b.ref(onesInc), b.lit(0, 3)));
    b.regAssign(clk, ones, b.ref(onesNext));

    // Shift in decoded bits unless stuffed.
    const auto shl1 = b.wire(tag + "_shl", width);
    b.assign(shl1, b.shl(b.ref(shift), b.lit(1, 3)));
    const auto withBit = b.wire(tag + "_wb", width);
    b.assign(withBit, b.orE(b.ref(shl1), b.ref(nrzi)));
    const auto take = b.wire(tag + "_take", 1);
    b.assign(take, b.andE(b.ref(diffValid), b.notE(b.ref(stuffed))));
    const auto snext = b.wire(tag + "_snext", width);
    b.assign(snext, b.mux(b.ref(take), b.ref(withBit), b.ref(shift)));
    b.regAssign(clk, shift, b.ref(snext));

    // Sync pattern detector: shift == 0x2A-ish constant.
    const auto sync = b.wire(tag + "_sync", 1);
    b.assign(sync, b.bin(OpKind::Eq, b.ref(shift), b.lit(0x2a, width)));
    const auto gated = b.wire(tag + "_gate", width);
    b.assign(gated, b.mux(b.ref(sync), b.ref(shift), b.lit(0, width)));

    if (lane == 0) {
      merged = gated;
    } else {
      const auto mix = b.wire(tag + "_mix", width);
      b.assign(mix, b.xorE(b.ref(merged), b.ref(gated)));
      merged = mix;
    }
  }
  b.assign(out, b.ref(merged));
  return b.take();
}

rtl::Module makeI2cSlave(int lanes, int width) {
  RTLOCK_REQUIRE(lanes >= 1, "I2C slave needs at least one lane");
  ModuleBuilder b{"I2C_SL"};
  const auto clk = b.input("clk", 1);
  const auto scl = b.input("scl", lanes);
  const auto sda = b.input("sda", lanes);
  const auto ownAddr = b.input("own_addr", 7);
  const auto out = b.output("data_out", width);

  SignalId merged = 0;
  for (int lane = 0; lane < lanes; ++lane) {
    const std::string tag = "i2c" + std::to_string(lane);
    const auto sdaLast = b.reg(tag + "_sdal", 1);
    const auto shift = b.reg(tag + "_shift", width);
    const auto bitCnt = b.reg(tag + "_bits", 4);
    const auto state = b.reg(tag + "_state", 2);

    const auto sclBit = b.wire(tag + "_scl", 1);
    const auto sdaBit = b.wire(tag + "_sda", 1);
    b.assign(sclBit, b.slice(b.ref(scl), lane, lane));
    b.assign(sdaBit, b.slice(b.ref(sda), lane, lane));

    // Start: SDA falls while SCL high.  Stop: SDA rises while SCL high.
    const auto sdaFell = b.wire(tag + "_fell", 1);
    b.assign(sdaFell, b.andE(b.ref(sdaLast), b.notE(b.ref(sdaBit))));
    const auto startCond = b.wire(tag + "_start", 1);
    b.assign(startCond, b.andE(b.ref(sdaFell), b.ref(sclBit)));
    b.regAssign(clk, sdaLast, b.ref(sdaBit));

    // Address shift register.
    const auto shl1 = b.wire(tag + "_shl", width);
    b.assign(shl1, b.shl(b.ref(shift), b.lit(1, 3)));
    const auto within = b.wire(tag + "_in", width);
    b.assign(within, b.orE(b.ref(shl1), b.ref(sdaBit)));
    const auto snext = b.wire(tag + "_snext", width);
    b.assign(snext, b.mux(b.ref(sclBit), b.ref(within), b.ref(shift)));
    b.regAssign(clk, shift, b.ref(snext));

    // Bit counter + byte boundary.
    const auto binc = b.wire(tag + "_binc", 4);
    b.assign(binc, b.add(b.ref(bitCnt), b.lit(1, 4)));
    const auto byteDone = b.wire(tag + "_byte", 1);
    b.assign(byteDone, b.bin(OpKind::Eq, b.ref(bitCnt), b.lit(8, 4)));
    const auto bnext = b.wire(tag + "_bnext", 4);
    b.assign(bnext, b.mux(b.ref(byteDone), b.lit(0, 4), b.ref(binc)));
    b.regAssign(clk, bitCnt, b.ref(bnext));

    // Address match + ack decision.
    const auto addrBits = b.wire(tag + "_addr", 7);
    b.assign(addrBits, b.slice(b.ref(shift), 7, 1));
    const auto match = b.wire(tag + "_match", 1);
    b.assign(match, b.bin(OpKind::Eq, b.ref(addrBits), b.ref(ownAddr)));
    const auto ack = b.wire(tag + "_ack", 1);
    b.assign(ack, b.andE(b.ref(match), b.ref(byteDone)));

    const auto trigger = b.wire(tag + "_trig", 1);
    b.assign(trigger, b.orE(b.ref(startCond), b.ref(ack)));
    const auto next = addFsm(b, state, trigger, tag);
    b.regAssign(clk, state, b.ref(next));

    if (lane == 0) {
      merged = shift;
    } else {
      const auto mix = b.wire(tag + "_mix", width);
      b.assign(mix, b.orE(b.ref(merged), b.ref(shift)));
      merged = mix;
    }
  }
  b.assign(out, b.ref(merged));
  return b.take();
}

}  // namespace rtlock::designs
