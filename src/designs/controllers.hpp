// Bus/peripheral controller benchmarks: SASC, SIM_SPI, USB_PHY, I2C_SL.
//
// Control-dominated stand-ins: finite-state machines with counters,
// comparators and bit-manipulation logic — the comparison/logic-heavy end of
// the ASSURE benchmark suite.  `lanes` replicates the datapath to scale the
// operation count into the regime the paper evaluates.
#pragma once

#include "rtl/module.hpp"

namespace rtlock::designs {

/// Simple asynchronous serial controller (UART-style RX/TX with baud
/// counters and a 4-state FSM).
[[nodiscard]] rtl::Module makeSasc(int lanes = 4, int width = 8);

/// SPI master shift engine (mode counter, shift register, chip-select FSM).
[[nodiscard]] rtl::Module makeSimSpi(int lanes = 4, int width = 8);

/// USB PHY front end (NRZI decode, bit unstuffing, sync detection).
[[nodiscard]] rtl::Module makeUsbPhy(int lanes = 4, int width = 8);

/// I2C slave (start/stop detection, address match, ack generation).
[[nodiscard]] rtl::Module makeI2cSlave(int lanes = 4, int width = 8);

}  // namespace rtlock::designs
