#include "attack/snapshot.hpp"

#include <unordered_map>

namespace rtlock::attack {

SnapshotResult snapshotAttack(rtl::Module& lockedTarget,
                              const std::vector<lock::LockRecord>& targetRecords,
                              const lock::PairTable& table, const SnapshotConfig& config,
                              support::Rng& rng) {
  RTLOCK_REQUIRE(config.relockRounds > 0, "the attack needs at least one relocking round");

  // Step 1: target localities, keyed by key-bit index.
  const std::vector<Locality> targetLocalities =
      extractLocalities(lockedTarget, config.locality);
  std::unordered_map<int, const ml::FeatureRow*> targetFeatures;
  targetFeatures.reserve(targetLocalities.size());
  for (const Locality& locality : targetLocalities) {
    targetFeatures.emplace(locality.keyIndex, &locality.features);
  }

  // Step 2: self-referencing training set.  Each round applies a fresh
  // random-ASSURE relock with known key bits, harvests the new localities,
  // and rolls the module back.
  lock::LockEngine engine{lockedTarget, table};
  ml::Dataset training{featureCount(config.locality)};

  for (int round = 0; round < config.relockRounds; ++round) {
    const std::size_t checkpoint = engine.checkpoint();
    const int keyStart = lockedTarget.keyWidth();
    const int budget = std::max(
        1, static_cast<int>(config.relockBudgetFraction *
                            static_cast<double>(engine.totalLockableOps())));
    lock::assureRandomLock(engine, budget, rng);

    // Labels for the fresh key bits come from the engine's records.
    std::unordered_map<int, bool> labelOf;
    const auto& records = engine.records();
    for (std::size_t i = checkpoint; i < records.size(); ++i) {
      labelOf.emplace(records[i].keyIndex, records[i].keyValue);
    }

    for (const Locality& locality :
         extractLocalities(lockedTarget, config.locality, keyStart)) {
      const auto it = labelOf.find(locality.keyIndex);
      RTLOCK_REQUIRE(it != labelOf.end(), "extracted a training mux with unknown key bit");
      training.add(locality.features, it->second ? 1 : 0);
    }

    engine.undoTo(checkpoint);
  }

  // Step 3: model selection + training.
  const ml::AutoMlResult automl = ml::autoSelect(training, config.automl, rng);

  // Step 4: per-bit prediction and KPA scoring.
  SnapshotResult result;
  result.modelName = automl.bestName;
  result.cvAccuracy = automl.bestCvAccuracy;
  result.trainingRows = training.size();
  result.predictions.reserve(targetRecords.size());
  for (const lock::LockRecord& record : targetRecords) {
    const auto it = targetFeatures.find(record.keyIndex);
    RTLOCK_REQUIRE(it != targetFeatures.end(),
                   "target key bit has no extracted locality");
    const int predicted = automl.model->predict(*it->second);
    result.predictions.push_back(predicted);
    ++result.keyBits;
    if (predicted == (record.keyValue ? 1 : 0)) ++result.correct;
  }
  result.kpa = result.keyBits == 0
                   ? 0.0
                   : 100.0 * static_cast<double>(result.correct) /
                         static_cast<double>(result.keyBits);
  return result;
}

}  // namespace rtlock::attack
