#include "attack/snapshot.hpp"

#include <unordered_map>

#include "attack/harvest.hpp"

namespace rtlock::attack {

SnapshotResult snapshotAttack(rtl::Module& lockedTarget,
                              const std::vector<lock::LockRecord>& targetRecords,
                              const lock::PairTable& table, const SnapshotConfig& config,
                              support::Rng& rng) {
  RTLOCK_REQUIRE(config.relockRounds > 0, "the attack needs at least one relocking round");

  // Step 1: target localities, keyed by key-bit index (one full walk — the
  // only O(module) pass the attack performs).
  const std::vector<Locality> targetLocalities =
      extractLocalities(lockedTarget, config.locality);
  std::unordered_map<int, const ml::FeatureRow*> targetFeatures;
  targetFeatures.reserve(targetLocalities.size());
  for (const Locality& locality : targetLocalities) {
    targetFeatures.emplace(locality.keyIndex, &locality.features);
  }

  // Step 2: self-referencing training set.  Each round applies a fresh
  // random-ASSURE relock with known key bits, harvests the new localities,
  // and rolls the module back.  Harvesting is incremental — the engine's
  // lock observer records each new key mux as it is inserted, so a round
  // costs O(relock budget) instead of O(module) (attack/harvest.hpp; the
  // full-walk extractor above remains the differential oracle).
  lock::LockEngine engine{lockedTarget, table};
  LocalityHarvester harvester{engine, config.locality};
  ml::Dataset training{featureCount(config.locality)};

  for (int round = 0; round < config.relockRounds; ++round) {
    const std::size_t checkpoint = engine.checkpoint();
    const int budget = std::max(
        1, static_cast<int>(config.relockBudgetFraction *
                            static_cast<double>(engine.totalLockableOps())));
    harvester.beginRound();
    // Summary detail: the relock report is discarded, so skip the per-bit
    // metric trace (two ODT scans per lock).
    (void)lock::assureRandomLock(engine, budget, rng, lock::ReportDetail::Summary);
    harvester.harvestInto(training);
    engine.undoTo(checkpoint);
    if (round == 0) {
      // Rounds produce near-identical row counts; one up-front reservation
      // keeps the remaining appends growth-free.
      training.reserveRows(training.size() * static_cast<std::size_t>(config.relockRounds - 1));
    }
  }

  // Step 3: model selection + training.
  const ml::AutoMlResult automl = ml::autoSelect(training, config.automl, rng);

  // Step 4: per-bit prediction and KPA scoring.
  SnapshotResult result;
  result.modelName = automl.bestName;
  result.cvAccuracy = automl.bestCvAccuracy;
  result.trainingRows = training.size();
  result.predictions.reserve(targetRecords.size());
  for (const lock::LockRecord& record : targetRecords) {
    const auto it = targetFeatures.find(record.keyIndex);
    RTLOCK_REQUIRE(it != targetFeatures.end(),
                   "target key bit has no extracted locality");
    const int predicted = automl.model->predict(*it->second);
    result.predictions.push_back(predicted);
    ++result.keyBits;
    if (predicted == (record.keyValue ? 1 : 0)) ++result.correct;
  }
  result.kpa = result.keyBits == 0
                   ? 0.0
                   : 100.0 * static_cast<double>(result.correct) /
                         static_cast<double>(result.keyBits);
  return result;
}

}  // namespace rtlock::attack
