// Locality extraction — the RTL adaptation of SnapShot's netlist sub-graph
// encoding (Sec. 5 of the paper: "[K[i], C1, C2], where K[i] is the key-bit
// value and C1, C2 are encodings for an operation pair").
//
// A locality is produced for every key-controlled multiplexer in the design.
// C1/C2 encode the top construct of the true/false branch; nested locking
// muxes (relocked pairs, Fig. 3b) appear as a dedicated MUX code, exactly as
// an attacker parsing the locked RTL would see them.  The extended feature
// set adds structural context (branch depths, parent construct, width
// bucket) for ablation studies.
#pragma once

#include <vector>

#include "ml/dataset.hpp"
#include "rtl/module.hpp"

namespace rtlock::attack {

struct LocalityConfig {
  /// Basic = [C1, C2] (the paper's encoding); extended adds
  /// [depth(C1), depth(C2), parent code, width bucket].
  bool extendedFeatures = false;
};

/// Number of features produced under a config.
[[nodiscard]] int featureCount(const LocalityConfig& config) noexcept;

/// Encoding of an expression construct for C1/C2: binary operations map to
/// 1 + OpKind; special constructs (mux, constant, ...) use codes >= 100.
[[nodiscard]] int constructCode(const rtl::Expr& expr) noexcept;

/// Code assigned to nested key muxes.
inline constexpr int kMuxCode = 100;

/// Parent code for expression roots (continuous-assignment values,
/// statement expression slots).
inline constexpr int kTopCode = 0;

struct Locality {
  int keyIndex = 0;
  ml::FeatureRow features;
};

/// Appends the feature encoding of one key mux to `out`: [C1, C2] and, under
/// extended features, [depth(C1), depth(C2), parentCode, widthBucket].
/// Shared by the full-walk extractor below and the incremental harvester
/// (attack/harvest.hpp), which guarantees the two produce identical rows for
/// the same mux by construction.
void appendLocalityFeatures(const rtl::TernaryExpr& mux, int parentCode,
                            const LocalityConfig& config, ml::FeatureRow& out);

/// Extracts one locality per key mux with key index >= minKeyIndex, in
/// ascending key-index order.
[[nodiscard]] std::vector<Locality> extractLocalities(const rtl::Module& module,
                                                      const LocalityConfig& config,
                                                      int minKeyIndex = 0);

}  // namespace rtlock::attack
