// SnapShot attack adapted to RTL locking (Fig. 2 of the paper).
//
// Oracle-less threat model: the attacker holds (a perfect reconstruction of)
// the locked RTL, knows the locking algorithm and the key-input pins, but has
// no working chip.  The attack:
//
//  1. extracts the target's localities — one [C1, C2] pair per key bit;
//  2. builds a training set by self-referencing: relocking the target
//     `relockRounds` times with fresh random ASSURE locks whose key bits are
//     known, extracting the new localities, and undoing the relock;
//  3. trains an auto-ml-selected classifier on (locality -> key bit);
//  4. predicts every target key bit and reports the Key Prediction Accuracy.
//
// KPA of 50 % equals random guessing (the attacker learns nothing).
#pragma once

#include <string>

#include "attack/locality.hpp"
#include "core/algorithms.hpp"
#include "ml/automl.hpp"

namespace rtlock::attack {

struct SnapshotConfig {
  /// Training relock rounds per target (paper setup: 1000).
  int relockRounds = 100;
  /// Training key budget as a fraction of the target's current operations
  /// (paper setup: 0.75).
  double relockBudgetFraction = 0.75;
  LocalityConfig locality;
  ml::AutoMlConfig automl;
};

struct SnapshotResult {
  int keyBits = 0;                 // attacked key bits
  int correct = 0;                 // correctly predicted
  double kpa = 0.0;                // 100 * correct / keyBits
  std::string modelName;           // auto-ml winner
  double cvAccuracy = 0.0;         // winner's cross-validated accuracy
  std::size_t trainingRows = 0;    // extracted training localities
  std::vector<int> predictions;    // per key bit (index aligned with records)
};

/// Runs the attack against a locked module.  `targetRecords` is the locking
/// ground truth used only for scoring (the classifier never sees it).
///
/// Contract -------------------------------------------------------------------
/// Ownership: `lockedTarget` is borrowed mutably — relock rounds edit it in
///   place — and is restored bit-exactly before returning (also on throw the
///   undo path unwinds cleanly).  The caller keeps exclusive ownership;
///   nothing retains a pointer past the call.
/// Determinism: (lockedTarget, targetRecords, table, config, rng state)
///   fully determines the result, including the auto-ml winner — model
///   selection runs under a row-count budget (ml::AutoMlConfig), never
///   wall-clock, so outcomes cannot differ across machines.
/// Thread-safety: the attack itself is single-threaded over its target;
///   concurrent attacks need distinct target modules and distinct Rngs
///   (attack repeats in the CLI clone per repeat — the sharding pattern).
[[nodiscard]] SnapshotResult snapshotAttack(rtl::Module& lockedTarget,
                                            const std::vector<lock::LockRecord>& targetRecords,
                                            const lock::PairTable& table,
                                            const SnapshotConfig& config, support::Rng& rng);

}  // namespace rtlock::attack
