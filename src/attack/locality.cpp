#include "attack/locality.hpp"

#include <algorithm>

#include "rtl/traverse.hpp"
#include "support/diagnostics.hpp"

namespace rtlock::attack {

namespace {

using rtl::Expr;
using rtl::ExprKind;

constexpr int kConstantCode = 101;
constexpr int kSignalCode = 102;
constexpr int kKeyRefCode = 103;
constexpr int kUnaryCode = 104;
constexpr int kDesignTernaryCode = 105;
constexpr int kConcatCode = 106;
constexpr int kSliceCode = 107;
constexpr int kTopCode = 0;  // parent code for expression roots

[[nodiscard]] int widthBucket(int width) noexcept {
  if (width <= 1) return 0;
  if (width <= 8) return 1;
  if (width <= 16) return 2;
  if (width <= 32) return 3;
  return 4;
}

struct Collector {
  const LocalityConfig& config;
  std::vector<Locality>& out;
  int minKeyIndex;

  void visit(const Expr& expr, int parentCode) {
    if (expr.kind() == ExprKind::Ternary) {
      const auto& ternary = static_cast<const rtl::TernaryExpr&>(expr);
      if (ternary.isKeyMux()) {
        const int keyIndex =
            static_cast<const rtl::KeyRefExpr&>(ternary.cond()).firstBit();
        if (keyIndex >= minKeyIndex) {
          Locality locality;
          locality.keyIndex = keyIndex;
          locality.features.push_back(static_cast<double>(constructCode(ternary.thenExpr())));
          locality.features.push_back(static_cast<double>(constructCode(ternary.elseExpr())));
          if (config.extendedFeatures) {
            locality.features.push_back(static_cast<double>(rtl::exprDepth(ternary.thenExpr())));
            locality.features.push_back(static_cast<double>(rtl::exprDepth(ternary.elseExpr())));
            locality.features.push_back(static_cast<double>(parentCode));
            locality.features.push_back(static_cast<double>(widthBucket(ternary.width())));
          }
          out.push_back(std::move(locality));
        }
      }
    }
    const int myCode = constructCode(expr);
    for (int i = 0; i < expr.exprSlotCount(); ++i) {
      visit(expr.child(i), myCode);
    }
  }
};

}  // namespace

int featureCount(const LocalityConfig& config) noexcept { return config.extendedFeatures ? 6 : 2; }

int constructCode(const rtl::Expr& expr) noexcept {
  switch (expr.kind()) {
    case ExprKind::Binary:
      return 1 + static_cast<int>(static_cast<const rtl::BinaryExpr&>(expr).op());
    case ExprKind::Ternary:
      return static_cast<const rtl::TernaryExpr&>(expr).isKeyMux() ? kMuxCode
                                                                   : kDesignTernaryCode;
    case ExprKind::Constant: return kConstantCode;
    case ExprKind::SignalRef: return kSignalCode;
    case ExprKind::KeyRef: return kKeyRefCode;
    case ExprKind::Unary: return kUnaryCode;
    case ExprKind::Concat: return kConcatCode;
    case ExprKind::Slice: return kSliceCode;
  }
  return kTopCode;
}

std::vector<Locality> extractLocalities(const rtl::Module& module, const LocalityConfig& config,
                                        int minKeyIndex) {
  std::vector<Locality> localities;
  Collector collector{config, localities, minKeyIndex};
  for (const auto& assign : module.contAssigns()) {
    collector.visit(assign->value(), kTopCode);
  }
  rtl::forEachStmt(module, [&collector](const rtl::Stmt& stmt) {
    for (int i = 0; i < stmt.exprSlotCount(); ++i) {
      collector.visit(stmt.exprAt(i), kTopCode);
    }
  });
  std::sort(localities.begin(), localities.end(),
            [](const Locality& a, const Locality& b) { return a.keyIndex < b.keyIndex; });
  return localities;
}

}  // namespace rtlock::attack
