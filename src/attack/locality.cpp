#include "attack/locality.hpp"

#include <algorithm>

#include "rtl/traverse.hpp"
#include "support/diagnostics.hpp"

namespace rtlock::attack {

namespace {

using rtl::Expr;
using rtl::ExprKind;

constexpr int kConstantCode = 101;
constexpr int kSignalCode = 102;
constexpr int kKeyRefCode = 103;
constexpr int kUnaryCode = 104;
constexpr int kDesignTernaryCode = 105;
constexpr int kConcatCode = 106;
constexpr int kSliceCode = 107;

[[nodiscard]] int widthBucket(int width) noexcept {
  if (width <= 1) return 0;
  if (width <= 8) return 1;
  if (width <= 16) return 2;
  if (width <= 32) return 3;
  return 4;
}

/// Walks expression trees with an explicit work list — locked designs nest
/// muxes arbitrarily deep (every relock adds a level), and the collector must
/// not be the component that overflows the stack on pathological chains.
struct Collector {
  const LocalityConfig& config;
  std::vector<Locality>& out;
  int minKeyIndex;
  std::vector<std::pair<const Expr*, int>> pending;  // (node, parent code)

  void visitTree(const Expr& root, int parentCode) {
    pending.clear();
    pending.emplace_back(&root, parentCode);
    while (!pending.empty()) {
      const auto [expr, parent] = pending.back();
      pending.pop_back();
      if (expr->kind() == ExprKind::Ternary) {
        const auto& ternary = static_cast<const rtl::TernaryExpr&>(*expr);
        if (ternary.isKeyMux()) {
          const int keyIndex =
              static_cast<const rtl::KeyRefExpr&>(ternary.cond()).firstBit();
          if (keyIndex >= minKeyIndex) {
            Locality locality;
            locality.keyIndex = keyIndex;
            appendLocalityFeatures(ternary, parent, config, locality.features);
            out.push_back(std::move(locality));
          }
        }
      }
      const int myCode = constructCode(*expr);
      // Reverse push keeps the historical pre-order (left-to-right) visit.
      for (int i = expr->exprSlotCount() - 1; i >= 0; --i) {
        pending.emplace_back(&expr->child(i), myCode);
      }
    }
  }
};

}  // namespace

int featureCount(const LocalityConfig& config) noexcept { return config.extendedFeatures ? 6 : 2; }

int constructCode(const rtl::Expr& expr) noexcept {
  switch (expr.kind()) {
    case ExprKind::Binary:
      return 1 + static_cast<int>(static_cast<const rtl::BinaryExpr&>(expr).op());
    case ExprKind::Ternary:
      return static_cast<const rtl::TernaryExpr&>(expr).isKeyMux() ? kMuxCode
                                                                   : kDesignTernaryCode;
    case ExprKind::Constant: return kConstantCode;
    case ExprKind::SignalRef: return kSignalCode;
    case ExprKind::KeyRef: return kKeyRefCode;
    case ExprKind::Unary: return kUnaryCode;
    case ExprKind::Concat: return kConcatCode;
    case ExprKind::Slice: return kSliceCode;
  }
  return kTopCode;
}

void appendLocalityFeatures(const rtl::TernaryExpr& mux, int parentCode,
                            const LocalityConfig& config, ml::FeatureRow& out) {
  out.push_back(static_cast<double>(constructCode(mux.thenExpr())));
  out.push_back(static_cast<double>(constructCode(mux.elseExpr())));
  if (config.extendedFeatures) {
    out.push_back(static_cast<double>(rtl::exprDepth(mux.thenExpr())));
    out.push_back(static_cast<double>(rtl::exprDepth(mux.elseExpr())));
    out.push_back(static_cast<double>(parentCode));
    out.push_back(static_cast<double>(widthBucket(mux.width())));
  }
}

std::vector<Locality> extractLocalities(const rtl::Module& module, const LocalityConfig& config,
                                        int minKeyIndex) {
  std::vector<Locality> localities;
  Collector collector{config, localities, minKeyIndex, {}};
  for (const auto& assign : module.contAssigns()) {
    collector.visitTree(assign->value(), kTopCode);
  }
  rtl::forEachStmt(module, [&collector](const rtl::Stmt& stmt) {
    for (int i = 0; i < stmt.exprSlotCount(); ++i) {
      collector.visitTree(stmt.exprAt(i), kTopCode);
    }
  });
  // NOTE: deliberately std::sort, not stable_sort.  Duplicate key indices
  // (cloned muxes in non-three-address operand subtrees, e.g. SASC) land in
  // implementation-defined relative order — and that exact order is baked
  // into the committed BENCH_baseline.json quality rows, which the
  // incremental harvester reproduces by routing clone rounds through this
  // extractor (attack/harvest.cpp).  Changing the tie behaviour here is a
  // one-way re-baselining event.
  std::sort(localities.begin(), localities.end(),
            [](const Locality& a, const Locality& b) { return a.keyIndex < b.keyIndex; });
  return localities;
}

}  // namespace rtlock::attack
