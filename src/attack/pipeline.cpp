#include "attack/pipeline.hpp"

#include <algorithm>

#include "support/task_pool.hpp"

namespace rtlock::attack {

namespace {

/// Everything one locked sample contributes to the aggregate.  Tasks return
/// these by value; aggregation happens serially in sample order so the
/// floating-point sums are bit-identical at every thread count.
struct SampleOutcome {
  double kpa = 0.0;
  double keyBits = 0.0;
  double bitsUsed = 0.0;
  double globalMetric = 0.0;
  double restrictedMetric = 0.0;
};

SampleOutcome evaluateSample(const rtl::Module& original, lock::Algorithm algorithm,
                             const lock::PairTable& table, const EvaluationConfig& config,
                             support::Rng rng) {
  rtl::Module locked = original.clone();
  lock::LockEngine engine{locked, table};
  const int budget =
      std::max(1, static_cast<int>(config.keyBudgetFraction *
                                   static_cast<double>(engine.initialLockableOps())));
  const lock::AlgorithmReport lockReport = lock::lockWithAlgorithm(engine, algorithm, budget, rng);

  // Copy the ground truth before the attack relocks the module.
  const std::vector<lock::LockRecord> truth = engine.records();
  const SnapshotResult attack = snapshotAttack(locked, truth, table, config.snapshot, rng);

  SampleOutcome outcome;
  outcome.kpa = attack.kpa;
  outcome.keyBits = static_cast<double>(attack.keyBits);
  outcome.bitsUsed = static_cast<double>(lockReport.bitsUsed);
  outcome.globalMetric = lockReport.finalGlobalMetric;
  outcome.restrictedMetric = lockReport.finalRestrictedMetric;
  return outcome;
}

}  // namespace

EvaluationResult evaluateBenchmark(const rtl::Module& original, const std::string& benchmarkName,
                                   lock::Algorithm algorithm, const lock::PairTable& table,
                                   const EvaluationConfig& config, support::Rng& rng) {
  RTLOCK_REQUIRE(config.testLocks > 0, "evaluation needs at least one locked sample");

  // Seeding convention: one fork advances the caller's stream, then sample i
  // draws from substream(i) of that root.  Sample streams therefore depend
  // only on (caller stream, sample index), which is what makes the sharded
  // loop bit-identical at every thread count.
  const support::Rng sampleRoot = rng.fork();

  support::TaskPool pool{
      support::threadsForTasks(config.threads, static_cast<std::size_t>(config.testLocks))};
  const std::vector<SampleOutcome> outcomes =
      pool.map(static_cast<std::size_t>(config.testLocks), [&](std::size_t sample) {
        return evaluateSample(original, algorithm, table, config, sampleRoot.substream(sample));
      });

  EvaluationResult result;
  result.benchmark = benchmarkName;
  result.algorithm = algorithm;
  result.minKpa = 100.0;
  result.maxKpa = 0.0;
  for (const SampleOutcome& outcome : outcomes) {
    result.meanKpa += outcome.kpa;
    result.minKpa = std::min(result.minKpa, outcome.kpa);
    result.maxKpa = std::max(result.maxKpa, outcome.kpa);
    result.meanKeyBits += outcome.keyBits;
    result.meanBitsUsed += outcome.bitsUsed;
    result.meanGlobalMetric += outcome.globalMetric;
    result.meanRestrictedMetric += outcome.restrictedMetric;
    ++result.samples;
  }

  const auto n = static_cast<double>(result.samples);
  result.meanKpa /= n;
  result.meanKeyBits /= n;
  result.meanBitsUsed /= n;
  result.meanGlobalMetric /= n;
  result.meanRestrictedMetric /= n;
  return result;
}

}  // namespace rtlock::attack
