#include "attack/pipeline.hpp"

#include <algorithm>
#include <memory>

#include "support/task_pool.hpp"

namespace rtlock::attack {

namespace {

/// Everything one locked sample contributes to the aggregate.  Tasks return
/// these by value; aggregation happens serially in sample order so the
/// floating-point sums are bit-identical at every thread count.
struct SampleOutcome {
  double kpa = 0.0;
  double keyBits = 0.0;
  double bitsUsed = 0.0;
  double globalMetric = 0.0;
  double restrictedMetric = 0.0;
  bool functionalFailure = false;
};

/// Per-worker reusable module + engine.  Cloning the benchmark and
/// rebuilding the op index per sample was the sample loop's dominant
/// allocator; instead each worker clones once, and every sample restores the
/// module through the engine's checkpoint/undo path (undoAll splices the
/// trees back and re-pins the pools, so the restored state is exactly the
/// freshly-cloned state — proved by EngineTest's fuzzed round-trips).
struct WorkerSlot {
  std::unique_ptr<rtl::Module> module;
  std::unique_ptr<lock::LockEngine> engine;
};

SampleOutcome evaluateSample(WorkerSlot& slot, const rtl::Module& original,
                             lock::Algorithm algorithm, const lock::PairTable& table,
                             const EvaluationConfig& config, support::Rng rng) {
  if (slot.engine == nullptr) {
    slot.module = std::make_unique<rtl::Module>(original.clone());
    slot.engine = std::make_unique<lock::LockEngine>(*slot.module, table);
  }
  lock::LockEngine& engine = *slot.engine;
  const int budget =
      std::max(1, static_cast<int>(config.keyBudgetFraction *
                                   static_cast<double>(engine.initialLockableOps())));
  const lock::AlgorithmReport lockReport = lock::lockWithAlgorithm(
      engine, algorithm, budget, rng, lock::ReportDetail::Summary);

  // Copy the ground truth before the attack relocks the module.
  const std::vector<lock::LockRecord> truth = engine.records();

  SampleOutcome outcome;
  if (config.verifyFunctional) {
    // Check the freshly locked sample behaves like the original under its
    // correct key, BEFORE the attack relocks the module.  The stimulus
    // stream is an independent fixed seed: enabling the check perturbs no
    // rng draw the attack or metrics see, so every KPA/metric output bit is
    // unchanged.
    sim::BitVector correctKey{slot.module->keyWidth()};
    for (const lock::LockRecord& record : truth) {
      correctKey.setBit(record.keyIndex, record.keyValue);
    }
    sim::Harness harness{original, *slot.module, config.simBackend};
    support::Rng verifyRng{0x76657269'66790001ULL};
    outcome.functionalFailure =
        harness.findMismatch(correctKey, {}, verifyRng).has_value();
  }

  const SnapshotResult attack = snapshotAttack(*slot.module, truth, table, config.snapshot, rng);
  outcome.kpa = attack.kpa;
  outcome.keyBits = static_cast<double>(attack.keyBits);
  outcome.bitsUsed = static_cast<double>(lockReport.bitsUsed);
  outcome.globalMetric = lockReport.finalGlobalMetric;
  outcome.restrictedMetric = lockReport.finalRestrictedMetric;

  // Restore the worker's module for the next sample.
  engine.undoAll();
  return outcome;
}

}  // namespace

EvaluationResult evaluateBenchmark(const rtl::Module& original, const std::string& benchmarkName,
                                   lock::Algorithm algorithm, const lock::PairTable& table,
                                   const EvaluationConfig& config, support::Rng& rng) {
  RTLOCK_REQUIRE(config.testLocks > 0, "evaluation needs at least one locked sample");

  // Seeding convention: one fork advances the caller's stream, then sample i
  // draws from substream(i) of that root.  Sample streams therefore depend
  // only on (caller stream, sample index), which is what makes the sharded
  // loop bit-identical at every thread count.
  const support::Rng sampleRoot = rng.fork();

  support::TaskPool pool{
      support::threadsForTasks(config.threads, static_cast<std::size_t>(config.testLocks))};
  // One reusable slot per worker; a slot is only ever touched by its owning
  // worker, and reuse cannot influence results (see WorkerSlot above).
  std::vector<WorkerSlot> slots(static_cast<std::size_t>(pool.threadCount()));
  const std::vector<SampleOutcome> outcomes =
      pool.mapWithWorker(static_cast<std::size_t>(config.testLocks),
                         [&](int worker, std::size_t sample) {
                           return evaluateSample(slots[static_cast<std::size_t>(worker)],
                                                 original, algorithm, table, config,
                                                 sampleRoot.substream(sample));
                         });

  EvaluationResult result;
  result.benchmark = benchmarkName;
  result.algorithm = algorithm;
  result.minKpa = 100.0;
  result.maxKpa = 0.0;
  for (const SampleOutcome& outcome : outcomes) {
    result.meanKpa += outcome.kpa;
    result.minKpa = std::min(result.minKpa, outcome.kpa);
    result.maxKpa = std::max(result.maxKpa, outcome.kpa);
    result.meanKeyBits += outcome.keyBits;
    result.meanBitsUsed += outcome.bitsUsed;
    result.meanGlobalMetric += outcome.globalMetric;
    result.meanRestrictedMetric += outcome.restrictedMetric;
    if (outcome.functionalFailure) ++result.functionalFailures;
    ++result.samples;
  }

  const auto n = static_cast<double>(result.samples);
  result.meanKpa /= n;
  result.meanKeyBits /= n;
  result.meanBitsUsed /= n;
  result.meanGlobalMetric /= n;
  result.meanRestrictedMetric /= n;
  return result;
}

}  // namespace rtlock::attack
