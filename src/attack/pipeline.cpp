#include "attack/pipeline.hpp"

#include <algorithm>

namespace rtlock::attack {

EvaluationResult evaluateBenchmark(const rtl::Module& original, const std::string& benchmarkName,
                                   lock::Algorithm algorithm, const lock::PairTable& table,
                                   const EvaluationConfig& config, support::Rng& rng) {
  RTLOCK_REQUIRE(config.testLocks > 0, "evaluation needs at least one locked sample");

  EvaluationResult result;
  result.benchmark = benchmarkName;
  result.algorithm = algorithm;
  result.minKpa = 100.0;
  result.maxKpa = 0.0;

  for (int sample = 0; sample < config.testLocks; ++sample) {
    rtl::Module locked = original.clone();
    lock::LockEngine engine{locked, table};
    const int budget =
        std::max(1, static_cast<int>(config.keyBudgetFraction *
                                     static_cast<double>(engine.initialLockableOps())));
    const lock::AlgorithmReport lockReport =
        lock::lockWithAlgorithm(engine, algorithm, budget, rng);

    // Copy the ground truth before the attack relocks the module.
    const std::vector<lock::LockRecord> truth = engine.records();
    const SnapshotResult attack = snapshotAttack(locked, truth, table, config.snapshot, rng);

    result.meanKpa += attack.kpa;
    result.minKpa = std::min(result.minKpa, attack.kpa);
    result.maxKpa = std::max(result.maxKpa, attack.kpa);
    result.meanKeyBits += static_cast<double>(attack.keyBits);
    result.meanBitsUsed += static_cast<double>(lockReport.bitsUsed);
    result.meanGlobalMetric += lockReport.finalGlobalMetric;
    result.meanRestrictedMetric += lockReport.finalRestrictedMetric;
    ++result.samples;
  }

  const auto n = static_cast<double>(result.samples);
  result.meanKpa /= n;
  result.meanKeyBits /= n;
  result.meanBitsUsed /= n;
  result.meanGlobalMetric /= n;
  result.meanRestrictedMetric /= n;
  return result;
}

}  // namespace rtlock::attack
