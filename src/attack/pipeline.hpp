// End-to-end evaluation pipeline (Sec. 5 attack setup).
//
// For one benchmark and one locking algorithm:
//   * lock `testLocks` fresh clones of the benchmark with different keys
//     (key budget = 75 % of the design's lockable operations);
//   * run the SnapShot attack against every locked sample;
//   * aggregate KPA statistics.
#pragma once

#include <string>

#include "attack/snapshot.hpp"
#include "sim/harness.hpp"

namespace rtlock::attack {

struct EvaluationConfig {
  int testLocks = 10;               // locked samples per benchmark (paper: 10)
  double keyBudgetFraction = 0.75;  // of the original design's lockable ops
  SnapshotConfig snapshot;
  /// Off-by-default safety net: simulate each locked sample against the
  /// original under its correct key and count mismatching samples in
  /// EvaluationResult::functionalFailures.  Uses an independent fixed-seed
  /// stimulus stream, so enabling it changes no KPA/metric output bit.
  bool verifyFunctional = false;
  /// Simulator backing the verifyFunctional equivalence checks.  The
  /// SnapShot attack itself is structural/ML and never simulates.
  sim::SimBackend simBackend = sim::SimBackend::Sliced;
  /// Worker threads for the sample loop: 0 = hardware concurrency,
  /// 1 = serial reference path (no worker threads).  Results are
  /// bit-identical at every thread count: sample i always draws from
  /// `substream(i)` of a root forked once from the caller's rng, and the
  /// per-sample outcomes are aggregated in sample order.
  int threads = 0;
};

struct EvaluationResult {
  std::string benchmark;
  lock::Algorithm algorithm = lock::Algorithm::AssureSerial;
  int samples = 0;
  double meanKpa = 0.0;
  double minKpa = 0.0;
  double maxKpa = 0.0;
  double meanKeyBits = 0.0;        // attacked (operation) key bits per sample
  double meanBitsUsed = 0.0;       // key bits consumed by locking (ERA may exceed budget)
  double meanGlobalMetric = 0.0;   // M^g_sec of the locked samples
  double meanRestrictedMetric = 0.0;
  /// Samples whose locked module misbehaved under the correct key; always 0
  /// unless config.verifyFunctional found a locking bug.
  int functionalFailures = 0;
};

/// Evaluates `algorithm` on per-worker clones of `original`.  The sample
/// loop is sharded across `config.threads` workers; each worker clones the
/// module once and restores it between samples through the engine's undo
/// path, and each sample owns an Rng substream.
///
/// Contract -------------------------------------------------------------------
/// Ownership: `original` and `table` are borrowed const for the duration of
///   the call and never mutated — all locking happens on private per-worker
///   clones that die with the call.
/// Determinism: the result is a pure function of (original, algorithm,
///   table, config minus threads, rng state); `config.threads` only selects
///   the worker count and is proven not to change a single output bit
///   (tests/integration/determinism_test.cpp).  `rng` advances by exactly
///   one draw per call regardless of thread or sample count.
/// Thread-safety: safe to call concurrently with distinct `rng` objects;
///   internal workers never share mutable state.  Do not share one Rng
///   across concurrent callers.
[[nodiscard]] EvaluationResult evaluateBenchmark(const rtl::Module& original,
                                                 const std::string& benchmarkName,
                                                 lock::Algorithm algorithm,
                                                 const lock::PairTable& table,
                                                 const EvaluationConfig& config,
                                                 support::Rng& rng);

}  // namespace rtlock::attack
