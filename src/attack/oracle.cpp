#include "attack/oracle.hpp"

namespace rtlock::attack {

OracleAttackResult oracleGuidedAttack(const rtl::Module& oracle, const rtl::Module& locked,
                                      const std::vector<lock::LockRecord>& truth,
                                      const OracleAttackConfig& config, support::Rng& rng) {
  RTLOCK_REQUIRE(locked.keyWidth() > 0, "oracle attack needs a locked design");

  sim::EquivalenceOptions options;
  options.vectors = config.vectors;
  options.cyclesPerVector = config.cyclesPerVector;

  // Compile both designs once; the hill climb then only streams hypothesis
  // keys and stimuli through the tapes (the attack's hot loop).
  sim::Harness harness{oracle, locked, config.backend};

  // Fixed stimulus seed: every corruption measurement uses identical inputs,
  // so hypothesis comparisons are exact rather than statistical.
  const std::uint64_t stimulusSeed = rng();
  const auto measure = [&](const sim::BitVector& key) {
    support::Rng stimulusRng{stimulusSeed};
    return harness.outputCorruption(key, options, stimulusRng);
  };

  // Multi-pass hill climbing over the key bits with random restarts: flip a
  // bit, keep the flip if the oracle mismatch shrinks.  As the key improves,
  // each remaining wrong bit contributes a larger share of the corruption,
  // so later passes clean up bits whose signal was masked earlier.  Restarts
  // escape the pairwise-cancelling minima typical of xor-heavy datapaths.
  sim::BitVector key{locked.keyWidth()};
  double bestCorruption = 2.0;
  for (int restart = 0; restart < config.restarts && bestCorruption > 0.0; ++restart) {
    sim::BitVector candidate = sim::BitVector::random(locked.keyWidth(), rng);
    double corruption = measure(candidate);
    for (int pass = 0; pass < config.trials && corruption > 0.0; ++pass) {
      bool improved = false;
      for (const lock::LockRecord& record : truth) {
        candidate.setBit(record.keyIndex, !candidate.bit(record.keyIndex));
        const double flipped = measure(candidate);
        if (flipped < corruption) {
          corruption = flipped;
          improved = true;
        } else {
          candidate.setBit(record.keyIndex, !candidate.bit(record.keyIndex));  // revert
        }
      }
      if (!improved) break;
    }
    if (corruption < bestCorruption) {
      bestCorruption = corruption;
      key = candidate;
    }
  }

  OracleAttackResult result;
  result.predictions.reserve(truth.size());
  for (const lock::LockRecord& record : truth) {
    const int predicted = key.bit(record.keyIndex) ? 1 : 0;
    result.predictions.push_back(predicted);
    ++result.keyBits;
    if (predicted == (record.keyValue ? 1 : 0)) ++result.correct;
  }
  result.kpa = result.keyBits == 0 ? 0.0
                                   : 100.0 * static_cast<double>(result.correct) /
                                         static_cast<double>(result.keyBits);
  return result;
}

}  // namespace rtlock::attack
