#include "attack/harvest.hpp"

#include <algorithm>
#include <utility>

#include "support/diagnostics.hpp"

namespace rtlock::attack {

namespace {

using rtl::Expr;
using rtl::ExprKind;

}  // namespace

LocalityHarvester::LocalityHarvester(lock::LockEngine& engine, const LocalityConfig& config)
    : engine_(engine), config_(config) {
  RTLOCK_REQUIRE(engine.observer() == nullptr,
                 "the engine already has a lock observer attached");
  engine_.setObserver(this);
  beginRound();
}

LocalityHarvester::~LocalityHarvester() {
  if (engine_.observer() == this) engine_.setObserver(nullptr);
}

void LocalityHarvester::beginRound() {
  entries_.clear();
  events_.clear();
  roundKeyValues_.clear();
  roundKeyStart_ = engine_.module().keyWidth();
}

void LocalityHarvester::onLock(const lock::LockRecord& record, const rtl::ExprSlot& slot) {
  RTLOCK_REQUIRE(record.keyIndex >= roundKeyStart_,
                 "locality harvester saw a key bit below the round's key start "
                 "(undo past beginRound() is not supported mid-round)");
  RTLOCK_REQUIRE(record.keyIndex - roundKeyStart_ ==
                     static_cast<int>(roundKeyValues_.size()),
                 "locality harvester expects sequentially allocated key bits");
  roundKeyValues_.push_back(record.keyValue);
  events_.push_back(Event{record.keyIndex, entries_.size()});

  // The slot now holds the freshly installed mux; its parent construct is
  // the expression owning the slot (kTopCode for assignment/statement roots)
  // and can never change while the lock is applied.
  const Expr* parentExpr = slot.holder->asExpr();
  const int parentCode = parentExpr != nullptr ? constructCode(*parentExpr) : kTopCode;
  const auto& mux = static_cast<const rtl::TernaryExpr&>(*slot.get());
  entries_.push_back(Entry{record.keyIndex, &mux, parentCode, false});

  // Key muxes cloned into the dummy operand subtree (possible when operands
  // are not plain signal references) are localities the full walk would see
  // too.  Iterative pre-order over the dummy branch, tracking parent codes.
  const Expr& dummyBranch = record.keyValue ? mux.elseExpr() : mux.thenExpr();
  const int dummyCode = constructCode(dummyBranch);
  pending_.clear();
  // Three-address operands are leaves, so the common case pushes nothing and
  // exits immediately; deeper operand subtrees get the full pre-order walk.
  for (int i = dummyBranch.exprSlotCount() - 1; i >= 0; --i) {
    const Expr& child = dummyBranch.child(i);
    if (child.exprSlotCount() == 0 && child.kind() != ExprKind::Ternary) continue;
    pending_.emplace_back(&child, dummyCode);
  }
  while (!pending_.empty()) {
    const auto [expr, parent] = pending_.back();
    pending_.pop_back();
    if (expr->kind() == ExprKind::Ternary) {
      const auto& ternary = static_cast<const rtl::TernaryExpr&>(*expr);
      if (ternary.isKeyMux()) {
        const int keyIndex =
            static_cast<const rtl::KeyRefExpr&>(ternary.cond()).firstBit();
        entries_.push_back(Entry{keyIndex, &ternary, parent, true});
      }
    }
    const int myCode = constructCode(*expr);
    for (int i = expr->exprSlotCount() - 1; i >= 0; --i) {
      pending_.emplace_back(&expr->child(i), myCode);
    }
  }
}

void LocalityHarvester::onUndo(const lock::LockRecord& record) {
  if (events_.empty()) return;  // lock predates this round's tracking
  RTLOCK_REQUIRE(events_.back().keyIndex == record.keyIndex,
                 "locality harvester expects LIFO undo");
  entries_.resize(events_.back().firstEntry);
  events_.pop_back();
  RTLOCK_REQUIRE(!roundKeyValues_.empty(),
                 "locality harvester round labels out of sync with undo");
  roundKeyValues_.pop_back();
}

template <typename Emit>
void LocalityHarvester::forEachHarvested(Emit&& emit) const {
  // Clone-free rounds (the common case) record only fresh muxes, whose key
  // bits are allocated sequentially: entries_ is already filtered and
  // ascending, so emit straight from it.
  if (!roundHasClonedKeyMuxes()) {
    for (const Entry& entry : entries_) {
      row_.clear();
      appendLocalityFeatures(*entry.mux, entry.parentCode, config_, row_);
      emit(entry, row_);
    }
    return;
  }
  // Entries arrive in lock-event order; clones can carry smaller key indices
  // than the mux that cloned them (or target-range indices to filter), so
  // order by key index like the full-walk extractor (stable sort of pointers
  // — entries_ itself stays in event order for undo bookkeeping).
  order_.clear();
  order_.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    if (entry.keyIndex < roundKeyStart_) continue;
    order_.push_back(&entry);
  }
  std::stable_sort(order_.begin(), order_.end(),
                   [](const Entry* a, const Entry* b) { return a->keyIndex < b->keyIndex; });
  for (const Entry* entry : order_) {
    row_.clear();
    appendLocalityFeatures(*entry->mux, entry->parentCode, config_, row_);
    emit(*entry, row_);
  }
}

bool LocalityHarvester::roundHasClonedKeyMuxes() const noexcept {
  return std::any_of(entries_.begin(), entries_.end(),
                     [](const Entry& entry) { return entry.clone; });
}

std::vector<Locality> LocalityHarvester::harvest() const {
  std::vector<Locality> result;
  forEachHarvested([&result](const Entry& entry, const ml::FeatureRow& features) {
    result.push_back(Locality{entry.keyIndex, features});
  });
  return result;
}

void LocalityHarvester::harvestInto(ml::Dataset& out) const {
  if (roundHasClonedKeyMuxes()) {
    // Legacy bit-exact path: cloned key muxes mean duplicate key indices,
    // whose relative order under the extractor's std::sort is
    // implementation-defined — and committed into the quality baseline.
    // Reproduce it by running the extractor itself for this round.
    for (const Locality& locality :
         extractLocalities(engine_.module(), config_, roundKeyStart_)) {
      const auto labelIndex = static_cast<std::size_t>(locality.keyIndex - roundKeyStart_);
      RTLOCK_REQUIRE(labelIndex < roundKeyValues_.size(),
                     "harvested a training mux with unknown key bit");
      out.add(locality.features, roundKeyValues_[labelIndex] ? 1 : 0);
    }
    return;
  }
  forEachHarvested([this, &out](const Entry& entry, const ml::FeatureRow& features) {
    const auto labelIndex = static_cast<std::size_t>(entry.keyIndex - roundKeyStart_);
    RTLOCK_REQUIRE(labelIndex < roundKeyValues_.size(),
                   "harvested a training mux with unknown key bit");
    out.add(features, roundKeyValues_[labelIndex] ? 1 : 0);
  });
}

}  // namespace rtlock::attack
