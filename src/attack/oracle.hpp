// Oracle-guided key recovery — the paper's open question (Sec. 5.1,
// "Limitations and opportunities": "Are the locking algorithms resilient to
// oracle-guided attacks?").
//
// Threat model change: unlike SnapShot (oracle-less), the attacker here also
// owns a working chip (the oracle) and can compare its I/O behaviour against
// the locked RTL under hypothesis keys.  The attack probes one key bit at a
// time: for randomized settings of all other bits it measures output
// corruption with the probed bit at 0 and at 1, and keeps the value with the
// lower corruption mass.  Operation locking has no SAT-style protection, so
// the per-bit corruption signal is strong regardless of operation balance —
// learning resilience does not imply oracle resilience.
#pragma once

#include "core/engine.hpp"
#include "sim/harness.hpp"

namespace rtlock::attack {

struct OracleAttackConfig {
  /// Hill-climbing passes over the key bits per restart.
  int trials = 6;
  /// Independent random restarts (XOR-heavy designs have pairwise-cancelling
  /// local minima; restarts escape them).
  int restarts = 4;
  /// Stimulus vectors per corruption measurement.
  int vectors = 8;
  /// Must exceed the design's pipeline depth or deep bits stay unobservable.
  int cyclesPerVector = 24;
  /// Simulator executing the corruption measurements.  The sliced default
  /// packs all `vectors` stimulus lanes of a measurement into one tape pass;
  /// Compiled is the scalar oracle for differential runs.  Both produce
  /// bit-identical corruption values, so the recovered key never depends on
  /// the backend.
  sim::SimBackend backend = sim::SimBackend::Sliced;
};

struct OracleAttackResult {
  int keyBits = 0;
  int correct = 0;
  double kpa = 0.0;
  std::vector<int> predictions;  // aligned with `truth`
};

/// Recovers the key bits listed in `truth` by corruption probing.  `oracle`
/// is the unlocked golden design (stands in for the working chip).  The
/// ground-truth values in `truth` are used only for scoring.
[[nodiscard]] OracleAttackResult oracleGuidedAttack(const rtl::Module& oracle,
                                                    const rtl::Module& locked,
                                                    const std::vector<lock::LockRecord>& truth,
                                                    const OracleAttackConfig& config,
                                                    support::Rng& rng);

}  // namespace rtlock::attack
