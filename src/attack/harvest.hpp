// Incremental locality harvesting — the O(relock budget) replacement for
// re-walking the whole module with extractLocalities() after every relock
// round of the SnapShot attack.
//
// The harvester observes a LockEngine: every lockOpAt records the freshly
// installed key mux (plus any key muxes cloned into its dummy operand
// subtree, which the full walk would also see).  Feature vectors are NOT
// captured at lock time — a later lock in the same round can wrap a recorded
// mux's branch (the paper's Fig. 3b nesting), changing its C1/C2 codes and
// branch depths.  Instead harvest() computes features from the live
// expression tree right before the round is undone; expression nodes never
// move in memory (see core/engine.hpp), so the recorded mux pointers stay
// valid until their locks are undone.  One exception is pre-computed: a
// mux's *parent* construct can never change after insertion (only binary
// operations are wrapped, and wrapping interposes the new mux below the old
// parent), so the parent code is captured at lock time.
//
// extractLocalities() is retained as the differential oracle; the
// equivalence is enforced per registry design in tests/attack/harvest_test.
#pragma once

#include <vector>

#include "attack/locality.hpp"
#include "core/engine.hpp"

namespace rtlock::attack {

class LocalityHarvester final : public lock::LockObserver {
 public:
  /// Registers itself as `engine`'s observer (the engine must have none) and
  /// unregisters on destruction.  Both must outlive every lock the harvester
  /// witnesses.
  LocalityHarvester(lock::LockEngine& engine, const LocalityConfig& config);
  ~LocalityHarvester() override;

  LocalityHarvester(const LocalityHarvester&) = delete;
  LocalityHarvester& operator=(const LocalityHarvester&) = delete;

  /// Starts a relock round: discards previously recorded muxes and collects
  /// localities for key bits allocated from the current key width onwards.
  /// Undoing past the round's key start mid-round is not supported.
  void beginRound();

  /// Localities of every recorded key mux with keyIndex >= the round's key
  /// start, ascending by key index (stable in lock order for duplicate clone
  /// indices), with features computed from the live tree.  Call before
  /// undoing the round.
  [[nodiscard]] std::vector<Locality> harvest() const;

  /// Appends one (features, key-bit label) training row per harvested
  /// locality to `out` — the path snapshotAttack trains from.  Rounds whose
  /// locks cloned a key mux into a dummy subtree (duplicate key indices) are
  /// routed through the legacy full-walk extractor so the training rows stay
  /// bit-identical to the historical pipeline, duplicate tie order included;
  /// every other round takes the pure O(budget) incremental path.
  void harvestInto(ml::Dataset& out) const;

  /// True when the current round recorded at least one cloned key mux (the
  /// condition that makes harvestInto fall back to the full walk).
  [[nodiscard]] bool roundHasClonedKeyMuxes() const noexcept;

  // LockObserver
  void onLock(const lock::LockRecord& record, const rtl::ExprSlot& slot) override;
  void onUndo(const lock::LockRecord& record) override;

 private:
  struct Entry {
    int keyIndex = 0;
    const rtl::TernaryExpr* mux = nullptr;
    int parentCode = kTopCode;
    bool clone = false;  // found in a dummy subtree rather than installed
  };
  /// One lockOpAt: the new mux entry plus any cloned-mux entries that came
  /// with its dummy subtree, so undo can drop them together.
  struct Event {
    int keyIndex = 0;
    std::size_t firstEntry = 0;
  };

  template <typename Emit>
  void forEachHarvested(Emit&& emit) const;

  lock::LockEngine& engine_;
  LocalityConfig config_;
  int roundKeyStart_ = 0;
  std::vector<Entry> entries_;           // in lock-event order
  std::vector<Event> events_;            // LIFO with the engine's undo stack
  std::vector<bool> roundKeyValues_;     // label of key bit roundKeyStart_ + i
  std::vector<std::pair<const rtl::Expr*, int>> pending_;  // clone-scan scratch
  mutable std::vector<const Entry*> order_;  // harvest sort scratch
  mutable ml::FeatureRow row_;               // harvest feature scratch
};

}  // namespace rtlock::attack
