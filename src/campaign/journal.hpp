// Crash-safe campaign checkpointing (rtlock-journal/v1).
//
// A campaign is a grid of pure cells: thanks to the substream convention
// (support/rng.hpp), the result of cell (design, algorithm, seed, config) is
// a machine-independent function of its identity alone.  The journal makes
// that purity pay: every completed cell is appended as one self-contained
// JSON line keyed by its row identity, so a campaign killed at any point —
// crash, OOM, SIGINT — resumes by simply skipping the cells already on
// disk.  docs/CAMPAIGNS.md is the format reference.
//
// Crash-safety model:
//  * every row is serialized to one complete line in memory first, then
//    written with a single append + flush — a torn write can only ever
//    damage the tail of the file;
//  * reload tolerates exactly that: a final line that does not parse is
//    discarded (and truncated away so new appends start clean), while a
//    corrupt *interior* line is a hard support::Error — interior damage is
//    not something a crash can produce, so it must never be papered over;
//  * the header line pins the campaign identity (design_hash, config_hash).
//    Resuming against a journal written by a different campaign fails
//    loudly instead of silently merging unrelated rows.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "support/json.hpp"

namespace rtlock::campaign {

inline constexpr const char* kJournalSchema = "rtlock-journal/v1";

/// Row identity: the four coordinates that make a cell a pure function.
/// Two campaigns agree on a cell's key iff they would compute the same row.
struct CellId {
  std::string designHash;  // fnv1a64Hex of the design source (+ module name)
  std::string algorithm;   // CLI spelling, e.g. "hra"
  std::uint64_t seed = 0;
  std::string configHash;  // fnv1a64Hex of the canonical config description

  /// "designHash:algorithm:seed:configHash" — the journal's "cell" member.
  [[nodiscard]] std::string key() const;
};

/// Campaign identity as pinned by the journal header.
struct CampaignIdentity {
  std::string designHash;
  std::string configHash;
  std::string design;  // human-readable (module name); informational only
  std::string config;  // human-readable config text; informational only
};

/// One journaled row.  `status` is "ok", "error" or "timeout"; ok rows carry
/// the result payload, error rows the structured failure.
struct JournalRow {
  CellId id;
  std::string status;  // "ok" | "error" | "timeout"
  int attempts = 1;
  double wallMs = 0.0;
  support::JsonValue payload;    // ok rows: the cell's result object
  std::string errorCode;         // error/timeout rows
  std::string errorWhat;

  [[nodiscard]] bool ok() const noexcept { return status == "ok"; }
};

class Journal {
 public:
  /// Opens (creating if absent) the journal at `path` for `identity`.
  /// Existing files are reloaded: completed rows become visible through
  /// rows(), a torn tail is discarded and truncated away, a header that
  /// belongs to a different campaign throws support::Error.
  Journal(std::string path, CampaignIdentity identity);

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// Rows reloaded from disk plus rows appended this session, keyed by
  /// CellId::key().  Later rows for the same cell supersede earlier ones
  /// (a resume that re-runs an error cell appends a fresh row).
  [[nodiscard]] const std::map<std::string, JournalRow>& rows() const noexcept { return rows_; }

  /// True when reload discarded a torn final line (diagnostic only).
  [[nodiscard]] bool recoveredTornTail() const noexcept { return tornTail_; }

  /// Number of rows reloaded from disk at open time.
  [[nodiscard]] std::size_t reloadedRows() const noexcept { return reloadedRows_; }

  /// Appends one row: serialize to a single line, one write, flush.  Safe
  /// to call concurrently from pool workers.  Throws support::Error when
  /// the filesystem rejects the write.
  void append(const JournalRow& row);

 private:
  std::string path_;
  CampaignIdentity identity_;
  std::map<std::string, JournalRow> rows_;
  std::mutex writeMutex_;
  bool tornTail_ = false;
  std::size_t reloadedRows_ = 0;
};

/// Serialization, exposed for tests and the --check differ.
[[nodiscard]] support::JsonValue journalRowToJson(const JournalRow& row);
[[nodiscard]] JournalRow journalRowFromJson(const support::JsonValue& value);

/// One journal parsed read-only — the merge tool's view.  Unlike the Journal
/// class this never creates, truncates or rewrites anything on disk.
struct JournalFile {
  CampaignIdentity identity;      // from the header (valid iff headerIntact)
  bool headerIntact = false;      // false: file empty or the header line is torn
  std::vector<JournalRow> rows;   // intact rows in file order (duplicates kept)
  bool tornTail = false;          // final line was torn and ignored
  std::size_t intactBytes = 0;    // offset just past the last intact line
};

/// Parses the journal at `path` without modifying it.  Torn *final* lines
/// are tolerated exactly like Journal's reload; interior damage and unknown
/// schemas throw support::Error; a missing file throws support::Error.
[[nodiscard]] JournalFile readJournalFile(const std::string& path);

}  // namespace rtlock::campaign
