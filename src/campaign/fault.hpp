// Deterministic fault injection for campaign robustness testing.
//
// A FaultPlan maps grid-cell indices to faults; the runner consults it just
// before (crash) and inside (throw/hang) a cell's execution.  Because the
// trigger is the cell's *grid index* — stable across resumes and thread
// counts — a fault plan makes crash-kill-resume scenarios reproducible:
// tests and CI prove that a campaign killed at cell N and resumed produces
// a report byte-identical to an uninterrupted run.
//
// Syntax (the RTLOCK_FAULT_INJECT environment variable):
//   cell:<index>:<kind>[,cell:<index>:<kind>...]
// with <kind> one of:
//   throw  — the cell throws support::Error on every attempt (exercises the
//            error-row path and retry accounting);
//   hang   — the cell spins cooperatively until its deadline expires, then
//            raises CellTimeout (exercises the timeout-row path; with no
//            deadline it waits for a stop request);
//   crash  — the process exits immediately via _Exit(kCrashExitCode), no
//            unwinding, no flushes — the closest portable stand-in for
//            kill -9 (exercises journal reload + torn-tail recovery).
#pragma once

#include <cstddef>
#include <optional>
#include <string_view>
#include <vector>

namespace rtlock::campaign {

/// Exit code of an injected crash; distinct from every CLI exit code so the
/// subprocess harness can tell an injected kill from a real failure.
inline constexpr int kCrashExitCode = 86;

enum class FaultKind { Throw, Hang, Crash };

struct FaultPoint {
  std::size_t cell = 0;
  FaultKind kind = FaultKind::Throw;
};

class FaultPlan {
 public:
  FaultPlan() = default;

  /// Parses "cell:N:throw|hang|crash[,...]"; empty text gives an empty plan.
  /// Malformed specs throw support::Error naming the offending piece.
  [[nodiscard]] static FaultPlan parse(std::string_view text);

  /// Plan from the RTLOCK_FAULT_INJECT environment variable (empty plan
  /// when unset).
  [[nodiscard]] static FaultPlan fromEnv();

  [[nodiscard]] bool empty() const noexcept { return points_.empty(); }

  /// The fault armed for grid cell `cell`, if any.
  [[nodiscard]] std::optional<FaultKind> at(std::size_t cell) const noexcept;

 private:
  std::vector<FaultPoint> points_;
};

}  // namespace rtlock::campaign
