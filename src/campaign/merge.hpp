// Journal union for multi-host campaigns.
//
// Each worker in a distributed campaign appends to its own journal; the
// merge tool unions any number of them into the single-campaign view a
// report is built from.  The rules lean entirely on the determinism
// contract (identical row identity ⇒ identical bytes):
//
//  * every journal's identity header must match the first one's hashes —
//    mixing campaigns is a hard error, never a silent union;
//  * duplicate ok rows for one cell (double compute after a lease steal)
//    must be byte-identical in their payload; identical → deduplicated,
//    differing → hard determinism error naming the cell, because that can
//    only mean a cell broke the purity contract;
//  * an ok row supersedes error/timeout rows for the same cell (one worker
//    failed transiently, another succeeded);
//  * among multiple failure rows for one cell the lexicographically
//    smallest serialized row wins, so the merged result is independent of
//    journal order.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "campaign/journal.hpp"

namespace rtlock::campaign {

struct MergeStats {
  std::size_t journals = 0;
  std::size_t okRows = 0;       // distinct ok cells in the merged view
  std::size_t errorRows = 0;    // distinct cells whose best row is an error
  std::size_t timeoutRows = 0;  // distinct cells whose best row is a timeout
  std::size_t duplicatesDropped = 0;    // byte-identical rows removed
  std::size_t supersededFailures = 0;   // error/timeout rows beaten by an ok row
  std::size_t tornTails = 0;            // journals whose final line was torn
};

struct MergeResult {
  CampaignIdentity identity;              // from the first journal's header
  std::map<std::string, JournalRow> rows;  // merged view, keyed by CellId::key()
  MergeStats stats;
};

/// Unions the journals at `paths` (at least one).  Throws support::Error on
/// an unreadable/empty journal, an identity mismatch, or an ok/ok payload
/// conflict (determinism violation).
[[nodiscard]] MergeResult mergeJournals(const std::vector<std::string>& paths);

/// Writes the merged view as a valid rtlock-journal/v1 file (atomic
/// replacement): identity header, then rows sorted by (algorithm, seed).
/// The output round-trips through Journal/readJournalFile, so `rtlock eval
/// --journal=<merged>` replays it without recomputing anything.
void writeMergedJournal(const std::string& path, const MergeResult& merged);

}  // namespace rtlock::campaign
