// Distributed campaign worker: manifest in, per-worker journal out.
//
// runWorker() is the multi-host counterpart of runCampaign(): instead of
// owning the whole grid it repeatedly sweeps the manifest, claims cells
// through the ClaimBoard (lease-based, crash-tolerant — see manifest.hpp),
// executes what it wins with the runner's full retry/deadline/fault
// machinery, and journals each result before publishing the cell's done
// marker.  Any number of workers on any number of hosts can run against the
// same manifest; the fleet converges when every cell has a done marker, and
// mergeJournals() unions the per-worker journals into the campaign view.
//
// Failure semantics differ from a single-process resume in one deliberate
// way: a journaled error/timeout row is FINAL for the manifest (the worker
// publishes its done marker on resume instead of re-running it).  A fleet
// has no operator watching individual workers, so a deterministic failure
// must not ping-pong between hosts forever; re-running failures is the
// single-process `rtlock eval --journal` workflow's job.
#pragma once

#include <cstddef>
#include <string>

#include "campaign/journal.hpp"
#include "campaign/manifest.hpp"
#include "campaign/runner.hpp"

namespace rtlock::campaign {

struct WorkerOptions {
  CampaignOptions campaign;  // threads/retry/deadline/faults/onCell
  std::string ownerId;       // empty → defaultWorkerId()
  double leaseMs = 60000.0;  // claim freshness horizon; <= 0 disables steals
  double pollMs = 50.0;      // sweep sleep while waiting on other workers
  /// Give up after this long without progress anywhere in the fleet
  /// (no claim won, no cell finished, no done marker appeared); 0 = wait
  /// forever.  A safety net against a wedged rival holding a lease with a
  /// heartbeat that never finishes.
  double maxWaitMs = 0.0;
};

struct WorkerReport {
  std::size_t totalCells = 0;
  std::size_t computedCells = 0;   // executed by this worker this run
  std::size_t okCells = 0;         // of computedCells
  std::size_t errorCells = 0;      // of computedCells
  std::size_t timeoutCells = 0;    // of computedCells
  std::size_t journaledCells = 0;  // satisfied from this worker's own journal
  std::size_t doneElsewhere = 0;   // done markers published by other workers
  std::size_t steals = 0;          // stale leases reclaimed
  bool interrupted = false;        // shutdown drain cut the sweep short
  bool timedOut = false;           // maxWaitMs elapsed with no fleet progress
  bool allDone = false;            // every manifest cell has a done marker
  double wallMs = 0.0;
};

/// Works the manifest until every cell is done, shutdown is requested, or
/// maxWaitMs passes without progress.  `journal` must be open against the
/// manifest's identity.  Throws only for infrastructure errors (claim dir,
/// journal I/O); cell failures are captured as rows.
[[nodiscard]] WorkerReport runWorker(const Manifest& manifest, const std::string& manifestPath,
                                     Journal& journal, const WorkerOptions& options,
                                     const CellFn& compute);

}  // namespace rtlock::campaign
