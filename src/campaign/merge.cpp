#include "campaign/merge.hpp"

#include <algorithm>
#include <tuple>
#include <utility>

#include "support/diagnostics.hpp"
#include "support/files.hpp"

namespace rtlock::campaign {

namespace {

[[nodiscard]] support::JsonValue identityHeader(const CampaignIdentity& identity) {
  support::JsonValue header;
  header.set("schema", kJournalSchema);
  header.set("design", identity.design);
  header.set("design_hash", identity.designHash);
  header.set("config", identity.config);
  header.set("config_hash", identity.configHash);
  return header;
}

/// Folds `row` into the merged view under the ok-wins / byte-identical-dedup
/// rules.  `source` names the journal for error messages.
void foldRow(std::map<std::string, JournalRow>& rows, JournalRow row, const std::string& source,
             MergeStats& stats) {
  const std::string key = row.id.key();
  const auto it = rows.find(key);
  if (it == rows.end()) {
    rows.emplace(key, std::move(row));
    return;
  }
  JournalRow& held = it->second;
  if (row.ok() && held.ok()) {
    // Double compute (lease steal, crash between journal append and done
    // marker).  Purity says both payloads are the same bytes; anything else
    // is a determinism violation that must never be averaged away.
    const std::string heldLine = held.payload.dumpLine();
    const std::string rowLine = row.payload.dumpLine();
    if (heldLine != rowLine) {
      throw support::Error{"determinism violation merging " + source + ": cell " + key +
                           " has two ok rows with differing payloads\n  kept:     " + heldLine +
                           "\n  incoming: " + rowLine};
    }
    ++stats.duplicatesDropped;
    return;
  }
  if (row.ok()) {  // ok beats any failure
    held = std::move(row);
    ++stats.supersededFailures;
    return;
  }
  if (held.ok()) {  // failure loses to the held ok row
    ++stats.supersededFailures;
    return;
  }
  // Two failures: keep the lexicographically smaller serialized row so the
  // merge is independent of journal order; identical rows just dedup.
  const std::string heldLine = journalRowToJson(held).dumpLine();
  const std::string rowLine = journalRowToJson(row).dumpLine();
  if (heldLine == rowLine) {
    ++stats.duplicatesDropped;
    return;
  }
  if (rowLine < heldLine) held = std::move(row);
}

}  // namespace

MergeResult mergeJournals(const std::vector<std::string>& paths) {
  if (paths.empty()) throw support::Error{"merge needs at least one journal"};

  MergeResult merged;
  for (const std::string& path : paths) {
    const JournalFile file = readJournalFile(path);
    if (!file.headerIntact) {
      throw support::Error{"journal " + path +
                           " has no intact identity header — it was never past its first write; "
                           "remove it from the merge set"};
    }
    if (merged.stats.journals == 0) {
      merged.identity = file.identity;
    } else if (file.identity.designHash != merged.identity.designHash ||
               file.identity.configHash != merged.identity.configHash) {
      throw support::Error{
          "journal " + path + " belongs to a different campaign (design_hash " +
          file.identity.designHash + "/config_hash " + file.identity.configHash +
          " vs expected " + merged.identity.designHash + "/" + merged.identity.configHash +
          ") — refusing to merge unrelated results"};
    }
    ++merged.stats.journals;
    if (file.tornTail) ++merged.stats.tornTails;
    for (const JournalRow& row : file.rows) {
      foldRow(merged.rows, row, path, merged.stats);
    }
  }

  for (const auto& [key, row] : merged.rows) {
    if (row.ok()) {
      ++merged.stats.okRows;
    } else if (row.status == "timeout") {
      ++merged.stats.timeoutRows;
    } else {
      ++merged.stats.errorRows;
    }
  }
  return merged;
}

void writeMergedJournal(const std::string& path, const MergeResult& merged) {
  std::vector<const JournalRow*> ordered;
  ordered.reserve(merged.rows.size());
  for (const auto& [key, row] : merged.rows) ordered.push_back(&row);
  std::sort(ordered.begin(), ordered.end(), [](const JournalRow* a, const JournalRow* b) {
    return std::tie(a->id.algorithm, a->id.seed) < std::tie(b->id.algorithm, b->id.seed);
  });

  std::string text = identityHeader(merged.identity).dumpLine() + "\n";
  for (const JournalRow* row : ordered) {
    text += journalRowToJson(*row).dumpLine() + "\n";
  }
  support::atomicWriteFile(path, text);
}

}  // namespace rtlock::campaign
