// Shared work manifest for multi-host campaigns (rtlock-manifest/v1).
//
// A manifest is one file, written once, listing every cell of a campaign
// grid by its row identity.  Workers on any number of hosts point at the
// same manifest (on a shared filesystem) and claim cells independently —
// the determinism contract (identical row identity ⇒ identical bytes) means
// they need zero coordination beyond the claim files:
//
//  * the manifest itself is immutable and written atomically (temp + fsync
//    + rename, support::atomicWriteFile): a reader either sees no manifest
//    or the complete cell list, never a prefix;
//  * a worker claims cell i by creating `<manifest>.claims/cell-i.claim`
//    with O_CREAT|O_EXCL — the filesystem's native mutual exclusion.  EEXIST
//    means another worker holds the cell; any other errno is an
//    infrastructure error and fails loudly (never silently treated as
//    "busy");
//  * the claim file carries the owner id and an acquisition timestamp, but
//    *freshness* is judged by the file's mtime: heartbeat() atomically
//    rewrites the claim, bumping mtime, and a claim older than the lease is
//    presumed orphaned by a dead worker and may be stolen.  The steal itself
//    is race-free — rename the stale claim to a unique tombstone (exactly
//    one stealer wins the rename), then re-create via O_CREAT|O_EXCL;
//  * a completed cell gets `<manifest>.claims/cell-i.done` (atomic rename),
//    the cross-worker "skip this" signal.  A crash between journal append
//    and done-marker write, or a steal that races a slow owner, can at
//    worst cause a double compute — which is safe: both workers journal
//    byte-identical rows and the merge tool deduplicates them.
//
// Torn claim files (crash mid-write, or a heartbeat raced by a steal) are
// tolerated: the content is advisory, mtime-based lease expiry still
// applies, and empty/garbage claims age out like any other.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "campaign/runner.hpp"

namespace rtlock::campaign {

inline constexpr const char* kManifestSchema = "rtlock-manifest/v1";

/// The immutable campaign description a manifest file carries: identity,
/// the human-readable row-config text (`setup`) reports are rebuilt from,
/// and every cell in grid order.
struct Manifest {
  CampaignIdentity identity;
  std::string setup;  // report row config text, e.g. "samples=1 rounds=30 budget=75%"
  std::vector<Cell> cells;
};

/// Writes the manifest atomically (temp + fsync + rename).  Concurrent
/// writers racing to create the same grid's manifest are harmless: both
/// serialize identical bytes and rename is atomic.
void writeManifest(const std::string& path, const Manifest& manifest);

/// Parses and validates a manifest: schema, contiguous cell indices, and
/// every cell key consistent with the header hashes.  Throws support::Error
/// on a missing or malformed file.
[[nodiscard]] Manifest readManifest(const std::string& path);

/// The conventional per-worker journal directory for a manifest
/// (`<manifest>.journals`); `rtlock work` defaults its journal there so the
/// final merge can find every worker's rows.
[[nodiscard]] std::string journalsDirFor(const std::string& manifestPath);

/// All `*.jsonl` files in `dir`, sorted (deterministic merge order); empty
/// when the directory does not exist.
[[nodiscard]] std::vector<std::string> listJournals(const std::string& dir);

// ---- cell claiming ---------------------------------------------------------

enum class ClaimStatus {
  Acquired,  // this worker now owns the cell
  Busy,      // another worker holds a fresh claim
  Done,      // the cell has a done marker — skip it
};

struct ClaimOutcome {
  ClaimStatus status = ClaimStatus::Busy;
  bool stolen = false;  // Acquired by reclaiming a stale lease
};

/// A worker's view of a manifest's claim directory.  Thread-safe: all state
/// is immutable after construction, every operation maps to atomic
/// filesystem primitives.
class ClaimBoard {
 public:
  /// Creates `<manifest>.claims/` if absent.  `leaseMs <= 0` disables lease
  /// expiry entirely (claims are never stolen).
  ClaimBoard(const std::string& manifestPath, std::string ownerId, double leaseMs);

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }
  [[nodiscard]] const std::string& owner() const noexcept { return owner_; }

  /// Attempts to claim cell `index` (see the protocol above).  A stale or
  /// orphaned-by-self claim is stolen; a fresh foreign claim reports Busy.
  [[nodiscard]] ClaimOutcome tryClaim(std::size_t index);

  /// Refreshes the lease on a claim this worker holds (atomic rewrite, so a
  /// concurrent reader never sees a torn heartbeat).
  void heartbeat(std::size_t index) const;

  /// Drops a claim this worker holds without completing the cell (shutdown
  /// drain): the cell becomes immediately claimable again.
  void release(std::size_t index) const noexcept;

  /// Marks cell `index` complete (atomic done marker).  Idempotent.
  void markDone(std::size_t index, const std::string& status) const;
  [[nodiscard]] bool isDone(std::size_t index) const;

  /// Owner recorded in the cell's claim file; nullopt when unclaimed or the
  /// claim content is torn (tolerated — freshness never depends on it).
  [[nodiscard]] std::optional<std::string> claimOwner(std::size_t index) const;

  [[nodiscard]] std::string claimPath(std::size_t index) const;
  [[nodiscard]] std::string donePath(std::size_t index) const;

 private:
  [[nodiscard]] bool claimIsStale(const std::string& path) const;

  std::string dir_;
  std::string owner_;
  double leaseMs_;
};

/// Default worker identity: "<hostname>-<pid>".
[[nodiscard]] std::string defaultWorkerId();

}  // namespace rtlock::campaign
