#include "campaign/journal.hpp"

#include <filesystem>
#include <fstream>
#include <iterator>
#include <utility>

#include "support/diagnostics.hpp"
#include "support/files.hpp"
#include "support/strings.hpp"

namespace rtlock::campaign {

namespace {

/// Splits `text` into lines, remembering whether the final line was
/// newline-terminated — an unterminated final line is the signature of a
/// torn append.
struct LineSplit {
  std::vector<std::string> lines;
  bool lastTerminated = true;
};

[[nodiscard]] LineSplit splitLines(const std::string& text) {
  LineSplit split;
  std::size_t start = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') {
      split.lines.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  if (start < text.size()) {
    split.lines.emplace_back(text.substr(start));
    split.lastTerminated = false;
  }
  return split;
}

[[nodiscard]] support::JsonValue headerToJson(const CampaignIdentity& identity) {
  support::JsonValue header;
  header.set("schema", kJournalSchema);
  header.set("design", identity.design);
  header.set("design_hash", identity.designHash);
  header.set("config", identity.config);
  header.set("config_hash", identity.configHash);
  return header;
}

void appendLine(const std::string& path, const std::string& line) {
  std::ofstream out{path, std::ios::binary | std::ios::app};
  if (!out) throw support::Error{"cannot open journal " + path + " for writing"};
  out << line << '\n';
  out.flush();
  if (!out) throw support::Error{"failed writing journal " + path};
}

}  // namespace

std::string CellId::key() const {
  return designHash + ":" + algorithm + ":" + std::to_string(seed) + ":" + configHash;
}

support::JsonValue journalRowToJson(const JournalRow& row) {
  support::JsonValue value;
  value.set("cell", row.id.key());
  value.set("algorithm", row.id.algorithm);
  value.set("seed", row.id.seed);
  value.set("status", row.status);
  value.set("attempts", row.attempts);
  value.set("wall_ms", row.wallMs);
  if (row.ok()) {
    value.set("result", row.payload);
  } else {
    support::JsonValue error;
    error.set("code", row.errorCode);
    error.set("what", row.errorWhat);
    value.set("error", std::move(error));
  }
  return value;
}

JournalRow journalRowFromJson(const support::JsonValue& value) {
  JournalRow row;
  const std::string key = value.at("cell").asString();
  const std::vector<std::string> parts = support::split(key, ':');
  if (parts.size() != 4) throw support::Error{"journal row has malformed cell key \"" + key + "\""};
  row.id.designHash = parts[0];
  row.id.algorithm = parts[1];
  try {
    row.id.seed = std::stoull(parts[2]);
  } catch (const std::exception&) {
    throw support::Error{"journal row has malformed seed in cell key \"" + key + "\""};
  }
  row.id.configHash = parts[3];
  row.status = value.at("status").asString();
  if (row.status != "ok" && row.status != "error" && row.status != "timeout") {
    throw support::Error{"journal row has unknown status \"" + row.status + "\""};
  }
  row.attempts = static_cast<int>(value.at("attempts").asInt());
  row.wallMs = value.at("wall_ms").asDouble();
  if (row.ok()) {
    row.payload = value.at("result");
  } else {
    const support::JsonValue& error = value.at("error");
    row.errorCode = error.at("code").asString();
    row.errorWhat = error.at("what").asString();
  }
  return row;
}

JournalFile readJournalFile(const std::string& path) {
  std::string text;
  {
    std::ifstream in{path, std::ios::binary};
    if (!in) throw support::Error{"cannot open journal " + path};
    text.assign(std::istreambuf_iterator<char>{in}, std::istreambuf_iterator<char>{});
  }

  JournalFile file;
  const LineSplit split = splitLines(text);

  // Each row is written as one line + '\n' in a single call, so a partial
  // append can never end in a newline: an unterminated final line is always
  // torn (ignored — determinism makes recomputing it bit-identical), and a
  // final line that fails to parse is torn too.  Damage anywhere else is not
  // something a crash can produce and fails loudly.
  for (std::size_t i = 0; i < split.lines.size(); ++i) {
    const std::string& line = split.lines[i];
    const bool last = i + 1 == split.lines.size();
    if (last && !split.lastTerminated) {
      file.tornTail = true;
      break;
    }
    if (support::trim(line).empty()) {
      file.intactBytes += line.size() + 1;
      continue;
    }
    support::JsonValue value;
    JournalRow row;
    try {
      value = support::parseJson(line);
      if (i != 0) row = journalRowFromJson(value);
    } catch (const support::Error&) {
      if (last) {
        file.tornTail = true;
        break;
      }
      // Interior damage cannot come from a torn append — refuse to guess.
      throw support::Error{"journal " + path + " is corrupt at line " + std::to_string(i + 1) +
                           " (only the final line may be torn)"};
    }
    if (i == 0) {
      const std::string schema = value.at("schema").asString();
      if (schema != kJournalSchema) {
        throw support::Error{"journal " + path + " has unsupported schema \"" + schema +
                             "\" (expected " + std::string{kJournalSchema} + ")"};
      }
      file.identity.designHash = value.at("design_hash").asString();
      file.identity.configHash = value.at("config_hash").asString();
      file.identity.design = value.at("design").asString();
      file.identity.config = value.at("config").asString();
      file.headerIntact = true;
    } else {
      file.rows.push_back(std::move(row));
    }
    file.intactBytes += line.size() + 1;
  }
  return file;
}

Journal::Journal(std::string path, CampaignIdentity identity)
    : path_(std::move(path)), identity_(std::move(identity)) {
  std::error_code ec;
  const bool exists = std::filesystem::exists(path_, ec);
  const std::string headerLine = headerToJson(identity_).dumpLine() + "\n";
  if (!exists) {
    // Atomic creation (temp + fsync + rename): a crash mid-create leaves
    // either no journal or a complete single-header journal, never a torn
    // header under the final name.
    support::atomicWriteFile(path_, headerLine);
    return;
  }

  const JournalFile file = readJournalFile(path_);
  tornTail_ = file.tornTail;
  if (!file.headerIntact) {
    // Zero-byte file or torn header (crash before/within the very first
    // write): nothing intact to keep — start fresh.
    support::atomicWriteFile(path_, headerLine);
    return;
  }
  if (file.identity.designHash != identity_.designHash ||
      file.identity.configHash != identity_.configHash) {
    throw support::Error{"journal " + path_ +
                         " belongs to a different campaign (design_hash/config_hash "
                         "mismatch) — delete it or pass a fresh --journal path"};
  }
  for (const JournalRow& row : file.rows) {
    rows_[row.id.key()] = row;
    ++reloadedRows_;
  }

  // Truncate the torn tail away so new appends start on a clean line.
  const std::uintmax_t size = std::filesystem::file_size(path_, ec);
  if (!ec && file.intactBytes < size) {
    std::filesystem::resize_file(path_, file.intactBytes, ec);
    if (ec) throw support::Error{"cannot truncate torn journal tail in " + path_};
  }
}

void Journal::append(const JournalRow& row) {
  // Serialize outside the lock; the single locked write + flush is what
  // makes a concurrent crash leave at most one torn final line.
  const std::string line = journalRowToJson(row).dumpLine();
  const std::lock_guard<std::mutex> lock{writeMutex_};
  appendLine(path_, line);
  rows_[row.id.key()] = row;
}

}  // namespace rtlock::campaign
