#include "campaign/journal.hpp"

#include <filesystem>
#include <fstream>
#include <iterator>
#include <utility>

#include "support/diagnostics.hpp"
#include "support/strings.hpp"

namespace rtlock::campaign {

namespace {

/// Splits `text` into lines, remembering whether the final line was
/// newline-terminated — an unterminated final line is the signature of a
/// torn append.
struct LineSplit {
  std::vector<std::string> lines;
  bool lastTerminated = true;
};

[[nodiscard]] LineSplit splitLines(const std::string& text) {
  LineSplit split;
  std::size_t start = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') {
      split.lines.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  if (start < text.size()) {
    split.lines.emplace_back(text.substr(start));
    split.lastTerminated = false;
  }
  return split;
}

[[nodiscard]] support::JsonValue headerToJson(const CampaignIdentity& identity) {
  support::JsonValue header;
  header.set("schema", kJournalSchema);
  header.set("design", identity.design);
  header.set("design_hash", identity.designHash);
  header.set("config", identity.config);
  header.set("config_hash", identity.configHash);
  return header;
}

void writeLine(const std::string& path, const std::string& line, bool truncate) {
  std::ofstream out{path, truncate ? (std::ios::binary | std::ios::trunc)
                                   : (std::ios::binary | std::ios::app)};
  if (!out) throw support::Error{"cannot open journal " + path + " for writing"};
  out << line << '\n';
  out.flush();
  if (!out) throw support::Error{"failed writing journal " + path};
}

}  // namespace

std::string CellId::key() const {
  return designHash + ":" + algorithm + ":" + std::to_string(seed) + ":" + configHash;
}

support::JsonValue journalRowToJson(const JournalRow& row) {
  support::JsonValue value;
  value.set("cell", row.id.key());
  value.set("algorithm", row.id.algorithm);
  value.set("seed", row.id.seed);
  value.set("status", row.status);
  value.set("attempts", row.attempts);
  value.set("wall_ms", row.wallMs);
  if (row.ok()) {
    value.set("result", row.payload);
  } else {
    support::JsonValue error;
    error.set("code", row.errorCode);
    error.set("what", row.errorWhat);
    value.set("error", std::move(error));
  }
  return value;
}

JournalRow journalRowFromJson(const support::JsonValue& value) {
  JournalRow row;
  const std::string key = value.at("cell").asString();
  const std::vector<std::string> parts = support::split(key, ':');
  if (parts.size() != 4) throw support::Error{"journal row has malformed cell key \"" + key + "\""};
  row.id.designHash = parts[0];
  row.id.algorithm = parts[1];
  try {
    row.id.seed = std::stoull(parts[2]);
  } catch (const std::exception&) {
    throw support::Error{"journal row has malformed seed in cell key \"" + key + "\""};
  }
  row.id.configHash = parts[3];
  row.status = value.at("status").asString();
  if (row.status != "ok" && row.status != "error" && row.status != "timeout") {
    throw support::Error{"journal row has unknown status \"" + row.status + "\""};
  }
  row.attempts = static_cast<int>(value.at("attempts").asInt());
  row.wallMs = value.at("wall_ms").asDouble();
  if (row.ok()) {
    row.payload = value.at("result");
  } else {
    const support::JsonValue& error = value.at("error");
    row.errorCode = error.at("code").asString();
    row.errorWhat = error.at("what").asString();
  }
  return row;
}

Journal::Journal(std::string path, CampaignIdentity identity)
    : path_(std::move(path)), identity_(std::move(identity)) {
  std::error_code ec;
  const bool exists = std::filesystem::exists(path_, ec);
  if (!exists) {
    writeLine(path_, headerToJson(identity_).dumpLine(), /*truncate=*/true);
    return;
  }

  std::string text;
  {
    std::ifstream in{path_, std::ios::binary};
    if (!in) throw support::Error{"cannot open journal " + path_};
    text.assign(std::istreambuf_iterator<char>{in}, std::istreambuf_iterator<char>{});
  }
  const LineSplit split = splitLines(text);
  if (split.lines.empty()) {
    // Zero-byte file (crash before the header flush): start fresh.
    writeLine(path_, headerToJson(identity_).dumpLine(), /*truncate=*/true);
    return;
  }

  // Byte offset just past the last intact line; everything beyond it is a
  // torn tail to truncate away so new appends start on a clean line.  Each
  // row is written as one line + '\n' in a single call, so a partial append
  // can never end in a newline: an unterminated final line is always torn
  // (discarded — determinism makes recomputing it bit-identical), and a
  // final line that fails to parse is torn too.  Damage anywhere else is
  // not something a crash can produce and fails loudly.
  std::size_t goodEnd = 0;
  for (std::size_t i = 0; i < split.lines.size(); ++i) {
    const std::string& line = split.lines[i];
    const bool last = i + 1 == split.lines.size();
    if (last && !split.lastTerminated) {
      tornTail_ = true;
      break;
    }
    if (support::trim(line).empty()) {
      goodEnd += line.size() + 1;
      continue;
    }
    support::JsonValue value;
    JournalRow row;
    bool parsed = false;
    try {
      value = support::parseJson(line);
      if (i != 0) row = journalRowFromJson(value);
      parsed = true;
    } catch (const support::Error&) {
      if (last) {
        tornTail_ = true;
        break;
      }
      // Interior damage cannot come from a torn append — refuse to guess.
      throw support::Error{"journal " + path_ + " is corrupt at line " + std::to_string(i + 1) +
                           " (only the final line may be torn)"};
    }
    if (parsed && i == 0) {
      const std::string schema = value.at("schema").asString();
      if (schema != kJournalSchema) {
        throw support::Error{"journal " + path_ + " has unsupported schema \"" + schema +
                             "\" (expected " + std::string{kJournalSchema} + ")"};
      }
      if (value.at("design_hash").asString() != identity_.designHash ||
          value.at("config_hash").asString() != identity_.configHash) {
        throw support::Error{"journal " + path_ +
                             " belongs to a different campaign (design_hash/config_hash "
                             "mismatch) — delete it or pass a fresh --journal path"};
      }
    } else if (parsed) {
      rows_[row.id.key()] = row;
      ++reloadedRows_;
    }
    goodEnd += line.size() + 1;
  }

  if (goodEnd < text.size()) {
    if (goodEnd == 0) {
      // Header itself was torn: rewrite a fresh header, keep nothing.
      rows_.clear();
      reloadedRows_ = 0;
      writeLine(path_, headerToJson(identity_).dumpLine(), /*truncate=*/true);
      return;
    }
    std::filesystem::resize_file(path_, goodEnd, ec);
    if (ec) throw support::Error{"cannot truncate torn journal tail in " + path_};
  }
}

void Journal::append(const JournalRow& row) {
  // Serialize outside the lock; the single locked write + flush is what
  // makes a concurrent crash leave at most one torn final line.
  const std::string line = journalRowToJson(row).dumpLine();
  const std::lock_guard<std::mutex> lock{writeMutex_};
  writeLine(path_, line, /*truncate=*/false);
  rows_[row.id.key()] = row;
}

}  // namespace rtlock::campaign
