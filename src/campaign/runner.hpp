// Fault-isolated, checkpointed campaign runner.
//
// `rtlock eval` (and, later, `rtlock serve`) drives grids of pure cells
// through this layer instead of a bare TaskPool loop.  What it adds on top
// of the pool:
//
//  * per-cell fault isolation — a cell that throws is *captured* as a
//    structured error outcome (code, what(), attempt count) instead of
//    aborting the campaign; every other cell still runs;
//  * bounded retry with capped exponential backoff — transient failures get
//    `RetryPolicy::maxAttempts` tries, deterministic failures surface with
//    their attempt count recorded;
//  * per-cell wall-clock deadlines — a cell that overruns degrades to a
//    `timeout` outcome (cooperatively via CellContext::checkDeadline /
//    CellTimeout where the cell polls, post-hoc otherwise);
//  * crash-safe checkpointing — each completed cell is appended to the
//    Journal the moment it finishes, and journaled cells are skipped on the
//    next run (error/timeout rows re-run unless options.keepErrors);
//  * graceful shutdown — on SIGINT/SIGTERM (or requestShutdown()) the
//    runner stops claiming cells, drains in-flight workers, leaves the
//    journal flushed, and reports interrupted=true.
//
// Determinism contract: compute must be a pure function of the cell
// identity (derive all randomness from the cell's seed/substream, never
// from execution order).  Under that contract a resumed campaign merges to
// outcomes bit-identical to an uninterrupted run at any thread count.
#pragma once

#include <chrono>
#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "campaign/fault.hpp"
#include "campaign/journal.hpp"
#include "support/diagnostics.hpp"

namespace rtlock::campaign {

/// Raised (by cooperative deadline checks and the hang fault) when a cell
/// exceeds its wall-clock deadline; the runner records a timeout outcome.
class CellTimeout : public support::Error {
 public:
  using support::Error::Error;
};

/// One grid cell: identity plus the human-readable label progress lines use.
struct Cell {
  CellId id;
  std::string label;
};

enum class CellStatus { Ok, Error, Timeout, Skipped };

struct CellOutcome {
  CellStatus status = CellStatus::Skipped;
  int attempts = 0;
  double wallMs = 0.0;
  support::JsonValue payload;  // Ok cells: the result object
  std::string errorCode;       // Error/Timeout cells
  std::string errorWhat;
  bool fromJournal = false;    // reloaded, not computed this run
};

struct RetryPolicy {
  int maxAttempts = 2;         // total tries per cell (1 = no retry)
  double backoffBaseMs = 25.0;  // first retry delay; doubles per attempt
  double backoffCapMs = 1000.0;
};

struct CampaignOptions {
  int threads = 0;             // TaskPool convention: 0 = hardware, 1 = serial
  RetryPolicy retry;
  double cellDeadlineMs = 0.0;  // 0 = no deadline
  bool keepErrors = false;      // keep journaled error/timeout rows on resume
  FaultPlan faults;
  /// Progress hook, called once per finished cell under the runner's lock
  /// (grid index, outcome).  May be empty.
  std::function<void(std::size_t, const CellOutcome&)> onCell;
};

/// Execution context handed to compute; long-running cells should call
/// checkDeadline() at convenient points so deadlines and shutdown drains
/// take effect before the cell finishes naturally.
struct CellContext {
  std::size_t index = 0;  // grid index
  int attempt = 1;        // 1-based
  double deadlineMs = 0.0;
  std::chrono::steady_clock::time_point start{};

  [[nodiscard]] double elapsedMs() const;
  [[nodiscard]] bool deadlineExpired() const;
  /// Throws CellTimeout when the deadline has expired.
  void checkDeadline() const;
};

/// Computes one cell's result payload; throws on failure.  Must be pure in
/// the cell identity (see the determinism contract above).
using CellFn = std::function<support::JsonValue(const Cell&, const CellContext&)>;

struct CampaignResult {
  std::vector<CellOutcome> outcomes;  // one per cell, grid order
  std::size_t okCells = 0;
  std::size_t errorCells = 0;
  std::size_t timeoutCells = 0;
  std::size_t skippedCells = 0;    // not run: shutdown drain
  std::size_t journaledCells = 0;  // satisfied from the journal
  bool interrupted = false;
  double wallMs = 0.0;
};

/// Runs the campaign.  `journal` may be null (no checkpointing).  Never
/// throws for cell failures — only for infrastructure errors (journal I/O).
[[nodiscard]] CampaignResult runCampaign(const std::vector<Cell>& cells,
                                         const CampaignOptions& options, Journal* journal,
                                         const CellFn& compute);

/// Runs one cell with the runner's full retry/backoff/deadline/fault
/// machinery; never lets a cell exception escape.  (An injected crash fault
/// does not return at all.)  Exposed for the distributed worker, which
/// claims cells itself instead of going through runCampaign.
[[nodiscard]] CellOutcome executeCell(const Cell& cell, std::size_t index,
                                      const CampaignOptions& options, const CellFn& compute);

/// Outcome <-> journal-row conversion, shared by the runner, the worker and
/// the merge-driven report builders.
[[nodiscard]] JournalRow rowFromOutcome(const Cell& cell, const CellOutcome& outcome);
[[nodiscard]] CellOutcome outcomeFromRow(const JournalRow& row);

/// --check support: re-executes a deterministic sample of up to
/// `sampleSize` journaled ok cells *serially* and byte-compares each
/// recomputed payload against the journaled row (the distributed-vs-serial
/// diff).  Returns the mismatching cell keys (empty = all byte-identical).
struct CheckResult {
  std::size_t checkedCells = 0;
  std::vector<std::string> mismatches;  // "key: journaled <...> recomputed <...>"
};
[[nodiscard]] CheckResult checkJournal(const std::vector<Cell>& cells, const Journal& journal,
                                       std::size_t sampleSize, const CellFn& compute);

// ---- graceful shutdown -----------------------------------------------------

/// Sets the process-wide shutdown flag the runner polls before claiming
/// each cell.  Async-signal-safe.
void requestShutdown() noexcept;
[[nodiscard]] bool shutdownRequested() noexcept;
/// Clears the flag (tests; and the CLI between campaigns).
void clearShutdownRequest() noexcept;

/// RAII SIGINT/SIGTERM installation: first signal requests a graceful
/// drain, a second one exits immediately (128 + signo).  The destructor
/// restores the previous handlers and clears the shutdown flag.
class ScopedSignalHandlers {
 public:
  ScopedSignalHandlers();
  ~ScopedSignalHandlers();
  ScopedSignalHandlers(const ScopedSignalHandlers&) = delete;
  ScopedSignalHandlers& operator=(const ScopedSignalHandlers&) = delete;

 private:
  void (*previousInt_)(int);
  void (*previousTerm_)(int);
};

}  // namespace rtlock::campaign
