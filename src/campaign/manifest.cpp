#include "campaign/manifest.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <utility>

#include "support/diagnostics.hpp"
#include "support/files.hpp"
#include "support/json.hpp"
#include "support/strings.hpp"

namespace rtlock::campaign {

namespace fs = std::filesystem;

namespace {

[[nodiscard]] std::string errnoText(int code) {
  return std::string{std::strerror(code)} + " (errno " + std::to_string(code) + ")";
}

[[nodiscard]] std::int64_t unixMillisNow() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

[[nodiscard]] std::string claimContent(const std::string& owner) {
  support::JsonValue value;
  value.set("owner", owner);
  value.set("heartbeat_unix_ms", unixMillisNow());
  return value.dumpLine() + "\n";
}

/// Age of `path` in milliseconds by mtime; nullopt when the file vanished
/// (lost a race with its owner finishing or a rival stealing).
[[nodiscard]] std::optional<double> fileAgeMs(const std::string& path) {
  std::error_code ec;
  const fs::file_time_type mtime = fs::last_write_time(path, ec);
  if (ec) return std::nullopt;
  const auto age = fs::file_time_type::clock::now() - mtime;
  return std::chrono::duration<double, std::milli>(age).count();
}

}  // namespace

void writeManifest(const std::string& path, const Manifest& manifest) {
  support::JsonValue header;
  header.set("schema", kManifestSchema);
  header.set("design", manifest.identity.design);
  header.set("design_hash", manifest.identity.designHash);
  header.set("config", manifest.identity.config);
  header.set("config_hash", manifest.identity.configHash);
  header.set("setup", manifest.setup);
  header.set("cells", manifest.cells.size());

  std::string text = header.dumpLine() + "\n";
  for (std::size_t i = 0; i < manifest.cells.size(); ++i) {
    const Cell& cell = manifest.cells[i];
    support::JsonValue line;
    line.set("index", i);
    line.set("cell", cell.id.key());
    line.set("algorithm", cell.id.algorithm);
    line.set("seed", cell.id.seed);
    line.set("label", cell.label);
    text += line.dumpLine() + "\n";
  }
  support::atomicWriteFile(path, text);
}

Manifest readManifest(const std::string& path) {
  std::string text;
  {
    std::ifstream in{path, std::ios::binary};
    if (!in) throw support::Error{"cannot open manifest " + path};
    text.assign(std::istreambuf_iterator<char>{in}, std::istreambuf_iterator<char>{});
  }

  Manifest manifest;
  std::size_t declaredCells = 0;
  std::size_t lineNo = 0;
  bool sawHeader = false;
  for (const std::string& line : support::split(text, '\n')) {
    ++lineNo;
    if (support::trim(line).empty()) continue;
    support::JsonValue value;
    try {
      value = support::parseJson(line);
    } catch (const support::Error& error) {
      // Manifests are written atomically, so torn lines cannot happen: any
      // parse failure is real corruption.
      throw support::Error{"manifest " + path + " is corrupt at line " + std::to_string(lineNo) +
                           ": " + error.what()};
    }
    if (!sawHeader) {
      const std::string schema = value.at("schema").asString();
      if (schema != kManifestSchema) {
        throw support::Error{"manifest " + path + " has unsupported schema \"" + schema +
                             "\" (expected " + std::string{kManifestSchema} + ")"};
      }
      manifest.identity.design = value.at("design").asString();
      manifest.identity.designHash = value.at("design_hash").asString();
      manifest.identity.config = value.at("config").asString();
      manifest.identity.configHash = value.at("config_hash").asString();
      manifest.setup = value.at("setup").asString();
      declaredCells = static_cast<std::size_t>(value.at("cells").asInt());
      sawHeader = true;
      continue;
    }
    const std::size_t index = static_cast<std::size_t>(value.at("index").asInt());
    if (index != manifest.cells.size()) {
      throw support::Error{"manifest " + path + " has non-contiguous cell index " +
                           std::to_string(index) + " at line " + std::to_string(lineNo) +
                           " (expected " + std::to_string(manifest.cells.size()) + ")"};
    }
    Cell cell;
    cell.id.designHash = manifest.identity.designHash;
    cell.id.configHash = manifest.identity.configHash;
    cell.id.algorithm = value.at("algorithm").asString();
    cell.id.seed = static_cast<std::uint64_t>(value.at("seed").asInt());
    cell.label = value.at("label").asString();
    const std::string key = value.at("cell").asString();
    if (key != cell.id.key()) {
      throw support::Error{"manifest " + path + " cell " + std::to_string(index) + " key \"" + key +
                           "\" does not match its header identity (expected \"" + cell.id.key() +
                           "\")"};
    }
    manifest.cells.push_back(std::move(cell));
  }
  if (!sawHeader) throw support::Error{"manifest " + path + " is empty"};
  if (manifest.cells.size() != declaredCells) {
    throw support::Error{"manifest " + path + " declares " + std::to_string(declaredCells) +
                         " cells but lists " + std::to_string(manifest.cells.size())};
  }
  return manifest;
}

std::string journalsDirFor(const std::string& manifestPath) {
  return manifestPath + ".journals";
}

std::vector<std::string> listJournals(const std::string& dir) {
  std::vector<std::string> paths;
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator{dir, ec}) {
    if (entry.is_regular_file() && entry.path().extension() == ".jsonl") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

// ---- ClaimBoard ------------------------------------------------------------

ClaimBoard::ClaimBoard(const std::string& manifestPath, std::string ownerId, double leaseMs)
    : dir_(manifestPath + ".claims"), owner_(std::move(ownerId)), leaseMs_(leaseMs) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec && !fs::is_directory(dir_)) {
    throw support::Error{"cannot create claim directory " + dir_ + ": " + ec.message()};
  }
}

std::string ClaimBoard::claimPath(std::size_t index) const {
  return dir_ + "/cell-" + std::to_string(index) + ".claim";
}

std::string ClaimBoard::donePath(std::size_t index) const {
  return dir_ + "/cell-" + std::to_string(index) + ".done";
}

bool ClaimBoard::claimIsStale(const std::string& path) const {
  if (leaseMs_ <= 0.0) return false;
  const std::optional<double> age = fileAgeMs(path);
  // A vanished claim is not stale — the next O_CREAT|O_EXCL attempt settles
  // who owns the cell now.
  return age.has_value() && *age > leaseMs_;
}

ClaimOutcome ClaimBoard::tryClaim(std::size_t index) {
  static std::atomic<unsigned long> stealSeq{0};
  const std::string path = claimPath(index);
  ClaimOutcome outcome;

  // Bounded retries: each loop either wins the create, loses to a fresh
  // rival (Busy), or removes one stale claim.  A tiny cap is plenty — more
  // than one steal per attempt means rivals are making progress anyway.
  for (int round = 0; round < 4; ++round) {
    if (isDone(index)) {
      outcome.status = ClaimStatus::Done;
      return outcome;
    }
    const int fd = ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd >= 0) {
      // Claim won.  The content (owner + heartbeat) is advisory; write it
      // best-effort and tolerate a torn result — freshness rides on mtime.
      const std::string content = claimContent(owner_);
      std::size_t offset = 0;
      while (offset < content.size()) {
        const ::ssize_t written =
            ::write(fd, content.data() + offset, content.size() - offset);
        if (written < 0) {
          if (errno == EINTR) continue;
          break;
        }
        offset += static_cast<std::size_t>(written);
      }
      ::close(fd);
      outcome.status = ClaimStatus::Acquired;
      return outcome;
    }
    if (errno != EEXIST) {
      // Anything but "someone else holds it" is an infrastructure fault
      // (missing directory, EACCES, EROFS, ...) — never mask it as Busy.
      throw support::Error{"cannot create claim file " + path + ": " + errnoText(errno)};
    }

    bool steal = claimIsStale(path);
    if (!steal) {
      // A claim this owner id left behind is an orphan of our own previous
      // incarnation (same host, restarted worker): reclaim it immediately
      // instead of waiting out the lease.
      const std::optional<std::string> holder = claimOwner(index);
      steal = holder.has_value() && *holder == owner_;
    }
    if (!steal) {
      outcome.status = ClaimStatus::Busy;
      return outcome;
    }

    // Steal: rename to a unique tombstone.  rename(2) is atomic, so when
    // several workers notice the same stale claim exactly one rename
    // succeeds — the losers see ENOENT and go round the loop again.
    const std::string tombstone = path + ".steal-" + owner_ + "-" +
                                  std::to_string(stealSeq.fetch_add(1, std::memory_order_relaxed));
    if (::rename(path.c_str(), tombstone.c_str()) == 0) {
      ::unlink(tombstone.c_str());
      outcome.stolen = true;
    } else if (errno != ENOENT) {
      throw support::Error{"cannot reclaim stale claim " + path + ": " + errnoText(errno)};
    }
  }
  outcome.status = ClaimStatus::Busy;
  return outcome;
}

void ClaimBoard::heartbeat(std::size_t index) const {
  support::atomicWriteFile(claimPath(index), claimContent(owner_),
                           support::SyncMode::ProcessCrashOnly);
}

void ClaimBoard::release(std::size_t index) const noexcept {
  ::unlink(claimPath(index).c_str());
}

void ClaimBoard::markDone(std::size_t index, const std::string& status) const {
  support::JsonValue value;
  value.set("owner", owner_);
  value.set("status", status);
  value.set("done_unix_ms", unixMillisNow());
  // Process-crash-only durability: a done marker lost to a power cut just
  // causes one safe recompute, the same window as a crash between journal
  // append and markDone.
  support::atomicWriteFile(donePath(index), value.dumpLine() + "\n",
                           support::SyncMode::ProcessCrashOnly);
}

bool ClaimBoard::isDone(std::size_t index) const {
  std::error_code ec;
  return fs::exists(donePath(index), ec);
}

std::optional<std::string> ClaimBoard::claimOwner(std::size_t index) const {
  std::ifstream in{claimPath(index), std::ios::binary};
  if (!in) return std::nullopt;
  std::string text;
  text.assign(std::istreambuf_iterator<char>{in}, std::istreambuf_iterator<char>{});
  try {
    const support::JsonValue value = support::parseJson(support::trim(text));
    return value.at("owner").asString();
  } catch (const support::Error&) {
    return std::nullopt;  // torn or garbage claim content — tolerated
  }
}

std::string defaultWorkerId() {
  char host[256] = {};
  if (::gethostname(host, sizeof(host) - 1) != 0) {
    std::strncpy(host, "host", sizeof(host) - 1);
  }
  return std::string{host} + "-" + std::to_string(static_cast<long>(::getpid()));
}

}  // namespace rtlock::campaign
