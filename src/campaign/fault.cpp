#include "campaign/fault.hpp"

#include <cstdlib>
#include <string>

#include "support/diagnostics.hpp"
#include "support/strings.hpp"

namespace rtlock::campaign {

FaultPlan FaultPlan::parse(std::string_view text) {
  FaultPlan plan;
  for (const std::string& piece : support::split(text, ',')) {
    const std::string item{support::trim(piece)};
    if (item.empty()) continue;
    const std::vector<std::string> parts = support::split(item, ':');
    if (parts.size() != 3 || parts[0] != "cell") {
      throw support::Error{"malformed fault spec '" + item +
                           "' (expected cell:<index>:throw|hang|crash)"};
    }
    FaultPoint point;
    try {
      point.cell = std::stoull(parts[1]);
    } catch (const std::exception&) {
      throw support::Error{"malformed fault cell index in '" + item + "'"};
    }
    if (parts[2] == "throw") {
      point.kind = FaultKind::Throw;
    } else if (parts[2] == "hang") {
      point.kind = FaultKind::Hang;
    } else if (parts[2] == "crash") {
      point.kind = FaultKind::Crash;
    } else {
      throw support::Error{"unknown fault kind '" + parts[2] +
                           "' in '" + item + "' (expected throw|hang|crash)"};
    }
    plan.points_.push_back(point);
  }
  return plan;
}

FaultPlan FaultPlan::fromEnv() {
  const char* spec = std::getenv("RTLOCK_FAULT_INJECT");
  return spec == nullptr ? FaultPlan{} : parse(spec);
}

std::optional<FaultKind> FaultPlan::at(std::size_t cell) const noexcept {
  for (const FaultPoint& point : points_) {
    if (point.cell == cell) return point.kind;
  }
  return std::nullopt;
}

}  // namespace rtlock::campaign
