#include "campaign/runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <utility>

#include "support/task_pool.hpp"

namespace rtlock::campaign {

namespace {

std::atomic<bool> g_shutdownRequested{false};
std::atomic<int> g_signalCount{0};

// Async-signal-safe: one atomic store plus (on the second signal) _Exit.
void onShutdownSignal(int signo) {
  g_shutdownRequested.store(true, std::memory_order_release);
  if (g_signalCount.fetch_add(1, std::memory_order_acq_rel) >= 1) {
    std::_Exit(128 + signo);
  }
}

[[nodiscard]] const char* statusName(CellStatus status) noexcept {
  switch (status) {
    case CellStatus::Ok:
      return "ok";
    case CellStatus::Error:
      return "error";
    case CellStatus::Timeout:
      return "timeout";
    case CellStatus::Skipped:
      return "skipped";
  }
  return "skipped";
}

[[nodiscard]] CellStatus statusFromName(const std::string& name) {
  if (name == "ok") return CellStatus::Ok;
  if (name == "timeout") return CellStatus::Timeout;
  return CellStatus::Error;
}

/// Sleeps `delayMs`, polling the shutdown flag so a drain never waits out a
/// long backoff.  Returns false when the sleep was cut short by shutdown.
[[nodiscard]] bool backoffSleep(double delayMs) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point until =
      Clock::now() + std::chrono::microseconds{static_cast<long long>(delayMs * 1000.0)};
  while (Clock::now() < until) {
    if (shutdownRequested()) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds{1});
  }
  return !shutdownRequested();
}

/// The hang fault: spin cooperatively until the deadline fires (CellTimeout)
/// or a shutdown drain stops the cell (plain error).  Never returns normally.
[[noreturn]] void runHangFault(const CellContext& context) {
  for (;;) {
    context.checkDeadline();
    if (shutdownRequested()) {
      throw support::Error{"injected hang interrupted by shutdown"};
    }
    std::this_thread::sleep_for(std::chrono::milliseconds{1});
  }
}

}  // namespace

CellOutcome executeCell(const Cell& cell, std::size_t index, const CampaignOptions& options,
                        const CellFn& compute) {
  const std::optional<FaultKind> fault = options.faults.at(index);
  const int maxAttempts = std::max(1, options.retry.maxAttempts);
  CellOutcome outcome;
  for (int attempt = 1; attempt <= maxAttempts; ++attempt) {
    CellContext context;
    context.index = index;
    context.attempt = attempt;
    context.deadlineMs = options.cellDeadlineMs;
    context.start = std::chrono::steady_clock::now();
    try {
      if (fault == FaultKind::Crash) std::_Exit(kCrashExitCode);
      if (fault == FaultKind::Throw) {
        throw support::Error{"injected fault: cell " + std::to_string(index) + " attempt " +
                             std::to_string(attempt)};
      }
      if (fault == FaultKind::Hang) runHangFault(context);
      support::JsonValue payload = compute(cell, context);
      outcome.wallMs = context.elapsedMs();
      outcome.attempts = attempt;
      if (options.cellDeadlineMs > 0.0 && outcome.wallMs > options.cellDeadlineMs) {
        // The cell finished, but past its budget: degrade post-hoc so
        // runaway cells are visible even when they never poll the deadline.
        outcome.status = CellStatus::Timeout;
        outcome.errorCode = "timeout";
        outcome.errorWhat = "cell exceeded its deadline of " +
                            std::to_string(static_cast<long long>(options.cellDeadlineMs)) + " ms";
        return outcome;
      }
      outcome.status = CellStatus::Ok;
      outcome.payload = std::move(payload);
      return outcome;
    } catch (const CellTimeout& timeout) {
      // Deadlines are wall-clock budgets, not transient failures: no retry.
      outcome.status = CellStatus::Timeout;
      outcome.attempts = attempt;
      outcome.wallMs = context.elapsedMs();
      outcome.errorCode = "timeout";
      outcome.errorWhat = timeout.what();
      return outcome;
    } catch (const support::Error& error) {
      outcome.errorCode = "error";
      outcome.errorWhat = error.what();
    } catch (const std::exception& error) {
      outcome.errorCode = "exception";
      outcome.errorWhat = error.what();
    } catch (...) {
      outcome.errorCode = "unknown";
      outcome.errorWhat = "non-standard exception";
    }
    outcome.status = CellStatus::Error;
    outcome.attempts = attempt;
    outcome.wallMs = context.elapsedMs();
    if (attempt < maxAttempts) {
      const double delay =
          std::min(options.retry.backoffCapMs,
                   options.retry.backoffBaseMs * static_cast<double>(1LL << (attempt - 1)));
      if (!backoffSleep(delay)) return outcome;  // drain: report what we have
    }
  }
  return outcome;
}

JournalRow rowFromOutcome(const Cell& cell, const CellOutcome& outcome) {
  JournalRow row;
  row.id = cell.id;
  row.status = statusName(outcome.status);
  row.attempts = outcome.attempts;
  row.wallMs = outcome.wallMs;
  if (outcome.status == CellStatus::Ok) {
    row.payload = outcome.payload;
  } else {
    row.errorCode = outcome.errorCode;
    row.errorWhat = outcome.errorWhat;
  }
  return row;
}

CellOutcome outcomeFromRow(const JournalRow& row) {
  CellOutcome outcome;
  outcome.status = statusFromName(row.status);
  outcome.attempts = row.attempts;
  outcome.wallMs = row.wallMs;
  outcome.fromJournal = true;
  if (outcome.status == CellStatus::Ok) {
    outcome.payload = row.payload;
  } else {
    outcome.errorCode = row.errorCode;
    outcome.errorWhat = row.errorWhat;
  }
  return outcome;
}

double CellContext::elapsedMs() const {
  const std::chrono::duration<double, std::milli> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

bool CellContext::deadlineExpired() const {
  return deadlineMs > 0.0 && elapsedMs() > deadlineMs;
}

void CellContext::checkDeadline() const {
  if (deadlineExpired()) {
    throw CellTimeout{"cell " + std::to_string(index) + " exceeded its deadline of " +
                      std::to_string(static_cast<long long>(deadlineMs)) + " ms"};
  }
}

CampaignResult runCampaign(const std::vector<Cell>& cells, const CampaignOptions& options,
                           Journal* journal, const CellFn& compute) {
  const std::chrono::steady_clock::time_point campaignStart = std::chrono::steady_clock::now();
  CampaignResult result;
  result.outcomes.resize(cells.size());

  // Satisfy cells from the journal first.  Error/timeout rows are re-run
  // unless keepErrors asked to preserve them (e.g. to inspect a failure
  // without burning compute on a known-bad cell).
  std::vector<std::size_t> pending;
  pending.reserve(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const JournalRow* row = nullptr;
    if (journal != nullptr) {
      const auto it = journal->rows().find(cells[i].id.key());
      if (it != journal->rows().end()) row = &it->second;
    }
    if (row != nullptr && (row->ok() || options.keepErrors)) {
      result.outcomes[i] = outcomeFromRow(*row);
      ++result.journaledCells;
      if (options.onCell) options.onCell(i, result.outcomes[i]);
    } else {
      pending.push_back(i);
    }
  }

  support::TaskPool pool{support::threadsForTasks(options.threads, pending.size())};
  std::mutex resultMutex;
  for (const std::size_t index : pending) {
    pool.submit([&, index] {
      if (shutdownRequested()) {
        // Stop claiming cells: this one stays Skipped, and the pool drops
        // everything still queued without running these lambdas at all.
        pool.requestStop();
        return;
      }
      CellOutcome outcome = executeCell(cells[index], index, options, compute);
      if (journal != nullptr) journal->append(rowFromOutcome(cells[index], outcome));
      const std::lock_guard<std::mutex> lock{resultMutex};
      result.outcomes[index] = std::move(outcome);
      if (options.onCell) options.onCell(index, result.outcomes[index]);
    });
  }
  pool.wait();

  for (const CellOutcome& outcome : result.outcomes) {
    switch (outcome.status) {
      case CellStatus::Ok:
        ++result.okCells;
        break;
      case CellStatus::Error:
        ++result.errorCells;
        break;
      case CellStatus::Timeout:
        ++result.timeoutCells;
        break;
      case CellStatus::Skipped:
        ++result.skippedCells;
        break;
    }
  }
  result.interrupted = shutdownRequested();
  const std::chrono::duration<double, std::milli> wall =
      std::chrono::steady_clock::now() - campaignStart;
  result.wallMs = wall.count();
  return result;
}

CheckResult checkJournal(const std::vector<Cell>& cells, const Journal& journal,
                         std::size_t sampleSize, const CellFn& compute) {
  CheckResult check;
  std::vector<std::size_t> journaled;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto it = journal.rows().find(cells[i].id.key());
    if (it != journal.rows().end() && it->second.ok()) journaled.push_back(i);
  }
  if (journaled.empty() || sampleSize == 0) return check;

  // Deterministic spread over the grid: every check run on the same journal
  // re-executes the same cells, and the sample covers the grid's extremes
  // instead of clustering at the front.
  std::vector<std::size_t> sample;
  if (journaled.size() <= sampleSize) {
    sample = journaled;
  } else {
    for (std::size_t k = 0; k < sampleSize; ++k) {
      sample.push_back(journaled[k * journaled.size() / sampleSize]);
    }
  }

  for (const std::size_t index : sample) {
    const Cell& cell = cells[index];
    const JournalRow& row = journal.rows().at(cell.id.key());
    CellContext context;
    context.index = index;
    context.attempt = 1;
    context.start = std::chrono::steady_clock::now();
    const support::JsonValue recomputed = compute(cell, context);
    ++check.checkedCells;
    const std::string journaledLine = row.payload.dumpLine();
    const std::string recomputedLine = recomputed.dumpLine();
    if (journaledLine != recomputedLine) {
      check.mismatches.push_back(cell.id.key() + ": journaled " + journaledLine +
                                 " != recomputed " + recomputedLine);
    }
  }
  return check;
}

void requestShutdown() noexcept {
  g_shutdownRequested.store(true, std::memory_order_release);
}

bool shutdownRequested() noexcept {
  return g_shutdownRequested.load(std::memory_order_acquire);
}

void clearShutdownRequest() noexcept {
  g_shutdownRequested.store(false, std::memory_order_release);
  g_signalCount.store(0, std::memory_order_release);
}

ScopedSignalHandlers::ScopedSignalHandlers()
    : previousInt_(std::signal(SIGINT, &onShutdownSignal)),
      previousTerm_(std::signal(SIGTERM, &onShutdownSignal)) {
  // Deliberately does NOT clear a pre-set shutdown flag: tests simulate a
  // signal by calling requestShutdown() before entering the campaign.
  g_signalCount.store(0, std::memory_order_release);
}

ScopedSignalHandlers::~ScopedSignalHandlers() {
  std::signal(SIGINT, previousInt_);
  std::signal(SIGTERM, previousTerm_);
  // The campaign consumed the drain request; a later campaign in the same
  // process starts fresh.
  clearShutdownRequest();
}

}  // namespace rtlock::campaign
