#include "campaign/worker.hpp"

#include <chrono>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "support/task_pool.hpp"

namespace rtlock::campaign {

namespace {

using Clock = std::chrono::steady_clock;

enum class CellState {
  Pending,   // unclaimed (or busy under a rival's fresh lease)
  InFlight,  // claimed by this worker, executing in the pool
  Local,     // finished by this worker (this run or its own journal)
  Remote,    // done marker published by another worker
};

[[nodiscard]] const char* outcomeStatusName(CellStatus status) noexcept {
  switch (status) {
    case CellStatus::Ok:
      return "ok";
    case CellStatus::Timeout:
      return "timeout";
    default:
      return "error";
  }
}

}  // namespace

WorkerReport runWorker(const Manifest& manifest, const std::string& manifestPath, Journal& journal,
                       const WorkerOptions& options, const CellFn& compute) {
  const Clock::time_point start = Clock::now();
  const std::string owner = options.ownerId.empty() ? defaultWorkerId() : options.ownerId;
  ClaimBoard board{manifestPath, owner, options.leaseMs};

  WorkerReport report;
  report.totalCells = manifest.cells.size();

  std::mutex stateMutex;
  std::vector<CellState> states(manifest.cells.size(), CellState::Pending);

  // Resume against our own journal: every journaled row — ok or not — is
  // final for the manifest (see worker.hpp), so publish its done marker now
  // and never claim the cell again.
  for (std::size_t i = 0; i < manifest.cells.size(); ++i) {
    const auto it = journal.rows().find(manifest.cells[i].id.key());
    if (it == journal.rows().end()) continue;
    board.markDone(i, it->second.status);
    states[i] = CellState::Local;
    ++report.journaledCells;
    if (options.campaign.onCell) options.campaign.onCell(i, outcomeFromRow(it->second));
  }

  support::TaskPool pool{support::threadsForTasks(options.campaign.threads, states.size())};
  // Claim only a little ahead of the pool so concurrent workers share the
  // grid instead of the first sweep hoarding every cell.  (The serial pool
  // runs cells inline during the sweep, so in-flight never accumulates and
  // the cap is effectively inert at threads == 1.)
  const std::size_t claimAhead = 2 * static_cast<std::size_t>(pool.threadCount());

  const auto runCell = [&](std::size_t index) {
    if (shutdownRequested()) {
      // Drain: hand the cell straight back to the fleet instead of leaving
      // a claim that rivals would have to wait out.
      board.release(index);
      const std::lock_guard<std::mutex> lock{stateMutex};
      states[index] = CellState::Pending;
      return;
    }
    CellOutcome outcome = executeCell(manifest.cells[index], index, options.campaign, compute);
    // Journal first, done marker second: a crash in between leaves the cell
    // claimable, and the recompute's byte-identical row dedups at merge.
    journal.append(rowFromOutcome(manifest.cells[index], outcome));
    board.markDone(index, outcomeStatusName(outcome.status));
    {
      const std::lock_guard<std::mutex> lock{stateMutex};
      states[index] = CellState::Local;
      ++report.computedCells;
      switch (outcome.status) {
        case CellStatus::Ok:
          ++report.okCells;
          break;
        case CellStatus::Timeout:
          ++report.timeoutCells;
          break;
        default:
          ++report.errorCells;
          break;
      }
      if (options.campaign.onCell) options.campaign.onCell(index, outcome);
    }
  };

  Clock::time_point lastProgress = Clock::now();
  std::size_t lastResolved = 0;
  for (;;) {
    if (shutdownRequested()) {
      report.interrupted = true;
      break;
    }

    bool claimedSomething = false;
    std::size_t resolved = 0;  // Local + Remote
    std::size_t inFlight = 0;
    std::vector<std::size_t> heartbeats;
    for (std::size_t i = 0; i < states.size(); ++i) {
      CellState state;
      {
        const std::lock_guard<std::mutex> lock{stateMutex};
        state = states[i];
      }
      switch (state) {
        case CellState::Local:
        case CellState::Remote:
          ++resolved;
          continue;
        case CellState::InFlight:
          ++inFlight;
          heartbeats.push_back(i);
          continue;
        case CellState::Pending:
          break;
      }
      if (inFlight >= claimAhead) continue;  // enough queued — leave cells for rivals
      const ClaimOutcome claim = board.tryClaim(i);
      if (claim.status == ClaimStatus::Done) {
        const std::lock_guard<std::mutex> lock{stateMutex};
        states[i] = CellState::Remote;
        ++report.doneElsewhere;
        ++resolved;
        continue;
      }
      if (claim.status == ClaimStatus::Busy) continue;
      if (claim.stolen) ++report.steals;
      {
        const std::lock_guard<std::mutex> lock{stateMutex};
        states[i] = CellState::InFlight;
      }
      claimedSomething = true;
      // threads == 1 runs the cell inline right here (TaskPool's serial
      // path), which is what makes single-threaded workers march the
      // manifest strictly in order — the property the crash-injection tests
      // choreograph against.
      pool.submit([&runCell, i] { runCell(i); });
      {
        const std::lock_guard<std::mutex> lock{stateMutex};
        if (states[i] == CellState::InFlight) {
          ++inFlight;
        } else {
          ++resolved;  // the serial pool already ran it inline
        }
      }
    }

    // Keep our leases fresh while cells are executing so rivals don't steal
    // live work.  (Serial workers heartbeat between cells only: size the
    // lease comfortably above the slowest cell.)
    for (const std::size_t i : heartbeats) {
      const std::lock_guard<std::mutex> lock{stateMutex};
      if (states[i] == CellState::InFlight) board.heartbeat(i);
    }

    if (resolved == states.size()) break;
    if (resolved > lastResolved || claimedSomething) {
      lastResolved = resolved;
      lastProgress = Clock::now();
    }
    if (inFlight == 0 && options.maxWaitMs > 0.0) {
      // Everything left is held by other workers: wait for their done
      // markers (or their leases to expire), bounded by maxWaitMs.
      const std::chrono::duration<double, std::milli> idle = Clock::now() - lastProgress;
      if (idle.count() > options.maxWaitMs) {
        report.timedOut = true;
        break;
      }
    }
    if (!claimedSomething) {
      std::this_thread::sleep_for(
          std::chrono::microseconds{static_cast<long long>(options.pollMs * 1000.0)});
    }
  }
  pool.wait();  // rethrows infrastructure errors from in-flight cells

  {
    const std::lock_guard<std::mutex> lock{stateMutex};
    report.allDone = true;
    for (const CellState state : states) {
      if (state != CellState::Local && state != CellState::Remote) {
        report.allDone = false;
        break;
      }
    }
  }
  if (report.interrupted || shutdownRequested()) report.interrupted = true;
  const std::chrono::duration<double, std::milli> wall = Clock::now() - start;
  report.wallMs = wall.count();
  return report;
}

}  // namespace rtlock::campaign
