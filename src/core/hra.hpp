// HRA — Heuristic ML-Resilient Algorithm (Algorithm 4 of the paper).
//
// HRA performs fine-grained balancing within the key budget.  Each iteration
// flips a coin P: with P it locks a random pair in balanced pair-mode; without
// it it scans all pairs, tentatively applies the Lock step to each, and keeps
// the one with the highest M^g_sec gain (ties broken by the shuffle).  The
// random component thwarts reversal of the locking sequence (Sec. 4.4); the
// Greedy variant (P always false) reaches balance in fewer bits but is
// reversible.
//
// Implementation note (DESIGN.md): the tentative Lock/Undo scan of Algorithm
// 4 lines 13-22 is computed on a shadow copy of the ODT magnitudes — Lock's
// metric effect is a pure function of the ODT, so the result is identical to
// mutate+undo on the expression tree.
#pragma once

#include "core/report.hpp"
#include "support/rng.hpp"

namespace rtlock::lock {

AlgorithmReport hraLock(LockEngine& engine, int keyBudget, support::Rng& rng,
                        ReportDetail detail = ReportDetail::Full);

/// HRA with P pinned to false — the reversible greedy baseline of Sec. 4.4.
AlgorithmReport greedyLock(LockEngine& engine, int keyBudget, support::Rng& rng,
                           ReportDetail detail = ReportDetail::Full);

}  // namespace rtlock::lock
