// Unified entry point over all locking algorithms.
#pragma once

#include "analysis/verifier.hpp"
#include "core/assure.hpp"
#include "core/era.hpp"
#include "core/hra.hpp"

namespace rtlock::lock {

/// Runs the selected algorithm against the engine.  `detail` selects how
/// much of the report to compute (see ReportDetail); it never affects the
/// locking decisions or the Rng stream.
inline AlgorithmReport lockWithAlgorithm(LockEngine& engine, Algorithm algorithm, int keyBudget,
                                         support::Rng& rng,
                                         ReportDetail detail = ReportDetail::Full) {
  const auto report = [&] {
    switch (algorithm) {
      case Algorithm::AssureSerial: return assureSerialLock(engine, keyBudget, rng, detail);
      case Algorithm::AssureRandom: return assureRandomLock(engine, keyBudget, rng, detail);
      case Algorithm::Hra: return hraLock(engine, keyBudget, rng, detail);
      case Algorithm::Greedy: return greedyLock(engine, keyBudget, rng, detail);
      case Algorithm::Era: return eraLock(engine, keyBudget, rng, detail);
    }
    RTLOCK_UNREACHABLE("algorithm");
  }();
  RTLOCK_DEBUG_VERIFY_IR(engine.module(), "after a lock algorithm run");
  return report;
}

}  // namespace rtlock::lock
