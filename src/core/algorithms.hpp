// Unified entry point over all locking algorithms.
#pragma once

#include "core/assure.hpp"
#include "core/era.hpp"
#include "core/hra.hpp"

namespace rtlock::lock {

/// Runs the selected algorithm against the engine.
inline AlgorithmReport lockWithAlgorithm(LockEngine& engine, Algorithm algorithm, int keyBudget,
                                         support::Rng& rng) {
  switch (algorithm) {
    case Algorithm::AssureSerial: return assureSerialLock(engine, keyBudget, rng);
    case Algorithm::AssureRandom: return assureRandomLock(engine, keyBudget, rng);
    case Algorithm::Hra: return hraLock(engine, keyBudget, rng);
    case Algorithm::Greedy: return greedyLock(engine, keyBudget, rng);
    case Algorithm::Era: return eraLock(engine, keyBudget, rng);
  }
  RTLOCK_UNREACHABLE("algorithm");
}

}  // namespace rtlock::lock
