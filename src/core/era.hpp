// ERA — Exact ML-Resilient Algorithm (Algorithm 3 of the paper).
//
// ERA randomly selects a locking pair and a type T within it, then repeats
// the Lock step until |ODT[T]| reaches zero, guaranteeing that every touched
// pair is perfectly balanced (M^r_sec == 100 after every round) even when
// that exceeds the key budget.  ERA prioritizes security over cost.
//
// Deviation documented in DESIGN.md: when the selected pair is already
// balanced, Algorithm 3's inner loop would consume no key bits (an infinite
// outer loop on balanced designs such as N_1023); we apply one balanced
// 2-bit Lock (the else branch of Algorithm 1) instead, which preserves the
// M^r_sec == 100 invariant.
#pragma once

#include "core/report.hpp"
#include "support/rng.hpp"

namespace rtlock::lock {

AlgorithmReport eraLock(LockEngine& engine, int keyBudget, support::Rng& rng,
                        ReportDetail detail = ReportDetail::Full);

}  // namespace rtlock::lock
