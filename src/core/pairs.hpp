// Locking-pair tables for operation obfuscation.
//
// Two tables are provided:
//
//  * PairTable::fixed() — the involutive pairing required by Sec. 3.2 of the
//    paper: "every operation must exist as a real and dummy operation with
//    the same pair, e.g. (*, /) and (/, *)".  dummyFor is a perfect matching
//    (dummyFor(dummyFor(T)) == T), which makes the ODT and Definition 1
//    well-defined.  This table backs ERA, HRA and the fixed-ASSURE baseline.
//
//  * PairTable::assureOriginal() — the leaky pairing the paper attributes to
//    the original ASSURE implementation: (*, +), (+, -), (-, +) etc.  The
//    mapping is not involutive for mul, div, mod, pow and xor, which leaks
//    the real operation whenever an asymmetric pair is observed (reproduced
//    by bench/ablation_leakage).
#pragma once

#include <utility>
#include <vector>

#include "rtl/ops.hpp"

namespace rtlock::lock {

class PairTable {
 public:
  /// Involutive pairing (the paper's fix).  Pairs:
  /// (+,-), (*,/), (%,**), (&,|), (^,~^), (<<,>>), (<,>=), (>,<=), (==,!=),
  /// (&&,||).  The arithmetic shift >>> has no partner and is not lockable.
  [[nodiscard]] static const PairTable& fixed();

  /// Original (leaky) ASSURE pairing from Sec. 3.2.
  [[nodiscard]] static const PairTable& assureOriginal();

  /// True if operations of this kind participate in operation locking.
  [[nodiscard]] bool lockable(rtl::OpKind op) const noexcept;

  /// Dummy operation paired with `op`.  Precondition: lockable(op).
  [[nodiscard]] rtl::OpKind dummyFor(rtl::OpKind op) const;

  /// True when dummyFor is a perfect matching (required by ODT/metrics).
  [[nodiscard]] bool involutive() const noexcept { return involutive_; }

  /// Canonical unordered pairs (T, T') with T enumerated first.  Only
  /// meaningful for involutive tables.
  [[nodiscard]] const std::vector<std::pair<rtl::OpKind, rtl::OpKind>>& pairs() const;

  /// Index of the canonical pair containing `op`; -1 when not lockable.
  /// Only meaningful for involutive tables.
  [[nodiscard]] int pairIndexOf(rtl::OpKind op) const;

  [[nodiscard]] std::size_t pairCount() const noexcept { return pairs_.size(); }

 private:
  PairTable() = default;

  std::vector<std::pair<rtl::OpKind, rtl::OpKind>> pairs_;
  int dummyOf_[rtl::kOpKindCount] = {};
  bool lockable_[rtl::kOpKindCount] = {};
  int pairIndex_[rtl::kOpKindCount] = {};
  bool involutive_ = true;
};

}  // namespace rtlock::lock
