#include "core/hra.hpp"

#include <numeric>

#include "core/metric.hpp"

namespace rtlock::lock {

namespace {

AlgorithmReport runHra(LockEngine& engine, int keyBudget, support::Rng& rng, bool greedy,
                       ReportDetail detail) {
  RTLOCK_REQUIRE(engine.pairTable().involutive(), "HRA requires the involutive pair table");
  const auto& pairs = engine.pairTable().pairs();
  const std::vector<int>& initial = engine.initialMagnitudes();

  AlgorithmReport report;
  report.algorithm = greedy ? Algorithm::Greedy : Algorithm::Hra;
  report.keyBudget = keyBudget;

  int bitsUsed = 0;
  while (bitsUsed < keyBudget) {
    // Only pairs with at least one operation can be locked.
    std::vector<std::size_t> validPairs;
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      if (engine.opCount(pairs[i].first) + engine.opCount(pairs[i].second) > 0) {
        validPairs.push_back(i);
      }
    }
    if (validPairs.empty()) break;

    const bool pairMode = greedy ? false : rng.coin();  // Algorithm 4 line 8
    std::size_t chosen = 0;

    if (pairMode) {
      chosen = rng.pick(validPairs);  // line 10
    } else {
      // Lines 12-22: shuffle, tentatively evaluate each pair's Lock effect on
      // a shadow ODT, keep the best M^g_sec.
      rng.shuffle(validPairs);
      double bestMetric = -1.0;
      const std::vector<int> current = engine.odtMagnitudes();
      for (const std::size_t candidate : validPairs) {
        std::vector<int> simulated = current;
        if (simulated[candidate] > 0) {
          // Lock with !P reduces the pair's imbalance by exactly one.
          simulated[candidate] -= 1;
        }
        // A balanced pair stays balanced (2-bit pair lock).
        const double metric = globalSecurityMetric(initial, simulated);
        if (metric > bestMetric) {
          bestMetric = metric;
          chosen = candidate;
        }
      }
    }

    const int used = engine.lockStep(pairs[chosen].first, pairMode, rng);  // line 23
    if (used == 0) break;  // chosen pair exhausted; budget cannot be spent
    bitsUsed += used;
    if (detail == ReportDetail::Full) {
      report.metricTrace.emplace_back(bitsUsed, engine.globalMetric());
    }
  }

  report.bitsUsed = bitsUsed;
  report.finalGlobalMetric = engine.globalMetric();
  report.finalRestrictedMetric = engine.restrictedMetric();
  return report;
}

}  // namespace

AlgorithmReport hraLock(LockEngine& engine, int keyBudget, support::Rng& rng,
                        ReportDetail detail) {
  return runHra(engine, keyBudget, rng, /*greedy=*/false, detail);
}

AlgorithmReport greedyLock(LockEngine& engine, int keyBudget, support::Rng& rng,
                           ReportDetail detail) {
  return runHra(engine, keyBudget, rng, /*greedy=*/true, detail);
}

}  // namespace rtlock::lock
