#include "core/metric.hpp"

#include <algorithm>
#include <cmath>

#include "support/diagnostics.hpp"

namespace rtlock::lock {

double modifiedEuclidean(std::span<const int> magnitudes, const PairMask& included) {
  RTLOCK_REQUIRE(magnitudes.size() == included.size(),
                 "magnitude and mask vectors must have equal length");
  double sum = 0.0;
  for (std::size_t i = 0; i < magnitudes.size(); ++i) {
    if (!included[i]) continue;  // 'x' entry in v_o — skipped per Algorithm 2
    const double value = static_cast<double>(magnitudes[i]);
    sum += value * value;
  }
  return std::sqrt(sum);
}

double securityMetric(std::span<const int> initialMagnitudes,
                      std::span<const int> currentMagnitudes, const PairMask& included) {
  RTLOCK_REQUIRE(initialMagnitudes.size() == currentMagnitudes.size(),
                 "initial and current vectors must have equal length");
  const double initialDistance = modifiedEuclidean(initialMagnitudes, included);
  const double currentDistance = modifiedEuclidean(currentMagnitudes, included);
  if (initialDistance == 0.0) {
    return currentDistance == 0.0 ? 100.0 : 0.0;
  }
  const double metric = 100.0 * (1.0 - currentDistance / initialDistance);
  return std::clamp(metric, 0.0, 100.0);
}

double globalSecurityMetric(std::span<const int> initialMagnitudes,
                            std::span<const int> currentMagnitudes) {
  const PairMask allIncluded(initialMagnitudes.size(), true);
  return securityMetric(initialMagnitudes, currentMagnitudes, allIncluded);
}

}  // namespace rtlock::lock
