#include "core/engine.hpp"

#include <algorithm>

#include "analysis/verifier.hpp"
#include "core/metric.hpp"
#include "rtl/traverse.hpp"

namespace rtlock::lock {

namespace {

using rtl::BinaryExpr;
using rtl::Expr;
using rtl::ExprKind;
using rtl::ExprSlot;
using rtl::OpKind;
using rtl::TernaryExpr;

/// Exact structural equality for the immutable leaf kinds (the only operand
/// shapes the shell recycler caches — see LockEngine::shells_).
[[nodiscard]] bool leafEqual(const Expr& a, const Expr& b) noexcept {
  if (a.kind() != b.kind() || a.width() != b.width()) return false;
  switch (a.kind()) {
    case ExprKind::SignalRef:
      return static_cast<const rtl::SignalRefExpr&>(a).signal() ==
             static_cast<const rtl::SignalRefExpr&>(b).signal();
    case ExprKind::Constant:
      return static_cast<const rtl::ConstantExpr&>(a).value() ==
             static_cast<const rtl::ConstantExpr&>(b).value();
    case ExprKind::KeyRef:
      return static_cast<const rtl::KeyRefExpr&>(a).firstBit() ==
             static_cast<const rtl::KeyRefExpr&>(b).firstBit();
    default: return false;
  }
}

/// True when `shell` is a recyclable mux for `real`: a key-conditioned
/// ternary holding exactly one branch — a `dummyKind` operation whose
/// operands equal `real`'s operands bit for bit.  Content-based, so a stale
/// cache entry can never be reused.
[[nodiscard]] const Expr* shellDummyIfReusable(const Expr& shell, const BinaryExpr& real,
                                               OpKind dummyKind) noexcept {
  if (shell.kind() != ExprKind::Ternary) return nullptr;
  auto& mux = const_cast<TernaryExpr&>(static_cast<const TernaryExpr&>(shell));
  const rtl::ExprPtr& thenSlot = mux.exprSlotAt(TernaryExpr::kThenSlot);
  const rtl::ExprPtr& elseSlot = mux.exprSlotAt(TernaryExpr::kElseSlot);
  const Expr* dummy = thenSlot != nullptr ? thenSlot.get() : elseSlot.get();
  if (dummy == nullptr || (thenSlot != nullptr && elseSlot != nullptr)) return nullptr;
  if (dummy->kind() != ExprKind::Binary) return nullptr;
  const auto& dummyOp = static_cast<const BinaryExpr&>(*dummy);
  if (dummyOp.op() != dummyKind || dummyOp.width() != real.width()) return nullptr;
  if (!leafEqual(dummyOp.lhs(), real.lhs()) || !leafEqual(dummyOp.rhs(), real.rhs())) {
    return nullptr;
  }
  return dummy;
}

}  // namespace

LockEngine::LockEngine(rtl::Module& module, const PairTable& table)
    : module_(module), table_(table) {
  buildIndex();
  if (table_.involutive()) {
    initialMagnitudes_ = odtMagnitudes();
    touched_.assign(table_.pairCount(), false);
  }
  initialLockableOps_ = totalLockableOps();
  RTLOCK_DEBUG_VERIFY_IR(module_, "at LockEngine construction");
}

void LockEngine::buildIndex() {
  rtl::forEachExprSlot(module_, [this](const ExprSlot& slot) {
    const Expr& node = *slot.get();
    if (node.kind() != ExprKind::Binary) return;
    const OpKind kind = static_cast<const BinaryExpr&>(node).op();
    if (table_.lockable(kind)) {
      pool(kind).push_back(slot);
      ++lockableTotal_;
    }
  });
}

int LockEngine::opCount(OpKind kind) const noexcept {
  return static_cast<int>(pool(kind).size());
}

int LockEngine::totalLockableOps() const noexcept { return lockableTotal_; }

int LockEngine::odtValue(OpKind kind) const {
  RTLOCK_REQUIRE(table_.involutive(), "ODT requires an involutive pair table");
  return opCount(kind) - opCount(table_.dummyFor(kind));
}

std::vector<int> LockEngine::odtMagnitudes() const {
  RTLOCK_REQUIRE(table_.involutive(), "ODT requires an involutive pair table");
  std::vector<int> magnitudes;
  magnitudes.reserve(table_.pairCount());
  for (const auto& [a, b] : table_.pairs()) {
    magnitudes.push_back(std::abs(opCount(a) - opCount(b)));
  }
  return magnitudes;
}

double LockEngine::globalMetric() const {
  const std::vector<int> current = odtMagnitudes();
  return globalSecurityMetric(initialMagnitudes_, current);
}

double LockEngine::restrictedMetric() const {
  const std::vector<int> current = odtMagnitudes();
  return securityMetric(initialMagnitudes_, current, touched_);
}

const LockRecord& LockEngine::lockOpAt(OpKind kind, std::size_t index, bool keyValue) {
  auto& entries = pool(kind);
  RTLOCK_REQUIRE(index < entries.size(), "operation pool index out of range");
  const ExprSlot slot = entries[index];

  rtl::ExprPtr& owner = slot.get();
  RTLOCK_REQUIRE(owner->kind() == ExprKind::Binary &&
                     static_cast<const BinaryExpr&>(*owner).op() == kind,
                 "pool entry does not reference an operation of the expected kind");

  UndoRecord undo;
  undo.slot = slot;
  undo.realKind = kind;
  undo.poolPosition = index;
  undo.prevKeyWidth = module_.keyWidth();

  auto& real = static_cast<BinaryExpr&>(*owner);
  const OpKind dummyKind = table_.dummyFor(kind);
  // Leaf operands never mutate in place, so their mux shells are recyclable
  // across lock/undo cycles (see shells_).
  undo.recyclable =
      real.lhs().exprSlotCount() == 0 && real.rhs().exprSlotCount() == 0;

  const int keyIndex = module_.allocateKeyBits(1);
  undo.realBranchSlot = keyValue ? TernaryExpr::kThenSlot : TernaryExpr::kElseSlot;
  const int dummyBranchSlot = keyValue ? TernaryExpr::kElseSlot : TernaryExpr::kThenSlot;

  rtl::ExprPtr mux;
  auto& shellBucket = shells_[static_cast<std::size_t>(kind)];
  if (undo.recyclable && index < shellBucket.size() && shellBucket[index] != nullptr &&
      shellDummyIfReusable(*shellBucket[index], real, dummyKind) != nullptr) {
    // Reuse the cached shell: re-target its key ref, orient the dummy into
    // the dummy branch, and splice the live operation into the real branch.
    // The resulting node contents are byte-for-byte what a fresh build makes.
    mux = std::move(shellBucket[index]);
    auto& shellMux = static_cast<TernaryExpr&>(*mux);
    static_cast<rtl::KeyRefExpr&>(*shellMux.exprSlotAt(TernaryExpr::kCondSlot))
        .setFirstBit(keyIndex);
    if (shellMux.exprSlotAt(dummyBranchSlot) == nullptr) {
      shellMux.exprSlotAt(dummyBranchSlot) =
          std::move(shellMux.exprSlotAt(undo.realBranchSlot));
    }
    shellMux.exprSlotAt(undo.realBranchSlot) = std::move(owner);
  } else {
    // Build the dummy: same operand structure, partner operator.
    rtl::ExprPtr dummy = rtl::makeBinary(dummyKind, real.lhs().clone(), real.rhs().clone());
    rtl::ExprPtr realExpr = std::move(owner);
    mux = keyValue ? rtl::makeTernary(rtl::makeKeyRef(keyIndex), std::move(realExpr),
                                      std::move(dummy))
                   : rtl::makeTernary(rtl::makeKeyRef(keyIndex), std::move(dummy),
                                      std::move(realExpr));
  }
  Expr* const muxPtr = mux.get();
  owner = std::move(mux);

  // Re-pin the real operation's pool entry to its new home inside the mux.
  entries[index] = ExprSlot{muxPtr, undo.realBranchSlot};

  // Index every lockable operation of the dummy branch (top node + any
  // operations in cloned operand subtrees).  With leaf operands the only
  // candidate is the dummy root itself, so skip the generic subtree walk.
  if (undo.recyclable) {
    if (table_.lockable(dummyKind)) {
      pool(dummyKind).push_back(ExprSlot{muxPtr, dummyBranchSlot});
      dummyAppendLog_.push_back(dummyKind);
      undo.dummyAppendCount = 1;
      ++lockableTotal_;
    }
  } else {
    rtl::forEachExprSlotIn(ExprSlot{muxPtr, dummyBranchSlot}, [this, &undo](const ExprSlot& s) {
      const Expr& node = *s.get();
      if (node.kind() != ExprKind::Binary) return;
      const OpKind k = static_cast<const BinaryExpr&>(node).op();
      if (!table_.lockable(k)) return;
      pool(k).push_back(s);
      dummyAppendLog_.push_back(k);
      ++undo.dummyAppendCount;
      ++lockableTotal_;
    });
  }

  if (table_.involutive()) {
    undo.pairIndex = table_.pairIndexOf(kind);
    undo.pairWasTouched = touched_[static_cast<std::size_t>(undo.pairIndex)];
    touched_[static_cast<std::size_t>(undo.pairIndex)] = true;
  }

  undoStack_.push_back(std::move(undo));
  records_.push_back(LockRecord{keyIndex, keyValue, kind, dummyKind});
  if (observer_ != nullptr) observer_->onLock(records_.back(), slot);
  return records_.back();
}

bool LockEngine::lockRandomOpOfKind(OpKind kind, support::Rng& rng) {
  auto& entries = pool(kind);
  if (entries.empty()) return false;
  const std::size_t index = static_cast<std::size_t>(rng.below(entries.size()));
  lockOpAt(kind, index, rng.coin());
  return true;
}

bool LockEngine::lockRandomOp(support::Rng& rng) {
  const int total = totalLockableOps();
  if (total == 0) return false;
  std::uint64_t target = rng.below(static_cast<std::uint64_t>(total));
  for (int k = 0; k < rtl::kOpKindCount; ++k) {
    const auto kind = static_cast<OpKind>(k);
    const auto size = static_cast<std::uint64_t>(pool(kind).size());
    if (target < size) {
      lockOpAt(kind, static_cast<std::size_t>(target), rng.coin());
      return true;
    }
    target -= size;
  }
  RTLOCK_UNREACHABLE("random op selection fell through the pools");
}

int LockEngine::lockStep(OpKind kind, bool pairMode, support::Rng& rng) {
  RTLOCK_REQUIRE(table_.involutive(), "Algorithm 1 requires an involutive pair table");
  const OpKind partner = table_.dummyFor(kind);
  const int odt = odtValue(kind);

  if (odt > 0 && !pairMode) {
    // Excess of `kind`: wrap one of its ops, adding a partner dummy.
    return lockRandomOpOfKind(kind, rng) ? 1 : 0;
  }
  if (odt < 0 && !pairMode) {
    // Deficiency of `kind`: wrap a partner op, adding a `kind` dummy.
    return lockRandomOpOfKind(partner, rng) ? 1 : 0;
  }

  // Balanced (or pair mode): lock one op of each type.  Select both indices
  // up-front (Algorithm 1 lines 3-4) so the first wrap's dummy cannot be
  // chosen as the second victim.
  auto& kindPool = pool(kind);
  auto& partnerPool = pool(partner);
  const bool haveKind = !kindPool.empty();
  const bool havePartner = !partnerPool.empty();
  if (!haveKind && !havePartner) return 0;
  if (haveKind && havePartner) {
    const auto i = static_cast<std::size_t>(rng.below(kindPool.size()));
    const auto j = static_cast<std::size_t>(rng.below(partnerPool.size()));
    lockOpAt(kind, i, rng.coin());
    lockOpAt(partner, j, rng.coin());
    return 2;
  }
  // Degenerate pair-mode fallback (one side has no operations): lock the
  // side that exists so the step still makes progress (see DESIGN.md).
  const OpKind available = haveKind ? kind : partner;
  return lockRandomOpOfKind(available, rng) ? 1 : 0;
}

std::vector<std::pair<OpKind, std::size_t>> LockEngine::opsInTraversalOrder() const {
  // Map each pool entry to its position so traversal hits can be reported as
  // (kind, position) coordinates.
  std::vector<std::pair<OpKind, std::size_t>> ordered;
  auto* self = const_cast<LockEngine*>(this);
  rtl::forEachExprSlot(self->module_, [&](const ExprSlot& slot) {
    const Expr& node = *slot.get();
    if (node.kind() != ExprKind::Binary) return;
    const OpKind kind = static_cast<const BinaryExpr&>(node).op();
    if (!table_.lockable(kind)) return;
    const auto& entries = pool(kind);
    const auto it = std::find(entries.begin(), entries.end(), slot);
    RTLOCK_REQUIRE(it != entries.end(), "traversal found an unindexed operation");
    ordered.emplace_back(kind, static_cast<std::size_t>(it - entries.begin()));
  });
  return ordered;
}

void LockEngine::undoTo(std::size_t checkpoint) {
  RTLOCK_REQUIRE(checkpoint <= undoStack_.size(), "undo checkpoint is in the future");
  while (undoStack_.size() > checkpoint) {
    const UndoRecord& undo = undoStack_.back();
    const LockRecord undone = records_.back();

    // Remove dummy-branch pool entries (appended last within their pools —
    // LIFO discipline guarantees later locks already popped theirs).
    for (std::uint32_t i = 0; i < undo.dummyAppendCount; ++i) {
      RTLOCK_REQUIRE(!dummyAppendLog_.empty(), "undo expected a logged dummy entry");
      auto& entries = pool(dummyAppendLog_.back());
      RTLOCK_REQUIRE(!entries.empty(), "undo expected a pooled dummy entry");
      entries.pop_back();
      dummyAppendLog_.pop_back();
      --lockableTotal_;
    }

    // Splice the real operation back into the mux's former slot; keep the
    // detached shell (key ref + dummy) for the next lock of this position.
    rtl::ExprPtr& owner = undo.slot.get();
    RTLOCK_REQUIRE(owner->kind() == ExprKind::Ternary, "undo expected a key mux");
    auto& mux = static_cast<TernaryExpr&>(*owner);
    rtl::ExprPtr real = std::move(mux.exprSlotAt(undo.realBranchSlot));
    rtl::ExprPtr shell = std::move(owner);
    owner = std::move(real);
    if (undo.recyclable) {
      auto& shellBucket = shells_[static_cast<std::size_t>(undo.realKind)];
      if (shellBucket.size() <= undo.poolPosition) shellBucket.resize(undo.poolPosition + 1);
      shellBucket[undo.poolPosition] = std::move(shell);
    }

    pool(undo.realKind)[undo.poolPosition] = undo.slot;
    module_.setKeyWidth(undo.prevKeyWidth);
    if (undo.pairIndex >= 0) {
      touched_[static_cast<std::size_t>(undo.pairIndex)] = undo.pairWasTouched;
    }

    undoStack_.pop_back();
    records_.pop_back();
    if (observer_ != nullptr) observer_->onUndo(undone);
  }
  // A fully unwound stack means one complete lock/undo cycle: the module must
  // be bit-identical in structure to the pre-lock netlist, so re-verify it.
  if (undoStack_.empty()) {
    RTLOCK_DEBUG_VERIFY_IR(module_, "after a completed lock/undo cycle");
  }
}

}  // namespace rtlock::lock
