#include "core/assure.hpp"

#include "rtl/traverse.hpp"

namespace rtlock::lock {

namespace {

AlgorithmReport makeReport(Algorithm algorithm, const LockEngine& engine, int keyBudget,
                           int bitsUsed, std::vector<std::pair<int, double>> trace) {
  AlgorithmReport report;
  report.algorithm = algorithm;
  report.keyBudget = keyBudget;
  report.bitsUsed = bitsUsed;
  if (engine.pairTable().involutive()) {
    report.finalGlobalMetric = engine.globalMetric();
    report.finalRestrictedMetric = engine.restrictedMetric();
  }
  report.metricTrace = std::move(trace);
  return report;
}

}  // namespace

std::string_view algorithmName(Algorithm algorithm) noexcept {
  switch (algorithm) {
    case Algorithm::AssureSerial: return "ASSURE";
    case Algorithm::AssureRandom: return "ASSURE-random";
    case Algorithm::Hra: return "HRA";
    case Algorithm::Greedy: return "Greedy";
    case Algorithm::Era: return "ERA";
  }
  return "?";
}

AlgorithmReport assureSerialLock(LockEngine& engine, int keyBudget, support::Rng& rng,
                                 ReportDetail detail) {
  const auto order = engine.opsInTraversalOrder();
  std::vector<std::pair<int, double>> trace;
  int bitsUsed = 0;
  const bool trackTrace = detail == ReportDetail::Full && engine.pairTable().involutive();
  for (const auto& [kind, position] : order) {
    if (bitsUsed >= keyBudget) break;
    engine.lockOpAt(kind, position, rng.coin());
    ++bitsUsed;
    if (trackTrace) trace.emplace_back(bitsUsed, engine.globalMetric());
  }
  return makeReport(Algorithm::AssureSerial, engine, keyBudget, bitsUsed, std::move(trace));
}

AlgorithmReport assureRandomLock(LockEngine& engine, int keyBudget, support::Rng& rng,
                                 ReportDetail detail) {
  std::vector<std::pair<int, double>> trace;
  int bitsUsed = 0;
  const bool trackTrace = detail == ReportDetail::Full && engine.pairTable().involutive();
  while (bitsUsed < keyBudget && engine.lockRandomOp(rng)) {
    ++bitsUsed;
    if (trackTrace) trace.emplace_back(bitsUsed, engine.globalMetric());
  }
  return makeReport(Algorithm::AssureRandom, engine, keyBudget, bitsUsed, std::move(trace));
}

ConstantLockReport assureLockConstants(rtl::Module& module, int keyBudgetBits,
                                       support::Rng& rng) {
  // Collect every constant slot, then consume them in random order while the
  // remaining budget allows.
  std::vector<rtl::ExprSlot> candidates;
  rtl::forEachExprSlot(module, [&candidates](const rtl::ExprSlot& slot) {
    if (slot.get()->kind() == rtl::ExprKind::Constant) candidates.push_back(slot);
  });
  rng.shuffle(candidates);

  ConstantLockReport report;
  for (const auto& slot : candidates) {
    const auto& constant = static_cast<const rtl::ConstantExpr&>(*slot.get());
    if (report.bitsUsed + constant.width() > keyBudgetBits) continue;
    const int first = module.allocateKeyBits(constant.width());
    report.records.push_back(ConstantLockRecord{first, constant.width(), constant.value()});
    report.bitsUsed += constant.width();
    slot.get() = rtl::makeKeyRef(first, constant.width());
  }
  return report;
}

BranchLockReport assureLockBranches(rtl::Module& module, int keyBudgetBits, support::Rng& rng) {
  // Candidate conditions: every if-statement in every process.
  std::vector<rtl::IfStmt*> candidates;
  rtl::forEachStmt(module, [&candidates](const rtl::Stmt& stmt) {
    if (stmt.kind() == rtl::StmtKind::If) {
      candidates.push_back(&const_cast<rtl::IfStmt&>(static_cast<const rtl::IfStmt&>(stmt)));
    }
  });
  rng.shuffle(candidates);

  BranchLockReport report;
  for (rtl::IfStmt* ifStmt : candidates) {
    if (report.bitsUsed >= keyBudgetBits) break;
    rtl::ExprPtr& condSlot = ifStmt->exprSlotAt(rtl::IfStmt::kCondSlot);

    // Normalize multi-bit conditions to one bit so the XOR flips truthiness.
    rtl::ExprPtr cond = std::move(condSlot);
    if (cond->width() > 1) {
      cond = rtl::makeBinary(rtl::OpKind::Ne, std::move(cond), rtl::makeConstant(0, 1));
    }

    const bool keyValue = rng.coin();
    if (keyValue) {
      // Store the inverted condition; the key bit 1 flips it back.
      cond = rtl::makeUnary(rtl::UnaryOp::LogNot, std::move(cond));
    }
    const int keyIndex = module.allocateKeyBits(1);
    condSlot = rtl::makeBinary(rtl::OpKind::Xor, std::move(cond), rtl::makeKeyRef(keyIndex));
    report.records.push_back(BranchLockRecord{keyIndex, keyValue});
    ++report.bitsUsed;
  }
  return report;
}

}  // namespace rtlock::lock
