// ASSURE RTL locking (Pilato et al., TVLSI'21) — the paper's baseline.
//
// Operation obfuscation with serial or random operation selection, plus the
// two auxiliary obfuscations (constants, branches).  Operation locking runs
// through a LockEngine so baselines and ML-resilient algorithms share
// mechanics, bookkeeping and undo.
#pragma once

#include <cstdint>

#include "core/report.hpp"
#include "rtl/module.hpp"
#include "support/rng.hpp"

namespace rtlock::lock {

/// Serial selection: locks the first `keyBudget` lockable operations in
/// module traversal order ("serial manner w.r.t. the design topology").
/// Re-applying to an already-locked design extends the same leading
/// operations with nested locking pairs, reproducing Fig. 4b.
AlgorithmReport assureSerialLock(LockEngine& engine, int keyBudget, support::Rng& rng,
                                 ReportDetail detail = ReportDetail::Full);

/// Random selection: locks `keyBudget` uniformly random lockable operations
/// (dummies introduced earlier in the same run are eligible).
AlgorithmReport assureRandomLock(LockEngine& engine, int keyBudget, support::Rng& rng,
                                 ReportDetail detail = ReportDetail::Full);

// ---- Auxiliary ASSURE obfuscations ----
//
// These are not part of the ML evaluation loop (the paper analyses operation
// obfuscation; constants "do not offer any apparent attack vectors" and
// branches "only affect existing control flow"), so they transform the
// module directly without engine bookkeeping.  Apply them to clones.

struct ConstantLockRecord {
  int keyIndex = 0;
  int width = 0;
  std::uint64_t value = 0;  // correct key chunk
};

struct ConstantLockReport {
  int bitsUsed = 0;
  std::vector<ConstantLockRecord> records;
};

/// Replaces constants with key chunks (a = 4'b1101 becomes a = K[hi:lo]).
/// Constants are chosen in random order while their width fits the remaining
/// budget.
ConstantLockReport assureLockConstants(rtl::Module& module, int keyBudgetBits, support::Rng& rng);

struct BranchLockRecord {
  int keyIndex = 0;
  bool keyValue = false;
};

struct BranchLockReport {
  int bitsUsed = 0;
  std::vector<BranchLockRecord> records;
};

/// XORs if-conditions with key bits; for a key value of 1 the stored
/// condition is inverted (a > b is locked as (a <= b) ^ K).
BranchLockReport assureLockBranches(rtl::Module& module, int keyBudgetBits, support::Rng& rng);

}  // namespace rtlock::lock
