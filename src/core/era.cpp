#include "core/era.hpp"

#include <cstdlib>

namespace rtlock::lock {

AlgorithmReport eraLock(LockEngine& engine, int keyBudget, support::Rng& rng,
                        ReportDetail detail) {
  RTLOCK_REQUIRE(engine.pairTable().involutive(), "ERA requires the involutive pair table");
  const auto& pairs = engine.pairTable().pairs();

  AlgorithmReport report;
  report.algorithm = Algorithm::Era;
  report.keyBudget = keyBudget;

  int bitsUsed = 0;
  while (bitsUsed < keyBudget) {
    // Pairs with no operations on either side cannot make progress and are
    // excluded from selection.
    std::vector<std::size_t> validPairs;
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      if (engine.opCount(pairs[i].first) + engine.opCount(pairs[i].second) > 0) {
        validPairs.push_back(i);
      }
    }
    if (validPairs.empty()) break;

    const std::size_t pairIndex = rng.pick(validPairs);
    const rtl::OpKind type =
        rng.coin() ? pairs[pairIndex].first : pairs[pairIndex].second;

    if (std::abs(engine.odtValue(type)) > 0) {
      // Algorithm 3 lines 7-10: lock until the pair balances, budget or not.
      while (std::abs(engine.odtValue(type)) > 0) {
        const int used = engine.lockStep(type, /*pairMode=*/false, rng);
        RTLOCK_REQUIRE(used > 0, "ERA inner loop failed to make progress");
        bitsUsed += used;
        if (detail == ReportDetail::Full) {
          report.metricTrace.emplace_back(bitsUsed, engine.globalMetric());
        }
      }
    } else {
      // Balanced pair: one 2-bit balanced Lock (documented deviation).
      const int used = engine.lockStep(type, /*pairMode=*/true, rng);
      if (used == 0) break;  // nothing lockable anywhere in this pair
      bitsUsed += used;
      if (detail == ReportDetail::Full) {
        report.metricTrace.emplace_back(bitsUsed, engine.globalMetric());
      }
    }
  }

  report.bitsUsed = bitsUsed;
  report.finalGlobalMetric = engine.globalMetric();
  report.finalRestrictedMetric = engine.restrictedMetric();
  return report;
}

}  // namespace rtlock::lock
