// Learning-resilience security metrics (Sec. 4.1 of the paper).
//
// The ODT content at step j is summarized as the vector
//   v_j = [ |ODT[T_0]|, ..., |ODT[T_{l-1}]| ]
// over the canonical locking pairs.  The optimal vector v_o is all-zero; the
// modified Euclidean distance (Algorithm 2) skips entries masked out as 'x',
// which yields the two metric variants:
//   * global  M^g_sec — all entries included (monotonic, guides HRA);
//   * restricted M^r_sec — only pairs touched by locking (Definition 1).
#pragma once

#include <span>
#include <vector>

namespace rtlock::lock {

/// Entry mask for the optimal vector v_o: true = included, false = 'x'.
using PairMask = std::vector<bool>;

/// Algorithm 2: sqrt of the sum of squared magnitudes over included entries.
[[nodiscard]] double modifiedEuclidean(std::span<const int> magnitudes, const PairMask& included);

/// Equation (1): 100 * (1 - d(v_j, v_o) / d(v_i, v_o)), clamped to [0, 100].
/// Degenerate cases: when the masked initial distance is zero the design
/// starts balanced, so the metric is 100 if it stayed balanced and 0
/// otherwise.
[[nodiscard]] double securityMetric(std::span<const int> initialMagnitudes,
                                    std::span<const int> currentMagnitudes,
                                    const PairMask& included);

/// Convenience: global metric (all entries included).
[[nodiscard]] double globalSecurityMetric(std::span<const int> initialMagnitudes,
                                          std::span<const int> currentMagnitudes);

}  // namespace rtlock::lock
