#include "core/pairs.hpp"

#include "support/diagnostics.hpp"

namespace rtlock::lock {

using rtl::OpKind;

const PairTable& PairTable::fixed() {
  static const PairTable table = [] {
    PairTable t;
    const std::vector<std::pair<OpKind, OpKind>> matching{
        {OpKind::Add, OpKind::Sub},  {OpKind::Mul, OpKind::Div},
        {OpKind::Mod, OpKind::Pow},  {OpKind::And, OpKind::Or},
        {OpKind::Xor, OpKind::Xnor}, {OpKind::Shl, OpKind::Shr},
        {OpKind::Lt, OpKind::Ge},    {OpKind::Gt, OpKind::Le},
        {OpKind::Eq, OpKind::Ne},    {OpKind::LAnd, OpKind::LOr},
    };
    t.pairs_ = matching;
    for (int i = 0; i < rtl::kOpKindCount; ++i) {
      t.lockable_[i] = false;
      t.pairIndex_[i] = -1;
    }
    int index = 0;
    for (const auto& [a, b] : matching) {
      t.dummyOf_[static_cast<int>(a)] = static_cast<int>(b);
      t.dummyOf_[static_cast<int>(b)] = static_cast<int>(a);
      t.lockable_[static_cast<int>(a)] = true;
      t.lockable_[static_cast<int>(b)] = true;
      t.pairIndex_[static_cast<int>(a)] = index;
      t.pairIndex_[static_cast<int>(b)] = index;
      ++index;
    }
    t.involutive_ = true;
    return t;
  }();
  return table;
}

const PairTable& PairTable::assureOriginal() {
  static const PairTable table = [] {
    PairTable t;
    // Directed dummy assignments; asymmetric entries reproduce the leakage
    // the paper reports for *, /, %, ** and ^ (Sec. 3.2).
    const std::vector<std::pair<OpKind, OpKind>> directed{
        {OpKind::Add, OpKind::Sub},   // (+,-)
        {OpKind::Sub, OpKind::Add},   // (-,+)
        {OpKind::Mul, OpKind::Add},   // (*,+)  leaky: (+,*) never occurs
        {OpKind::Div, OpKind::Sub},   // (/,-)  leaky
        {OpKind::Mod, OpKind::Add},   // (%,+)  leaky
        {OpKind::Pow, OpKind::Mul},   // (**,*) leaky
        {OpKind::Xor, OpKind::Or},    // (^,|)  leaky
        {OpKind::Xnor, OpKind::Xor},  // (~^,^) leaky
        {OpKind::And, OpKind::Or},    // (&,|)
        {OpKind::Or, OpKind::And},    // (|,&)
        {OpKind::Shl, OpKind::Shr},   {OpKind::Shr, OpKind::Shl},
        {OpKind::Lt, OpKind::Ge},     {OpKind::Ge, OpKind::Lt},
        {OpKind::Gt, OpKind::Le},     {OpKind::Le, OpKind::Gt},
        {OpKind::Eq, OpKind::Ne},     {OpKind::Ne, OpKind::Eq},
        {OpKind::LAnd, OpKind::LOr},  {OpKind::LOr, OpKind::LAnd},
    };
    for (int i = 0; i < rtl::kOpKindCount; ++i) {
      t.lockable_[i] = false;
      t.pairIndex_[i] = -1;
    }
    for (const auto& [real, dummy] : directed) {
      t.dummyOf_[static_cast<int>(real)] = static_cast<int>(dummy);
      t.lockable_[static_cast<int>(real)] = true;
    }
    t.involutive_ = false;
    return t;
  }();
  return table;
}

bool PairTable::lockable(OpKind op) const noexcept {
  return lockable_[static_cast<int>(op)];
}

OpKind PairTable::dummyFor(OpKind op) const {
  RTLOCK_REQUIRE(lockable(op), "operation kind is not lockable under this pair table");
  return static_cast<OpKind>(dummyOf_[static_cast<int>(op)]);
}

const std::vector<std::pair<OpKind, OpKind>>& PairTable::pairs() const {
  RTLOCK_REQUIRE(involutive_, "canonical pairs are only defined for involutive tables");
  return pairs_;
}

int PairTable::pairIndexOf(OpKind op) const {
  RTLOCK_REQUIRE(involutive_, "pair indices are only defined for involutive tables");
  return pairIndex_[static_cast<int>(op)];
}

}  // namespace rtlock::lock
