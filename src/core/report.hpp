// Result records produced by the locking algorithms.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "core/engine.hpp"

namespace rtlock::lock {

/// Locking algorithms under evaluation (Sec. 5 of the paper).
enum class Algorithm {
  AssureSerial,  // original ASSURE selection (the paper's "ASSURE" column)
  AssureRandom,  // random ASSURE selection (used for training relocks)
  Hra,           // Algorithm 4
  Greedy,        // HRA with P always false (Sec. 4.4)
  Era,           // Algorithm 3
};

[[nodiscard]] std::string_view algorithmName(Algorithm algorithm) noexcept;

/// How much of the report a locking run should compute.  Summary skips the
/// per-step metric trace (Fig. 5b data), which costs two ODT scans and a
/// heap allocation per locked bit — pure overhead for callers that only read
/// the final metrics (the attack's relock loop, the evaluation pipeline).
/// The choice never touches the Rng, so results are bit-identical either way.
enum class ReportDetail { Full, Summary };

/// Outcome of one locking run.
struct AlgorithmReport {
  Algorithm algorithm = Algorithm::AssureSerial;
  int keyBudget = 0;
  int bitsUsed = 0;
  double finalGlobalMetric = 0.0;
  double finalRestrictedMetric = 0.0;
  /// (key bits used, M^g_sec) after every algorithm step — Fig. 5b data.
  std::vector<std::pair<int, double>> metricTrace;
};

}  // namespace rtlock::lock
