// LockEngine: stateful operation-locking transformer over one module.
//
// The engine owns three pieces of mutable state that must stay consistent
// through arbitrary lock/undo sequences:
//
//  1. the module's expression trees (locking wraps a binary operation into a
//     key-controlled ternary multiplexer, Fig. 3 of the paper);
//  2. a per-operator index of every lockable operation slot — selection pools
//     for RndSelect and the live operation counts behind the ODT;
//  3. an undo stack enabling the attack's relock → extract → undo loop and
//     HRA's exploratory steps.
//
// Index maintenance is incremental and O(size of the dummy operand subtree)
// per lock: wrapping moves the real operation into the multiplexer (its index
// entry is updated in place; entries for deeper operations stay valid because
// expression nodes never move in memory), and every lockable operation inside
// the cloned dummy branch is appended to its pool.  Undo is strictly LIFO.
//
// Operand cloning note: the dummy operation reuses clones of the real
// operation's operand subtrees (`K ? a+b : a-b`).  For three-address designs
// (all generators in src/designs) operands are signal references, so each key
// bit adds exactly one dummy operation — the paper's cost model.  For nested
// expressions the cloned operand operations are also counted and indexed,
// keeping the ODT truthful to what an attacker sees.
//
// Contract --------------------------------------------------------------------
// Ownership: the engine borrows the module (which must outlive it) and takes
//   exclusive mutation rights for its whole lifetime; the PairTable is
//   borrowed const and is immutable by construction.  Locks the engine
//   applied must be undone through the same engine — external edits to the
//   module invalidate the index.
// Determinism: every stochastic choice draws from the caller-passed Rng and
//   nothing else; a (module, table, call sequence, rng seed) tuple fully
//   determines the locked design, records() and all metrics, across
//   platforms and thread counts.
// Thread-safety: an engine is single-threaded (one engine per worker is the
//   sharding pattern — see attack::evaluateBenchmark); distinct engines over
//   distinct modules never share mutable state and may run concurrently.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/pairs.hpp"
#include "rtl/module.hpp"
#include "rtl/stats.hpp"
#include "support/rng.hpp"

namespace rtlock::lock {

/// One applied operation lock (one key bit).
struct LockRecord {
  int keyIndex = 0;
  bool keyValue = false;   // correct key-bit value
  rtl::OpKind realOp = rtl::OpKind::Add;
  rtl::OpKind dummyOp = rtl::OpKind::Sub;
};

/// Observer for lock/undo events — the hook behind incremental locality
/// harvesting (attack/harvest.hpp).  Callbacks fire synchronously inside
/// lockOpAt/undoTo after the module mutation completed: onLock sees the
/// freshly installed key mux through `slot` (the slot that now holds it),
/// onUndo sees the record that was just rolled back.  Observers must not
/// lock or undo re-entrantly.
class LockObserver {
 public:
  virtual ~LockObserver() = default;
  virtual void onLock(const LockRecord& record, const rtl::ExprSlot& slot) = 0;
  virtual void onUndo(const LockRecord& record) = 0;
};

class LockEngine {
 public:
  /// The module must outlive the engine; the engine assumes exclusive
  /// mutation rights over it.
  LockEngine(rtl::Module& module, const PairTable& table);

  LockEngine(const LockEngine&) = delete;
  LockEngine& operator=(const LockEngine&) = delete;

  [[nodiscard]] const PairTable& pairTable() const noexcept { return table_; }
  [[nodiscard]] rtl::Module& module() noexcept { return module_; }

  // ---- counts / ODT ----

  /// Current number of operations of `kind` (locked design view, dummies
  /// included).
  [[nodiscard]] int opCount(rtl::OpKind kind) const noexcept;

  /// Current total number of lockable operations.
  [[nodiscard]] int totalLockableOps() const noexcept;

  /// Number of lockable operations when the engine was constructed (basis
  /// for "key budget = 75% of operations").
  [[nodiscard]] int initialLockableOps() const noexcept { return initialLockableOps_; }

  /// ODT[T] = count(T) - count(T').  Involutive tables only.
  [[nodiscard]] int odtValue(rtl::OpKind kind) const;

  /// |ODT| per canonical pair (the v_j vector of Sec. 4.1).
  [[nodiscard]] std::vector<int> odtMagnitudes() const;

  /// v_i: |ODT| per pair at construction time.
  [[nodiscard]] const std::vector<int>& initialMagnitudes() const noexcept {
    return initialMagnitudes_;
  }

  /// Pairs with at least one locked operation (mask for M^r_sec).
  [[nodiscard]] const std::vector<bool>& touchedPairs() const noexcept { return touched_; }

  [[nodiscard]] double globalMetric() const;
  [[nodiscard]] double restrictedMetric() const;

  // ---- locking primitives ----

  /// Wraps the operation at position `index` of kind `kind`'s pool into a
  /// key mux with the given correct key-bit value.  Returns the record.
  const LockRecord& lockOpAt(rtl::OpKind kind, std::size_t index, bool keyValue);

  /// Locks a uniformly random operation of `kind` with a random key value.
  /// Returns false when the pool is empty.
  bool lockRandomOpOfKind(rtl::OpKind kind, support::Rng& rng);

  /// Locks a uniformly random operation across all lockable kinds (random
  /// ASSURE selection / training relocking).  Returns false when nothing is
  /// lockable.
  bool lockRandomOp(support::Rng& rng);

  /// Algorithm 1 (Lock): balances pair membership for type `kind`.
  /// Returns the number of key bits consumed (0, 1, or 2).
  int lockStep(rtl::OpKind kind, bool pairMode, support::Rng& rng);

  /// Snapshot of all lockable operations in module traversal order, as
  /// (kind, pool position) coordinates usable with lockOpAt.  Pool positions
  /// stay pinned to their logical operation across later locks.
  [[nodiscard]] std::vector<std::pair<rtl::OpKind, std::size_t>> opsInTraversalOrder() const;

  // ---- undo ----

  /// Current undo depth; pass to undoTo to roll back to this point.
  [[nodiscard]] std::size_t checkpoint() const noexcept { return undoStack_.size(); }

  /// Rolls back every lock applied after the checkpoint (LIFO).
  void undoTo(std::size_t checkpoint);

  void undoAll() { undoTo(0); }

  /// All currently applied locks, oldest first.
  [[nodiscard]] const std::vector<LockRecord>& records() const noexcept { return records_; }

  // ---- observation ----

  /// Registers the single lock/undo observer (nullptr detaches).  The
  /// observer must outlive every lock/undo it can witness.
  void setObserver(LockObserver* observer) noexcept { observer_ = observer; }
  [[nodiscard]] LockObserver* observer() const noexcept { return observer_; }

 private:
  struct UndoRecord {
    rtl::ExprSlot slot;                          // where the mux sits
    rtl::OpKind realKind = rtl::OpKind::Add;
    std::size_t poolPosition = 0;                // index into ops_[realKind]
    int realBranchSlot = 0;                      // kThenSlot or kElseSlot
    std::uint32_t dummyAppendCount = 0;          // entries in dummyAppendLog_
    bool recyclable = false;                     // shell may be cached on undo
    int prevKeyWidth = 0;
    int pairIndex = -1;                          // -1 for non-involutive tables
    bool pairWasTouched = false;
  };

  void buildIndex();
  [[nodiscard]] std::vector<rtl::ExprSlot>& pool(rtl::OpKind kind) noexcept {
    return ops_[static_cast<std::size_t>(kind)];
  }
  [[nodiscard]] const std::vector<rtl::ExprSlot>& pool(rtl::OpKind kind) const noexcept {
    return ops_[static_cast<std::size_t>(kind)];
  }

  rtl::Module& module_;
  const PairTable& table_;
  std::array<std::vector<rtl::ExprSlot>, rtl::kOpKindCount> ops_;
  /// Kinds of dummy-branch pool appends, across all live locks (LIFO with
  /// undoStack_; each UndoRecord owns its trailing dummyAppendCount entries).
  /// A shared log instead of a per-lock vector: lock/undo is the attack's
  /// innermost loop and must not allocate per operation.
  std::vector<rtl::OpKind> dummyAppendLog_;
  /// Detached mux shells (ternary + key ref + dummy, real slot empty) cached
  /// by (kind, pool position) on undo and reused by the next lock of the
  /// same position — the relock/undo training loop otherwise rebuilds the
  /// identical five heap nodes tens of thousands of times.  Reuse is gated
  /// on the shell's dummy operands matching the live operation's operands
  /// exactly (content check, so stale entries are impossible), which holds
  /// precisely for the three-address case where operands are immutable
  /// leaves; the resulting module states are bit-identical to fresh builds.
  std::array<std::vector<rtl::ExprPtr>, rtl::kOpKindCount> shells_;
  std::vector<int> initialMagnitudes_;
  std::vector<bool> touched_;
  std::vector<UndoRecord> undoStack_;
  std::vector<LockRecord> records_;
  LockObserver* observer_ = nullptr;
  int lockableTotal_ = 0;  // sum of pool sizes, maintained incrementally
  int initialLockableOps_ = 0;
};

}  // namespace rtlock::lock
