// support::JsonValue parse/serialize contract.
#include "support/json.hpp"

#include <gtest/gtest.h>

#include "support/diagnostics.hpp"

namespace rtlock::support {
namespace {

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(parseJson("null").isNull());
  EXPECT_EQ(parseJson("true").asBool(), true);
  EXPECT_EQ(parseJson("false").asBool(), false);
  EXPECT_DOUBLE_EQ(parseJson("-12.5e2").asDouble(), -1250.0);
  EXPECT_EQ(parseJson("42").asInt(), 42);
  EXPECT_EQ(parseJson("\"hi\\n\\\"there\\\"\"").asString(), "hi\n\"there\"");
}

TEST(JsonTest, ParsesNestedStructures) {
  const JsonValue value = parseJson(R"({"rows": [{"a": 1, "b": [true, null]}], "n": 2})");
  EXPECT_EQ(value.at("n").asInt(), 2);
  const JsonArray& rows = value.at("rows").asArray();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].at("a").asInt(), 1);
  EXPECT_TRUE(rows[0].at("b").asArray()[1].isNull());
}

TEST(JsonTest, ObjectPreservesInsertionOrder) {
  JsonValue value;
  value.set("zebra", 1);
  value.set("apple", 2);
  value.set("mango", 3);
  const JsonObject& object = value.asObject();
  ASSERT_EQ(object.size(), 3u);
  EXPECT_EQ(object[0].first, "zebra");
  EXPECT_EQ(object[1].first, "apple");
  EXPECT_EQ(object[2].first, "mango");
}

TEST(JsonTest, DumpParseRoundTripsStructureAndValues) {
  JsonValue document;
  document.set("schema", "test/v1");
  document.set("pi", 3.14159);
  document.set("count", 7);
  document.set("flag", true);
  JsonArray rows;
  JsonValue row;
  row.set("name", "a \"quoted\" name\twith tab");
  row.set("value", -0.25);
  rows.push_back(std::move(row));
  document.set("rows", JsonValue{std::move(rows)});

  const JsonValue reparsed = parseJson(document.dump());
  EXPECT_EQ(reparsed.at("schema").asString(), "test/v1");
  EXPECT_DOUBLE_EQ(reparsed.at("pi").asDouble(), 3.14159);
  EXPECT_EQ(reparsed.at("count").asInt(), 7);
  EXPECT_TRUE(reparsed.at("flag").asBool());
  EXPECT_EQ(reparsed.at("rows").asArray()[0].at("name").asString(),
            "a \"quoted\" name\twith tab");
  EXPECT_DOUBLE_EQ(reparsed.at("rows").asArray()[0].at("value").asDouble(), -0.25);
  // Serialization is canonical: dump(parse(dump(x))) == dump(x).
  EXPECT_EQ(reparsed.dump(), document.dump());
}

TEST(JsonTest, ParsesCommittedBaselineSchema) {
  const JsonValue baseline = parseJson(R"({
  "schema": "rtlock-bench-baseline/v1",
  "seed": 1,
  "rows": [
    {"bench": "fig4", "config": "serial+serial", "metric": "worst_locality_bias",
     "value": 0.0028, "wall_ms": 1.94}
  ]
})");
  EXPECT_EQ(baseline.at("schema").asString(), "rtlock-bench-baseline/v1");
  const JsonValue& row = baseline.at("rows").asArray().front();
  EXPECT_DOUBLE_EQ(row.at("value").asDouble(), 0.0028);
}

TEST(JsonTest, UnicodeEscapesDecodeToUtf8) {
  EXPECT_EQ(parseJson("\"\\u0041\"").asString(), "A");
  EXPECT_EQ(parseJson("\"\\u00e9\"").asString(), "\xc3\xa9");    // é
  EXPECT_EQ(parseJson("\"\\u20ac\"").asString(), "\xe2\x82\xac");  // €
}

TEST(JsonTest, MalformedInputThrowsWithLocation) {
  EXPECT_THROW((void)parseJson(""), Error);
  EXPECT_THROW((void)parseJson("{\"a\": }"), Error);
  EXPECT_THROW((void)parseJson("[1, 2"), Error);
  EXPECT_THROW((void)parseJson("{\"a\": 1} trailing"), Error);
  EXPECT_THROW((void)parseJson("\"unterminated"), Error);
  EXPECT_THROW((void)parseJson("truthy"), Error);
  try {
    (void)parseJson("{\n  \"a\": @\n}");
    FAIL() << "expected Error";
  } catch (const Error& error) {
    EXPECT_NE(std::string{error.what()}.find("line 2"), std::string::npos);
  }
}

TEST(JsonTest, TypeMismatchesThrow) {
  const JsonValue value = parseJson(R"({"n": 1.5, "s": "x"})");
  EXPECT_THROW((void)value.at("s").asDouble(), Error);
  EXPECT_THROW((void)value.at("n").asInt(), Error);  // non-integral
  EXPECT_THROW((void)value.at("missing"), Error);
  EXPECT_EQ(value.find("missing"), nullptr);
  // Out-of-int64-range numbers fail cleanly (no UB cast).
  EXPECT_THROW((void)parseJson("1e300").asInt(), Error);
  EXPECT_THROW((void)parseJson("-1e300").asInt(), Error);
}

TEST(JsonTest, EscapesControlCharactersOnOutput) {
  const std::string raw{"a\x01"
                        "b"};
  JsonValue value{raw};
  EXPECT_EQ(value.dump(), "\"a\\u0001b\"\n");
  EXPECT_EQ(parseJson(value.dump()).asString(), raw);
}

}  // namespace
}  // namespace rtlock::support
