// support::JsonValue parse/serialize contract.
#include "support/json.hpp"

#include <gtest/gtest.h>

#include "support/diagnostics.hpp"

namespace rtlock::support {
namespace {

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(parseJson("null").isNull());
  EXPECT_EQ(parseJson("true").asBool(), true);
  EXPECT_EQ(parseJson("false").asBool(), false);
  EXPECT_DOUBLE_EQ(parseJson("-12.5e2").asDouble(), -1250.0);
  EXPECT_EQ(parseJson("42").asInt(), 42);
  EXPECT_EQ(parseJson("\"hi\\n\\\"there\\\"\"").asString(), "hi\n\"there\"");
}

TEST(JsonTest, ParsesNestedStructures) {
  const JsonValue value = parseJson(R"({"rows": [{"a": 1, "b": [true, null]}], "n": 2})");
  EXPECT_EQ(value.at("n").asInt(), 2);
  const JsonArray& rows = value.at("rows").asArray();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].at("a").asInt(), 1);
  EXPECT_TRUE(rows[0].at("b").asArray()[1].isNull());
}

TEST(JsonTest, ObjectPreservesInsertionOrder) {
  JsonValue value;
  value.set("zebra", 1);
  value.set("apple", 2);
  value.set("mango", 3);
  const JsonObject& object = value.asObject();
  ASSERT_EQ(object.size(), 3u);
  EXPECT_EQ(object[0].first, "zebra");
  EXPECT_EQ(object[1].first, "apple");
  EXPECT_EQ(object[2].first, "mango");
}

TEST(JsonTest, DumpParseRoundTripsStructureAndValues) {
  JsonValue document;
  document.set("schema", "test/v1");
  document.set("pi", 3.14159);
  document.set("count", 7);
  document.set("flag", true);
  JsonArray rows;
  JsonValue row;
  row.set("name", "a \"quoted\" name\twith tab");
  row.set("value", -0.25);
  rows.push_back(std::move(row));
  document.set("rows", JsonValue{std::move(rows)});

  const JsonValue reparsed = parseJson(document.dump());
  EXPECT_EQ(reparsed.at("schema").asString(), "test/v1");
  EXPECT_DOUBLE_EQ(reparsed.at("pi").asDouble(), 3.14159);
  EXPECT_EQ(reparsed.at("count").asInt(), 7);
  EXPECT_TRUE(reparsed.at("flag").asBool());
  EXPECT_EQ(reparsed.at("rows").asArray()[0].at("name").asString(),
            "a \"quoted\" name\twith tab");
  EXPECT_DOUBLE_EQ(reparsed.at("rows").asArray()[0].at("value").asDouble(), -0.25);
  // Serialization is canonical: dump(parse(dump(x))) == dump(x).
  EXPECT_EQ(reparsed.dump(), document.dump());
}

TEST(JsonTest, ParsesCommittedBaselineSchema) {
  const JsonValue baseline = parseJson(R"({
  "schema": "rtlock-bench-baseline/v1",
  "seed": 1,
  "rows": [
    {"bench": "fig4", "config": "serial+serial", "metric": "worst_locality_bias",
     "value": 0.0028, "wall_ms": 1.94}
  ]
})");
  EXPECT_EQ(baseline.at("schema").asString(), "rtlock-bench-baseline/v1");
  const JsonValue& row = baseline.at("rows").asArray().front();
  EXPECT_DOUBLE_EQ(row.at("value").asDouble(), 0.0028);
}

TEST(JsonTest, UnicodeEscapesDecodeToUtf8) {
  EXPECT_EQ(parseJson("\"\\u0041\"").asString(), "A");
  EXPECT_EQ(parseJson("\"\\u00e9\"").asString(), "\xc3\xa9");    // é
  EXPECT_EQ(parseJson("\"\\u20ac\"").asString(), "\xe2\x82\xac");  // €
}

TEST(JsonTest, MalformedInputThrowsWithLocation) {
  EXPECT_THROW((void)parseJson(""), Error);
  EXPECT_THROW((void)parseJson("{\"a\": }"), Error);
  EXPECT_THROW((void)parseJson("[1, 2"), Error);
  EXPECT_THROW((void)parseJson("{\"a\": 1} trailing"), Error);
  EXPECT_THROW((void)parseJson("\"unterminated"), Error);
  EXPECT_THROW((void)parseJson("truthy"), Error);
  try {
    (void)parseJson("{\n  \"a\": @\n}");
    FAIL() << "expected Error";
  } catch (const Error& error) {
    EXPECT_NE(std::string{error.what()}.find("line 2"), std::string::npos);
  }
}

TEST(JsonTest, TypeMismatchesThrow) {
  const JsonValue value = parseJson(R"({"n": 1.5, "s": "x"})");
  EXPECT_THROW((void)value.at("s").asDouble(), Error);
  EXPECT_THROW((void)value.at("n").asInt(), Error);  // non-integral
  EXPECT_THROW((void)value.at("missing"), Error);
  EXPECT_EQ(value.find("missing"), nullptr);
  // Out-of-int64-range numbers fail cleanly (no UB cast).
  EXPECT_THROW((void)parseJson("1e300").asInt(), Error);
  EXPECT_THROW((void)parseJson("-1e300").asInt(), Error);
}

TEST(JsonTest, EscapesControlCharactersOnOutput) {
  const std::string raw{"a\x01"
                        "b"};
  JsonValue value{raw};
  EXPECT_EQ(value.dump(), "\"a\\u0001b\"\n");
  EXPECT_EQ(parseJson(value.dump()).asString(), raw);
}

TEST(JsonTest, DumpLineIsCompactAndReparsable) {
  const JsonValue value = parseJson(R"({"rows": [{"a": 1, "b": [true, null]}], "n": 2.5})");
  const std::string line = value.dumpLine();
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_EQ(line, R"({"rows": [{"a": 1, "b": [true, null]}], "n": 2.5})");
  EXPECT_EQ(parseJson(line).dumpLine(), line);
}

// Every proper prefix of a valid document is a torn write (the campaign
// journal's crash model): all of them must raise Error — no partial
// accept, no crash, no silent empty value.
TEST(JsonTest, EveryTruncationOfAValidDocumentIsRejected) {
  const std::string full =
      R"({"cell": "a:hra:1:b", "status": "ok", "wall_ms": 12.5, )"
      R"("result": {"kpa": [50, 33.3], "flags": [true, false, null], "tag": "x€\n"}})";
  ASSERT_NO_THROW((void)parseJson(full));
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    EXPECT_THROW((void)parseJson(full.substr(0, cut)), Error) << "prefix length " << cut;
  }
}

TEST(JsonTest, MidTokenTruncationsAreRejected) {
  // EOF inside every token class.
  EXPECT_THROW((void)parseJson("tru"), Error);
  EXPECT_THROW((void)parseJson("nul"), Error);
  EXPECT_THROW((void)parseJson("fals"), Error);
  EXPECT_THROW((void)parseJson("-"), Error);
  EXPECT_THROW((void)parseJson("1e"), Error);
  EXPECT_THROW((void)parseJson("1."), Error);
  EXPECT_THROW((void)parseJson("\"abc\\"), Error);
  EXPECT_THROW((void)parseJson("\"abc\\u00"), Error);
  EXPECT_THROW((void)parseJson("{\"a\""), Error);
  EXPECT_THROW((void)parseJson("{\"a\":"), Error);
  EXPECT_THROW((void)parseJson("[1,"), Error);
}

TEST(JsonTest, UnescapedControlCharactersInStringsRejected) {
  EXPECT_THROW((void)parseJson("\"a\nb\""), Error);
  EXPECT_THROW((void)parseJson("\"a\tb\""), Error);
  std::string withNul = "\"a";
  withNul.push_back('\0');
  withNul += "b\"";
  EXPECT_THROW((void)parseJson(withNul), Error);
}

TEST(JsonTest, InvalidUtf8InStringsRejected) {
  // Lone continuation byte.
  EXPECT_THROW((void)parseJson("\"\x80\""), Error);
  // Truncated 2-byte sequence (lead with no continuation).
  EXPECT_THROW((void)parseJson("\"\xc3\""), Error);
  // Invalid lead bytes 0xC0/0xC1 (overlong 2-byte encodings by construction).
  EXPECT_THROW((void)parseJson("\"\xc0\xaf\""), Error);
  EXPECT_THROW((void)parseJson("\"\xc1\xbf\""), Error);
  // Overlong 3-byte encoding of '/' (0xE0 requires 0xA0..).
  EXPECT_THROW((void)parseJson("\"\xe0\x80\xaf\""), Error);
  // Overlong 4-byte encoding (0xF0 requires 0x90..).
  EXPECT_THROW((void)parseJson("\"\xf0\x80\x80\xaf\""), Error);
  // UTF-16 surrogate half encoded directly (U+D800).
  EXPECT_THROW((void)parseJson("\"\xed\xa0\x80\""), Error);
  // Beyond U+10FFFF.
  EXPECT_THROW((void)parseJson("\"\xf4\x90\x80\x80\""), Error);
  EXPECT_THROW((void)parseJson("\"\xf5\x80\x80\x80\""), Error);
  // Continuation byte out of range.
  EXPECT_THROW((void)parseJson("\"\xc3\x29\""), Error);
  // Truncated multi-byte sequence at end of input.
  EXPECT_THROW((void)parseJson("\"\xe2\x82\""), Error);
}

TEST(JsonTest, ValidUtf8PassesThroughByteExact) {
  const std::string text = "\"caf\xc3\xa9 \xe2\x82\xac \xf0\x9f\x94\x92\"";  // café € 🔒
  EXPECT_EQ(parseJson(text).asString(), text.substr(1, text.size() - 2));
  // Boundary code points: U+07FF, U+FFFD, U+10FFFF.
  EXPECT_EQ(parseJson("\"\xdf\xbf\"").asString(), "\xdf\xbf");
  EXPECT_EQ(parseJson("\"\xef\xbf\xbd\"").asString(), "\xef\xbf\xbd");
  EXPECT_EQ(parseJson("\"\xf4\x8f\xbf\xbf\"").asString(), "\xf4\x8f\xbf\xbf");
}

// Deterministic fuzz sweep: random byte mutations of a valid document must
// either parse (the mutation kept it valid) or throw Error — never crash
// and never return a value that fails to re-serialize.
TEST(JsonTest, ByteMutationFuzzNeverCrashesOrPartiallyAccepts) {
  const std::string base =
      R"({"schema": "rtlock-journal/v1", "rows": [1, 2.5, -3e2, true, null, "séq"]})";
  std::uint64_t state = 0x9e3779b97f4a7c15ull;  // fixed-seed xorshift
  const auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int round = 0; round < 2000; ++round) {
    std::string mutated = base;
    const std::size_t edits = 1 + next() % 3;
    for (std::size_t e = 0; e < edits; ++e) {
      mutated[next() % mutated.size()] = static_cast<char>(next() & 0xff);
    }
    try {
      const JsonValue value = parseJson(mutated);
      const std::string reserialized = value.dumpLine();  // must not throw
      EXPECT_EQ(parseJson(reserialized).dumpLine(), reserialized);
    } catch (const Error&) {
      // Rejected cleanly: exactly what a torn/corrupt journal line needs.
    }
  }
}

}  // namespace
}  // namespace rtlock::support
