#include "support/task_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "support/diagnostics.hpp"

namespace rtlock::support {
namespace {

TEST(TaskPoolTest, ResolveThreadCountPassesExplicitValuesThrough) {
  EXPECT_EQ(resolveThreadCount(1), 1);
  EXPECT_EQ(resolveThreadCount(4), 4);
  EXPECT_EQ(resolveThreadCount(64), 64);
}

TEST(TaskPoolTest, ResolveThreadCountDefaultsToAtLeastOne) {
  EXPECT_GE(resolveThreadCount(0), 1);
  EXPECT_GE(resolveThreadCount(-3), 1);
}

TEST(TaskPoolTest, MapReturnsResultsInSubmissionOrder) {
  TaskPool pool{4};
  // Later tasks finish first (earlier submissions sleep longer), so a pool
  // that collected by completion order would return a reversed vector.
  const auto results = pool.map(16, [](std::size_t index) {
    std::this_thread::sleep_for(std::chrono::microseconds((16 - index) * 200));
    return index;
  });
  ASSERT_EQ(results.size(), 16u);
  for (std::size_t i = 0; i < results.size(); ++i) EXPECT_EQ(results[i], i);
}

TEST(TaskPoolTest, SingleThreadPoolRunsTasksInlineOnCallingThread) {
  TaskPool pool{1};
  EXPECT_EQ(pool.threadCount(), 1);
  const auto caller = std::this_thread::get_id();
  const auto ids =
      pool.map(8, [&](std::size_t) { return std::this_thread::get_id(); });
  for (const auto& id : ids) EXPECT_EQ(id, caller);
}

TEST(TaskPoolTest, MultiThreadPoolUsesWorkerThreads) {
  TaskPool pool{4};
  EXPECT_EQ(pool.threadCount(), 4);
  const auto caller = std::this_thread::get_id();
  const auto ids = pool.map(32, [&](std::size_t) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
    return std::this_thread::get_id();
  });
  for (const auto& id : ids) EXPECT_NE(id, caller);
}

TEST(TaskPoolTest, ExceptionPropagatesFromWait) {
  TaskPool pool{4};
  EXPECT_THROW(pool.map(8,
                        [](std::size_t index) {
                          if (index == 5) throw std::runtime_error("task 5 failed");
                          return index;
                        }),
               std::runtime_error);
}

TEST(TaskPoolTest, FirstExceptionBySubmissionOrderWins) {
  for (const int threads : {1, 4}) {
    TaskPool pool{threads};
    try {
      pool.map(8, [](std::size_t index) {
        // Make the *later* submission fail first in wall-clock time; the
        // earlier submission's error must still win.
        if (index == 6) throw std::runtime_error("task 6");
        if (index == 2) {
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
          throw std::runtime_error("task 2");
        }
        return index;
      });
      FAIL() << "expected a task exception (threads=" << threads << ")";
    } catch (const std::runtime_error& error) {
      EXPECT_STREQ(error.what(), "task 2") << "threads=" << threads;
    }
  }
}

TEST(TaskPoolTest, InlinePoolDefersExceptionsToWait) {
  TaskPool pool{1};
  // submit() must not throw even though the task does; the error surfaces
  // at wait(), matching the threaded pool's contract.
  EXPECT_NO_THROW(pool.submit([] { throw std::runtime_error("deferred"); }));
  EXPECT_THROW(pool.wait(), std::runtime_error);
}

TEST(TaskPoolTest, PoolIsReusableAcrossBatches) {
  TaskPool pool{3};
  for (int batch = 0; batch < 5; ++batch) {
    const auto results =
        pool.map(10, [batch](std::size_t index) { return batch * 100 + static_cast<int>(index); });
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(results[i], batch * 100 + static_cast<int>(i));
    }
  }
}

TEST(TaskPoolTest, PoolIsReusableAfterAFailedBatch) {
  TaskPool pool{3};
  EXPECT_THROW(pool.map(4, [](std::size_t) -> int { throw std::runtime_error("boom"); }),
               std::runtime_error);
  const auto results = pool.map(4, [](std::size_t index) { return index + 1; });
  ASSERT_EQ(results.size(), 4u);
  for (std::size_t i = 0; i < results.size(); ++i) EXPECT_EQ(results[i], i + 1);
}

TEST(TaskPoolTest, SubmitWaitApiTracksSubmissionIndices) {
  TaskPool pool{2};
  std::atomic<int> counter{0};
  EXPECT_EQ(pool.submit([&] { ++counter; }), 0u);
  EXPECT_EQ(pool.submit([&] { ++counter; }), 1u);
  EXPECT_EQ(pool.submit([&] { ++counter; }), 2u);
  pool.wait();
  EXPECT_EQ(counter.load(), 3);
  // Indices restart per batch after wait().
  EXPECT_EQ(pool.submit([&] { ++counter; }), 0u);
  pool.wait();
  EXPECT_EQ(counter.load(), 4);
}

TEST(TaskPoolTest, NullTaskIsRejected) {
  TaskPool pool{2};
  EXPECT_THROW(pool.submit(std::function<void()>{}), ContractViolation);
}

TEST(TaskPoolTest, StressTasksCompletingOutOfOrderStayOrdered) {
  TaskPool pool{8};
  std::atomic<std::size_t> completionStamp{0};
  constexpr std::size_t kTasks = 400;
  // Pseudo-random sleeps decorrelate completion order from submission
  // order; each task records when it finished.
  const auto stamps = pool.map(kTasks, [&](std::size_t index) {
    std::this_thread::sleep_for(std::chrono::microseconds((index * 7919) % 293));
    return completionStamp.fetch_add(1);
  });
  ASSERT_EQ(stamps.size(), kTasks);
  // Every stamp is present exactly once (no lost or duplicated slots)...
  std::vector<std::size_t> sorted = stamps;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < kTasks; ++i) EXPECT_EQ(sorted[i], i);
  // ...and with 8 workers the completion order genuinely diverged from the
  // submission order somewhere, which is exactly what map() must hide.
  bool outOfOrder = false;
  for (std::size_t i = 1; i < kTasks && !outOfOrder; ++i) {
    outOfOrder = stamps[i] < stamps[i - 1];
  }
  EXPECT_TRUE(outOfOrder);
}

TEST(TaskPoolTest, MapWithZeroTasksReturnsEmpty) {
  TaskPool pool{4};
  const auto results = pool.map(0, [](std::size_t index) { return index; });
  EXPECT_TRUE(results.empty());
}

TEST(TaskPoolTest, DestructorDrainsOutstandingTasks) {
  std::atomic<int> counter{0};
  {
    TaskPool pool{4};
    for (int i = 0; i < 64; ++i) {
      pool.submit([&counter] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ++counter;
      });
    }
    // No wait(): the destructor must drain the queue before joining.
  }
  EXPECT_EQ(counter.load(), 64);
}

TEST(TaskPoolTest, MapWithWorkerPassesIdsInRange) {
  TaskPool pool{4};
  constexpr std::size_t kTasks = 200;
  const auto workers = pool.mapWithWorker(kTasks, [&](int worker, std::size_t index) {
    std::this_thread::sleep_for(std::chrono::microseconds((index * 131) % 97));
    return worker;
  });
  ASSERT_EQ(workers.size(), kTasks);
  for (const int worker : workers) {
    EXPECT_GE(worker, 0);
    EXPECT_LT(worker, pool.threadCount());
  }
}

TEST(TaskPoolTest, MapWithWorkerSerialPathRunsInlineAsWorkerZero) {
  TaskPool pool{1};
  const auto mainId = std::this_thread::get_id();
  const auto results = pool.mapWithWorker(8, [&](int worker, std::size_t index) {
    EXPECT_EQ(std::this_thread::get_id(), mainId);
    EXPECT_EQ(worker, 0);
    return index * 2;
  });
  for (std::size_t i = 0; i < results.size(); ++i) EXPECT_EQ(results[i], i * 2);
}

TEST(TaskPoolTest, PerWorkerSlotsAreNeverShared) {
  // The clone-free sample loop's contract: a slot indexed by worker id is
  // only ever touched by one thread at a time.  Tag each slot with its
  // owning thread and fail on any cross-thread access.
  TaskPool pool{4};
  struct Slot {
    std::thread::id owner{};
    int uses = 0;
  };
  std::vector<Slot> slots(static_cast<std::size_t>(pool.threadCount()));
  const auto results = pool.mapWithWorker(300, [&](int worker, std::size_t index) {
    Slot& slot = slots[static_cast<std::size_t>(worker)];
    if (slot.uses == 0) {
      slot.owner = std::this_thread::get_id();
    } else {
      EXPECT_EQ(slot.owner, std::this_thread::get_id());
    }
    ++slot.uses;
    std::this_thread::sleep_for(std::chrono::microseconds(index % 53));
    return 1;
  });
  int totalUses = 0;
  for (const Slot& slot : slots) totalUses += slot.uses;
  EXPECT_EQ(totalUses, 300);
  EXPECT_EQ(results.size(), 300u);
}

TEST(TaskPoolTest, RequestStopSkipsQueuedTasksKeepsCompletedResults) {
  // Cancel mid-map: a task flips the stop flag partway through the batch.
  // Tasks that already ran keep their results; skipped tasks keep the
  // default-constructed slot value — the completed prefix a serial loop
  // stopping at the same point would produce.
  TaskPool pool{1};  // serial: deterministic stop point
  const std::size_t stopAt = 10;
  const auto results = pool.map(100, [&](std::size_t index) {
    if (index == stopAt) pool.requestStop();
    return static_cast<int>(index) + 1;
  });
  ASSERT_EQ(results.size(), 100u);
  for (std::size_t i = 0; i <= stopAt; ++i) {
    EXPECT_EQ(results[i], static_cast<int>(i) + 1) << i;
  }
  for (std::size_t i = stopAt + 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i], 0) << i;  // skipped: default value
  }
  EXPECT_TRUE(pool.stopRequested());

  // The flag is sticky across batches until cleared.
  const auto drained = pool.map(5, [](std::size_t) { return 7; });
  for (const int value : drained) EXPECT_EQ(value, 0);
  pool.clearStop();
  EXPECT_FALSE(pool.stopRequested());
  const auto fresh = pool.map(5, [](std::size_t) { return 7; });
  for (const int value : fresh) EXPECT_EQ(value, 7);
}

TEST(TaskPoolTest, RequestStopDrainsThreadedPool) {
  // Threaded variant: the stop lands at a nondeterministic point, so only
  // the invariants are asserted — every result is either computed or left
  // at the default, wait() unblocks, and the batch after clearStop() runs
  // in full.
  TaskPool pool{4};
  std::atomic<int> ran{0};
  const auto results = pool.map(200, [&](std::size_t index) {
    if (index == 50) pool.requestStop();
    ran.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::microseconds(20));
    return 1;
  });
  int computed = 0;
  for (const int value : results) {
    ASSERT_TRUE(value == 0 || value == 1);
    computed += value;
  }
  EXPECT_EQ(computed, ran.load());
  EXPECT_LT(computed, 200);  // something was actually skipped
  pool.clearStop();
  const auto fresh = pool.map(32, [](std::size_t) { return 1; });
  int freshComputed = 0;
  for (const int value : fresh) freshComputed += value;
  EXPECT_EQ(freshComputed, 32);
}

TEST(TaskPoolTrySubmitTest, InlinePoolAlwaysAcceptsAndRunsImmediately) {
  TaskPool pool{1, /*queueCapacity=*/1};
  EXPECT_EQ(pool.queueCapacity(), 1u);
  int ran = 0;
  // The serial path never queues, so capacity can never be exceeded: every
  // trySubmit accepts and the task has already run by the time it returns.
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(pool.trySubmit([&ran] { ++ran; }));
    EXPECT_EQ(ran, i + 1);
  }
  EXPECT_EQ(pool.queueDepth(), 0u);
  pool.wait();
}

TEST(TaskPoolTrySubmitTest, UnboundedPoolNeverRejects) {
  TaskPool pool{4};  // queueCapacity 0 = unbounded
  EXPECT_EQ(pool.queueCapacity(), 0u);
  std::atomic<int> ran{0};
  for (int i = 0; i < 256; ++i) {
    EXPECT_TRUE(pool.trySubmit([&ran] { ++ran; }));
  }
  pool.wait();
  EXPECT_EQ(ran.load(), 256);
}

TEST(TaskPoolTrySubmitTest, RejectsExactlyAtQueueCapacity) {
  TaskPool pool{2, /*queueCapacity=*/2};
  std::atomic<bool> release{false};
  std::atomic<int> started{0};
  std::atomic<int> ran{0};
  const auto blocker = [&] {
    ++started;
    while (!release.load()) std::this_thread::sleep_for(std::chrono::microseconds(50));
    ++ran;
  };
  // Occupy both workers, then wait until both blockers are *running* (off
  // the queue) so the capacity math below sees an empty queue.
  ASSERT_TRUE(pool.trySubmit(blocker));
  ASSERT_TRUE(pool.trySubmit(blocker));
  while (started.load() < 2) std::this_thread::sleep_for(std::chrono::microseconds(50));

  // Running tasks don't count toward capacity: two more fit in the queue...
  EXPECT_TRUE(pool.trySubmit([&ran] { ++ran; }));
  EXPECT_TRUE(pool.trySubmit([&ran] { ++ran; }));
  EXPECT_EQ(pool.queueDepth(), 2u);
  // ...and the next one is shed, repeatably, with no bookkeeping damage.
  EXPECT_FALSE(pool.trySubmit([&ran] { ++ran; }));
  EXPECT_FALSE(pool.trySubmit([&ran] { ++ran; }));

  release.store(true);
  pool.wait();
  EXPECT_EQ(ran.load(), 4);  // the two blockers + the two queued, none extra
  EXPECT_EQ(pool.queueDepth(), 0u);

  // After the drain the queue has room again.
  EXPECT_TRUE(pool.trySubmit([&ran] { ++ran; }));
  pool.wait();
  EXPECT_EQ(ran.load(), 5);
}

TEST(TaskPoolTrySubmitTest, SubmitAndMapIgnoreQueueCapacity) {
  TaskPool pool{2, /*queueCapacity=*/1};
  // Batch producers rely on unconditional enqueueing: submit()/map() must
  // accept far more tasks than the trySubmit bound.
  const auto results = pool.map(64, [](std::size_t index) { return index; });
  ASSERT_EQ(results.size(), 64u);
  for (std::size_t i = 0; i < results.size(); ++i) EXPECT_EQ(results[i], i);
}

TEST(TaskPoolTrySubmitTest, AfterRequestStopAcceptsAndSkips) {
  for (const int threads : {1, 4}) {
    TaskPool pool{threads, /*queueCapacity=*/4};
    pool.requestStop();
    std::atomic<int> ran{0};
    // Backpressure reports *fullness*, not shutdown: a stopped pool still
    // accepts (true) and then skips the task, exactly like submit().
    EXPECT_TRUE(pool.trySubmit([&ran] { ++ran; })) << "threads=" << threads;
    pool.wait();
    EXPECT_EQ(ran.load(), 0) << "threads=" << threads;
    pool.clearStop();
    EXPECT_TRUE(pool.trySubmit([&ran] { ++ran; })) << "threads=" << threads;
    pool.wait();
    EXPECT_EQ(ran.load(), 1) << "threads=" << threads;
  }
}

TEST(TaskPoolTrySubmitTest, NullTaskIsRejected) {
  TaskPool pool{2, 4};
  EXPECT_THROW((void)pool.trySubmit(std::function<void()>{}), ContractViolation);
}

TEST(TaskPoolTrySubmitTest, FailingTrySubmitTaskSurfacesAtWait) {
  TaskPool pool{2, /*queueCapacity=*/8};
  ASSERT_TRUE(pool.trySubmit([] { throw std::runtime_error("shed me not"); }));
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // The failure was consumed; the pool is reusable.
  std::atomic<int> ran{0};
  ASSERT_TRUE(pool.trySubmit([&ran] { ++ran; }));
  pool.wait();
  EXPECT_EQ(ran.load(), 1);
}

}  // namespace
}  // namespace rtlock::support
