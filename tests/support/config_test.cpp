// Guards the guard: support/config.hpp must keep the C++20 floor visible and
// accurate, so a mis-configured build dies with one clear #error instead of
// a wall of template noise.
#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "support/config.hpp"

namespace rtlock::support {
namespace {

static_assert(kRequiredCppStandard == 202002L, "the documented floor is C++20");
static_assert(kCompiledCppStandard >= kRequiredCppStandard,
              "config.hpp must refuse to compile below the floor");

TEST(ConfigTest, FloorConstantsAreConsistent) {
  EXPECT_EQ(kRequiredCppStandard, 202002L);
  EXPECT_GE(kCompiledCppStandard, kRequiredCppStandard);
  EXPECT_GE(RTLOCK_CPLUSPLUS, 202002L);
}

TEST(ConfigTest, Cpp20LibraryFeaturesAreUsable) {
  // The two features the floor exists for: std::span (rng.hpp) and defaulted
  // operator== on aggregates (holder.hpp).
  std::vector<int> values{1, 2, 3};
  std::span<int> view{values};
  EXPECT_EQ(view.size(), 3u);

  struct Probe {
    int a = 0;
    bool operator==(const Probe&) const = default;
  };
  EXPECT_EQ(Probe{}, Probe{});
}

}  // namespace
}  // namespace rtlock::support
