#include "support/strings.hpp"

#include <gtest/gtest.h>

namespace rtlock::support {
namespace {

TEST(StringsTest, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim("hello"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(" a b "), "a b");
}

TEST(StringsTest, SplitOnSeparator) {
  const auto fields = split("a,b,c", ',');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b");
  EXPECT_EQ(fields[2], "c");
}

TEST(StringsTest, SplitPreservesEmptyFields) {
  const auto fields = split("a,,b,", ',');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[3], "");
}

TEST(StringsTest, SplitSingleField) {
  const auto fields = split("abc", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "abc");
}

TEST(StringsTest, JoinConcatenatesWithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({"x"}, ","), "x");
  EXPECT_EQ(join({}, ","), "");
}

TEST(StringsTest, SplitJoinRoundTrip) {
  const std::string original = "one,two,three";
  EXPECT_EQ(join(split(original, ','), ","), original);
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(startsWith("module foo", "module"));
  EXPECT_FALSE(startsWith("foo module", "module"));
  EXPECT_TRUE(startsWith("abc", ""));
  EXPECT_FALSE(startsWith("ab", "abc"));
}

TEST(StringsTest, ToLower) {
  EXPECT_EQ(toLower("HeLLo123"), "hello123");
  EXPECT_EQ(toLower(""), "");
}

TEST(StringsTest, FormatDouble) {
  EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(formatDouble(100.0, 0), "100");
  EXPECT_EQ(formatDouble(-0.5, 1), "-0.5");
}

}  // namespace
}  // namespace rtlock::support
